package tornado

import (
	"context"

	"tornado/internal/chaos"
	"tornado/internal/federation"
	"tornado/internal/fedstore"
)

// Federated storage runtime (§5.3 made live): N per-site archives — each
// with its own Tornado graph — behind one Get/Put/Scrub facade with
// site-failover reads, quorum-gated writes, joint cross-site block
// exchange, and whole-site disaster repair.
type (
	// FederatedStore is the live N-site facade over per-site Archives.
	FederatedStore = fedstore.Store
	// FederatedConfig tunes the facade (write quorum, WAN topology).
	FederatedConfig = fedstore.Config
	// SiteScrub is one site's outcome from a federation-wide scrub.
	SiteScrub = fedstore.SiteScrub
	// SiteRepairReport is the outcome of one RepairSite disaster recovery.
	SiteRepairReport = fedstore.RepairReport
	// DisasterSoakConfig tunes one seeded site-loss disaster campaign.
	DisasterSoakConfig = fedstore.SoakConfig
	// DisasterSoakReport is a campaign's outcome; Check() enforces the
	// recovery and byte-conservation invariants.
	DisasterSoakReport = fedstore.SoakReport
	// WAN is the site-scale chaos topology: whole-site loss, inter-site
	// partitions, per-link brownout latency, seeded site flapping.
	WAN = chaos.WAN
	// WANConfig tunes the WAN injector.
	WANConfig = chaos.WANConfig
	// FederationSetScore ranks one graph combination from
	// SearchComplementarySets by its detected joint first failure.
	FederationSetScore = federation.SetScore
)

// Federated-store error sentinels.
var (
	// ErrSiteQuorum is a Put refused (and rolled back) because fewer sites
	// than the write quorum could durably accept it.
	ErrSiteQuorum = fedstore.ErrSiteQuorum
	// ErrNoSite means no federation site is currently reachable.
	ErrNoSite = fedstore.ErrNoSite
	// ErrSiteDown is a site-targeted operation against an unreachable site.
	ErrSiteDown = fedstore.ErrSiteDown
)

// NewFederatedStore composes per-site archives (equal block size and data
// striping; graphs may — and for complementary fault tolerance should —
// differ) into the live federated facade.
func NewFederatedStore(sites []*Archive, cfg FederatedConfig) (*FederatedStore, error) {
	return fedstore.New(sites, cfg)
}

// NewWAN builds a seeded site-scale fault topology for a FederatedConfig.
func NewWAN(cfg WANConfig) *WAN { return chaos.NewWAN(cfg) }

// RunDisasterSoak executes one seeded site-loss disaster campaign —
// build, load, whole-site destruction under survivor chaos, quiesce,
// cross-site repair — and returns its report; call Report.Check for the
// recovery-guarantee verdict.
func RunDisasterSoak(cfg DisasterSoakConfig) (DisasterSoakReport, error) {
	return fedstore.Soak(cfg)
}

// RunDisasterSoakCtx is RunDisasterSoak with cancellation between
// operations; a run that completes is identical to an uncancelled one.
func RunDisasterSoakCtx(ctx context.Context, cfg DisasterSoakConfig) (DisasterSoakReport, error) {
	return fedstore.SoakCtx(ctx, cfg)
}

// DefaultSurvivorFaults is the node-level fault schedule disaster
// campaigns apply at surviving sites by default.
func DefaultSurvivorFaults() ChaosConfig { return fedstore.DefaultSurvivorFaults() }

// SearchComplementarySets runs the detected-first-failure search over
// every n-combination of candidate graphs and ranks the combinations by
// joint first failure, best first — the campaign that finds complementary
// graph sets worth federating (critical[i] lists graphs[i]'s known
// critical sets).
func SearchComplementarySets(ctx context.Context, graphs []*Graph, critical [][]CriticalSet, n int, opts FederationSearchOptions) ([]FederationSetScore, error) {
	return federation.SearchComplementarySets(ctx, graphs, critical, n, opts)
}
