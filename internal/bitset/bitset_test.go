package bitset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 96, 128, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(96)
	for _, i := range []int{0, 1, 47, 48, 63, 64, 95} {
		if s.Test(i) {
			t.Errorf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	s := New(96)
	idx := []int{0, 5, 63, 64, 95}
	s.SetMany(idx)
	if got := s.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
	s.ClearMany(idx[:2])
	if got := s.Count(); got != 3 {
		t.Errorf("Count after ClearMany = %d, want 3", got)
	}
}

func TestSetAllRespectsLen(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 96} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Errorf("SetAll on size %d: Count = %d", n, got)
		}
		if !s.All() {
			t.Errorf("SetAll on size %d: All() = false", n)
		}
	}
}

func TestClearAll(t *testing.T) {
	s := New(96)
	s.SetAll()
	s.ClearAll()
	if s.Any() {
		t.Error("Any() true after ClearAll")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(96)
	s.Set(10)
	c := s.Clone()
	c.Set(20)
	if s.Test(20) {
		t.Error("mutating clone affected original")
	}
	if !c.Test(10) {
		t.Error("clone missing original bit")
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a, b := New(96), New(96)
	a.SetMany([]int{1, 2, 3, 90})
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Error("CopyFrom did not produce Equal sets")
	}
	b.Clear(90)
	if a.Equal(b) {
		t.Error("Equal true after divergence")
	}
	c := New(97)
	if a.Equal(c) {
		t.Error("Equal true across differing sizes")
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(96), New(96)
	a.SetMany([]int{1, 2, 3})
	b.SetMany([]int{3, 4, 5})

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Members(nil); len(got) != 5 {
		t.Errorf("union members = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Members(nil); len(got) != 1 || got[0] != 3 {
		t.Errorf("intersect members = %v, want [3]", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Members(nil); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("difference members = %v, want [1 2]", got)
	}
}

func TestSetOpSizeMismatchPanics(t *testing.T) {
	a, b := New(8), New(9)
	for name, f := range map[string]func(){
		"UnionWith":      func() { a.UnionWith(b) },
		"IntersectWith":  func() { a.IntersectWith(b) },
		"DifferenceWith": func() { a.DifferenceWith(b) },
		"CopyFrom":       func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s size mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNextSet(t *testing.T) {
	s := New(130)
	idx := []int{0, 63, 64, 100, 129}
	s.SetMany(idx)
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(idx) {
		t.Fatalf("NextSet walk = %v, want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, idx)
		}
	}
	if s.NextSet(130) != -1 {
		t.Error("NextSet past end != -1")
	}
	if s.NextSet(-5) != 0 {
		t.Error("NextSet with negative start should clamp to 0")
	}
}

func TestCountRange(t *testing.T) {
	s := New(96)
	s.SetMany([]int{0, 10, 47, 48, 95})
	if got := s.CountRange(0, 48); got != 3 {
		t.Errorf("CountRange(0,48) = %d, want 3", got)
	}
	if got := s.CountRange(48, 96); got != 2 {
		t.Errorf("CountRange(48,96) = %d, want 2", got)
	}
	if got := s.CountRange(10, 10); got != 0 {
		t.Errorf("CountRange empty = %d, want 0", got)
	}
}

func TestString(t *testing.T) {
	s := New(96)
	s.SetMany([]int{3, 17, 48})
	if got := s.String(); got != "{3 17 48}" {
		t.Errorf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: for any list of indices, Members returns exactly the distinct
// sorted indices that were set.
func TestQuickSetMembersRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 500
		s := New(n)
		want := map[int]bool{}
		for _, r := range raw {
			i := int(r) % n
			s.Set(i)
			want[i] = true
		}
		got := s.Members(nil)
		if len(got) != len(want) {
			return false
		}
		prev := -1
		for _, i := range got {
			if !want[i] || i <= prev {
				return false
			}
			prev = i
		}
		return s.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union/intersection/difference agree with map-based set algebra.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(xa, xb []uint16) bool {
		const n = 300
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, r := range xa {
			a.Set(int(r) % n)
			ma[int(r)%n] = true
		}
		for _, r := range xb {
			b.Set(int(r) % n)
			mb[int(r)%n] = true
		}
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		d := a.Clone()
		d.DifferenceWith(b)
		for k := 0; k < n; k++ {
			if u.Test(k) != (ma[k] || mb[k]) {
				return false
			}
			if i.Test(k) != (ma[k] && mb[k]) {
				return false
			}
			if d.Test(k) != (ma[k] && !mb[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNextSetConsistentWithTest(t *testing.T) {
	f := func(seed uint64, density uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		const n = 200
		s := New(n)
		p := float64(density%100) / 100
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				s.Set(i)
			}
		}
		// Walk via NextSet and via Test; must agree.
		var a, b []int
		for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
			a = append(a, i)
		}
		for i := 0; i < n; i++ {
			if s.Test(i) {
				b = append(b, i)
			}
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
