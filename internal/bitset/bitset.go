// Package bitset provides a compact fixed-capacity bit set used to track
// node liveness (present / erased) during erasure-graph peeling and during
// combinatorial worst-case searches.
//
// The set is a thin wrapper over a []uint64 word slice. All operations are
// allocation-free except New and Clone so that the decoding hot loop can run
// millions of cases per second.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set. The zero value is unusable; construct
// with New.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set capable of holding n bits, all initially clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetAll sets every bit in [0, Len).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll clears every bit.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the bits above n in the final word so Count and Equal see a
// canonical representation.
func (s *Set) trim() {
	if rem := uint(s.n) & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// All reports whether every bit in [0, Len) is set.
func (s *Set) All() bool {
	return s.Count() == s.n
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of other. The two sets must have
// the same capacity.
func (s *Set) CopyFrom(other *Set) {
	if s.n != other.n {
		panic("bitset: CopyFrom size mismatch")
	}
	copy(s.words, other.words)
}

// Equal reports whether s and other hold exactly the same bits.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// UnionWith sets s = s ∪ other.
func (s *Set) UnionWith(other *Set) {
	if s.n != other.n {
		panic("bitset: UnionWith size mismatch")
	}
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// IntersectWith sets s = s ∩ other.
func (s *Set) IntersectWith(other *Set) {
	if s.n != other.n {
		panic("bitset: IntersectWith size mismatch")
	}
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// DifferenceWith sets s = s \ other.
func (s *Set) DifferenceWith(other *Set) {
	if s.n != other.n {
		panic("bitset: DifferenceWith size mismatch")
	}
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i >> 6
	w := s.words[wi] >> (uint(i) & 63)
	if w != 0 {
		r := i + bits.TrailingZeros64(w)
		if r < s.n {
			return r
		}
		return -1
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			r := wi<<6 + bits.TrailingZeros64(s.words[wi])
			if r < s.n {
				return r
			}
			return -1
		}
	}
	return -1
}

// Words exposes the backing word slice (LSB-first, 64 bits per word) for
// read-only popcount loops: kernels that evaluate many Sets per second walk
// the words directly with math/bits instead of paying a NextSet call per
// member. The caller must not mutate the returned slice.
func (s *Set) Words() []uint64 { return s.words }

// Members appends the indices of all set bits to dst and returns it.
func (s *Set) Members(dst []int) []int {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		dst = append(dst, i)
	}
	return dst
}

// SetMany sets every index in idx.
func (s *Set) SetMany(idx []int) {
	for _, i := range idx {
		s.Set(i)
	}
}

// ClearMany clears every index in idx.
func (s *Set) ClearMany(idx []int) {
	for _, i := range idx {
		s.Clear(i)
	}
}

// CountRange returns the number of set bits in the half-open range [lo, hi).
func (s *Set) CountRange(lo, hi int) int {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitset: CountRange [%d,%d) out of bounds for size %d", lo, hi, s.n))
	}
	c := 0
	for i := s.NextSet(lo); i >= 0 && i < hi; i = s.NextSet(i + 1) {
		c++
	}
	return c
}

// String renders the set as a list of set-bit indices, e.g. "{3 17 48}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		if !first {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
	}
	b.WriteByte('}')
	return b.String()
}
