package maid

import (
	"context"

	"tornado/internal/archive"
	"tornado/internal/device"
)

// StoreBackend adapts a Shelf to the archive's storage interface: blocks
// on spun-down drives are considered available (the shelf spins them up on
// demand) and retrieval planning sees spin-up costs, so guided reads favor
// already-spinning drives.
type StoreBackend struct {
	shelf *Shelf
}

var _ archive.Backend = StoreBackend{}

// NewStoreBackend wraps shelf for use with archive.NewWithBackend.
func NewStoreBackend(shelf *Shelf) StoreBackend { return StoreBackend{shelf: shelf} }

// Nodes returns the shelf's device count.
func (b StoreBackend) Nodes() int { return len(b.shelf.devices) }

// Available reports whether node's copy of key survives somewhere the
// shelf can reach: standby drives count (a spin-up away); failed and
// offline drives do not.
func (b StoreBackend) Available(node int, key []byte) bool {
	switch b.shelf.devices[node].State() {
	case device.Online, device.Standby:
		return b.shelf.devices[node].Has(key)
	default:
		return false
	}
}

// Read fetches a block through the shelf, spinning the drive up if needed.
// The simulated shelf spins up synchronously, so ctx is only checked on
// entry; a real shelf would wait on the spin-up queue under ctx.
func (b StoreBackend) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.shelf.Read(node, key)
}

// Write stores a block through the shelf, spinning the drive up if needed.
func (b StoreBackend) Write(ctx context.Context, node int, key []byte, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.shelf.Write(node, key, data)
}

// Delete removes a block, spinning the drive up if needed.
func (b StoreBackend) Delete(_ context.Context, node int, key []byte) error {
	b.shelf.mu.Lock()
	b.shelf.touchLocked(node)
	b.shelf.mu.Unlock()
	return b.shelf.devices[node].Delete(key)
}

// Cost prices a read by power state: spinning drives are nearly free,
// standby drives cost a spin-up, dead drives are unreachable.
func (b StoreBackend) Cost(node int) float64 {
	return b.shelf.CostFunc()(node)
}
