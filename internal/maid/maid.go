// Package maid models a massive array of idle disks (paper §2.2, §5.2): a
// shelf of simulated devices of which at most a fixed number may spin at
// once. Reads go through the shelf, which spins drives up on demand and
// parks the least-recently-used ones to stay inside the power budget. The
// spin-up counters quantify how much a guided retrieval plan (package
// retrieval) saves over naive whole-stripe reads — the optimization the
// paper argues makes Tornado-coded MAID storage power efficient.
package maid

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"tornado/internal/device"
)

// ErrBudget is returned when a request needs more simultaneously-spinning
// drives than the shelf allows.
var ErrBudget = errors.New("maid: request exceeds the shelf power budget")

// Shelf is a power-managed device array.
type Shelf struct {
	mu      sync.Mutex
	devices device.Array
	maxOn   int
	lru     []int // device IDs currently online, least recently used first
}

// NewShelf wraps devices in a shelf allowing at most maxOn simultaneously
// spinning drives. All drives start spun down.
func NewShelf(devices device.Array, maxOn int) (*Shelf, error) {
	if maxOn < 1 || maxOn > len(devices) {
		return nil, fmt.Errorf("maid: power budget %d out of range for %d devices", maxOn, len(devices))
	}
	s := &Shelf{devices: devices, maxOn: maxOn}
	for _, d := range devices {
		d.PowerOff()
	}
	return s, nil
}

// Devices returns the underlying array (for failure injection in tests and
// experiments).
func (s *Shelf) Devices() device.Array { return s.devices }

// Budget returns the maximum number of simultaneously spinning drives.
func (s *Shelf) Budget() int { return s.maxOn }

// OnlineCount returns how many drives are currently spinning.
func (s *Shelf) OnlineCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lru)
}

// SpinUps returns the total spin-ups across the shelf.
func (s *Shelf) SpinUps() int64 {
	var n int64
	for _, d := range s.devices {
		n += d.Stats().SpinUps
	}
	return n
}

// ParkAll spins every drive down (e.g. after a bulk load).
func (s *Shelf) ParkAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.devices {
		d.PowerOff()
	}
	s.lru = s.lru[:0]
}

// EnsureOn spins up the given devices, parking LRU drives as needed. It
// fails with ErrBudget if len(ids) exceeds the budget; failed or offline
// devices are skipped (their data is unreachable regardless of power).
func (s *Shelf) EnsureOn(ids []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := 0
	for _, id := range ids {
		if st := s.devices[id].State(); st == device.Online || st == device.Standby {
			active++
		}
	}
	if active > s.maxOn {
		return fmt.Errorf("%w: need %d of %d", ErrBudget, active, s.maxOn)
	}
	for _, id := range ids {
		s.touchLocked(id)
	}
	return nil
}

// touchLocked marks id most-recently-used, spinning it up and evicting the
// LRU drive when over budget. Caller holds s.mu.
func (s *Shelf) touchLocked(id int) {
	d := s.devices[id]
	switch d.State() {
	case device.Online:
		s.promoteLocked(id)
		return
	case device.Standby:
		// Evict before spinning up so the budget is never exceeded.
		for len(s.lru) >= s.maxOn {
			victim := s.lru[0]
			s.lru = s.lru[1:]
			s.devices[victim].PowerOff()
		}
		d.PowerOn()
		s.lru = append(s.lru, id)
	default:
		// Failed/offline drives cannot spin.
	}
}

func (s *Shelf) promoteLocked(id int) {
	for i, v := range s.lru {
		if v == id {
			s.lru = append(append(s.lru[:i:i], s.lru[i+1:]...), id)
			return
		}
	}
	// Online but untracked (e.g. replaced device): track it, evicting if
	// needed.
	for len(s.lru) >= s.maxOn {
		victim := s.lru[0]
		s.lru = s.lru[1:]
		s.devices[victim].PowerOff()
	}
	s.lru = append(s.lru, id)
}

// Read fetches a block from a device, spinning it up if necessary. The key
// is borrowed for the duration of the call (device lookups copy nothing).
func (s *Shelf) Read(id int, key []byte) ([]byte, error) {
	s.mu.Lock()
	s.touchLocked(id)
	s.mu.Unlock()
	return s.devices[id].Read(key)
}

// Write stores a block on a device, spinning it up if necessary.
func (s *Shelf) Write(id int, key []byte, data []byte) error {
	s.mu.Lock()
	s.touchLocked(id)
	s.mu.Unlock()
	return s.devices[id].Write(key, data)
}

// CostFunc returns a retrieval cost function for the shelf's current power
// state: already-spinning drives are cheap (epsilon), standby drives cost a
// spin-up (1), failed and offline drives are forbidden (+Inf is expressed
// by retrieval's convention).
func (s *Shelf) CostFunc() func(id int) float64 {
	return func(id int) float64 {
		switch s.devices[id].State() {
		case device.Online:
			return 0.01
		case device.Standby:
			return 1
		default:
			return math.Inf(1)
		}
	}
}
