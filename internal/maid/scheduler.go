package maid

import (
	"fmt"
	"math"

	"tornado/internal/graph"
	"tornado/internal/retrieval"
)

// StripeJob is one stripe awaiting retrieval or reconstruction: which
// nodes' blocks are reachable for it (a stripe written before a drive
// failed may have more blocks than a younger one).
type StripeJob struct {
	ID        string
	Available []bool
}

// ScheduledJob is a job with its chosen block plan and the spin-up cost it
// paid under the power state it was scheduled into.
type ScheduledJob struct {
	ID      string
	Plan    []int
	SpinUps int // planned devices that were not already spinning
}

// Schedule orders multiple stripe retrievals on a power-budgeted shelf —
// the paper's future-work setting of reconstructing "multiple stripes at
// the same time within a stateful environment" (§6). Arrival order is a
// poor choice on MAID: consecutive stripes may want disjoint drive sets
// and thrash the spindle budget. Schedule greedily picks, at each step,
// the pending stripe whose cheapest plan needs the fewest new spin-ups
// given the drives the previous step left spinning, then advances the
// simulated LRU power state.
//
// initialHot lists the drives spinning before the batch (nil = all cold);
// budget is the shelf's maximum simultaneously-spinning drive count. It
// returns the schedule and the total spin-up estimate.
func Schedule(g *graph.Graph, jobs []StripeJob, initialHot []int, budget int) ([]ScheduledJob, int, error) {
	if budget < 1 {
		return nil, 0, fmt.Errorf("maid: budget %d out of range", budget)
	}
	state := newPowerSim(g.Total, budget)
	for _, id := range initialHot {
		state.touch(id)
	}

	pending := make([]StripeJob, len(jobs))
	copy(pending, jobs)
	var out []ScheduledJob
	total := 0
	for len(pending) > 0 {
		bestIdx, bestCost := -1, 0
		var bestPlan []int
		for i, job := range pending {
			if len(job.Available) != g.Total {
				return nil, 0, fmt.Errorf("maid: job %q availability vector size mismatch", job.ID)
			}
			plan, _, err := retrieval.Plan(g, job.Available, state.cost)
			if err != nil {
				return nil, 0, fmt.Errorf("maid: job %q: %w", job.ID, err)
			}
			c := state.spinUpsFor(plan)
			if bestIdx < 0 || c < bestCost {
				bestIdx, bestCost, bestPlan = i, c, plan
			}
		}
		job := pending[bestIdx]
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		for _, v := range bestPlan {
			state.touch(v)
		}
		out = append(out, ScheduledJob{ID: job.ID, Plan: bestPlan, SpinUps: bestCost})
		total += bestCost
	}
	return out, total, nil
}

// ScheduleArrivalOrder evaluates the same jobs in their given order (the
// baseline the greedy scheduler is compared against).
func ScheduleArrivalOrder(g *graph.Graph, jobs []StripeJob, initialHot []int, budget int) ([]ScheduledJob, int, error) {
	if budget < 1 {
		return nil, 0, fmt.Errorf("maid: budget %d out of range", budget)
	}
	state := newPowerSim(g.Total, budget)
	for _, id := range initialHot {
		state.touch(id)
	}
	var out []ScheduledJob
	total := 0
	for _, job := range jobs {
		if len(job.Available) != g.Total {
			return nil, 0, fmt.Errorf("maid: job %q availability vector size mismatch", job.ID)
		}
		plan, _, err := retrieval.Plan(g, job.Available, state.cost)
		if err != nil {
			return nil, 0, fmt.Errorf("maid: job %q: %w", job.ID, err)
		}
		c := state.spinUpsFor(plan)
		for _, v := range plan {
			state.touch(v)
		}
		out = append(out, ScheduledJob{ID: job.ID, Plan: plan, SpinUps: c})
		total += c
	}
	return out, total, nil
}

// powerSim is a shelf power-state simulation: an LRU set of at most budget
// spinning drives.
type powerSim struct {
	hot    map[int]int // device → last-touch tick
	order  int
	budget int
	n      int
}

func newPowerSim(n, budget int) *powerSim {
	return &powerSim{hot: map[int]int{}, budget: budget, n: n}
}

func (p *powerSim) cost(v int) float64 {
	if v < 0 || v >= p.n {
		return math.Inf(1)
	}
	if _, ok := p.hot[v]; ok {
		return 0.01
	}
	return 1
}

func (p *powerSim) spinUpsFor(plan []int) int {
	c := 0
	for _, v := range plan {
		if _, ok := p.hot[v]; !ok {
			c++
		}
	}
	return c
}

func (p *powerSim) touch(v int) {
	p.order++
	p.hot[v] = p.order
	for len(p.hot) > p.budget {
		// Evict the least recently used.
		lruDev, lruTick := -1, 1<<62
		for d, tick := range p.hot {
			if tick < lruTick {
				lruDev, lruTick = d, tick
			}
		}
		delete(p.hot, lruDev)
	}
}
