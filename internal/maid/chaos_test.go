package maid_test

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/maid"
)

// TestChaosOverShelf composes the stack the chaos layer was built to
// compose: archive → chaos injector → MAID shelf → devices. At-rest
// corruption and a permanent node loss are injected underneath the power
// manager; the archive must detect every corrupt frame through the spin-up
// path, serve bit-exact data, and heal the damage by scrub — all without
// either layer knowing the other is there.
func TestChaosOverShelf(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(42, 1)))
	if err != nil {
		t.Fatal(err)
	}
	devs := device.NewArray(g.Total)
	shelf, err := maid.NewShelf(devs, g.Total/4) // tight spin budget
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.Wrap(maid.NewStoreBackend(shelf), chaos.Config{Seed: 42})
	store, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 1200)
	rng := rand.New(rand.NewPCG(42, 2))
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	// Silently rot three frames at rest, under the shelf's power management.
	for node := 0; node < 3; node++ {
		if err := inj.CorruptStored(node, fmt.Sprintf("obj/0/%d", node)); err != nil {
			t.Fatalf("corrupt node %d: %v", node, err)
		}
	}
	// And permanently lose a fourth node.
	inj.LoseNode(5)

	got, stats, err := store.Get("obj")
	if err != nil {
		t.Fatalf("Get: %v (stats %+v)", err, stats)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corruption under the shelf leaked through to the caller")
	}
	if stats.CorruptBlocks == 0 {
		t.Error("no corrupt frames detected; the injected rot was never read")
	}
	if stats.ReadRepairs == 0 {
		t.Error("read-repair did not fire on detected corruption")
	}

	// Scrub the remainder: with the lost node restored, repair must clear
	// every outstanding at-rest corruption the Get did not reach.
	inj.RestoreNode(5)
	if _, err := store.Scrub(true); err != nil {
		t.Fatal(err)
	}
	if n := inj.Outstanding(); n != 0 {
		t.Errorf("%d corrupt frames still at rest after repair scrub", n)
	}
	rep, err := store.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rep.Stripes {
		if len(h.Missing) != 0 {
			t.Errorf("stripe %d still missing %v after repair", h.Stripe, h.Missing)
		}
	}

	// The power budget held throughout: chaos faults must not trick the
	// shelf into spinning more drives than allowed.
	if on := shelf.OnlineCount(); on > g.Total/4 {
		t.Errorf("%d drives spinning, budget is %d", on, g.Total/4)
	}
}
