package maid

import (
	"bytes"
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"tornado/internal/archive"
	"tornado/internal/core"
	"tornado/internal/device"
)

func TestParkAll(t *testing.T) {
	s := newShelf(t, 4, 2)
	s.Write(0, []byte("k"), []byte("a"))
	s.Write(1, []byte("k"), []byte("b"))
	if s.OnlineCount() != 2 {
		t.Fatalf("OnlineCount = %d", s.OnlineCount())
	}
	s.ParkAll()
	if s.OnlineCount() != 0 {
		t.Errorf("OnlineCount after ParkAll = %d", s.OnlineCount())
	}
	for _, d := range s.Devices() {
		if d.State() != device.Standby {
			t.Errorf("device %d state %v", d.ID(), d.State())
		}
	}
	// Data must survive and reads must spin drives back up.
	if got, err := s.Read(0, []byte("k")); err != nil || string(got) != "a" {
		t.Errorf("Read after ParkAll: %q %v", got, err)
	}
}

func TestStoreBackendAvailability(t *testing.T) {
	s := newShelf(t, 4, 2)
	b := NewStoreBackend(s)
	if b.Nodes() != 4 {
		t.Errorf("Nodes = %d", b.Nodes())
	}
	if err := b.Write(context.Background(), 0, []byte("k"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.ParkAll()
	// Standby drive holding the block: available.
	if !b.Available(0, []byte("k")) {
		t.Error("standby block should be available")
	}
	// Standby drive without the block: unavailable.
	if b.Available(1, []byte("k")) {
		t.Error("missing block reported available")
	}
	// Dead drive: unavailable regardless.
	s.Devices()[0].Fail()
	if b.Available(0, []byte("k")) {
		t.Error("failed drive reported available")
	}
}

func TestStoreBackendCostAndDelete(t *testing.T) {
	s := newShelf(t, 4, 2)
	b := NewStoreBackend(s)
	b.Write(context.Background(), 0, []byte("k"), []byte("x"))
	if c := b.Cost(0); c >= 1 {
		t.Errorf("spinning cost = %v", c)
	}
	s.ParkAll()
	if c := b.Cost(0); c != 1 {
		t.Errorf("standby cost = %v", c)
	}
	s.Devices()[3].Fail()
	if !math.IsInf(b.Cost(3), 1) {
		t.Errorf("failed cost = %v", b.Cost(3))
	}
	if err := b.Delete(context.Background(), 0, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if b.Available(0, []byte("k")) {
		t.Error("block still available after Delete")
	}
}

// End-to-end: an archive over a MAID shelf serves objects with every drive
// parked, spinning up only what the guided plan needs.
func TestArchiveOverMAIDShelf(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(55, 1)))
	if err != nil {
		t.Fatal(err)
	}
	shelf, err := NewShelf(device.NewArray(g.Total), 24)
	if err != nil {
		t.Fatal(err)
	}
	store, err := archive.NewWithBackend(g, NewStoreBackend(shelf), archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("maid"), 500)
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	shelf.ParkAll()
	base := shelf.SpinUps()

	got, stats, err := store.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	// Guided retrieval from a fully parked shelf spins up ≈ the data-node
	// count, never the whole shelf.
	spins := shelf.SpinUps() - base
	if spins > int64(g.Data)+8 {
		t.Errorf("get spun up %d drives, want ≈%d", spins, g.Data)
	}
	t.Logf("get stats %+v, spin-ups %d", stats, spins)

	// Survive failures too.
	shelf.Devices()[2].Fail()
	shelf.Devices()[50].Fail()
	if got, _, err := store.Get("obj"); err != nil || !bytes.Equal(got, data) {
		t.Errorf("get after failures: %v", err)
	}
}
