package maid

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

func schedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(66, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fullAvail(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

// clusteredJobs builds jobs that prefer two disjoint device clusters: even
// jobs are missing one group of data nodes (forcing reconstruction through
// checks), odd jobs a different group. Arrival order alternates clusters,
// which is the worst case for a power-budgeted shelf.
func clusteredJobs(g *graph.Graph, n int) []StripeJob {
	jobs := make([]StripeJob, n)
	for i := range jobs {
		avail := fullAvail(g.Total)
		if i%2 == 0 {
			for v := 0; v < 6; v++ {
				avail[v] = false
			}
		} else {
			for v := 6; v < 12; v++ {
				avail[v] = false
			}
		}
		jobs[i] = StripeJob{ID: string(rune('a' + i)), Available: avail}
	}
	return jobs
}

func TestSchedulePlansReconstruct(t *testing.T) {
	g := schedGraph(t)
	jobs := clusteredJobs(g, 4)
	sched, total, err := Schedule(g, jobs, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 || total <= 0 {
		t.Fatalf("schedule %v total %d", sched, total)
	}
	// Every job appears exactly once and its plan decodes its stripe.
	seen := map[string]bool{}
	d := decode.New(g)
	for _, s := range sched {
		if seen[s.ID] {
			t.Fatalf("job %s scheduled twice", s.ID)
		}
		seen[s.ID] = true
		var job StripeJob
		for _, j := range jobs {
			if j.ID == s.ID {
				job = j
			}
		}
		sel := make([]bool, g.Total)
		for _, v := range s.Plan {
			if !job.Available[v] {
				t.Fatalf("job %s plan uses unavailable node %d", s.ID, v)
			}
			sel[v] = true
		}
		var erased []int
		for v := 0; v < g.Total; v++ {
			if !sel[v] {
				erased = append(erased, v)
			}
		}
		if !d.Recoverable(erased) {
			t.Errorf("job %s plan does not reconstruct", s.ID)
		}
	}
}

func TestScheduleBeatsArrivalOrderOnClusteredJobs(t *testing.T) {
	g := schedGraph(t)
	jobs := clusteredJobs(g, 8)
	// Budget large enough to hold one cluster's working set but not both.
	const budget = 60
	_, greedy, err := Schedule(g, jobs, nil, budget)
	if err != nil {
		t.Fatal(err)
	}
	_, arrival, err := ScheduleArrivalOrder(g, jobs, nil, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spin-ups: greedy %d vs arrival order %d", greedy, arrival)
	if greedy > arrival {
		t.Errorf("greedy schedule (%d spin-ups) worse than arrival order (%d)", greedy, arrival)
	}
}

func TestScheduleIdenticalJobsReuseHotSet(t *testing.T) {
	g := schedGraph(t)
	jobs := make([]StripeJob, 5)
	for i := range jobs {
		jobs[i] = StripeJob{ID: string(rune('0' + i)), Available: fullAvail(g.Total)}
	}
	sched, total, err := Schedule(g, jobs, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	// First job spins up its whole plan; later identical jobs reuse it.
	if sched[0].SpinUps == 0 {
		t.Error("first job got free spin-ups from a cold shelf")
	}
	for _, s := range sched[1:] {
		if s.SpinUps != 0 {
			t.Errorf("job %s re-spun %d drives despite identical plan", s.ID, s.SpinUps)
		}
	}
	if total != sched[0].SpinUps {
		t.Errorf("total %d != first job %d", total, sched[0].SpinUps)
	}
}

func TestScheduleInitialHot(t *testing.T) {
	g := schedGraph(t)
	job := StripeJob{ID: "x", Available: fullAvail(g.Total)}
	cold, coldTotal, err := Schedule(g, []StripeJob{job}, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	hot, hotTotal, err := Schedule(g, []StripeJob{job}, cold[0].Plan, 60)
	if err != nil {
		t.Fatal(err)
	}
	if hotTotal != 0 {
		t.Errorf("warm shelf needed %d spin-ups (plan %v)", hotTotal, hot[0].Plan)
	}
	if coldTotal == 0 {
		t.Error("cold shelf needed no spin-ups")
	}
}

func TestScheduleErrors(t *testing.T) {
	g := schedGraph(t)
	if _, _, err := Schedule(g, nil, nil, 0); err == nil {
		t.Error("budget 0 accepted")
	}
	bad := []StripeJob{{ID: "x", Available: make([]bool, 3)}}
	if _, _, err := Schedule(g, bad, nil, 10); err == nil {
		t.Error("bad availability size accepted")
	}
	if _, _, err := ScheduleArrivalOrder(g, bad, nil, 10); err == nil {
		t.Error("arrival: bad availability size accepted")
	}
	// A job whose availability cannot reconstruct must error.
	none := []StripeJob{{ID: "x", Available: make([]bool, g.Total)}}
	if _, _, err := Schedule(g, none, nil, 10); err == nil {
		t.Error("unreconstructable job accepted")
	}
}
