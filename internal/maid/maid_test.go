package maid

import (
	"errors"
	"math"
	"testing"

	"tornado/internal/device"
)

func newShelf(t *testing.T, n, budget int) *Shelf {
	t.Helper()
	s, err := NewShelf(device.NewArray(n), budget)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewShelfValidation(t *testing.T) {
	if _, err := NewShelf(device.NewArray(4), 0); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := NewShelf(device.NewArray(4), 5); err == nil {
		t.Error("budget > devices accepted")
	}
}

func TestShelfStartsSpunDown(t *testing.T) {
	s := newShelf(t, 8, 2)
	if s.OnlineCount() != 0 {
		t.Errorf("OnlineCount = %d", s.OnlineCount())
	}
	for _, d := range s.Devices() {
		if d.State() != device.Standby {
			t.Errorf("device %d state %v", d.ID(), d.State())
		}
	}
	if s.Budget() != 2 {
		t.Errorf("Budget = %d", s.Budget())
	}
}

func TestReadSpinsUpOnDemand(t *testing.T) {
	s := newShelf(t, 4, 2)
	if err := s.Write(0, []byte("a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0, []byte("a"))
	if err != nil || string(got) != "x" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if s.OnlineCount() != 1 {
		t.Errorf("OnlineCount = %d", s.OnlineCount())
	}
	if s.SpinUps() != 1 {
		t.Errorf("SpinUps = %d", s.SpinUps())
	}
}

func TestBudgetEnforcedByEviction(t *testing.T) {
	s := newShelf(t, 6, 2)
	for id := 0; id < 6; id++ {
		if err := s.Write(id, []byte("k"), []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.OnlineCount() != 2 {
		t.Fatalf("OnlineCount = %d, want 2", s.OnlineCount())
	}
	// The last two touched (4, 5) are spinning; 0..3 were parked.
	if s.Devices()[4].State() != device.Online || s.Devices()[5].State() != device.Online {
		t.Error("MRU devices not online")
	}
	if s.Devices()[0].State() != device.Standby {
		t.Error("LRU device not parked")
	}
}

func TestLRUTouchKeepsHotDeviceSpinning(t *testing.T) {
	s := newShelf(t, 4, 2)
	s.Write(0, []byte("k"), []byte("a"))
	s.Write(1, []byte("k"), []byte("b"))
	// Re-touch 0 so it becomes MRU; writing to 2 should evict 1, not 0.
	if _, err := s.Read(0, []byte("k")); err != nil {
		t.Fatal(err)
	}
	s.Write(2, []byte("k"), []byte("c"))
	if s.Devices()[0].State() != device.Online {
		t.Error("hot device was evicted")
	}
	if s.Devices()[1].State() != device.Standby {
		t.Error("cold device kept spinning")
	}
}

func TestEnsureOnBudgetError(t *testing.T) {
	s := newShelf(t, 6, 2)
	if err := s.EnsureOn([]int{0, 1, 2}); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if err := s.EnsureOn([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if s.OnlineCount() != 2 {
		t.Errorf("OnlineCount = %d", s.OnlineCount())
	}
}

func TestEnsureOnSkipsDeadDevices(t *testing.T) {
	s := newShelf(t, 4, 2)
	s.Devices()[0].Fail()
	s.Devices()[1].Fail()
	s.Devices()[2].Fail()
	// Three dead devices don't count against the budget.
	if err := s.EnsureOn([]int{0, 1, 2, 3}); err != nil {
		t.Fatalf("EnsureOn with dead devices: %v", err)
	}
	if s.Devices()[3].State() != device.Online {
		t.Error("live device not spun up")
	}
}

func TestSpinUpAccounting(t *testing.T) {
	s := newShelf(t, 4, 1)
	// Alternate between two devices: every access is a spin-up.
	for i := 0; i < 3; i++ {
		s.Write(0, []byte("k"), []byte("x"))
		s.Write(1, []byte("k"), []byte("y"))
	}
	if got := s.SpinUps(); got != 6 {
		t.Errorf("SpinUps = %d, want 6", got)
	}
	// A budget of 2 would keep both spinning: only 2 spin-ups.
	s2 := newShelf(t, 4, 2)
	for i := 0; i < 3; i++ {
		s2.Write(0, []byte("k"), []byte("x"))
		s2.Write(1, []byte("k"), []byte("y"))
	}
	if got := s2.SpinUps(); got != 2 {
		t.Errorf("budget-2 SpinUps = %d, want 2", got)
	}
}

func TestCostFunc(t *testing.T) {
	s := newShelf(t, 4, 2)
	s.Write(0, []byte("k"), []byte("x")) // device 0 now spinning
	s.Devices()[3].Fail()
	cost := s.CostFunc()
	if c := cost(0); c >= 1 {
		t.Errorf("online cost = %v, want < 1", c)
	}
	if c := cost(1); c != 1 {
		t.Errorf("standby cost = %v, want 1", c)
	}
	if !math.IsInf(cost(3), 1) {
		t.Errorf("failed cost = %v, want +Inf", cost(3))
	}
}
