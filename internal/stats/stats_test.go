package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !approx(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	// Known: sample stddev of {2,4,4,4,5,5,7,9} with n-1 = 2.138...
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(got, 2.13808993, 1e-6) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if got := p.Estimate(); got != 0 {
		t.Errorf("empty estimate = %v", got)
	}
	lo, hi := p.Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty Wilson = [%v,%v]", lo, hi)
	}
	p.Add(14, 61124064)
	if !approx(p.Estimate(), 14.0/61124064, 1e-15) {
		t.Errorf("estimate = %v", p.Estimate())
	}
	lo, hi = p.Wilson(1.96)
	if lo < 0 || hi > 1 || lo > p.Estimate() || hi < p.Estimate() {
		t.Errorf("Wilson interval [%v,%v] does not bracket %v", lo, hi, p.Estimate())
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestWilsonHalfAndHalf(t *testing.T) {
	p := Proportion{Hits: 500, Trials: 1000}
	lo, hi := p.Wilson(1.96)
	if !approx(lo, 0.469, 0.003) || !approx(hi, 0.531, 0.003) {
		t.Errorf("Wilson(0.5, n=1000) = [%v,%v]", lo, hi)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{1, 1, 2, 3, 3, 3, -5, 100} {
		h.Observe(v)
	}
	if h.Total != 8 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if !approx(h.Fraction(3), 3.0/8, 1e-12) {
		t.Errorf("Fraction(3) = %v", h.Fraction(3))
	}
	if h.Fraction(-1) != 0 || h.Fraction(10) != 0 {
		t.Error("out-of-range Fraction should be 0")
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 100; i++ {
		h.Observe(i)
	}
	if !approx(h.MeanValue(), 49.5, 1e-12) {
		t.Errorf("MeanValue = %v", h.MeanValue())
	}
	if q := h.Quantile(0.5); q != 49 {
		t.Errorf("Quantile(0.5) = %d", q)
	}
	if q := h.Quantile(1.0); q != 99 {
		t.Errorf("Quantile(1.0) = %d", q)
	}
	empty := NewHistogram(5)
	if empty.MeanValue() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty histogram mean/quantile should be 0")
	}
}

// Property: Wilson interval always contains the point estimate and stays in
// [0,1] for any tally.
func TestQuickWilsonBrackets(t *testing.T) {
	f := func(hits, trials uint32) bool {
		n := int64(trials%100000) + 1
		h := int64(hits) % (n + 1)
		p := Proportion{Hits: h, Trials: n}
		lo, hi := p.Wilson(1.96)
		e := p.Estimate()
		return lo >= 0 && hi <= 1 && lo <= e+1e-12 && hi >= e-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mean of concatenated slices is the weighted mean.
func TestQuickMeanLinear(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		all := append(append([]float64{}, a...), b...)
		if len(all) == 0 {
			return Mean(all) == 0
		}
		want := (Mean(a)*float64(len(a)) + Mean(b)*float64(len(b))) / float64(len(all))
		return approx(Mean(all), want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
