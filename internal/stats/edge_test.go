package stats

import (
	"math"
	"strings"
	"testing"
)

// TestWilsonEmptyTally pins the zero-trials contract: the interval is the
// vacuous (0, 1), never NaN, and String() prints finite numbers. A naive
// implementation divides by Trials and poisons every downstream report.
func TestWilsonEmptyTally(t *testing.T) {
	var p Proportion
	lo, hi := p.Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty Wilson = (%v, %v), want (0, 1)", lo, hi)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsNaN(p.Estimate()) {
		t.Fatal("empty tally produced NaN")
	}
	s := p.String()
	if strings.Contains(s, "NaN") {
		t.Fatalf("empty tally String() = %q contains NaN", s)
	}
	if hw := p.WilsonHalfWidth(1.96); hw != 0.5 {
		t.Fatalf("empty WilsonHalfWidth = %v, want 0.5", hw)
	}
}

// TestWilsonHalfWidthMatchesInterval checks the half-width against the
// unclamped interval arithmetic where no clamping occurs, and pins the
// zero-hit shape (hw ~ z^2/2 / (n + z^2)) the stopping rule relies on.
func TestWilsonHalfWidthMatchesInterval(t *testing.T) {
	p := Proportion{Hits: 40, Trials: 100}
	lo, hi := p.Wilson(1.96)
	if got, want := p.WilsonHalfWidth(1.96), (hi-lo)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("half-width %v, want (hi-lo)/2 = %v", got, want)
	}
	// Zero hits: interval is [0, something]; half-width must still shrink
	// like 1/n so "CI half-width <= eps" terminates.
	z := 1.96
	for _, n := range []int64{100, 10000, 1000000} {
		p := Proportion{Hits: 0, Trials: n}
		want := z * z / 2 / (float64(n) + z*z)
		if got := p.WilsonHalfWidth(z); math.Abs(got-want) > 1e-15 {
			t.Fatalf("n=%d zero-hit half-width %v, want %v", n, got, want)
		}
	}
	// ~19.2k trials bring the zero-hit 95% half-width under 1e-4: the
	// planning identity behind the archival-scale epsilon default.
	if hw := (Proportion{Trials: 19209}).WilsonHalfWidth(1.96); hw > 1e-4 {
		t.Fatalf("19209 zero-hit trials give half-width %v > 1e-4", hw)
	}
	if hw := (Proportion{Trials: 19000}).WilsonHalfWidth(1.96); hw <= 1e-4 {
		t.Fatalf("19000 zero-hit trials give half-width %v <= 1e-4 (too loose)", hw)
	}
}

// TestPool checks that pooling post-stratified tallies is exactly the sum.
func TestPool(t *testing.T) {
	p := Pool(
		Proportion{Hits: 0, Trials: 500},
		Proportion{},
		Proportion{Hits: 3, Trials: 100},
	)
	if p.Hits != 3 || p.Trials != 600 {
		t.Fatalf("Pool = %d/%d, want 3/600", p.Hits, p.Trials)
	}
	if Pool() != (Proportion{}) {
		t.Fatal("empty Pool must be the zero tally")
	}
}

// TestQuantileEdges pins Quantile(0), Quantile(1), and the float-rounding
// fall-through: when q*Total rounds above the running total, the last bin
// must be returned rather than falling off the loop.
func TestQuantileEdges(t *testing.T) {
	h := NewHistogram(5)
	h.Observe(1)
	h.Observe(1)
	h.Observe(3)
	// q=0: the smallest bin with any mass at or below it. target=0, so the
	// first bin (even empty) satisfies cum >= 0.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %d, want 0", got)
	}
	// q=1: the largest occupied bin.
	if got := h.Quantile(1); got != 3 {
		t.Fatalf("Quantile(1) = %d, want 3", got)
	}
	// Force the fall-through arm: with Total observations and q slightly
	// above representable 1.0 sums, target can exceed Total in floats. The
	// guard must return the last bin index, not a garbage value.
	big := NewHistogram(3)
	for i := 0; i < 7; i++ {
		big.Observe(2)
	}
	if got := big.Quantile(1.0000001); got != len(big.Counts)-1 {
		t.Fatalf("over-unity quantile = %d, want %d", got, len(big.Counts)-1)
	}
	// Empty histogram: defined as bin 0.
	if got := NewHistogram(4).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %d, want 0", got)
	}
}
