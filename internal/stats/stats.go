// Package stats provides the small statistical helpers used when reporting
// simulation results: sample means and deviations, Wilson score intervals
// for Monte Carlo failure fractions, and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs, or 0
// when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Proportion is a Monte Carlo success/failure tally.
type Proportion struct {
	Hits   int64 // number of "positive" observations (e.g. failed reconstructions)
	Trials int64
}

// Add records n additional observations of which hits were positive.
func (p *Proportion) Add(hits, n int64) {
	p.Hits += hits
	p.Trials += n
}

// Estimate returns the point estimate Hits/Trials, or 0 when no trials were
// recorded.
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Trials)
}

// Wilson returns the Wilson score interval for the proportion at the given
// z value (z=1.96 for a 95% interval). For zero trials it returns (0, 1).
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	n := float64(p.Trials)
	if n == 0 {
		return 0, 1
	}
	phat := p.Estimate()
	z2 := z * z
	den := 1 + z2/n
	center := (phat + z2/(2*n)) / den
	half := z / den * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonHalfWidth returns the half-width of the Wilson score interval at
// the given z value, before the [0,1] clamp — the precision measure used by
// planned-precision stopping rules ("sample until the 95% CI half-width
// <= eps"). For zero trials it returns 0.5, the half-width of the vacuous
// (0, 1) interval, so an empty tally never satisfies a sub-0.5 target.
func (p Proportion) WilsonHalfWidth(z float64) float64 {
	n := float64(p.Trials)
	if n == 0 {
		return 0.5
	}
	phat := p.Estimate()
	z2 := z * z
	den := 1 + z2/n
	return z / den * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
}

// Pool sums per-stratum tallies into a single proportion. When the strata
// partition trials drawn uniformly from one population (post-stratified
// tallies rather than separately designed strata), the pooled tally is the
// plain uniform estimator and Wilson intervals on it remain valid.
func Pool(parts ...Proportion) Proportion {
	var p Proportion
	for _, q := range parts {
		p.Add(q.Hits, q.Trials)
	}
	return p
}

// String formats the proportion with its 95% Wilson interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson(1.96)
	return fmt.Sprintf("%.6g [%.6g, %.6g] (%d/%d)", p.Estimate(), lo, hi, p.Hits, p.Trials)
}

// Histogram is a fixed-bin integer histogram over [0, Bins).
type Histogram struct {
	Counts []int64
	Total  int64
}

// NewHistogram returns a histogram with bins buckets.
func NewHistogram(bins int) *Histogram {
	return &Histogram{Counts: make([]int64, bins)}
}

// Observe records value v; out-of-range values are clamped to the edge bins.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
	h.Total++
}

// Fraction returns the fraction of observations in bin v.
func (h *Histogram) Fraction(v int) float64 {
	if h.Total == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// MeanValue returns the mean of the observed values.
func (h *Histogram) MeanValue() float64 {
	if h.Total == 0 {
		return 0
	}
	s := 0.0
	for v, c := range h.Counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.Total)
}

// Quantile returns the smallest bin v such that at least q of the mass lies
// in bins <= v. q must be in [0, 1].
func (h *Histogram) Quantile(q float64) int {
	if h.Total == 0 {
		return 0
	}
	target := q * float64(h.Total)
	var cum int64
	for v, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			return v
		}
	}
	return len(h.Counts) - 1
}
