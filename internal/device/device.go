// Package device simulates the individually-accessible storage devices of
// the paper's theoretical 96-drive system (§5.1) and its MAID discussion
// (§2.2): in-memory block devices with online/standby/offline/failed state,
// spin-up accounting for power-managed shelves, and failure injection for
// the archival store's fault-tolerance tests.
package device

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
)

// State is a device's availability state.
type State int

const (
	// Online devices serve reads and writes.
	Online State = iota
	// Standby devices are spun down (MAID); access requires PowerOn.
	Standby
	// Offline devices are temporarily unreachable; data is intact.
	Offline
	// Failed devices have lost their contents permanently.
	Failed
)

func (s State) String() string {
	switch s {
	case Online:
		return "online"
	case Standby:
		return "standby"
	case Offline:
		return "offline"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors returned by device accesses.
var (
	ErrUnavailable = errors.New("device: not online")
	ErrNotFound    = errors.New("device: block not found")
)

// Stats counts a device's activity.
type Stats struct {
	Reads, Writes int64
	BytesRead     int64
	BytesWritten  int64
	SpinUps       int64
}

// Device is one simulated drive. All methods are safe for concurrent use.
type Device struct {
	id int

	mu     sync.Mutex
	state  State
	blocks map[string][]byte
	stats  Stats
}

// New returns an online, empty device.
func New(id int) *Device {
	return &Device{id: id, state: Online, blocks: map[string][]byte{}}
}

// ID returns the device's index.
func (d *Device) ID() int { return d.id }

// State returns the current state.
func (d *Device) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Read returns a copy of the named block. The key is borrowed for the
// duration of the call only — the map lookup goes through m[string(k)],
// which the compiler keeps allocation-free, so hot read paths can build
// keys in a reused buffer.
func (d *Device) Read(key []byte) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Online {
		return nil, fmt.Errorf("%w (device %d is %v)", ErrUnavailable, d.id, d.state)
	}
	b, ok := d.blocks[string(key)]
	if !ok {
		return nil, fmt.Errorf("%w (device %d, key %q)", ErrNotFound, d.id, key)
	}
	d.stats.Reads++
	d.stats.BytesRead += int64(len(b))
	return append([]byte(nil), b...), nil
}

// Write stores a copy of data under key. The key is copied (the map entry
// owns its own string), so callers may reuse the buffer.
func (d *Device) Write(key []byte, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Online {
		return fmt.Errorf("%w (device %d is %v)", ErrUnavailable, d.id, d.state)
	}
	d.blocks[string(key)] = append([]byte(nil), data...)
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(data))
	return nil
}

// Delete removes the named block; deleting a missing block is a no-op.
func (d *Device) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Online {
		return fmt.Errorf("%w (device %d is %v)", ErrUnavailable, d.id, d.state)
	}
	delete(d.blocks, string(key))
	return nil
}

// Has reports whether the device holds key (regardless of state).
func (d *Device) Has(key []byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blocks[string(key)]
	return ok
}

// Len returns the number of stored blocks.
func (d *Device) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// PowerOff spins an online device down to standby.
func (d *Device) PowerOff() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Online {
		d.state = Standby
	}
}

// PowerOn spins a standby device up, counting the spin-up.
func (d *Device) PowerOn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Standby {
		d.state = Online
		d.stats.SpinUps++
	}
}

// SetOffline marks the device temporarily unreachable (data intact).
func (d *Device) SetOffline() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Failed {
		d.state = Offline
	}
}

// SetOnline returns an offline device to service.
func (d *Device) SetOnline() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Offline || d.state == Standby {
		d.state = Online
	}
}

// Fail destroys the device: contents are dropped and the state becomes
// Failed until Replace.
func (d *Device) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = Failed
	d.blocks = map[string][]byte{}
}

// Replace swaps in a fresh empty drive (Failed → Online).
func (d *Device) Replace() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = Online
	d.blocks = map[string][]byte{}
}

// Array is an indexed shelf of devices.
type Array []*Device

// NewArray returns n fresh online devices with IDs 0..n-1.
func NewArray(n int) Array {
	a := make(Array, n)
	for i := range a {
		a[i] = New(i)
	}
	return a
}

// CountState returns how many devices are in the given state.
func (a Array) CountState(s State) int {
	n := 0
	for _, d := range a {
		if d.State() == s {
			n++
		}
	}
	return n
}

// FailRandom fails k distinct random devices and returns their IDs.
func (a Array) FailRandom(k int, rng *rand.Rand) []int {
	if k > len(a) {
		k = len(a)
	}
	perm := rng.Perm(len(a))
	ids := perm[:k]
	for _, i := range ids {
		a[i].Fail()
	}
	return ids
}
