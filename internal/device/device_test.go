package device

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(3)
	if d.ID() != 3 || d.State() != Online {
		t.Fatal("fresh device wrong")
	}
	if err := d.Write([]byte("a"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("Read = %q", got)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BytesRead != 5 || st.BytesWritten != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReadIsCopy(t *testing.T) {
	d := New(0)
	d.Write([]byte("a"), []byte("abc"))
	got, _ := d.Read([]byte("a"))
	got[0] = 'X'
	again, _ := d.Read([]byte("a"))
	if string(again) != "abc" {
		t.Error("Read returned aliased storage")
	}
}

func TestWriteIsCopy(t *testing.T) {
	d := New(0)
	buf := []byte("abc")
	d.Write([]byte("a"), buf)
	buf[0] = 'X'
	got, _ := d.Read([]byte("a"))
	if string(got) != "abc" {
		t.Error("Write aliased caller buffer")
	}
}

func TestReadMissing(t *testing.T) {
	d := New(0)
	if _, err := d.Read([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestUnavailableStates(t *testing.T) {
	for _, setup := range []func(*Device){
		func(d *Device) { d.PowerOff() },
		func(d *Device) { d.SetOffline() },
		func(d *Device) { d.Fail() },
	} {
		d := New(0)
		d.Write([]byte("a"), []byte("x"))
		setup(d)
		if _, err := d.Read([]byte("a")); !errors.Is(err, ErrUnavailable) {
			t.Errorf("Read in %v: err = %v", d.State(), err)
		}
		if err := d.Write([]byte("b"), []byte("y")); !errors.Is(err, ErrUnavailable) {
			t.Errorf("Write in %v: err = %v", d.State(), err)
		}
		if err := d.Delete([]byte("a")); !errors.Is(err, ErrUnavailable) {
			t.Errorf("Delete in %v: err = %v", d.State(), err)
		}
	}
}

func TestPowerCycle(t *testing.T) {
	d := New(0)
	d.Write([]byte("a"), []byte("x"))
	d.PowerOff()
	if d.State() != Standby {
		t.Fatalf("state = %v", d.State())
	}
	d.PowerOn()
	if d.State() != Online {
		t.Fatalf("state = %v", d.State())
	}
	if d.Stats().SpinUps != 1 {
		t.Errorf("spinups = %d", d.Stats().SpinUps)
	}
	// Data survives standby.
	if got, err := d.Read([]byte("a")); err != nil || string(got) != "x" {
		t.Errorf("data lost across power cycle: %v %q", err, got)
	}
	// PowerOn on an online device is a no-op.
	d.PowerOn()
	if d.Stats().SpinUps != 1 {
		t.Error("redundant PowerOn counted")
	}
}

func TestOfflinePreservesData(t *testing.T) {
	d := New(0)
	d.Write([]byte("a"), []byte("x"))
	d.SetOffline()
	d.SetOnline()
	if got, err := d.Read([]byte("a")); err != nil || string(got) != "x" {
		t.Errorf("data lost across offline: %v %q", err, got)
	}
}

func TestFailDestroysData(t *testing.T) {
	d := New(0)
	d.Write([]byte("a"), []byte("x"))
	d.Fail()
	if d.State() != Failed {
		t.Fatalf("state = %v", d.State())
	}
	if d.Has([]byte("a")) {
		t.Error("failed device still holds data")
	}
	// Offline/online transitions must not resurrect a failed device.
	d.SetOffline()
	d.SetOnline()
	if d.State() != Failed {
		t.Errorf("failed device revived to %v", d.State())
	}
	d.Replace()
	if d.State() != Online || d.Len() != 0 {
		t.Error("Replace should give a fresh online device")
	}
}

func TestPowerOffOnlyFromOnline(t *testing.T) {
	d := New(0)
	d.Fail()
	d.PowerOff()
	if d.State() != Failed {
		t.Errorf("PowerOff changed failed device to %v", d.State())
	}
}

func TestDeleteAndHasAndLen(t *testing.T) {
	d := New(0)
	d.Write([]byte("a"), []byte("x"))
	d.Write([]byte("b"), []byte("y"))
	if d.Len() != 2 || !d.Has([]byte("a")) {
		t.Error("Has/Len wrong")
	}
	if err := d.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if d.Has([]byte("a")) || d.Len() != 1 {
		t.Error("Delete did not remove block")
	}
	if err := d.Delete([]byte("nope")); err != nil {
		t.Errorf("Delete missing = %v, want nil", err)
	}
}

func TestArray(t *testing.T) {
	a := NewArray(10)
	if len(a) != 10 || a[7].ID() != 7 {
		t.Fatal("NewArray wrong")
	}
	if a.CountState(Online) != 10 {
		t.Error("fresh array not all online")
	}
	ids := a.FailRandom(3, rand.New(rand.NewPCG(1, 1)))
	if len(ids) != 3 {
		t.Fatalf("failed %d devices", len(ids))
	}
	if a.CountState(Failed) != 3 || a.CountState(Online) != 7 {
		t.Error("counts after FailRandom wrong")
	}
	// Distinct IDs.
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Error("duplicate failed ID")
		}
		seen[id] = true
	}
	// k > len clamps.
	if got := a.FailRandom(100, rand.New(rand.NewPCG(2, 2))); len(got) != 10 {
		t.Errorf("clamped FailRandom returned %d", len(got))
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := []byte{byte('a' + n)}
			for j := 0; j < 100; j++ {
				d.Write(key, []byte{byte(j)})
				d.Read(key)
				d.Has(key)
			}
		}(i)
	}
	wg.Wait()
	if d.Len() != 8 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Online: "online", Standby: "standby", Offline: "offline", Failed: "failed", State(9): "state(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
