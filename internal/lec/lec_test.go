package lec

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/decode"
	"tornado/internal/sim"
)

func TestGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g, st, err := Generate(48, 48, Options{Candidates: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 96 || g.Data != 48 || len(g.Levels) != 1 {
		t.Fatalf("shape: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 6 {
		t.Errorf("stats: %+v", st)
	}
	// Concentrated degrees: every data node has BaseDegree or BaseDegree+1.
	for v := 0; v < g.Data; v++ {
		if d := g.Degree(v); d != 4 && d != 5 {
			t.Errorf("data node %d degree %d, want 4 or 5", v, d)
		}
	}
}

func TestGenerateSearchPicksGoodCandidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	g, st, err := Generate(48, 48, Options{Candidates: 10, ScreenK: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The winner's reported first failure must match a fresh measurement.
	wc, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	if wc.Found {
		got = wc.FirstFailure
	}
	if got != st.BestFirstFail {
		t.Errorf("reported first failure %d, measured %d", st.BestFirstFail, got)
	}
	// With concentrated degree-4 nodes, closed pairs are rare: the search
	// should find a candidate tolerating at least 2 losses.
	if st.BestFirstFail != 0 && st.BestFirstFail < 3 {
		t.Errorf("best candidate first-fails at %d", st.BestFirstFail)
	}
}

func TestGenerateSingleLossAlwaysRecoverable(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	g, _, err := Generate(48, 48, Options{Candidates: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := decode.New(g)
	for v := 0; v < g.Total; v++ {
		if !d.Recoverable([]int{v}) {
			t.Errorf("single loss of %d unrecoverable", v)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	if _, _, err := Generate(1, 48, Options{}, rng); err == nil {
		t.Error("1 data node accepted")
	}
	if _, _, err := Generate(48, 1, Options{}, rng); err == nil {
		t.Error("1 check node accepted")
	}
	if _, _, err := Generate(8, 4, Options{BaseDegree: 4}, rng); err == nil {
		t.Error("degree >= checks accepted")
	}
}

func TestGenerateSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g, _, err := Generate(16, 16, Options{Candidates: 8, BaseDegree: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 32 {
		t.Fatalf("shape: %v", g)
	}
}
