// Package lec implements a Lincoln-Erasure-Code-style alternative graph
// family, the comparison the paper defers to future work (§2.1: "As the
// software developed for our work can utilize any LDPC graph, evaluation
// of LEC graphs in future work is possible").
//
// The LEC construction is described in its literature as a single-level
// irregular LDPC code with a tightly concentrated edge distribution and —
// its distinguishing feature — *automated generation and evaluation*: many
// candidate graphs are drawn, each is scored by fast simulation, and only
// the best survives. The exact published distribution is not reproduced
// here (the original is not openly specified); this package implements the
// documented methodology with a concentrated two-degree left distribution
// and a candidate search scored by the same worst-case and Monte Carlo
// machinery used for Tornado graphs. See DESIGN.md's substitution notes.
package lec

import (
	"fmt"
	"math/rand/v2"

	"tornado/internal/dist"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// Options configures the LEC candidate search.
type Options struct {
	// Candidates is the number of random graphs drawn and scored. Default 16.
	Candidates int
	// BaseDegree is the concentrated left degree; nodes carry BaseDegree
	// or BaseDegree+1 edges. Default 4.
	BaseDegree int
	// ScreenK is the exhaustive screening cardinality used in scoring
	// (first-failure dominates the score). Default 3.
	ScreenK int
	// ProbeTrials is the Monte Carlo budget for the mid-curve probe.
	// Default 2000.
	ProbeTrials int64
	// Workers bounds simulation goroutines.
	Workers int
}

func (o *Options) setDefaults() {
	if o.Candidates <= 0 {
		o.Candidates = 16
	}
	if o.BaseDegree <= 0 {
		o.BaseDegree = 4
	}
	if o.ScreenK <= 0 {
		o.ScreenK = 3
	}
	if o.ProbeTrials <= 0 {
		o.ProbeTrials = 2000
	}
}

// SearchStats reports the candidate search.
type SearchStats struct {
	Candidates    int
	BestFirstFail int     // first failure of the winner within ScreenK (0 = none found)
	BestMidFail   float64 // winner's failure fraction at the mid-curve probe point
}

// Generate draws Options.Candidates random LEC-style graphs over data data
// nodes and checks check nodes, scores each (later first failure, then
// lower mid-curve failure fraction), and returns the best.
func Generate(data, checks int, opts Options, rng *rand.Rand) (*graph.Graph, SearchStats, error) {
	opts.setDefaults()
	if data < 2 || checks < 2 {
		return nil, SearchStats{}, fmt.Errorf("lec: need at least 2 data and 2 check nodes")
	}
	if opts.BaseDegree >= checks {
		return nil, SearchStats{}, fmt.Errorf("lec: base degree %d too large for %d checks", opts.BaseDegree, checks)
	}

	st := SearchStats{Candidates: opts.Candidates}
	var best *graph.Graph
	bestFF, bestMid := -1, 2.0
	probeK := (data + checks) / 4

	for c := 0; c < opts.Candidates; c++ {
		g, err := draw(data, checks, opts.BaseDegree, rng)
		if err != nil {
			continue // unlucky wiring; try the next candidate
		}
		wc, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: opts.ScreenK, Workers: opts.Workers})
		if err != nil {
			return nil, st, err
		}
		ff := 0
		if wc.Found {
			ff = wc.FirstFailure
		}
		ffScore := ff
		if ffScore == 0 {
			ffScore = opts.ScreenK + 1 // tolerating everything scores best
		}
		prof, err := sim.FailureProfile(g, sim.ProfileOptions{
			Trials: opts.ProbeTrials, MinK: probeK, MaxK: probeK,
			ExhaustiveLimit: 1, Workers: opts.Workers, Seed: uint64(c) + 1,
		})
		if err != nil {
			return nil, st, err
		}
		mid := prof.FailFraction(probeK)

		better := false
		switch {
		case best == nil:
			better = true
		case ffScore > bestScoreFF(bestFF, opts.ScreenK):
			better = true
		case ffScore == bestScoreFF(bestFF, opts.ScreenK) && mid < bestMid:
			better = true
		}
		if better {
			best, bestFF, bestMid = g, ff, mid
		}
	}
	if best == nil {
		return nil, st, fmt.Errorf("lec: no candidate could be wired")
	}
	st.BestFirstFail = bestFF
	st.BestMidFail = bestMid
	best.Name = fmt.Sprintf("lec-%d-deg%d", data+checks, opts.BaseDegree)
	return best, st, nil
}

func bestScoreFF(ff, screenK int) int {
	if ff == 0 {
		return screenK + 1
	}
	return ff
}

// draw wires one candidate: a single level whose left degrees are
// concentrated on {BaseDegree, BaseDegree+1} with the split solved to hit
// the check capacity, realized by weighted distinct sampling.
func draw(data, checks, baseDeg int, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(data)
	rf := b.AddLevel(0, data, checks)
	g := b.Graph()

	// Left degrees: concentrated two-point distribution.
	leftSol, err := dist.Solve(dist.Dist{MinDegree: baseDeg, Weights: []float64{2, 1}}, data)
	if err != nil {
		return nil, err
	}
	edges := leftSol.Edges
	rightSol, err := dist.SolveEdgesMax(dist.PoissonRight(float64(edges)/float64(checks), min(checks, data)), checks, edges, data)
	if err != nil {
		return nil, err
	}
	leftDegs := leftSol.Degrees()
	rightDegs := rightSol.Degrees()
	rng.Shuffle(len(leftDegs), func(i, j int) { leftDegs[i], leftDegs[j] = leftDegs[j], leftDegs[i] })
	rng.Shuffle(len(rightDegs), func(i, j int) { rightDegs[i], rightDegs[j] = rightDegs[j], rightDegs[i] })

	// Weighted distinct sampling, as in the tornado wiring.
	rem := append([]int(nil), leftDegs...)
	for r, d := range rightDegs {
		lefts := make([]int, 0, d)
		for j := 0; j < d; j++ {
			total := 0
			for _, v := range rem {
				if v > 0 {
					total += v
				}
			}
			if total == 0 {
				return nil, fmt.Errorf("lec: stub exhaustion")
			}
			t := rng.IntN(total)
			li := -1
			for i, v := range rem {
				if v <= 0 {
					continue
				}
				if t < v {
					li = i
					break
				}
				t -= v
			}
			if contains(lefts, li) {
				return nil, fmt.Errorf("lec: duplicate pick")
			}
			lefts = append(lefts, li)
			rem[li] = -(rem[li] - 1)
		}
		for i := range lefts {
			rem[lefts[i]] = -rem[lefts[i]]
			lefts[i] += 0 // node IDs equal indices at level 0
		}
		g.SetNeighbors(rf+r, lefts)
	}
	for _, v := range rem {
		if v != 0 {
			return nil, fmt.Errorf("lec: leftover stubs")
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
