// Package steward turns archive sites into a federated data stewarding
// system (paper §5.3, §6): each site serves its Tornado-coded object store
// over HTTP — object upload/download, block-level access for inter-site
// exchange, scrubbing and health introspection — and a Replicator stewards
// every object across two or more sites with complementary graphs,
// performing real byte-level block exchange when a failure pattern defeats
// the sites individually ("by allowing the replicas to exchange the
// missing data nodes, restoring just one critical data node allows the
// data graph to be reconstructed even when both graphs cannot
// independently perform the reconstruction").
package steward

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"tornado/internal/archive"
	"tornado/internal/graphml"
)

// Server exposes one archive site over HTTP. It implements http.Handler.
type Server struct {
	store *archive.Store
	mux   *http.ServeMux
}

// NewServer wraps a site's store.
func NewServer(store *archive.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /objects/{name...}", s.putObject)
	s.mux.HandleFunc("GET /objects/{name...}", s.getObject)
	s.mux.HandleFunc("DELETE /objects/{name...}", s.deleteObject)
	s.mux.HandleFunc("GET /stat/{name...}", s.statObject)
	s.mux.HandleFunc("GET /list", s.listObjects)
	s.mux.HandleFunc("GET /layout", s.layout)
	s.mux.HandleFunc("GET /graph", s.graph)
	s.mux.HandleFunc("GET /blocks/{name...}", s.getBlock)
	s.mux.HandleFunc("PUT /blocks/{name...}", s.putBlock)
	s.mux.HandleFunc("POST /shell/{name...}", s.putShell)
	s.mux.HandleFunc("GET /health", s.health)
	s.mux.HandleFunc("POST /scrub", s.scrub)
	return s
}

// ServeHTTP dispatches to the site API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store returns the underlying archive (for test instrumentation).
func (s *Server) Store() *archive.Store { return s.store }

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, archive.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, archive.ErrExists):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, archive.ErrDataLoss):
		http.Error(w, err.Error(), http.StatusGone)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) putObject(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.Put(r.PathValue("name"), body); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) getObject(w http.ResponseWriter, r *http.Request) {
	data, stats, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Devices-Accessed", strconv.Itoa(stats.DevicesAccessed))
	w.Header().Set("X-Blocks-Repaired", strconv.Itoa(stats.BlocksRepaired))
	w.Write(data)
}

func (s *Server) deleteObject(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("name")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) statObject(w http.ResponseWriter, r *http.Request) {
	obj, err := s.store.Stat(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, obj)
}

func (s *Server) listObjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.List())
}

func (s *Server) layout(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.Layout())
}

func (s *Server) graph(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := graphml.Encode(&buf, s.store.Graph()); err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(buf.Bytes())
}

func blockCoords(r *http.Request) (stripe, node int, err error) {
	stripe, err = strconv.Atoi(r.URL.Query().Get("stripe"))
	if err != nil {
		return 0, 0, fmt.Errorf("steward: bad stripe: %w", err)
	}
	node, err = strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		return 0, 0, fmt.Errorf("steward: bad node: %w", err)
	}
	return stripe, node, nil
}

func (s *Server) getBlock(w http.ResponseWriter, r *http.Request) {
	stripe, node, err := blockCoords(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b, err := s.store.ReadBlock(r.PathValue("name"), stripe, node)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Write(b)
}

func (s *Server) putBlock(w http.ResponseWriter, r *http.Request) {
	stripe, node, err := blockCoords(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<26))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.WriteBlock(r.PathValue("name"), stripe, node, body); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) putShell(w http.ResponseWriter, r *http.Request) {
	size, err := strconv.Atoi(r.URL.Query().Get("size"))
	if err != nil {
		http.Error(w, "steward: bad size", http.StatusBadRequest)
		return
	}
	stripes, err := strconv.Atoi(r.URL.Query().Get("stripes"))
	if err != nil {
		http.Error(w, "steward: bad stripes", http.StatusBadRequest)
		return
	}
	if err := s.store.PutShell(r.PathValue("name"), size, stripes); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Scrub(false)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, rep)
}

func (s *Server) scrub(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Scrub(true)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, rep)
}
