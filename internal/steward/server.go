// Package steward turns archive sites into a federated data stewarding
// system (paper §5.3, §6): each site serves its Tornado-coded object store
// over HTTP — object upload/download, block-level access for inter-site
// exchange, scrubbing and health introspection — and a Replicator stewards
// every object across two or more sites with complementary graphs,
// performing real byte-level block exchange when a failure pattern defeats
// the sites individually ("by allowing the replicas to exchange the
// missing data nodes, restoring just one critical data node allows the
// data graph to be reconstructed even when both graphs cannot
// independently perform the reconstruction").
//
// The stack is context-first and observable: every client method has a
// ...Ctx variant with per-request deadlines and bounded retry, the server
// wraps each route in panic recovery and request metrics and exports them
// at /metrics (JSON, see tornado/internal/obs) next to a /healthz liveness
// probe, and the replicator degrades gracefully around down sites instead
// of stalling a steward pass on the first unreachable peer.
package steward

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tornado/internal/archive"
	"tornado/internal/graphml"
	"tornado/internal/obs"
)

// Server exposes one archive site over HTTP. It implements http.Handler.
// Every route is wrapped in panic recovery and per-route request metrics;
// the metrics are served at /metrics and a liveness probe at /healthz.
type Server struct {
	store   *archive.Store
	mux     *http.ServeMux
	metrics *obs.Registry
}

// NewServer wraps a site's store.
func NewServer(store *archive.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), metrics: obs.NewRegistry()}
	s.route("PUT /objects/{name...}", "put_object", s.putObject)
	s.route("GET /objects/{name...}", "get_object", s.getObject)
	s.route("DELETE /objects/{name...}", "delete_object", s.deleteObject)
	s.route("GET /stat/{name...}", "stat_object", s.statObject)
	s.route("GET /list", "list", s.listObjects)
	s.route("GET /layout", "layout", s.layout)
	s.route("GET /graph", "graph", s.graph)
	s.route("GET /blocks/{name...}", "get_block", s.getBlock)
	s.route("PUT /blocks/{name...}", "put_block", s.putBlock)
	s.route("POST /shell/{name...}", "put_shell", s.putShell)
	s.route("GET /health", "health", s.health)
	s.route("POST /scrub", "scrub", s.scrub)
	// /metrics unions the server's HTTP request metrics with the store's
	// self-healing and scrub counters (archive.*) in one JSON snapshot.
	s.mux.Handle("GET /metrics", obs.MergedHandler(s.metrics, store.Metrics()))
	s.route("GET /healthz", "healthz", s.healthz)
	return s
}

// ServeHTTP dispatches to the site API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store returns the underlying archive (for test instrumentation).
func (s *Server) Store() *archive.Store { return s.store }

// Metrics returns the server's metric registry (also served at /metrics).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// route registers a handler wrapped in the observation middleware; name
// labels the route's metrics (http.<name>.requests / errors / latency).
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(name, h))
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with panic recovery and request metrics. A
// panic is converted to a 500 and counted (server.panics) instead of
// killing the connection servicing goroutine with a stack dump mid-pass.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.metrics.Counter("http." + name + ".requests")
	errs := s.metrics.Counter("http." + name + ".errors")
	latency := s.metrics.Histogram("http." + name + ".latency")
	panics := s.metrics.Counter("server.panics")
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			latency.Observe(time.Since(start))
			if rec := recover(); rec != nil {
				panics.Inc()
				errs.Inc()
				http.Error(sw, fmt.Sprintf("steward: internal error: %v", rec), http.StatusInternalServerError)
				return
			}
			if sw.status >= 500 {
				errs.Inc()
			}
		}()
		h(sw, r)
	}
}

// healthz is the liveness probe: cheap (no scrub), always 200 while the
// process serves, with enough state to see the site is the one you meant.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	lay := s.store.Layout()
	writeJSON(w, map[string]any{
		"status":     "ok",
		"objects":    len(s.store.List()),
		"data_nodes": lay.DataNodes,
		"block_size": lay.BlockSize,
	})
}

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, archive.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, archive.ErrExists):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, archive.ErrDataLoss):
		http.Error(w, err.Error(), http.StatusGone)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) putObject(w http.ResponseWriter, r *http.Request) {
	// Stream the body straight into stripes — the server never buffers a
	// whole object.
	_, err := s.store.PutStream(r.Context(), r.PathValue("name"),
		http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) getObject(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	obj, err := s.store.Stat(name)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(obj.Size))
	if n, _, err := s.store.GetStream(r.Context(), name, w); err != nil {
		if n == 0 {
			// Nothing on the wire yet — the error can still get a status.
			w.Header().Del("Content-Length")
			httpError(w, err)
			return
		}
		// Stripes are already out; the truncated body (vs Content-Length)
		// is the failure signal.
		s.metrics.Counter("steward.get.aborted").Inc()
	}
}

func (s *Server) deleteObject(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("name")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) statObject(w http.ResponseWriter, r *http.Request) {
	obj, err := s.store.Stat(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, obj)
}

func (s *Server) listObjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.List())
}

func (s *Server) layout(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.Layout())
}

func (s *Server) graph(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := graphml.Encode(&buf, s.store.Graph()); err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(buf.Bytes())
}

func blockCoords(r *http.Request) (stripe, node int, err error) {
	stripe, err = strconv.Atoi(r.URL.Query().Get("stripe"))
	if err != nil {
		return 0, 0, fmt.Errorf("steward: bad stripe: %w", err)
	}
	node, err = strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		return 0, 0, fmt.Errorf("steward: bad node: %w", err)
	}
	return stripe, node, nil
}

func (s *Server) getBlock(w http.ResponseWriter, r *http.Request) {
	stripe, node, err := blockCoords(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b, err := s.store.ReadBlock(r.PathValue("name"), stripe, node)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Write(b)
}

func (s *Server) putBlock(w http.ResponseWriter, r *http.Request) {
	stripe, node, err := blockCoords(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<26))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.WriteBlock(r.PathValue("name"), stripe, node, body); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) putShell(w http.ResponseWriter, r *http.Request) {
	size, err := strconv.Atoi(r.URL.Query().Get("size"))
	if err != nil {
		http.Error(w, "steward: bad size", http.StatusBadRequest)
		return
	}
	stripes, err := strconv.Atoi(r.URL.Query().Get("stripes"))
	if err != nil {
		http.Error(w, "steward: bad stripes", http.StatusBadRequest)
		return
	}
	if err := s.store.PutShell(r.PathValue("name"), size, stripes); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.ScrubCtx(r.Context(), false)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, rep)
}

func (s *Server) scrub(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.ScrubCtx(r.Context(), true)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, rep)
}
