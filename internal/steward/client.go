package steward

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"tornado/internal/archive"
	"tornado/internal/graph"
	"tornado/internal/graphml"
)

// Errors surfaced by the client, mapped from the site API's status codes.
var (
	// ErrNotFound mirrors archive.ErrNotFound across the wire.
	ErrNotFound = archive.ErrNotFound
	// ErrExists mirrors archive.ErrExists across the wire.
	ErrExists = archive.ErrExists
	// ErrDataLoss mirrors archive.ErrDataLoss across the wire.
	ErrDataLoss = archive.ErrDataLoss
)

// Client is a typed client for one stewarding site.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the site at baseURL. httpClient may be
// nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

func (c *Client) do(method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode < 300:
		return data, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, bytes.TrimSpace(data))
	case resp.StatusCode == http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", ErrExists, bytes.TrimSpace(data))
	case resp.StatusCode == http.StatusGone:
		return nil, fmt.Errorf("%w: %s", ErrDataLoss, bytes.TrimSpace(data))
	default:
		return nil, fmt.Errorf("steward: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data))
	}
}

// Put uploads an object.
func (c *Client) Put(name string, data []byte) error {
	_, err := c.do(http.MethodPut, "/objects/"+escape(name), data)
	return err
}

// Get downloads an object, reconstructing at the site if needed.
func (c *Client) Get(name string) ([]byte, error) {
	return c.do(http.MethodGet, "/objects/"+escape(name), nil)
}

// Delete removes an object.
func (c *Client) Delete(name string) error {
	_, err := c.do(http.MethodDelete, "/objects/"+escape(name), nil)
	return err
}

// Stat fetches an object's metadata.
func (c *Client) Stat(name string) (archive.Object, error) {
	data, err := c.do(http.MethodGet, "/stat/"+escape(name), nil)
	if err != nil {
		return archive.Object{}, err
	}
	var obj archive.Object
	if err := json.Unmarshal(data, &obj); err != nil {
		return archive.Object{}, fmt.Errorf("steward: stat decode: %w", err)
	}
	return obj, nil
}

// List fetches the site's object listing.
func (c *Client) List() ([]archive.Object, error) {
	data, err := c.do(http.MethodGet, "/list", nil)
	if err != nil {
		return nil, err
	}
	var objs []archive.Object
	if err := json.Unmarshal(data, &objs); err != nil {
		return nil, fmt.Errorf("steward: list decode: %w", err)
	}
	return objs, nil
}

// Layout fetches the site's striping parameters.
func (c *Client) Layout() (archive.StripeLayout, error) {
	data, err := c.do(http.MethodGet, "/layout", nil)
	if err != nil {
		return archive.StripeLayout{}, err
	}
	var lay archive.StripeLayout
	if err := json.Unmarshal(data, &lay); err != nil {
		return archive.StripeLayout{}, fmt.Errorf("steward: layout decode: %w", err)
	}
	return lay, nil
}

// Graph fetches the site's erasure graph (GraphML over the wire).
func (c *Client) Graph() (*graph.Graph, error) {
	data, err := c.do(http.MethodGet, "/graph", nil)
	if err != nil {
		return nil, err
	}
	return graphml.Decode(bytes.NewReader(data))
}

// ReadBlock fetches one verified block; missing, rotted, and out-of-range
// blocks all report ErrNotFound.
func (c *Client) ReadBlock(name string, stripe, node int) ([]byte, error) {
	return c.do(http.MethodGet, fmt.Sprintf("/blocks/%s?stripe=%d&node=%d", escape(name), stripe, node), nil)
}

// WriteBlock restores one block to its home device at the site.
func (c *Client) WriteBlock(name string, stripe, node int, payload []byte) error {
	_, err := c.do(http.MethodPut, fmt.Sprintf("/blocks/%s?stripe=%d&node=%d", escape(name), stripe, node), payload)
	return err
}

// PutShell registers object metadata at the site without uploading data
// (blocks follow via WriteBlock).
func (c *Client) PutShell(name string, size, stripes int) error {
	_, err := c.do(http.MethodPost, fmt.Sprintf("/shell/%s?size=%d&stripes=%d", escape(name), size, stripes), nil)
	return err
}

// Health runs a non-mutating scrub at the site and returns the report.
func (c *Client) Health() (archive.ScrubReport, error) {
	return c.scrub(http.MethodGet, "/health")
}

// Scrub runs a repairing scrub at the site and returns the report.
func (c *Client) Scrub() (archive.ScrubReport, error) {
	return c.scrub(http.MethodPost, "/scrub")
}

func (c *Client) scrub(method, path string) (archive.ScrubReport, error) {
	data, err := c.do(method, path, nil)
	if err != nil {
		return archive.ScrubReport{}, err
	}
	var rep archive.ScrubReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return archive.ScrubReport{}, fmt.Errorf("steward: scrub decode: %w", err)
	}
	return rep, nil
}

// IsNotFound reports whether err is the cross-site not-found error.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

func escape(name string) string {
	// Object names may contain slashes (they are path-like); escape each
	// segment so the wildcard route reassembles them.
	segs := bytes.Split([]byte(name), []byte("/"))
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = url.PathEscape(string(s))
	}
	return joinSlash(out)
}

func joinSlash(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += p
	}
	return s
}
