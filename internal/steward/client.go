package steward

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"tornado/internal/archive"
	"tornado/internal/graph"
	"tornado/internal/graphml"
	"tornado/internal/obs"
)

// Errors surfaced by the client, mapped from the site API's status codes.
var (
	// ErrNotFound mirrors archive.ErrNotFound across the wire.
	ErrNotFound = archive.ErrNotFound
	// ErrExists mirrors archive.ErrExists across the wire.
	ErrExists = archive.ErrExists
	// ErrDataLoss mirrors archive.ErrDataLoss across the wire.
	ErrDataLoss = archive.ErrDataLoss
	// ErrUnavailable wraps transport failures and 5xx responses that
	// persist after the retry budget: the site is down or unreachable, not
	// merely missing an object. The replicator uses it to mark a site
	// unhealthy instead of failing a whole steward pass.
	ErrUnavailable = errors.New("steward: site unavailable")
)

// Client option defaults.
const (
	// DefaultRequestTimeout is the per-attempt deadline.
	DefaultRequestTimeout = 10 * time.Second
	// DefaultMaxAttempts is the total number of tries per request
	// (the first attempt plus retries).
	DefaultMaxAttempts = 3
	// DefaultBaseBackoff is the delay before the first retry; it doubles
	// per attempt up to DefaultMaxBackoff, with ±50% jitter.
	DefaultBaseBackoff = 50 * time.Millisecond
	// DefaultMaxBackoff caps the exponential backoff.
	DefaultMaxBackoff = 2 * time.Second
)

// ClientOptions tunes a site client. The zero value gets the Default*
// constants (normalize(), the package option idiom).
type ClientOptions struct {
	// HTTPClient performs the requests; nil means http.DefaultClient.
	HTTPClient *http.Client
	// RequestTimeout bounds each attempt (not the whole retried call).
	RequestTimeout time.Duration
	// MaxAttempts is the total tries per request: 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay before the first retry;
	// subsequent retries double it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth.
	MaxBackoff time.Duration
	// Metrics receives client.requests / client.retries / client.failures
	// counters and the client.latency histogram; nil creates a private
	// registry (reachable via Client.Metrics).
	Metrics *obs.Registry
}

func (o ClientOptions) normalize() ClientOptions {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Client is a typed client for one stewarding site. Every method has a
// context-first variant (GetCtx, PutCtx, ...); the short names delegate
// with context.Background(). Each request carries a per-attempt deadline
// and is retried with bounded exponential backoff and jitter on transport
// errors and 5xx responses — never on 4xx, which are real answers.
type Client struct {
	base    *url.URL
	baseErr error // deferred NewClient parse failure, reported per call
	opts    ClientOptions
}

// NewClient returns a client for the site at baseURL. httpClient may be
// nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return NewClientWithOptions(baseURL, ClientOptions{HTTPClient: httpClient})
}

// NewClientWithOptions returns a client with explicit timeout/retry/metrics
// configuration.
func NewClientWithOptions(baseURL string, opts ClientOptions) *Client {
	c := &Client{opts: opts.normalize()}
	c.base, c.baseErr = url.Parse(strings.TrimSuffix(baseURL, "/"))
	return c
}

// BaseURL returns the site's base URL string.
func (c *Client) BaseURL() string {
	if c.base == nil {
		return ""
	}
	return c.base.String()
}

// Metrics returns the client's metric registry.
func (c *Client) Metrics() *obs.Registry { return c.opts.Metrics }

// endpoint builds the request URL from path segments and query values —
// url.JoinPath plus url.Values, never string concatenation, so hostile
// object names ("50%", "a?b", names with spaces) round-trip.
func (c *Client) endpoint(query url.Values, segments ...string) string {
	u := c.base.JoinPath(segments...)
	if len(query) > 0 {
		u.RawQuery = query.Encode()
	}
	return u.String()
}

// backoff returns the pre-attempt delay: base·2^(attempt−1) capped at max,
// jittered to 50–150% so synchronized clients spread out.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

func (c *Client) do(ctx context.Context, method string, query url.Values, body []byte, segments ...string) ([]byte, error) {
	if c.baseErr != nil {
		return nil, fmt.Errorf("steward: bad base URL: %w", c.baseErr)
	}
	m := c.opts.Metrics
	m.Counter("client.requests").Inc()
	start := time.Now()
	defer func() { m.Histogram("client.latency").Observe(time.Since(start)) }()

	target := c.endpoint(query, segments...)
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			m.Counter("client.retries").Inc()
			select {
			case <-time.After(c.backoff(attempt - 1)):
			case <-ctx.Done():
				m.Counter("client.failures").Inc()
				return nil, ctx.Err()
			}
		}
		data, status, err := c.attempt(ctx, method, target, body)
		if err == nil && status < 300 {
			return data, nil
		}
		if err == nil && status < 500 {
			// A definitive site answer: map it, never retry.
			m.Counter("client.failures").Inc()
			return nil, mapStatus(method, target, status, data)
		}
		// Transport error or 5xx.
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("%s %s: HTTP %d: %s", method, target, status, bytes.TrimSpace(data))
		}
		if ctx.Err() != nil {
			m.Counter("client.failures").Inc()
			return nil, ctx.Err()
		}
	}
	m.Counter("client.failures").Inc()
	return nil, fmt.Errorf("%w: %v (after %d attempts)", ErrUnavailable, lastErr, c.opts.MaxAttempts)
}

// attempt performs one HTTP round trip under the per-attempt deadline.
func (c *Client) attempt(ctx context.Context, method, target string, body []byte) (data []byte, status int, err error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, target, rd)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return data, resp.StatusCode, nil
}

// mapStatus translates the site API's definitive (non-5xx) error statuses
// into the shared archive error values.
func mapStatus(method, target string, status int, body []byte) error {
	msg := bytes.TrimSpace(body)
	switch status {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrExists, msg)
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrDataLoss, msg)
	default:
		return fmt.Errorf("steward: %s %s: HTTP %d: %s", method, target, status, msg)
	}
}

// nameSegments splits a path-like object name into its segments and
// percent-escapes each one, so hostile characters ("%", "?", "#", spaces)
// round-trip and the server's wildcard route reassembles the name.
// url.JoinPath treats its elements as already-escaped path, so escaping
// here is load-bearing: a raw "%" would otherwise invalidate the URL.
func nameSegments(prefix, name string) []string {
	segs := []string{prefix}
	for _, s := range strings.Split(name, "/") {
		segs = append(segs, url.PathEscape(s))
	}
	return segs
}

func blockQuery(stripe, node int) url.Values {
	return url.Values{
		"stripe": []string{strconv.Itoa(stripe)},
		"node":   []string{strconv.Itoa(node)},
	}
}

// PutCtx uploads an object.
func (c *Client) PutCtx(ctx context.Context, name string, data []byte) error {
	_, err := c.do(ctx, http.MethodPut, nil, data, nameSegments("objects", name)...)
	return err
}

// Put uploads an object.
func (c *Client) Put(name string, data []byte) error {
	return c.PutCtx(context.Background(), name, data)
}

// GetCtx downloads an object, reconstructing at the site if needed.
func (c *Client) GetCtx(ctx context.Context, name string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, nil, nil, nameSegments("objects", name)...)
}

// Get downloads an object, reconstructing at the site if needed.
func (c *Client) Get(name string) ([]byte, error) {
	return c.GetCtx(context.Background(), name)
}

// DeleteCtx removes an object.
func (c *Client) DeleteCtx(ctx context.Context, name string) error {
	_, err := c.do(ctx, http.MethodDelete, nil, nil, nameSegments("objects", name)...)
	return err
}

// Delete removes an object.
func (c *Client) Delete(name string) error {
	return c.DeleteCtx(context.Background(), name)
}

// StatCtx fetches an object's metadata.
func (c *Client) StatCtx(ctx context.Context, name string) (archive.Object, error) {
	data, err := c.do(ctx, http.MethodGet, nil, nil, nameSegments("stat", name)...)
	if err != nil {
		return archive.Object{}, err
	}
	var obj archive.Object
	if err := json.Unmarshal(data, &obj); err != nil {
		return archive.Object{}, fmt.Errorf("steward: stat decode: %w", err)
	}
	return obj, nil
}

// Stat fetches an object's metadata.
func (c *Client) Stat(name string) (archive.Object, error) {
	return c.StatCtx(context.Background(), name)
}

// ListCtx fetches the site's object listing.
func (c *Client) ListCtx(ctx context.Context) ([]archive.Object, error) {
	data, err := c.do(ctx, http.MethodGet, nil, nil, "list")
	if err != nil {
		return nil, err
	}
	var objs []archive.Object
	if err := json.Unmarshal(data, &objs); err != nil {
		return nil, fmt.Errorf("steward: list decode: %w", err)
	}
	return objs, nil
}

// List fetches the site's object listing.
func (c *Client) List() ([]archive.Object, error) {
	return c.ListCtx(context.Background())
}

// LayoutCtx fetches the site's striping parameters.
func (c *Client) LayoutCtx(ctx context.Context) (archive.StripeLayout, error) {
	data, err := c.do(ctx, http.MethodGet, nil, nil, "layout")
	if err != nil {
		return archive.StripeLayout{}, err
	}
	var lay archive.StripeLayout
	if err := json.Unmarshal(data, &lay); err != nil {
		return archive.StripeLayout{}, fmt.Errorf("steward: layout decode: %w", err)
	}
	return lay, nil
}

// Layout fetches the site's striping parameters.
func (c *Client) Layout() (archive.StripeLayout, error) {
	return c.LayoutCtx(context.Background())
}

// GraphCtx fetches the site's erasure graph (GraphML over the wire).
func (c *Client) GraphCtx(ctx context.Context) (*graph.Graph, error) {
	data, err := c.do(ctx, http.MethodGet, nil, nil, "graph")
	if err != nil {
		return nil, err
	}
	return graphml.Decode(bytes.NewReader(data))
}

// Graph fetches the site's erasure graph (GraphML over the wire).
func (c *Client) Graph() (*graph.Graph, error) {
	return c.GraphCtx(context.Background())
}

// ReadBlockCtx fetches one verified block; missing, rotted, and
// out-of-range blocks all report ErrNotFound.
func (c *Client) ReadBlockCtx(ctx context.Context, name string, stripe, node int) ([]byte, error) {
	return c.do(ctx, http.MethodGet, blockQuery(stripe, node), nil, nameSegments("blocks", name)...)
}

// ReadBlock fetches one verified block; missing, rotted, and out-of-range
// blocks all report ErrNotFound.
func (c *Client) ReadBlock(name string, stripe, node int) ([]byte, error) {
	return c.ReadBlockCtx(context.Background(), name, stripe, node)
}

// WriteBlockCtx restores one block to its home device at the site.
func (c *Client) WriteBlockCtx(ctx context.Context, name string, stripe, node int, payload []byte) error {
	_, err := c.do(ctx, http.MethodPut, blockQuery(stripe, node), payload, nameSegments("blocks", name)...)
	return err
}

// WriteBlock restores one block to its home device at the site.
func (c *Client) WriteBlock(name string, stripe, node int, payload []byte) error {
	return c.WriteBlockCtx(context.Background(), name, stripe, node, payload)
}

// PutShellCtx registers object metadata at the site without uploading data
// (blocks follow via WriteBlock).
func (c *Client) PutShellCtx(ctx context.Context, name string, size, stripes int) error {
	q := url.Values{
		"size":    []string{strconv.Itoa(size)},
		"stripes": []string{strconv.Itoa(stripes)},
	}
	_, err := c.do(ctx, http.MethodPost, q, nil, nameSegments("shell", name)...)
	return err
}

// PutShell registers object metadata at the site without uploading data
// (blocks follow via WriteBlock).
func (c *Client) PutShell(name string, size, stripes int) error {
	return c.PutShellCtx(context.Background(), name, size, stripes)
}

// HealthCtx runs a non-mutating scrub at the site and returns the report.
func (c *Client) HealthCtx(ctx context.Context) (archive.ScrubReport, error) {
	return c.scrub(ctx, http.MethodGet, "health")
}

// Health runs a non-mutating scrub at the site and returns the report.
func (c *Client) Health() (archive.ScrubReport, error) {
	return c.HealthCtx(context.Background())
}

// ScrubCtx runs a repairing scrub at the site and returns the report.
func (c *Client) ScrubCtx(ctx context.Context) (archive.ScrubReport, error) {
	return c.scrub(ctx, http.MethodPost, "scrub")
}

// Scrub runs a repairing scrub at the site and returns the report.
func (c *Client) Scrub() (archive.ScrubReport, error) {
	return c.ScrubCtx(context.Background())
}

func (c *Client) scrub(ctx context.Context, method, path string) (archive.ScrubReport, error) {
	data, err := c.do(ctx, method, nil, nil, path)
	if err != nil {
		return archive.ScrubReport{}, err
	}
	var rep archive.ScrubReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return archive.ScrubReport{}, fmt.Errorf("steward: scrub decode: %w", err)
	}
	return rep, nil
}

// IsNotFound reports whether err is the cross-site not-found error.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// IsUnavailable reports whether err means the site itself is down or
// unreachable (as opposed to a definitive answer about an object).
func IsUnavailable(err error) bool { return errors.Is(err, ErrUnavailable) }
