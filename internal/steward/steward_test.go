package steward

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"net/http/httptest"
	"testing"

	"tornado/internal/archive"
	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// site spins up one in-process stewarding site.
type site struct {
	store   *archive.Store
	devices device.Array
	client  *Client
	srv     *Server
	httpSrv *httptest.Server
}

func newSite(t *testing.T, seed uint64, blockSize int) *site {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return newSiteWithGraph(t, g, blockSize)
}

func newSiteWithGraph(t *testing.T, g *graph.Graph, blockSize int) *site {
	t.Helper()
	devices := device.NewArray(g.Total)
	store, err := archive.New(g, devices, archive.Config{BlockSize: blockSize, FirstFailure: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(store)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &site{
		store:   store,
		devices: devices,
		client:  NewClient(srv.URL, srv.Client()),
		srv:     h,
		httpSrv: srv,
	}
}

func randPayload(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 0))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestClientServerCRUD(t *testing.T) {
	s := newSite(t, 1, 64)
	c := s.client
	data := randPayload(900, 1)

	if err := c.Put("docs/report.dat", data); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("docs/report.dat", data); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate put: %v", err)
	}
	got, err := c.Get("docs/report.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %v", err)
	}
	obj, err := c.Stat("docs/report.dat")
	if err != nil || obj.Size != 900 {
		t.Fatalf("stat: %+v %v", obj, err)
	}
	objs, err := c.List()
	if err != nil || len(objs) != 1 || objs[0].Name != "docs/report.dat" {
		t.Fatalf("list: %+v %v", objs, err)
	}
	if err := c.Delete("docs/report.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("docs/report.dat"); !IsNotFound(err) {
		t.Errorf("get after delete: %v", err)
	}
	if err := c.Delete("docs/report.dat"); !IsNotFound(err) {
		t.Errorf("double delete: %v", err)
	}
}

func TestClientLayoutAndGraph(t *testing.T) {
	s := newSite(t, 2, 128)
	lay, err := s.client.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if lay.BlockSize != 128 || lay.DataNodes != 48 || lay.NodesPerStripe != 96 {
		t.Errorf("layout: %+v", lay)
	}
	g, err := s.client.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 96 || g.Validate() != nil {
		t.Errorf("graph over the wire: %v", g)
	}
	if g.EdgeCount() != s.store.Graph().EdgeCount() {
		t.Error("graph edges differ after transport")
	}
}

func TestClientBlocksAndShell(t *testing.T) {
	s := newSite(t, 3, 64)
	data := randPayload(500, 3)
	if err := s.client.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	b, err := s.client.ReadBlock("obj", 0, 0)
	if err != nil || !bytes.Equal(b, data[:64]) {
		t.Fatalf("read block: %v", err)
	}
	if _, err := s.client.ReadBlock("obj", 0, 9999); !IsNotFound(err) {
		t.Errorf("oob block: %v", err)
	}
	// Shell + block-level restore on a second object.
	if err := s.client.PutShell("copy", len(data), 1); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 96; node++ {
		src, err := s.client.ReadBlock("obj", 0, node)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.client.WriteBlock("copy", 0, node, src); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.client.Get("copy")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("shell copy get: %v", err)
	}
}

func TestClientHealthAndScrub(t *testing.T) {
	s := newSite(t, 4, 64)
	if err := s.client.Put("obj", randPayload(300, 4)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.client.Health()
	if err != nil || len(rep.Stripes) != 1 {
		t.Fatalf("health: %+v %v", rep, err)
	}
	// Kill and replace a device; scrub over the wire must repair.
	s.devices[7].Fail()
	s.devices[7].Replace()
	rep, err = s.client.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRepaired == 0 {
		t.Errorf("remote scrub repaired nothing: %+v", rep)
	}
}

func TestServerReportsDataLossAsGone(t *testing.T) {
	s := newSite(t, 5, 64)
	if err := s.client.Put("obj", randPayload(100, 5)); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.devices {
		d.Fail()
	}
	_, err := s.client.Get("obj")
	if !errors.Is(err, ErrDataLoss) {
		t.Errorf("err = %v, want ErrDataLoss", err)
	}
}

func TestReplicatorPutGetFallback(t *testing.T) {
	a := newSite(t, 10, 64)
	b := newSite(t, 11, 64)
	r, err := NewReplicator(a.client, b.client)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sites() != 2 {
		t.Fatal("site count")
	}
	data := randPayload(1200, 10)
	if err := r.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Both sites hold it independently.
	for _, s := range []*site{a, b} {
		got, err := s.client.Get("obj")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("site get: %v", err)
		}
	}
	// Destroy site A entirely: the replicator falls back to B.
	for _, d := range a.devices {
		d.Fail()
	}
	got, err := r.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fallback get: %v", err)
	}
	if err := r.Delete("obj"); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatorValidation(t *testing.T) {
	a := newSite(t, 12, 64)
	if _, err := NewReplicator(a.client); err == nil {
		t.Error("single site accepted")
	}
	mismatch := newSite(t, 13, 128)
	if _, err := NewReplicator(a.client, mismatch.client); err == nil {
		t.Error("mismatched block size accepted")
	}
}

// criticalSet finds a smallest failing erasure pattern of g.
func criticalSet(t *testing.T, g *graph.Graph) ([]int, []int) {
	t.Helper()
	wc, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Found {
		t.Skip("graph tolerates 4 losses; no cheap critical set for the exchange scenario")
	}
	last := wc.PerK[len(wc.PerK)-1]
	set := last.Failures[0]
	res := decode.New(g).Decode(set)
	return set, res.UnrecoveredData
}

// TestFederatedBlockExchange is the §5.3 headline with real bytes: both
// sites are hit by their own critical failure patterns, neither can serve
// the object, and the replicator recovers it by exchanging blocks.
func TestFederatedBlockExchange(t *testing.T) {
	a := newSite(t, 20, 64)
	b := newSite(t, 21, 64)
	setA, lostA := criticalSet(t, a.store.Graph())
	setB, lostB := criticalSet(t, b.store.Graph())
	// The scenario needs the two sites to lose different data blocks.
	if overlap(lostA, lostB) {
		t.Skipf("draws share lost blocks (%v vs %v)", lostA, lostB)
	}

	r, err := NewReplicator(a.client, b.client)
	if err != nil {
		t.Fatal(err)
	}
	data := randPayload(48*64, 20) // one full stripe
	if err := r.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	for _, v := range setA {
		a.devices[v].Fail()
	}
	for _, v := range setB {
		b.devices[v].Fail()
	}
	// Each site alone reports data loss.
	if _, err := a.client.Get("obj"); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("site A should have lost data: %v", err)
	}
	if _, err := b.client.Get("obj"); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("site B should have lost data: %v", err)
	}
	// The federation exchanges blocks and recovers.
	got, err := r.Get("obj")
	if err != nil {
		t.Fatalf("federated get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recovered payload differs")
	}

	// Close the loop: replace dead drives, push the recovery back, and
	// verify each site can serve alone again.
	for _, v := range setA {
		a.devices[v].Replace()
	}
	for _, v := range setB {
		b.devices[v].Replace()
	}
	if err := r.RestoreSites("obj", got); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*site{a, b} {
		back, err := s.client.Get("obj")
		if err != nil || !bytes.Equal(back, data) {
			t.Fatalf("site %d cannot serve after restore: %v", i, err)
		}
	}
}

func overlap(a, b []int) bool {
	set := map[int]bool{}
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if set[v] {
			return true
		}
	}
	return false
}

func TestExchangeRecoverFailsWhenTrulyGone(t *testing.T) {
	a := newSite(t, 30, 64)
	b := newSite(t, 31, 64)
	r, err := NewReplicator(a.client, b.client)
	if err != nil {
		t.Fatal(err)
	}
	data := randPayload(600, 30)
	if err := r.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	for _, d := range a.devices {
		d.Fail()
	}
	for _, d := range b.devices {
		d.Fail()
	}
	if _, err := r.Get("obj"); !errors.Is(err, ErrDataLoss) {
		t.Errorf("err = %v, want ErrDataLoss", err)
	}
}

func TestEscapedObjectNames(t *testing.T) {
	s := newSite(t, 40, 64)
	name := "dir with space/α/β.dat"
	data := randPayload(100, 40)
	if err := s.client.Put(name, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.client.Get(name)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("unicode name round trip: %v", err)
	}
}
