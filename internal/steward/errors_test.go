package steward

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestClientConnectionRefused(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if err := c.Put("x", []byte("data")); err == nil {
		t.Error("put to dead site succeeded")
	}
	if _, err := c.List(); err == nil {
		t.Error("list from dead site succeeded")
	}
}

func TestClientServerErrorsMapped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.Contains(r.URL.Path, "missing"):
			http.Error(w, "nope", http.StatusNotFound)
		case strings.Contains(r.URL.Path, "dup"):
			http.Error(w, "already", http.StatusConflict)
		case strings.Contains(r.URL.Path, "lost"):
			http.Error(w, "gone", http.StatusGone)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	if _, err := c.Get("missing"); !IsNotFound(err) {
		t.Errorf("404 mapped to %v", err)
	}
	if err := c.Put("dup", nil); err == nil || IsNotFound(err) {
		t.Errorf("409 mapped to %v", err)
	}
	if _, err := c.Get("lost"); err == nil || IsNotFound(err) {
		t.Errorf("410 mapped to %v", err)
	}
	if _, err := c.Get("other"); err == nil {
		t.Error("500 swallowed")
	}
}

func TestClientGarbageJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not json"))
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.List(); err == nil {
		t.Error("garbage list accepted")
	}
	if _, err := c.Stat("x"); err == nil {
		t.Error("garbage stat accepted")
	}
	if _, err := c.Layout(); err == nil {
		t.Error("garbage layout accepted")
	}
	if _, err := c.Health(); err == nil {
		t.Error("garbage health accepted")
	}
	if _, err := c.Graph(); err == nil {
		t.Error("garbage graph accepted")
	}
}

func TestServerBadBlockParams(t *testing.T) {
	s := newSite(t, 50, 64)
	for _, path := range []string{
		"/blocks/obj",                      // no coords
		"/blocks/obj?stripe=x&node=0",      // bad stripe
		"/blocks/obj?stripe=0&node=banana", // bad node
		"/shell/obj?size=x&stripes=1",      // bad size
		"/shell/obj?size=1&stripes=x",      // bad stripes
	} {
		resp, err := s.httpSrv.Client().Get(s.httpSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// /shell is POST-only; GET gives 405, others 400 — either way not 2xx.
		if resp.StatusCode < 400 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestServerMethodRouting(t *testing.T) {
	s := newSite(t, 51, 64)
	// POST to an object path is not routed.
	resp, err := s.httpSrv.Client().Post(s.httpSrv.URL+"/objects/x", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /objects status %d", resp.StatusCode)
	}
}

func TestReplicatorPutRollsBack(t *testing.T) {
	a := newSite(t, 52, 64)
	b := newSite(t, 53, 64)
	r, err := NewReplicator(a.client, b.client)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-claim the name at site B so the replicated put fails there.
	if err := b.client.Put("obj", []byte("previous")); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("obj", randPayload(100, 52)); err == nil {
		t.Fatal("conflicting put succeeded")
	}
	// The rollback must have removed site A's copy.
	if _, err := a.client.Get("obj"); !IsNotFound(err) {
		t.Errorf("site A still holds the rolled-back object: %v", err)
	}
}
