package steward

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastOptions keeps retry tests quick: real backoff shape, tiny delays.
func fastOptions(hc *http.Client) ClientOptions {
	return ClientOptions{
		HTTPClient:  hc,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	}
}

// flakySite answers 5xx for the first failN requests, then delegates.
func flakySite(failN int64, next http.Handler) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= failN {
			http.Error(w, "transient overload", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	}))
	return srv, &hits
}

func TestClientRetriesTransientServerErrors(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("[]"))
	})
	srv, hits := flakySite(2, ok)
	defer srv.Close()

	c := NewClientWithOptions(srv.URL, fastOptions(srv.Client()))
	objs, err := c.List()
	if err != nil {
		t.Fatalf("list through flaky site: %v", err)
	}
	if len(objs) != 0 {
		t.Errorf("objs = %v", objs)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 failures + success)", got)
	}
	snap := c.Metrics().Snapshot()
	if snap.Counters["client.retries"] != 2 {
		t.Errorf("client.retries = %d, want 2", snap.Counters["client.retries"])
	}
	if snap.Counters["client.failures"] != 0 {
		t.Errorf("client.failures = %d, want 0", snap.Counters["client.failures"])
	}
}

func TestClientReportsUnavailableAfterRetryBudget(t *testing.T) {
	srv, hits := flakySite(1<<30, nil) // never recovers
	defer srv.Close()

	c := NewClientWithOptions(srv.URL, fastOptions(srv.Client()))
	_, err := c.List()
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want MaxAttempts=3", got)
	}
	snap := c.Metrics().Snapshot()
	if snap.Counters["client.failures"] != 1 {
		t.Errorf("client.failures = %d, want 1", snap.Counters["client.failures"])
	}
}

func TestClientNeverRetries4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such object", http.StatusNotFound)
	}))
	defer srv.Close()

	c := NewClientWithOptions(srv.URL, fastOptions(srv.Client()))
	_, err := c.Get("missing")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if IsUnavailable(err) {
		t.Error("definitive 404 classified as site-unavailable")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want exactly 1 (4xx must not retry)", got)
	}
	if n := c.Metrics().Snapshot().Counters["client.retries"]; n != 0 {
		t.Errorf("client.retries = %d, want 0", n)
	}
}

func TestClientHonorsCancellationDuringBackoff(t *testing.T) {
	srv, _ := flakySite(1<<30, nil)
	defer srv.Close()

	opts := fastOptions(srv.Client())
	opts.BaseBackoff = time.Hour // park the retry loop in its backoff sleep
	opts.MaxBackoff = time.Hour
	c := NewClientWithOptions(srv.URL, opts)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.ListCtx(ctx)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestHostileObjectNames is the regression test for the URL-building bugfix:
// string concatenation mangled names containing %, ?, #, &, spaces, and
// unicode; url.JoinPath + PathEscape must round-trip them all.
func TestHostileObjectNames(t *testing.T) {
	s := newSite(t, 60, 64)
	names := []string{
		"we ird/50%/a?b#c",
		"100%",
		"a&b=c",
		"q?x=1&y=2",
		"frag#ment",
		"spaced out name",
		"αβγ/δ.dat",
		"plus+sign",
		"semi;colon",
	}
	for _, name := range names {
		data := randPayload(150, 60)
		if err := s.client.Put(name, data); err != nil {
			t.Errorf("put %q: %v", name, err)
			continue
		}
		got, err := s.client.Get(name)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("get %q: %v", name, err)
			continue
		}
		obj, err := s.client.Stat(name)
		if err != nil || obj.Name != name {
			t.Errorf("stat %q → %q, %v", name, obj.Name, err)
		}
		if b, err := s.client.ReadBlock(name, 0, 0); err != nil || !bytes.Equal(b, data[:64]) {
			t.Errorf("read block of %q: %v", name, err)
		}
		if err := s.client.Delete(name); err != nil {
			t.Errorf("delete %q: %v", name, err)
		}
		if _, err := s.client.Get(name); !IsNotFound(err) {
			t.Errorf("get after delete %q: %v", name, err)
		}
	}
}

func TestClientTrailingSlashBaseURL(t *testing.T) {
	s := newSite(t, 61, 64)
	c := NewClient(s.httpSrv.URL+"/", s.httpSrv.Client())
	data := randPayload(100, 61)
	if err := c.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("trailing-slash base: %v", err)
	}
}

func TestServerPanicRecovery(t *testing.T) {
	s := newSite(t, 62, 64)
	boom := s.srv.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	boom(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	snap := s.srv.Metrics().Snapshot()
	if snap.Counters["server.panics"] != 1 {
		t.Errorf("server.panics = %d, want 1", snap.Counters["server.panics"])
	}
	if snap.Counters["http.boom.errors"] != 1 {
		t.Errorf("http.boom.errors = %d, want 1", snap.Counters["http.boom.errors"])
	}
}

func TestServerMetricsAndHealthzEndpoints(t *testing.T) {
	s := newSite(t, 63, 64)
	if err := s.client.Put("obj", randPayload(64, 63)); err != nil {
		t.Fatal(err)
	}
	resp, err := s.httpSrv.Client().Get(s.httpSrv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status=%v", err, resp)
	}
	resp.Body.Close()
	resp, err = s.httpSrv.Client().Get(s.httpSrv.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	snap := s.srv.Metrics().Snapshot()
	if snap.Counters["http.put_object.requests"] != 1 {
		t.Errorf("put_object.requests = %d, want 1", snap.Counters["http.put_object.requests"])
	}
	if snap.Histograms["http.put_object.latency"].Count != 1 {
		t.Error("put latency not observed")
	}
}

// threeSiteFederation builds a 3-site replicator with fast retry options.
func threeSiteFederation(t *testing.T) (sites []*site, r *Replicator) {
	t.Helper()
	for i := uint64(0); i < 3; i++ {
		sites = append(sites, newSite(t, 70+i, 64))
	}
	var clients []*Client
	for _, s := range sites {
		clients = append(clients, NewClientWithOptions(s.httpSrv.URL, fastOptions(s.httpSrv.Client())))
	}
	r, err := NewReplicator(clients...)
	if err != nil {
		t.Fatal(err)
	}
	return sites, r
}

// TestStewardPassDegradesAroundDeadSite is the issue's acceptance scenario:
// three sites, one hard-down; the pass completes, records the dead site
// unhealthy in the metrics, and repairs everything the two live sites can
// cover.
func TestStewardPassDegradesAroundDeadSite(t *testing.T) {
	sites, r := threeSiteFederation(t)

	objA := randPayload(500, 70)
	objB := randPayload(300, 71)
	if err := r.Put("alpha", objA); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("beta", objB); err != nil {
		t.Fatal(err)
	}
	// Site 1 loses its copy of beta (simulated local mishap) so the pass
	// has something to re-replicate.
	if err := sites[1].client.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	// Site 2 goes hard down.
	sites[2].httpSrv.Close()

	rep, err := r.StewardPass(context.Background())
	if err != nil {
		t.Fatalf("steward pass with one dead site: %v", err)
	}
	if len(rep.SkippedSites) != 1 || rep.SkippedSites[0] != 2 {
		t.Errorf("SkippedSites = %v, want [2]", rep.SkippedSites)
	}
	if rep.ObjectsExamined != 2 {
		t.Errorf("ObjectsExamined = %d, want 2", rep.ObjectsExamined)
	}
	if rep.ObjectsRestored != 1 {
		t.Errorf("ObjectsRestored = %d, want 1 (beta back to site 1)", rep.ObjectsRestored)
	}
	if len(rep.Unrecoverable) != 0 {
		t.Errorf("Unrecoverable = %v", rep.Unrecoverable)
	}

	// The repair is real: site 1 serves beta again on its own.
	got, err := sites[1].client.Get("beta")
	if err != nil || !bytes.Equal(got, objB) {
		t.Fatalf("site 1 beta after pass: %v", err)
	}

	// The outage is recorded in the metrics registry.
	snap := r.Metrics().Snapshot()
	if v := snap.Gauges["steward.site.2.healthy"]; v != 0 {
		t.Errorf("steward.site.2.healthy = %d, want 0", v)
	}
	if v := snap.Gauges["steward.site.0.healthy"]; v != 1 {
		t.Errorf("steward.site.0.healthy = %d, want 1", v)
	}
	if snap.Counters["steward.site_down_detected"] < 1 {
		t.Error("no site-down detection recorded")
	}
	for _, st := range rep.Sites {
		if st.Site == 2 {
			if st.Healthy || st.LastError == "" {
				t.Errorf("site 2 status = %+v, want unhealthy with error", st)
			}
		} else if !st.Healthy {
			t.Errorf("site %d should be healthy: %+v", st.Site, st)
		}
	}

	// Reads keep working against the degraded federation, without
	// re-probing the dead site.
	if got, err := r.Get("alpha"); err != nil || !bytes.Equal(got, objA) {
		t.Fatalf("degraded get: %v", err)
	}
}

func TestStewardPassReadmitsRecoveredSite(t *testing.T) {
	_, r := threeSiteFederation(t)
	if err := r.Put("obj", randPayload(200, 72)); err != nil {
		t.Fatal(err)
	}
	// Simulate a past outage of site 1; the site itself is fine, so the
	// next pass's probe must re-admit it.
	r.markDown(1, ErrUnavailable)
	if v := r.Metrics().Snapshot().Gauges["steward.site.1.healthy"]; v != 0 {
		t.Fatalf("precondition: gauge = %d", v)
	}

	rep, err := r.StewardPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ReadmittedSites) != 1 || rep.ReadmittedSites[0] != 1 {
		t.Errorf("ReadmittedSites = %v, want [1]", rep.ReadmittedSites)
	}
	if len(rep.SkippedSites) != 0 {
		t.Errorf("SkippedSites = %v", rep.SkippedSites)
	}
	snap := r.Metrics().Snapshot()
	if v := snap.Gauges["steward.site.1.healthy"]; v != 1 {
		t.Errorf("steward.site.1.healthy = %d, want 1", v)
	}
	if snap.Counters["steward.site_readmitted"] != 1 {
		t.Errorf("site_readmitted = %d, want 1", snap.Counters["steward.site_readmitted"])
	}
}

// TestNewReplicatorToleratesDeadSiteAtConstruction covers the CLI path:
// `steward pass` builds its replicator at invocation time, when a site may
// already be hard-down. Construction must succeed, the pass must degrade,
// and the dead site's codec must be built lazily once it returns.
func TestNewReplicatorToleratesDeadSiteAtConstruction(t *testing.T) {
	a := newSite(t, 80, 64)
	b := newSite(t, 81, 64)
	c := newSite(t, 82, 64)
	c.httpSrv.Close() // hard-down before the federation is even assembled

	var clients []*Client
	for _, s := range []*site{a, b, c} {
		clients = append(clients, NewClientWithOptions(s.httpSrv.URL, fastOptions(s.httpSrv.Client())))
	}
	r, err := NewReplicator(clients...)
	if err != nil {
		t.Fatalf("construction with one dead site: %v", err)
	}
	if v := r.Metrics().Snapshot().Gauges["steward.site.2.healthy"]; v != 0 {
		t.Errorf("steward.site.2.healthy = %d, want 0", v)
	}

	data := randPayload(400, 80)
	if err := r.Put("obj", data); err != nil {
		t.Fatalf("degraded put: %v", err)
	}
	if got, err := r.Get("obj"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded get: %v", err)
	}
	rep, err := r.StewardPass(context.Background())
	if err != nil {
		t.Fatalf("degraded pass: %v", err)
	}
	if len(rep.SkippedSites) != 1 || rep.SkippedSites[0] != 2 {
		t.Errorf("SkippedSites = %v, want [2]", rep.SkippedSites)
	}
	// Both construction-reachable sites hold the object.
	for i, s := range []*site{a, b} {
		if got, err := s.client.Get("obj"); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("site %d copy: %v", i, err)
		}
	}

	// All sites dead at construction is still a hard error.
	a.httpSrv.Close()
	b.httpSrv.Close()
	if _, err := NewReplicator(clients...); !IsUnavailable(err) {
		t.Errorf("all-dead construction: %v, want ErrUnavailable", err)
	}
}

func TestReplicatorGetReportsOutageNotNotFound(t *testing.T) {
	sites, r := threeSiteFederation(t)
	if err := r.Put("obj", randPayload(100, 73)); err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		s.httpSrv.Close()
	}
	_, err := r.Get("obj")
	if !IsUnavailable(err) {
		t.Errorf("err = %v, want ErrUnavailable (object may survive the outage)", err)
	}
	if IsNotFound(err) {
		t.Error("total outage misreported as not-found")
	}
	// All sites are now marked down; the next read short-circuits.
	_, err = r.Get("obj")
	if !IsUnavailable(err) {
		t.Errorf("second read: %v, want ErrUnavailable", err)
	}
	// And a steward pass against a fully dark federation errors.
	if _, err := r.StewardPass(context.Background()); !IsUnavailable(err) {
		t.Errorf("dark steward pass: %v, want ErrUnavailable", err)
	}
}

// TestStewardFullSiteOutageLifecycle walks one site through the whole
// disaster arc end to end over real HTTP: healthy probe → hard outage →
// degraded pass and degraded writes → the site returns at the same
// address → the next pass readmits it and re-replicates what it missed —
// with the steward.site.N.healthy gauges tracking every transition.
func TestStewardFullSiteOutageLifecycle(t *testing.T) {
	sites, r := threeSiteFederation(t)
	objA := randPayload(420, 90)
	if err := r.Put("alpha", objA); err != nil {
		t.Fatal(err)
	}

	// Healthy baseline: the site answers its own /healthz and a pass
	// records every health gauge at 1.
	resp, err := sites[2].httpSrv.Client().Get(sites[2].httpSrv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz probe: err=%v resp=%+v", err, resp)
	}
	resp.Body.Close()
	if _, err := r.StewardPass(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("steward.site.%d.healthy", i)
		if v := r.Metrics().Snapshot().Gauges[name]; v != 1 {
			t.Fatalf("baseline %s = %d, want 1", name, v)
		}
	}

	// Full site outage: the server goes hard down. The pass degrades —
	// skip, don't fail — and flips the gauge.
	addr := sites[2].httpSrv.Listener.Addr().String()
	sites[2].httpSrv.CloseClientConnections()
	sites[2].httpSrv.Close()
	rep, err := r.StewardPass(context.Background())
	if err != nil {
		t.Fatalf("pass during outage: %v", err)
	}
	if len(rep.SkippedSites) != 1 || rep.SkippedSites[0] != 2 {
		t.Errorf("SkippedSites = %v, want [2]", rep.SkippedSites)
	}
	snap := r.Metrics().Snapshot()
	if v := snap.Gauges["steward.site.2.healthy"]; v != 0 {
		t.Errorf("outage gauge = %d, want 0", v)
	}
	if snap.Counters["steward.site_down_detected"] < 1 {
		t.Error("outage not counted in steward.site_down_detected")
	}

	// Writes keep flowing to the survivors while the site is dark.
	objB := randPayload(640, 91)
	if err := r.Put("beta", objB); err != nil {
		t.Fatalf("degraded put: %v", err)
	}

	// The site returns at the same address with its store intact.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	revived := &httptest.Server{Listener: l, Config: &http.Server{Handler: sites[2].srv}}
	revived.Start()
	t.Cleanup(revived.Close)

	// Recovery pass: probe readmits the site, flips the gauge back, and
	// re-replicates the object it missed during the outage.
	rep2, err := r.StewardPass(context.Background())
	if err != nil {
		t.Fatalf("recovery pass: %v", err)
	}
	if len(rep2.ReadmittedSites) != 1 || rep2.ReadmittedSites[0] != 2 {
		t.Errorf("ReadmittedSites = %v, want [2]", rep2.ReadmittedSites)
	}
	if rep2.ObjectsRestored != 1 {
		t.Errorf("ObjectsRestored = %d, want 1 (beta back to site 2)", rep2.ObjectsRestored)
	}
	snap = r.Metrics().Snapshot()
	if v := snap.Gauges["steward.site.2.healthy"]; v != 1 {
		t.Errorf("recovered gauge = %d, want 1", v)
	}
	if snap.Counters["steward.site_readmitted"] < 1 {
		t.Error("readmission not counted")
	}

	// The recovery is real: the returned site serves the outage-era object
	// alone, bit-exact, and the old object is still intact everywhere.
	if got, err := sites[2].client.Get("beta"); err != nil || !bytes.Equal(got, objB) {
		t.Fatalf("revived site beta: err=%v exact=%v", err, bytes.Equal(got, objB))
	}
	if got, err := r.Get("alpha"); err != nil || !bytes.Equal(got, objA) {
		t.Fatalf("alpha after lifecycle: err=%v", err)
	}
}
