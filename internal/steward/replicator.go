package steward

import (
	"errors"
	"fmt"

	"tornado/internal/archive"
	"tornado/internal/codec"
)

// Replicator stewards objects across two or more sites, each protecting
// its replica with its own (ideally complementary) Tornado graph — the
// federated architecture of paper §5.3. Reads fall back across sites, and
// when every site individually reports data loss, ExchangeRecover runs the
// real byte-level version of the paper's block exchange: partial peeling
// at each site, recovered data blocks shared between sites, repeated to
// fixpoint.
type Replicator struct {
	sites  []*Client
	codecs []*codec.Codec
	layout archive.StripeLayout
}

// NewReplicator connects the sites and verifies they agree on striping
// (block size and data-node count must match for blocks to be exchanged;
// graphs may — and should — differ).
func NewReplicator(sites ...*Client) (*Replicator, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("steward: need at least 2 sites, got %d", len(sites))
	}
	r := &Replicator{sites: sites}
	for i, c := range sites {
		lay, err := c.Layout()
		if err != nil {
			return nil, fmt.Errorf("steward: site %d layout: %w", i, err)
		}
		if i == 0 {
			r.layout = lay
		} else if lay.BlockSize != r.layout.BlockSize || lay.DataNodes != r.layout.DataNodes {
			return nil, fmt.Errorf("steward: site %d striping (%d×%d) differs from site 0 (%d×%d)",
				i, lay.DataNodes, lay.BlockSize, r.layout.DataNodes, r.layout.BlockSize)
		}
		g, err := c.Graph()
		if err != nil {
			return nil, fmt.Errorf("steward: site %d graph: %w", i, err)
		}
		cd, err := codec.New(g, lay.BlockSize)
		if err != nil {
			return nil, err
		}
		r.codecs = append(r.codecs, cd)
	}
	return r, nil
}

// Sites returns the number of federated sites.
func (r *Replicator) Sites() int { return len(r.sites) }

// Put stores the object at every site; each site encodes it with its own
// graph. Partial failures are rolled back so the namespace stays
// consistent.
func (r *Replicator) Put(name string, data []byte) error {
	for i, c := range r.sites {
		if err := c.Put(name, data); err != nil {
			for _, back := range r.sites[:i] {
				_ = back.Delete(name)
			}
			return fmt.Errorf("steward: put at site %d: %w", i, err)
		}
	}
	return nil
}

// Delete removes the object from every site.
func (r *Replicator) Delete(name string) error {
	var firstErr error
	for i, c := range r.sites {
		if err := c.Delete(name); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("steward: delete at site %d: %w", i, err)
		}
	}
	return firstErr
}

// Get retrieves the object: each site is tried in turn, and if all report
// data loss the federated block exchange runs.
func (r *Replicator) Get(name string) ([]byte, error) {
	sawLoss := false
	for _, c := range r.sites {
		data, err := c.Get(name)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, ErrDataLoss) {
			sawLoss = true
			continue
		}
		if IsNotFound(err) {
			continue
		}
		return nil, err
	}
	if sawLoss {
		return r.ExchangeRecover(name)
	}
	return nil, fmt.Errorf("%w: %q at all %d sites", ErrNotFound, name, len(r.sites))
}

// ExchangeRecover reconstructs an object that no site can serve alone by
// exchanging blocks between sites (paper §5.3): every reachable block of
// each stripe is fetched from every site, each site's codec peels as far
// as it can, data blocks recovered at any site are copied into the
// others' partial decodes, and the loop repeats until some site completes
// or no progress is possible.
func (r *Replicator) ExchangeRecover(name string) ([]byte, error) {
	obj, err := r.statAny(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, obj.Size)
	for st := 0; st < obj.Stripes; st++ {
		want := obj.Size - st*r.stripeCapacity()
		if want > r.stripeCapacity() {
			want = r.stripeCapacity()
		}
		payload, err := r.recoverStripe(name, st, want)
		if err != nil {
			return nil, err
		}
		out = append(out, payload...)
	}
	return out, nil
}

func (r *Replicator) stripeCapacity() int { return r.layout.DataNodes * r.layout.BlockSize }

func (r *Replicator) statAny(name string) (archive.Object, error) {
	var lastErr error
	for _, c := range r.sites {
		obj, err := c.Stat(name)
		if err == nil {
			return obj, nil
		}
		lastErr = err
	}
	return archive.Object{}, fmt.Errorf("steward: %q unknown at every site: %w", name, lastErr)
}

func (r *Replicator) recoverStripe(name string, stripe, payloadLen int) ([]byte, error) {
	// Fetch what each site still has.
	perSite := make([][][]byte, len(r.sites))
	for i, c := range r.sites {
		blocks := make([][]byte, r.codecs[i].Graph().Total)
		for node := range blocks {
			b, err := c.ReadBlock(name, stripe, node)
			if err == nil {
				blocks[node] = b
			}
		}
		perSite[i] = blocks
	}

	data := r.layout.DataNodes
	for {
		// Let every site peel as far as it can (Repair fills recovered
		// blocks in place even when it ultimately fails).
		for i := range r.sites {
			if err := r.codecs[i].Repair(perSite[i]); err == nil {
				return r.codecs[i].Decode(perSite[i], payloadLen)
			}
		}
		// Exchange: propagate any data block one site holds to the rest.
		progress := false
		for v := 0; v < data; v++ {
			var have []byte
			for i := range r.sites {
				if perSite[i][v] != nil {
					have = perSite[i][v]
					break
				}
			}
			if have == nil {
				continue
			}
			for i := range r.sites {
				if perSite[i][v] == nil {
					perSite[i][v] = have
					progress = true
				}
			}
		}
		if !progress {
			return nil, fmt.Errorf("%w: %q stripe %d lost at all %d sites even with block exchange",
				ErrDataLoss, name, stripe, len(r.sites))
		}
	}
}

// RestoreSites pushes the recovered object's data blocks back to every
// site and triggers a repairing scrub so each site re-derives its own
// check blocks — the "restoring just one critical data node" cycle closed.
func (r *Replicator) RestoreSites(name string, data []byte) error {
	obj, err := r.statAny(name)
	if err != nil {
		return err
	}
	cap := r.stripeCapacity()
	for i, c := range r.sites {
		blocksDone := 0
		for st := 0; st < obj.Stripes; st++ {
			lo := st * cap
			hi := min(lo+cap, len(data))
			blocks, err := r.codecs[i].Encode(data[lo:hi])
			if err != nil {
				return err
			}
			for node, b := range blocks {
				if err := c.WriteBlock(name, st, node, b); err == nil {
					blocksDone++
				}
			}
		}
		if blocksDone == 0 {
			return fmt.Errorf("steward: site %d accepted no restored blocks", i)
		}
		if _, err := c.Scrub(); err != nil {
			return fmt.Errorf("steward: site %d scrub after restore: %w", i, err)
		}
	}
	return nil
}
