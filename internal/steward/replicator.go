package steward

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tornado/internal/archive"
	"tornado/internal/codec"
	"tornado/internal/obs"
)

// Replicator stewards objects across two or more sites, each protecting
// its replica with its own (ideally complementary) Tornado graph — the
// federated architecture of paper §5.3. Reads fall back across sites, and
// when every site individually reports data loss, ExchangeRecover runs the
// real byte-level version of the paper's block exchange: partial peeling
// at each site, recovered data blocks shared between sites, repeated to
// fixpoint.
//
// The replicator tracks per-site health: a site whose client reports
// ErrUnavailable is marked unhealthy, skipped by reads and steward passes
// (recording a detection in the metrics registry), and probed for
// re-admission on the next pass instead of failing the whole operation.
type Replicator struct {
	sites []*Client

	mu         sync.Mutex
	codecs     []*codec.Codec
	layout     archive.StripeLayout
	haveLayout bool
	health     []siteHealth

	metrics *obs.Registry
}

// siteHealth is the replicator's view of one site.
type siteHealth struct {
	healthy bool
	lastErr error
}

// SiteStatus reports one site's health as seen by the replicator.
type SiteStatus struct {
	Site    int
	URL     string
	Healthy bool
	// LastError is the failure that marked the site unhealthy ("" while
	// healthy).
	LastError string
}

// NewReplicator connects the sites and verifies they agree on striping
// (block size and data-node count must match for blocks to be exchanged;
// graphs may — and should — differ). A site that is unreachable at
// construction starts unhealthy instead of failing the federation — the
// next steward pass probes it for admission — but at least one site must
// answer, and striping disagreement between reachable sites is always a
// hard error.
func NewReplicator(sites ...*Client) (*Replicator, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("steward: need at least 2 sites, got %d", len(sites))
	}
	r := &Replicator{
		sites:   sites,
		codecs:  make([]*codec.Codec, len(sites)),
		health:  make([]siteHealth, len(sites)),
		metrics: obs.NewRegistry(),
	}
	ctx := context.Background()
	reachable := 0
	for i := range sites {
		err := r.admit(ctx, i)
		switch {
		case err == nil:
			r.health[i] = siteHealth{healthy: true}
			r.siteGauge(i).Set(1)
			reachable++
		case IsUnavailable(err):
			r.health[i] = siteHealth{healthy: false, lastErr: err}
			r.siteGauge(i).Set(0)
			r.metrics.Counter("steward.site_down_detected").Inc()
		default:
			return nil, err
		}
	}
	if reachable == 0 {
		return nil, fmt.Errorf("%w: none of the %d sites answered", ErrUnavailable, len(sites))
	}
	return r, nil
}

// admit fetches site i's layout and graph, checks striping agreement with
// the federation, and builds the site's codec. It runs at construction and
// again when a steward pass probes an unhealthy site for re-admission (a
// site first seen down has no codec until its graph can be fetched).
func (r *Replicator) admit(ctx context.Context, i int) error {
	c := r.sites[i]
	lay, err := c.LayoutCtx(ctx)
	if err != nil {
		return fmt.Errorf("steward: site %d layout: %w", i, err)
	}
	r.mu.Lock()
	if !r.haveLayout {
		r.layout = lay
		r.haveLayout = true
	} else if lay.BlockSize != r.layout.BlockSize || lay.DataNodes != r.layout.DataNodes {
		ref := r.layout
		r.mu.Unlock()
		return fmt.Errorf("steward: site %d striping (%d×%d) differs from federation (%d×%d)",
			i, lay.DataNodes, lay.BlockSize, ref.DataNodes, ref.BlockSize)
	}
	hasCodec := r.codecs[i] != nil
	r.mu.Unlock()
	if hasCodec {
		return nil
	}
	g, err := c.GraphCtx(ctx)
	if err != nil {
		return fmt.Errorf("steward: site %d graph: %w", i, err)
	}
	cd, err := codec.New(g, lay.BlockSize)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.codecs[i] == nil {
		r.codecs[i] = cd
	}
	r.mu.Unlock()
	return nil
}

// Sites returns the number of federated sites.
func (r *Replicator) Sites() int { return len(r.sites) }

// Metrics returns the replicator's metric registry: per-site health gauges
// (steward.site.<i>.healthy), down/readmission counters, and steward-pass
// repair totals. Serve it with Metrics().Handler() for a /metrics
// endpoint.
func (r *Replicator) Metrics() *obs.Registry { return r.metrics }

func (r *Replicator) siteGauge(i int) *obs.Gauge {
	return r.metrics.Gauge(fmt.Sprintf("steward.site.%d.healthy", i))
}

// Health returns the current per-site status.
func (r *Replicator) Health() []SiteStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SiteStatus, len(r.sites))
	for i := range r.sites {
		out[i] = SiteStatus{
			Site:    i,
			URL:     r.sites[i].BaseURL(),
			Healthy: r.health[i].healthy,
		}
		if r.health[i].lastErr != nil {
			out[i].LastError = r.health[i].lastErr.Error()
		}
	}
	return out
}

// markDown records a site-down detection; it is idempotent per outage.
func (r *Replicator) markDown(i int, err error) {
	r.mu.Lock()
	wasHealthy := r.health[i].healthy
	r.health[i] = siteHealth{healthy: false, lastErr: err}
	r.mu.Unlock()
	if wasHealthy {
		r.metrics.Counter("steward.site_down_detected").Inc()
		r.siteGauge(i).Set(0)
	}
}

// markUp re-admits a site after a successful probe.
func (r *Replicator) markUp(i int) {
	r.mu.Lock()
	wasDown := !r.health[i].healthy
	r.health[i] = siteHealth{healthy: true}
	r.mu.Unlock()
	if wasDown {
		r.metrics.Counter("steward.site_readmitted").Inc()
		r.siteGauge(i).Set(1)
	}
}

func (r *Replicator) isHealthy(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health[i].healthy
}

// liveSites returns the indices of currently healthy sites.
func (r *Replicator) liveSites() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var live []int
	for i := range r.sites {
		if r.health[i].healthy {
			live = append(live, i)
		}
	}
	return live
}

// noteErr marks the site down when err is a site failure (unavailable
// after retries), and reports whether it did.
func (r *Replicator) noteErr(i int, err error) bool {
	if IsUnavailable(err) {
		r.markDown(i, err)
		return true
	}
	return false
}

// Put stores the object at every healthy site; each site encodes it with
// its own graph. Definitive failures (name conflicts and the like) are
// rolled back so the namespace stays consistent; a site that goes down
// mid-put is skipped — the next steward pass re-replicates to it.
func (r *Replicator) Put(name string, data []byte) error {
	return r.PutCtx(context.Background(), name, data)
}

// PutCtx is Put with cancellation and graceful degradation around down
// sites. It errors only when no site stored the object.
func (r *Replicator) PutCtx(ctx context.Context, name string, data []byte) error {
	var stored []int
	for i, c := range r.sites {
		if !r.isHealthy(i) {
			continue
		}
		if err := c.PutCtx(ctx, name, data); err != nil {
			if ctx.Err() == nil && r.noteErr(i, err) {
				continue // went down mid-put; the steward pass will heal it
			}
			for _, j := range stored {
				_ = r.sites[j].DeleteCtx(ctx, name)
			}
			return fmt.Errorf("steward: put at site %d: %w", i, err)
		}
		stored = append(stored, i)
	}
	if len(stored) == 0 {
		return fmt.Errorf("%w: no healthy site accepted %q", ErrUnavailable, name)
	}
	return nil
}

// Delete removes the object from every site.
func (r *Replicator) Delete(name string) error {
	return r.DeleteCtx(context.Background(), name)
}

// DeleteCtx is Delete with cancellation and deadlines.
func (r *Replicator) DeleteCtx(ctx context.Context, name string) error {
	var firstErr error
	for i, c := range r.sites {
		if err := c.DeleteCtx(ctx, name); err != nil {
			r.noteErr(i, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("steward: delete at site %d: %w", i, err)
			}
		}
	}
	return firstErr
}

// Get retrieves the object: each site is tried in turn, and if all report
// data loss the federated block exchange runs.
func (r *Replicator) Get(name string) ([]byte, error) {
	return r.GetCtx(context.Background(), name)
}

// GetCtx is Get with cancellation and graceful degradation: a site that
// fails at the transport level is marked unhealthy and skipped rather than
// aborting the read.
func (r *Replicator) GetCtx(ctx context.Context, name string) ([]byte, error) {
	sawLoss := false
	tried, down := 0, 0
	for i, c := range r.sites {
		if !r.isHealthy(i) {
			continue
		}
		tried++
		data, err := c.GetCtx(ctx, name)
		if err == nil {
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		switch {
		case errors.Is(err, ErrDataLoss):
			sawLoss = true
		case IsNotFound(err):
		case r.noteErr(i, err):
			down++ // site down: skip it, keep reading from the others
		default:
			return nil, err
		}
	}
	if sawLoss {
		return r.ExchangeRecoverCtx(ctx, name)
	}
	if tried == 0 {
		return nil, fmt.Errorf("%w: all %d sites unhealthy", ErrUnavailable, len(r.sites))
	}
	if down > 0 {
		// A down site may still hold the object; don't report not-found.
		return nil, fmt.Errorf("%w: %d of %d tried sites went down reading %q",
			ErrUnavailable, down, tried, name)
	}
	return nil, fmt.Errorf("%w: %q at all %d sites", ErrNotFound, name, len(r.sites))
}

// ExchangeRecover reconstructs an object that no site can serve alone by
// exchanging blocks between sites (paper §5.3): every reachable block of
// each stripe is fetched from every site, each site's codec peels as far
// as it can, data blocks recovered at any site are copied into the
// others' partial decodes, and the loop repeats until some site completes
// or no progress is possible.
func (r *Replicator) ExchangeRecover(name string) ([]byte, error) {
	return r.ExchangeRecoverCtx(context.Background(), name)
}

// ExchangeRecoverCtx is ExchangeRecover with cancellation; unhealthy sites
// are excluded from the exchange.
func (r *Replicator) ExchangeRecoverCtx(ctx context.Context, name string) ([]byte, error) {
	obj, err := r.statAny(ctx, name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, obj.Size)
	for st := 0; st < obj.Stripes; st++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		want := obj.Size - st*r.stripeCapacity()
		if want > r.stripeCapacity() {
			want = r.stripeCapacity()
		}
		payload, err := r.recoverStripe(ctx, name, st, want)
		if err != nil {
			return nil, err
		}
		out = append(out, payload...)
	}
	r.metrics.Counter("steward.exchange_recoveries").Inc()
	return out, nil
}

func (r *Replicator) stripeCapacity() int { return r.layout.DataNodes * r.layout.BlockSize }

func (r *Replicator) statAny(ctx context.Context, name string) (archive.Object, error) {
	var lastErr error
	for _, i := range r.liveSites() {
		obj, err := r.sites[i].StatCtx(ctx, name)
		if err == nil {
			return obj, nil
		}
		r.noteErr(i, err)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no healthy site", ErrUnavailable)
	}
	return archive.Object{}, fmt.Errorf("steward: %q unknown at every site: %w", name, lastErr)
}

func (r *Replicator) recoverStripe(ctx context.Context, name string, stripe, payloadLen int) ([]byte, error) {
	live := r.liveSites()
	if len(live) == 0 {
		return nil, fmt.Errorf("%w: no healthy site for exchange", ErrUnavailable)
	}
	// Fetch what each live site still has.
	perSite := make(map[int][][]byte, len(live))
	for _, i := range live {
		c := r.sites[i]
		blocks := make([][]byte, r.codecs[i].Graph().Total)
		for node := range blocks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b, err := c.ReadBlockCtx(ctx, name, stripe, node)
			if err == nil {
				blocks[node] = b
			} else if r.noteErr(i, err) {
				break // site went down mid-fetch; use what we have
			}
		}
		perSite[i] = blocks
	}

	data := r.layout.DataNodes
	for {
		// Let every site peel as far as it can (Repair fills recovered
		// blocks in place even when it ultimately fails).
		for _, i := range live {
			if err := r.codecs[i].Repair(perSite[i]); err == nil {
				return r.codecs[i].Decode(perSite[i], payloadLen)
			}
		}
		// Exchange: propagate any data block one site holds to the rest.
		progress := false
		for v := 0; v < data; v++ {
			var have []byte
			for _, i := range live {
				if perSite[i][v] != nil {
					have = perSite[i][v]
					break
				}
			}
			if have == nil {
				continue
			}
			for _, i := range live {
				if perSite[i][v] == nil {
					perSite[i][v] = have
					progress = true
				}
			}
		}
		if !progress {
			return nil, fmt.Errorf("%w: %q stripe %d lost at all %d reachable sites even with block exchange",
				ErrDataLoss, name, stripe, len(live))
		}
	}
}

// RestoreSites pushes the recovered object's data blocks back to every
// site and triggers a repairing scrub so each site re-derives its own
// check blocks — the "restoring just one critical data node" cycle closed.
func (r *Replicator) RestoreSites(name string, data []byte) error {
	return r.RestoreSitesCtx(context.Background(), name, data)
}

// RestoreSitesCtx is RestoreSites with cancellation; unhealthy sites are
// skipped (the next steward pass re-replicates once they return).
func (r *Replicator) RestoreSitesCtx(ctx context.Context, name string, data []byte) error {
	obj, err := r.statAny(ctx, name)
	if err != nil {
		return err
	}
	cap := r.stripeCapacity()
	for _, i := range r.liveSites() {
		c := r.sites[i]
		blocksDone := 0
		for st := 0; st < obj.Stripes; st++ {
			lo := st * cap
			hi := min(lo+cap, len(data))
			blocks, err := r.codecs[i].Encode(data[lo:hi])
			if err != nil {
				return err
			}
			for node, b := range blocks {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := c.WriteBlockCtx(ctx, name, st, node, b); err == nil {
					blocksDone++
				} else if r.noteErr(i, err) {
					break
				}
			}
		}
		if !r.isHealthy(i) {
			continue // went down mid-restore; steward pass will retry
		}
		if blocksDone == 0 {
			return fmt.Errorf("steward: site %d accepted no restored blocks", i)
		}
		if _, err := c.ScrubCtx(ctx); err != nil {
			if r.noteErr(i, err) {
				continue
			}
			return fmt.Errorf("steward: site %d scrub after restore: %w", i, err)
		}
	}
	return nil
}

// StewardReport summarizes one steward pass.
type StewardReport struct {
	// Sites is the post-pass health of every site.
	Sites []SiteStatus
	// SkippedSites lists sites that were down for the whole pass.
	SkippedSites []int
	// ReadmittedSites lists sites that came back this pass.
	ReadmittedSites []int
	// ObjectsExamined counts distinct object names seen across live sites.
	ObjectsExamined int
	// ObjectsRestored counts per-site object copies re-replicated because a
	// live site was missing them.
	ObjectsRestored int
	// BlocksRepaired totals block-level scrub repairs across live sites.
	BlocksRepaired int
	// Unrecoverable lists objects no combination of live sites could serve.
	Unrecoverable []string
}

// StewardPass runs one federation maintenance sweep:
//
//  1. every unhealthy site is probed (cheap layout fetch) and re-admitted
//     if it answers;
//  2. object listings are merged across live sites, and any live site
//     missing an object gets it re-replicated from the others (falling
//     back to block exchange when no single site can serve it);
//  3. every live site runs a repairing scrub.
//
// A site that fails mid-pass is marked unhealthy, recorded, and skipped —
// one dead site never fails the pass. The pass itself only errors when no
// site is reachable at all or the context is done.
func (r *Replicator) StewardPass(ctx context.Context) (StewardReport, error) {
	r.metrics.Counter("steward.passes").Inc()
	var rep StewardReport

	// 1. Probe unhealthy sites for (re-)admission; a site first seen down
	// gets its codec built here once its graph is finally fetchable.
	for i := range r.sites {
		if r.isHealthy(i) {
			continue
		}
		if err := r.admit(ctx, i); err == nil {
			r.markUp(i)
			rep.ReadmittedSites = append(rep.ReadmittedSites, i)
		} else if ctx.Err() != nil {
			return rep, ctx.Err()
		}
	}

	// 2. Merge listings across live sites; a listing failure demotes the
	// site for the rest of the pass.
	has := map[string]map[int]bool{} // name → sites holding it
	for _, i := range r.liveSites() {
		objs, err := r.sites[i].ListCtx(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			r.noteErr(i, err)
			continue
		}
		for _, o := range objs {
			if has[o.Name] == nil {
				has[o.Name] = map[int]bool{}
			}
			has[o.Name][i] = true
		}
	}
	live := r.liveSites()
	if len(live) == 0 {
		return rep, fmt.Errorf("%w: no site reachable for steward pass", ErrUnavailable)
	}

	names := make([]string, 0, len(has))
	for name := range has {
		names = append(names, name)
	}
	sort.Strings(names)
	rep.ObjectsExamined = len(names)

	// Re-replicate objects missing from live sites.
	for _, name := range names {
		holders := has[name]
		var missing []int
		for _, i := range r.liveSites() {
			if !holders[i] {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		data, err := r.GetCtx(ctx, name)
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			rep.Unrecoverable = append(rep.Unrecoverable, name)
			r.metrics.Counter("steward.objects_unrecoverable").Inc()
			continue
		}
		for _, i := range missing {
			if !r.isHealthy(i) {
				continue
			}
			err := r.sites[i].PutCtx(ctx, name, data)
			if err != nil && errors.Is(err, ErrExists) {
				err = nil // listed late (e.g. racing writer); already there
			}
			if err != nil {
				r.noteErr(i, err)
				continue
			}
			rep.ObjectsRestored++
			r.metrics.Counter("steward.objects_restored").Inc()
		}
	}

	// 3. Repairing scrub at every live site.
	for _, i := range r.liveSites() {
		srep, err := r.sites[i].ScrubCtx(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			r.noteErr(i, err)
			continue
		}
		rep.BlocksRepaired += srep.BlocksRepaired
	}
	r.metrics.Counter("steward.blocks_repaired").Add(int64(rep.BlocksRepaired))

	rep.Sites = r.Health()
	for _, s := range rep.Sites {
		if !s.Healthy {
			rep.SkippedSites = append(rep.SkippedSites, s.Site)
		}
	}
	return rep, nil
}
