package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"tornado/internal/archive"
	"tornado/internal/device"
	"tornado/internal/obs"
	"tornado/internal/repairbw"
)

// countingBackend sits between the store and the injector and counts every
// byte that actually crosses the boundary on successful operations — the
// ground truth the repair meter's attribution must conserve against.
type countingBackend struct {
	inner archive.Backend

	mu         sync.Mutex
	readOps    int64
	readBytes  int64
	writeOps   int64
	writeBytes int64
}

type trafficSnap struct {
	readOps, readBytes, writeOps, writeBytes int64
}

func (c *countingBackend) snap() trafficSnap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return trafficSnap{c.readOps, c.readBytes, c.writeOps, c.writeBytes}
}

func (s trafficSnap) sub(prev trafficSnap) trafficSnap {
	return trafficSnap{
		readOps:    s.readOps - prev.readOps,
		readBytes:  s.readBytes - prev.readBytes,
		writeOps:   s.writeOps - prev.writeOps,
		writeBytes: s.writeBytes - prev.writeBytes,
	}
}

func (c *countingBackend) Nodes() int { return c.inner.Nodes() }

func (c *countingBackend) Available(node int, key []byte) bool {
	return c.inner.Available(node, key)
}

func (c *countingBackend) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	b, err := c.inner.Read(ctx, node, key)
	if err == nil {
		c.mu.Lock()
		c.readOps++
		c.readBytes += int64(len(b))
		c.mu.Unlock()
	}
	return b, err
}

func (c *countingBackend) Write(ctx context.Context, node int, key []byte, data []byte) error {
	err := c.inner.Write(ctx, node, key, data)
	if err == nil {
		c.mu.Lock()
		c.writeOps++
		c.writeBytes += int64(len(data))
		c.mu.Unlock()
	}
	return err
}

func (c *countingBackend) Delete(ctx context.Context, node int, key []byte) error {
	return c.inner.Delete(ctx, node, key)
}

func (c *countingBackend) Cost(node int) float64 { return c.inner.Cost(node) }

// meterSnap snapshots every cause's totals so phases can diff them.
func meterSnap(m *repairbw.Meter) map[repairbw.Cause]repairbw.CostReport {
	out := map[repairbw.Cause]repairbw.CostReport{}
	for c := repairbw.Cause(0); c < repairbw.NumCauses; c++ {
		out[c] = m.Totals(c)
	}
	return out
}

func meterDelta(m *repairbw.Meter, prev map[repairbw.Cause]repairbw.CostReport, c repairbw.Cause) repairbw.CostReport {
	cur := m.Totals(c)
	old := prev[c]
	return repairbw.CostReport{
		BlocksRead:    cur.BlocksRead - old.BlocksRead,
		BlocksWritten: cur.BlocksWritten - old.BlocksWritten,
		BytesRead:     cur.BytesRead - old.BytesRead,
		BytesWritten:  cur.BytesWritten - old.BytesWritten,
	}
}

// TestSoakConservation is the repair-traffic conservation law, checked
// against a chaos-soaked store: every byte the backend actually serves is
// either the information-theoretic decode floor (Data full frames per
// successfully decoded stripe) or attributed by the repair meter to a
// cause — nothing leaks, nothing is double-counted. The test runs under
// -race in CI's chaos-soak job, so the meter's and shim's concurrency
// story is exercised too.
func TestSoakConservation(t *testing.T) {
	g := testGraph(t) // 32 nodes, 16 data
	const blockSize = 64

	reg := obs.NewRegistry()
	devs := device.NewArray(g.Total)
	inj := Wrap(archive.NewArrayBackend(devs), Config{
		Seed: 2006,
		// Damage classes only — no node loss or flapping, so every Get in
		// the degraded phase still succeeds and the decode floor is exact.
		BitFlipRate:     0.004,
		ReadCorruptRate: 0.01,
		TruncateRate:    0.002,
		TornWriteRate:   0.002,
		ReadErrRate:     0.02,
		WriteErrRate:    0.01,
		Metrics:         reg,
	})
	shim := &countingBackend{inner: inj}
	store, err := archive.NewWithBackend(g, shim, archive.Config{
		BlockSize: blockSize,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	meter := store.RepairMeter()
	frameSize := int64(store.FrameSize())
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(2006, 1))

	// Phase 1: ingest. Puts are data-path writes, not repair traffic — the
	// meter must not move at all.
	preIngest := meterSnap(meter)
	golden := map[string][]byte{}
	var names []string
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		data := payload(1+rng.IntN(3*g.Data*blockSize), uint64(i))
		if err := store.PutCtx(ctx, name, data); err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		golden[name] = data
		names = append(names, name)
	}
	for c := repairbw.Cause(0); c < repairbw.NumCauses; c++ {
		if d := meterDelta(meter, preIngest, c); d != (repairbw.CostReport{}) {
			t.Fatalf("ingest moved the %v meter: %+v", c, d)
		}
	}

	// Phase 2: degraded reads. Seed extra at-rest corruption, then Get
	// every object several times. Each successful stripe decode consumed at
	// least Data full frames (the floor); everything beyond the floor is
	// DegradedGet surplus, and each write-back is ReadRepair. Conservation:
	//
	//	shim reads  == floorStripes*Data*frameSize + DegradedGet.BytesRead
	//	shim writes == ReadRepair.BytesWritten
	capacity := g.Data * blockSize
	stripesOf := func(name string) int {
		n := len(golden[name])
		st := (n + capacity - 1) / capacity
		if st == 0 {
			st = 1
		}
		return st
	}
	for i := 0; i < 10; i++ {
		name := names[rng.IntN(len(names))]
		st := rng.IntN(stripesOf(name))
		node := rng.IntN(g.Total)
		// Ignore errors: the frame may be missing (torn write) — the point
		// is just extra scattered damage.
		_ = inj.CorruptStored(node, fmt.Sprintf("%s/%d/%d", name, st, node))
	}
	preGet := meterSnap(meter)
	preGetTraffic := shim.snap()
	floorStripes := 0
	for round := 0; round < 3; round++ {
		for _, name := range names {
			got, _, err := store.GetCtx(ctx, name)
			if err != nil {
				t.Fatalf("get %s: %v", name, err)
			}
			if !bytes.Equal(got, golden[name]) {
				t.Fatalf("get %s: wrong bytes", name)
			}
			floorStripes += stripesOf(name)
		}
	}
	getTraffic := shim.snap().sub(preGetTraffic)
	dg := meterDelta(meter, preGet, repairbw.DegradedGet)
	rr := meterDelta(meter, preGet, repairbw.ReadRepair)
	if want := int64(floorStripes*g.Data)*frameSize + dg.BytesRead; getTraffic.readBytes != want {
		t.Errorf("get-phase read bytes: shim saw %d, floor+meter account %d (floor %d stripes, surplus %d)",
			getTraffic.readBytes, want, floorStripes, dg.BytesRead)
	}
	if want := int64(floorStripes*g.Data) + int64(dg.BlocksRead); getTraffic.readOps != want {
		t.Errorf("get-phase read blocks: shim saw %d, floor+meter account %d", getTraffic.readOps, want)
	}
	if getTraffic.writeBytes != rr.BytesWritten {
		t.Errorf("get-phase write bytes: shim saw %d, read-repair metered %d", getTraffic.writeBytes, rr.BytesWritten)
	}
	if getTraffic.writeOps != int64(rr.BlocksWritten) {
		t.Errorf("get-phase write blocks: shim saw %d, read-repair metered %d", getTraffic.writeOps, rr.BlocksWritten)
	}
	if dg.BytesRead < 0 || dg.BlocksRead < 0 {
		t.Errorf("negative degraded-get surplus: %+v", dg)
	}
	// The schedule is seeded, so the degraded machinery deterministically
	// fires; a zero here means the phase silently stopped testing anything.
	if dg.BytesRead == 0 {
		t.Error("degraded-get surplus is zero — corruption schedule did not degrade any read")
	}
	if rr.BlocksWritten == 0 {
		t.Error("no read-repair write-backs — corruption schedule did not trigger repair")
	}

	// Phase 3: repair scrub. Scrub owns every byte it moves, read and
	// write alike, so the shim deltas must equal the Scrub meter exactly.
	preScrub := meterSnap(meter)
	preScrubTraffic := shim.snap()
	if _, err := store.ScrubCtx(ctx, true); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	scrubTraffic := shim.snap().sub(preScrubTraffic)
	sc := meterDelta(meter, preScrub, repairbw.Scrub)
	if scrubTraffic.readBytes != sc.BytesRead || scrubTraffic.readOps != int64(sc.BlocksRead) {
		t.Errorf("scrub reads: shim saw %d blocks/%d bytes, meter %d blocks/%d bytes",
			scrubTraffic.readOps, scrubTraffic.readBytes, sc.BlocksRead, sc.BytesRead)
	}
	if scrubTraffic.writeBytes != sc.BytesWritten || scrubTraffic.writeOps != int64(sc.BlocksWritten) {
		t.Errorf("scrub writes: shim saw %d blocks/%d bytes, meter %d blocks/%d bytes",
			scrubTraffic.writeOps, scrubTraffic.writeBytes, sc.BlocksWritten, sc.BytesWritten)
	}

	// Phase 4: unrecoverable read. Corrupt every frame of a one-stripe
	// object; the Get fails and the failed path attributes ALL bytes it
	// read to DegradedGet — no decode floor, since nothing decoded.
	inj.Quiesce()
	doomed := "doomed"
	if err := store.PutCtx(ctx, doomed, payload(capacity/2, 99)); err != nil {
		t.Fatalf("put %s: %v", doomed, err)
	}
	for node := 0; node < g.Total; node++ {
		if err := inj.CorruptStored(node, fmt.Sprintf("%s/0/%d", doomed, node)); err != nil {
			t.Fatalf("corrupt %s node %d: %v", doomed, node, err)
		}
	}
	preFail := meterSnap(meter)
	preFailTraffic := shim.snap()
	if _, _, err := store.GetCtx(ctx, doomed); !errors.Is(err, archive.ErrDataLoss) {
		t.Fatalf("get %s: want ErrDataLoss, got %v", doomed, err)
	}
	failTraffic := shim.snap().sub(preFailTraffic)
	fdg := meterDelta(meter, preFail, repairbw.DegradedGet)
	if failTraffic.readBytes != fdg.BytesRead || failTraffic.readOps != int64(fdg.BlocksRead) {
		t.Errorf("failed get: shim saw %d blocks/%d bytes, meter attributed %d blocks/%d bytes",
			failTraffic.readOps, failTraffic.readBytes, fdg.BlocksRead, fdg.BytesRead)
	}
	if failTraffic.readBytes == 0 {
		t.Error("failed get read nothing — the unrecoverable path was not exercised")
	}

	// Federation stayed idle throughout: no block-exchange traffic ran.
	if d := meter.Totals(repairbw.Federation); d != (repairbw.CostReport{}) {
		t.Errorf("federation meter moved without block exchange: %+v", d)
	}
}
