// Package chaos is the reproduction's deterministic fault-injection layer:
// a seeded wrapper around any archive.Backend (the plain device array or
// the MAID shelf) that injects a reproducible schedule of the failure
// classes real archival systems face beyond clean device loss — silent bit
// flips at rest, in-flight read corruption, frame truncation, torn
// (partial) writes, transient I/O errors, permanent node loss, and
// availability flapping.
//
// Every injection is counted per fault class in an obs.Registry
// (chaos.injected.*), and the injector tracks which stored frames are
// corrupt at rest, so tests can assert the end-to-end detection invariant:
// every corrupt frame the archive is served is detected by its checksum
// (archive.detected.corrupt_frames == chaos.served_corrupt), and a repair
// scrub after Quiesce converges the store back to zero outstanding
// corruption.
//
// Determinism: all decisions come from a single PCG stream consumed in
// operation order, so a sequential workload with the same seed and rates
// sees the identical fault schedule. (Concurrent use is safe but the
// interleaving then chooses which operation draws which fault.)
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"tornado/internal/archive"
	"tornado/internal/obs"
)

// ErrInjected is the transient fault error. It wraps archive.ErrTransient,
// so the store's bounded retry recognizes it as worth re-attempting.
var ErrInjected = fmt.Errorf("chaos: injected fault: %w", archive.ErrTransient)

// ErrNodeLost is the permanent error served for a lost node. It does NOT
// wrap archive.ErrTransient: the store must treat the node as failed
// immediately, not burn retries on it.
var ErrNodeLost = errors.New("chaos: node permanently lost")

// Fault classes, as spelled in the chaos.injected.<class> counter names.
const (
	ClassBitFlip        = "bitflip"         // single-bit flip persisted at rest
	ClassReadCorruption = "read_corruption" // in-flight bit flip on the served copy
	ClassTruncate       = "truncate"        // in-flight frame truncation
	ClassTornWrite      = "torn_write"      // write silently persists only a prefix
	ClassReadTransient  = "read_transient"  // read fails with ErrInjected
	ClassWriteTransient = "write_transient" // write fails with ErrInjected, nothing persisted
	ClassNodeLoss       = "node_loss"       // node becomes permanently unreachable
	ClassFlap           = "flap"            // node unavailable for a bounded op window
	ClassLatency        = "latency"         // op delayed by an injected slow-path stall
)

// Classes lists every fault class in counter-name order.
var Classes = []string{
	ClassBitFlip, ClassReadCorruption, ClassTruncate, ClassTornWrite,
	ClassReadTransient, ClassWriteTransient, ClassNodeLoss, ClassFlap, ClassLatency,
}

// Config is the injection schedule: a seed and a per-operation probability
// for each fault class. Zero rates inject nothing, so the zero value is a
// transparent wrapper.
type Config struct {
	// Seed derives the deterministic fault schedule.
	Seed uint64

	// At-rest silent corruption: before serving a read, flip one bit of
	// the stored frame and persist it — the damage stays until something
	// rewrites the block (read-repair, scrub).
	BitFlipRate float64
	// In-flight corruption: flip one bit of the served copy only.
	ReadCorruptRate float64
	// In-flight truncation: serve a strict prefix of the frame.
	TruncateRate float64
	// Torn write: persist only a prefix of the data, report success.
	TornWriteRate float64
	// Transient errors: the op fails with ErrInjected; a retry re-rolls.
	ReadErrRate  float64
	WriteErrRate float64
	// Permanent node loss: the touched node starts refusing every op with
	// ErrNodeLost until RestoreNode/RestoreAll. Requires MaxLostNodes > 0.
	NodeLossRate float64
	// MaxLostNodes caps rate-injected node losses so a long campaign
	// cannot erase more nodes than the graph tolerates. 0 disables
	// rate-based loss (explicit LoseNode is never capped).
	MaxLostNodes int
	// Availability flapping: the touched node goes dark for FlapWindow
	// injector operations, then recovers by itself.
	FlapRate   float64
	FlapWindow int // default 16 ops

	// Injected latency: the op stalls for a seeded draw in
	// [LatencyMin, LatencyMax] before touching the inner backend. The
	// stall happens outside the injector mutex and respects the op
	// context, so slow nodes delay only their own callers. Zero rates
	// draw no randomness; see also SlowNode for a persistent stall.
	ReadLatencyRate  float64
	WriteLatencyRate float64
	LatencyMin       time.Duration // default 1ms when a latency rate is set
	LatencyMax       time.Duration // default 10ms

	// Metrics receives the chaos.* counters; nil gets a private registry.
	Metrics *obs.Registry
}

// frameID addresses one stored frame.
type frameID struct {
	node int
	key  string
}

// Injector implements archive.Backend over an inner backend, injecting the
// configured fault schedule. All methods are safe for concurrent use.
type Injector struct {
	inner archive.Backend
	cfg   Config

	mu          sync.Mutex
	rng         *rand.Rand
	ops         int64 // operation clock (reads + writes)
	lost        []bool
	lostByRate  int
	flapUntil   []int64
	slow        []time.Duration  // persistent per-node stall (SlowNode)
	outstanding map[frameID]bool // frames corrupt at rest, not yet rewritten
	quiesced    bool

	metrics  *obs.Registry
	injected map[string]*obs.Counter
	cServed  *obs.Counter
	cVoided  *obs.Counter
	gLost    *obs.Gauge
	gOutst   *obs.Gauge
}

var _ archive.Backend = (*Injector)(nil)

// Wrap builds an injector over inner with the given schedule.
func Wrap(inner archive.Backend, cfg Config) *Injector {
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 16
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	in := &Injector{
		inner:       inner,
		cfg:         cfg,
		rng:         rand.New(rand.NewPCG(cfg.Seed, 0xC4A05)),
		lost:        make([]bool, inner.Nodes()),
		flapUntil:   make([]int64, inner.Nodes()),
		slow:        make([]time.Duration, inner.Nodes()),
		outstanding: map[frameID]bool{},
		metrics:     reg,
		injected:    map[string]*obs.Counter{},
		cServed:     reg.Counter("chaos.served_corrupt"),
		cVoided:     reg.Counter("chaos.voided_corruptions"),
		gLost:       reg.Gauge("chaos.lost_nodes"),
		gOutst:      reg.Gauge("chaos.outstanding_corruptions"),
	}
	for _, class := range Classes {
		in.injected[class] = reg.Counter("chaos.injected." + class)
	}
	return in
}

// Metrics returns the injector's registry (chaos.injected.<class>,
// chaos.served_corrupt, chaos.voided_corruptions, and the lost-node /
// outstanding-corruption gauges).
func (in *Injector) Metrics() *obs.Registry { return in.metrics }

// InjectedTotals snapshots the per-class injection counters.
func (in *Injector) InjectedTotals() map[string]int64 {
	out := make(map[string]int64, len(Classes))
	for _, class := range Classes {
		out[class] = in.injected[class].Value()
	}
	return out
}

// ServedCorrupt returns how many corrupt frames have been handed to the
// archive — each one must show up in archive.detected.corrupt_frames.
func (in *Injector) ServedCorrupt() int64 { return in.cServed.Value() }

// Outstanding returns the number of stored frames currently corrupt at
// rest. After Quiesce + RestoreAll + a repair scrub it must be zero.
func (in *Injector) Outstanding() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.outstanding)
}

// LostNodes returns the currently lost nodes in ascending order.
func (in *Injector) LostNodes() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []int
	for node, l := range in.lost {
		if l {
			out = append(out, node)
		}
	}
	return out
}

// Ops returns the injector's operation clock.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Quiesce stops all new fault injection, ends active flap windows, and
// clears persistent SlowNode stalls. Already-lost nodes stay lost (the
// loss was permanent) and frames already corrupt at rest stay corrupt — a
// post-quiesce repair scrub is what heals them, which is exactly what soak
// campaigns verify.
func (in *Injector) Quiesce() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.quiesced = true
	for i := range in.flapUntil {
		in.flapUntil[i] = 0
	}
	for i := range in.slow {
		in.slow[i] = 0
	}
}

// LoseNode marks node permanently lost (explicit, not counted against
// MaxLostNodes).
func (in *Injector) LoseNode(node int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.loseLocked(node, false)
}

// RestoreNode readmits a lost node; its stored contents (including any
// at-rest corruption) reappear intact.
func (in *Injector) RestoreNode(node int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.lost[node] {
		in.lost[node] = false
	}
	in.flapUntil[node] = 0
	in.gLost.Set(int64(in.lostCountLocked()))
}

// RestoreAll readmits every lost node and ends every flap window.
func (in *Injector) RestoreAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.lost {
		in.lost[i] = false
		in.flapUntil[i] = 0
	}
	in.gLost.Set(0)
}

// FlapNode takes node dark for the next window injector operations.
func (in *Injector) FlapNode(node, window int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.flapLocked(node, window)
}

// SlowNode installs a persistent per-op stall on node — every read and
// write of that node sleeps d (respecting the op context) before touching
// the inner backend. d <= 0 clears the stall. Explicit like LoseNode, it
// consumes no randomness; Quiesce clears it. This is the slow-replica
// source for brownout scenarios and hedged-read tests.
func (in *Injector) SlowNode(node int, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if d < 0 {
		d = 0
	}
	if d > 0 && in.slow[node] == 0 {
		in.injected[ClassLatency].Inc()
	}
	in.slow[node] = d
}

// CorruptStored flips one deterministic bit of the stored frame and
// persists it — the explicit hook for read-repair and scrub tests. It
// fails if the frame cannot be read or rewritten.
func (in *Injector) CorruptStored(node int, key string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.outstanding[frameID{node, key}] {
		return nil // already corrupt at rest; flipping again could revert it
	}
	kb := []byte(key)
	framed, err := in.inner.Read(context.Background(), node, kb)
	if err != nil {
		return fmt.Errorf("chaos: corrupt stored: %w", err)
	}
	if len(framed) == 0 {
		return errors.New("chaos: corrupt stored: empty frame")
	}
	bad := append([]byte(nil), framed...)
	bad[0] ^= 0x80 // break the stored checksum deterministically
	if err := in.inner.Write(context.Background(), node, kb, bad); err != nil {
		return fmt.Errorf("chaos: corrupt stored: %w", err)
	}
	in.injected[ClassBitFlip].Inc()
	in.markOutstandingLocked(frameID{node, key})
	return nil
}

// VoidNode discards the at-rest corruption bookkeeping for node — the
// caller destroyed the device contents (device.Fail before a Replace), so
// those corruptions can never be served or detected. Each voided frame is
// counted in chaos.voided_corruptions.
func (in *Injector) VoidNode(node int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for id := range in.outstanding {
		if id.node == node {
			delete(in.outstanding, id)
			in.cVoided.Inc()
		}
	}
	in.gOutst.Set(int64(len(in.outstanding)))
}

// --- archive.Backend ---

// Nodes returns the inner backend's device count.
func (in *Injector) Nodes() int { return in.inner.Nodes() }

// Available reports inner availability masked by injected node state. It
// consumes no randomness, so probing availability never perturbs the fault
// schedule.
func (in *Injector) Available(node int, key []byte) bool {
	in.mu.Lock()
	down := in.lost[node] || in.flapUntil[node] > in.ops
	in.mu.Unlock()
	if down {
		return false
	}
	return in.inner.Available(node, key)
}

// Cost forbids lost and flapping nodes and otherwise defers to the inner
// backend, so retrieval planning routes around injected unavailability.
func (in *Injector) Cost(node int) float64 {
	in.mu.Lock()
	down := in.lost[node] || in.flapUntil[node] > in.ops
	in.mu.Unlock()
	if down {
		return math.Inf(1)
	}
	return in.inner.Cost(node)
}

// Read serves a block through the fault schedule. The context is checked on
// entry (a cancelled read consumes no randomness, keeping the schedule
// deterministic under cancellation) and passed through to the inner backend.
func (in *Injector) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.stall(ctx, node, in.cfg.ReadLatencyRate); err != nil {
		return nil, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.lost[node] {
		return nil, fmt.Errorf("%w (node %d)", ErrNodeLost, node)
	}
	if in.flapUntil[node] > in.ops {
		return nil, fmt.Errorf("%w (node %d flapping)", ErrInjected, node)
	}
	if !in.quiesced {
		switch {
		case in.roll(in.cfg.NodeLossRate) && in.lostByRate < in.cfg.MaxLostNodes:
			in.loseLocked(node, true)
			return nil, fmt.Errorf("%w (node %d)", ErrNodeLost, node)
		case in.roll(in.cfg.FlapRate):
			in.flapLocked(node, in.cfg.FlapWindow)
			return nil, fmt.Errorf("%w (node %d flapping)", ErrInjected, node)
		case in.roll(in.cfg.ReadErrRate):
			in.injected[ClassReadTransient].Inc()
			return nil, fmt.Errorf("%w (read node %d)", ErrInjected, node)
		}
	}
	framed, err := in.inner.Read(ctx, node, key)
	if err != nil {
		return framed, err
	}
	id := frameID{node, string(key)}
	corrupt := in.outstanding[id] // already damaged at rest
	// Never stack a new injection on a frame already corrupt at rest: a
	// second flip could land on the same bit and silently revert the frame
	// to valid while the bookkeeping still calls it corrupt.
	if !in.quiesced && !corrupt && len(framed) > 0 {
		switch {
		case in.roll(in.cfg.BitFlipRate):
			// Persist the flip: this is bit rot, not a wire error. If the
			// write-back fails the damage did not stick at rest, so count
			// it as in-flight corruption instead — the outstanding set
			// must only track frames that are actually corrupt on disk.
			framed = in.flipBit(framed)
			if werr := in.inner.Write(ctx, node, key, framed); werr == nil {
				in.injected[ClassBitFlip].Inc()
				in.markOutstandingLocked(id)
			} else {
				in.injected[ClassReadCorruption].Inc()
			}
			corrupt = true
		case in.roll(in.cfg.ReadCorruptRate):
			framed = in.flipBit(framed)
			in.injected[ClassReadCorruption].Inc()
			corrupt = true
		case in.roll(in.cfg.TruncateRate):
			framed = append([]byte(nil), framed[:in.rng.IntN(len(framed))]...)
			in.injected[ClassTruncate].Inc()
			corrupt = true
		}
	}
	if corrupt {
		in.cServed.Inc()
	}
	return framed, nil
}

// Write stores a block through the fault schedule. A clean write to a frame
// that was corrupt at rest clears its outstanding mark (that is how
// read-repair and scrub heal show up in the bookkeeping).
func (in *Injector) Write(ctx context.Context, node int, key []byte, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := in.stall(ctx, node, in.cfg.WriteLatencyRate); err != nil {
		return err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.lost[node] {
		return fmt.Errorf("%w (node %d)", ErrNodeLost, node)
	}
	if in.flapUntil[node] > in.ops {
		return fmt.Errorf("%w (node %d flapping)", ErrInjected, node)
	}
	id := frameID{node, string(key)}
	if !in.quiesced {
		switch {
		case in.roll(in.cfg.WriteErrRate):
			in.injected[ClassWriteTransient].Inc()
			return fmt.Errorf("%w (write node %d)", ErrInjected, node)
		case in.roll(in.cfg.TornWriteRate) && len(data) > 0:
			// Persist a strict prefix but report success: a torn write is
			// silent until a checksum catches it.
			if err := in.inner.Write(ctx, node, key, data[:in.rng.IntN(len(data))]); err != nil {
				return err
			}
			in.injected[ClassTornWrite].Inc()
			in.markOutstandingLocked(id)
			return nil
		}
	}
	err := in.inner.Write(ctx, node, key, data)
	if err == nil && in.outstanding[id] {
		delete(in.outstanding, id)
		in.gOutst.Set(int64(len(in.outstanding)))
	}
	return err
}

// Delete removes a block (and any outstanding-corruption mark on it).
func (in *Injector) Delete(ctx context.Context, node int, key []byte) error {
	in.mu.Lock()
	id := frameID{node, string(key)}
	if in.outstanding[id] {
		delete(in.outstanding, id)
		in.gOutst.Set(int64(len(in.outstanding)))
	}
	in.mu.Unlock()
	return in.inner.Delete(ctx, node, key)
}

// stall applies the injected latency for one op on node: the persistent
// SlowNode delay plus, when rate rolls, a seeded draw from
// [LatencyMin, LatencyMax]. The draw happens under the injector mutex (so
// sequential schedules stay deterministic) but the sleep happens outside
// it, so one stalled op never blocks the rest of the fault schedule. A
// cancelled stall returns the context error without touching the inner
// backend. Zero rates and unset SlowNode make this a no-op that consumes
// no randomness.
func (in *Injector) stall(ctx context.Context, node int, rate float64) error {
	in.mu.Lock()
	d := in.slow[node]
	if !in.quiesced && in.roll(rate) {
		d += in.latencyDrawLocked()
		in.injected[ClassLatency].Inc()
	}
	in.mu.Unlock()
	if d <= 0 {
		return nil
	}
	return sleepCtx(ctx, d)
}

// latencyDrawLocked picks one stall duration from the configured band.
func (in *Injector) latencyDrawLocked() time.Duration {
	lo, hi := in.cfg.LatencyMin, in.cfg.LatencyMax
	if lo <= 0 {
		lo = time.Millisecond
	}
	if hi < lo {
		hi = 10 * time.Millisecond
		if hi < lo {
			hi = lo
		}
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(in.rng.Int64N(int64(hi-lo)+1))
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// --- internals (callers hold in.mu) ---

func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// flipBit returns a copy of framed with one schedule-chosen bit flipped —
// any single-bit flip breaks the CRC-32C match.
func (in *Injector) flipBit(framed []byte) []byte {
	out := append([]byte(nil), framed...)
	bit := in.rng.IntN(len(out) * 8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

func (in *Injector) loseLocked(node int, byRate bool) {
	if in.lost[node] {
		return
	}
	in.lost[node] = true
	if byRate {
		in.lostByRate++
	}
	in.injected[ClassNodeLoss].Inc()
	in.gLost.Set(int64(in.lostCountLocked()))
}

func (in *Injector) flapLocked(node, window int) {
	if window <= 0 {
		window = in.cfg.FlapWindow
	}
	until := in.ops + int64(window)
	if until > in.flapUntil[node] {
		in.flapUntil[node] = until
	}
	in.injected[ClassFlap].Inc()
}

func (in *Injector) markOutstandingLocked(id frameID) {
	in.outstanding[id] = true
	in.gOutst.Set(int64(len(in.outstanding)))
}

func (in *Injector) lostCountLocked() int {
	n := 0
	for _, l := range in.lost {
		if l {
			n++
		}
	}
	return n
}
