package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"tornado/internal/archive"
	"tornado/internal/device"
)

func TestSlowNodeStallsOps(t *testing.T) {
	devs := device.NewArray(4)
	inj := Wrap(archive.NewArrayBackend(devs), Config{Seed: 1})
	key := []byte("k")
	for node := 0; node < 2; node++ {
		if err := inj.Write(context.Background(), node, key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// A direct backend read of the slowed node must take at least the stall.
	inj.SlowNode(0, 30*time.Millisecond)
	start := time.Now()
	if _, err := inj.Read(context.Background(), 0, key); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("slowed read took %v, want >= 30ms", d)
	}
	if got := inj.InjectedTotals()[ClassLatency]; got != 1 {
		t.Errorf("latency injections = %d, want 1", got)
	}
	// Other nodes are unaffected (no multi-ms stall).
	start = time.Now()
	if _, err := inj.Read(context.Background(), 1, key); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("unslowed read took %v", d)
	}
	// Clearing ends the stall; Quiesce clears too.
	inj.SlowNode(0, 0)
	start = time.Now()
	if _, err := inj.Read(context.Background(), 0, key); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("cleared node still slow: %v", d)
	}
	inj.SlowNode(0, time.Second)
	inj.Quiesce()
	start = time.Now()
	if _, err := inj.Read(context.Background(), 0, key); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("quiesce left node slow: %v", d)
	}
}

func TestSlowNodeRespectsContext(t *testing.T) {
	devs := device.NewArray(4)
	inj := Wrap(archive.NewArrayBackend(devs), Config{Seed: 1})
	key := []byte("k")
	if err := inj.Write(context.Background(), 0, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	inj.SlowNode(0, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := inj.Read(ctx, 0, key)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled stall took %v — sleep ignored ctx", d)
	}
}

func TestLatencyRateDrawsAreSeeded(t *testing.T) {
	// Two injectors with the same seed and rates must stall the same ops
	// for the same durations (measured via the injected counter sequence,
	// not wall time).
	run := func() []int64 {
		devs := device.NewArray(4)
		inj := Wrap(archive.NewArrayBackend(devs), Config{
			Seed:            42,
			ReadLatencyRate: 0.3,
			LatencyMin:      time.Microsecond,
			LatencyMax:      50 * time.Microsecond,
		})
		key := []byte("k")
		_ = inj.Write(context.Background(), 0, key, []byte("x"))
		var counts []int64
		for i := 0; i < 60; i++ {
			_, _ = inj.Read(context.Background(), 0, key)
			counts = append(counts, inj.InjectedTotals()[ClassLatency])
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency schedule diverged at op %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[len(a)-1] == 0 {
		t.Error("rate 0.3 over 60 reads never injected latency")
	}
}

func TestLatencyRateZeroKeepsScheduleBackwardCompatible(t *testing.T) {
	// Adding the latency feature must not shift the randomness stream of
	// configs that do not use it: a schedule with zero latency rates must
	// match the pre-latency fingerprint behaviour, i.e. two configs that
	// differ only in latency rates being zero-vs-unset are identical.
	mk := func(cfg Config) []int64 {
		devs := device.NewArray(4)
		cfg.Seed = 7
		cfg.ReadErrRate = 0.3
		inj := Wrap(archive.NewArrayBackend(devs), cfg)
		key := []byte("k")
		_ = inj.Write(context.Background(), 0, key, []byte("x"))
		var errsAt []int64
		for i := 0; i < 80; i++ {
			if _, err := inj.Read(context.Background(), 0, key); err != nil {
				errsAt = append(errsAt, int64(i))
			}
		}
		return errsAt
	}
	a := mk(Config{})
	b := mk(Config{LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond}) // rates still zero
	if len(a) == 0 {
		t.Fatal("no transient errors injected")
	}
	if len(a) != len(b) {
		t.Fatalf("zero-rate latency config perturbed the schedule: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero-rate latency config perturbed the schedule at %d", i)
		}
	}
}
