package chaos

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"tornado/internal/archive"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/obs"
)

// testGraph builds a small screened tornado graph (32 nodes, 16 data).
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	p := core.DefaultParams()
	p.TotalNodes = 32
	g, _, err := core.Generate(p, rand.New(rand.NewPCG(7, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// stack builds devices → injector → store sharing one metrics registry.
func stack(t *testing.T, g *graph.Graph, chaosCfg Config, storeCfg archive.Config) (*Injector, *archive.Store, *obs.Registry, device.Array) {
	t.Helper()
	reg := obs.NewRegistry()
	devs := device.NewArray(g.Total)
	chaosCfg.Metrics = reg
	inj := Wrap(archive.NewArrayBackend(devs), chaosCfg)
	storeCfg.Metrics = reg
	store, err := archive.NewWithBackend(g, inj, storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj, store, reg, devs
}

func payload(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 0))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestZeroConfigIsTransparent(t *testing.T) {
	g := testGraph(t)
	inj, store, _, _ := stack(t, g, Config{Seed: 1}, archive.Config{BlockSize: 32})
	data := payload(700, 1)
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, stats, err := store.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if stats.CorruptBlocks != 0 || stats.Retries != 0 {
		t.Errorf("zero-config injector perturbed the read: %+v", stats)
	}
	if inj.ServedCorrupt() != 0 || inj.Outstanding() != 0 {
		t.Error("zero-config injector recorded injections")
	}
}

// TestReadRepairHealsCorruptFrame is the read-repair acceptance check: a
// block corrupted at rest is detected during Get, rewritten to its home
// node during the same Get, and the subsequent scrub finds nothing to
// repair for that stripe.
func TestReadRepairHealsCorruptFrame(t *testing.T) {
	g := testGraph(t)
	inj, store, reg, _ := stack(t, g, Config{Seed: 2},
		archive.Config{BlockSize: 32, NaiveRetrieval: true}) // read every block: detection guaranteed
	data := payload(500, 2)
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	if err := inj.CorruptStored(0, "obj/0/0"); err != nil {
		t.Fatal(err)
	}
	if inj.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", inj.Outstanding())
	}

	got, stats, err := store.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get over corrupt frame: %v", err)
	}
	if stats.CorruptBlocks != 1 {
		t.Errorf("CorruptBlocks = %d, want 1", stats.CorruptBlocks)
	}
	if stats.ReadRepairs != 1 {
		t.Errorf("ReadRepairs = %d, want 1", stats.ReadRepairs)
	}
	if inj.Outstanding() != 0 {
		t.Errorf("outstanding = %d after read-repair, want 0", inj.Outstanding())
	}
	if n := reg.Counter("archive.detected.corrupt_frames").Value(); n != 1 {
		t.Errorf("detected = %d, want 1", n)
	}

	// The scrub after the healing Get has nothing left to do.
	rep, err := store.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRepaired != 0 || rep.CorruptFrames != 0 {
		t.Errorf("scrub after read-repair: %+v", rep)
	}
	// And the healed frame serves clean reads.
	if _, stats, err := store.Get("obj"); err != nil || stats.CorruptBlocks != 0 {
		t.Errorf("post-heal Get: err=%v stats=%+v", err, stats)
	}
}

// TestDetectedEqualsServed asserts the checksum-detection invariant: every
// corrupt frame the injector serves is detected by the archive — the
// detection counter exactly equals the served-corrupt counter.
func TestDetectedEqualsServed(t *testing.T) {
	g := testGraph(t)
	inj, store, reg, _ := stack(t, g, Config{
		Seed:            3,
		ReadCorruptRate: 0.08,
		TruncateRate:    0.05,
		BitFlipRate:     0.04,
		TornWriteRate:   0.03,
	}, archive.Config{BlockSize: 32, QuarantineThreshold: -1}) // no quarantine: keep every node serving

	var want [][]byte
	for i := 0; i < 6; i++ {
		data := payload(400+i*97, uint64(i))
		want = append(want, data)
		if err := store.Put(name(i), data); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 20; round++ {
		for i, data := range want {
			got, _, err := store.Get(name(i))
			if err != nil {
				if !errors.Is(err, archive.ErrDataLoss) {
					t.Fatalf("unexpected Get error: %v", err)
				}
				continue // a definitive error is acceptable, silence is not
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("SILENT CORRUPTION on %s round %d", name(i), round)
			}
		}
	}
	inj.Quiesce()
	if _, err := store.Scrub(true); err != nil {
		t.Fatal(err)
	}

	served := inj.ServedCorrupt()
	detected := reg.Counter("archive.detected.corrupt_frames").Value()
	if served == 0 {
		t.Fatal("schedule injected nothing; raise rates or change seed")
	}
	if detected != served {
		t.Errorf("detected %d corrupt frames, injector served %d", detected, served)
	}
	if inj.Outstanding() != 0 {
		t.Errorf("outstanding corruption after repair scrub: %d", inj.Outstanding())
	}
}

// TestQuarantine drives one node to repeatedly serve corrupt frames until
// the store quarantines it, then verifies the node is excluded from Get
// planning, surfaced in the scrub report, healed by the repair scrub, and
// readmitted automatically after a pass in which it served only clean frames.
func TestQuarantine(t *testing.T) {
	g := testGraph(t)
	inj, store, reg, _ := stack(t, g, Config{Seed: 4},
		archive.Config{BlockSize: 32, NaiveRetrieval: true, QuarantineThreshold: 3, DisableReadRepair: true})
	data := payload(300, 4)
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Without read-repair the corrupt frame persists: three detections on
	// node 0 cross the threshold.
	for i := 0; i < 3; i++ {
		if err := inj.CorruptStored(0, "obj/0/0"); err != nil && i == 0 {
			t.Fatal(err)
		}
		if got, _, err := store.Get("obj"); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	if q := store.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined = %v, want [0]", q)
	}
	if reg.Counter("archive.quarantine.events").Value() != 1 || reg.Gauge("archive.quarantine.nodes").Value() != 1 {
		t.Error("quarantine metrics not recorded")
	}

	// Quarantined: reads no longer touch node 0 and still succeed.
	got, stats, err := store.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get with quarantined node: %v", err)
	}
	if stats.CorruptBlocks != 0 {
		t.Errorf("quarantined node still served corruption: %+v", stats)
	}

	rep, err := store.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.QuarantinedNodes) != 1 || rep.QuarantinedNodes[0] != 0 {
		t.Errorf("scrub QuarantinedNodes = %v", rep.QuarantinedNodes)
	}
	if len(rep.Stripes) == 0 || len(rep.Stripes[0].Quarantined) != 1 {
		t.Errorf("stripe health missing quarantine: %+v", rep.Stripes)
	}

	// Scrub heals even quarantined nodes: the first repair pass rewrites
	// the corrupt frame, but the node stays out — it served corruption
	// during that very pass. The next pass sees only verified frames from
	// it and readmits it.
	if _, err := store.Scrub(true); err != nil {
		t.Fatal(err)
	}
	if inj.Outstanding() != 0 {
		t.Errorf("repair scrub left %d corruptions at rest", inj.Outstanding())
	}
	if q := store.Quarantined(); len(q) != 1 {
		t.Fatalf("node readmitted during the pass it corrupted in: %v", q)
	}
	rep, err = store.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.QuarantinedNodes) != 0 {
		t.Errorf("clean pass did not readmit the healed node: %v", rep.QuarantinedNodes)
	}
	if reg.Counter("archive.quarantine.readmitted").Value() != 1 {
		t.Error("readmission not counted")
	}
	for _, h := range rep.Stripes {
		if len(h.Missing) != 0 {
			t.Errorf("stripe still missing blocks after heal: %+v", h)
		}
	}
}

// TestTransientErrorsRetried checks the bounded-retry path: a schedule of
// transient read errors is absorbed by retries and parity, never surfacing
// to the caller as wrong data.
func TestTransientErrorsRetried(t *testing.T) {
	g := testGraph(t)
	_, store, reg, _ := stack(t, g, Config{Seed: 5, ReadErrRate: 0.35, WriteErrRate: 0.1},
		archive.Config{BlockSize: 32})
	data := payload(900, 5)
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, _, err := store.Get("obj")
		if err != nil {
			if errors.Is(err, archive.ErrDataLoss) {
				continue
			}
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("silent corruption on Get %d", i)
		}
	}
	if reg.Counter("archive.read.retries").Value() == 0 {
		t.Error("no retries recorded under a 35% transient-error schedule")
	}
}

// TestNodeLossAndFlap exercises the availability fault classes.
func TestNodeLossAndFlap(t *testing.T) {
	g := testGraph(t)
	inj, store, _, _ := stack(t, g, Config{Seed: 6}, archive.Config{BlockSize: 32})
	data := payload(600, 6)
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	inj.LoseNode(3)
	if inj.Available(3, []byte("obj/0/3")) {
		t.Error("lost node reports available")
	}
	if _, err := inj.Read(context.Background(), 3, []byte("obj/0/3")); !errors.Is(err, ErrNodeLost) {
		t.Errorf("read of lost node: %v", err)
	}
	if errors.Is(ErrNodeLost, archive.ErrTransient) {
		t.Error("node loss must not be transient")
	}
	got, _, err := store.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get around lost node: %v", err)
	}

	inj.FlapNode(5, 4)
	if inj.Available(5, []byte("obj/0/5")) {
		t.Error("flapping node reports available")
	}
	if _, err := inj.Read(context.Background(), 5, []byte("obj/0/5")); !errors.Is(err, archive.ErrTransient) {
		t.Errorf("flapping read should be transient: %v", err)
	}
	// The flap window expires as the op clock advances.
	for i := 0; i < 6; i++ {
		_, _, _ = store.Get("obj")
	}
	if !inj.Available(5, []byte("obj/0/5")) {
		t.Error("flap window never expired")
	}

	inj.RestoreNode(3)
	if !inj.Available(3, []byte("obj/0/3")) {
		t.Error("restored node still unavailable")
	}
	if got, _, err := store.Get("obj"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after restore: %v", err)
	}
}

// TestDeterministicSchedule runs the identical workload over two injectors
// with the same seed and requires an identical fault schedule and outcome.
func TestDeterministicSchedule(t *testing.T) {
	run := func() (map[string]int64, int64, int) {
		g := testGraph(t)
		inj, store, _, _ := stack(t, g, Config{
			Seed:            42,
			ReadCorruptRate: 0.1,
			TruncateRate:    0.05,
			TornWriteRate:   0.05,
			ReadErrRate:     0.1,
			FlapRate:        0.02,
			FlapWindow:      8,
		}, archive.Config{BlockSize: 32})
		for i := 0; i < 4; i++ {
			if err := store.Put(name(i), payload(500, uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		dataLoss := 0
		for round := 0; round < 10; round++ {
			for i := 0; i < 4; i++ {
				if _, _, err := store.Get(name(i)); err != nil {
					dataLoss++
				}
			}
		}
		return inj.InjectedTotals(), inj.ServedCorrupt(), dataLoss
	}
	inj1, served1, loss1 := run()
	inj2, served2, loss2 := run()
	for class, n := range inj1 {
		if inj2[class] != n {
			t.Errorf("class %s: %d vs %d", class, n, inj2[class])
		}
	}
	if served1 != served2 || loss1 != loss2 {
		t.Errorf("outcomes diverged: served %d/%d, loss %d/%d", served1, served2, loss1, loss2)
	}
}

func name(i int) string {
	return string(rune('a'+i)) + "-obj"
}
