// wan.go is the site-scale chaos dimension: where Injector wrecks
// individual devices inside one store, WAN wrecks the federation fabric
// between whole sites — site loss, WAN-link partition between site pairs,
// per-link latency brownouts, and site flapping. Like the node injector it
// is seeded and deterministic: all rate-based decisions come from a single
// PCG stream consumed in Step order, and every query method (SiteUp,
// LinkUp, LinkLatency) consumes no randomness, so probing the topology
// never perturbs the schedule.
//
// The model: N sites are joined pairwise by symmetric WAN links. A lost or
// flapping site is unreachable to everyone (the facade and every peer). A
// partitioned link blocks only site-to-site exchange between that pair —
// an external client (the fedstore facade) is assumed to have its own
// connectivity to every site. A browned-out link stays up but adds a fixed
// latency to every exchange crossing it.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"tornado/internal/obs"
)

// WAN fault classes, as spelled in the chaos.wan.injected.<class> counters.
const (
	WANClassSiteLoss  = "site_loss" // whole site unreachable until RestoreSite
	WANClassSiteFlap  = "site_flap" // site dark for a bounded Step window
	WANClassPartition = "partition" // link between a site pair blocked
	WANClassBrownout  = "brownout"  // link stays up but gains fixed latency
)

// WANClasses lists every WAN fault class in counter-name order.
var WANClasses = []string{WANClassSiteLoss, WANClassSiteFlap, WANClassPartition, WANClassBrownout}

// WANConfig configures the site-scale injector.
type WANConfig struct {
	// Sites is the number of federation sites (>= 1).
	Sites int
	// Seed derives the deterministic flap schedule.
	Seed uint64
	// SiteFlapRate is the per-Step probability that one schedule-chosen
	// site goes dark for FlapWindow steps. Zero draws no randomness.
	SiteFlapRate float64
	// FlapWindow is how many Steps a flapped site stays dark (default 16).
	FlapWindow int
	// Metrics receives the chaos.wan.* counters; nil gets a private registry.
	Metrics *obs.Registry
}

// WAN tracks site and link health for an N-site federation. All methods
// are safe for concurrent use.
type WAN struct {
	cfg WANConfig

	mu        sync.Mutex
	rng       *rand.Rand
	steps     int64
	down      []bool          // explicit site loss
	flapUntil []int64         // site dark while flapUntil > steps
	cut       []bool          // link (a,b), a<b: partitioned
	slow      []time.Duration // link (a,b), a<b: brownout latency
	quiesced  bool

	metrics  *obs.Registry
	injected map[string]*obs.Counter
	gDown    *obs.Gauge
	gCut     *obs.Gauge
}

// NewWAN builds a site-scale injector over cfg.Sites sites, all up, all
// links healthy.
func NewWAN(cfg WANConfig) *WAN {
	if cfg.Sites < 1 {
		cfg.Sites = 1
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 16
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := cfg.Sites
	w := &WAN{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, 0x3A17E)),
		down:      make([]bool, n),
		flapUntil: make([]int64, n),
		cut:       make([]bool, n*n),
		slow:      make([]time.Duration, n*n),
		metrics:   reg,
		injected:  map[string]*obs.Counter{},
		gDown:     reg.Gauge("chaos.wan.sites_down"),
		gCut:      reg.Gauge("chaos.wan.links_down"),
	}
	for _, class := range WANClasses {
		w.injected[class] = reg.Counter("chaos.wan.injected." + class)
	}
	return w
}

// Sites returns the number of federation sites.
func (w *WAN) Sites() int { return w.cfg.Sites }

// Metrics returns the registry carrying the chaos.wan.* counters.
func (w *WAN) Metrics() *obs.Registry { return w.metrics }

// link canonicalizes an unordered site pair to a flat index (a < b).
func (w *WAN) link(a, b int) int {
	if a > b {
		a, b = b, a
	}
	return a*w.cfg.Sites + b
}

func (w *WAN) checkSite(i int) {
	if i < 0 || i >= w.cfg.Sites {
		panic(fmt.Sprintf("chaos: wan site %d out of range [0,%d)", i, w.cfg.Sites))
	}
}

// LoseSite marks site i unreachable — a whole-site disaster — until
// RestoreSite. Idempotent; explicit, so it consumes no randomness.
func (w *WAN) LoseSite(i int) {
	w.checkSite(i)
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.down[i] {
		w.down[i] = true
		w.injected[WANClassSiteLoss].Inc()
		w.gDown.Set(w.downCountLocked())
	}
}

// RestoreSite readmits site i (and ends any flap window on it).
func (w *WAN) RestoreSite(i int) {
	w.checkSite(i)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.down[i] = false
	w.flapUntil[i] = 0
	w.gDown.Set(w.downCountLocked())
}

// FlapSite takes site i dark for the next window Steps (cfg.FlapWindow if
// window <= 0), then it recovers by itself.
func (w *WAN) FlapSite(i, window int) {
	w.checkSite(i)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flapSiteLocked(i, window)
}

func (w *WAN) flapSiteLocked(i, window int) {
	if window <= 0 {
		window = w.cfg.FlapWindow
	}
	until := w.steps + int64(window)
	if until > w.flapUntil[i] {
		w.flapUntil[i] = until
	}
	w.injected[WANClassSiteFlap].Inc()
	w.gDown.Set(w.downCountLocked())
}

// Partition cuts the WAN link between sites a and b: site-to-site exchange
// across that pair fails until HealLink/HealAll. Idempotent.
func (w *WAN) Partition(a, b int) {
	w.checkSite(a)
	w.checkSite(b)
	if a == b {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.cut[w.link(a, b)] {
		w.cut[w.link(a, b)] = true
		w.injected[WANClassPartition].Inc()
		w.gCut.Set(w.cutCountLocked())
	}
}

// HealLink restores the link between a and b and clears its brownout.
func (w *WAN) HealLink(a, b int) {
	w.checkSite(a)
	w.checkSite(b)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cut[w.link(a, b)] = false
	w.slow[w.link(a, b)] = 0
	w.gCut.Set(w.cutCountLocked())
}

// BrownoutLink leaves the a-b link up but adds latency d to every exchange
// crossing it. d <= 0 clears the brownout.
func (w *WAN) BrownoutLink(a, b int, d time.Duration) {
	w.checkSite(a)
	w.checkSite(b)
	if a == b {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if d < 0 {
		d = 0
	}
	if d > 0 && w.slow[w.link(a, b)] == 0 {
		w.injected[WANClassBrownout].Inc()
	}
	w.slow[w.link(a, b)] = d
}

// HealAll restores every site and every link: no losses, no flaps, no
// partitions, no brownouts.
func (w *WAN) HealAll() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.down {
		w.down[i] = false
		w.flapUntil[i] = 0
	}
	for i := range w.cut {
		w.cut[i] = false
		w.slow[i] = 0
	}
	w.gDown.Set(0)
	w.gCut.Set(0)
}

// Quiesce stops rate-based flap injection and ends active flap windows.
// Explicit site losses and partitions stay (they were deliberate) — heal
// them with RestoreSite/HealLink/HealAll.
func (w *WAN) Quiesce() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesced = true
	for i := range w.flapUntil {
		w.flapUntil[i] = 0
	}
	w.gDown.Set(w.downCountLocked())
}

// Step ticks the WAN operation clock and draws rate-based site flaps.
// The federation facade calls it once per logical operation so the flap
// schedule is a pure function of the seed and the op sequence.
func (w *WAN) Step() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.steps++
	if w.quiesced || w.cfg.SiteFlapRate <= 0 {
		return
	}
	if w.rng.Float64() < w.cfg.SiteFlapRate {
		w.flapSiteLocked(w.rng.IntN(w.cfg.Sites), w.cfg.FlapWindow)
	}
}

// Steps returns the WAN operation clock.
func (w *WAN) Steps() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.steps
}

// SiteUp reports whether site i is reachable (not lost, not flapping).
// Consumes no randomness.
func (w *WAN) SiteUp(i int) bool {
	w.checkSite(i)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.siteUpLocked(i)
}

func (w *WAN) siteUpLocked(i int) bool {
	return !w.down[i] && w.flapUntil[i] <= w.steps
}

// LinkUp reports whether sites a and b can exchange blocks: both sites up
// and the link between them not partitioned. Consumes no randomness.
func (w *WAN) LinkUp(a, b int) bool {
	w.checkSite(a)
	w.checkSite(b)
	if a == b {
		return w.SiteUp(a)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.siteUpLocked(a) && w.siteUpLocked(b) && !w.cut[w.link(a, b)]
}

// LinkLatency returns the brownout latency on the a-b link (zero when
// healthy). Consumes no randomness.
func (w *WAN) LinkLatency(a, b int) time.Duration {
	w.checkSite(a)
	w.checkSite(b)
	if a == b {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.slow[w.link(a, b)]
}

// UpSites returns the reachable sites in ascending order.
func (w *WAN) UpSites() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []int
	for i := 0; i < w.cfg.Sites; i++ {
		if w.siteUpLocked(i) {
			out = append(out, i)
		}
	}
	return out
}

// InjectedWANTotals snapshots the per-class chaos.wan injection counters.
func (w *WAN) InjectedWANTotals() map[string]int64 {
	out := make(map[string]int64, len(WANClasses))
	for _, class := range WANClasses {
		out[class] = w.injected[class].Value()
	}
	return out
}

func (w *WAN) downCountLocked() int64 {
	var n int64
	for i := range w.down {
		if !w.siteUpLocked(i) {
			n++
		}
	}
	return n
}

func (w *WAN) cutCountLocked() int64 {
	var n int64
	for _, c := range w.cut {
		if c {
			n++
		}
	}
	return n
}
