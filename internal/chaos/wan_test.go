package chaos

import (
	"reflect"
	"testing"
	"time"
)

func TestWANSiteLossAndRestore(t *testing.T) {
	w := NewWAN(WANConfig{Sites: 3, Seed: 1})
	for i := 0; i < 3; i++ {
		if !w.SiteUp(i) {
			t.Fatalf("site %d should start up", i)
		}
	}
	w.LoseSite(1)
	w.LoseSite(1) // idempotent
	if w.SiteUp(1) {
		t.Error("lost site still up")
	}
	if got := w.UpSites(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("UpSites = %v, want [0 2]", got)
	}
	if w.LinkUp(0, 1) || w.LinkUp(1, 2) {
		t.Error("links to a lost site should be down")
	}
	if !w.LinkUp(0, 2) {
		t.Error("link between surviving sites should be up")
	}
	if got := w.InjectedWANTotals()[WANClassSiteLoss]; got != 1 {
		t.Errorf("site_loss injections = %d, want 1 (idempotent)", got)
	}
	w.RestoreSite(1)
	if !w.SiteUp(1) || !w.LinkUp(0, 1) {
		t.Error("restored site should be reachable")
	}
}

func TestWANPartitionIsPairwise(t *testing.T) {
	w := NewWAN(WANConfig{Sites: 3})
	w.Partition(2, 0) // order must not matter
	if w.LinkUp(0, 2) || w.LinkUp(2, 0) {
		t.Error("partitioned link reported up")
	}
	// Both endpoints stay up and their other links work.
	if !w.SiteUp(0) || !w.SiteUp(2) {
		t.Error("partition must not take sites down")
	}
	if !w.LinkUp(0, 1) || !w.LinkUp(1, 2) {
		t.Error("unrelated links went down")
	}
	w.HealLink(0, 2)
	if !w.LinkUp(0, 2) {
		t.Error("healed link still down")
	}
}

func TestWANBrownout(t *testing.T) {
	w := NewWAN(WANConfig{Sites: 2})
	if d := w.LinkLatency(0, 1); d != 0 {
		t.Fatalf("healthy link latency = %v", d)
	}
	w.BrownoutLink(0, 1, 5*time.Millisecond)
	if d := w.LinkLatency(1, 0); d != 5*time.Millisecond {
		t.Errorf("latency = %v, want 5ms (symmetric)", d)
	}
	if !w.LinkUp(0, 1) {
		t.Error("browned-out link must stay up")
	}
	w.HealLink(0, 1)
	if d := w.LinkLatency(0, 1); d != 0 {
		t.Errorf("heal left latency %v", d)
	}
}

func TestWANFlapExpiresWithSteps(t *testing.T) {
	w := NewWAN(WANConfig{Sites: 2})
	w.FlapSite(1, 3)
	if w.SiteUp(1) {
		t.Fatal("flapped site should be dark")
	}
	for i := 0; i < 3; i++ {
		w.Step()
	}
	if !w.SiteUp(1) {
		t.Error("flap window should have expired")
	}
}

func TestWANDeterministicFlapSchedule(t *testing.T) {
	run := func() []bool {
		w := NewWAN(WANConfig{Sites: 4, Seed: 99, SiteFlapRate: 0.2, FlapWindow: 4})
		var states []bool
		for i := 0; i < 200; i++ {
			w.Step()
			for s := 0; s < 4; s++ {
				states = append(states, w.SiteUp(s))
			}
		}
		return states
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different site schedules")
	}
	flapped := false
	for _, up := range a {
		if !up {
			flapped = true
			break
		}
	}
	if !flapped {
		t.Error("rate 0.2 over 200 steps never flapped a site")
	}
}

func TestWANQuiesceStopsFlapsKeepsLosses(t *testing.T) {
	w := NewWAN(WANConfig{Sites: 3, Seed: 7, SiteFlapRate: 1})
	w.LoseSite(0)
	w.Partition(1, 2)
	w.Step() // guaranteed flap draw
	w.Quiesce()
	if !w.SiteUp(1) || !w.SiteUp(2) {
		t.Error("quiesce should end flap windows")
	}
	if w.SiteUp(0) {
		t.Error("quiesce must keep explicit site loss")
	}
	if w.LinkUp(1, 2) {
		t.Error("quiesce must keep explicit partitions")
	}
	steps := w.Steps()
	for i := 0; i < 50; i++ {
		w.Step()
	}
	if w.Steps() != steps+50 {
		t.Error("step clock stopped")
	}
	if !w.SiteUp(1) || !w.SiteUp(2) {
		t.Error("quiesced WAN injected a flap")
	}
	w.HealAll()
	if !w.SiteUp(0) || !w.LinkUp(1, 2) {
		t.Error("HealAll left damage")
	}
}
