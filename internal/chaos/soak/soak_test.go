package soak

import (
	"testing"
)

// TestSoakInvariants runs ten seeded chaos campaigns over the array
// backend and enforces the end-to-end invariants on each: zero silent
// corruption, detection exactly matching served corruption, and
// post-campaign convergence to zero missing blocks.
func TestSoakInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Seed: seed, Ops: 300})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := rep.Check(); err != nil {
				t.Errorf("%v\nreport: %+v", err, rep)
			}
			if rep.ServedCorrupt == 0 {
				t.Errorf("seed %d: campaign injected no corruption; rates too low to mean anything", seed)
			}
			if rep.VerifiedObjects != rep.Puts {
				t.Errorf("seed %d: verified %d of %d objects", seed, rep.VerifiedObjects, rep.Puts)
			}
		})
	}
}

// TestSoakMAID runs campaigns over the power-managed shelf backend: the
// chaos layer composes over MAID, and the invariants hold there too.
func TestSoakMAID(t *testing.T) {
	for seed := uint64(21); seed <= 23; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Seed: seed, Ops: 200, MAID: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := rep.Check(); err != nil {
				t.Errorf("%v\nreport: %+v", err, rep)
			}
		})
	}
}

// TestSoakDeterminism: the same seed must produce the identical fault
// schedule and the identical outcome, fingerprint included.
func TestSoakDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, Ops: 250}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("fingerprints diverged: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.Gets != b.Gets || a.Puts != b.Puts || a.DataLossGets != b.DataLossGets ||
		a.ServedCorrupt != b.ServedCorrupt || a.DetectedCorrupt != b.DetectedCorrupt {
		t.Errorf("outcomes diverged:\n%+v\n%+v", a, b)
	}
	for class, n := range a.Injected {
		if b.Injected[class] != n {
			t.Errorf("class %s: %d vs %d", class, n, b.Injected[class])
		}
	}

	// A different seed must produce a different schedule (fingerprints
	// collide only if the campaign ignored the seed).
	c, err := Run(Config{Seed: 100, Ops: 250})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Error("different seeds produced identical campaigns")
	}
}

// TestSoakHeavySchedule pushes the rates far past the design envelope.
// Convergence to zero-missing is forfeit out here — damage between scrubs
// can exceed the graph's tolerance, and that loss is real — but the
// detection invariants are rate-independent: every Get is bit-exact or a
// definitive error, and every corrupt frame served is detected.
func TestSoakHeavySchedule(t *testing.T) {
	faults := DefaultFaults()
	faults.BitFlipRate = 0.05
	faults.ReadCorruptRate = 0.05
	faults.TruncateRate = 0.02
	faults.TornWriteRate = 0.02
	faults.ReadErrRate = 0.08
	rep, err := Run(Config{Seed: 7, Ops: 250, Faults: faults, ScrubEvery: 24})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SilentCorruptions != 0 {
		t.Errorf("%d silent corruptions under heavy schedule\nreport: %+v", rep.SilentCorruptions, rep)
	}
	if rep.DetectedCorrupt != rep.ServedCorrupt {
		t.Errorf("detected %d corrupt frames, injector served %d", rep.DetectedCorrupt, rep.ServedCorrupt)
	}
	if rep.ReadRepairs == 0 {
		t.Error("heavy schedule triggered no read-repair")
	}
	if rep.DataLossGets == 0 {
		t.Error("heavy schedule produced no definitive data-loss errors; rates are not heavy")
	}
}
