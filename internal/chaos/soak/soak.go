// Package soak runs randomized, seeded chaos campaigns against the archive
// data path end to end: a deterministic mix of Put/Get/Scrub and
// device-failure/replacement operations executes over a fault-injecting
// backend (tornado/internal/chaos), and the run enforces the archival
// invariant the whole system exists for — every Get returns bit-exact data
// or a definitive error, never silent corruption — then quiesces the
// injector and verifies that a repair scrub converges the store back to
// zero missing blocks and zero outstanding corruption.
//
// Campaigns are fully deterministic: the same Config (including Seed)
// produces the identical fault schedule, operation mix, and Report,
// fingerprint included.
package soak

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/maid"
	"tornado/internal/obs"
)

// Config tunes one campaign. The zero value is usable: Defaults fills in a
// moderate-rate schedule over a 32-node array-backed store.
type Config struct {
	// Seed drives the operation mix, the payload bytes, the graph draw,
	// and (via chaos.Config) the fault schedule.
	Seed uint64
	// Ops is the campaign length in operations. Default 400.
	Ops int
	// TotalNodes sizes the tornado graph (data nodes = TotalNodes/2).
	// Default 48: 32-node graphs routinely carry closed 4-node data sets
	// that defect screening cannot repair away at that size, and a
	// two-device outage plus scattered bit rot completes them often
	// enough to make convergence a coin flip.
	TotalNodes int
	// BlockSize is the stripe block size. Default 64.
	BlockSize int
	// MaxObjectSize bounds Put payloads. Default 4096.
	MaxObjectSize int
	// MAID selects the power-managed shelf backend instead of the plain
	// device array; MaxOn is its spin budget (default TotalNodes/2).
	MAID  bool
	MaxOn int
	// Faults is the injection schedule; Seed and Metrics are overridden.
	// The zero value gets DefaultFaults.
	Faults chaos.Config
	// MaxFailedDevices caps simultaneous real device failures (contents
	// destroyed until replaced). Default 2.
	MaxFailedDevices int
	// ScrubEvery forces a repair scrub every N ops so damage cannot
	// accumulate past the graph's tolerance. Default 32.
	ScrubEvery int
	// Log, when non-nil, receives verbose per-op commentary.
	Log io.Writer
}

// DefaultFaults is the moderate-rate schedule campaigns use when
// Config.Faults is zero: every fault class active, low enough that stripes
// stay recoverable between scrubs.
func DefaultFaults() chaos.Config {
	return chaos.Config{
		BitFlipRate:     0.008,
		ReadCorruptRate: 0.008,
		TruncateRate:    0.004,
		TornWriteRate:   0.004,
		ReadErrRate:     0.020,
		WriteErrRate:    0.010,
		NodeLossRate:    0.0015,
		MaxLostNodes:    1,
		FlapRate:        0.004,
		FlapWindow:      16,
	}
}

// Report is one campaign's outcome and the evidence for its invariants.
type Report struct {
	Seed uint64

	// Operation mix. RejectedPuts are writes the store refused with
	// ErrDegraded because too many devices were down to meet the
	// durability floor — refusal, not silent under-replication.
	Ops, Puts, RejectedPuts, Gets, Scrubs, DeviceFails, DeviceReplacements int

	// Get outcomes. DataLossGets are definitive ErrDataLoss errors —
	// acceptable under heavy injected loss. SilentCorruptions are Gets
	// that returned wrong bytes without an error — the unforgivable
	// failure; Check requires zero.
	DataLossGets      int
	SilentCorruptions int

	// Fault-injection accounting.
	Injected         map[string]int64 // per chaos class
	ServedCorrupt    int64            // corrupt frames handed to the archive
	DetectedCorrupt  int64            // corrupt frames the archive detected
	VoidedCorrupt    int64            // at-rest corruptions destroyed before detection
	ReadRepairs      int64
	ScrubRepairs     int64
	QuarantineEvents int64

	// Post-campaign convergence (after Quiesce + RestoreAll + repair
	// scrub): OutstandingAfter and FinalMissing must be zero, and every
	// object must verify bit-exact (FinalVerifyFailures counts the ones
	// that did not — wrong bytes or any error, since after quiesce there
	// is no excuse left).
	OutstandingAfter    int
	FinalMissing        int
	FinalUnrecoverable  int
	VerifiedObjects     int
	FinalVerifyFailures int
	// FinalMissingByNode breaks FinalMissing down per node — the
	// diagnostic that separates "scattered bit rot" from "these exact
	// devices never came back".
	FinalMissingByNode map[int]int

	// Fingerprint hashes the full operation/outcome log: two runs of the
	// same Config are identical iff their fingerprints match.
	Fingerprint string
}

// Check enforces the end-to-end soak invariants, returning nil when the
// campaign upheld all of them.
func (r Report) Check() error {
	switch {
	case r.SilentCorruptions != 0:
		return fmt.Errorf("soak: %d silent corruptions (seed %d)", r.SilentCorruptions, r.Seed)
	case r.FinalVerifyFailures != 0:
		return fmt.Errorf("soak: %d objects failed post-quiesce verification (seed %d)",
			r.FinalVerifyFailures, r.Seed)
	case r.DetectedCorrupt != r.ServedCorrupt:
		return fmt.Errorf("soak: detected %d corrupt frames but injector served %d (seed %d)",
			r.DetectedCorrupt, r.ServedCorrupt, r.Seed)
	case r.OutstandingAfter != 0:
		return fmt.Errorf("soak: %d corruptions outstanding after repair scrub (seed %d)",
			r.OutstandingAfter, r.Seed)
	case r.FinalMissing != 0:
		return fmt.Errorf("soak: %d blocks missing after repair scrub (seed %d)", r.FinalMissing, r.Seed)
	case r.FinalUnrecoverable != 0:
		return fmt.Errorf("soak: %d stripes unrecoverable at campaign end (seed %d)",
			r.FinalUnrecoverable, r.Seed)
	}
	return nil
}

// Run executes one seeded campaign and returns its Report. An error means
// the harness itself failed (bad config, unexpected store error) — invariant
// violations are reported via Report.Check, not the error.
func Run(cfg Config) (Report, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cancellation: the campaign checks ctx between
// operations and aborts with the context's error. Cancellation does not
// perturb the schedule — a run that completes produces the same Report and
// fingerprint whether or not a context was attached.
func RunCtx(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.TotalNodes <= 0 {
		cfg.TotalNodes = 48
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 64
	}
	if cfg.MaxObjectSize <= 0 {
		cfg.MaxObjectSize = 4096
	}
	if cfg.MaxOn <= 0 {
		cfg.MaxOn = cfg.TotalNodes / 2
	}
	if cfg.MaxFailedDevices <= 0 {
		cfg.MaxFailedDevices = 2
	}
	if cfg.ScrubEvery <= 0 {
		cfg.ScrubEvery = 32
	}
	zero := chaos.Config{}
	if cfg.Faults == zero {
		cfg.Faults = DefaultFaults()
	}

	rep := Report{Seed: cfg.Seed, Ops: cfg.Ops}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	fp := sha256.New()
	note := func(format string, args ...any) {
		fmt.Fprintf(fp, format+"\n", args...)
	}

	// Deterministic stack: graph, devices, backend, injector, store.
	params := core.DefaultParams()
	params.TotalNodes = cfg.TotalNodes
	g, _, err := core.Generate(params, rand.New(rand.NewPCG(cfg.Seed, 11)))
	if err != nil {
		return rep, fmt.Errorf("soak: graph: %w", err)
	}
	reg := obs.NewRegistry()
	devs := device.NewArray(g.Total)
	var inner archive.Backend
	if cfg.MAID {
		shelf, err := maid.NewShelf(devs, cfg.MaxOn)
		if err != nil {
			return rep, fmt.Errorf("soak: shelf: %w", err)
		}
		inner = maid.NewStoreBackend(shelf)
	} else {
		inner = archive.NewArrayBackend(devs)
	}
	faults := cfg.Faults
	faults.Seed = cfg.Seed
	faults.Metrics = reg
	inj := chaos.Wrap(inner, faults)
	store, err := archive.NewWithBackend(g, inj, archive.Config{
		BlockSize: cfg.BlockSize,
		Metrics:   reg,
		// A node needs a few detections between scrub passes (which reset
		// clean nodes' counts) before it is worth benching; 3 is too
		// trigger-happy when corruption is spread evenly, not node-local.
		QuarantineThreshold: 5,
		// Refuse writes that would be born more than 3 blocks below full
		// strength — an archive ingesting during a multi-device outage is
		// how stripes start life already near their failure point.
		MaxPutFailures: 3,
	})
	if err != nil {
		return rep, fmt.Errorf("soak: store: %w", err)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 13))
	golden := map[string][]byte{}
	var names []string
	var failed []int

	put := func(i int) error {
		name := fmt.Sprintf("obj-%04d", len(names))
		size := 1 + rng.IntN(cfg.MaxObjectSize)
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(rng.IntN(256))
		}
		if err := store.PutCtx(ctx, name, data); err != nil {
			if errors.Is(err, archive.ErrDegraded) {
				rep.RejectedPuts++
				note("op %d put %s rejected", i, name)
				return nil
			}
			return fmt.Errorf("soak: put %s: %w", name, err)
		}
		golden[name] = data
		names = append(names, name)
		rep.Puts++
		note("op %d put %s %d", i, name, size)
		return nil
	}
	get := func(i int) error {
		name := names[rng.IntN(len(names))]
		got, stats, err := store.GetCtx(ctx, name)
		rep.Gets++
		switch {
		case err == nil && bytes.Equal(got, golden[name]):
			note("op %d get %s ok read=%d corrupt=%d repair=%d", i, name,
				stats.BlocksRead, stats.CorruptBlocks, stats.ReadRepairs)
		case err == nil:
			rep.SilentCorruptions++
			note("op %d get %s SILENT", i, name)
			logf("op %d: SILENT CORRUPTION on %s", i, name)
		case errors.Is(err, archive.ErrDataLoss):
			rep.DataLossGets++
			note("op %d get %s dataloss", i, name)
		default:
			return fmt.Errorf("soak: get %s: %w", name, err)
		}
		return nil
	}
	scrub := func(i int) error {
		srep, err := store.ScrubCtx(ctx, true)
		if err != nil {
			return fmt.Errorf("soak: scrub: %w", err)
		}
		rep.Scrubs++
		note("op %d scrub repaired=%d corrupt=%d unrecov=%d", i,
			srep.BlocksRepaired, srep.CorruptFrames, srep.Unrecoverable)
		return nil
	}

	// Seed the store so early Gets have something to read.
	for i := 0; i < 3; i++ {
		if err := put(-1); err != nil {
			return rep, err
		}
	}

	for i := 0; i < cfg.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("soak: cancelled at op %d: %w", i, err)
		}
		if cfg.ScrubEvery > 0 && i > 0 && i%cfg.ScrubEvery == 0 {
			if err := scrub(i); err != nil {
				return rep, err
			}
		}
		switch roll := rng.Float64(); {
		case roll < 0.18:
			if err := put(i); err != nil {
				return rep, err
			}
		case roll < 0.88:
			if err := get(i); err != nil {
				return rep, err
			}
		case roll < 0.93:
			if err := scrub(i); err != nil {
				return rep, err
			}
		case roll < 0.95:
			// A real device dies: contents destroyed. The injector's
			// bookkeeping for that node is voided — those corruptions can
			// never be detected.
			if len(failed) >= cfg.MaxFailedDevices {
				note("op %d fail skipped", i)
				continue
			}
			id := rng.IntN(len(devs))
			if devs[id].State() == device.Failed {
				note("op %d fail dup %d", i, id)
				continue
			}
			devs[id].Fail()
			inj.VoidNode(id)
			failed = append(failed, id)
			rep.DeviceFails++
			note("op %d fail %d", i, id)
			logf("op %d: device %d failed", i, id)
		default:
			// Replace the oldest failed device with a blank drive; the
			// next repair scrub repopulates it. Replacement is rolled more
			// often than failure (5% vs 2%): a dead device is a hole in
			// every stripe, and the longer two holes overlap the likelier
			// the next fault completes one of the graph's small
			// first-failure patterns.
			if len(failed) == 0 {
				note("op %d replace skipped", i)
				continue
			}
			id := failed[0]
			failed = failed[1:]
			devs[id].Replace()
			store.ClearQuarantine(id)
			rep.DeviceReplacements++
			note("op %d replace %d", i, id)
			logf("op %d: device %d replaced", i, id)
			// Rebuild-on-replace: a blank drive is a hole in every stripe
			// until repopulated, and holes on replaced-but-unrebuilt drives
			// are NOT counted by MaxFailedDevices — without an immediate
			// rebuild, churn can stack enough blanks to complete one of the
			// graph's first-failure patterns and freeze the whole store.
			if err := scrub(i); err != nil {
				return rep, err
			}
		}
	}

	// Convergence: quiesce injection, restore injected availability loss,
	// replace destroyed devices, readmit quarantined nodes, then repair.
	inj.Quiesce()
	inj.RestoreAll()
	for _, id := range failed {
		devs[id].Replace()
		rep.DeviceReplacements++
	}
	for _, node := range store.Quarantined() {
		store.ClearQuarantine(node)
	}
	if _, err := store.Scrub(true); err != nil {
		return rep, fmt.Errorf("soak: convergence scrub: %w", err)
	}
	final, err := store.Scrub(false)
	if err != nil {
		return rep, fmt.Errorf("soak: final scrub: %w", err)
	}
	rep.FinalMissingByNode = map[int]int{}
	for _, h := range final.Stripes {
		rep.FinalMissing += len(h.Missing)
		for _, node := range h.Missing {
			rep.FinalMissingByNode[node]++
		}
		if !h.Recoverable {
			rep.FinalUnrecoverable++
		}
	}
	for _, name := range names {
		got, _, err := store.Get(name)
		if err != nil || !bytes.Equal(got, golden[name]) {
			rep.FinalVerifyFailures++ // post-quiesce, even an error is a violation
			note("final get %s BAD", name)
			continue
		}
		rep.VerifiedObjects++
	}

	rep.Injected = inj.InjectedTotals()
	rep.ServedCorrupt = inj.ServedCorrupt()
	rep.DetectedCorrupt = reg.Counter("archive.detected.corrupt_frames").Value()
	rep.VoidedCorrupt = reg.Counter("chaos.voided_corruptions").Value()
	rep.ReadRepairs = reg.Counter("archive.read_repair.blocks").Value()
	rep.ScrubRepairs = reg.Counter("archive.scrub.blocks_repaired").Value()
	rep.QuarantineEvents = reg.Counter("archive.quarantine.events").Value()
	rep.OutstandingAfter = inj.Outstanding()

	note("served=%d detected=%d voided=%d missing=%d", rep.ServedCorrupt,
		rep.DetectedCorrupt, rep.VoidedCorrupt, rep.FinalMissing)
	rep.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	logf("campaign seed %d: %d puts, %d gets (%d dataloss), %d scrubs, served=%d detected=%d, fingerprint %.12s",
		cfg.Seed, rep.Puts, rep.Gets, rep.DataLossGets, rep.Scrubs,
		rep.ServedCorrupt, rep.DetectedCorrupt, rep.Fingerprint)
	return rep, nil
}
