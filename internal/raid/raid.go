// Package raid models the parity/replication baselines the paper compares
// Tornado Codes against (§4.1, Table 5): striping, RAID5 and RAID6 drawer
// configurations (8 drawers × 12 disks), and mirroring. Each scheme gets an
// exact analytic P(fail | k drives offline); mirroring and RAID5 are also
// expressible as XOR parity graphs, which the paper uses to validate its
// simulator against Equation (1) "to at least 9 significant digits".
package raid

import (
	"fmt"
	"math"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// GroupToleranceFailGivenK returns the exact probability that k uniformly
// random offline drives lose data in a system of groups × perGroup drives
// where each group tolerates up to tol losses:
//
//	P(fail | k) = 1 − #{k-subsets with ≤ tol per group} / C(groups·perGroup, k)
//
// Mirroring is groups=n, perGroup=2, tol=1 (this is Equation (1) in closed
// form); RAID5 drawers are tol=1 over 12 disks; RAID6 tol=2; striping tol=0.
func GroupToleranceFailGivenK(groups, perGroup, tol, k int) float64 {
	n := groups * perGroup
	if k < 0 || k > n {
		panic(fmt.Sprintf("raid: k=%d out of range for %d drives", k, n))
	}
	if k == 0 {
		return 0
	}
	// DP over groups: ways[d] = number of ways to place d failed drives so
	// far with ≤ tol per group. Values fit float64 comfortably for the
	// paper's 96-drive systems (max C(96,48) ≈ 6.4e27).
	ways := make([]float64, k+1)
	ways[0] = 1
	for g := 0; g < groups; g++ {
		next := make([]float64, k+1)
		for d := 0; d <= k; d++ {
			if ways[d] == 0 {
				continue
			}
			for i := 0; i <= tol && i <= perGroup && d+i <= k; i++ {
				next[d+i] += ways[d] * combin.Binomial(perGroup, i)
			}
		}
		ways = next
	}
	p := 1 - ways[k]/combin.Binomial(n, k)
	// The DP and the closed-form binomial round differently; clamp the
	// residual (≈1e-16) so callers always see a probability.
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MirroredFailGivenK is Equation (1): the probability that k offline drives
// in an n-pair mirrored array cause data loss.
func MirroredFailGivenK(pairs, k int) float64 {
	return GroupToleranceFailGivenK(pairs, 2, 1, k)
}

// MirroredDeadPairsPMF is the summand form of Equation (1): the
// probability that exactly j mirror pairs are completely dead when k of
// the 2n drives are offline,
//
//	P(j | k) = C(n,j) · C(n−j, k−2j) · 2^(k−2j) / C(2n,k).
//
// Summing j ≥ 1 recovers MirroredFailGivenK; j = 0 is the survival term.
func MirroredDeadPairsPMF(pairs, k, j int) float64 {
	if j < 0 || 2*j > k || k-2*j > pairs-j {
		return 0
	}
	n := pairs
	num := combin.Binomial(n, j) * combin.Binomial(n-j, k-2*j) * math.Pow(2, float64(k-2*j))
	return num / combin.Binomial(2*n, k)
}

// RAID5FailGivenK returns P(fail | k) for drawers of disksPerLUN drives
// each protected by single parity.
func RAID5FailGivenK(luns, disksPerLUN, k int) float64 {
	return GroupToleranceFailGivenK(luns, disksPerLUN, 1, k)
}

// RAID6FailGivenK returns P(fail | k) for drawers of disksPerLUN drives
// each protected by dual parity.
func RAID6FailGivenK(luns, disksPerLUN, k int) float64 {
	return GroupToleranceFailGivenK(luns, disksPerLUN, 2, k)
}

// StripingFailGivenK returns P(fail | k) for plain striping: any loss is
// fatal.
func StripingFailGivenK(n, k int) float64 {
	return GroupToleranceFailGivenK(1, n, 0, min(k, n))
}

// MirroredGraph expresses an n-pair mirrored system as a parity graph (a
// degree-1 check per data node), the validation graph of paper §3: its
// simulated profile must equal Equation (1).
func MirroredGraph(pairs int) *graph.Graph {
	b := graph.NewBuilder(pairs)
	r := b.AddLevel(0, pairs, pairs)
	g := b.Graph()
	for i := 0; i < pairs; i++ {
		g.SetNeighbors(r+i, []int{i})
	}
	g.Name = fmt.Sprintf("mirrored-%d", 2*pairs)
	return g
}

// RAID5Graph expresses luns drawers of disksPerLUN drives as a parity
// graph: each drawer's parity disk is one XOR check over its disksPerLUN−1
// data disks. Data nodes are grouped per drawer: drawer j owns data nodes
// [j·(disksPerLUN−1), (j+1)·(disksPerLUN−1)).
func RAID5Graph(luns, disksPerLUN int) *graph.Graph {
	if disksPerLUN < 2 {
		panic("raid: RAID5 needs at least 2 disks per LUN")
	}
	dataPer := disksPerLUN - 1
	b := graph.NewBuilder(luns * dataPer)
	r := b.AddLevel(0, luns*dataPer, luns)
	g := b.Graph()
	for j := 0; j < luns; j++ {
		lefts := make([]int, 0, dataPer)
		for i := 0; i < dataPer; i++ {
			lefts = append(lefts, j*dataPer+i)
		}
		g.SetNeighbors(r+j, lefts)
	}
	g.Name = fmt.Sprintf("raid5-%dx%d", luns, disksPerLUN)
	return g
}

// Scheme bundles a named baseline with its analytic failure model for the
// comparison tables.
type Scheme struct {
	Name   string
	Drives int
	Data   int // drives presented as capacity
	Parity int
	// FailGivenK returns P(data loss | exactly k drives offline).
	FailGivenK func(k int) float64
}

// Paper96Schemes returns the baseline systems of the paper's 96-drive
// comparison (§4.1, Table 5): individual disks, striping, RAID5 and RAID6
// as 8 drawers × 12 disks, and mirroring.
func Paper96Schemes() []Scheme {
	return []Scheme{
		{
			Name: "Striping", Drives: 96, Data: 96, Parity: 0,
			FailGivenK: func(k int) float64 { return StripingFailGivenK(96, k) },
		},
		{
			Name: "RAID5", Drives: 96, Data: 88, Parity: 8,
			FailGivenK: func(k int) float64 { return RAID5FailGivenK(8, 12, k) },
		},
		{
			Name: "RAID6", Drives: 96, Data: 80, Parity: 16,
			FailGivenK: func(k int) float64 { return RAID6FailGivenK(8, 12, k) },
		},
		{
			Name: "Mirrored", Drives: 96, Data: 48, Parity: 48,
			FailGivenK: func(k int) float64 { return MirroredFailGivenK(48, k) },
		},
	}
}
