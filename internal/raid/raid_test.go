package raid

import (
	"math"
	"testing"
	"testing/quick"

	"tornado/internal/combin"
	"tornado/internal/sim"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMirroredClosedForm(t *testing.T) {
	// Equation (1) closed form: 1 − C(n,k)·2^k/C(2n,k).
	for _, n := range []int{4, 8, 48} {
		for k := 0; k <= 2*n; k++ {
			var want float64
			if k > n {
				want = 1
			} else {
				want = 1 - combin.Binomial(n, k)*math.Pow(2, float64(k))/combin.Binomial(2*n, k)
			}
			if got := MirroredFailGivenK(n, k); !approx(got, want, 1e-12) {
				t.Fatalf("MirroredFailGivenK(%d,%d) = %.15f, want %.15f", n, k, got, want)
			}
		}
	}
}

func TestMirroredSmallCases(t *testing.T) {
	// 2 pairs, 4 drives: P(fail | 2) = 2/C(4,2) = 1/3.
	if got := MirroredFailGivenK(2, 2); !approx(got, 1.0/3, 1e-12) {
		t.Errorf("P(fail|2) = %v, want 1/3", got)
	}
	if got := MirroredFailGivenK(2, 0); got != 0 {
		t.Errorf("P(fail|0) = %v", got)
	}
	if got := MirroredFailGivenK(2, 4); got != 1 {
		t.Errorf("P(fail|4) = %v", got)
	}
}

func TestRAID5Formula(t *testing.T) {
	// 8 LUNs × 12 disks: P(ok | k) = C(8,k)·12^k / C(96,k) for k ≤ 8.
	for k := 0; k <= 8; k++ {
		want := 1 - combin.Binomial(8, k)*math.Pow(12, float64(k))/combin.Binomial(96, k)
		if got := RAID5FailGivenK(8, 12, k); !approx(got, want, 1e-12) {
			t.Errorf("RAID5FailGivenK(8,12,%d) = %.12f, want %.12f", k, got, want)
		}
	}
	// k = 9 guarantees some LUN has ≥ 2 failures.
	if got := RAID5FailGivenK(8, 12, 9); got != 1 {
		t.Errorf("P(fail|9) = %v, want 1", got)
	}
}

func TestRAID6FirstFailure(t *testing.T) {
	if got := RAID6FailGivenK(8, 12, 2); got != 0 {
		t.Errorf("RAID6 must tolerate any 2 losses, P = %v", got)
	}
	if got := RAID6FailGivenK(8, 12, 3); got <= 0 {
		t.Errorf("RAID6 can fail at 3 losses, P = %v", got)
	}
	// 17 losses guarantee a LUN with ≥ 3 (8 LUNs × 2 = 16 max safe).
	if got := RAID6FailGivenK(8, 12, 17); got != 1 {
		t.Errorf("P(fail|17) = %v, want 1", got)
	}
}

func TestStriping(t *testing.T) {
	if got := StripingFailGivenK(96, 0); got != 0 {
		t.Errorf("P(fail|0) = %v", got)
	}
	for _, k := range []int{1, 5, 96, 200} {
		if got := StripingFailGivenK(96, k); got != 1 {
			t.Errorf("P(fail|%d) = %v, want 1", k, got)
		}
	}
}

func TestGroupTolerancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range k did not panic")
		}
	}()
	GroupToleranceFailGivenK(8, 12, 1, -1)
}

// TestSimulatorMatchesMirroredTheory is the paper's §3 validation scaled to
// an exhaustively checkable size: the simulated mirrored-graph profile must
// match Equation (1) exactly (the paper reports agreement to ≥9 significant
// digits from sampling; enumeration makes it exact).
func TestSimulatorMatchesMirroredTheory(t *testing.T) {
	g := MirroredGraph(8)
	p, err := sim.FailureProfile(g, sim.ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 16; k++ {
		want := MirroredFailGivenK(8, k)
		if got := p.FailFraction(k); !approx(got, want, 1e-12) {
			t.Errorf("k=%d: simulated %.15f, Eq.(1) %.15f", k, got, want)
		}
	}
}

// The simulated RAID5 graph must reproduce the analytic drawer formula.
func TestSimulatorMatchesRAID5Theory(t *testing.T) {
	// 3 LUNs × 4 disks = 9 data + 3 parity nodes.
	g := RAID5Graph(3, 4)
	if g.Total != 12 || g.Data != 9 {
		t.Fatalf("graph shape: %v", g)
	}
	p, err := sim.FailureProfile(g, sim.ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 12; k++ {
		want := RAID5FailGivenK(3, 4, k)
		if got := p.FailFraction(k); !approx(got, want, 1e-12) {
			t.Errorf("k=%d: simulated %.15f, analytic %.15f", k, got, want)
		}
	}
}

func TestPaper96Schemes(t *testing.T) {
	schemes := Paper96Schemes()
	if len(schemes) != 4 {
		t.Fatalf("got %d schemes", len(schemes))
	}
	for _, s := range schemes {
		if s.Data+s.Parity != s.Drives {
			t.Errorf("%s: data %d + parity %d != drives %d", s.Name, s.Data, s.Parity, s.Drives)
		}
		if got := s.FailGivenK(0); got != 0 {
			t.Errorf("%s: P(fail|0) = %v", s.Name, got)
		}
		if got := s.FailGivenK(s.Drives); got != 1 {
			t.Errorf("%s: P(fail|all) = %v", s.Name, got)
		}
	}
}

// Property: P(fail|k) is nondecreasing in k and bounded in [0,1] for all
// schemes.
func TestQuickFailGivenKMonotone(t *testing.T) {
	f := func(groupSel, tolSel uint8) bool {
		groups := 2 + int(groupSel)%8
		perGroup := 2 + int(groupSel/8)%6
		tol := int(tolSel) % perGroup
		prev := 0.0
		for k := 0; k <= groups*perGroup; k++ {
			p := GroupToleranceFailGivenK(groups, perGroup, tol, k)
			if p < prev-1e-12 || p < 0 || p > 1+1e-12 {
				return false
			}
			prev = p
		}
		return prev == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRAID5GraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RAID5Graph with 1 disk per LUN did not panic")
		}
	}()
	RAID5Graph(2, 1)
}

func TestMirroredDeadPairsPMF(t *testing.T) {
	// The summand form of Equation (1): the PMF over dead-pair counts must
	// normalize and its j>=1 mass must equal the closed-form failure
	// probability.
	for _, n := range []int{4, 8, 48} {
		for k := 0; k <= 2*n; k++ {
			sum, failMass := 0.0, 0.0
			for j := 0; j <= n; j++ {
				p := MirroredDeadPairsPMF(n, k, j)
				if p < -1e-15 {
					t.Fatalf("negative PMF n=%d k=%d j=%d: %v", n, k, j, p)
				}
				sum += p
				if j >= 1 {
					failMass += p
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("PMF(n=%d, k=%d) sums to %v", n, k, sum)
			}
			if want := MirroredFailGivenK(n, k); math.Abs(failMass-want) > 1e-9 {
				t.Fatalf("n=%d k=%d: sum form %v vs closed form %v", n, k, failMass, want)
			}
		}
	}
}

func TestMirroredDeadPairsPMFOutOfRange(t *testing.T) {
	if MirroredDeadPairsPMF(4, 2, -1) != 0 || MirroredDeadPairsPMF(4, 2, 2) != 0 {
		t.Error("out-of-range j should be 0")
	}
	// j such that leftover singles exceed remaining pairs.
	if MirroredDeadPairsPMF(2, 4, 1) != 0 {
		t.Error("infeasible configuration should be 0")
	}
}
