package sim

import (
	"context"
	"testing"

	"tornado/internal/combin"
	"tornado/internal/obs"
)

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	old := Metrics()
	SetMetrics(reg)
	defer SetMetrics(old)

	g := ctxTestGraph(t)
	kr, err := ExhaustiveK(g, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCombinationsTested).Value(); got != kr.Tested {
		t.Errorf("%s = %d, want %d", MetricCombinationsTested, got, kr.Tested)
	}
	if got := reg.Counter(MetricFailuresFound).Value(); got != kr.FailureCount {
		t.Errorf("%s = %d, want %d", MetricFailuresFound, got, kr.FailureCount)
	}

	prop, err := SampleStreamCtx(context.Background(), g, 40, 500, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricMCTrials).Value(); got != prop.Trials {
		t.Errorf("%s = %d, want %d", MetricMCTrials, got, prop.Trials)
	}
	if got := reg.Counter(MetricMCFailures).Value(); got != prop.Hits {
		t.Errorf("%s = %d, want %d", MetricMCFailures, got, prop.Hits)
	}
	// SetMetrics(nil) must be a no-op, not a nil registry.
	SetMetrics(nil)
	if Metrics() != reg {
		t.Error("SetMetrics(nil) replaced the registry")
	}
}

func TestScanRangeMatchesExhaustive(t *testing.T) {
	// Scanning the rank space in arbitrary range splits must reproduce the
	// whole-space result — the invariant campaign sharding rests on.
	g := ctxTestGraph(t)
	const k = 2
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		t.Fatal("rank space overflow")
	}
	whole, err := ExhaustiveK(g, k, int(total), 4)
	if err != nil {
		t.Fatal(err)
	}
	var count, tested int64
	for _, rg := range combin.SplitRanges(total, 7) {
		rr, err := ScanRangeCtx(context.Background(), g, k, rg[0], rg[1], 16)
		if err != nil {
			t.Fatal(err)
		}
		count += rr.FailureCount
		tested += rr.Tested
	}
	if tested != whole.Tested || count != whole.FailureCount {
		t.Errorf("split scan: tested=%d fails=%d, whole: tested=%d fails=%d",
			tested, count, whole.Tested, whole.FailureCount)
	}
}

func TestScanRangeRejectsBadRange(t *testing.T) {
	g := ctxTestGraph(t)
	total, _ := combin.BinomialInt64(g.Total, 2)
	cases := [][2]int64{{-1, 5}, {0, total + 1}, {5, 4}}
	for _, c := range cases {
		if _, err := ScanRangeCtx(context.Background(), g, 2, c[0], c[1], 1); err == nil {
			t.Errorf("range %v accepted", c)
		}
	}
	if rr, err := ScanRangeCtx(context.Background(), g, 2, 5, 5, 1); err != nil || rr.Tested != 0 {
		t.Errorf("empty range: %+v, %v", rr, err)
	}
}
