package sim

import (
	"sync/atomic"

	"tornado/internal/obs"
)

// Metric names published by the simulation workers. Counters are flushed at
// combination-chunk boundaries (every cancelCheckInterval iterations), so a
// multi-hour exhaustive search or Monte Carlo profile is observable while it
// runs — scrape Metrics().Snapshot() or mount Metrics().Handler().
const (
	// MetricCombinationsTested counts erasure combinations examined by the
	// exhaustive worst-case scans.
	MetricCombinationsTested = "sim_combinations_tested"
	// MetricFailuresFound counts combinations that lost data during
	// exhaustive scans.
	MetricFailuresFound = "sim_failures_found"
	// MetricMCTrials counts Monte Carlo reconstruction trials drawn.
	MetricMCTrials = "sim_mc_trials"
	// MetricMCFailures counts Monte Carlo trials that lost data.
	MetricMCFailures = "sim_mc_failures"
)

// metricsReg holds the registry the workers publish to. A package-level
// default (rather than an option threaded through every call) keeps the
// hot-path signatures unchanged and gives CLIs one switch to flip.
var metricsReg atomic.Pointer[obs.Registry]

func init() { metricsReg.Store(obs.NewRegistry()) }

// Metrics returns the registry the simulation workers publish progress
// counters to.
func Metrics() *obs.Registry { return metricsReg.Load() }

// SetMetrics redirects the simulation progress counters to reg (e.g. a
// registry already exported over HTTP). A nil reg is ignored.
func SetMetrics(reg *obs.Registry) {
	if reg != nil {
		metricsReg.Store(reg)
	}
}
