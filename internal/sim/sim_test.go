package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"tornado/internal/combin"
	"tornado/internal/core"
	"tornado/internal/graph"
)

// mirrorGraph builds an n-pair (2n-node) mirrored system: data i is
// mirrored by check n+i.
func mirrorGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	r := b.AddLevel(0, n, n)
	g := b.Graph()
	for i := 0; i < n; i++ {
		g.SetNeighbors(r+i, []int{i})
	}
	g.Name = "mirror"
	return g
}

// mirrorTheory is Equation (1): the probability that k offline drives in an
// n-pair mirrored array lose data, 1 − C(n,k)·2^k / C(2n,k).
func mirrorTheory(nPairs, k int) float64 {
	if k > nPairs {
		return 1
	}
	return 1 - combin.Binomial(nPairs, k)*math.Pow(2, float64(k))/combin.Binomial(2*nPairs, k)
}

func TestWorstCaseMirror(t *testing.T) {
	g := mirrorGraph(8)
	res, err := WorstCase(g, WorstCaseOptions{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FirstFailure != 2 {
		t.Fatalf("mirror first failure = %d (found=%v), want 2", res.FirstFailure, res.Found)
	}
	k2 := res.PerK[1]
	if k2.K != 2 || k2.FailureCount != 8 {
		t.Errorf("k=2 failures = %d, want 8 (one per pair)", k2.FailureCount)
	}
	if want, _ := combin.BinomialInt64(16, 2); k2.Tested != want {
		t.Errorf("k=2 tested = %d, want %d", k2.Tested, want)
	}
	// Each failure must be a {data, mirror} pair.
	for _, f := range k2.Failures {
		if len(f) != 2 || f[1] != f[0]+8 {
			t.Errorf("failure set %v is not a mirror pair", f)
		}
	}
	// Search must stop at the first failing cardinality by default.
	if len(res.PerK) != 2 {
		t.Errorf("examined %d cardinalities, want 2", len(res.PerK))
	}
}

func TestWorstCaseKeepGoing(t *testing.T) {
	g := mirrorGraph(6)
	res, err := WorstCase(g, WorstCaseOptions{MaxK: 4, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 4 {
		t.Fatalf("KeepGoing examined %d cardinalities, want 4", len(res.PerK))
	}
	if res.FirstFailure != 2 {
		t.Errorf("FirstFailure = %d", res.FirstFailure)
	}
	// Exact counts at k=3: failing sets are those containing a dead pair:
	// C(12,3) − C(6,3)·2^3 = 220 − 160 = 60.
	if got := res.PerK[2].FailureCount; got != 60 {
		t.Errorf("k=3 failures = %d, want 60", got)
	}
}

func TestWorstCaseMaxFailuresCap(t *testing.T) {
	g := mirrorGraph(8)
	res, err := WorstCase(g, WorstCaseOptions{MaxK: 2, MaxFailures: 3})
	if err != nil {
		t.Fatal(err)
	}
	k2 := res.PerK[1]
	if len(k2.Failures) != 3 {
		t.Errorf("recorded %d failures, want cap 3", len(k2.Failures))
	}
	if k2.FailureCount != 8 {
		t.Errorf("count must stay exact under the cap: %d", k2.FailureCount)
	}
}

func TestExhaustiveKMatchesTheory(t *testing.T) {
	// The paper's simulator validation (§3): the mirrored system's failure
	// fractions must equal Equation (1). Exhaustive enumeration makes the
	// comparison exact.
	g := mirrorGraph(8)
	for k := 1; k <= 16; k++ {
		kr, err := ExhaustiveK(g, k, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(kr.FailureCount) / float64(kr.Tested)
		want := mirrorTheory(8, k)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d: exhaustive fraction %.15f, theory %.15f", k, got, want)
		}
	}
}

func TestExhaustiveKRangeErrors(t *testing.T) {
	g := mirrorGraph(4)
	if _, err := ExhaustiveK(g, 0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExhaustiveK(g, 9, 1, 1); err == nil {
		t.Error("k>total accepted")
	}
}

func TestFailureProfileExactMatchesTheory(t *testing.T) {
	g := mirrorGraph(8)
	p, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 16; k++ {
		if !p.Exact[k] {
			t.Fatalf("k=%d not exact", k)
		}
		if got, want := p.FailFraction(k), mirrorTheory(8, min(k, 16)); k < 16 && math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d: profile %.15f, theory %.15f", k, got, want)
		}
	}
	if p.FailFraction(16) != 1 {
		t.Errorf("FailFraction(total) = %v, want 1", p.FailFraction(16))
	}
}

func TestFailureProfileSamplingApproximatesTheory(t *testing.T) {
	g := mirrorGraph(8)
	p, err := FailureProfile(g, ProfileOptions{
		Trials:          40000,
		ExhaustiveLimit: 1, // force sampling everywhere
		Seed:            7,
		Workers:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8, 12} {
		got, want := p.FailFraction(k), mirrorTheory(8, k)
		// 40k trials: tolerance ≈ 4σ.
		tol := 4 * math.Sqrt(want*(1-want)/40000)
		if math.Abs(got-want) > tol+1e-9 {
			t.Errorf("k=%d: sampled %.5f, theory %.5f (tol %.5f)", k, got, want, tol)
		}
		if p.Exact[k] {
			t.Errorf("k=%d unexpectedly exact", k)
		}
	}
}

func TestProfileDeterministicSeed(t *testing.T) {
	g := mirrorGraph(6)
	opts := ProfileOptions{Trials: 5000, ExhaustiveLimit: 1, Seed: 42, Workers: 2}
	a, err := FailureProfile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FailureProfile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Fail {
		if a.Fail[k].Hits != b.Fail[k].Hits {
			t.Fatalf("k=%d: hits differ %d vs %d with same seed", k, a.Fail[k].Hits, b.Fail[k].Hits)
		}
	}
}

func TestAvgNodesToReconstructMirror(t *testing.T) {
	g := mirrorGraph(8)
	p, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// E[T] = Σ_m P(fail with m online) computed from the exact theory.
	want := 0.0
	for m := 0; m < 16; m++ {
		want += mirrorTheory(8, 16-m)
	}
	got := p.AvgNodesToReconstruct()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgNodesToReconstruct = %v, want %v", got, want)
	}
	if r := p.AvgToReconstructRatio(); math.Abs(r-got/8) > 1e-12 {
		t.Errorf("ratio = %v", r)
	}
}

func TestNodesForSuccessProbability(t *testing.T) {
	g := mirrorGraph(8)
	p, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := p.NodesForSuccessProbability(0.5)
	// Verify directly against theory: success(m) = 1 - theory(16-m).
	for x := 0; x <= 16; x++ {
		success := 1 - mirrorTheory(8, 16-x)
		if x < m && success >= 0.5 {
			t.Errorf("m=%d claimed minimal but %d already succeeds at %.3f", m, x, success)
		}
	}
	if success := 1 - mirrorTheory(8, 16-m); success < 0.5 {
		t.Errorf("m=%d has success %.3f < 0.5", m, success)
	}
	if o := p.Overhead(); math.Abs(o-float64(m)/8) > 1e-12 {
		t.Errorf("Overhead = %v", o)
	}
}

func TestFirstObservedFailure(t *testing.T) {
	g := mirrorGraph(8)
	p, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FirstObservedFailure(); got != 2 {
		t.Errorf("FirstObservedFailure = %d, want 2", got)
	}
}

func TestScreenedTornadoToleratesTwoLosses(t *testing.T) {
	// Defect screening guarantees no closed pairs, and degree >= 2 covers
	// every single+check combination, so a screened graph's first failure
	// is at least 3 (paper §4.2: screening raised first failure to 4).
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(17, 1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorstCase(g, WorstCaseOptions{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && res.FirstFailure < 3 {
		t.Errorf("screened tornado first failure = %d, want >= 3", res.FirstFailure)
	}
	t.Logf("worst case up to k=3: found=%v first=%d tested=%d", res.Found, res.FirstFailure, res.Tested)
}

func TestProfilePartialRangeMonotoneExtension(t *testing.T) {
	// A profile measured only up to MaxK must carry its last (≈1) value
	// forward so AvgNodesToReconstruct is not underestimated.
	g := mirrorGraph(8)
	p, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1, MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	full, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.FailFraction(14), full.FailFraction(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("extension at k=14 = %v, want carried %v", got, want)
	}
	if math.Abs(p.AvgNodesToReconstruct()-full.AvgNodesToReconstruct()) > 1.0 {
		t.Errorf("partial avg %v vs full %v", p.AvgNodesToReconstruct(), full.AvgNodesToReconstruct())
	}
}

func TestProfileFailFractionBounds(t *testing.T) {
	g := mirrorGraph(4)
	p, err := FailureProfile(g, ProfileOptions{ExhaustiveLimit: 1 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.FailFraction(-1) != 0 {
		t.Error("negative k should report 0")
	}
	if p.FailFraction(8) != 1 || p.FailFraction(99) != 1 {
		t.Error("k >= total should report 1")
	}
	if p.FailFraction(0) != 0 {
		t.Error("k=0 should report 0")
	}
}
