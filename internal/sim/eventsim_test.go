package sim

import (
	"math"
	"testing"

	"tornado/internal/raid"
	"tornado/internal/reliability"
)

// TestLifetimeMatchesMarkovNoRepair: without repair the profile-based
// Markov chain is exact for exchangeable systems (the survival product
// telescopes to 1−F(k)), so the event simulation must converge to it.
func TestLifetimeMatchesMarkovNoRepair(t *testing.T) {
	const pairs, lambda = 4, 0.5
	g := mirrorGraph(pairs)
	want, err := reliability.MTTDL(2*pairs, lambda, 0, 0, func(k int) float64 {
		return raid.MirroredFailGivenK(pairs, k)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateLifetime(g, LifetimeOptions{
		Lambda: lambda, Runs: 4000, Seed: 1, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated != 0 {
		t.Fatalf("%d truncated runs at tiny MTTDL", res.Truncated)
	}
	if rel := math.Abs(res.MeanYears-want) / want; rel > 0.10 {
		t.Errorf("simulated MTTDL %v vs Markov %v (rel %v)", res.MeanYears, want, rel)
	}
}

// TestLifetimeRepairApproximatesMarkov: with repair the count-based chain
// is an approximation (survivorship bias in the conditional configuration),
// so agreement is checked loosely.
func TestLifetimeRepairApproximatesMarkov(t *testing.T) {
	const pairs, lambda, mu = 4, 0.5, 5.0
	g := mirrorGraph(pairs)
	want, err := reliability.MTTDL(2*pairs, lambda, mu, 1, func(k int) float64 {
		return raid.MirroredFailGivenK(pairs, k)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateLifetime(g, LifetimeOptions{
		Lambda: lambda, Mu: mu, Repairmen: 1, Runs: 2500, Seed: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.MeanYears-want) / want; rel > 0.35 {
		t.Errorf("simulated MTTDL %v vs Markov %v (rel %v)", res.MeanYears, want, rel)
	}
	t.Logf("with repair: simulated %v vs Markov %v", res.MeanYears, want)
}

func TestLifetimeRepairExtendsLife(t *testing.T) {
	g := mirrorGraph(6)
	none, err := SimulateLifetime(g, LifetimeOptions{Lambda: 0.4, Runs: 800, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	crew, err := SimulateLifetime(g, LifetimeOptions{
		Lambda: 0.4, Mu: 8, Repairmen: 2, Runs: 800, Seed: 3, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if crew.MeanYears <= none.MeanYears {
		t.Errorf("repair did not extend lifetime: %v vs %v", crew.MeanYears, none.MeanYears)
	}
}

func TestLifetimeTornadoBeatsMirrorUnderSimulation(t *testing.T) {
	g := tornadoForAnnual(t)
	m := mirrorGraph(48)
	opts := LifetimeOptions{Lambda: 0.3, Mu: 6, Repairmen: 2, Runs: 250, Seed: 4, Workers: 2, MaxYears: 1e4}
	tr, err := SimulateLifetime(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := SimulateLifetime(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lifetimes: tornado %v vs mirrored %v", tr.MeanYears, mr.MeanYears)
	if tr.MeanYears <= mr.MeanYears {
		t.Errorf("tornado lifetime %v <= mirrored %v", tr.MeanYears, mr.MeanYears)
	}
}

func TestLifetimeValidation(t *testing.T) {
	g := mirrorGraph(2)
	if _, err := SimulateLifetime(g, LifetimeOptions{Lambda: 0}); err == nil {
		t.Error("lambda 0 accepted")
	}
	if _, err := SimulateLifetime(g, LifetimeOptions{Lambda: 1, Mu: -1}); err == nil {
		t.Error("negative mu accepted")
	}
}

func TestLifetimeTruncation(t *testing.T) {
	// A tiny failure rate with aggressive repair: runs hit MaxYears.
	g := mirrorGraph(4)
	res, err := SimulateLifetime(g, LifetimeOptions{
		Lambda: 0.001, Mu: 1000, Repairmen: 4, Runs: 20, Seed: 5, MaxYears: 10, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated == 0 {
		t.Error("expected truncated runs")
	}
	if res.MeanYears > 10 {
		t.Errorf("mean %v exceeds MaxYears", res.MeanYears)
	}
}
