package sim

import (
	"context"
	"errors"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"tornado/internal/combin"
	"tornado/internal/core"
	"tornado/internal/graph"
)

func ctxTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(2006, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// goroutineSettles waits for the goroutine count to return to (about) the
// pre-test baseline, retrying because worker exit is asynchronous.
func goroutineSettles(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", n, baseline)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorstCaseCtxCancellation is the issue's acceptance criterion:
// cancelling a large exhaustive search returns promptly — within one
// combination-chunk boundary — with ctx.Err(), and the search workers all
// exit (no goroutine leak).
func TestWorstCaseCtxCancellation(t *testing.T) {
	g := ctxTestGraph(t)
	baseline := runtime.NumGoroutine()

	// MaxK 6 over 96 nodes is ~1e9 combinations: minutes of work, so a
	// prompt return can only come from the cancellation path.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := WorstCaseCtx(ctx, g, WorstCaseOptions{MaxK: 6, KeepGoing: true})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the workers spin up and descend
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled worst-case search did not return promptly")
	}
	goroutineSettles(t, baseline+1) // +1: the finished helper goroutine may linger an instant
}

func TestWorstCaseCtxPreCancelled(t *testing.T) {
	g := ctxTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WorstCaseCtx(ctx, g, WorstCaseOptions{MaxK: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestProfileCtxCancellation(t *testing.T) {
	g := ctxTestGraph(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Large trial count so sampling dominates and cancellation hits the
		// Monte Carlo worker loop.
		_, err := FailureProfileCtx(ctx, g, ProfileOptions{Trials: 50_000_000, ExhaustiveLimit: 1})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled profile did not return promptly")
	}
	goroutineSettles(t, baseline+1)
}

func TestOverheadCtxCancellation(t *testing.T) {
	g := ctxTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := OverheadCtx(ctx, g, OverheadOptions{Trials: 50_000_000})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled overhead measurement did not return promptly")
	}
}

// TestKernelScanCancellationLeaksNothing cancels an exhaustive kernel scan
// mid-flight and checks that every scan worker (each owning a private
// Kernel and its scratch arrays) exits — no goroutine is left holding a
// kernel — and that a fresh scan afterwards produces the full, correct
// result, i.e. the abandoned scan left no shared state behind.
func TestKernelScanCancellationLeaksNothing(t *testing.T) {
	g := ctxTestGraph(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// C(96,5) ≈ 6e7 combinations: enough work that a prompt return can
		// only come from the cancellation path inside ScanRangeCtx.
		_, err := ExhaustiveKCtx(ctx, g, 5, DefaultMaxFailures, 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled kernel scan did not return promptly")
	}
	goroutineSettles(t, baseline+1)

	// The interrupted scan must not affect a subsequent one: k=2 completes
	// fast and its counts are ground truth for a screened Tornado graph.
	kr, err := ExhaustiveKCtx(context.Background(), g, 2, DefaultMaxFailures, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := combin.BinomialInt64(g.Total, 2); kr.Tested != want {
		t.Errorf("post-cancel scan tested %d combinations, want %d", kr.Tested, want)
	}
}

func TestBackgroundWrappersStillWork(t *testing.T) {
	g := ctxTestGraph(t)
	wc, err := WorstCase(g, WorstCaseOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	wcc, err := WorstCaseCtx(context.Background(), g, WorstCaseOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wc.FirstFailure != wcc.FirstFailure || wc.Found != wcc.Found {
		t.Errorf("wrapper (%+v) and ctx variant (%+v) disagree", wc, wcc)
	}
}
