package sim

import (
	"context"
	"errors"
	"reflect"
	"slices"
	"testing"
)

// TestExhaustiveKFailuresWorkerIndependent is the regression test for the
// scheduling-dependent failure witnesses: with more failing sets than the
// cap, every worker count must report the identical KResult — the
// lexicographically smallest maxFailures failing sets, ascending.
func TestExhaustiveKFailuresWorkerIndependent(t *testing.T) {
	g := mirrorGraph(8) // k=3: every set containing a mirrored pair fails
	const k, maxFailures = 3, 10

	base, err := ExhaustiveK(g, k, maxFailures, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.FailureCount <= maxFailures {
		t.Fatalf("fixture too tame: %d failures, need > %d for the cap to bite", base.FailureCount, maxFailures)
	}
	if len(base.Failures) != maxFailures {
		t.Fatalf("recorded %d failures, want the full cap %d", len(base.Failures), maxFailures)
	}
	for _, workers := range []int{2, 3, 8} {
		kr, err := ExhaustiveK(g, k, maxFailures, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kr, base) {
			t.Errorf("workers=%d: KResult differs from workers=1:\n got %+v\nwant %+v", workers, kr, base)
		}
	}

	// The recorded sets are exactly the lexicographic head of the full
	// failure population.
	all, err := ExhaustiveK(g, k, int(base.FailureCount), 4)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all.Failures)) != base.FailureCount {
		t.Fatalf("uncapped scan recorded %d of %d failures", len(all.Failures), base.FailureCount)
	}
	if !slices.IsSortedFunc(all.Failures, slices.Compare) {
		t.Fatal("uncapped failures not sorted")
	}
	if !reflect.DeepEqual(base.Failures, all.Failures[:maxFailures]) {
		t.Errorf("capped failures are not the lex-smallest prefix:\n got %v\nwant %v", base.Failures, all.Failures[:maxFailures])
	}
}

// TestExhaustiveKCtxPropagatesWorkerError: a canceled context surfaces as
// the workers' error instead of a partial result reported as success.
func TestExhaustiveKCtxPropagatesWorkerError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExhaustiveKCtx(ctx, mirrorGraph(8), 3, 4, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("ExhaustiveKCtx(canceled) = %v, want context.Canceled", err)
	}
}

func TestRecordFailure(t *testing.T) {
	var fs [][]int
	for _, s := range [][]int{{5, 6}, {1, 2}, {3, 4}, {0, 9}} {
		fs = recordFailure(fs, s, 3)
	}
	want := [][]int{{0, 9}, {1, 2}, {3, 4}}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("recordFailure kept %v, want %v", fs, want)
	}
	// A set larger than the current maximum is ignored once full.
	if fs2 := recordFailure(fs, []int{7, 8}, 3); !reflect.DeepEqual(fs2, want) {
		t.Errorf("full list admitted a larger set: %v", fs2)
	}
	if fs2 := recordFailure(fs, []int{1, 0}, 0); len(fs2) != len(fs) {
		t.Errorf("maxFailures=0 recorded a set")
	}
}
