package sim

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"tornado/internal/combin"
	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

func unscreened96(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := core.GenerateUnscreened(core.DefaultParams(), rand.New(rand.NewPCG(seed, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestClassifyCertificateSound is the differential battery for the
// structural proofs: on unscreened 96-node graphs (which carry real
// defects), every pattern the classifier certifies must be recoverable
// per the scalar peeling kernel, and every kernel-batched pattern's
// sliced verdict must agree with the scalar kernel. This is the soundness
// property the whole screening rate rests on.
func TestClassifyCertificateSound(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := unscreened96(t, seed)
		c := decode.NewCSR(g)
		sp := NewStratifiedSampler(c)
		ref := decode.NewKernel(c)
		rng := rand.New(rand.NewPCG(seed+100, 0))
		for k := 2; k <= 6; k++ {
			sp.idx = make([]int, k)
			certified, evaluated := 0, 0
			for trial := 0; trial < 4000; trial++ {
				combin.RandomSubset(sp.idx, g.Total, rng, sp.scratch)
				strat, ok := sp.classify(k)
				if strat < 1 || strat > k {
					t.Fatalf("seed %d k=%d: stratum %d out of range", seed, k, strat)
				}
				want := ref.Recoverable(sp.idx)
				if ok {
					certified++
					if !want {
						t.Fatalf("seed %d k=%d: certificate claimed recoverable for failing pattern %v",
							seed, k, sp.idx)
					}
				} else {
					evaluated++
				}
			}
			if certified == 0 {
				t.Errorf("seed %d k=%d: certificate never fired over 4000 trials", seed, k)
			}
			_ = evaluated
		}
	}
}

// TestSampledMatchesScalarVerdicts runs full blocks and cross-checks the
// pooled tally against a scalar-kernel replay of the identical RNG
// stream.
func TestSampledMatchesScalarVerdicts(t *testing.T) {
	g := unscreened96(t, 7)
	c := decode.NewCSR(g)
	const k, trials = 5, 20000
	sp := NewStratifiedSampler(c)
	blk, err := sp.SampleBlock(context.Background(), k, trials, 42, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the stream with the scalar kernel.
	rng := rand.New(rand.NewPCG(42^sampledSeedDomain, uint64(k)<<32|3))
	ref := decode.NewKernel(c)
	idx := make([]int, k)
	scratch := make(map[int]bool, k)
	var hits int64
	for i := 0; i < trials; i++ {
		combin.RandomSubset(idx, g.Total, rng, scratch)
		if idx[0] < g.Data && !ref.Recoverable(idx) {
			hits++
		}
	}
	tally := blk.Tally()
	if tally.Trials != trials {
		t.Fatalf("block tallied %d trials, want %d", tally.Trials, trials)
	}
	if tally.Hits != hits {
		t.Fatalf("block found %d failures, scalar replay found %d", tally.Hits, hits)
	}
	for _, w := range blk.Witnesses {
		if ref.Recoverable(w) {
			t.Fatalf("witness %v is recoverable", w)
		}
	}
	if blk.Screened == 0 {
		t.Error("screening never resolved a pattern")
	}
}

// TestSampledWorkerCountIndependence: the acceptance bit — same seed,
// same result, any worker count.
func TestSampledWorkerCountIndependence(t *testing.T) {
	g := unscreened96(t, 11)
	opts := SampledOptions{Seed: 9, MaxTrials: 40000, BlockSize: 4096, Epsilon: -1, Workers: 1}
	want, err := SampleStratified(g, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7} {
		opts.Workers = w
		got, err := SampleStratified(g, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: result differs from workers=1:\n%+v\nvs\n%+v", w, got, want)
		}
	}
	if want.Tally.Trials != 40000 {
		t.Fatalf("epsilon disabled but only %d trials run", want.Tally.Trials)
	}
}

// TestSampledStoppingRule pins the planned-precision contract: the
// sampler stops at the first round boundary whose pooled half-width
// reaches epsilon, and never earlier than the schedule allows.
func TestSampledStoppingRule(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(3, 0)))
	if err != nil {
		t.Fatal(err)
	}
	// Screened graph at k=2: failures are essentially absent, so the
	// zero-hit half-width math governs. One 4096-trial round gives
	// hw ≈ 1.92/4100 ≈ 4.7e-4; epsilon 1e-3 must stop after round one.
	res, err := SampleStratified(g, 2, SampledOptions{
		Seed: 5, MaxTrials: 1 << 20, BlockSize: 4096, Epsilon: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 || res.Tally.Trials != 4096 {
		t.Fatalf("stopping rule fired after %d rounds / %d trials, want 1 round / 4096 trials",
			len(res.Rounds), res.Tally.Trials)
	}
	if hw := res.HalfWidth(); hw > 1e-3 {
		t.Fatalf("reported half-width %v exceeds the target", hw)
	}
	// The trajectory is recorded for every round and is nonincreasing on a
	// zero-hit run.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].HalfWidth > res.Rounds[i-1].HalfWidth {
			t.Fatal("half-width widened across rounds on a zero-hit run")
		}
	}
}

// TestSampledPlanSchedule pins the doubling schedule and its exact tiling
// of the trial budget.
func TestSampledPlanSchedule(t *testing.T) {
	nBlocks, rounds := SampledPlan(100000, 4096)
	if nBlocks != 25 {
		t.Fatalf("nBlocks = %d, want 25", nBlocks)
	}
	want := [][2]int64{{0, 1}, {1, 3}, {3, 7}, {7, 15}, {15, 25}}
	if !reflect.DeepEqual(rounds, want) {
		t.Fatalf("rounds = %v, want %v", rounds, want)
	}
	var trials int64
	for b := int64(0); b < nBlocks; b++ {
		n := SampledBlockTrials(100000, 4096, b)
		if n <= 0 || n > 4096 {
			t.Fatalf("block %d has %d trials", b, n)
		}
		trials += n
	}
	if trials != 100000 {
		t.Fatalf("blocks tile %d trials, want 100000", trials)
	}
	if n, r := SampledPlan(0, 4096); n != 0 || r != nil {
		t.Fatal("empty budget must plan no blocks")
	}
}

// TestProfileWorkerCountIndependence is the sampleK regression test: the
// same seed must produce the identical profile no matter the worker
// count, including when trials % workers != 0.
func TestProfileWorkerCountIndependence(t *testing.T) {
	g := unscreened96(t, 2)
	base := ProfileOptions{Trials: 100003, MinK: 4, MaxK: 5, Seed: 77, Workers: 1, ExhaustiveLimit: 1}
	want, err := FailureProfile(g, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5, 8} {
		opts := base
		opts.Workers = w
		got, err := FailureProfile(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for k := base.MinK; k <= base.MaxK; k++ {
			if got.Fail[k] != want.Fail[k] {
				t.Fatalf("workers=%d k=%d: tally %v, want %v (worker-count dependence)",
					w, k, got.Fail[k], want.Fail[k])
			}
		}
	}
}

// TestSampledArchivalScale is the tentpole smoke: a sampled certification
// at n=10,000 and k=5 reaches the 1e-4 half-width target from a cold
// start in seconds, with screening resolving nearly every pattern.
func TestSampledArchivalScale(t *testing.T) {
	p := core.DefaultParams()
	p.TotalNodes = 10000
	g, _, err := core.Generate(p, rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SampleStratified(g, 5, SampledOptions{Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if hw := res.HalfWidth(); hw > 1e-4 {
		t.Fatalf("half-width %v did not reach the 1e-4 default target (trials %d)", hw, res.Tally.Trials)
	}
	if res.ScreenRate() < 0.9 {
		t.Errorf("screening resolved only %.1f%% of patterns at n=10k", 100*res.ScreenRate())
	}
	if res.Tally.Hits > 0 && len(res.Witnesses) == 0 {
		t.Error("failures tallied but no witness recorded")
	}
}
