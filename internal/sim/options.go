package sim

import "runtime"

// Effective defaults for the package's option types, exported so callers,
// CLIs, and docs can reference the real values instead of restating them.
const (
	// DefaultMaxK is the largest erasure cardinality WorstCase examines
	// (the paper searched C(96,1) through C(96,6); 5 keeps the default run
	// interactive).
	DefaultMaxK = 5
	// DefaultMaxFailures caps the failing sets recorded verbatim per
	// cardinality (the failure count stays exact regardless).
	DefaultMaxFailures = 256
	// DefaultProfileTrials is the Monte Carlo sample count per
	// offline-node count in FailureProfile. The paper used 10–34 million
	// per point; 20,000 preserves the curve shape on a laptop.
	DefaultProfileTrials = 20000
	// DefaultExhaustiveLimit switches a profile point to exact enumeration
	// when C(total, k) is at most this bound.
	DefaultExhaustiveLimit = 100000
	// DefaultOverheadTrials is the number of random retrieval orders
	// sampled by Overhead.
	DefaultOverheadTrials = 10000
	// DefaultLifetimeRuns is the number of independent system lifetimes
	// SimulateLifetime draws.
	DefaultLifetimeRuns = 200
	// DefaultLifetimeMaxYears truncates lifetime runs that never lose
	// data.
	DefaultLifetimeMaxYears = 1e6
)

// cancelCheckInterval is the combination-chunk size between context checks
// in worker loops: cancellation is honored within one chunk of work, so a
// canceled WorstCase/Profile/Overhead returns promptly without paying a
// per-combination atomic load.
const cancelCheckInterval = 8192

// The package's option idiom: every Options type has a normalize() method
// (value receiver, returns the normalized copy) that replaces zero fields
// with the exported Default* constants; exported entry points call it once
// on entry and never mutate the caller's value. New option types should
// follow the same shape instead of hand-rolling setDefaults variants.

// defaultWorkers resolves a worker-count option.
func defaultWorkers(v int) int {
	if v > 0 {
		return v
	}
	return runtime.GOMAXPROCS(0)
}

// intOr returns v when positive, otherwise def.
func intOr(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// int64Or returns v when positive, otherwise def.
func int64Or(v, def int64) int64 {
	if v > 0 {
		return v
	}
	return def
}

// floatOr returns v when positive, otherwise def.
func floatOr(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}
