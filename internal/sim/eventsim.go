package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"tornado/internal/decode"
	"tornado/internal/graph"
)

// LifetimeOptions tunes the discrete-event lifetime simulation.
type LifetimeOptions struct {
	// Lambda is the per-device failure rate (per year).
	Lambda float64
	// Mu is the per-repairman rebuild rate (per year); a rebuild restores
	// one failed device completely.
	Mu float64
	// Repairmen bounds concurrent rebuilds; 0 disables repair.
	Repairmen int
	// Runs is the number of independent system lifetimes simulated.
	Runs int
	// MaxYears truncates runs that never lose data (their lifetime counts
	// as MaxYears, biasing the estimate low — keep it far above the
	// expected MTTDL or treat the result as a lower bound). Default 1e6.
	MaxYears float64
	// Seed drives all sampling.
	Seed uint64
	// Workers bounds goroutines.
	Workers int
}

func (o LifetimeOptions) normalize() LifetimeOptions {
	o.Runs = intOr(o.Runs, DefaultLifetimeRuns)
	o.MaxYears = floatOr(o.MaxYears, DefaultLifetimeMaxYears)
	o.Workers = defaultWorkers(o.Workers)
	return o
}

// LifetimeResult summarizes simulated times to data loss.
type LifetimeResult struct {
	Runs      int
	Truncated int // runs that hit MaxYears without losing data
	MeanYears float64
}

// SimulateLifetime is the ground-truth counterpart of the Markov MTTDL
// model (reliability.MTTDL): a discrete-event simulation of the actual
// graph under exponential per-device failures and a bounded repair crew.
// Unlike the Markov chain — which collapses the failed-device identities
// into a count and the measured profile — the event simulation tracks
// exactly which devices are down and asks the real decoder whether data
// survived, so it validates both the chain and the profile at once.
func SimulateLifetime(g *graph.Graph, opts LifetimeOptions) (LifetimeResult, error) {
	return SimulateLifetimeCtx(context.Background(), g, opts)
}

// SimulateLifetimeCtx is SimulateLifetime with cancellation, checked
// between runs in each worker.
func SimulateLifetimeCtx(ctx context.Context, g *graph.Graph, opts LifetimeOptions) (LifetimeResult, error) {
	opts = opts.normalize()
	if opts.Lambda <= 0 {
		return LifetimeResult{}, fmt.Errorf("sim: lambda must be positive")
	}
	if opts.Mu < 0 || opts.Repairmen < 0 {
		return LifetimeResult{}, fmt.Errorf("sim: negative repair parameters")
	}

	per := opts.Runs / opts.Workers
	rem := opts.Runs % opts.Workers
	var mu sync.Mutex
	res := LifetimeResult{Runs: opts.Runs}
	total := 0.0
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		n := per
		if w < rem {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opts.Seed, 0x11FE<<16|uint64(worker)))
			d := decode.New(g)
			localTotal := 0.0
			localTrunc := 0
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					return
				}
				t, truncated := oneLifetime(g, d, opts, rng)
				localTotal += t
				if truncated {
					localTrunc++
				}
			}
			mu.Lock()
			total += localTotal
			res.Truncated += localTrunc
			mu.Unlock()
		}(w, n)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.MeanYears = total / float64(opts.Runs)
	return res, nil
}

// oneLifetime runs a single system lifetime: exponential failure clocks on
// live devices, exponential rebuild clocks on up to Repairmen failed
// devices, stepping event by event until the surviving set cannot
// reconstruct the data.
func oneLifetime(g *graph.Graph, d *decode.Decoder, opts LifetimeOptions, rng *rand.Rand) (float64, bool) {
	failed := make([]int, 0, g.Total)
	now := 0.0
	for now < opts.MaxYears {
		up := g.Total - len(failed)
		failRate := float64(up) * opts.Lambda
		repairRate := float64(min(len(failed), opts.Repairmen)) * opts.Mu
		totalRate := failRate + repairRate
		if totalRate <= 0 {
			return opts.MaxYears, true // nothing can happen
		}
		now += expRand(rng, totalRate)
		if now >= opts.MaxYears {
			return opts.MaxYears, true
		}
		if rng.Float64()*totalRate < failRate {
			// A uniformly random live device fails.
			v := randomLive(g.Total, failed, rng)
			failed = append(failed, v)
			if !d.Recoverable(failed) {
				return now, false
			}
		} else {
			// A uniformly random under-repair device comes back.
			i := rng.IntN(min(len(failed), opts.Repairmen))
			failed[i] = failed[len(failed)-1]
			failed = failed[:len(failed)-1]
		}
	}
	return opts.MaxYears, true
}

// expRand draws an exponential variate with the given rate.
func expRand(rng *rand.Rand, rate float64) float64 {
	return -math.Log(1-rng.Float64()) / rate
}

// randomLive picks a uniformly random device not in failed.
func randomLive(total int, failed []int, rng *rand.Rand) int {
	for {
		v := rng.IntN(total)
		live := true
		for _, f := range failed {
			if f == v {
				live = false
				break
			}
		}
		if live {
			return v
		}
	}
}
