package sim

import (
	"context"
	"fmt"
	"math/bits"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

// This file drives decode.SlicedKernel from the exhaustive scans: 64
// erasure patterns per machine word, in exactly the revolving-door rank
// order of the scalar path, so results are bit-identical and every
// downstream guarantee (campaign sharding, cached shards, lex-smallest
// witness merging, worker-count independence) carries over unchanged.
//
// The word layout falls out of Algorithm R itself (Knuth 7.2.1.3): the
// enumeration's "easy step" moves only the smallest element idx[0] —
// ascending toward idx[1] when k is odd, descending toward 0 when k is
// even — and the conditions are closed-form, so a maximal run of
// consecutive ranks sharing the suffix idx[1:] is computable from the
// current state without stepping. Runs average C(n,k)/C(n-1,k-1) = n/k
// patterns (≈19 for n=96, k=5), so the scan pays one GrayNext and one
// two-node suffix delta per run instead of per pattern, then lays the
// run's sweeping element c0 across word lanes.
//
// Most lanes never reach the peeling fixpoint. The scanner maintains,
// incrementally across suffix deltas, the rule-1 certificate structure
// of the shared suffix S = idx[1:] (m, zeroCheck, oneCheck, goodData
// below), from which a per-run node mask of provably recoverable
// sweeping elements follows in a handful of word operations
// (runCertificate); each word of the run then extracts its window of
// that mask in O(1). Only the lanes the certificate cannot prove are
// enqueued — with their full patterns — into a 64-lane SlicedKernel
// batch that flushes when full, so the expensive word-wide fixpoint
// always runs at full occupancy. The pruning soundness argument is
// spelled out at runCertificate and in DESIGN.md "Decoder kernels".

// slicedScanner is the per-range state of a sliced scan. Not safe for
// concurrent use; ExhaustiveKKernelCtx builds one per worker.
type slicedScanner struct {
	csr  *decode.CSR
	data int32

	// Incremental certificate structure of the shared suffix S (all node
	// bitmasks are Words-long, over node IDs):
	//
	//   sufMask   — members of S
	//   m[q]      — |S ∩ L(q)| for each check q
	//   zeroCheck — checks q ∉ S with m[q] == 0: erasing exactly one of
	//               their left neighbors leaves them rule-1 rescuers
	//   oneCheck  — checks q ∉ S with m[q] == 1: each is a valid rule-1
	//               rescuer of its single missing neighbor right now
	m         []int32
	sufMask   []uint64
	zeroCheck []uint64
	oneCheck  []uint64

	// relevant[q] marks checks with at least one data left-neighbor —
	// the only checks whose m/zeroCheck/oneCheck state the certificate
	// ever consults. Suffix updates skip irrelevant parents wholesale
	// (their counters go stale, but stale state that is never read is
	// free), and only relevant checks ever hold zeroCheck/oneCheck
	// bits. dataKids[q] is L(q) restricted to data nodes.
	relevant []bool
	dataKids [][]int32

	// goodRun marks sweeping elements provably recoverable alongside a
	// certified suffix: check bits always set (an erased check never
	// loses data by itself), and a data bit when gcount > 0 — some
	// parent is a zeroCheck (rescues c at round 1) or a oneCheck
	// (missing {v_p, c} at round 1; v_p is rescued by its own disjoint
	// oneCheck rescuer in every lane outside badNodes, so the parent
	// fires at round 2). gcount[c] counts c's parents in zeroCheck ∪
	// oneCheck; membership there only flips when m crosses 1↔2 or the
	// check itself enters/leaves S — never on the busy 0↔1 boundary —
	// so the incremental cascades stay rare.
	gcount   []int32
	goodRun  []uint64
	badNodes []uint64 // per-run scratch: sweeping elements that break the certificate

	// runCertificate scratch: per-suffix-member masks of certificate-
	// breaking sweeping elements (flat, stride Words), and which data
	// members had no round-1 rescuer and needed the two-round fallback.
	bv        []uint64
	deficient []bool

	cur     []int // current suffix, ascending (len k-1)
	pattern []int // scratch full pattern (len k)

	// Batch of unproven lanes, accumulated across runs so the word-wide
	// fixpoint always evaluates at full occupancy. batchPat[slot] holds
	// the lane's full pattern for failure recording at flush time.
	sk       *decode.SlicedKernel
	batchPat [][]int
	batchLen int

	// onVerdict, when set, observes every pattern's rank and verdict —
	// including certificate-pruned lanes that never reach the fixpoint —
	// so tests can re-check pruning soundness against the scalar kernel.
	// The idx slice is reused; don't retain. Forces per-word batch
	// flushes so verdicts arrive in rank order.
	onVerdict func(rank int64, idx []int, recoverable bool)
}

func newSlicedScanner(g *graph.Graph, k int, hook func(int64, []int, bool)) *slicedScanner {
	csr := decode.NewCSR(g)
	s := &slicedScanner{
		csr:       csr,
		data:      csr.Data,
		m:         make([]int32, g.Total),
		sufMask:   make([]uint64, csr.Words),
		zeroCheck: make([]uint64, csr.Words),
		oneCheck:  make([]uint64, csr.Words),
		gcount:    make([]int32, csr.Data),
		goodRun:   make([]uint64, csr.Words),
		badNodes:  make([]uint64, csr.Words),
		bv:        make([]uint64, max(k-1, 1)*csr.Words),
		deficient: make([]bool, max(k-1, 1)),
		cur:       make([]int, k-1),
		pattern:   make([]int, k),
		sk:        decode.NewSlicedKernel(csr),
		batchPat:  make([][]int, decode.Lanes),
		relevant:  make([]bool, g.Total),
		dataKids:  make([][]int32, g.Total),
		onVerdict: hook,
	}
	for i := range s.batchPat {
		s.batchPat[i] = make([]int, k)
	}
	// Empty suffix: every relevant check is a zeroCheck, every check
	// bit of goodRun is permanently good.
	for q := csr.Data; q < int32(g.Total); q++ {
		s.goodRun[q>>6] |= 1 << (uint(q) & 63)
		var kids []int32
		for _, l := range csr.LeftNeighbors(q) {
			if l < csr.Data {
				kids = append(kids, l)
			}
		}
		s.dataKids[q] = kids
		if len(kids) > 0 {
			s.relevant[q] = true
			s.zeroCheck[q>>6] |= 1 << (uint(q) & 63)
			s.goodInc(q)
		}
	}
	return s
}

// goodInc credits check q (entering zeroCheck ∪ oneCheck) to its data
// children.
func (s *slicedScanner) goodInc(q int32) {
	for _, l := range s.dataKids[q] {
		s.gcount[l]++
		if s.gcount[l] == 1 {
			s.goodRun[l>>6] |= 1 << (uint(l) & 63)
		}
	}
}

// goodDec removes check q (leaving zeroCheck ∪ oneCheck) from its data
// children.
func (s *slicedScanner) goodDec(q int32) {
	for _, l := range s.dataKids[q] {
		s.gcount[l]--
		if s.gcount[l] == 0 {
			s.goodRun[l>>6] &^= 1 << (uint(l) & 63)
		}
	}
}

// eraseSuffix adds v to the shared suffix, keeping every certificate
// mask exact. Erased checks are excluded from zeroCheck/oneCheck; their
// m counts keep accumulating so restoreSuffix can reclassify them.
func (s *slicedScanner) eraseSuffix(v int) {
	bit := uint64(1) << (uint(v) & 63)
	s.sufMask[v>>6] |= bit
	if int32(v) >= s.data {
		if (s.zeroCheck[v>>6]|s.oneCheck[v>>6])&bit != 0 {
			s.goodDec(int32(v))
		}
		s.zeroCheck[v>>6] &^= bit
		s.oneCheck[v>>6] &^= bit
	}
	for _, p := range s.csr.Parents(int32(v)) {
		if !s.relevant[p] {
			continue
		}
		old := s.m[p]
		s.m[p] = old + 1
		if s.sufMask[p>>6]&(1<<(uint(p)&63)) != 0 {
			continue
		}
		if old == 0 {
			s.zeroCheck[p>>6] &^= 1 << (uint(p) & 63)
			s.oneCheck[p>>6] |= 1 << (uint(p) & 63)
		} else if old == 1 {
			s.oneCheck[p>>6] &^= 1 << (uint(p) & 63)
			s.goodDec(p)
		}
	}
}

// restoreSuffix removes v from the shared suffix.
func (s *slicedScanner) restoreSuffix(v int) {
	bit := uint64(1) << (uint(v) & 63)
	s.sufMask[v>>6] &^= bit
	for _, p := range s.csr.Parents(int32(v)) {
		if !s.relevant[p] {
			continue
		}
		old := s.m[p]
		s.m[p] = old - 1
		if s.sufMask[p>>6]&(1<<(uint(p)&63)) != 0 {
			continue
		}
		if old == 1 {
			s.oneCheck[p>>6] &^= 1 << (uint(p) & 63)
			s.zeroCheck[p>>6] |= 1 << (uint(p) & 63)
		} else if old == 2 {
			s.oneCheck[p>>6] |= 1 << (uint(p) & 63)
			s.goodInc(p)
		}
	}
	if int32(v) >= s.data && s.relevant[v] {
		switch s.m[v] {
		case 0:
			s.zeroCheck[v>>6] |= bit
			s.goodInc(int32(v))
		case 1:
			s.oneCheck[v>>6] |= bit
			s.goodInc(int32(v))
		}
	}
}

// resyncSuffix diffs the tracked suffix against idx[1:] (both ascending)
// and applies the erase/restore deltas — at most two nodes per
// revolving-door boundary step.
func (s *slicedScanner) resyncSuffix(idx []int) {
	nw := idx[1:]
	i, j := 0, 0
	for i < len(s.cur) || j < len(nw) {
		switch {
		case j == len(nw) || (i < len(s.cur) && s.cur[i] < nw[j]):
			s.restoreSuffix(s.cur[i])
			i++
		case i == len(s.cur) || nw[j] < s.cur[i]:
			s.eraseSuffix(nw[j])
			j++
		default:
			i++
			j++
		}
	}
	copy(s.cur, nw)
}

func (s *slicedScanner) setPattern(idx []int, c0 int) {
	s.pattern[0] = c0
	copy(s.pattern[1:], idx[1:])
}

// runCertificate decides whether the suffix holds a full certificate
// and, if so, fills s.badNodes with the sweeping elements that break
// it. Returns false when some suffix data node has no provable
// recovery path at all — the run then takes the fixpoint path lane by
// lane.
//
// Soundness. Consider a pattern T = S ∪ {c} (c the lane's sweeping
// element, always < min(S), so c ∉ S). For a suffix data node v, any
// parent q in oneCheck is a valid rule-1 rescuer (m[q] == 1 with v ∈
// S ∩ L(q) forces the one missing neighbor to be v), and stays valid in
// lane c iff c ∉ L(q) ∪ {q}. So v's round-1 rescue fails in lane c only
// when c breaks every oneCheck parent of v — the per-member mask bv[i]
// is that intersection ∩_q (L(q) ∪ {q}). Distinct v's never compete for
// one q (two suffix members under q would make m[q] ≥ 2), so in any
// lane c outside every member's mask, ALL suffix data nodes with
// oneCheck parents are rescued by disjoint checks in the first peeling
// round, independent of order.
//
// A member v with no oneCheck parent (deficient) can still be proven
// via a second round: a parent p with m[p] == 2, p ∉ S, whose other
// missing member u is itself recovered in round 1 — either u is data
// with its own round-1 rescuer (use its mask bv[j]), or u is an erased
// check with no suffix left-neighbors, recomputed by rule 2 when the
// lane leaves L(u) intact. Once u is back, p's missing set is {v} alone
// and p fires in round 2. Such a path survives lane c iff c ∉ L(p) ∪
// {p} and c doesn't break u's recovery, so the per-path mask is
// L(p) ∪ {p} ∪ (bv[j] or L(u)), intersected over candidate paths into
// bv[i]. Round-2 rescuers are distinct from all round-1 rescuers
// (m == 2 vs m ≤ 1) and from each other (p determines its member pair).
//
// badNodes is the union of all member masks. That settles the suffix;
// for c itself (erased checks need no recovery):
//
//   - a zeroCheck parent p of c has missing set exactly {c} and fires
//     in round 1;
//   - a oneCheck parent p of c has missing set {v_p, c} in round 1,
//     where v_p is its single suffix member. c ∈ L(p) disqualifies p
//     as v_p's rescuer, so the rescuer of v_p that lane c preserves
//     (which exists: c ∉ badNodes) is some q ≠ p; after round 1
//     recovers v_p, p's only missing neighbor is c and p fires next.
//
// Hence goodRun (maintained incrementally: every check bit, plus data
// bits with a zeroCheck or oneCheck parent) marks sweeping elements
// whose whole pattern is provably recoverable: a lane is proven by
// goodRun[c] ∧ ¬badNodes[c], and every other lane goes to the fixpoint,
// which assumes nothing. Real peeling runs rules 1 and 2 to a fixpoint,
// so it is at least as strong as these schedules.
func (s *slicedScanner) runCertificate(idx []int) bool {
	words := s.csr.Words
	suffix := idx[1:]
	anyDeficient := false
	for i, v := range suffix {
		if int32(v) >= s.data {
			s.deficient[i] = false
			continue
		}
		inter := s.bv[i*words : (i+1)*words]
		first, empty := true, false
		for _, q := range s.csr.Parents(int32(v)) {
			if s.oneCheck[q>>6]&(1<<(uint(q)&63)) == 0 {
				continue
			}
			lm := s.csr.LeftMask(q)
			qw, qb := int(q>>6), uint64(1)<<(uint(q)&63)
			if first {
				copy(inter, lm)
				inter[qw] |= qb
				first = false
				continue
			}
			nz := uint64(0)
			for w := range inter {
				x := lm[w]
				if w == qw {
					x |= qb
				}
				inter[w] &= x
				nz |= inter[w]
			}
			if nz == 0 {
				empty = true
				break
			}
		}
		s.deficient[i] = first
		anyDeficient = anyDeficient || first
		if empty {
			for w := range inter {
				inter[w] = 0
			}
		}
	}
	if anyDeficient && !s.certifyDeficient(suffix) {
		return false
	}
	bw := s.badNodes
	for w := range bw {
		bw[w] = 0
	}
	for i, v := range suffix {
		if int32(v) >= s.data {
			continue
		}
		src := s.bv[i*words : (i+1)*words]
		for w := range bw {
			bw[w] |= src[w]
		}
	}
	return true
}

// certifyDeficient is runCertificate's second pass: for every suffix
// data member without a round-1 rescuer, intersect the masks of its
// two-round recovery paths into bv. Returns false if some deficient
// member has no path at all.
func (s *slicedScanner) certifyDeficient(suffix []int) bool {
	words := s.csr.Words
	for i, v := range suffix {
		if !s.deficient[i] {
			continue
		}
		inter := s.bv[i*words : (i+1)*words]
		first := true
		for _, p := range s.csr.Parents(int32(v)) {
			if s.m[p] != 2 || s.sufMask[p>>6]&(1<<(uint(p)&63)) != 0 {
				continue
			}
			// The other missing member u of p (exactly one: m == 2).
			lmp := s.csr.LeftMask(p)
			u := int32(-1)
			for w := 0; w < words; w++ {
				x := lmp[w] & s.sufMask[w]
				if w == v>>6 {
					x &^= 1 << (uint(v) & 63)
				}
				if x != 0 {
					u = int32(w<<6 + bits.TrailingZeros64(x))
					break
				}
			}
			if u < 0 {
				continue
			}
			var uMask []uint64 // lanes that break u's round-1 recovery
			if u < s.data {
				j := -1
				for jj, sv := range suffix {
					if int32(sv) == u {
						j = jj
						break
					}
				}
				if j < 0 || s.deficient[j] {
					continue
				}
				uMask = s.bv[j*words : (j+1)*words]
			} else {
				// u is an erased check: rule 2 recomputes it in round 1
				// iff no suffix member sits among its left neighbors and
				// the lane stays out of L(u).
				uMask = s.csr.LeftMask(u)
				mu := uint64(0)
				for w := 0; w < words; w++ {
					mu |= uMask[w] & s.sufMask[w]
				}
				if mu != 0 {
					continue
				}
			}
			pw, pb := int(p>>6), uint64(1)<<(uint(p)&63)
			if first {
				for w := range inter {
					inter[w] = lmp[w] | uMask[w]
				}
				inter[pw] |= pb
				first = false
				continue
			}
			for w := range inter {
				x := lmp[w] | uMask[w]
				if w == pw {
					x |= pb
				}
				inter[w] &= x
			}
		}
		if first {
			return false // no two-round path either
		}
	}
	return true
}

// extractWindow gathers the window bits mask[c0], mask[c0+dir], …, into
// lanes 0, 1, …. Bits beyond the caller's lane count are garbage; mask
// with the active-lane set. The window never leaves the node space: an
// ascending sweep stays below idx[1], a descending one ends at 0.
func extractWindow(mask []uint64, c0, dir int) uint64 {
	if dir > 0 {
		w, off := c0>>6, uint(c0&63)
		x := mask[w] >> off
		if off != 0 && w+1 < len(mask) {
			x |= mask[w+1] << (64 - off)
		}
		return x
	}
	// Descending: gather the ascending 64-bit window ending at c0, then
	// reverse so lane L reads bit c0−L.
	lo := c0 - 63
	var g uint64
	if lo >= 0 {
		w, off := lo>>6, uint(lo&63)
		g = mask[w] >> off
		if off != 0 && w+1 < len(mask) {
			g |= mask[w+1] << (64 - off)
		}
	} else {
		g = mask[0] << uint(-lo)
	}
	return bits.Reverse64(g)
}

// enqueue adds the lane pattern suffix ∪ {c0} to the fixpoint batch.
// The caller flushes first when the batch is full.
func (s *slicedScanner) enqueue(idx []int, c0 int) {
	p := s.batchPat[s.batchLen]
	p[0] = c0
	copy(p[1:], idx[1:])
	bit := uint64(1) << uint(s.batchLen)
	for _, v := range p {
		s.sk.Erase(v, bit)
	}
	s.batchLen++
}

// flushBatch evaluates the pending batch in one word-wide fixpoint,
// records its failures, and returns the failed-slot mask.
func (s *slicedScanner) flushBatch(res *RangeResult, maxFailures int) uint64 {
	nb := s.batchLen
	if nb == 0 {
		return 0
	}
	active := ^uint64(0)
	if nb < decode.Lanes {
		active = 1<<uint(nb) - 1
	}
	s.sk.SetActive(active)
	failed := active &^ s.sk.Eval()
	s.sk.Reset()
	s.batchLen = 0
	res.Tested += int64(nb)
	if failed != 0 {
		res.FailureCount += int64(bits.OnesCount64(failed))
		for f := failed; f != 0; f &= f - 1 {
			slot := bits.TrailingZeros64(f)
			res.Failures = recordFailure(res.Failures, s.batchPat[slot], maxFailures)
		}
	}
	return failed
}

// scanRun evaluates one maximal revolving-door run: runLen consecutive
// ranks starting at rank, whose patterns share the suffix idx[1:] while
// the smallest element sweeps from idx[0] in direction dir.
func (s *slicedScanner) scanRun(res *RangeResult, idx []int, rank, runLen int64, dir, maxFailures int) {
	certOK := s.runCertificate(idx)
	c0 := idx[0]
	laneRank := rank
	for remaining := runLen; remaining > 0; {
		n := decode.Lanes
		if int64(n) > remaining {
			n = int(remaining)
		}
		active := ^uint64(0)
		if n < decode.Lanes {
			active = 1<<uint(n) - 1
		}
		var proven uint64
		if certOK {
			proven = active & extractWindow(s.goodRun, c0, dir) &^ extractWindow(s.badNodes, c0, dir)
		}
		unresolved := active &^ proven
		res.Tested += int64(bits.OnesCount64(proven))
		if s.onVerdict != nil {
			s.hookWord(res, idx, laneRank, c0, dir, n, proven, unresolved, maxFailures)
		} else {
			for u := unresolved; u != 0; u &= u - 1 {
				if s.batchLen == decode.Lanes {
					s.flushBatch(res, maxFailures)
				}
				s.enqueue(idx, c0+dir*bits.TrailingZeros64(u))
			}
		}
		c0 += dir * n
		laneRank += int64(n)
		remaining -= int64(n)
	}
}

// hookWord is the onVerdict (test) path of scanRun's word loop: it keeps
// the batch word-local so every verdict — proven and fixpoint alike —
// can be reported in rank order.
func (s *slicedScanner) hookWord(res *RangeResult, idx []int, laneRank int64, c0, dir, n int, proven, unresolved uint64, maxFailures int) {
	s.flushBatch(res, maxFailures) // any carry-over enqueued before the hook was set
	for u := unresolved; u != 0; u &= u - 1 {
		s.enqueue(idx, c0+dir*bits.TrailingZeros64(u))
	}
	failed := s.flushBatch(res, maxFailures)
	slot := 0
	for L := 0; L < n; L++ {
		ok := true
		if unresolved&(1<<uint(L)) != 0 {
			ok = failed&(1<<uint(slot)) == 0
			slot++
		}
		s.setPattern(idx, c0+dir*L)
		s.onVerdict(laneRank+int64(L), s.pattern, ok)
	}
}

// scanRangeSliced is the KernelSliced body of ScanRangeKernelCtx: same
// contract and bit-identical results as the scalar ScanRangeCtx, with
// progress counters flushed in evaluated patterns (not words) at the
// same cancelCheckInterval cadence.
func scanRangeSliced(ctx context.Context, g *graph.Graph, k int, lo, hi int64, maxFailures int, hook func(int64, []int, bool)) (RangeResult, error) {
	if k < 1 || k > g.Total {
		return RangeResult{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		return RangeResult{}, fmt.Errorf("sim: C(%d,%d) exceeds the exhaustive rank space (%w); use the sampled certification spec for archival-scale graphs", g.Total, k, combin.ErrRankOverflow)
	}
	if lo < 0 || hi > total || lo > hi {
		return RangeResult{}, fmt.Errorf("sim: rank range [%d,%d) outside [0,%d)", lo, hi, total)
	}
	if lo == hi {
		return RangeResult{}, nil
	}
	reg := Metrics()
	tested := reg.Counter(MetricCombinationsTested)
	found := reg.Counter(MetricFailuresFound)

	s := newSlicedScanner(g, k, hook)
	idx := make([]int, k)
	combin.GrayUnrank(idx, g.Total, lo)
	copy(s.cur, idx[1:])
	for _, v := range idx[1:] {
		s.eraseSuffix(v)
	}

	var res RangeResult
	var lastFlushTested, lastFlushFails int64
	budget := int64(0) // patterns until the next flush/cancel check
	for r := lo; r < hi; {
		if budget <= 0 {
			s.flushBatch(&res, maxFailures)
			if ctx.Err() != nil {
				return RangeResult{}, ctx.Err()
			}
			tested.Add(res.Tested - lastFlushTested)
			found.Add(res.FailureCount - lastFlushFails)
			lastFlushTested, lastFlushFails = res.Tested, res.FailureCount
			budget = cancelCheckInterval
		}
		// Maximal run from the current state: Algorithm R's easy step
		// moves only idx[0] — up toward idx[1] (or n) when k is odd, down
		// toward 0 when k is even.
		var runLen int64
		dir := 1
		if k%2 == 1 {
			c2 := g.Total
			if k > 1 {
				c2 = idx[1]
			}
			runLen = int64(c2 - idx[0])
		} else {
			runLen = int64(idx[0] + 1)
			dir = -1
		}
		if runLen > hi-r {
			runLen = hi - r
		}
		s.scanRun(&res, idx, r, runLen, dir, maxFailures)
		r += runLen
		budget -= runLen
		if r < hi {
			// Step over the run boundary: position idx[0] at the run's
			// last pattern (where the easy step is exhausted) and let
			// GrayNext take the hard step, then re-sync the suffix delta.
			idx[0] += dir * int(runLen-1)
			if _, _, ok := combin.GrayNext(idx, g.Total); !ok {
				return RangeResult{}, fmt.Errorf("sim: revolving-door enumeration exhausted at rank %d of [%d,%d)", r, lo, hi)
			}
			s.resyncSuffix(idx)
		}
	}
	s.flushBatch(&res, maxFailures)
	tested.Add(res.Tested - lastFlushTested)
	found.Add(res.FailureCount - lastFlushFails)
	return res, nil
}
