package sim

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
	"tornado/internal/graphml"
	"tornado/internal/obs"
)

// slicedTestGraphs returns small, structurally diverse graphs whose rank
// spaces are exhaustively scannable in a test: mirrored systems (dense
// failure sets at low k), and seeded random cascades with shared checks
// and multi-level structure.
func slicedTestGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	gs := []*graph.Graph{mirrorGraph(4), mirrorGraph(6)}
	for seed := uint64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x517CED))
		for {
			data := 4 + rng.IntN(8)
			b := graph.NewBuilder(data)
			leftFirst, leftCount := 0, data
			for li := 0; li < 1+rng.IntN(2); li++ {
				rightCount := max(1, leftCount/2)
				rf := b.AddLevel(leftFirst, leftCount, rightCount)
				leftFirst, leftCount = rf, rightCount
				if leftCount < 2 {
					break
				}
			}
			g := b.Graph()
			for _, lv := range g.Levels {
				for r := lv.RightFirst; r < lv.RightFirst+lv.RightCount; r++ {
					deg := 1 + rng.IntN(min(3, lv.LeftCount))
					perm := rng.Perm(lv.LeftCount)
					lefts := make([]int, 0, deg)
					for _, p := range perm[:deg] {
						lefts = append(lefts, lv.LeftFirst+p)
					}
					g.SetNeighbors(r, lefts)
				}
			}
			if g.Total <= 18 {
				gs = append(gs, g)
				break
			}
		}
	}
	return gs
}

// TestSlicedScanMatchesScalarExhaustive scans every whole rank space of
// every small graph at k ≤ 5 with both kernels: RangeResults (counts AND
// witness lists) must be bit-identical.
func TestSlicedScanMatchesScalarExhaustive(t *testing.T) {
	ctx := context.Background()
	for gi, g := range slicedTestGraphs(t) {
		for k := 1; k <= min(5, g.Total); k++ {
			total, ok := combin.BinomialInt64(g.Total, k)
			if !ok {
				t.Fatal("rank space overflow")
			}
			want, err := ScanRangeCtx(ctx, g, k, 0, total, int(total))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ScanRangeKernelCtx(ctx, g, k, 0, total, int(total), KernelSliced)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("graph %d k=%d: sliced %+v, scalar %+v", gi, k, got, want)
			}
		}
	}
}

// TestSlicedScanSubranges compares the kernels on random, deliberately
// word-unaligned subranges — the shard shapes campaign tiling produces —
// including a small maxFailures cap so witness truncation is identical.
func TestSlicedScanSubranges(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(9, 0x5AB))
	for gi, g := range slicedTestGraphs(t) {
		for k := 2; k <= min(4, g.Total); k++ {
			total, _ := combin.BinomialInt64(g.Total, k)
			for trial := 0; trial < 8; trial++ {
				lo := rng.Int64N(total)
				hi := lo + rng.Int64N(total-lo+1)
				maxF := 1 + int(rng.Int64N(4))
				want, err := ScanRangeCtx(ctx, g, k, lo, hi, maxF)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ScanRangeKernelCtx(ctx, g, k, lo, hi, maxF, KernelSliced)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("graph %d k=%d [%d,%d) maxF=%d: sliced %+v, scalar %+v",
						gi, k, lo, hi, maxF, got, want)
				}
			}
		}
	}
}

// TestSlicedWorkerIndependence: 1/4/16 workers must produce bit-identical
// KResults from the sliced path, all equal to the scalar result — the
// worker-count-determinism guarantee the campaign layer rests on.
func TestSlicedWorkerIndependence(t *testing.T) {
	ctx := context.Background()
	g := mirrorGraph(8) // k=3 has many failures → witness merging is exercised
	for k := 2; k <= 3; k++ {
		want, err := ExhaustiveKCtx(ctx, g, k, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 16} {
			got, err := ExhaustiveKKernelCtx(ctx, g, k, 8, workers, KernelSliced)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d workers=%d: sliced %+v, scalar %+v", k, workers, got, want)
			}
		}
	}
}

// TestSlicedProgressCountsPatterns is the satellite-fix regression: the
// sliced path evaluates 64 patterns per kernel word, and the progress
// counters must report evaluated patterns (so comb/sec gauges and
// campaign ETAs stay truthful), not words. The flushed totals must equal
// the combin count exactly.
func TestSlicedProgressCountsPatterns(t *testing.T) {
	reg := obs.NewRegistry()
	old := Metrics()
	SetMetrics(reg)
	defer SetMetrics(old)

	g := mirrorGraph(6)
	const k = 3
	total, _ := combin.BinomialInt64(g.Total, k)
	rr, err := scanRangeSliced(context.Background(), g, k, 0, total, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Tested != total {
		t.Fatalf("RangeResult.Tested = %d, want C(%d,%d) = %d", rr.Tested, g.Total, k, total)
	}
	if got := reg.Counter(MetricCombinationsTested).Value(); got != total {
		t.Fatalf("%s = %d, want %d (patterns, not words)", MetricCombinationsTested, got, total)
	}
	if got := reg.Counter(MetricFailuresFound).Value(); got != rr.FailureCount {
		t.Fatalf("%s = %d, want %d", MetricFailuresFound, got, rr.FailureCount)
	}
}

// TestSlicedPruningSoundness re-evaluates every pattern the sliced scan
// decided — including the certificate-pruned lanes and monotonicity-
// pruned whole runs, which never reach the bit-sliced fixpoint — with
// the scalar kernel, via the scanner's per-verdict hook. It also checks
// the hook saw every rank exactly once, in revolving-door order.
func TestSlicedPruningSoundness(t *testing.T) {
	ctx := context.Background()
	for gi, g := range slicedTestGraphs(t) {
		csr := decode.NewCSR(g)
		kn := decode.NewKernel(csr)
		for k := 1; k <= min(4, g.Total); k++ {
			total, _ := combin.BinomialInt64(g.Total, k)
			next := int64(0)
			hook := func(rank int64, idx []int, recoverable bool) {
				if rank != next {
					t.Fatalf("graph %d k=%d: verdict for rank %d, want %d", gi, k, rank, next)
				}
				next++
				if want := kn.Recoverable(idx); recoverable != want {
					t.Fatalf("graph %d k=%d rank %d: sliced verdict %v, scalar %v (erased %v)",
						gi, k, rank, recoverable, want, idx)
				}
			}
			if _, err := scanRangeSliced(ctx, g, k, 0, total, 4, hook); err != nil {
				t.Fatal(err)
			}
			if next != total {
				t.Fatalf("graph %d k=%d: hook saw %d verdicts, want %d", gi, k, next, total)
			}
		}
	}
}

// TestSlicedGoldenTornado96 pins the sliced path against the precompiled
// scalar certification results of the three paper graphs: per-k tested /
// failure counts, first failure, and the exact critical sets. Graphs 2
// and 3 first fail at k=4; graph 1 survives to k=5 with 16 critical sets
// (61M patterns — the sliced kernel's home turf).
func TestSlicedGoldenTornado96(t *testing.T) {
	type pin struct {
		file         string
		firstFailure int
		perK         map[int][2]int64 // k -> {failures, tested}
		critical     [][]int
	}
	pins := []pin{
		{
			file:         "tornado96-1.graphml",
			firstFailure: 5,
			perK: map[int][2]int64{
				1: {0, 96}, 2: {0, 4560}, 3: {0, 142880}, 4: {0, 3321960}, 5: {16, 61124064},
			},
			critical: [][]int{
				{1, 9, 10, 16, 17}, {1, 9, 10, 17, 43}, {1, 15, 16, 25, 42},
				{2, 15, 23, 27, 30}, {4, 25, 29, 41, 47}, {5, 8, 18, 20, 47},
				{5, 16, 18, 20, 38}, {5, 18, 19, 35, 43}, {6, 8, 26, 37, 47},
				{6, 15, 26, 30, 37}, {6, 16, 28, 36, 38}, {8, 16, 20, 38, 47},
				{11, 16, 20, 38, 43}, {15, 16, 20, 30, 38}, {19, 25, 28, 29, 34},
				{20, 26, 28, 36, 37},
			},
		},
		{
			file:         "tornado96-2.graphml",
			firstFailure: 4,
			perK: map[int][2]int64{
				1: {0, 96}, 2: {0, 4560}, 3: {0, 142880}, 4: {1, 3321960},
			},
			critical: [][]int{{0, 3, 13, 14}},
		},
		{
			file:         "tornado96-3.graphml",
			firstFailure: 4,
			perK: map[int][2]int64{
				1: {0, 96}, 2: {0, 4560}, 3: {0, 142880}, 4: {3, 3321960},
			},
			critical: [][]int{{2, 14, 56, 61}, {22, 33, 34, 39}, {27, 29, 30, 38}},
		},
	}
	for _, p := range pins {
		p := p
		t.Run(p.file, func(t *testing.T) {
			if p.firstFailure == 5 && testing.Short() {
				t.Skip("k=5 golden pin (61M patterns) skipped in -short mode")
			}
			g, err := graphml.ReadFile("../../precompiled/" + p.file)
			if err != nil {
				t.Fatal(err)
			}
			res, err := WorstCaseCtx(context.Background(), g, WorstCaseOptions{
				MaxK:   5,
				Kernel: KernelSliced,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found || res.FirstFailure != p.firstFailure {
				t.Fatalf("first failure = %d (found=%v), want %d", res.FirstFailure, res.Found, p.firstFailure)
			}
			if len(res.PerK) != len(p.perK) {
				t.Fatalf("examined %d cardinalities, want %d", len(res.PerK), len(p.perK))
			}
			for _, kr := range res.PerK {
				want, ok := p.perK[kr.K]
				if !ok {
					t.Fatalf("unexpected cardinality %d examined", kr.K)
				}
				if kr.FailureCount != want[0] || kr.Tested != want[1] {
					t.Fatalf("k=%d: %d failures / %d tested, want %d / %d",
						kr.K, kr.FailureCount, kr.Tested, want[0], want[1])
				}
			}
			last := res.PerK[len(res.PerK)-1]
			if !reflect.DeepEqual(last.Failures, p.critical) {
				t.Fatalf("critical sets = %v, want %v", last.Failures, p.critical)
			}
		})
	}
}

// TestScanKernelValidation: an unknown kernel name is an error at every
// entry point, and the "scalar" alias is accepted.
func TestScanKernelValidation(t *testing.T) {
	g := mirrorGraph(4)
	ctx := context.Background()
	if _, err := ScanRangeKernelCtx(ctx, g, 2, 0, 1, 1, ScanKernel("simd")); err == nil {
		t.Error("unknown kernel accepted by ScanRangeKernelCtx")
	}
	if _, err := ExhaustiveKKernelCtx(ctx, g, 2, 1, 1, ScanKernel("simd")); err == nil {
		t.Error("unknown kernel accepted by ExhaustiveKKernelCtx")
	}
	if _, err := WorstCaseCtx(ctx, g, WorstCaseOptions{MaxK: 2, Kernel: "simd"}); err == nil {
		t.Error("unknown kernel accepted by WorstCaseCtx")
	}
	if _, err := ScanRangeKernelCtx(ctx, g, 2, 0, 1, 1, "scalar"); err != nil {
		t.Errorf(`"scalar" alias rejected: %v`, err)
	}
}

// benchmark-style sanity: the sliced whole-space scan of the 96-node
// graph at k=3 in a plain test keeps the run honest on CI without the
// full benchreport (the 8× gate lives there).
func TestSlicedScanRange96Smoke(t *testing.T) {
	g := ctxTestGraph(t)
	const k = 3
	total, _ := combin.BinomialInt64(g.Total, k)
	want, err := ScanRangeCtx(context.Background(), g, k, 0, total, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScanRangeKernelCtx(context.Background(), g, k, 0, total, 8, KernelSliced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sliced %+v, scalar %+v", got, want)
	}
}

// TestSlicedK6SpotCheck spot-checks the sliced kernel at k=6 on a real
// certified graph — the cardinality the full-graph exhaustive tests stop
// short of (C(96,6) = 927M patterns). Erasure failure is monotone, so
// tornado96-1's pinned k=5 critical set {1,9,10,16,17} plus any sixth
// node must fail; the test scans a 4M-pattern window centered on one
// such witness and requires the sliced and scalar kernels to return
// byte-identical results, including at least that one failure.
func TestSlicedK6SpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("k=6 spot check (4M patterns, scalar and sliced) skipped in -short mode")
	}
	g, err := graphml.ReadFile("../../precompiled/tornado96-1.graphml")
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	witness := []int{1, 9, 10, 16, 17, 18}
	if decode.NewKernel(decode.NewCSR(g)).Recoverable(witness) {
		t.Fatalf("witness %v is a superset of a pinned k=5 critical set and must fail", witness)
	}
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		t.Fatal("C(96,6) overflows int64?")
	}
	r := combin.GrayRank(witness, g.Total)
	lo, hi := max(r-2<<20, 0), min(r+2<<20, total)
	scalar, err := ScanRangeCtx(context.Background(), g, k, lo, hi, 64)
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := ScanRangeKernelCtx(context.Background(), g, k, lo, hi, 64, KernelSliced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar, sliced) {
		t.Fatalf("k=6 window [%d,%d): scalar %+v != sliced %+v", lo, hi, scalar, sliced)
	}
	if scalar.FailureCount == 0 {
		t.Fatalf("k=6 window [%d,%d) around witness rank %d found no failures", lo, hi, r)
	}
}
