// Package sim implements the paper's automated testing system (§3): the
// exhaustive combinatorial worst-case search that finds the minimum number
// of lost nodes causing data loss, and the Monte Carlo reconstruction-
// failure profiles that estimate the fraction of failed reconstructions for
// each number of offline devices. Both fan out over goroutines; each worker
// owns a private decoder and enumerates a contiguous rank range of the
// combination space.
//
// Every long-running entry point has a context-first variant (WorstCaseCtx,
// FailureProfileCtx, OverheadCtx, SimulateLifetimeCtx) whose workers check
// cancellation at combination-chunk boundaries; the short names delegate
// with context.Background().
package sim

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

// WorstCaseOptions tunes the exhaustive search.
type WorstCaseOptions struct {
	// MaxK is the largest erasure cardinality examined (the paper searched
	// (96 choose 1) through (96 choose 6)). Default DefaultMaxK.
	MaxK int
	// MaxFailures caps how many failing sets are recorded verbatim (the
	// total count is always exact). Default DefaultMaxFailures.
	MaxFailures int
	// Workers is the number of goroutines; default GOMAXPROCS.
	Workers int
	// KeepGoing examines all cardinalities up to MaxK even after a failing
	// one is found (the default stops at the first failing cardinality,
	// which defines the worst case).
	KeepGoing bool
	// Kernel selects the evaluation kernel behind the scans. Default
	// KernelScalar; see ScanKernel.
	Kernel ScanKernel
}

func (o WorstCaseOptions) normalize() WorstCaseOptions {
	o.MaxK = intOr(o.MaxK, DefaultMaxK)
	o.MaxFailures = intOr(o.MaxFailures, DefaultMaxFailures)
	o.Workers = defaultWorkers(o.Workers)
	return o
}

// ScanKernel selects the evaluation kernel behind the exhaustive scans.
// Every kernel visits combinations in the same revolving-door rank order
// and produces bit-identical KResult/RangeResult values — the choice is a
// pure speed/implementation trade, which is what lets campaign shards,
// cached results, and golden pins compare across kernels.
type ScanKernel string

const (
	// KernelScalar is the incremental peeling kernel advanced by two-node
	// revolving-door deltas, one pattern per step (PR 4). The zero value,
	// and the default. "scalar" is accepted as an alias.
	KernelScalar ScanKernel = ""
	// KernelSliced is the bit-sliced 64-lane kernel: combinations are
	// decomposed into revolving-door runs where only the smallest element
	// sweeps, and each run is evaluated 64 patterns per word with
	// certificate-guided pruning (see decode.SlicedKernel and
	// scanRangeSliced).
	KernelSliced ScanKernel = "sliced"
)

// Validate reports whether k names a known scan kernel ("", "scalar", or
// "sliced").
func (k ScanKernel) Validate() error {
	switch k {
	case KernelScalar, "scalar", KernelSliced:
		return nil
	}
	return fmt.Errorf("sim: unknown scan kernel %q", string(k))
}

// KResult reports the exhaustive examination of one erasure cardinality.
type KResult struct {
	K            int
	Tested       int64   // combinations examined (= C(total, k))
	FailureCount int64   // combinations that lost data
	Failures     [][]int // the lexicographically smallest failing sets, up to MaxFailures (worker-count independent)
}

// WorstCaseResult summarizes a search.
type WorstCaseResult struct {
	// FirstFailure is the smallest cardinality that lost data — the
	// paper's headline fault-tolerance metric ("first failure"). Zero when
	// no failure was found up to MaxK.
	FirstFailure int
	Found        bool
	PerK         []KResult // one entry per examined cardinality, ascending
	Tested       int64     // total combinations examined
}

// FailureCountAt returns the exact failure count recorded for cardinality
// k, or 0 when k was not examined.
func (r WorstCaseResult) FailureCountAt(k int) int64 {
	for _, kr := range r.PerK {
		if kr.K == k {
			return kr.FailureCount
		}
	}
	return 0
}

// WorstCase exhaustively searches erasure combinations of increasing
// cardinality for the graph's worst-case failure scenario (paper §3:
// "(96 choose 1 lost block) through (96 choose 6)").
func WorstCase(g *graph.Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	return WorstCaseCtx(context.Background(), g, opts)
}

// WorstCaseCtx is WorstCase with cancellation: workers observe ctx at
// combination-chunk boundaries, so cancellation returns (with the
// cardinalities completed so far and ctx.Err()) within one chunk of
// decoding work.
func WorstCaseCtx(ctx context.Context, g *graph.Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	opts = opts.normalize()
	if err := opts.Kernel.Validate(); err != nil {
		return WorstCaseResult{}, err
	}
	var res WorstCaseResult
	for k := 1; k <= opts.MaxK; k++ {
		kr, err := ExhaustiveKKernelCtx(ctx, g, k, opts.MaxFailures, opts.Workers, opts.Kernel)
		if err != nil {
			return res, err
		}
		res.PerK = append(res.PerK, kr)
		res.Tested += kr.Tested
		if kr.FailureCount > 0 && !res.Found {
			res.Found = true
			res.FirstFailure = k
			if !opts.KeepGoing {
				break
			}
		}
	}
	return res, nil
}

// ExhaustiveK examines every erasure combination of exactly k of the
// graph's nodes, returning the exact failure count and up to maxFailures
// recorded failing sets. The rank space is split across workers.
func ExhaustiveK(g *graph.Graph, k, maxFailures, workers int) (KResult, error) {
	return ExhaustiveKCtx(context.Background(), g, k, maxFailures, workers)
}

// ExhaustiveKCtx is ExhaustiveK with cancellation (checked every
// cancelCheckInterval combinations per worker).
func ExhaustiveKCtx(ctx context.Context, g *graph.Graph, k, maxFailures, workers int) (KResult, error) {
	return ExhaustiveKKernelCtx(ctx, g, k, maxFailures, workers, KernelScalar)
}

// ExhaustiveKKernelCtx is ExhaustiveKCtx with an explicit kernel choice.
// The result is bit-identical across kernels and worker counts.
func ExhaustiveKKernelCtx(ctx context.Context, g *graph.Graph, k, maxFailures, workers int, kernel ScanKernel) (KResult, error) {
	if err := kernel.Validate(); err != nil {
		return KResult{}, err
	}
	if k < 1 || k > g.Total {
		return KResult{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		return KResult{}, fmt.Errorf("sim: C(%d,%d) exceeds the exhaustive rank space (%w); use the sampled certification spec for archival-scale graphs", g.Total, k, combin.ErrRankOverflow)
	}
	workers = defaultWorkers(workers)
	ranges := combin.SplitRanges(total, workers)

	rrs := make([]RangeResult, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i int, lo, hi int64) {
			defer wg.Done()
			rrs[i], errs[i] = ScanRangeKernelCtx(ctx, g, k, lo, hi, maxFailures, kernel)
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	// Propagate the first worker error in range order — a range validation
	// failure must not be silently reported as a clean scan.
	for _, err := range errs {
		if err != nil {
			return KResult{}, err
		}
	}

	var count int64
	var failures [][]int
	for _, rr := range rrs {
		count += rr.FailureCount
		failures = append(failures, rr.Failures...)
	}
	// Each range keeps its lexicographically smallest failures (up to
	// maxFailures), so their union contains the global lex-smallest
	// maxFailures: sorting then truncating yields a canonical prefix that
	// is independent of the worker count and range tiling.
	failures = mergeFailures(failures, maxFailures)
	return KResult{K: k, Tested: total, FailureCount: count, Failures: failures}, nil
}

// mergeFailures canonicalizes recorded failing sets from range scans whose
// per-range lists are each lex-smallest-capped: sort lexicographically,
// then truncate to the maxFailures prefix.
func mergeFailures(failures [][]int, maxFailures int) [][]int {
	slices.SortFunc(failures, slices.Compare)
	if len(failures) > maxFailures {
		failures = failures[:maxFailures:maxFailures]
	}
	return failures
}

// RangeResult reports an exhaustive scan of one contiguous rank range — the
// unit of work of both an ExhaustiveKCtx worker and a campaign shard.
type RangeResult struct {
	Tested       int64   // combinations examined (= hi - lo)
	FailureCount int64   // combinations that lost data
	Failures     [][]int // the lexicographically smallest failing sets of the range, up to maxFailures, ascending
}

// ScanRangeCtx examines every erasure combination of cardinality k whose
// revolving-door rank (combin.GrayRank) lies in [lo, hi), single-threaded,
// recording the range's lexicographically smallest failing sets (up to
// maxFailures). The revolving-door order means
// consecutive combinations differ by one swapped element, so the scan
// advances the incremental peeling kernel by a two-node erase/restore delta
// per pattern instead of erasing and resetting all k nodes — this loop is
// the system's decode hot path (see DESIGN.md "Decoder kernels").
//
// ScanRangeCtx is deterministic in its arguments, which is what makes
// campaign shards resumable: re-scanning the same range always reproduces
// the same result, and ranges tiling [0, C(total,k)) together examine every
// combination exactly once. Cancellation is honored at combination-chunk
// boundaries, and progress counters are flushed to Metrics() at the same
// cadence.
func ScanRangeCtx(ctx context.Context, g *graph.Graph, k int, lo, hi int64, maxFailures int) (RangeResult, error) {
	return scanRangeScalar(ctx, g, k, lo, hi, maxFailures)
}

// ScanRangeKernelCtx is ScanRangeCtx with an explicit kernel choice. Both
// kernels visit the same revolving-door rank order and return bit-identical
// results; KernelSliced evaluates 64 patterns per word (see sliced.go).
func ScanRangeKernelCtx(ctx context.Context, g *graph.Graph, k int, lo, hi int64, maxFailures int, kernel ScanKernel) (RangeResult, error) {
	if err := kernel.Validate(); err != nil {
		return RangeResult{}, err
	}
	if kernel == KernelSliced {
		return scanRangeSliced(ctx, g, k, lo, hi, maxFailures, nil)
	}
	return ScanRangeCtx(ctx, g, k, lo, hi, maxFailures)
}

func scanRangeScalar(ctx context.Context, g *graph.Graph, k int, lo, hi int64, maxFailures int) (RangeResult, error) {
	if k < 1 || k > g.Total {
		return RangeResult{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		return RangeResult{}, fmt.Errorf("sim: C(%d,%d) exceeds the exhaustive rank space (%w); use the sampled certification spec for archival-scale graphs", g.Total, k, combin.ErrRankOverflow)
	}
	if lo < 0 || hi > total || lo > hi {
		return RangeResult{}, fmt.Errorf("sim: rank range [%d,%d) outside [0,%d)", lo, hi, total)
	}
	if lo == hi {
		return RangeResult{}, nil
	}
	reg := Metrics()
	tested := reg.Counter(MetricCombinationsTested)
	found := reg.Counter(MetricFailuresFound)

	kn := decode.NewKernel(decode.NewCSR(g))
	idx := make([]int, k)
	combin.GrayUnrank(idx, g.Total, lo)
	for _, v := range idx {
		kn.EraseOne(v)
	}
	var res RangeResult
	var lastFlushTested, lastFlushFails int64
	untilCheck := int64(0) // countdown, not modulo: this loop runs per pattern
	for r := lo; r < hi; r++ {
		if untilCheck == 0 {
			if ctx.Err() != nil {
				return RangeResult{}, ctx.Err()
			}
			tested.Add(res.Tested - lastFlushTested)
			found.Add(res.FailureCount - lastFlushFails)
			lastFlushTested, lastFlushFails = res.Tested, res.FailureCount
			untilCheck = cancelCheckInterval
		}
		untilCheck--
		res.Tested++
		if !kn.Eval() {
			res.FailureCount++
			res.Failures = recordFailure(res.Failures, idx, maxFailures)
		}
		if r+1 < hi {
			out, in, _ := combin.GrayNext(idx, g.Total)
			kn.Swap(out, in)
		}
	}
	tested.Add(res.Tested - lastFlushTested)
	found.Add(res.FailureCount - lastFlushFails)
	return res, nil
}

// recordFailure maintains fs as the lexicographically smallest failing sets
// seen so far, ascending, capped at maxFailures. Keeping the lex-smallest
// (rather than the first maxFailures in revolving-door scan order) makes
// the recorded sets a pure function of the range — merging any tiling of
// [0, C(total,k)) reproduces the same global prefix regardless of worker
// count or shard schedule.
func recordFailure(fs [][]int, idx []int, maxFailures int) [][]int {
	if maxFailures <= 0 {
		return fs
	}
	pos, _ := slices.BinarySearchFunc(fs, idx, slices.Compare)
	if pos == len(fs) {
		if len(fs) == maxFailures {
			return fs
		}
		return append(fs, slices.Clone(idx))
	}
	fs = slices.Insert(fs, pos, slices.Clone(idx))
	if len(fs) > maxFailures {
		fs = fs[:maxFailures]
	}
	return fs
}
