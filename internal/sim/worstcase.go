// Package sim implements the paper's automated testing system (§3): the
// exhaustive combinatorial worst-case search that finds the minimum number
// of lost nodes causing data loss, and the Monte Carlo reconstruction-
// failure profiles that estimate the fraction of failed reconstructions for
// each number of offline devices. Both fan out over goroutines; each worker
// owns a private decoder and enumerates a contiguous rank range of the
// combination space.
//
// Every long-running entry point has a context-first variant (WorstCaseCtx,
// FailureProfileCtx, OverheadCtx, SimulateLifetimeCtx) whose workers check
// cancellation at combination-chunk boundaries; the short names delegate
// with context.Background().
package sim

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

// WorstCaseOptions tunes the exhaustive search.
type WorstCaseOptions struct {
	// MaxK is the largest erasure cardinality examined (the paper searched
	// (96 choose 1) through (96 choose 6)). Default DefaultMaxK.
	MaxK int
	// MaxFailures caps how many failing sets are recorded verbatim (the
	// total count is always exact). Default DefaultMaxFailures.
	MaxFailures int
	// Workers is the number of goroutines; default GOMAXPROCS.
	Workers int
	// KeepGoing examines all cardinalities up to MaxK even after a failing
	// one is found (the default stops at the first failing cardinality,
	// which defines the worst case).
	KeepGoing bool
}

func (o WorstCaseOptions) normalize() WorstCaseOptions {
	o.MaxK = intOr(o.MaxK, DefaultMaxK)
	o.MaxFailures = intOr(o.MaxFailures, DefaultMaxFailures)
	o.Workers = defaultWorkers(o.Workers)
	return o
}

// KResult reports the exhaustive examination of one erasure cardinality.
type KResult struct {
	K            int
	Tested       int64   // combinations examined (= C(total, k))
	FailureCount int64   // combinations that lost data
	Failures     [][]int // recorded failing sets, up to MaxFailures
}

// WorstCaseResult summarizes a search.
type WorstCaseResult struct {
	// FirstFailure is the smallest cardinality that lost data — the
	// paper's headline fault-tolerance metric ("first failure"). Zero when
	// no failure was found up to MaxK.
	FirstFailure int
	Found        bool
	PerK         []KResult // one entry per examined cardinality, ascending
	Tested       int64     // total combinations examined
}

// WorstCase exhaustively searches erasure combinations of increasing
// cardinality for the graph's worst-case failure scenario (paper §3:
// "(96 choose 1 lost block) through (96 choose 6)").
func WorstCase(g *graph.Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	return WorstCaseCtx(context.Background(), g, opts)
}

// WorstCaseCtx is WorstCase with cancellation: workers observe ctx at
// combination-chunk boundaries, so cancellation returns (with the
// cardinalities completed so far and ctx.Err()) within one chunk of
// decoding work.
func WorstCaseCtx(ctx context.Context, g *graph.Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	opts = opts.normalize()
	var res WorstCaseResult
	for k := 1; k <= opts.MaxK; k++ {
		kr, err := ExhaustiveKCtx(ctx, g, k, opts.MaxFailures, opts.Workers)
		if err != nil {
			return res, err
		}
		res.PerK = append(res.PerK, kr)
		res.Tested += kr.Tested
		if kr.FailureCount > 0 && !res.Found {
			res.Found = true
			res.FirstFailure = k
			if !opts.KeepGoing {
				break
			}
		}
	}
	return res, nil
}

// ExhaustiveK examines every erasure combination of exactly k of the
// graph's nodes, returning the exact failure count and up to maxFailures
// recorded failing sets. The rank space is split across workers.
func ExhaustiveK(g *graph.Graph, k, maxFailures, workers int) (KResult, error) {
	return ExhaustiveKCtx(context.Background(), g, k, maxFailures, workers)
}

// ExhaustiveKCtx is ExhaustiveK with cancellation (checked every
// cancelCheckInterval combinations per worker).
func ExhaustiveKCtx(ctx context.Context, g *graph.Graph, k, maxFailures, workers int) (KResult, error) {
	if k < 1 || k > g.Total {
		return KResult{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		return KResult{}, fmt.Errorf("sim: C(%d,%d) overflows the rank space", g.Total, k)
	}
	workers = defaultWorkers(workers)
	ranges := combin.SplitRanges(total, workers)

	var (
		mu       sync.Mutex
		failures [][]int
		count    int64
	)
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			d := decode.New(g)
			idx := make([]int, k)
			combin.Unrank(idx, g.Total, lo)
			var localCount int64
			var localFails [][]int
			for r := lo; r < hi; r++ {
				if (r-lo)%cancelCheckInterval == 0 && ctx.Err() != nil {
					return
				}
				// A combination touching no data node cannot lose data;
				// idx is sorted, so idx[0] >= Data means all-check.
				if idx[0] < g.Data && !d.Recoverable(idx) {
					localCount++
					if len(localFails) < maxFailures {
						localFails = append(localFails, slices.Clone(idx))
					}
				}
				if r+1 < hi {
					combin.Next(idx, g.Total)
				}
			}
			mu.Lock()
			count += localCount
			for _, f := range localFails {
				if len(failures) < maxFailures {
					failures = append(failures, f)
				}
			}
			mu.Unlock()
		}(rg[0], rg[1])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return KResult{}, err
	}

	slices.SortFunc(failures, slices.Compare)
	return KResult{K: k, Tested: total, FailureCount: count, Failures: failures}, nil
}
