// Package sim implements the paper's automated testing system (§3): the
// exhaustive combinatorial worst-case search that finds the minimum number
// of lost nodes causing data loss, and the Monte Carlo reconstruction-
// failure profiles that estimate the fraction of failed reconstructions for
// each number of offline devices. Both fan out over goroutines; each worker
// owns a private decoder and enumerates a contiguous rank range of the
// combination space.
package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

// WorstCaseOptions tunes the exhaustive search.
type WorstCaseOptions struct {
	// MaxK is the largest erasure cardinality examined (the paper searched
	// (96 choose 1) through (96 choose 6)). Default 5.
	MaxK int
	// MaxFailures caps how many failing sets are recorded verbatim (the
	// total count is always exact). Default 256.
	MaxFailures int
	// Workers is the number of goroutines; default GOMAXPROCS.
	Workers int
	// KeepGoing examines all cardinalities up to MaxK even after a failing
	// one is found (the default stops at the first failing cardinality,
	// which defines the worst case).
	KeepGoing bool
}

func (o *WorstCaseOptions) setDefaults() {
	if o.MaxK <= 0 {
		o.MaxK = 5
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// KResult reports the exhaustive examination of one erasure cardinality.
type KResult struct {
	K            int
	Tested       int64   // combinations examined (= C(total, k))
	FailureCount int64   // combinations that lost data
	Failures     [][]int // recorded failing sets, up to MaxFailures
}

// WorstCaseResult summarizes a search.
type WorstCaseResult struct {
	// FirstFailure is the smallest cardinality that lost data — the
	// paper's headline fault-tolerance metric ("first failure"). Zero when
	// no failure was found up to MaxK.
	FirstFailure int
	Found        bool
	PerK         []KResult // one entry per examined cardinality, ascending
	Tested       int64     // total combinations examined
}

// WorstCase exhaustively searches erasure combinations of increasing
// cardinality for the graph's worst-case failure scenario (paper §3:
// "(96 choose 1 lost block) through (96 choose 6)").
func WorstCase(g *graph.Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	opts.setDefaults()
	var res WorstCaseResult
	for k := 1; k <= opts.MaxK; k++ {
		kr, err := ExhaustiveK(g, k, opts.MaxFailures, opts.Workers)
		if err != nil {
			return res, err
		}
		res.PerK = append(res.PerK, kr)
		res.Tested += kr.Tested
		if kr.FailureCount > 0 && !res.Found {
			res.Found = true
			res.FirstFailure = k
			if !opts.KeepGoing {
				break
			}
		}
	}
	return res, nil
}

// ExhaustiveK examines every erasure combination of exactly k of the
// graph's nodes, returning the exact failure count and up to maxFailures
// recorded failing sets. The rank space is split across workers.
func ExhaustiveK(g *graph.Graph, k, maxFailures, workers int) (KResult, error) {
	if k < 1 || k > g.Total {
		return KResult{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	total, ok := combin.BinomialInt64(g.Total, k)
	if !ok {
		return KResult{}, fmt.Errorf("sim: C(%d,%d) overflows the rank space", g.Total, k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ranges := combin.SplitRanges(total, workers)

	var (
		mu       sync.Mutex
		failures [][]int
		count    int64
	)
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			d := decode.New(g)
			idx := make([]int, k)
			combin.Unrank(idx, g.Total, lo)
			var localCount int64
			var localFails [][]int
			for r := lo; r < hi; r++ {
				// A combination touching no data node cannot lose data;
				// idx is sorted, so idx[0] >= Data means all-check.
				if idx[0] < g.Data && !d.Recoverable(idx) {
					localCount++
					if len(localFails) < maxFailures {
						localFails = append(localFails, slices.Clone(idx))
					}
				}
				if r+1 < hi {
					combin.Next(idx, g.Total)
				}
			}
			mu.Lock()
			count += localCount
			for _, f := range localFails {
				if len(failures) < maxFailures {
					failures = append(failures, f)
				}
			}
			mu.Unlock()
		}(rg[0], rg[1])
	}
	wg.Wait()

	slices.SortFunc(failures, slices.Compare)
	return KResult{K: k, Tested: total, FailureCount: count, Failures: failures}, nil
}
