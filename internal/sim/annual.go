package sim

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"tornado/internal/decode"
	"tornado/internal/graph"
	"tornado/internal/stats"
)

// AnnualLossMonteCarlo estimates a graph system's one-year data-loss
// probability by direct simulation of the §5.1 model: each trial fails
// every device independently with probability afr and asks the decoder
// whether data survived. It is the end-to-end cross-check of Equation
// (3)'s composition (binomial weights × conditional failure profile) —
// both must converge to the same number.
func AnnualLossMonteCarlo(g *graph.Graph, afr float64, trials int64, seed uint64, workers int) (stats.Proportion, error) {
	if afr < 0 || afr > 1 {
		return stats.Proportion{}, fmt.Errorf("sim: afr %v out of [0,1]", afr)
	}
	trials = int64Or(trials, 10000)
	workers = defaultWorkers(workers)
	per := trials / int64(workers)
	rem := trials % int64(workers)

	var mu sync.Mutex
	var agg stats.Proportion
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if int64(w) < rem {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(worker int, n int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xAFA<<20|uint64(worker)))
			d := decode.New(g)
			erased := make([]int, 0, g.Total)
			var hits int64
			for t := int64(0); t < n; t++ {
				erased = erased[:0]
				for v := 0; v < g.Total; v++ {
					if rng.Float64() < afr {
						erased = append(erased, v)
					}
				}
				if len(erased) > 0 && !d.Recoverable(erased) {
					hits++
				}
			}
			mu.Lock()
			agg.Add(hits, n)
			mu.Unlock()
		}(w, n)
	}
	wg.Wait()
	return agg, nil
}
