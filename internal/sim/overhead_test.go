package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

func TestOverheadMirrorExact(t *testing.T) {
	// For a mirrored system, a prefix reconstructs iff it covers every
	// pair (either member). The minimum is between n (one per pair, best
	// case) and 2n-? … sanity-check the support of the distribution.
	g := mirrorGraph(6)
	res, err := Overhead(g, OverheadOptions{Trials: 4000, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total != 4000 {
		t.Fatalf("trials = %d", res.Counts.Total)
	}
	for v, c := range res.Counts.Counts {
		if c > 0 && (v < 6 || v > 11) {
			// Coupon-collector over 6 pairs from 12 drives: at least 6
			// retrievals; the worst case needs at most 11 (after 11
			// drives only one is missing, and its pair was surely seen).
			t.Errorf("impossible retrieval count %d observed", v)
		}
	}
	if m := res.Mean(); m < 6 || m > 11 {
		t.Errorf("mean = %v", m)
	}
}

func TestOverheadCouponCollectorMean(t *testing.T) {
	// The mirrored minimum-prefix length is the number of draws (without
	// replacement) needed to touch all n pairs. For n=2 pairs (4 drives)
	// the exact expectation is 2 + P(3rd needed) + … computable directly:
	// orders of 4 distinct drives; prefix covers both pairs. E = 2·(1/3) +
	// 3·(2/3)·(1/2)·… — just brute-force it.
	g := mirrorGraph(2)
	// Enumerate all 24 permutations exactly.
	perm := []int{0, 1, 2, 3}
	var total, count float64
	var rec func(k int)
	used := make([]bool, 4)
	cur := make([]int, 0, 4)
	d := decode.New(g)
	rec = func(k int) {
		if k == 4 {
			order := append([]int(nil), cur...)
			n, ok := minimumPrefix(d, order)
			if !ok {
				t.Fatal("mirror not decodable")
			}
			total += float64(n)
			count++
			return
		}
		for _, v := range perm {
			if !used[v] {
				used[v] = true
				cur = append(cur, v)
				rec(k + 1)
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec(0)
	want := total / count

	res, err := Overhead(g, OverheadOptions{Trials: 60000, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mean(); math.Abs(got-want) > 0.03 {
		t.Errorf("sampled mean %v, exact %v", got, want)
	}
}

func TestOverheadTornadoShape(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Overhead(g, OverheadOptions{Trials: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Literature shape: overhead between 1.0 (MDS) and ~1.5 for small
	// LDPC graphs; the median must be below the paper's 50%-profile
	// numbers (61-62) because the minimum prefix ignores wasted blocks.
	if oh := res.MeanOverhead(); oh < 1.0 || oh > 1.6 {
		t.Errorf("mean overhead = %v", oh)
	}
	if q := res.Quantile(0.5); q < g.Data || q > 70 {
		t.Errorf("median retrieval count = %d", q)
	}
	if res.Quantile(0.99) < res.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestOverheadDeterministicSeed(t *testing.T) {
	g := mirrorGraph(4)
	a, err := Overhead(g, OverheadOptions{Trials: 2000, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Overhead(g, OverheadOptions{Trials: 2000, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Counts.Counts {
		if a.Counts.Counts[v] != b.Counts.Counts[v] {
			t.Fatalf("bin %d differs with same seed", v)
		}
	}
}

func TestOverheadBrokenGraph(t *testing.T) {
	// A graph with an uncovered... coverage is enforced by Validate, so
	// build a decodable-never case: data node whose only check shares a
	// closed pair — full set IS decodable there. Instead corrupt by
	// erasing... simplest: a graph whose full block set is trivially
	// decodable can't fail. Use minimumPrefix directly with a wrong-size
	// order to assert the failure path of Overhead is unreachable for
	// valid graphs.
	b := graph.NewBuilder(2)
	r := b.AddLevel(0, 2, 2)
	g := b.Graph()
	g.SetNeighbors(r, []int{0, 1})
	g.SetNeighbors(r+1, []int{0, 1})
	res, err := Overhead(g, OverheadOptions{Trials: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Data nodes must be retrieved directly (checks can never recover a
	// closed pair), so every trial needs both data nodes in the prefix.
	for v, c := range res.Counts.Counts {
		if c > 0 && v < 2 {
			t.Errorf("retrieval count %d impossible for the closed pair", v)
		}
	}
}

func TestMinimumPrefixMonotone(t *testing.T) {
	g := mirrorGraph(4)
	d := decode.New(g)
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 50; trial++ {
		order := rng.Perm(g.Total)
		n, ok := minimumPrefix(d, order)
		if !ok {
			t.Fatal("mirror undecodable")
		}
		// The returned prefix decodes; one shorter does not.
		if !d.Recoverable(order[n:]) {
			t.Fatalf("prefix %d does not decode", n)
		}
		if n > 0 && d.Recoverable(order[n-1:]) {
			t.Fatalf("prefix %d is not minimal", n)
		}
	}
}

func BenchmarkOverheadTrial(b *testing.B) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		b.Fatal(err)
	}
	d := decode.New(g)
	rng := rand.New(rand.NewPCG(1, 1))
	order := make([]int, g.Total)
	for i := range order {
		order[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.Shuffle(len(order), func(x, y int) { order[x], order[y] = order[y], order[x] })
		if _, ok := minimumPrefix(d, order); !ok {
			b.Fatal("undecodable")
		}
	}
}
