package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/graph"
	"tornado/internal/raid"
	"tornado/internal/reliability"
)

// TestAnnualLossMatchesEquation3 cross-validates the §5.1 analysis end to
// end: direct simulation of independent device failures against the
// Equation (2)–(3) composition, on the mirrored system whose conditional
// profile is known in closed form. A high AFR makes losses frequent enough
// to measure tightly.
func TestAnnualLossMatchesEquation3(t *testing.T) {
	const pairs, afr = 8, 0.15
	g := mirrorGraph(pairs)
	want := reliability.SystemFailure(2*pairs, afr, func(k int) float64 {
		return raid.MirroredFailGivenK(pairs, k)
	})
	got, err := AnnualLossMonteCarlo(g, afr, 60000, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := got.Wilson(3.5) // wide interval: this must not flake
	if want < lo || want > hi {
		t.Errorf("analytic %v outside simulated interval [%v, %v] (est %v)", want, lo, hi, got.Estimate())
	}
}

func TestAnnualLossEdgeCases(t *testing.T) {
	g := mirrorGraph(4)
	p, err := AnnualLossMonteCarlo(g, 0, 1000, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hits != 0 {
		t.Errorf("afr=0 produced %d losses", p.Hits)
	}
	p, err = AnnualLossMonteCarlo(g, 1, 1000, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hits != p.Trials {
		t.Errorf("afr=1 survived %d times", p.Trials-p.Hits)
	}
	if _, err := AnnualLossMonteCarlo(g, -0.1, 10, 1, 1); err == nil {
		t.Error("negative afr accepted")
	}
	if _, err := AnnualLossMonteCarlo(g, 1.5, 10, 1, 1); err == nil {
		t.Error("afr>1 accepted")
	}
}

func TestAnnualLossDefaultTrials(t *testing.T) {
	g := mirrorGraph(2)
	p, err := AnnualLossMonteCarlo(g, 0.1, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trials != 10000 {
		t.Errorf("default trials = %d", p.Trials)
	}
}

// TestAnnualLossOnTornadoProfileConsistency: for a tornado graph at an
// elevated AFR, simulation and the profile-composed analytic must agree.
func TestAnnualLossOnTornadoProfile(t *testing.T) {
	g := tornadoForAnnual(t)
	const afr = 0.2
	prof, err := FailureProfile(g, ProfileOptions{Trials: 20000, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := reliability.SystemFailure(g.Total, afr, prof.FailFraction)
	got, err := AnnualLossMonteCarlo(g, afr, 30000, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Estimate()-want) > 0.02 {
		t.Errorf("simulated %v vs composed %v", got.Estimate(), want)
	}
}

// tornadoForAnnual builds a screened tornado graph for the annual-loss
// consistency test.
func tornadoForAnnual(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 3)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}
