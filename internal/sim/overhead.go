package sim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"tornado/internal/decode"
	"tornado/internal/graph"
	"tornado/internal/stats"
)

// OverheadOptions tunes the reconstruction-overhead measurement — the
// experiment the paper defers to future work (§5.2, §6) and credits to
// Plank's methodology: "a testing system would start with a certain number
// of online nodes and retrieve nodes until the graph can be reconstructed".
type OverheadOptions struct {
	// Trials is the number of random retrieval orders sampled. Default
	// DefaultOverheadTrials.
	Trials int64
	// Workers bounds goroutines; default GOMAXPROCS.
	Workers int
	// Seed drives the sampled retrieval orders.
	Seed uint64
}

func (o OverheadOptions) normalize() OverheadOptions {
	o.Trials = int64Or(o.Trials, DefaultOverheadTrials)
	o.Workers = defaultWorkers(o.Workers)
	return o
}

// OverheadResult is the distribution of the minimum number of blocks that
// had to be retrieved, in a uniformly random order, before the data could
// be reconstructed.
type OverheadResult struct {
	GraphName string
	Data      int
	Total     int
	// Counts is a histogram over retrieval counts 0..Total.
	Counts *stats.Histogram
}

// Mean returns the average retrieval count.
func (r OverheadResult) Mean() float64 { return r.Counts.MeanValue() }

// MeanOverhead returns Mean divided by the data block count — the
// "overhead" figure of the LDPC storage literature (1.0 would be an MDS
// code; the paper cites <1.2 for large graphs and measures 1.27–1.29 for
// its 96-node graphs by the 50%-profile method).
func (r OverheadResult) MeanOverhead() float64 { return r.Mean() / float64(r.Data) }

// Quantile returns the retrieval count at the given quantile.
func (r OverheadResult) Quantile(q float64) int { return r.Counts.Quantile(q) }

// Overhead measures g's reconstruction overhead: each trial draws a random
// permutation of the node IDs (the order blocks arrive from devices) and
// binary-searches the shortest prefix that reconstructs all data.
//
// Monotonicity makes the per-trial binary search sound: supersets of a
// decodable block set are decodable.
func Overhead(g *graph.Graph, opts OverheadOptions) (OverheadResult, error) {
	return OverheadCtx(context.Background(), g, opts)
}

// OverheadCtx is Overhead with cancellation, checked between trials in
// each worker.
func OverheadCtx(ctx context.Context, g *graph.Graph, opts OverheadOptions) (OverheadResult, error) {
	opts = opts.normalize()
	res := OverheadResult{
		GraphName: g.Name,
		Data:      g.Data,
		Total:     g.Total,
		Counts:    stats.NewHistogram(g.Total + 1),
	}

	per := opts.Trials / int64(opts.Workers)
	rem := opts.Trials % int64(opts.Workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for w := 0; w < opts.Workers; w++ {
		n := per
		if int64(w) < rem {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(worker int, trials int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opts.Seed, 0xC0DE<<16|uint64(worker)))
			d := decode.New(g)
			local := stats.NewHistogram(g.Total + 1)
			order := make([]int, g.Total)
			for i := range order {
				order[i] = i
			}
			for t := int64(0); t < trials; t++ {
				if t%1024 == 0 && ctx.Err() != nil {
					return
				}
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				n, ok := minimumPrefix(d, order)
				if !ok {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sim: full block set not decodable — graph is broken")
					}
					mu.Unlock()
					return
				}
				local.Observe(n)
			}
			mu.Lock()
			for v, c := range local.Counts {
				res.Counts.Counts[v] += c
			}
			res.Counts.Total += local.Total
			mu.Unlock()
		}(w, n)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// minimumPrefix binary-searches the shortest decodable prefix of the
// retrieval order. order must contain every node exactly once.
func minimumPrefix(d *decode.Decoder, order []int) (int, bool) {
	total := len(order)
	decodable := func(n int) bool {
		// Present = order[:n]; erased = order[n:].
		return d.Recoverable(order[n:])
	}
	if !decodable(total) {
		return 0, false
	}
	lo, hi := 0, total // lo: not necessarily decodable; hi: decodable
	for lo < hi {
		mid := (lo + hi) / 2
		if decodable(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, true
}
