package sim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
	"tornado/internal/stats"
)

// ProfileOptions tunes the reconstruction-failure profile (paper §3: "the
// fraction of failed reconstructions for a large number of test cases").
type ProfileOptions struct {
	// Trials is the Monte Carlo sample count per offline-node count. The
	// paper used 10–34 million per point (962,144,153 cases, 34 CPU-days);
	// the default of DefaultProfileTrials preserves the curve shape on a
	// laptop.
	Trials int64
	// ExhaustiveLimit switches a point to exact enumeration when
	// C(total, k) is at most this bound. Default DefaultExhaustiveLimit.
	ExhaustiveLimit int64
	// MinK and MaxK bound the examined offline counts; MaxK=0 means the
	// whole range up to Total.
	MinK, MaxK int
	// Workers is the number of goroutines; default GOMAXPROCS.
	Workers int
	// Seed drives all sampling; a fixed seed reproduces the profile.
	Seed uint64
}

func (o ProfileOptions) normalize(total int) ProfileOptions {
	o.Trials = int64Or(o.Trials, DefaultProfileTrials)
	o.ExhaustiveLimit = int64Or(o.ExhaustiveLimit, DefaultExhaustiveLimit)
	o.MinK = intOr(o.MinK, 1)
	if o.MaxK <= 0 || o.MaxK > total {
		o.MaxK = total
	}
	o.Workers = defaultWorkers(o.Workers)
	return o
}

// Profile holds the measured failure fraction for each number of offline
// nodes. Entry k answers: with exactly k randomly chosen devices offline,
// what fraction of cases lose data?
type Profile struct {
	GraphName string
	Total     int // nodes in the graph
	Data      int // data nodes
	Fail      []stats.Proportion
	Exact     []bool // Fail[k] computed by full enumeration rather than sampling
}

// FailureProfile measures g's reconstruction-failure profile.
func FailureProfile(g *graph.Graph, opts ProfileOptions) (*Profile, error) {
	return FailureProfileCtx(context.Background(), g, opts)
}

// FailureProfileCtx is FailureProfile with cancellation, checked at
// combination-chunk boundaries inside each sampling worker.
func FailureProfileCtx(ctx context.Context, g *graph.Graph, opts ProfileOptions) (*Profile, error) {
	opts = opts.normalize(g.Total)
	p := &Profile{
		GraphName: g.Name,
		Total:     g.Total,
		Data:      g.Data,
		Fail:      make([]stats.Proportion, g.Total+1),
		Exact:     make([]bool, g.Total+1),
	}
	// k=0 is trivially exact: nothing missing.
	p.Fail[0] = stats.Proportion{Hits: 0, Trials: 1}
	p.Exact[0] = true

	for k := opts.MinK; k <= opts.MaxK; k++ {
		if c, ok := combin.BinomialInt64(g.Total, k); ok && c <= opts.ExhaustiveLimit {
			kr, err := ExhaustiveKCtx(ctx, g, k, 1, opts.Workers)
			if err != nil {
				return nil, err
			}
			p.Fail[k] = stats.Proportion{Hits: kr.FailureCount, Trials: kr.Tested}
			p.Exact[k] = true
			continue
		}
		prop, err := sampleK(ctx, g, k, opts)
		if err != nil {
			return nil, err
		}
		p.Fail[k] = prop
	}
	return p, nil
}

// sampleBlockSize is the deterministic unit of sampled profile work:
// trials split into fixed-size blocks with stream = block index. It
// matches the campaign's default profile shard size, so a FailureProfile
// point and a profile campaign over the same seed produce identical
// tallies.
const sampleBlockSize = 65536

// sampleK estimates the failure fraction for exactly k offline nodes by
// uniform random sampling. Work is split into fixed deterministic blocks
// (stream = block index) that a worker pool consumes, so the tally — an
// integer sum over blocks — is bit-identical at any worker count. The
// historical split (one stream per worker, trials divided among workers)
// made the estimate depend on GOMAXPROCS and silently dropped non-context
// worker errors.
func sampleK(ctx context.Context, g *graph.Graph, k int, opts ProfileOptions) (stats.Proportion, error) {
	if k < 1 || k > g.Total {
		return stats.Proportion{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	nBlocks := (opts.Trials + sampleBlockSize - 1) / sampleBlockSize
	props := make([]stats.Proportion, nBlocks)
	errs := make([]error, nBlocks)

	workers := opts.Workers
	if int64(workers) > nBlocks {
		workers = int(nBlocks)
	}
	ch := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range ch {
				n := min(sampleBlockSize, opts.Trials-b*sampleBlockSize)
				props[b], errs[b] = SampleStreamCtx(ctx, g, k, n, opts.Seed, uint64(b))
			}
		}()
	}
	for b := int64(0); b < nBlocks; b++ {
		ch <- b
	}
	close(ch)
	wg.Wait()
	var agg stats.Proportion
	for b := range props {
		// First error in block order: deterministic propagation, and
		// non-context errors are no longer swallowed.
		if errs[b] != nil {
			return stats.Proportion{}, errs[b]
		}
		agg.Add(props[b].Hits, props[b].Trials)
	}
	return agg, nil
}

// SampleStreamCtx draws trials uniformly random k-subsets from the
// deterministic RNG stream identified by (seed, k, stream) and tallies the
// unrecoverable ones. It is the unit of work of both a FailureProfileCtx
// worker (stream = worker index) and a Monte Carlo campaign shard (stream =
// shard index): fixed arguments always reproduce the same tally, so a
// resumed campaign is bit-identical to an uninterrupted one. Cancellation
// is honored at combination-chunk boundaries, and progress counters are
// flushed to Metrics() at the same cadence.
func SampleStreamCtx(ctx context.Context, g *graph.Graph, k int, trials int64, seed, stream uint64) (stats.Proportion, error) {
	if k < 1 || k > g.Total {
		return stats.Proportion{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	reg := Metrics()
	mcTrials := reg.Counter(MetricMCTrials)
	mcFails := reg.Counter(MetricMCFailures)

	rng := rand.New(rand.NewPCG(seed, uint64(k)<<32|stream))
	kn := decode.NewKernel(decode.NewCSR(g))
	idx := make([]int, k)
	scratch := make(map[int]bool, k)
	var hits int64
	var lastFlushTrials, lastFlushHits int64
	for i := int64(0); i < trials; i++ {
		if i%cancelCheckInterval == 0 {
			if ctx.Err() != nil {
				return stats.Proportion{}, ctx.Err()
			}
			mcTrials.Add(i - lastFlushTrials)
			mcFails.Add(hits - lastFlushHits)
			lastFlushTrials, lastFlushHits = i, hits
		}
		combin.RandomSubset(idx, g.Total, rng, scratch)
		// idx is sorted, so idx[0] >= Data means all-check: trivially fine.
		if idx[0] < g.Data && !kn.Recoverable(idx) {
			hits++
		}
	}
	mcTrials.Add(trials - lastFlushTrials)
	mcFails.Add(hits - lastFlushHits)
	return stats.Proportion{Hits: hits, Trials: trials}, nil
}

// FailFraction returns the measured failure fraction with exactly k nodes
// offline. k >= Total reports 1. An unmeasured point (outside the
// MinK..MaxK window) reports the nearest measured point below it — the
// true curve is nondecreasing in k, so this is a conservative monotone
// extension — or 0 when nothing below was measured.
func (p *Profile) FailFraction(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= p.Total {
		return 1
	}
	for ; k >= 0; k-- {
		if p.Fail[k].Trials > 0 {
			return p.Fail[k].Estimate()
		}
	}
	return 0
}

// FirstObservedFailure returns the smallest offline count whose measured
// failure fraction is nonzero, or 0 when none was observed.
func (p *Profile) FirstObservedFailure() int {
	for k := 1; k <= p.Total; k++ {
		if k < len(p.Fail) && p.Fail[k].Hits > 0 {
			return k
		}
	}
	return 0
}

// AvgNodesToReconstruct returns the expected minimum number of online nodes
// needed for reconstruction — the paper's "average number of nodes capable
// of reconstructing the data" (Tables 1–4). With T the online-count
// threshold, E[T] = Σ_m P(T > m) and P(T > m) is the failure fraction with
// m nodes online, i.e. Total−m offline.
func (p *Profile) AvgNodesToReconstruct() float64 {
	sum := 0.0
	for m := 0; m < p.Total; m++ {
		sum += p.FailFraction(p.Total - m)
	}
	return sum
}

// AvgToReconstructRatio is AvgNodesToReconstruct divided by the data node
// count — the parenthesized ratio the paper prints next to the average
// (e.g. "73.77 (1.53)").
func (p *Profile) AvgToReconstructRatio() float64 {
	if p.Data == 0 {
		return 0
	}
	return p.AvgNodesToReconstruct() / float64(p.Data)
}

// NodesForSuccessProbability returns the minimum number of online nodes
// whose measured reconstruction success probability reaches prob. Table 6
// uses prob = 0.5 ("the minimum number of nodes that provide a 50%
// probability of being able to reconstruct the stripe").
func (p *Profile) NodesForSuccessProbability(prob float64) int {
	for m := 0; m <= p.Total; m++ {
		if 1-p.FailFraction(p.Total-m) >= prob {
			return m
		}
	}
	return p.Total
}

// Overhead returns NodesForSuccessProbability(0.5) divided by the data node
// count — Table 6's overhead column.
func (p *Profile) Overhead() float64 {
	if p.Data == 0 {
		return 0
	}
	return float64(p.NodesForSuccessProbability(0.5)) / float64(p.Data)
}
