package sim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"
	"sync"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
	"tornado/internal/stats"
)

// This file implements the archival-scale certification sampler: a
// stratified Monte Carlo estimate of the failure fraction at one erasure
// cardinality, for graphs far beyond the exhaustive rank space
// (C(100000, 5) ≈ 6.9e21). Trials are drawn uniformly; each pattern is
// classified by its erasure structure — the maximum same-check collision
// count — and most patterns are resolved by proof rather than decoding:
//
//   - collision count <= 1: every erased node is the only erasure its
//     checks see, so peeling rule 1 (and rule 2 for erased checks)
//     recovers everything in one step. Provably recoverable, no decode.
//   - otherwise, the rescue certificate: if every erased data node has a
//     present parent check with no other erased member, each is rescued
//     directly. Provably recoverable, no decode.
//
// Only patterns failing both proofs — a small tail at archival scale —
// are decoded, batched 64 at a time through the bit-sliced kernel.
// Because sampling is uniform and strata are tallied after the fact
// (post-stratification), the pooled tally is the plain uniform estimator
// and Wilson intervals apply to it directly.

// Defaults for SampledOptions, following the package option idiom.
const (
	// DefaultSampledEpsilon is the target 95% Wilson CI half-width: the
	// sampler draws rounds of blocks until the pooled interval is at least
	// this tight (~19.2k trials when no failure is observed).
	DefaultSampledEpsilon = 1e-4
	// DefaultSampledMaxTrials caps a sampled certification even when the
	// epsilon target is not reached (a failure-rich graph at a loose
	// epsilon would otherwise run unbounded).
	DefaultSampledMaxTrials = 4 << 20
	// DefaultSampledBlock is the trial count of one deterministic block —
	// the unit of parallelism and of campaign sharding. It matches the
	// campaign's default shard size so a sim-level run and a campaign over
	// the same seed produce identical tallies.
	DefaultSampledBlock = 65536
)

// sampledSeedDomain separates the sampled certification RNG streams from
// SampleStreamCtx's profile streams, so running both against one seed
// never correlates their draws.
const sampledSeedDomain = 0x5ca1ab1e

// SampledOptions tunes SampleStratifiedCtx.
type SampledOptions struct {
	// Epsilon is the planned-precision target: sampling stops at the first
	// round boundary where the pooled 95% Wilson CI half-width is <=
	// Epsilon. Default DefaultSampledEpsilon; negative disables the rule
	// (run to MaxTrials).
	Epsilon float64
	// MaxTrials caps the total trials. Default DefaultSampledMaxTrials.
	MaxTrials int64
	// BlockSize is the trials per deterministic block. Default
	// DefaultSampledBlock.
	BlockSize int64
	// MaxWitnesses caps the failing patterns recorded verbatim (the tally
	// stays exact regardless). Default DefaultMaxFailures.
	MaxWitnesses int
	// Workers is the number of goroutines; default GOMAXPROCS. The result
	// is bit-identical at any worker count.
	Workers int
	// Seed drives all sampling; a fixed seed reproduces the result.
	Seed uint64
}

func (o SampledOptions) normalize() SampledOptions {
	if o.Epsilon == 0 {
		o.Epsilon = DefaultSampledEpsilon
	}
	o.MaxTrials = int64Or(o.MaxTrials, DefaultSampledMaxTrials)
	o.BlockSize = int64Or(o.BlockSize, DefaultSampledBlock)
	o.MaxWitnesses = intOr(o.MaxWitnesses, DefaultMaxFailures)
	o.Workers = defaultWorkers(o.Workers)
	return o
}

// SampledRound records the pooled precision after one stopping-rule round.
type SampledRound struct {
	Trials    int64   // cumulative trials after the round
	HalfWidth float64 // pooled 95% Wilson CI half-width at that point
}

// SampledResult is the outcome of a sampled certification at one
// cardinality.
type SampledResult struct {
	K      int
	Tally  stats.Proportion   // pooled failure tally (uniform estimator)
	Strata []stats.Proportion // Strata[s]: trials whose max same-check collision count is s (s capped at K)
	// Screened counts trials resolved by the structural proofs alone —
	// never decoded. The screening rejection rate is Screened/Trials.
	Screened  int64
	Rounds    []SampledRound // precision trajectory, one entry per round
	Witnesses [][]int        // failing patterns (ascending node IDs), capped at MaxWitnesses
}

// Estimate returns the pooled point estimate of the failure fraction.
func (r *SampledResult) Estimate() float64 { return r.Tally.Estimate() }

// Wilson returns the pooled 95% Wilson interval.
func (r *SampledResult) Wilson() (lo, hi float64) { return r.Tally.Wilson(1.96) }

// HalfWidth returns the pooled 95% Wilson CI half-width achieved.
func (r *SampledResult) HalfWidth() float64 { return r.Tally.WilsonHalfWidth(1.96) }

// ScreenRate returns the fraction of trials resolved without decoding.
func (r *SampledResult) ScreenRate() float64 {
	if r.Tally.Trials == 0 {
		return 0
	}
	return float64(r.Screened) / float64(r.Tally.Trials)
}

// SampledPlan lays out the deterministic round schedule for a trial
// budget: blocks of blockSize trials (the last one short), grouped into
// doubling rounds of 1, 2, 4, 8, … blocks. rounds[i] is the half-open block
// range of round i. The schedule is a pure function of (maxTrials,
// blockSize), so the sim driver, the campaign planner, and a resumed
// campaign all agree on where the stopping rule may fire.
func SampledPlan(maxTrials, blockSize int64) (nBlocks int64, rounds [][2]int64) {
	if maxTrials <= 0 || blockSize <= 0 {
		return 0, nil
	}
	nBlocks = (maxTrials + blockSize - 1) / blockSize
	size := int64(1)
	for lo := int64(0); lo < nBlocks; {
		hi := min(lo+size, nBlocks)
		rounds = append(rounds, [2]int64{lo, hi})
		lo = hi
		size *= 2
	}
	return nBlocks, rounds
}

// SampledBlockTrials returns the trial count of block b under the
// SampledPlan(maxTrials, blockSize) schedule — blockSize for every block
// but a short final one. Exported so the campaign planner shards a sampled
// spec into exactly the blocks the sim driver would run.
func SampledBlockTrials(maxTrials, blockSize, b int64) int64 {
	return min(blockSize, maxTrials-b*blockSize)
}

// SampledBlock is the tally of one deterministic sampled block: the unit
// of work of both a SampleStratifiedCtx worker and a sampled campaign
// shard. Fixed (graph, k, trials, seed, stream) always reproduce the same
// block.
type SampledBlock struct {
	Strata    []stats.Proportion // index: max same-check collision count, capped at k
	Screened  int64
	Witnesses [][]int
}

// Tally pools the block's strata.
func (b SampledBlock) Tally() stats.Proportion { return stats.Pool(b.Strata...) }

// StratifiedSampler holds the reusable state of the sampled certification
// hot loop: the bit-sliced kernel, the epoch-stamped collision counters,
// and the 64-lane pattern staging buffers. One sampler serves one
// goroutine; after warm-up, SampleBlock's trial loop performs no
// steady-state allocations (witness recording aside).
type StratifiedSampler struct {
	c  *decode.CSR
	sk *decode.SlicedKernel

	count []int32 // count[r]: erased members of check r (+1 if r erased), valid when stamp[r] == epoch
	stamp []int32
	epoch int32

	idx     []int // current k-subset, ascending
	scratch map[int]bool

	batch     []int32 // staged patterns, lane-major: batch[lane*k : lane*k+k]
	batchLen  int     // staged lane count
	pendStrat []int32 // stratum of each staged lane
}

// NewStratifiedSampler returns a sampler over c. The CSR may be shared
// read-only across samplers.
func NewStratifiedSampler(c *decode.CSR) *StratifiedSampler {
	return &StratifiedSampler{
		c:         c,
		sk:        decode.NewSlicedKernel(c),
		count:     make([]int32, c.Total),
		stamp:     make([]int32, c.Total),
		scratch:   make(map[int]bool, 8),
		pendStrat: make([]int32, decode.Lanes),
	}
}

// SampleBlock draws trials patterns of cardinality k from the
// deterministic stream (seed, k, stream) and returns the stratified
// tally. Cancellation is honored at combination-chunk boundaries.
func (s *StratifiedSampler) SampleBlock(ctx context.Context, k int, trials int64, seed, stream uint64, maxWitnesses int) (SampledBlock, error) {
	total := int(s.c.Total)
	if k < 1 || k > total {
		return SampledBlock{}, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, total)
	}
	reg := Metrics()
	mcTrials := reg.Counter(MetricMCTrials)
	mcFails := reg.Counter(MetricMCFailures)

	if cap(s.idx) < k {
		s.idx = make([]int, k)
		s.batch = make([]int32, decode.Lanes*k)
	}
	s.idx = s.idx[:k]
	s.batchLen = 0

	rng := rand.New(rand.NewPCG(seed^sampledSeedDomain, uint64(k)<<32|stream))
	blk := SampledBlock{Strata: make([]stats.Proportion, k+1)}
	var done, hits, lastFlushTrials, lastFlushHits int64
	flushHits := func() {
		// Kernel batches settle lagging trials; recompute hits from strata.
		hits = 0
		for _, p := range blk.Strata {
			hits += p.Hits
		}
	}
	for i := int64(0); i < trials; i++ {
		if i%cancelCheckInterval == 0 {
			if ctx.Err() != nil {
				return SampledBlock{}, ctx.Err()
			}
			flushHits()
			mcTrials.Add(done - lastFlushTrials)
			mcFails.Add(hits - lastFlushHits)
			lastFlushTrials, lastFlushHits = done, hits
		}
		combin.RandomSubset(s.idx, total, rng, s.scratch)
		strat, certified := s.classify(k)
		if certified {
			blk.Strata[strat].Add(0, 1)
			blk.Screened++
			done++
			continue
		}
		lane := s.batchLen
		dst := s.batch[lane*k : lane*k+k]
		for j, v := range s.idx {
			dst[j] = int32(v)
		}
		s.pendStrat[lane] = int32(strat)
		s.batchLen++
		if s.batchLen == decode.Lanes {
			s.flushBatch(&blk, k, maxWitnesses)
			done += decode.Lanes
		}
	}
	s.flushBatch(&blk, k, maxWitnesses)
	flushHits()
	mcTrials.Add(trials - lastFlushTrials)
	mcFails.Add(hits - lastFlushHits)
	return blk, nil
}

// classify stamps the collision counters for the current k-subset and
// returns its stratum (the maximum same-check collision count, capped at
// k) plus whether one of the structural recoverability proofs applies.
func (s *StratifiedSampler) classify(k int) (strat int, certified bool) {
	s.epoch++
	epoch := s.epoch
	data := int(s.c.Data)
	maxC := int32(0)
	for _, v := range s.idx {
		for _, r := range s.c.Parents(int32(v)) {
			c := s.bump(r, epoch)
			if c > maxC {
				maxC = c
			}
		}
		if v >= data {
			c := s.bump(int32(v), epoch)
			if c > maxC {
				maxC = c
			}
		}
	}
	if maxC <= 1 {
		// Every erased node is the sole erasure its checks see: rule 1
		// rescues each erased data node directly, rule 2 recomputes each
		// erased check from its fully present members.
		return 1, true
	}
	strat = int(maxC)
	if strat > k {
		strat = k
	}
	// Rescue certificate: every erased data node has a parent check with
	// collision count exactly 1 — that check is present (an erased check
	// would count itself too) and sees no other erasure, so it rescues the
	// node directly regardless of peel order. idx is ascending, so data
	// nodes come first.
	for _, v := range s.idx {
		if v >= data {
			break
		}
		rescued := false
		for _, r := range s.c.Parents(int32(v)) {
			if s.count[r] == 1 {
				rescued = true
				break
			}
		}
		if !rescued {
			return strat, false
		}
	}
	return strat, true
}

// bump increments the epoch-stamped collision counter of check r.
func (s *StratifiedSampler) bump(r int32, epoch int32) int32 {
	if s.stamp[r] != epoch {
		s.stamp[r] = epoch
		s.count[r] = 1
	} else {
		s.count[r]++
	}
	return s.count[r]
}

// flushBatch decodes the staged lanes through the bit-sliced kernel and
// tallies each into its stratum.
func (s *StratifiedSampler) flushBatch(blk *SampledBlock, k, maxWitnesses int) {
	n := s.batchLen
	if n == 0 {
		return
	}
	s.sk.Reset()
	active := ^uint64(0)
	if n < decode.Lanes {
		active = (uint64(1) << n) - 1
	}
	s.sk.SetActive(active)
	for lane := 0; lane < n; lane++ {
		for _, v := range s.batch[lane*k : lane*k+k] {
			s.sk.Erase(int(v), uint64(1)<<lane)
		}
	}
	recovered := s.sk.Eval()
	for lane := 0; lane < n; lane++ {
		var hit int64
		if recovered&(uint64(1)<<lane) == 0 {
			hit = 1
			if len(blk.Witnesses) < maxWitnesses {
				w := make([]int, k)
				for i, v := range s.batch[lane*k : lane*k+k] {
					w[i] = int(v)
				}
				blk.Witnesses = append(blk.Witnesses, w)
			}
		}
		blk.Strata[s.pendStrat[lane]].Add(hit, 1)
	}
	s.batchLen = 0
}

// SampleStratified is SampleStratifiedCtx with context.Background.
func SampleStratified(g *graph.Graph, k int, opts SampledOptions) (*SampledResult, error) {
	return SampleStratifiedCtx(context.Background(), g, k, opts)
}

// SampleStratifiedCtx runs the sampled certification of cardinality k:
// deterministic blocks executed in doubling rounds, stopping at the first
// round boundary where the pooled 95% Wilson CI half-width reaches
// opts.Epsilon (or when opts.MaxTrials is exhausted). The result is
// bit-identical for a fixed seed at any worker count: blocks are fixed
// RNG streams, tallies are integer sums, witnesses merge in block order,
// and the stopping rule is evaluated only at round boundaries of the
// fixed SampledPlan schedule.
func SampleStratifiedCtx(ctx context.Context, g *graph.Graph, k int, opts SampledOptions) (*SampledResult, error) {
	if k < 1 || k > g.Total {
		return nil, fmt.Errorf("sim: cardinality %d out of range for %d nodes", k, g.Total)
	}
	opts = opts.normalize()
	c := decode.NewCSR(g)

	nBlocks, rounds := SampledPlan(opts.MaxTrials, opts.BlockSize)
	res := &SampledResult{K: k, Strata: make([]stats.Proportion, k+1)}

	workers := opts.Workers
	if int64(workers) > nBlocks {
		workers = int(nBlocks)
	}
	samplers := make([]*StratifiedSampler, workers)
	for i := range samplers {
		samplers[i] = NewStratifiedSampler(c)
	}

	blocks := make([]SampledBlock, nBlocks)
	errs := make([]error, nBlocks)
	for _, rd := range rounds {
		// Execute the round's blocks across the worker pool.
		ch := make(chan int64)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sp *StratifiedSampler) {
				defer wg.Done()
				for b := range ch {
					n := SampledBlockTrials(opts.MaxTrials, opts.BlockSize, b)
					blocks[b], errs[b] = sp.SampleBlock(ctx, k, n, opts.Seed, uint64(b), opts.MaxWitnesses)
				}
			}(samplers[w])
		}
		for b := rd[0]; b < rd[1]; b++ {
			ch <- b
		}
		close(ch)
		wg.Wait()
		// First error in block order, so cancellation reports are
		// deterministic too.
		for b := rd[0]; b < rd[1]; b++ {
			if errs[b] != nil {
				return nil, errs[b]
			}
		}
		for b := rd[0]; b < rd[1]; b++ {
			mergeSampledBlock(res, blocks[b], opts.MaxWitnesses)
		}
		res.Rounds = append(res.Rounds, SampledRound{Trials: res.Tally.Trials, HalfWidth: res.HalfWidth()})
		if opts.Epsilon > 0 && res.HalfWidth() <= opts.Epsilon {
			break
		}
	}
	return res, nil
}

// mergeSampledBlock folds one block into the running result.
func mergeSampledBlock(res *SampledResult, blk SampledBlock, maxWitnesses int) {
	for s, p := range blk.Strata {
		res.Strata[s].Add(p.Hits, p.Trials)
	}
	res.Screened += blk.Screened
	for _, w := range blk.Witnesses {
		if len(res.Witnesses) >= maxWitnesses {
			break
		}
		res.Witnesses = append(res.Witnesses, slices.Clone(w))
	}
	res.Tally = stats.Pool(res.Strata...)
}
