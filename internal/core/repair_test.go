package core

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/decode"
	"tornado/internal/defect"
)

func TestRepairDefectsCleansUnscreenedGraphs(t *testing.T) {
	// Most unscreened 96-node graphs carry closed pairs (§3.2); repair
	// should clean nearly all of them within the round budget.
	rng := rand.New(rand.NewPCG(2024, 3))
	repaired, tried := 0, 0
	for seed := 0; seed < 20; seed++ {
		g, err := GenerateUnscreened(DefaultParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(defect.ScanDataLevel(g, 3)) == 0 {
			continue // already clean
		}
		tried++
		ok, rewires := RepairDefects(g, 3, 64, rng)
		if !ok {
			continue
		}
		repaired++
		if rewires == 0 {
			t.Error("repair succeeded with zero rewires on a defective graph")
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("repaired graph invalid: %v", err)
		}
		if fs := defect.ScanDataLevel(g, 3); len(fs) != 0 {
			t.Errorf("repair claimed success but defects remain: %v", fs)
		}
	}
	if tried == 0 {
		t.Skip("no defective graphs drawn (astronomically unlikely)")
	}
	t.Logf("repaired %d/%d defective graphs", repaired, tried)
	if repaired*2 < tried {
		t.Errorf("repair succeeded on only %d/%d graphs", repaired, tried)
	}
}

func TestRepairedDefectsAreReallyGone(t *testing.T) {
	// After repair, previously-failing closed sets must decode.
	rng := rand.New(rand.NewPCG(99, 9))
	for seed := 0; seed < 5; seed++ {
		g, err := GenerateUnscreened(DefaultParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		before := defect.ScanDataLevel(g, 3)
		if len(before) == 0 {
			continue
		}
		ok, _ := RepairDefects(g, 3, 64, rng)
		if !ok {
			continue
		}
		d := decode.New(g)
		for _, f := range before {
			if !d.Recoverable(f.Lefts) {
				t.Errorf("set %v still unrecoverable after repair", f.Lefts)
			}
		}
		return
	}
	t.Skip("no repairable defective graph drawn")
}

func TestRepairZeroRoundsLeavesDefects(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for seed := 0; seed < 10; seed++ {
		g, err := GenerateUnscreened(DefaultParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(defect.ScanDataLevel(g, 3)) == 0 {
			continue
		}
		ok, rewires := RepairDefects(g, 3, 0, rng)
		if ok || rewires != 0 {
			t.Errorf("zero-round repair reported ok=%v rewires=%d", ok, rewires)
		}
		return
	}
	t.Skip("no defective graph drawn")
}

func TestRepairPreservesDataDegrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	g, err := GenerateUnscreened(DefaultParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	degBefore := make([]int, g.Data)
	for v := 0; v < g.Data; v++ {
		degBefore[v] = g.Degree(v)
	}
	RepairDefects(g, 3, 64, rng)
	for v := 0; v < g.Data; v++ {
		if g.Degree(v) != degBefore[v] {
			t.Errorf("data node %d degree changed %d → %d", v, degBefore[v], g.Degree(v))
		}
	}
}
