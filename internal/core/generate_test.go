package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"tornado/internal/decode"
	"tornado/internal/defect"
)

func TestPlanLevels96(t *testing.T) {
	plan, err := PlanLevels(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.DataNodes != 48 {
		t.Errorf("DataNodes = %d", plan.DataNodes)
	}
	// Paper layout: 48 | 24 | 12 | 6+6.
	want := []int{24, 12, 6, 6}
	if len(plan.CheckSizes) != len(want) {
		t.Fatalf("CheckSizes = %v, want %v", plan.CheckSizes, want)
	}
	for i := range want {
		if plan.CheckSizes[i] != want[i] {
			t.Fatalf("CheckSizes = %v, want %v", plan.CheckSizes, want)
		}
	}
	sum := 0
	for _, s := range plan.CheckSizes {
		sum += s
	}
	if sum != 48 {
		t.Errorf("check budget = %d, want 48", sum)
	}
}

func TestPlanLevels32(t *testing.T) {
	// The paper's smallest constructible graph: 32 total nodes →
	// 16 | 8 | 4+4 ("two final stages containing 4 nodes each ... using
	// the whole set of 8 left nodes").
	p := DefaultParams()
	p.TotalNodes = 32
	plan, err := PlanLevels(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 4, 4}
	if len(plan.CheckSizes) != len(want) {
		t.Fatalf("CheckSizes = %v, want %v", plan.CheckSizes, want)
	}
	for i := range want {
		if plan.CheckSizes[i] != want[i] {
			t.Fatalf("CheckSizes = %v, want %v", plan.CheckSizes, want)
		}
	}
}

func TestPlanLevelsErrors(t *testing.T) {
	p := DefaultParams()
	p.TotalNodes = 7
	if _, err := PlanLevels(p); err == nil {
		t.Error("odd TotalNodes accepted")
	}
	p.TotalNodes = 6
	if _, err := PlanLevels(p); err == nil {
		t.Error("tiny TotalNodes accepted")
	}
	// 20 total → 10 data → halving hits 5 (odd) before MinFinalLeft=2.
	p = DefaultParams()
	p.TotalNodes = 20
	p.MinFinalLeft = 2
	if _, err := PlanLevels(p); err == nil {
		t.Error("odd halving chain accepted")
	}
}

func TestGenerate96Structure(t *testing.T) {
	rng := rand.New(rand.NewPCG(2006, 1))
	g, st, err := Generate(DefaultParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts < 1 || st.Attempts != st.Discarded+1 {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if g.Total != 96 || g.Data != 48 || len(g.Levels) != 4 {
		t.Fatalf("structure: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two final stages must share the 12 left nodes of level 2.
	l2, l3, l4 := g.Levels[1], g.Levels[2], g.Levels[3]
	if l3.LeftFirst != l2.RightFirst || l4.LeftFirst != l2.RightFirst {
		t.Errorf("final stages do not share level-2 rights: %+v", g.Levels)
	}
	if l3.LeftCount != 12 || l4.LeftCount != 12 {
		t.Errorf("final stage left counts: %+v", g.Levels)
	}
	// Average data degree should be near the paper's 3.6.
	if avg := g.AvgDataDegree(); math.Abs(avg-3.6) > 0.5 {
		t.Errorf("AvgDataDegree = %v, want ≈3.6", avg)
	}
	// Screened: no small closed sets in the data level.
	if fs := defect.ScanDataLevel(g, 3); len(fs) != 0 {
		t.Errorf("screened graph still has defects: %v", fs)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(DefaultParams(), rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.EdgeCount(), b.EdgeCount())
	}
	for r := a.Data; r < a.Total; r++ {
		la, lb := a.LeftNeighbors(r), b.LeftNeighbors(r)
		if len(la) != len(lb) {
			t.Fatalf("right %d degree differs", r)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("right %d neighbors differ: %v vs %v", r, la, lb)
			}
		}
	}
}

func TestGenerate32(t *testing.T) {
	p := DefaultParams()
	p.TotalNodes = 32
	g, _, err := Generate(p, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 32 || g.Data != 16 {
		t.Fatalf("structure: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSurvivesAnySingleLoss(t *testing.T) {
	g, _, err := Generate(DefaultParams(), rand.New(rand.NewPCG(11, 4)))
	if err != nil {
		t.Fatal(err)
	}
	d := decode.New(g)
	for v := 0; v < g.Total; v++ {
		if !d.Recoverable([]int{v}) {
			t.Errorf("single loss of node %d unrecoverable", v)
		}
	}
}

func TestGenerateUnscreenedSkipsScreening(t *testing.T) {
	// Unscreened generation must produce a valid graph without the defect
	// gate (it may or may not contain defects — only validity is asserted).
	g, err := GenerateUnscreened(DefaultParams(), rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScreeningRejectsDefectiveGraphs(t *testing.T) {
	// Across many seeds, unscreened generation should eventually produce
	// at least one graph the screen rejects — demonstrating the gate does
	// real work (paper §3.2: "some of the graphs contained obvious
	// defects").
	rejected := 0
	for seed := uint64(0); seed < 60; seed++ {
		g, err := GenerateUnscreened(DefaultParams(), rand.New(rand.NewPCG(seed, 9)))
		if err != nil {
			t.Fatal(err)
		}
		if defect.Screen(g, 3) != nil {
			rejected++
		}
	}
	t.Logf("defect screen rejected %d/60 unscreened graphs", rejected)
	// This is probabilistic but extremely stable: with 48 data nodes of
	// average degree 3.6 the chance of zero defective graphs in 60 draws
	// is negligible. If this ever flakes, the screen is broken.
	if rejected == 0 {
		t.Error("screen rejected nothing across 60 random graphs; detection likely broken")
	}
}

// Property: generation succeeds and yields structurally valid, screened
// graphs for a range of sizes and seeds.
func TestQuickGenerateValid(t *testing.T) {
	f := func(seed uint64, sizeSel uint8) bool {
		p := DefaultParams()
		p.TotalNodes = []int{32, 64, 96, 128}[int(sizeSel)%4]
		rng := rand.New(rand.NewPCG(seed, 100))
		g, _, err := Generate(p, rng)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		return len(defect.ScanDataLevel(g, 3)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
