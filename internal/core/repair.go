package core

import (
	"math/rand/v2"

	"tornado/internal/defect"
	"tornado/internal/graph"
)

// RepairDefects removes closed data-node sets (paper §3.2: "these trivial
// cases are easily detected and corrected") by rewiring, for each finding,
// one member's edge from a sealing check to a check outside the sealed set.
// The rewire makes some check adjacent to exactly one member of the set,
// which opens it; the rescan loop catches any new closed set the rewire
// introduces. It reports whether the graph is clean after at most maxRounds
// rewires, and the number of rewires performed.
func RepairDefects(g *graph.Graph, maxSize, maxRounds int, rng *rand.Rand) (bool, int) {
	lv := g.Levels[0]
	rewires := 0
	for round := 0; round < maxRounds; round++ {
		fs := defect.ScanDataLevel(g, maxSize)
		if len(fs) == 0 {
			return true, rewires
		}
		f := fs[rng.IntN(len(fs))]
		if !rewireOpen(g, lv, f, rng) {
			return false, rewires
		}
		rewires++
	}
	return len(defect.ScanDataLevel(g, maxSize)) == 0, rewires
}

// rewireOpen breaks one closed set by moving a random member's edge off a
// random sealing check onto a level-0 check outside the sealed set that is
// not already a neighbor. It returns false when no candidate replacement
// exists (a pathologically dense level).
func rewireOpen(g *graph.Graph, lv graph.Level, f defect.Finding, rng *rand.Rand) bool {
	sealed := make(map[int]bool, len(f.Rights))
	for _, r := range f.Rights {
		sealed[r] = true
	}
	lefts := rng.Perm(len(f.Lefts))
	for _, i := range lefts {
		l := f.Lefts[i]
		// The member's checks inside the sealed set, one of which will be
		// dropped.
		var fromChoices []int
		for _, r := range g.Parents(l) {
			if sealed[int(r)] {
				fromChoices = append(fromChoices, int(r))
			}
		}
		if len(fromChoices) == 0 {
			continue
		}
		from := fromChoices[rng.IntN(len(fromChoices))]
		// Candidate replacements: level-0 checks outside the sealed set
		// that do not already reference l. Prefer low-degree checks so the
		// rewire does not starve other nodes' recovery options.
		var to []int
		for r := lv.RightFirst; r < lv.RightFirst+lv.RightCount; r++ {
			if sealed[r] || g.HasEdge(r, l) {
				continue
			}
			to = append(to, r)
		}
		if len(to) == 0 {
			continue
		}
		best := to[rng.IntN(len(to))]
		for _, r := range to {
			if g.RightDegree(r) < g.RightDegree(best) {
				best = r
			}
		}
		// Keep the donor check non-empty.
		if g.RightDegree(from) <= 1 {
			continue
		}
		g.RewireEdge(l, from, best)
		return true
	}
	return false
}
