package core

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"tornado/internal/combin"
	"tornado/internal/defect"
	"tornado/internal/graph"
)

// StreamThreshold is the TotalNodes count above which Generate switches to
// the streaming construction path. The sub-threshold generator keeps the
// historical wiring (and therefore the exact graphs the paper's golden
// tests pin); the streaming path trades that bit-compatibility for
// O(edges) time and memory at archival scale (n = 1k–100k).
const StreamThreshold = 1024

// pairKernelLimit is the largest C(data, 2) rank space the streaming
// screen walks with the revolving-door defect kernel. Beyond it (data
// > 4096) the screen switches to the O(edges) hashed closed-pair scan,
// which finds exactly the same size-2 defects — a pair is closed iff the
// two nodes have identical parent sets — but without walking the pair
// rank space, which the repair rescan loop would otherwise multiply.
const pairKernelLimit = int64(8) << 20

// PlanLevelsLarge computes a cascade layout for any even TotalNodes >= 8.
// Unlike PlanLevels it never requires a clean halving chain: level sizes
// ceil-halve, and a running check budget (the data count — the rate is
// fixed at 1/2) absorbs the rounding so the emitted sizes always sum
// exactly to the budget, with the remainder split across the final two
// Typhoon stages. On inputs where the halving chain is clean it returns
// the same plan as PlanLevels.
func PlanLevelsLarge(p Params) (LevelPlan, error) {
	if p.TotalNodes < 8 || p.TotalNodes%2 != 0 {
		return LevelPlan{}, fmt.Errorf("core: TotalNodes must be an even count >= 8, got %d", p.TotalNodes)
	}
	data := p.TotalNodes / 2
	plan := LevelPlan{DataNodes: data}
	left, rem := data, data
	for {
		h := (left + 1) / 2
		if h < p.MinFinalLeft || rem-h < 2 {
			// Final Typhoon stages: two right sets sharing the current left
			// range, absorbing the remaining check budget. rem <= left is an
			// invariant (each emission consumes at least half the budget the
			// level sizes were derived from), so both stages fit the range.
			a := (rem + 1) / 2
			b := rem - a
			if b < 1 {
				return LevelPlan{}, fmt.Errorf("core: check budget %d too small to split into final stages", rem)
			}
			plan.CheckSizes = append(plan.CheckSizes, a, b)
			return plan, nil
		}
		plan.CheckSizes = append(plan.CheckSizes, h)
		rem -= h
		left = h
	}
}

// generateStreamOnce builds one unscreened large-cascade graph: the
// PlanLevelsLarge layout wired level by level with the stub-shuffle
// configuration model. Everything is O(edges) — no per-edge rescan of the
// remaining stub table (the quadratic intermediate of wireRandom).
func generateStreamOnce(p Params, rng *rand.Rand) (*graph.Graph, error) {
	plan, err := PlanLevelsLarge(p)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(plan.DataNodes)
	type levelRange struct{ leftFirst, leftCount, rightFirst, rightCount int }
	var lvs []levelRange
	leftFirst, leftCount := 0, plan.DataNodes
	for i, size := range plan.CheckSizes {
		rf := b.AddLevel(leftFirst, leftCount, size)
		lvs = append(lvs, levelRange{leftFirst, leftCount, rf, size})
		if i < len(plan.CheckSizes)-2 {
			leftFirst, leftCount = rf, size
		}
	}
	g := b.Graph()
	g.Name = fmt.Sprintf("tornado-%d", p.TotalNodes)

	for _, lv := range lvs {
		if err := wireStream(g, p, lv.leftFirst, lv.leftCount, lv.rightFirst, lv.rightCount, rng); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated graph invalid: %w", err)
	}
	return g, nil
}

// wireStream realizes the level's degree sequences with a stub-array
// configuration model: every left node contributes one stub per edge, the
// stub array is shuffled once, and each right node claims its degree's
// worth of consecutive stubs. A duplicate left within a right's claim is
// repaired locally by swapping the offending stub with the first
// compatible stub later in the array, so the whole pass stays O(edges)
// amortized. The rare shuffle whose tail cannot absorb a repair is
// redrawn.
func wireStream(g *graph.Graph, p Params, leftFirst, leftCount, rightFirst, rightCount int, rng *rand.Rand) error {
	leftDegs, rightDegs, err := levelDegrees(p, leftCount, rightCount)
	if err != nil {
		return err
	}
	rng.Shuffle(len(leftDegs), func(i, j int) { leftDegs[i], leftDegs[j] = leftDegs[j], leftDegs[i] })
	rng.Shuffle(len(rightDegs), func(i, j int) { rightDegs[i], rightDegs[j] = rightDegs[j], rightDegs[i] })

	edges := 0
	for _, d := range leftDegs {
		edges += d
	}
	stubs := make([]int32, 0, edges)
	for i, d := range leftDegs {
		for j := 0; j < d; j++ {
			stubs = append(stubs, int32(i))
		}
	}

	// mark[l] holds the epoch (attempt, right) that last claimed left l, so
	// duplicate detection inside a claim is O(1) with no clearing between
	// rights or attempts.
	mark := make([]int32, leftCount)
	for i := range mark {
		mark[i] = -1
	}
	const shuffleAttempts = 32
	for attempt := 0; attempt < shuffleAttempts; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		if streamAssign(stubs, rightDegs, mark, int32(attempt*len(rightDegs))) {
			commitStubs(g, stubs, rightDegs, leftFirst, rightFirst)
			return nil
		}
	}
	return fmt.Errorf("core: could not match level [%d+%d → %d+%d] without duplicate edges in %d shuffles",
		leftFirst, leftCount, rightFirst, rightCount, shuffleAttempts)
}

// streamAssign walks the shuffled stub array assigning consecutive runs to
// rights, swapping duplicates forward out of the current run. It reports
// false when a duplicate cannot be repaired (only possible near the end of
// the array), in which case the caller reshuffles.
func streamAssign(stubs []int32, rightDegs []int, mark []int32, epochBase int32) bool {
	pos := 0
	for r, d := range rightDegs {
		epoch := epochBase + int32(r)
		for j := 0; j < d; j++ {
			if mark[stubs[pos+j]] == epoch {
				swapped := false
				for k := pos + d; k < len(stubs); k++ {
					if mark[stubs[k]] != epoch {
						stubs[pos+j], stubs[k] = stubs[k], stubs[pos+j]
						swapped = true
						break
					}
				}
				if !swapped {
					return false
				}
			}
			mark[stubs[pos+j]] = epoch
		}
		pos += d
	}
	return true
}

// commitStubs installs the validated stub assignment into the graph.
func commitStubs(g *graph.Graph, stubs []int32, rightDegs []int, leftFirst, rightFirst int) {
	pos := 0
	var lefts []int
	for r, d := range rightDegs {
		lefts = lefts[:0]
		for j := 0; j < d; j++ {
			lefts = append(lefts, leftFirst+int(stubs[pos+j]))
		}
		g.SetNeighbors(rightFirst+r, lefts)
		pos += d
	}
}

// repairDefectsStream is the screening loop of the streaming path. Full
// subset scanning is infeasible at archival scale — C(50000, 3) alone is
// ~2e13 — so the screen covers closed sets of size <= 2, which the paper
// identifies as the dominant defect class, using the defect kernel while
// the pair rank space is walkable and the exact hashed scan beyond.
// Repairs reuse rewireOpen, and the rescan loop catches any defect a
// rewire introduces.
func repairDefectsStream(g *graph.Graph, p Params, rng *rand.Rand) (bool, int) {
	maxSize := min(p.DefectScanSize, 2)
	lv := g.Levels[0]
	rewires := 0
	for round := 0; round < p.RepairRounds; round++ {
		fs := streamDefects(g, maxSize)
		if len(fs) == 0 {
			return true, rewires
		}
		f := fs[rng.IntN(len(fs))]
		if !rewireOpen(g, lv, f, rng) {
			return false, rewires
		}
		rewires++
	}
	return len(streamDefects(g, maxSize)) == 0, rewires
}

// streamDefects finds the closed data-node sets the streaming screen
// covers: the kernel-backed subset scan while C(data, 2) stays within
// pairKernelLimit, the hashed identical-parent-set scan beyond it.
func streamDefects(g *graph.Graph, maxSize int) []defect.Finding {
	if maxSize < 2 {
		return nil
	}
	if total, ok := combin.BinomialInt64(g.Data, 2); ok && total <= pairKernelLimit {
		return defect.ScanDataLevel(g, maxSize)
	}
	return closedPairsHash(g)
}

// ClosedDataPairs finds every closed data-node pair with the O(edges)
// hashed scan, regardless of graph size — the screen the streaming
// generation path applies at archival scale, exported for callers (CLIs,
// health checks) that need a defect warning on graphs whose pair rank
// space is far beyond the subset-scanning kernel.
func ClosedDataPairs(g *graph.Graph) []defect.Finding {
	return closedPairsHash(g)
}

// closedPairsHash finds every closed data-node pair in O(edges): a pair
// {a, b} is closed exactly when every check adjacent to either node sees
// both, i.e. the two nodes have identical parent sets. Data nodes are
// bucketed by a hash of their sorted parent list and buckets are verified
// exactly, so hash collisions cannot fabricate findings. Findings come out
// in ascending (a, b) order for deterministic repair.
func closedPairsHash(g *graph.Graph) []defect.Finding {
	type entry struct {
		node    int
		parents []int32 // sorted copy
	}
	buckets := make(map[uint64][]entry, g.Data)
	var fs []defect.Finding
	for v := 0; v < g.Data; v++ {
		ps := slices.Clone(g.Parents(v))
		slices.Sort(ps)
		h := uint64(14695981039346656037) // FNV-1a over the sorted parent IDs
		for _, p := range ps {
			h ^= uint64(uint32(p))
			h *= 1099511628211
		}
		for _, e := range buckets[h] {
			if slices.Equal(e.parents, ps) {
				rights := make([]int, len(ps))
				for i, p := range ps {
					rights[i] = int(p)
				}
				fs = append(fs, defect.Finding{Lefts: []int{e.node, v}, Rights: rights})
			}
		}
		buckets[h] = append(buckets[h], entry{node: v, parents: ps})
	}
	slices.SortFunc(fs, func(a, b defect.Finding) int { return slices.Compare(a.Lefts, b.Lefts) })
	return fs
}
