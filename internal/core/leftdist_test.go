package core

import (
	"math/rand/v2"
	"strings"
	"testing"

	"tornado/internal/dist"
)

func TestCustomLeftDistUsed(t *testing.T) {
	p := DefaultParams()
	p.LeftDist = func(maxDeg int) dist.Dist {
		return dist.Uniform(min(3, maxDeg))
	}
	g, err := GenerateUnscreened(p, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.Data; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("data node %d degree %d, want 3", v, g.Degree(v))
		}
	}
}

func TestCustomLeftDistTooWideRejected(t *testing.T) {
	p := DefaultParams()
	p.LeftDist = func(maxDeg int) dist.Dist {
		// Deliberately ignore the cap.
		return dist.Uniform(maxDeg + 5)
	}
	_, err := GenerateUnscreened(p, rand.New(rand.NewPCG(2, 2)))
	if err == nil || !strings.Contains(err.Error(), "max degree") {
		t.Errorf("err = %v, want max-degree rejection", err)
	}
}

func TestGenerateMaxAttemptsClamped(t *testing.T) {
	p := DefaultParams()
	p.MaxAttempts = 0 // must be clamped to at least one attempt
	if _, _, err := Generate(p, rand.New(rand.NewPCG(3, 3))); err != nil {
		t.Fatalf("MaxAttempts=0: %v", err)
	}
}

func TestGenerateNegativeRepairRounds(t *testing.T) {
	p := DefaultParams()
	p.RepairRounds = -5 // clamped to 0: accept only naturally clean graphs
	p.MaxAttempts = 500
	g, st, err := Generate(p, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Skip("no naturally clean graph in 500 attempts (rare but possible)")
	}
	if st.Rewires != 0 {
		t.Errorf("rewires = %d with repair disabled", st.Rewires)
	}
	if g.Validate() != nil {
		t.Error("invalid graph")
	}
}

func TestPlanLevelsMinFinalVariants(t *testing.T) {
	p := DefaultParams()
	p.TotalNodes = 96
	p.MinFinalLeft = 4 // deeper cascade: 24 | 12 | 6 | 3+3
	plan, err := PlanLevels(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{24, 12, 6, 3, 3}
	if len(plan.CheckSizes) != len(want) {
		t.Fatalf("CheckSizes = %v, want %v", plan.CheckSizes, want)
	}
	for i := range want {
		if plan.CheckSizes[i] != want[i] {
			t.Fatalf("CheckSizes = %v, want %v", plan.CheckSizes, want)
		}
	}
}

func TestGenerateDeepCascade(t *testing.T) {
	p := DefaultParams()
	p.MinFinalLeft = 4
	g, _, err := Generate(p, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Levels) != 5 {
		t.Fatalf("levels = %d, want 5", len(g.Levels))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
