// Package core implements the paper's primary contribution: the Tornado
// Code graph generator of §3.1, combining Luby's edge-degree construction
// with the Typhoon treatment of the final cascade stages, plus the
// structural defect screening of §3.3 that discards graphs containing small
// closed left-node sets.
//
// A generated code is a cascade of irregular bipartite graphs. For a
// 96-node rate-1/2 code the layout is
//
//	48 data | 24 checks | 12 checks | 6 + 6 checks (two stages sharing
//	                                  the 12 left nodes of the previous level)
//
// Left node degrees follow Luby's heavy-tail distribution; right node
// degrees follow a truncated Poisson. Both sides pass through the numeric
// solver of package dist, which scales the edge-degree distribution until
// the implied node counts are exact — the paper's fix for fragments such as
// "5 edges of degree 6" that appear at these small graph sizes.
package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"tornado/internal/dist"
	"tornado/internal/graph"
)

// Params configures graph generation. The zero value is not usable; start
// from DefaultParams.
type Params struct {
	// TotalNodes is the total node count (data + check). The code rate is
	// fixed at 1/2 as in the paper, so TotalNodes/2 are data nodes.
	TotalNodes int
	// HeavyTailD truncates Luby's heavy-tail left distribution at edge
	// degree D+1. D=16 yields the paper's average data-node degree of ≈3.6.
	HeavyTailD int
	// RightAlpha is the Poisson shape for right degrees; 0 selects E/R per
	// level automatically.
	RightAlpha float64
	// LeftDist overrides the left edge-degree distribution per level; it
	// receives the level's right node count (the hard cap on any left
	// node's degree) and must return a distribution whose maximum degree
	// respects it. Nil selects Luby's heavy tail truncated at HeavyTailD.
	// Used for the paper's "altered Tornado" variants (§4.3).
	LeftDist func(maxDegree int) dist.Dist
	// MinFinalLeft stops the cascade: when the next level would have fewer
	// than MinFinalLeft left nodes, the remaining parity budget is emitted
	// as two stages sharing the current left nodes (Typhoon, §3.1).
	MinFinalLeft int
	// DefectScanSize screens generated graphs for closed data-node sets up
	// to this size; findings are repaired by rewiring, and graphs that
	// cannot be repaired are discarded (§3.2–3.3).
	DefectScanSize int
	// RepairRounds bounds the number of defect-opening rewires attempted
	// per generated graph before it is discarded.
	RepairRounds int
	// MaxAttempts bounds regeneration when screening keeps rejecting.
	MaxAttempts int
}

// DefaultParams returns the parameters used throughout the paper's
// evaluation: 96 nodes, average data degree ≈3.6, defect screening to
// 3-node sets.
func DefaultParams() Params {
	return Params{
		TotalNodes:     96,
		HeavyTailD:     16,
		RightAlpha:     0,
		MinFinalLeft:   8,
		DefectScanSize: 3,
		RepairRounds:   64,
		MaxAttempts:    200,
	}
}

// GenStats reports how generation went.
type GenStats struct {
	Attempts  int // graphs generated including the accepted one
	Discarded int // graphs rejected by defect screening (unrepairable)
	Rewires   int // defect-opening rewires applied to the accepted graph
}

// LevelPlan describes the cascade layout for a node budget: the sizes of
// each check level and whether the final two share left nodes.
type LevelPlan struct {
	DataNodes  int
	CheckSizes []int // one entry per level; the last two always share left nodes
}

// PlanLevels computes the cascade layout for p. It returns an error when
// the halving chain hits an odd size before reaching MinFinalLeft.
func PlanLevels(p Params) (LevelPlan, error) {
	if p.TotalNodes < 8 || p.TotalNodes%2 != 0 {
		return LevelPlan{}, fmt.Errorf("core: TotalNodes must be an even count >= 8, got %d", p.TotalNodes)
	}
	data := p.TotalNodes / 2
	plan := LevelPlan{DataNodes: data}
	left := data
	for {
		if left%2 != 0 {
			return LevelPlan{}, fmt.Errorf("core: cascade reached odd level size %d; choose TotalNodes with a longer halving chain", left)
		}
		half := left / 2
		if half < p.MinFinalLeft {
			// Final Typhoon stages: two independent right sets of half/...
			// the remaining budget equals left, split into two stages.
			if half < 1 {
				return LevelPlan{}, fmt.Errorf("core: level size %d too small to split into final stages", left)
			}
			plan.CheckSizes = append(plan.CheckSizes, half, half)
			return plan, nil
		}
		plan.CheckSizes = append(plan.CheckSizes, half)
		left = half
	}
}

// Generate produces a defect-screened Tornado Code graph. The rng drives
// all randomness, so a fixed seed reproduces the same graph. Above
// StreamThreshold total nodes, construction and screening switch to the
// streaming path (see stream.go): O(edges) stub wiring instead of the
// quadratic per-edge stub scan, and closed-pair screening instead of the
// full subset scan. The sub-threshold path — and therefore every graph the
// paper's evaluation pins — is byte-identical to earlier releases.
func Generate(p Params, rng *rand.Rand) (*graph.Graph, GenStats, error) {
	var st GenStats
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.RepairRounds < 0 {
		p.RepairRounds = 0
	}
	stream := p.TotalNodes > StreamThreshold
	for st.Attempts < p.MaxAttempts {
		st.Attempts++
		var g *graph.Graph
		var err error
		if stream {
			g, err = generateStreamOnce(p, rng)
		} else {
			g, err = generateOnce(p, rng)
		}
		if err != nil {
			return nil, st, err
		}
		var ok bool
		var rewires int
		if stream {
			ok, rewires = repairDefectsStream(g, p, rng)
		} else {
			ok, rewires = RepairDefects(g, p.DefectScanSize, p.RepairRounds, rng)
		}
		if !ok {
			st.Discarded++
			continue
		}
		st.Rewires = rewires
		if err := g.Validate(); err != nil {
			return nil, st, fmt.Errorf("core: repaired graph invalid: %w", err)
		}
		return g, st, nil
	}
	return nil, st, fmt.Errorf("core: no defect-free graph in %d attempts", p.MaxAttempts)
}

// GenerateUnscreened produces a graph without defect screening — the
// paper's "initial graph failure experiences" baseline (§3.2), kept for the
// Table 2 comparison.
func GenerateUnscreened(p Params, rng *rand.Rand) (*graph.Graph, error) {
	if p.TotalNodes > StreamThreshold {
		return generateStreamOnce(p, rng)
	}
	return generateOnce(p, rng)
}

func generateOnce(p Params, rng *rand.Rand) (*graph.Graph, error) {
	plan, err := PlanLevels(p)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(plan.DataNodes)
	type levelRange struct{ leftFirst, leftCount, rightFirst, rightCount int }
	var lvs []levelRange
	leftFirst, leftCount := 0, plan.DataNodes
	for i, size := range plan.CheckSizes {
		rf := b.AddLevel(leftFirst, leftCount, size)
		lvs = append(lvs, levelRange{leftFirst, leftCount, rf, size})
		// Advance the left range except between the two shared final
		// stages.
		if i < len(plan.CheckSizes)-2 {
			leftFirst, leftCount = rf, size
		}
	}
	g := b.Graph()
	g.Name = fmt.Sprintf("tornado-%d", p.TotalNodes)

	for _, lv := range lvs {
		if err := wireLevel(g, p, lv.leftFirst, lv.leftCount, lv.rightFirst, lv.rightCount, rng); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated graph invalid: %w", err)
	}
	return g, nil
}

// wireLevel assigns edges between the level's left and right ranges using
// the configuration model: left degrees from the heavy-tail solver, right
// degrees from the Poisson solver constrained to the same edge total, then
// a random matching of edge stubs with duplicate-edge repair.
func wireLevel(g *graph.Graph, p Params, leftFirst, leftCount, rightFirst, rightCount int, rng *rand.Rand) error {
	leftDegs, rightDegs, err := levelDegrees(p, leftCount, rightCount)
	if err != nil {
		return err
	}

	const matchAttempts = 50
	for attempt := 0; ; attempt++ {
		rng.Shuffle(len(leftDegs), func(i, j int) { leftDegs[i], leftDegs[j] = leftDegs[j], leftDegs[i] })
		rng.Shuffle(len(rightDegs), func(i, j int) { rightDegs[i], rightDegs[j] = rightDegs[j], rightDegs[i] })
		if wireRandom(g, leftFirst, rightFirst, leftDegs, rightDegs, rng) {
			return nil
		}
		if attempt >= matchAttempts {
			// Deterministic fallback: Havel–Hakimi always realizes a
			// realizable degree pair. The resulting graph is less random
			// but still subject to defect screening upstream.
			if wireMatch(g, leftFirst, rightFirst, leftDegs, rightDegs, rng) {
				return nil
			}
			return fmt.Errorf("core: could not match level [%d+%d → %d+%d] without duplicate edges",
				leftFirst, leftCount, rightFirst, rightCount)
		}
	}
}

// levelDegrees solves the level's degree sequences: left degrees from the
// configured (default heavy-tail) distribution, right degrees from the
// truncated Poisson constrained to the same edge total. A left node of
// degree d needs d distinct right neighbors, so the left distribution's
// maximum degree must stay within the level's right node count.
func levelDegrees(p Params, leftCount, rightCount int) (leftDegs, rightDegs []int, err error) {
	var leftDist dist.Dist
	if p.LeftDist != nil {
		leftDist = p.LeftDist(rightCount)
		if leftDist.MaxDegree() > rightCount {
			return nil, nil, fmt.Errorf("core: custom left distribution max degree %d exceeds %d right nodes",
				leftDist.MaxDegree(), rightCount)
		}
	} else {
		D := min(p.HeavyTailD, rightCount-1)
		leftDist = dist.Uniform(1)
		if D >= 1 {
			leftDist = dist.HeavyTail(D)
		}
	}
	leftSol, err := dist.Solve(leftDist, leftCount)
	if err != nil {
		return nil, nil, fmt.Errorf("core: left solve: %w", err)
	}
	edges := leftSol.Edges

	alpha := p.RightAlpha
	if alpha <= 0 {
		alpha = float64(edges) / float64(rightCount)
	}
	maxRight := min(leftCount, int(math.Ceil(2*float64(edges)/float64(rightCount)))+2)
	rightSol, err := dist.SolveEdgesMax(dist.PoissonRight(alpha, maxRight), rightCount, edges, leftCount)
	if err != nil {
		return nil, nil, fmt.Errorf("core: right solve: %w", err)
	}
	return leftSol.Degrees(), rightSol.Degrees(), nil
}

// wireRandom assigns each right node d distinct left neighbors sampled
// without replacement with probability proportional to the lefts' remaining
// edge stubs (a per-node-deduplicated configuration model). It returns
// false when stub concentration leaves a right node short of distinct
// candidates, in which case the caller retries with fresh degree shuffles.
func wireRandom(g *graph.Graph, leftFirst, rightFirst int, leftDegs, rightDegs []int, rng *rand.Rand) bool {
	rem := append([]int(nil), leftDegs...)
	type assignment struct {
		right int
		lefts []int
	}
	assignments := make([]assignment, 0, len(rightDegs))

	// Larger rights first: they are hardest to satisfy with distinct lefts.
	order := rng.Perm(len(rightDegs))
	slices.SortStableFunc(order, func(a, b int) int { return rightDegs[b] - rightDegs[a] })

	picked := make([]int, 0, 8)
	for _, r := range order {
		d := rightDegs[r]
		picked = picked[:0]
		for j := 0; j < d; j++ {
			total := 0
			for _, v := range rem {
				if v > 0 {
					total += v
				}
			}
			if total == 0 {
				restore(rem, picked)
				return false
			}
			t := rng.IntN(total)
			li := -1
			for i, v := range rem {
				if v <= 0 {
					continue
				}
				if t < v {
					li = i
					break
				}
				t -= v
			}
			picked = append(picked, li)
			// Consume all of li's stubs temporarily so it cannot be
			// re-picked for this right; restore the surplus afterwards.
			rem[li] = -rem[li] + 1 // encode: negative magnitude remembers surplus
		}
		lefts := make([]int, 0, d)
		for _, li := range picked {
			lefts = append(lefts, leftFirst+li)
			rem[li] = -rem[li] // restore surplus (stubs minus the one consumed)
		}
		assignments = append(assignments, assignment{right: rightFirst + r, lefts: lefts})
	}
	for _, v := range rem {
		if v != 0 {
			return false
		}
	}
	for _, a := range assignments {
		g.SetNeighbors(a.right, a.lefts)
	}
	return true
}

// restore undoes the temporary stub encoding for a partially assigned right
// node.
func restore(rem []int, picked []int) {
	for _, li := range picked {
		if rem[li] < 0 {
			rem[li] = -rem[li]
		}
	}
}

// wireMatch realizes the bipartite degree sequence with a randomized
// Havel–Hakimi construction: rights are processed in descending degree
// order and each connects to the left nodes holding the most unconsumed
// edge stubs, breaking ties randomly. This always succeeds when the degree
// pair is realizable (Gale–Ryser); on the rare unrealizable shuffle it
// returns false and the caller redraws the degree assignment.
func wireMatch(g *graph.Graph, leftFirst, rightFirst int, leftDegs, rightDegs []int, rng *rand.Rand) bool {
	rem := append([]int(nil), leftDegs...)

	// Process rights largest-first with random tie-breaking.
	order := rng.Perm(len(rightDegs))
	slices.SortStableFunc(order, func(a, b int) int { return rightDegs[b] - rightDegs[a] })

	// cand holds left indices, re-sorted per right by remaining stubs.
	cand := make([]int, len(rem))
	type assignment struct {
		right int
		lefts []int
	}
	assignments := make([]assignment, 0, len(rightDegs))
	for _, r := range order {
		d := rightDegs[r]
		// Shuffle first so equal-rem lefts are picked uniformly, then
		// stable-sort by remaining stubs descending.
		perm := rng.Perm(len(rem))
		copy(cand, perm)
		slices.SortStableFunc(cand, func(a, b int) int { return rem[b] - rem[a] })
		if d > len(cand) || rem[cand[d-1]] <= 0 {
			return false // fewer than d lefts still have stubs
		}
		lefts := make([]int, 0, d)
		for _, li := range cand[:d] {
			rem[li]--
			lefts = append(lefts, leftFirst+li)
		}
		assignments = append(assignments, assignment{right: rightFirst + r, lefts: lefts})
	}
	for _, li := range rem {
		if li != 0 {
			return false // leftover stubs: degree sums diverged via clamping
		}
	}
	for _, a := range assignments {
		g.SetNeighbors(a.right, a.lefts)
	}
	return true
}
