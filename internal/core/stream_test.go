package core

import (
	"math/rand/v2"
	"runtime"
	"slices"
	"testing"

	"tornado/internal/defect"
	"tornado/internal/graph"
)

func streamParams(n int) Params {
	p := DefaultParams()
	p.TotalNodes = n
	return p
}

// TestPlanLevelsLargeMatchesPlanLevels: on clean halving chains the
// generalized planner must agree exactly with the historical one, so the
// sub-threshold graphs are planned identically no matter which entry point
// a caller uses.
func TestPlanLevelsLargeMatchesPlanLevels(t *testing.T) {
	for _, n := range []int{8, 32, 96, 192, 384, 768, 1536} {
		p := streamParams(n)
		want, err := PlanLevels(p)
		if err != nil {
			continue // not a clean chain at this MinFinalLeft; covered below
		}
		got, err := PlanLevelsLarge(p)
		if err != nil {
			t.Fatalf("n=%d: PlanLevelsLarge: %v", n, err)
		}
		if got.DataNodes != want.DataNodes || !slices.Equal(got.CheckSizes, want.CheckSizes) {
			t.Fatalf("n=%d: PlanLevelsLarge = %v, PlanLevels = %v", n, got, want)
		}
	}
}

// TestPlanLevelsLargeBudget: for arbitrary even sizes — including the
// odd-halving chains PlanLevels rejects, like 10000 → 5000 → … → 625 —
// the check sizes must sum exactly to the data count (rate 1/2), every
// level must be nonempty, and the final two stages must fit their shared
// left range.
func TestPlanLevelsLargeBudget(t *testing.T) {
	for _, n := range []int{8, 10, 96, 1000, 2006, 10000, 20000, 99998, 100000} {
		p := streamParams(n)
		plan, err := PlanLevelsLarge(p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if plan.DataNodes != n/2 {
			t.Fatalf("n=%d: data = %d, want %d", n, plan.DataNodes, n/2)
		}
		sum := 0
		for _, c := range plan.CheckSizes {
			if c < 1 {
				t.Fatalf("n=%d: empty level in %v", n, plan.CheckSizes)
			}
			sum += c
		}
		if sum != plan.DataNodes {
			t.Fatalf("n=%d: check sizes %v sum to %d, want %d", n, plan.CheckSizes, sum, plan.DataNodes)
		}
		if len(plan.CheckSizes) < 2 {
			t.Fatalf("n=%d: plan %v lacks the final stage pair", n, plan.CheckSizes)
		}
		// The final two stages share the left range fed by the previous
		// level (or the data nodes); each must not exceed it.
		sharedLeft := plan.DataNodes
		if len(plan.CheckSizes) > 2 {
			sharedLeft = plan.CheckSizes[len(plan.CheckSizes)-3]
		}
		a := plan.CheckSizes[len(plan.CheckSizes)-2]
		b := plan.CheckSizes[len(plan.CheckSizes)-1]
		if a > sharedLeft || b > sharedLeft {
			t.Fatalf("n=%d: final stages %d+%d exceed shared left range %d", n, a, b, sharedLeft)
		}
	}
	if _, err := PlanLevelsLarge(streamParams(7)); err == nil {
		t.Error("odd TotalNodes accepted")
	}
}

// TestStreamGenerateScreened10k builds a screened n=10,000 cascade — the
// archival-scale acceptance size, an odd-halving chain the historical
// planner cannot lay out — and checks structure, determinism, and that the
// screen left no closed pair behind.
func TestStreamGenerateScreened10k(t *testing.T) {
	p := streamParams(10000)
	g, st, err := Generate(p, rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.Data != 5000 || g.Total != 10000 {
		t.Fatalf("got %d data / %d total, want 5000/10000", g.Data, g.Total)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := g.AvgDataDegree(); d < 2.5 || d > 5 {
		t.Errorf("avg data degree %.2f outside the heavy-tail band", d)
	}
	if fs := streamDefects(g, 2); len(fs) != 0 {
		t.Errorf("screened graph still has %d closed pairs: %v (stats %+v)", len(fs), fs[0], st)
	}
	// Same seed, same graph.
	g2, _, err := Generate(p, rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		t.Fatalf("second Generate: %v", err)
	}
	if g.Fingerprint() != g2.Fingerprint() {
		t.Error("generation is not deterministic per seed")
	}
}

// TestStreamMemoryCeiling asserts the streaming construction allocates
// O(edges), not O(n²): a quadratic intermediate at n=10,000 would cost
// hundreds of megabytes (5000² ints alone is 200 MB); the whole build must
// stay under a ceiling a few times the edge storage. TotalAlloc is
// cumulative, so the measurement is immune to GC timing.
func TestStreamMemoryCeiling(t *testing.T) {
	p := streamParams(10000)
	rng := rand.New(rand.NewPCG(7, 0))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	g, err := GenerateUnscreened(p, rng)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("GenerateUnscreened: %v", err)
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	const ceiling = 48 << 20
	if allocated > ceiling {
		t.Fatalf("n=10k unscreened build allocated %d MB, ceiling %d MB (edges: %d)",
			allocated>>20, ceiling>>20, g.EdgeCount())
	}
}

// TestStreamFingerprintPermutationStability: the content fingerprint must
// not depend on edge insertion order at scale — resume/caching keys on it.
func TestStreamFingerprintPermutationStability(t *testing.T) {
	p := streamParams(2000)
	g, err := GenerateUnscreened(p, rand.New(rand.NewPCG(11, 0)))
	if err != nil {
		t.Fatalf("GenerateUnscreened: %v", err)
	}
	fp := g.Fingerprint()
	perm := g.Clone()
	rng := rand.New(rand.NewPCG(12, 0))
	for r := perm.Data; r < perm.Total; r++ {
		ls := perm.LeftNeighbors(r)
		lefts := make([]int, len(ls))
		for i, l := range ls {
			lefts[i] = int(l)
		}
		rng.Shuffle(len(lefts), func(i, j int) { lefts[i], lefts[j] = lefts[j], lefts[i] })
		perm.SetNeighbors(r, lefts)
	}
	if err := perm.Validate(); err != nil {
		t.Fatalf("permuted graph invalid: %v", err)
	}
	if perm.Fingerprint() != fp {
		t.Error("fingerprint changed under edge-order permutation")
	}
}

// TestClosedPairsHashMatchesKernel differentially checks the O(edges)
// hashed pair scan against the kernel-backed subset scan on unscreened
// small graphs, where both are exact for size 2.
func TestClosedPairsHashMatchesKernel(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g, err := GenerateUnscreened(DefaultParams(), rand.New(rand.NewPCG(seed, 0)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := defect.ScanDataLevel(g, 2)
		got := closedPairsHash(g)
		if len(want) != len(got) {
			t.Fatalf("seed %d: kernel found %d pairs, hash found %d", seed, len(want), len(got))
		}
		for i := range want {
			if !slices.Equal(want[i].Lefts, got[i].Lefts) || !slices.Equal(want[i].Rights, got[i].Rights) {
				t.Fatalf("seed %d: finding %d differs: kernel %v, hash %v", seed, i, want[i], got[i])
			}
		}
	}
	// A hand-built closed pair both scanners must agree on: two data nodes
	// wired to exactly the same two checks.
	b := graph.NewBuilder(4)
	b.AddLevel(0, 4, 2)
	b.AddLevel(4, 2, 1)
	b.AddLevel(4, 2, 1)
	g := b.Graph()
	g.SetNeighbors(4, []int{0, 1, 2})
	g.SetNeighbors(5, []int{0, 1, 3})
	g.SetNeighbors(6, []int{4, 5})
	g.SetNeighbors(7, []int{4})
	fs := closedPairsHash(g)
	if len(fs) != 1 || !slices.Equal(fs[0].Lefts, []int{0, 1}) {
		t.Fatalf("hand-built closed pair not found: %v", fs)
	}
}
