package core

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/decode"
	"tornado/internal/sim"
)

// TestLargerSystems exercises the construction at the larger stripe sizes
// the paper anticipates ("using larger device counts in a coded stripe may
// be appropriate in larger systems", §3): 192- and 384-node graphs must
// build, validate, screen clean, and tolerate small losses.
func TestLargerSystems(t *testing.T) {
	for _, total := range []int{192, 384} {
		p := DefaultParams()
		p.TotalNodes = total
		g, st, err := Generate(p, rand.New(rand.NewPCG(uint64(total), 6)))
		if err != nil {
			t.Fatalf("total=%d: %v", total, err)
		}
		if g.Total != total || g.Data != total/2 {
			t.Fatalf("total=%d: shape %v", total, g)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("total=%d: %v", total, err)
		}
		t.Logf("total=%d: %d levels, %d edges, avg degree %.2f, %d repairs",
			total, len(g.Levels), g.EdgeCount(), g.AvgDataDegree(), st.Rewires)

		// Screened graphs tolerate any 2 losses regardless of size
		// (exhaustive k=2 stays cheap: C(384,2) = 73,536).
		res, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Errorf("total=%d: first failure %d <= 2 after screening", total, res.FirstFailure)
		}
	}
}

// TestLargerSystemDecodeBehavior: the transition sharpens with size (the
// asymptotic property the codes are designed around): at 10%% losses the
// 384-node graph should essentially always recover.
func TestLargerSystemDecodeBehavior(t *testing.T) {
	p := DefaultParams()
	p.TotalNodes = 384
	g, _, err := Generate(p, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	d := decode.New(g)
	rng := rand.New(rand.NewPCG(10, 10))
	fails := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		erased := rng.Perm(g.Total)[:38] // ~10% offline
		if !d.Recoverable(erased) {
			fails++
		}
	}
	if fails > trials/20 {
		t.Errorf("384-node graph failed %d/%d at 10%% losses", fails, trials)
	}
}
