package altgraph

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/sim"
)

func TestRegularSingleStage(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, deg := range []int{4, 11} {
		g, err := RegularSingleStage(48, deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.Total != 96 || g.Data != 48 || len(g.Levels) != 1 {
			t.Fatalf("deg %d: shape %v", deg, g)
		}
		for v := 0; v < g.Total; v++ {
			var got int
			if g.IsData(v) {
				got = g.Degree(v)
			} else {
				got = g.RightDegree(v)
			}
			if got != deg {
				t.Fatalf("deg %d: node %d has degree %d", deg, v, got)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegularSingleStageErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	if _, err := RegularSingleStage(8, 0, rng); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := RegularSingleStage(8, 9, rng); err == nil {
		t.Error("degree > nodes accepted")
	}
	// deg == data forces the complete bipartite graph; it must still work.
	g, err := RegularSingleStage(4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 16 {
		t.Errorf("complete graph edges = %d", g.EdgeCount())
	}
}

func TestFixedCascadeStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, deg := range []int{3, 4, 6} {
		g, err := FixedCascade(96, deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.Total != 96 || g.Data != 48 || len(g.Levels) != 4 {
			t.Fatalf("deg %d: shape %v", deg, g)
		}
		// Every data node has exactly the fixed degree.
		for v := 0; v < g.Data; v++ {
			if g.Degree(v) != deg {
				t.Fatalf("deg %d: data node %d has degree %d", deg, v, g.Degree(v))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDoubledTornado(t *testing.T) {
	g, _, err := DoubledTornado(core.DefaultParams(), rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Doubling the edge-degree distribution roughly doubles the average
	// data degree (7.2 vs 3.6); assert it is clearly higher.
	plain, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(4, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if g.AvgDataDegree() < plain.AvgDataDegree()+1.5 {
		t.Errorf("doubled avg degree %.2f vs plain %.2f", g.AvgDataDegree(), plain.AvgDataDegree())
	}
	// Minimum data degree doubles too: no degree-2 or degree-3 data nodes.
	s := g.Summary()
	if s.MinDataDegree < 4 {
		t.Errorf("doubled min data degree = %d, want >= 4", s.MinDataDegree)
	}
}

func TestShiftedTornado(t *testing.T) {
	g, _, err := ShiftedTornado(core.DefaultParams(), rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.Summary()
	if s.MinDataDegree < 3 {
		t.Errorf("shifted min data degree = %d, want >= 3 (distribution starts at 3)", s.MinDataDegree)
	}
}

func TestRegularGraphsHaveWorseFirstFailureThanScreenedTornado(t *testing.T) {
	// Qualitative Table 3 shape: regular single-stage graphs fail early
	// compared with screened+adjusted Tornado graphs. Here we just verify
	// the regular graph's first failure is small (<= 4, paper: 4).
	rng := rand.New(rand.NewPCG(6, 6))
	g, err := RegularSingleStage(48, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("this draw tolerates 4 losses; acceptable for a random graph")
	}
	t.Logf("regular deg-4 first failure = %d", res.FirstFailure)
	if res.FirstFailure > 4 {
		t.Errorf("first failure %d, expected <= 4", res.FirstFailure)
	}
}
