// Package altgraph builds the non-Tornado erasure graph families the paper
// evaluates in §4.3 (Figures 5–6, Tables 3–4):
//
//   - regular single-stage bipartite graphs (degree 4 and 11),
//   - altered Tornado Codes whose left degree distribution is doubled or
//     shifted by one edge, and
//   - fixed-degree cascaded random graphs (degree 3, 4, 6) that share the
//     Tornado level structure but replace the irregular distribution with
//     a constant left degree.
package altgraph

import (
	"fmt"
	"math/rand/v2"

	"tornado/internal/core"
	"tornado/internal/dist"
	"tornado/internal/graph"
)

// RegularSingleStage builds a random degree-regular single-stage bipartite
// graph: data data nodes and data check nodes, every node of degree deg
// (the union of deg random perfect matchings, resampled to avoid duplicate
// edges).
func RegularSingleStage(data, deg int, rng *rand.Rand) (*graph.Graph, error) {
	if deg < 1 || deg > data {
		return nil, fmt.Errorf("altgraph: degree %d out of range for %d nodes per side", deg, data)
	}
	b := graph.NewBuilder(data)
	r := b.AddLevel(0, data, data)
	g := b.Graph()
	// neighbors[i] accumulates check i's data nodes across matchings.
	neighbors := make([][]int, data)
	for j := 0; j < deg; j++ {
		perm, ok := matchingAvoiding(neighbors, rng)
		if !ok {
			return nil, fmt.Errorf("altgraph: could not extend %d-regular graph at matching %d", deg, j)
		}
		for i := 0; i < data; i++ {
			neighbors[i] = append(neighbors[i], perm[i])
		}
	}
	for i := 0; i < data; i++ {
		g.SetNeighbors(r+i, neighbors[i])
	}
	g.Name = fmt.Sprintf("regular-%d-deg%d", 2*data, deg)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// matchingAvoiding draws a random perfect matching (permutation) in which
// position i avoids the values in forbidden[i], repairing collisions by
// pairwise swaps. It redraws on rare unrepairable permutations.
func matchingAvoiding(forbidden [][]int, rng *rand.Rand) ([]int, bool) {
	n := len(forbidden)
	const drawAttempts = 200
	for attempt := 0; attempt < drawAttempts; attempt++ {
		perm := rng.Perm(n)
		ok := true
		for i := 0; i < n; i++ {
			if !containsInt(forbidden[i], perm[i]) {
				continue
			}
			// Swap with a position k such that both ends become legal.
			fixed := false
			for try := 0; try < 4*n; try++ {
				k := rng.IntN(n)
				if k == i {
					continue
				}
				if !containsInt(forbidden[i], perm[k]) && !containsInt(forbidden[k], perm[i]) {
					perm[i], perm[k] = perm[k], perm[i]
					fixed = true
					break
				}
			}
			if !fixed {
				ok = false
				break
			}
		}
		if ok {
			return perm, true
		}
	}
	return nil, false
}

// FixedCascade builds a cascaded random graph with the Tornado level
// structure (core.PlanLevels) but a constant left degree at every level —
// the paper's "fixed-degree cascading LDPC graphs" (§4.3, Figure 6).
func FixedCascade(totalNodes, deg int, rng *rand.Rand) (*graph.Graph, error) {
	p := core.DefaultParams()
	p.TotalNodes = totalNodes
	p.DefectScanSize = 0 // the paper's fixed-degree graphs are raw random draws
	p.LeftDist = func(maxDeg int) dist.Dist {
		return dist.Uniform(min(deg, maxDeg))
	}
	g, err := core.GenerateUnscreened(p, rng)
	if err != nil {
		return nil, err
	}
	g.Name = fmt.Sprintf("cascade-%d-deg%d", totalNodes, deg)
	return g, nil
}

// DoubledTornado builds a Tornado graph whose left degree distribution is
// doubled (every degree ×2) — the paper's "Altered Tornado (dist. doubled)".
func DoubledTornado(p core.Params, rng *rand.Rand) (*graph.Graph, core.GenStats, error) {
	base := p.HeavyTailD
	p.LeftDist = func(maxDeg int) dist.Dist {
		// Doubling maps max degree D+1 to 2(D+1); keep it within maxDeg.
		D := min(base, maxDeg/2-1)
		if D < 1 {
			return dist.Uniform(min(2, maxDeg))
		}
		return dist.HeavyTail(D).Doubled()
	}
	g, st, err := core.Generate(p, rng)
	if err != nil {
		return nil, st, err
	}
	g.Name = fmt.Sprintf("tornado-%d-doubled", p.TotalNodes)
	return g, st, nil
}

// ShiftedTornado builds a Tornado graph whose left degree distribution is
// shifted by +1 edge — the paper's "Altered Tornado (dist. shifted)".
func ShiftedTornado(p core.Params, rng *rand.Rand) (*graph.Graph, core.GenStats, error) {
	base := p.HeavyTailD
	p.LeftDist = func(maxDeg int) dist.Dist {
		// Shifting maps max degree D+1 to D+2; keep it within maxDeg.
		D := min(base, maxDeg-2)
		if D < 1 {
			return dist.Uniform(min(2, maxDeg))
		}
		return dist.HeavyTail(D).Shifted(1)
	}
	g, st, err := core.Generate(p, rng)
	if err != nil {
		return nil, st, err
	}
	g.Name = fmt.Sprintf("tornado-%d-shifted", p.TotalNodes)
	return g, st, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
