// Package dist implements the edge-degree distributions used to construct
// Tornado Code graphs and the numeric solver from paper §3.1.
//
// Following Luby, distributions are expressed in terms of *edge* degrees:
// Weights[i] is the fraction of graph edges attached to nodes of degree
// MinDegree+i. For small graphs the raw distribution frequently suggests
// nonsensical fragments such as "5 edges of degree 6" (an edge of degree 6
// must attach to a node owning 6 edges), so the paper's generator solves for
// a constant multiplier that scales the distribution until the implied node
// counts total exactly the number of nodes required. Solve implements that
// multiplier search by bisection over the (monotone, integer-valued) node
// count function.
package dist

import (
	"fmt"
	"math"
)

// Dist is an edge-perspective degree distribution: Weights[i] is the
// fraction of edges attached to nodes of degree MinDegree+i. Weights need
// not be normalized; all consumers work with relative weights.
type Dist struct {
	MinDegree int
	Weights   []float64
}

// HeavyTail returns Luby's heavy-tail left distribution truncated at
// parameter D: edge degrees 2..D+1 with weight λ_i ∝ 1/(i−1).
func HeavyTail(D int) Dist {
	if D < 1 {
		panic("dist: HeavyTail requires D >= 1")
	}
	w := make([]float64, D)
	for i := range w {
		deg := i + 2
		w[i] = 1 / float64(deg-1)
	}
	return Dist{MinDegree: 2, Weights: w}
}

// PoissonRight returns the truncated Poisson-shaped right distribution with
// shape parameter alpha over degrees 1..maxDeg: ρ_i ∝ α^(i−1)/(i−1)!.
func PoissonRight(alpha float64, maxDeg int) Dist {
	if maxDeg < 1 || alpha <= 0 {
		panic("dist: PoissonRight requires maxDeg >= 1 and alpha > 0")
	}
	w := make([]float64, maxDeg)
	term := 1.0
	for i := range w {
		w[i] = term
		term *= alpha / float64(i+1)
	}
	return Dist{MinDegree: 1, Weights: w}
}

// Uniform returns a single-degree distribution (all nodes of degree deg),
// used for the fixed-degree cascaded graphs of paper §4.3.
func Uniform(deg int) Dist {
	if deg < 1 {
		panic("dist: Uniform requires deg >= 1")
	}
	return Dist{MinDegree: deg, Weights: []float64{1}}
}

// Shifted returns a copy of d with every degree increased by delta (the
// paper's "distribution shifted +1 edge" alteration, §4.3).
func (d Dist) Shifted(delta int) Dist {
	if d.MinDegree+delta < 1 {
		panic("dist: Shifted would produce degree < 1")
	}
	return Dist{MinDegree: d.MinDegree + delta, Weights: append([]float64(nil), d.Weights...)}
}

// Doubled returns a copy of d with every degree doubled (the paper's
// "distribution doubled" alteration, §4.3).
func (d Dist) Doubled() Dist {
	w := make([]float64, 2*(d.MinDegree+len(d.Weights)-1)-2*d.MinDegree+1)
	for i, v := range d.Weights {
		w[2*i] = v
	}
	return Dist{MinDegree: 2 * d.MinDegree, Weights: w}
}

// MaxDegree returns the largest degree carried by the distribution.
func (d Dist) MaxDegree() int { return d.MinDegree + len(d.Weights) - 1 }

// AvgNodeDegree returns the average node degree implied by the edge-degree
// distribution: Σλ_i / Σ(λ_i/i).
func (d Dist) AvgNodeDegree() float64 {
	var sw, swi float64
	for i, v := range d.Weights {
		deg := float64(d.MinDegree + i)
		sw += v
		swi += v / deg
	}
	if swi == 0 {
		return 0
	}
	return sw / swi
}

// nodeCounts returns the per-degree node counts implied by scaling the
// distribution by multiplier c: count_i = round(c·λ_i/i).
func (d Dist) nodeCounts(c float64) []int {
	out := make([]int, len(d.Weights))
	for i, v := range d.Weights {
		deg := float64(d.MinDegree + i)
		out[i] = int(math.Floor(c*v/deg + 0.5))
	}
	return out
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Solution is the output of Solve: how many nodes of each degree to create.
type Solution struct {
	MinDegree int
	Counts    []int // Counts[i] nodes of degree MinDegree+i
	Nodes     int   // Σ Counts
	Edges     int   // Σ (MinDegree+i)·Counts[i]
}

// Degrees expands the solution into one degree per node, in ascending
// order. The caller typically shuffles the slice.
func (s Solution) Degrees() []int {
	out := make([]int, 0, s.Nodes)
	for i, c := range s.Counts {
		for j := 0; j < c; j++ {
			out = append(out, s.MinDegree+i)
		}
	}
	return out
}

// Solve finds a constant multiplier for the edge-degree distribution that
// produces exactly nodes total nodes (paper §3.1). Because the node-count
// function is an integer step function of the multiplier, an exact
// crossing may not exist; any shortfall after bisection is filled with
// extra nodes of the smallest degree (and any overshoot trimmed from the
// largest populated degree), which perturbs the distribution minimally.
func Solve(d Dist, nodes int) (Solution, error) {
	if nodes < 1 {
		return Solution{}, fmt.Errorf("dist: Solve needs nodes >= 1, got %d", nodes)
	}
	anyPositive := false
	for _, w := range d.Weights {
		if w < 0 {
			return Solution{}, fmt.Errorf("dist: negative weight %v", w)
		}
		if w > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return Solution{}, fmt.Errorf("dist: all-zero distribution")
	}

	// Bracket: counts(c) is nondecreasing, 0 at c=0.
	lo, hi := 0.0, 1.0
	for sum(d.nodeCounts(hi)) < nodes {
		hi *= 2
		if hi > 1e18 {
			return Solution{}, fmt.Errorf("dist: solver failed to bracket %d nodes", nodes)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-9*hi; iter++ {
		mid := (lo + hi) / 2
		if sum(d.nodeCounts(mid)) < nodes {
			lo = mid
		} else {
			hi = mid
		}
	}
	counts := d.nodeCounts(hi)
	got := sum(counts)

	// Fix any residual rounding mismatch.
	for got < nodes {
		counts[0]++ // add a node of the smallest degree
		got++
	}
	for got > nodes {
		// Trim from the largest populated degree bucket.
		for i := len(counts) - 1; i >= 0; i-- {
			if counts[i] > 0 {
				counts[i]--
				got--
				break
			}
		}
	}

	sol := Solution{MinDegree: d.MinDegree, Counts: counts, Nodes: nodes}
	for i, c := range counts {
		sol.Edges += (d.MinDegree + i) * c
	}
	if sol.Edges == 0 {
		return Solution{}, fmt.Errorf("dist: solution carries no edges")
	}
	return sol, nil
}

// SolveEdges produces per-node degrees for exactly nodes nodes whose total
// degree equals edges, following the shape of d as closely as possible.
// This is used for the right side of a level: after left degrees fix the
// edge total, the right node degrees must sum to the same total. The
// solution from Solve is adjusted by ±1 steps spread across nodes.
func SolveEdges(d Dist, nodes, edges int) (Solution, error) {
	return SolveEdgesMax(d, nodes, edges, edges)
}

// SolveEdgesMax is SolveEdges with a hard per-node degree cap, needed when
// a check node cannot reference more distinct left nodes than its level
// holds.
func SolveEdgesMax(d Dist, nodes, edges, maxDeg int) (Solution, error) {
	if edges < nodes {
		return Solution{}, fmt.Errorf("dist: %d edges cannot cover %d nodes at degree >= 1", edges, nodes)
	}
	if edges > nodes*maxDeg {
		return Solution{}, fmt.Errorf("dist: %d edges exceed %d nodes at degree <= %d", edges, nodes, maxDeg)
	}
	sol, err := Solve(d, nodes)
	if err != nil {
		return Solution{}, err
	}
	degs := sol.Degrees()
	total := 0
	for i := range degs {
		if degs[i] > maxDeg {
			degs[i] = maxDeg
		}
		total += degs[i]
	}
	// Spread the correction: raise/lower node degrees round-robin, keeping
	// every degree within [1, maxDeg].
	i := 0
	for steps := 0; total != edges; steps++ {
		j := i % len(degs)
		if total < edges {
			if degs[j] < maxDeg {
				degs[j]++
				total++
			}
		} else if degs[j] > 1 {
			degs[j]--
			total--
		}
		i++
		if steps > 1000000 {
			return Solution{}, fmt.Errorf("dist: SolveEdges failed to converge (nodes=%d edges=%d)", nodes, edges)
		}
	}
	// Re-bucket into a Solution.
	minDeg, maxDeg := degs[0], degs[0]
	for _, v := range degs {
		if v < minDeg {
			minDeg = v
		}
		if v > maxDeg {
			maxDeg = v
		}
	}
	out := Solution{MinDegree: minDeg, Counts: make([]int, maxDeg-minDeg+1), Nodes: nodes, Edges: edges}
	for _, v := range degs {
		out.Counts[v-minDeg]++
	}
	return out, nil
}
