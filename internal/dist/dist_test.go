package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestHeavyTailShape(t *testing.T) {
	d := HeavyTail(4)
	if d.MinDegree != 2 || len(d.Weights) != 4 {
		t.Fatalf("HeavyTail(4) = %+v", d)
	}
	// λ_i ∝ 1/(i-1): degrees 2,3,4,5 → weights 1, 1/2, 1/3, 1/4.
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i, w := range d.Weights {
		if math.Abs(w-want[i]) > 1e-12 {
			t.Errorf("weight[%d] = %v, want %v", i, w, want[i])
		}
	}
	if d.MaxDegree() != 5 {
		t.Errorf("MaxDegree = %d", d.MaxDegree())
	}
}

func TestPoissonRightShape(t *testing.T) {
	d := PoissonRight(3, 6)
	if d.MinDegree != 1 || len(d.Weights) != 6 {
		t.Fatalf("PoissonRight = %+v", d)
	}
	// ρ_i ∝ α^(i-1)/(i-1)!: 1, 3, 4.5, 4.5, 3.375, 2.025
	want := []float64{1, 3, 4.5, 4.5, 3.375, 2.025}
	for i, w := range d.Weights {
		if math.Abs(w-want[i]) > 1e-9 {
			t.Errorf("weight[%d] = %v, want %v", i, w, want[i])
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := map[string]func(){
		"HeavyTail(0)":        func() { HeavyTail(0) },
		"PoissonRight alpha":  func() { PoissonRight(0, 3) },
		"PoissonRight maxDeg": func() { PoissonRight(1, 0) },
		"Uniform(0)":          func() { Uniform(0) },
		"Shift below 1":       func() { Uniform(1).Shifted(-1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestShifted(t *testing.T) {
	d := HeavyTail(3).Shifted(1)
	if d.MinDegree != 3 || d.MaxDegree() != 5 {
		t.Errorf("Shifted: min=%d max=%d", d.MinDegree, d.MaxDegree())
	}
}

func TestDoubled(t *testing.T) {
	d := HeavyTail(3) // degrees 2,3,4
	dd := d.Doubled() // degrees 4,6,8
	if dd.MinDegree != 4 || dd.MaxDegree() != 8 {
		t.Fatalf("Doubled: min=%d max=%d", dd.MinDegree, dd.MaxDegree())
	}
	if dd.Weights[0] != d.Weights[0] || dd.Weights[2] != d.Weights[1] || dd.Weights[4] != d.Weights[2] {
		t.Errorf("Doubled weights = %v", dd.Weights)
	}
	if dd.Weights[1] != 0 || dd.Weights[3] != 0 {
		t.Errorf("Doubled odd-degree weights should be zero: %v", dd.Weights)
	}
}

func TestAvgNodeDegree(t *testing.T) {
	if got := Uniform(4).AvgNodeDegree(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Uniform(4).AvgNodeDegree = %v", got)
	}
	// HeavyTail average node degree: Σλ / Σ(λ/i); for D=3 (degrees 2,3,4
	// weights 1, .5, 1/3): (11/6) / (1/2 + 1/6 + 1/12) = 1.8333/0.75 = 2.4444
	if got := HeavyTail(3).AvgNodeDegree(); math.Abs(got-2.444444444) > 1e-6 {
		t.Errorf("HeavyTail(3).AvgNodeDegree = %v", got)
	}
}

func TestSolveExactCounts(t *testing.T) {
	for _, nodes := range []int{1, 4, 12, 24, 48, 96, 500} {
		for _, d := range []Dist{HeavyTail(6), HeavyTail(12), PoissonRight(3, 9), Uniform(3)} {
			sol, err := Solve(d, nodes)
			if err != nil {
				t.Fatalf("Solve(%v, %d): %v", d, nodes, err)
			}
			if sol.Nodes != nodes || sum(sol.Counts) != nodes {
				t.Errorf("Solve(%v, %d) produced %d nodes", d, nodes, sum(sol.Counts))
			}
			if sol.Edges < nodes {
				t.Errorf("Solve produced %d edges for %d nodes", sol.Edges, nodes)
			}
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(HeavyTail(3), 0); err == nil {
		t.Error("Solve with 0 nodes should fail")
	}
	if _, err := Solve(Dist{MinDegree: 2, Weights: []float64{0, 0}}, 5); err == nil {
		t.Error("Solve with all-zero weights should fail")
	}
	if _, err := Solve(Dist{MinDegree: 2, Weights: []float64{-1, 2}}, 5); err == nil {
		t.Error("Solve with negative weight should fail")
	}
}

func TestSolveDistributionShape(t *testing.T) {
	// For a reasonably large node count the realized node-count fractions
	// should follow λ_i/i (node perspective), heaviest at the low degrees.
	sol, err := Solve(HeavyTail(6), 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sol.Counts); i++ {
		if sol.Counts[i] > sol.Counts[i-1] {
			t.Errorf("heavy-tail node counts should decay: %v", sol.Counts)
		}
	}
	avg := float64(sol.Edges) / float64(sol.Nodes)
	if want := HeavyTail(6).AvgNodeDegree(); math.Abs(avg-want) > 0.1 {
		t.Errorf("realized avg degree %v, distribution says %v", avg, want)
	}
}

func TestSolutionDegrees(t *testing.T) {
	sol := Solution{MinDegree: 2, Counts: []int{2, 0, 1}, Nodes: 3, Edges: 8}
	degs := sol.Degrees()
	if len(degs) != 3 || degs[0] != 2 || degs[1] != 2 || degs[2] != 4 {
		t.Errorf("Degrees = %v", degs)
	}
}

func TestSolveEdgesExact(t *testing.T) {
	// 24 right nodes must absorb exactly 100 edges.
	sol, err := SolveEdges(PoissonRight(3, 12), 24, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Nodes != 24 || sol.Edges != 100 {
		t.Fatalf("SolveEdges = %+v", sol)
	}
	total := 0
	for i, c := range sol.Counts {
		total += (sol.MinDegree + i) * c
	}
	if total != 100 {
		t.Errorf("degree sum = %d", total)
	}
	if sol.MinDegree < 1 {
		t.Errorf("MinDegree = %d", sol.MinDegree)
	}
}

func TestSolveEdgesTooFew(t *testing.T) {
	if _, err := SolveEdges(PoissonRight(3, 12), 24, 23); err == nil {
		t.Error("SolveEdges with edges < nodes should fail")
	}
}

// Property: Solve always produces the requested node count exactly, with
// positive edge totals, for random distributions and sizes.
func TestQuickSolveExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		nodes := 1 + rng.IntN(300)
		var d Dist
		switch rng.IntN(4) {
		case 0:
			d = HeavyTail(1 + rng.IntN(15))
		case 1:
			d = PoissonRight(0.5+3*rng.Float64(), 1+rng.IntN(12))
		case 2:
			d = Uniform(1 + rng.IntN(8))
		default:
			w := make([]float64, 1+rng.IntN(8))
			for i := range w {
				w[i] = rng.Float64()
			}
			w[rng.IntN(len(w))] = 1 // ensure some mass
			d = Dist{MinDegree: 1 + rng.IntN(4), Weights: w}
		}
		sol, err := Solve(d, nodes)
		if err != nil {
			return false
		}
		return sol.Nodes == nodes && sum(sol.Counts) == nodes && sol.Edges >= nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: SolveEdges hits both node and edge targets whenever feasible.
func TestQuickSolveEdgesExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 6))
		nodes := 1 + rng.IntN(100)
		edges := nodes + rng.IntN(5*nodes)
		sol, err := SolveEdges(PoissonRight(0.5+3*rng.Float64(), 1+rng.IntN(10)), nodes, edges)
		if err != nil {
			return false
		}
		if sol.Nodes != nodes || sol.Edges != edges {
			return false
		}
		total, n := 0, 0
		for i, c := range sol.Counts {
			if c < 0 {
				return false
			}
			total += (sol.MinDegree + i) * c
			n += c
		}
		return total == edges && n == nodes && sol.MinDegree >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
