// Package placement maps graph nodes onto device slots. The default
// archive layout is the identity map — node v lives on device v — which
// scatters each check block's left neighbors across the shelf, so even the
// common single-loss repair reads most of its inputs from remote groups
// (drawers, shelves, racks: whatever boundary makes a read "expensive").
//
// Degree-aware placement co-locates each check block with its left
// neighbors: the cheapest repair of a lost block XORs one parity check
// with its surviving siblings, and when that whole family shares a group
// the repair is group-local. The single-loss cost model here quantifies
// the difference — mean blocks read per loss and mean *remote* blocks read
// per loss — and cmd/benchreport gates that the degree-aware layout never
// reads more remote bytes than the identity layout on the profiled
// tornado96 graphs.
package placement

import (
	"fmt"

	"tornado/internal/graph"
)

// DefaultGroupSize is the device-group granularity of the cost model: 12
// devices per group, matching the paper's RAID comparison hardware (8
// drawers of 12 disks for the 96-device system).
const DefaultGroupSize = 12

// Placement is a bijection between graph nodes and device slots.
// Implementations must be immutable after construction (the archive caches
// the mapping into flat slices for the data path).
type Placement interface {
	// Nodes returns the node/device count.
	Nodes() int
	// Device returns the device slot storing node v's blocks.
	Device(v int) int
	// Node returns the graph node stored on device slot d.
	Node(d int) int
	// Name identifies the policy in reports.
	Name() string
}

// Identity is the default layout: node v on device v.
type Identity struct{ N int }

// NewIdentity returns the identity placement over n slots.
func NewIdentity(n int) Identity { return Identity{N: n} }

func (p Identity) Nodes() int       { return p.N }
func (p Identity) Device(v int) int { return v }
func (p Identity) Node(d int) int   { return d }
func (p Identity) Name() string     { return "identity" }

// Mapped is an explicit permutation placement.
type Mapped struct {
	name    string
	nodeDev []int
	devNode []int
}

// NewMapped builds a placement from nodeDev (nodeDev[v] = device of node
// v), validating that it is a permutation.
func NewMapped(name string, nodeDev []int) (*Mapped, error) {
	n := len(nodeDev)
	devNode := make([]int, n)
	seen := make([]bool, n)
	for v, d := range nodeDev {
		if d < 0 || d >= n || seen[d] {
			return nil, fmt.Errorf("placement: nodeDev is not a permutation (node %d -> device %d)", v, d)
		}
		seen[d] = true
		devNode[d] = v
	}
	return &Mapped{name: name, nodeDev: append([]int(nil), nodeDev...), devNode: devNode}, nil
}

func (p *Mapped) Nodes() int       { return len(p.nodeDev) }
func (p *Mapped) Device(v int) int { return p.nodeDev[v] }
func (p *Mapped) Node(d int) int   { return p.devNode[d] }
func (p *Mapped) Name() string     { return p.name }

// Group returns the group index of device slot d under groupSize-wide
// groups (non-positive sizes mean DefaultGroupSize).
func Group(d, groupSize int) int {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	return d / groupSize
}

// DegreeAware builds a placement for g that packs each check node with its
// left neighbors into one device group of groupSize slots, greedily and
// deterministically: check nodes are visited in ID order (low levels — the
// wide, shallow checks that repair data losses — first), each family
// {check} ∪ lefts(check) is routed to the group already holding most of
// its placed members, and unplaced members fill that group while it has
// room. Leftover nodes land in the remaining slots in ID order.
func DegreeAware(g *graph.Graph, groupSize int) *Mapped {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	n := g.Total
	numGroups := (n + groupSize - 1) / groupSize
	free := make([]int, numGroups) // free slots per group
	for gi := 0; gi < numGroups; gi++ {
		lo := gi * groupSize
		hi := min(lo+groupSize, n)
		free[gi] = hi - lo
	}
	nodeGroup := make([]int, n) // -1 while unplaced
	for v := range nodeGroup {
		nodeGroup[v] = -1
	}
	placedIn := make([]int, numGroups) // scratch: family members per group

	place := func(v, gi int) {
		nodeGroup[v] = gi
		free[gi]--
	}

	family := make([]int, 0, 16)
	for r := g.Data; r < n; r++ {
		family = family[:0]
		family = append(family, r)
		for _, l := range g.LeftNeighbors(r) {
			family = append(family, int(l))
		}
		// Route the family to the group that already holds most of it;
		// among groups with none placed, the one with the most room (then
		// lowest index) keeps families whole rather than fragmenting the
		// first groups.
		for gi := range placedIn {
			placedIn[gi] = 0
		}
		unplaced := 0
		for _, v := range family {
			if gi := nodeGroup[v]; gi >= 0 {
				placedIn[gi]++
			} else {
				unplaced++
			}
		}
		if unplaced == 0 {
			continue
		}
		best := -1
		for gi := 0; gi < numGroups; gi++ {
			if free[gi] == 0 {
				continue
			}
			if best < 0 {
				best = gi
				continue
			}
			switch {
			case placedIn[gi] > placedIn[best]:
				best = gi
			case placedIn[gi] == placedIn[best] && placedIn[best] == 0 && free[gi] > free[best]:
				best = gi
			}
		}
		if best < 0 {
			break // no free slot anywhere; remaining nodes handled below
		}
		for _, v := range family {
			if nodeGroup[v] >= 0 || free[best] == 0 {
				continue
			}
			place(v, best)
		}
	}
	// Fill stragglers (nodes in no family that found room) in ID order.
	next := 0
	for v := 0; v < n; v++ {
		if nodeGroup[v] >= 0 {
			continue
		}
		for free[next] == 0 {
			next++
		}
		place(v, next)
	}

	// Assign concrete slots: nodes of each group take that group's slot
	// range in node-ID order.
	nodeDev := make([]int, n)
	cursor := make([]int, numGroups)
	for gi := 0; gi < numGroups; gi++ {
		cursor[gi] = gi * groupSize
	}
	for v := 0; v < n; v++ {
		gi := nodeGroup[v]
		nodeDev[v] = cursor[gi]
		cursor[gi]++
	}
	p, err := NewMapped("degree-aware", nodeDev)
	if err != nil {
		panic("placement: degree-aware layout is not a permutation: " + err.Error())
	}
	return p
}

// LossStats is the single-loss repair cost of a placement under the cost
// model: lose one node, repair it by XORing the cheapest parity family,
// count the blocks read and how many live outside the lost node's group.
type LossStats struct {
	// MeanRepairReads is blocks read per single loss, averaged over every
	// node (the repair-bandwidth figure: repair bytes per lost byte, in
	// units of block size).
	MeanRepairReads float64
	// MeanRemoteReads is the subset of those reads served from outside the
	// lost node's device group.
	MeanRemoteReads float64
	// MaxRepairReads is the worst single-loss read count.
	MaxRepairReads int
	// DataMeanRepairReads / DataMeanRemoteReads restrict the average to
	// data-node losses (the loss a degraded Get must repair inline).
	DataMeanRepairReads float64
	DataMeanRemoteReads float64
}

// repairOptions enumerates how one lost node can be rebuilt: for a right
// (check) node, recompute it from its left neighbors; for any node, XOR a
// parent check with that check's other left neighbors. The cheapest option
// — fewest remote reads, then fewest total reads — is the one a
// bandwidth-aware repair would pick.
func lossCost(g *graph.Graph, p Placement, groupSize, v int) (reads, remote int) {
	myGroup := Group(p.Device(v), groupSize)
	count := func(nodes []int) (int, int) {
		rd, rm := len(nodes), 0
		for _, u := range nodes {
			if Group(p.Device(u), groupSize) != myGroup {
				rm++
			}
		}
		return rd, rm
	}
	best := -1
	bestRemote := 0
	consider := func(nodes []int) {
		rd, rm := count(nodes)
		if best < 0 || rm < bestRemote || (rm == bestRemote && rd < best) {
			best, bestRemote = rd, rm
		}
	}
	var buf []int
	if g.IsRight(v) {
		buf = buf[:0]
		for _, l := range g.LeftNeighbors(v) {
			buf = append(buf, int(l))
		}
		consider(buf)
	}
	for _, r := range g.Parents(v) {
		buf = buf[:0]
		buf = append(buf, int(r))
		for _, l := range g.LeftNeighbors(int(r)) {
			if int(l) != v {
				buf = append(buf, int(l))
			}
		}
		consider(buf)
	}
	if best < 0 {
		return 0, 0 // uncovered node (cannot happen on a valid graph)
	}
	return best, bestRemote
}

// SingleLossStats evaluates p's single-loss repair cost over every node of
// g with groupSize-wide device groups.
func SingleLossStats(g *graph.Graph, p Placement, groupSize int) LossStats {
	var s LossStats
	var totReads, totRemote, dataReads, dataRemote int
	for v := 0; v < g.Total; v++ {
		rd, rm := lossCost(g, p, groupSize, v)
		totReads += rd
		totRemote += rm
		if rd > s.MaxRepairReads {
			s.MaxRepairReads = rd
		}
		if g.IsData(v) {
			dataReads += rd
			dataRemote += rm
		}
	}
	s.MeanRepairReads = float64(totReads) / float64(g.Total)
	s.MeanRemoteReads = float64(totRemote) / float64(g.Total)
	if g.Data > 0 {
		s.DataMeanRepairReads = float64(dataReads) / float64(g.Data)
		s.DataMeanRemoteReads = float64(dataRemote) / float64(g.Data)
	}
	return s
}
