package placement

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIdentityRoundTrip(t *testing.T) {
	p := NewIdentity(96)
	if p.Nodes() != 96 {
		t.Fatalf("Nodes() = %d", p.Nodes())
	}
	for v := 0; v < 96; v++ {
		if p.Device(v) != v || p.Node(v) != v {
			t.Fatalf("identity broken at %d", v)
		}
	}
}

func TestNewMappedValidates(t *testing.T) {
	if _, err := NewMapped("bad", []int{0, 0, 1}); err == nil {
		t.Error("duplicate device accepted")
	}
	if _, err := NewMapped("bad", []int{0, 3, 1}); err == nil {
		t.Error("out-of-range device accepted")
	}
	p, err := NewMapped("rev", []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if p.Node(p.Device(v)) != v {
			t.Fatalf("not a bijection at %d", v)
		}
	}
}

func TestDegreeAwareIsPermutation(t *testing.T) {
	g := testGraph(t)
	p := DegreeAware(g, DefaultGroupSize)
	seen := make([]bool, g.Total)
	for v := 0; v < g.Total; v++ {
		d := p.Device(v)
		if d < 0 || d >= g.Total || seen[d] {
			t.Fatalf("node %d -> device %d is not a permutation", v, d)
		}
		seen[d] = true
		if p.Node(d) != v {
			t.Fatalf("Node(Device(%d)) = %d", v, p.Node(d))
		}
	}
}

func TestDegreeAwareDeterministic(t *testing.T) {
	g := testGraph(t)
	a := DegreeAware(g, DefaultGroupSize)
	b := DegreeAware(g, DefaultGroupSize)
	for v := 0; v < g.Total; v++ {
		if a.Device(v) != b.Device(v) {
			t.Fatalf("placement differs at node %d: %d vs %d", v, a.Device(v), b.Device(v))
		}
	}
}

// TestDegreeAwareReducesRemoteReads is the policy's reason to exist: on a
// profiled Tornado cascade, packing check families into device groups must
// reduce the mean remote reads of a single-loss repair versus the identity
// scatter. Total reads cannot change (the cost model picks the same
// cheapest family sizes); locality is the whole game.
func TestDegreeAwareReducesRemoteReads(t *testing.T) {
	g := testGraph(t)
	id := SingleLossStats(g, NewIdentity(g.Total), DefaultGroupSize)
	da := SingleLossStats(g, DegreeAware(g, DefaultGroupSize), DefaultGroupSize)
	t.Logf("identity: %.2f reads (%.2f remote); degree-aware: %.2f reads (%.2f remote)",
		id.MeanRepairReads, id.MeanRemoteReads, da.MeanRepairReads, da.MeanRemoteReads)
	if da.MeanRemoteReads >= id.MeanRemoteReads {
		t.Errorf("degree-aware remote reads %.3f did not improve on identity %.3f",
			da.MeanRemoteReads, id.MeanRemoteReads)
	}
	if da.MeanRepairReads != id.MeanRepairReads {
		// Same families exist under any placement; only locality differs.
		// (The model min-remote-then-min-reads tie-break can pick a larger
		// family when it is fully local, so allow degree-aware to trade a
		// few extra local reads — but never more than one per loss.)
		if da.MeanRepairReads > id.MeanRepairReads+1 {
			t.Errorf("degree-aware total reads %.3f ballooned vs identity %.3f",
				da.MeanRepairReads, id.MeanRepairReads)
		}
	}
}

func TestSingleLossStatsIdentityBounds(t *testing.T) {
	g := testGraph(t)
	s := SingleLossStats(g, NewIdentity(g.Total), DefaultGroupSize)
	if s.MeanRepairReads <= 0 || s.MeanRemoteReads < 0 || s.MeanRemoteReads > s.MeanRepairReads {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.MaxRepairReads <= 0 || s.DataMeanRepairReads <= 0 {
		t.Fatalf("implausible stats: %+v", s)
	}
}

func TestGroup(t *testing.T) {
	if Group(0, 12) != 0 || Group(11, 12) != 0 || Group(12, 12) != 1 {
		t.Error("Group boundaries wrong")
	}
	if Group(25, 0) != 25/DefaultGroupSize {
		t.Error("Group must default the group size")
	}
}
