// Package workload generates deterministic synthetic archival workloads —
// the ingest/retrieve/fail/repair streams used to exercise and benchmark
// the archival store. The paper's setting is write-once, read-rarely
// archives of whole objects (§2.2); sizes follow a configurable
// distribution (archival collections are classically log-normal), reads
// pick stored objects by Zipf-ish recency, and device failures and
// replacements are injected on a schedule.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// SizeDist selects the object size distribution.
type SizeDist int

const (
	// SizeFixed makes every object exactly MeanSize bytes.
	SizeFixed SizeDist = iota
	// SizeUniform draws sizes uniformly from [MinSize, MaxSize].
	SizeUniform
	// SizeLogNormal draws log-normal sizes with median MeanSize and shape
	// Sigma, clamped to [MinSize, MaxSize].
	SizeLogNormal
)

// OpKind is the type of one workload operation.
type OpKind int

const (
	// OpPut ingests a new object.
	OpPut OpKind = iota
	// OpGet retrieves a stored object.
	OpGet
	// OpFail destroys a random device.
	OpFail
	// OpRepair replaces all failed devices and triggers a scrub.
	OpRepair
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpFail:
		return "fail"
	case OpRepair:
		return "repair"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind   OpKind
	Object string // for Put/Get
	Size   int    // for Put
}

// Spec configures a workload.
type Spec struct {
	// Ops is the total operation count (excluding injected fail/repair).
	Ops int
	// PutFraction is the fraction of operations that are ingests; the
	// rest are retrievals. Archival systems are ingest-heavy early and
	// read-rare later; 0.5 by default.
	PutFraction float64
	// Size distribution parameters.
	SizeDist SizeDist
	MeanSize int
	MinSize  int
	MaxSize  int
	Sigma    float64
	// FailEvery injects a device failure after every FailEvery
	// operations (0 = never).
	FailEvery int
	// RepairEvery injects a replace-and-scrub after every RepairEvery
	// operations (0 = never).
	RepairEvery int
	// Seed drives all randomness; equal specs generate equal streams.
	Seed uint64
}

func (s *Spec) setDefaults() {
	if s.PutFraction <= 0 || s.PutFraction > 1 {
		s.PutFraction = 0.5
	}
	if s.MeanSize <= 0 {
		s.MeanSize = 64 << 10
	}
	if s.MinSize <= 0 {
		s.MinSize = 1
	}
	if s.MaxSize <= 0 {
		s.MaxSize = 16 * s.MeanSize
	}
	if s.Sigma <= 0 {
		s.Sigma = 1.0
	}
}

// Generator produces a deterministic operation stream.
type Generator struct {
	spec       Spec
	rng        *rand.Rand
	emitted    int
	stored     []string
	nextID     int
	lastFail   int
	lastRepair int
}

// NewGenerator returns a generator for spec.
func NewGenerator(spec Spec) (*Generator, error) {
	spec.setDefaults()
	if spec.Ops < 0 {
		return nil, fmt.Errorf("workload: negative op count")
	}
	if spec.MinSize > spec.MaxSize {
		return nil, fmt.Errorf("workload: MinSize %d > MaxSize %d", spec.MinSize, spec.MaxSize)
	}
	return &Generator{
		spec: spec,
		rng:  rand.New(rand.NewPCG(spec.Seed, 0xA7C)),
	}, nil
}

// Next returns the next operation, or ok=false when the stream is
// exhausted.
func (g *Generator) Next() (Op, bool) {
	s := &g.spec
	if g.emitted >= s.Ops {
		return Op{}, false
	}
	// Injected maintenance events ride between regular operations.
	n := g.emitted + 1
	if s.FailEvery > 0 && n%s.FailEvery == 0 && !g.failedAt(n) {
		g.markFail(n)
		return Op{Kind: OpFail}, true
	}
	if s.RepairEvery > 0 && n%s.RepairEvery == 0 && !g.repairedAt(n) {
		g.markRepair(n)
		return Op{Kind: OpRepair}, true
	}
	g.emitted++

	if len(g.stored) == 0 || g.rng.Float64() < s.PutFraction {
		name := fmt.Sprintf("obj-%06d", g.nextID)
		g.nextID++
		g.stored = append(g.stored, name)
		return Op{Kind: OpPut, Object: name, Size: g.size()}, true
	}
	// Recency-biased read: sample an index skewed toward recent ingests.
	idx := len(g.stored) - 1 - int(float64(len(g.stored))*math.Pow(g.rng.Float64(), 2))
	if idx < 0 {
		idx = 0
	}
	return Op{Kind: OpGet, Object: g.stored[idx]}, true
}

// fail/repair bookkeeping: at most one injected event per schedule slot.

func (g *Generator) failedAt(n int) bool   { return g.lastFail == n }
func (g *Generator) repairedAt(n int) bool { return g.lastRepair == n }
func (g *Generator) markFail(n int)        { g.lastFail = n }
func (g *Generator) markRepair(n int)      { g.lastRepair = n }

// size draws an object size from the configured distribution.
func (g *Generator) size() int {
	s := &g.spec
	var v int
	switch s.SizeDist {
	case SizeUniform:
		v = s.MinSize + g.rng.IntN(s.MaxSize-s.MinSize+1)
	case SizeLogNormal:
		v = int(float64(s.MeanSize) * math.Exp(s.Sigma*g.rng.NormFloat64()))
	default:
		v = s.MeanSize
	}
	if v < s.MinSize {
		v = s.MinSize
	}
	if v > s.MaxSize {
		v = s.MaxSize
	}
	return v
}
