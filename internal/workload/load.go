package workload

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"tornado/internal/obs"
)

// ObjectService is the surface the load generator drives — satisfied by
// serve.Service. Keeping it an interface here means workload does not
// import serve, so either package can grow without a cycle.
type ObjectService interface {
	Put(ctx context.Context, tenant, name string, r io.Reader) (int, error)
	Get(ctx context.Context, tenant, name string, w io.Writer) (int, error)
}

// Zipf samples ranks 0..n-1 with P(k) ∝ 1/(k+1)^s. math/rand/v2 dropped
// rand.Zipf, so this precomputes the cumulative weight table once and
// samples by binary search — O(log n) per draw, no float drift between
// runs, and the caller supplies the uniform variate so per-worker RNGs
// stay independent and deterministic.
type Zipf struct {
	cum []float64 // cum[k] = sum of weights for ranks 0..k
}

// NewZipf builds a sampler over n ranks with exponent s. s=0 is uniform;
// larger s concentrates mass on low ranks (classic hot-key skew ~1.0).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("workload: zipf exponent must be >= 0, got %v", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	return &Zipf{cum: cum}, nil
}

// Sample maps a uniform variate u in [0,1) to a rank.
func (z *Zipf) Sample(u float64) int {
	target := u * z.cum[len(z.cum)-1]
	k := sort.SearchFloat64s(z.cum, target)
	if k == len(z.cum) { // u ≈ 1 edge
		k = len(z.cum) - 1
	}
	return k
}

// LoadSpec configures a closed-loop load run against an ObjectService.
// Zero values get sensible defaults from normalize.
type LoadSpec struct {
	// Tenants are cycled across the preloaded population (and workers).
	// Default: one tenant, "load".
	Tenants []string
	// Objects is the preloaded read population size. Default 64.
	Objects int
	// ObjectSize is the payload size of every object. Default 64 KiB.
	ObjectSize int
	// Ops is the total operation count across all workers. Default 256.
	Ops int
	// Workers is the closed-loop concurrency. Default 4.
	Workers int
	// ReadFraction of ops are Gets against the Zipf-ranked population;
	// the rest ingest fresh objects. Default 0.9 (archival read tail).
	ReadFraction float64
	// ZipfS is the popularity exponent. Default 1.1.
	ZipfS float64
	// Seed makes the run deterministic. Same spec, same stream.
	Seed uint64
}

func (s *LoadSpec) normalize() {
	if len(s.Tenants) == 0 {
		s.Tenants = []string{"load"}
	}
	if s.Objects <= 0 {
		s.Objects = 64
	}
	if s.ObjectSize <= 0 {
		s.ObjectSize = 64 << 10
	}
	if s.Ops <= 0 {
		s.Ops = 256
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.ReadFraction <= 0 || s.ReadFraction > 1 {
		s.ReadFraction = 0.9
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.1
	}
}

// LoadResult aggregates one load run. Percentiles are exact (computed
// from every recorded sample, not a sketch).
type LoadResult struct {
	Ops, Puts, Gets int
	Errors          int // explicit op failures (tolerated under chaos)
	Corrupted       int // silent payload mismatches — must stay 0
	BytesWritten    int64
	BytesRead       int64
	Duration        time.Duration
	OpsPerSec       float64
	GetP50          time.Duration
	GetP99          time.Duration
	GetP999         time.Duration
	PutP50          time.Duration
	PutP99          time.Duration
	PutP999         time.Duration
	RepairBytes     int64 // bytes moved by read-repair during the run
}

// loadObjName names the preloaded population; rank r is the Zipf rank.
func loadObjName(r int) string { return fmt.Sprintf("hot-%06d", r) }

// RunLoad preloads a population, then drives Ops operations through svc
// from Workers closed-loop workers: reads pick Zipf-popular objects and
// verify them bit-for-bit against regeneration, writes ingest fresh
// objects. If svc exposes Metrics() (serve.Service does), RepairBytes is
// the serve.repair.bytes delta across the run. Explicit errors are
// counted, silent corruption fails loudly in Corrupted.
func RunLoad(ctx context.Context, svc ObjectService, spec LoadSpec) (LoadResult, error) {
	spec.normalize()
	z, err := NewZipf(spec.Objects, spec.ZipfS)
	if err != nil {
		return LoadResult{}, err
	}

	// Preload the read population. Failures here are fatal: without the
	// population the read side of the run measures nothing.
	var preBuf []byte
	for r := 0; r < spec.Objects; r++ {
		tn := spec.Tenants[r%len(spec.Tenants)]
		name := loadObjName(r)
		preBuf = payloadInto(preBuf, tn+"/"+name, spec.ObjectSize)
		if _, err := svc.Put(ctx, tn, name, bytes.NewReader(preBuf)); err != nil {
			return LoadResult{}, fmt.Errorf("workload: preload %s/%s: %w", tn, name, err)
		}
	}

	repairBefore := int64(0)
	type metricser interface{ Metrics() *obs.Registry }
	if m, ok := svc.(metricser); ok {
		repairBefore = m.Metrics().Counter("serve.repair.bytes").Value()
	}

	type workerResult struct {
		res     LoadResult
		getLats []time.Duration
		putLats []time.Duration
	}
	results := make([]workerResult, spec.Workers)
	perWorker := spec.Ops / spec.Workers
	extra := spec.Ops % spec.Workers

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		ops := perWorker
		if w < extra {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(spec.Seed, uint64(w)+0x10AD))
			wr := &results[w]
			var verifyBuf, putBuf []byte // reused: zero steady-state allocation
			var got bytes.Buffer
			for op := 0; op < ops; op++ {
				if ctx.Err() != nil {
					return
				}
				wr.res.Ops++
				if rng.Float64() < spec.ReadFraction {
					r := z.Sample(rng.Float64())
					tn := spec.Tenants[r%len(spec.Tenants)]
					name := loadObjName(r)
					got.Reset()
					t0 := time.Now()
					_, err := svc.Get(ctx, tn, name, &got)
					wr.getLats = append(wr.getLats, time.Since(t0))
					if err != nil {
						wr.res.Errors++
						continue
					}
					wr.res.Gets++
					wr.res.BytesRead += int64(got.Len())
					verifyBuf = payloadInto(verifyBuf, tn+"/"+name, got.Len())
					if !bytes.Equal(got.Bytes(), verifyBuf) {
						wr.res.Corrupted++
					}
				} else {
					tn := spec.Tenants[w%len(spec.Tenants)]
					name := fmt.Sprintf("ingest-w%d-%06d", w, op)
					putBuf = payloadInto(putBuf, tn+"/"+name, spec.ObjectSize)
					t0 := time.Now()
					n, err := svc.Put(ctx, tn, name, bytes.NewReader(putBuf))
					wr.putLats = append(wr.putLats, time.Since(t0))
					if err != nil {
						wr.res.Errors++
						continue
					}
					wr.res.Puts++
					wr.res.BytesWritten += int64(n)
				}
			}
		}(w, ops)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total LoadResult
	var getLats, putLats []time.Duration
	for _, wr := range results {
		total.Ops += wr.res.Ops
		total.Puts += wr.res.Puts
		total.Gets += wr.res.Gets
		total.Errors += wr.res.Errors
		total.Corrupted += wr.res.Corrupted
		total.BytesRead += wr.res.BytesRead
		total.BytesWritten += wr.res.BytesWritten
		getLats = append(getLats, wr.getLats...)
		putLats = append(putLats, wr.putLats...)
	}
	total.Duration = elapsed
	if elapsed > 0 {
		total.OpsPerSec = float64(total.Ops) / elapsed.Seconds()
	}
	total.GetP50, total.GetP99, total.GetP999 = exactPercentiles(getLats)
	total.PutP50, total.PutP99, total.PutP999 = exactPercentiles(putLats)
	if m, ok := svc.(metricser); ok {
		total.RepairBytes = m.Metrics().Counter("serve.repair.bytes").Value() - repairBefore
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	return total, nil
}

// exactPercentiles sorts the recorded samples and indexes them — exact by
// the nearest-rank definition, no sketch error.
func exactPercentiles(lats []time.Duration) (p50, p99, p999 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return rank(0.50), rank(0.99), rank(0.999)
}
