package workload

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/obs"
	"tornado/internal/serve"
)

func TestZipfShape(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative exponent accepted")
	}
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Sample(rng.Float64())]++
	}
	// Rank 0 dominates and the tail is still reachable.
	if counts[0] <= counts[10] || counts[0] <= counts[50] {
		t.Errorf("no head skew: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
	tail := 0
	for _, c := range counts[50:] {
		tail += c
	}
	if tail == 0 {
		t.Error("tail never sampled")
	}
	// s=0 is uniform: head and tail within noise of each other.
	u, _ := NewZipf(100, 0)
	uc := make([]int, 100)
	for i := 0; i < 50000; i++ {
		uc[u.Sample(rng.Float64())]++
	}
	if ratio := float64(uc[0]) / float64(uc[99]); math.Abs(ratio-1) > 0.5 {
		t.Errorf("s=0 not uniform: head/tail ratio %v", ratio)
	}
	// Boundary variates stay in range.
	if k := z.Sample(0); k != 0 {
		t.Errorf("Sample(0) = %d", k)
	}
	if k := z.Sample(math.Nextafter(1, 0)); k < 0 || k > 99 {
		t.Errorf("Sample(1-ε) = %d out of range", k)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(64, 1.3)
	b, _ := NewZipf(64, 1.3)
	r1 := rand.New(rand.NewPCG(9, 9))
	r2 := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 1000; i++ {
		if a.Sample(r1.Float64()) != b.Sample(r2.Float64()) {
			t.Fatal("same seed diverged")
		}
	}
}

// TestRunLoadUnderChaos drives the full stack the way benchreport does:
// serve.Service over a chaos-injected store, a concurrent repair scrub
// underneath, Zipf reads with regeneration verification. The invariant is
// bit-exact-or-error: Corrupted must be zero no matter what the injector
// does.
func TestRunLoadUnderChaos(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(21, 1)))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	inj := chaos.Wrap(archive.NewArrayBackend(device.NewArray(g.Total)), chaos.Config{
		Seed:            31,
		BitFlipRate:     0.002,
		ReadCorruptRate: 0.002,
		ReadErrRate:     0.005,
		WriteErrRate:    0.002,
		Metrics:         reg,
	})
	st, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New([]*archive.Store{st}, serve.Config{CacheBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	scrubCtx, stopScrub := context.WithCancel(ctx)
	scrubDone := make(chan struct{})
	go func() {
		defer close(scrubDone)
		for scrubCtx.Err() == nil {
			_, _ = st.ScrubCtx(scrubCtx, true)
		}
	}()

	spec := LoadSpec{
		Tenants:      []string{"a", "b"},
		Objects:      16,
		ObjectSize:   4096,
		Ops:          200,
		Workers:      4,
		ReadFraction: 0.8,
		ZipfS:        1.1,
		Seed:         5,
	}
	res, err := RunLoad(ctx, svc, spec)
	stopScrub()
	<-scrubDone
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupted != 0 {
		t.Fatalf("%d silent corruptions under chaos load", res.Corrupted)
	}
	if res.Ops != spec.Ops {
		t.Errorf("ran %d ops, want %d", res.Ops, spec.Ops)
	}
	if res.Gets == 0 || res.Puts == 0 {
		t.Errorf("mix degenerate: %d gets, %d puts", res.Gets, res.Puts)
	}
	if res.GetP50 <= 0 || res.GetP999 < res.GetP99 || res.GetP99 < res.GetP50 {
		t.Errorf("percentiles not ordered: p50=%v p99=%v p999=%v", res.GetP50, res.GetP99, res.GetP999)
	}
	if res.OpsPerSec <= 0 {
		t.Errorf("OpsPerSec = %v", res.OpsPerSec)
	}
}

// TestRunLoadCancellation: a cancelled context stops the run and reports
// the ctx error rather than hanging.
func TestRunLoadCancellation(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(22, 1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := archive.New(g, device.NewArray(g.Total), archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New([]*archive.Store{st}, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLoad(ctx, svc, LoadSpec{Objects: 2, ObjectSize: 256, Ops: 50}); err == nil {
		t.Fatal("cancelled RunLoad reported success")
	}
}

func TestExactPercentiles(t *testing.T) {
	if p50, p99, p999 := exactPercentiles(nil); p50 != 0 || p99 != 0 || p999 != 0 {
		t.Error("empty samples should yield zeros")
	}
	lats := make([]time.Duration, 1000)
	for i := range lats {
		lats[i] = time.Duration(i + 1)
	}
	p50, p99, p999 := exactPercentiles(lats)
	if p50 != 500 || p99 != 990 || p999 != 999 {
		t.Errorf("got p50=%d p99=%d p999=%d", p50, p99, p999)
	}
}
