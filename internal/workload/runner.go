package workload

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand/v2"

	"tornado/internal/archive"
	"tornado/internal/device"
)

// Result aggregates a workload run against an archival store.
type Result struct {
	Puts, Gets       int
	BytesIn          int64
	BytesOut         int64
	FailuresInjected int
	Replacements     int
	BlocksRepaired   int
	DevicesAccessed  int64 // summed over gets
	Corrupted        int   // payload mismatches (must stay 0)
	LostObjects      int   // gets that returned data-loss
}

// Run executes the spec's operation stream against store. Devices must be
// the store's device array (failure injection targets it). Every retrieved
// payload is verified against a seeded regeneration of the original, so
// corruption cannot hide.
func Run(store *archive.Store, devices device.Array, spec Spec) (Result, error) {
	gen, err := NewGenerator(spec)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0xD1CE))
	var res Result
	var putBuf, verifyBuf []byte // reused across ops; payloads are regenerated, never stored
	for {
		op, ok := gen.Next()
		if !ok {
			return res, nil
		}
		switch op.Kind {
		case OpPut:
			putBuf = payloadInto(putBuf, op.Object, op.Size)
			if err := store.Put(op.Object, putBuf); err != nil {
				return res, fmt.Errorf("workload: put %s: %w", op.Object, err)
			}
			res.Puts++
			res.BytesIn += int64(len(putBuf))
		case OpGet:
			got, stats, err := store.Get(op.Object)
			if err != nil {
				res.LostObjects++
				continue
			}
			res.Gets++
			res.BytesOut += int64(len(got))
			res.DevicesAccessed += int64(stats.DevicesAccessed)
			verifyBuf = payloadInto(verifyBuf, op.Object, len(got))
			if !bytes.Equal(got, verifyBuf) {
				res.Corrupted++
			}
		case OpFail:
			// Fail a random live device.
			live := make([]int, 0, len(devices))
			for i, d := range devices {
				if d.State() != device.Failed {
					live = append(live, i)
				}
			}
			if len(live) == 0 {
				continue
			}
			devices[live[rng.IntN(len(live))]].Fail()
			res.FailuresInjected++
		case OpRepair:
			for _, d := range devices {
				if d.State() == device.Failed {
					d.Replace()
					res.Replacements++
				}
			}
			rep, err := store.Scrub(true)
			if err != nil {
				return res, fmt.Errorf("workload: scrub: %w", err)
			}
			res.BlocksRepaired += rep.BlocksRepaired
		}
	}
}

// payloadFor deterministically regenerates an object's content from its
// name, so verification needs no copy of the data.
func payloadFor(name string, size int) []byte {
	return payloadInto(nil, name, size)
}

// payloadInto regenerates the payload into dst's storage when it fits,
// so steady-state generation and verification allocate nothing.
func payloadInto(dst []byte, name string, size int) []byte {
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewPCG(h.Sum64(), 7))
	if cap(dst) < size {
		dst = make([]byte, size)
	}
	dst = dst[:size]
	for i := range dst {
		dst[i] = byte(rng.IntN(256))
	}
	return dst
}
