package workload

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"tornado/internal/archive"
	"tornado/internal/core"
	"tornado/internal/device"
)

func TestGeneratorDeterministic(t *testing.T) {
	spec := Spec{Ops: 200, Seed: 3, FailEvery: 37, RepairEvery: 80}
	a, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	for {
		oa, oka := a.Next()
		ob, okb := b.Next()
		if oka != okb || oa != ob {
			t.Fatalf("streams diverge: %v/%v vs %v/%v", oa, oka, ob, okb)
		}
		if !oka {
			return
		}
	}
}

func TestGeneratorOpMix(t *testing.T) {
	gen, err := NewGenerator(Spec{Ops: 2000, PutFraction: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	puts, gets := 0, 0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpPut:
			puts++
			if op.Object == "" || op.Size <= 0 {
				t.Fatalf("bad put %+v", op)
			}
		case OpGet:
			gets++
			if op.Object == "" {
				t.Fatal("get without object")
			}
		}
	}
	if puts+gets != 2000 {
		t.Errorf("ops = %d", puts+gets)
	}
	// ~30% puts with slack (the first op is always a put).
	frac := float64(puts) / 2000
	if frac < 0.25 || frac > 0.36 {
		t.Errorf("put fraction = %v", frac)
	}
}

func TestGeneratorGetsReferenceStoredObjects(t *testing.T) {
	gen, err := NewGenerator(Spec{Ops: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	stored := map[string]bool{}
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpPut:
			if stored[op.Object] {
				t.Fatalf("duplicate put %s", op.Object)
			}
			stored[op.Object] = true
		case OpGet:
			if !stored[op.Object] {
				t.Fatalf("get of unknown object %s", op.Object)
			}
		}
	}
}

func TestGeneratorFailRepairSchedule(t *testing.T) {
	gen, err := NewGenerator(Spec{Ops: 100, Seed: 7, FailEvery: 25, RepairEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	fails, repairs := 0, 0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpFail:
			fails++
		case OpRepair:
			repairs++
		}
	}
	if fails == 0 || repairs == 0 {
		t.Errorf("fails=%d repairs=%d", fails, repairs)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{Ops: -1}); err == nil {
		t.Error("negative ops accepted")
	}
	if _, err := NewGenerator(Spec{Ops: 1, MinSize: 10, MaxSize: 5}); err == nil {
		t.Error("min>max accepted")
	}
}

func TestSizeDistributions(t *testing.T) {
	for _, dist := range []SizeDist{SizeFixed, SizeUniform, SizeLogNormal} {
		gen, err := NewGenerator(Spec{
			Ops: 300, PutFraction: 1, SizeDist: dist,
			MeanSize: 1000, MinSize: 10, MaxSize: 50000, Sigma: 1, Seed: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[int]bool{}
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if op.Kind != OpPut {
				continue
			}
			if op.Size < 10 || op.Size > 50000 {
				t.Fatalf("dist %d: size %d out of bounds", dist, op.Size)
			}
			distinct[op.Size] = true
		}
		if dist == SizeFixed && len(distinct) != 1 {
			t.Errorf("fixed sizes not fixed: %d distinct", len(distinct))
		}
		if dist != SizeFixed && len(distinct) < 50 {
			t.Errorf("dist %d: only %d distinct sizes", dist, len(distinct))
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{OpPut: "put", OpGet: "get", OpFail: "fail", OpRepair: "repair", OpKind(9): "op(9)"} {
		if k.String() != want {
			t.Errorf("%d → %q", int(k), k.String())
		}
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(44, 1)))
	if err != nil {
		t.Fatal(err)
	}
	devices := device.NewArray(g.Total)
	store, err := archive.New(g, devices, archive.Config{BlockSize: 256, FirstFailure: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(store, devices, Spec{
		Ops: 120, PutFraction: 0.4, SizeDist: SizeLogNormal,
		MeanSize: 4000, MaxSize: 40000,
		FailEvery: 60, RepairEvery: 90, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts == 0 || res.Gets == 0 {
		t.Errorf("no traffic: %+v", res)
	}
	if res.Corrupted != 0 {
		t.Errorf("%d corrupted payloads", res.Corrupted)
	}
	if res.LostObjects != 0 {
		t.Errorf("%d lost objects with only %d failures before repair", res.LostObjects, res.FailuresInjected)
	}
	if res.FailuresInjected == 0 || res.Replacements == 0 {
		t.Errorf("maintenance not exercised: %+v", res)
	}
	t.Logf("workload result: %+v", res)
}

// Property: the generated stream always references existing objects and
// respects size bounds, for arbitrary specs.
func TestQuickGeneratorWellFormed(t *testing.T) {
	f := func(seed uint64, opsRaw, putFracRaw uint16) bool {
		spec := Spec{
			Ops:         int(opsRaw % 500),
			PutFraction: float64(putFracRaw%100) / 100,
			SizeDist:    SizeDist(seed % 3),
			MeanSize:    1000,
			Seed:        seed,
		}
		gen, err := NewGenerator(spec)
		if err != nil {
			return false
		}
		stored := map[string]bool{}
		count := 0
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			count++
			if count > spec.Ops+10 {
				return false // runaway stream
			}
			switch op.Kind {
			case OpPut:
				if op.Size <= 0 || stored[op.Object] {
					return false
				}
				stored[op.Object] = true
			case OpGet:
				if !stored[op.Object] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
