// Package repairbw is the archive's repair-economics ledger: byte-level
// accounting of every block the data path moves while repairing damage,
// attributed to the cause that moved it. The paper measures *whether* a
// Tornado cascade survives erasures; modern repair-bandwidth work (the
// LDPC repair-bandwidth and regenerating-codes lines in PAPERS.md) treats
// repair *traffic* as a first-class metric alongside reliability and
// storage overhead. A Meter threads through scrub, read-repair, degraded
// GetStream, and the federated block exchange, so "how many bytes did
// healing cost" is measured, not inferred.
//
// Attribution convention: a healthy stripe read (the plan reads exactly
// the Data data blocks, every frame verifies) moves zero repair bytes.
// Everything beyond that baseline — extra blocks a degraded plan pulls in,
// corrupt frames read and discarded, whole failed recovery attempts — is
// degraded-get traffic; write-backs of reconstructed blocks are
// read-repair traffic; every byte a scrub pass touches is scrub traffic
// (the pass exists only to find and fix damage); and block-level exchange
// between federated sites is federation traffic. The conservation test in
// internal/chaos asserts these attributions sum exactly to the bytes
// observed crossing the backend.
package repairbw

import "tornado/internal/obs"

// Cause labels why repair traffic moved.
type Cause int

const (
	// Scrub is proactive verification and repair: every byte a scrub pass
	// reads or writes.
	Scrub Cause = iota
	// ReadRepair is the write-back of blocks reconstructed during a read.
	ReadRepair
	// DegradedGet is read amplification on the Get path: bytes read beyond
	// the healthy-stripe baseline (Data blocks), including corrupt frames
	// and failed recovery attempts.
	DegradedGet
	// Federation is the block-level exchange between federated sites
	// (ReadBlock/WriteBlock) used by ExchangeRecover and RestoreSites.
	Federation

	// NumCauses is the cause count (for iteration).
	NumCauses
)

var causeNames = [NumCauses]string{"scrub", "read_repair", "degraded_get", "federation"}

// String returns the cause's counter-name spelling.
func (c Cause) String() string {
	if c < 0 || c >= NumCauses {
		return "unknown"
	}
	return causeNames[c]
}

// Causes lists every cause in declaration order.
func Causes() []Cause { return []Cause{Scrub, ReadRepair, DegradedGet, Federation} }

// CostReport is the repair bill of one operation (or one cause's running
// total): blocks and framed bytes moved in each direction.
type CostReport struct {
	BlocksRead    int   `json:"blocks_read"`
	BlocksWritten int   `json:"blocks_written"`
	BytesRead     int64 `json:"bytes_read"`
	BytesWritten  int64 `json:"bytes_written"`
}

// Add accumulates o into c.
func (c *CostReport) Add(o CostReport) {
	c.BlocksRead += o.BlocksRead
	c.BlocksWritten += o.BlocksWritten
	c.BytesRead += o.BytesRead
	c.BytesWritten += o.BytesWritten
}

// Zero reports whether the report moved nothing.
func (c CostReport) Zero() bool {
	return c.BlocksRead == 0 && c.BlocksWritten == 0 && c.BytesRead == 0 && c.BytesWritten == 0
}

// Bytes returns total bytes moved in both directions.
func (c CostReport) Bytes() int64 { return c.BytesRead + c.BytesWritten }

// causeCounters is one cause's four obs counters.
type causeCounters struct {
	blocksRead    *obs.Counter
	blocksWritten *obs.Counter
	bytesRead     *obs.Counter
	bytesWritten  *obs.Counter
}

// Meter attributes repair traffic to causes through obs counters
// (repairbw.<cause>.bytes_read and friends), so the ledger shows up in the
// same registry snapshot as the rest of the store's self-healing metrics.
// Record is atomic-add only — safe for concurrent use and free of
// allocation on the data path.
type Meter struct {
	causes [NumCauses]causeCounters
}

// NewMeter registers the per-cause counters on reg (nil gets a private
// registry).
func NewMeter(reg *obs.Registry) *Meter {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Meter{}
	for c := Cause(0); c < NumCauses; c++ {
		prefix := "repairbw." + c.String() + "."
		m.causes[c] = causeCounters{
			blocksRead:    reg.Counter(prefix + "blocks_read"),
			blocksWritten: reg.Counter(prefix + "blocks_written"),
			bytesRead:     reg.Counter(prefix + "bytes_read"),
			bytesWritten:  reg.Counter(prefix + "bytes_written"),
		}
	}
	return m
}

// Record attributes one operation's repair bill to cause. Nil meters and
// empty reports are no-ops, so callers need no guards on the hot path.
func (m *Meter) Record(cause Cause, r CostReport) {
	if m == nil || cause < 0 || cause >= NumCauses || r.Zero() {
		return
	}
	cc := &m.causes[cause]
	cc.blocksRead.Add(int64(r.BlocksRead))
	cc.blocksWritten.Add(int64(r.BlocksWritten))
	cc.bytesRead.Add(r.BytesRead)
	cc.bytesWritten.Add(r.BytesWritten)
}

// Totals returns the running bill of one cause.
func (m *Meter) Totals(cause Cause) CostReport {
	if m == nil || cause < 0 || cause >= NumCauses {
		return CostReport{}
	}
	cc := &m.causes[cause]
	return CostReport{
		BlocksRead:    int(cc.blocksRead.Value()),
		BlocksWritten: int(cc.blocksWritten.Value()),
		BytesRead:     cc.bytesRead.Value(),
		BytesWritten:  cc.bytesWritten.Value(),
	}
}

// Total returns the bill summed over every cause.
func (m *Meter) Total() CostReport {
	var out CostReport
	for c := Cause(0); c < NumCauses; c++ {
		out.Add(m.Totals(c))
	}
	return out
}
