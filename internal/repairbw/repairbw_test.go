package repairbw

import (
	"sync"
	"testing"

	"tornado/internal/obs"
)

func TestCauseNames(t *testing.T) {
	want := map[Cause]string{
		Scrub:       "scrub",
		ReadRepair:  "read_repair",
		DegradedGet: "degraded_get",
		Federation:  "federation",
	}
	if len(Causes()) != int(NumCauses) {
		t.Fatalf("Causes() lists %d causes, want %d", len(Causes()), NumCauses)
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if Cause(-1).String() != "unknown" || NumCauses.String() != "unknown" {
		t.Errorf("out-of-range causes must stringify as unknown")
	}
}

func TestRecordAndTotals(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMeter(reg)
	m.Record(Scrub, CostReport{BlocksRead: 3, BytesRead: 300})
	m.Record(Scrub, CostReport{BlocksWritten: 2, BytesWritten: 200})
	m.Record(ReadRepair, CostReport{BlocksWritten: 1, BytesWritten: 68})

	got := m.Totals(Scrub)
	want := CostReport{BlocksRead: 3, BlocksWritten: 2, BytesRead: 300, BytesWritten: 200}
	if got != want {
		t.Errorf("Totals(Scrub) = %+v, want %+v", got, want)
	}
	if rr := m.Totals(ReadRepair); rr.BytesWritten != 68 || rr.BlocksWritten != 1 {
		t.Errorf("Totals(ReadRepair) = %+v", rr)
	}
	if dg := m.Totals(DegradedGet); !dg.Zero() {
		t.Errorf("unused cause non-zero: %+v", dg)
	}
	total := m.Total()
	if total.BytesRead != 300 || total.BytesWritten != 268 || total.BlocksRead != 3 || total.BlocksWritten != 3 {
		t.Errorf("Total() = %+v", total)
	}

	// The counters land on the registry under repairbw.<cause>.*.
	if v := reg.Counter("repairbw.scrub.bytes_read").Value(); v != 300 {
		t.Errorf("registry counter repairbw.scrub.bytes_read = %d, want 300", v)
	}
	if v := reg.Counter("repairbw.read_repair.bytes_written").Value(); v != 68 {
		t.Errorf("registry counter repairbw.read_repair.bytes_written = %d, want 68", v)
	}
}

func TestNilAndEmptySafe(t *testing.T) {
	var m *Meter
	m.Record(Scrub, CostReport{BytesRead: 1}) // must not panic
	if got := m.Totals(Scrub); !got.Zero() {
		t.Errorf("nil meter Totals = %+v", got)
	}
	m2 := NewMeter(nil)
	m2.Record(Cause(99), CostReport{BytesRead: 1})
	m2.Record(Scrub, CostReport{})
	if got := m2.Total(); !got.Zero() {
		t.Errorf("empty/ignored records leaked into Total: %+v", got)
	}
}

func TestCostReportAdd(t *testing.T) {
	var c CostReport
	c.Add(CostReport{BlocksRead: 1, BlocksWritten: 2, BytesRead: 10, BytesWritten: 20})
	c.Add(CostReport{BlocksRead: 4, BytesRead: 40})
	want := CostReport{BlocksRead: 5, BlocksWritten: 2, BytesRead: 50, BytesWritten: 20}
	if c != want {
		t.Errorf("Add accumulated %+v, want %+v", c, want)
	}
	if c.Bytes() != 70 {
		t.Errorf("Bytes() = %d, want 70", c.Bytes())
	}
}

func TestConcurrentRecord(t *testing.T) {
	m := NewMeter(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Record(DegradedGet, CostReport{BlocksRead: 1, BytesRead: 68})
			}
		}()
	}
	wg.Wait()
	got := m.Totals(DegradedGet)
	if got.BlocksRead != 8000 || got.BytesRead != 8000*68 {
		t.Errorf("concurrent totals %+v", got)
	}
}
