package exp

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/adjust"
	"tornado/internal/core"
)

// The golden values below pin the exhaustive-certification results of the
// three Quick() Tornado graphs and the k=4 clear-cardinality counts of the
// adjustment procedure. Everything pinned is computed by exact enumeration
// over a seeded deterministic pipeline, and is independent of worker count
// (exhaustive failure *counts* are order-invariant aggregates, and every
// recorded failure list here is far below the MaxFailures cap, so scan
// order cannot change which sets are kept). A diff in these numbers means
// the decoder, the enumeration order's completeness, the generator, or the
// adjustment heuristic changed behavior — exactly the regressions the
// incremental kernel must not introduce.
//
// Monte Carlo profile numbers are deliberately not pinned: trial streams
// are split per worker, so they vary with GOMAXPROCS.

// TestGoldenQuickCertification pins exp.Quick()'s worst-case search per
// graph: first failure at 4 lost nodes (the paper's pre-adjustment
// screened-graph result), the exact failing-set count at that cardinality,
// and the full C(96,4) enumeration size.
func TestGoldenQuickCertification(t *testing.T) {
	golden := []struct {
		name         string
		firstFailure int
		failuresAtFF int64
		testedAtFF   int64
		criticalSets int
	}{
		{"Tornado Graph 1", 4, 3, 3321960, 3},
		{"Tornado Graph 2", 4, 1, 3321960, 1},
		{"Tornado Graph 3", 4, 4, 3321960, 4},
	}
	cfg := Quick()
	cfg.Trials = 64 // profile is not under test; keep the pipeline cheap
	for i, want := range golden {
		tg, err := PrepareTornado(cfg, i)
		if err != nil {
			t.Fatalf("%s: %v", want.name, err)
		}
		if tg.Name != want.name {
			t.Errorf("graph %d name = %q, want %q", i, tg.Name, want.name)
		}
		if tg.FirstFailure != want.firstFailure {
			t.Errorf("%s: first failure = %d, want %d", want.name, tg.FirstFailure, want.firstFailure)
		}
		if tg.FailuresAtFF != want.failuresAtFF {
			t.Errorf("%s: failures at first failure = %d, want %d", want.name, tg.FailuresAtFF, want.failuresAtFF)
		}
		if tg.TestedAtFF != want.testedAtFF {
			t.Errorf("%s: combinations tested = %d, want %d", want.name, tg.TestedAtFF, want.testedAtFF)
		}
		if got := len(tg.CriticalSets); got != want.criticalSets {
			t.Errorf("%s: %d critical sets recorded, want %d", want.name, got, want.criticalSets)
		}
	}
}

// TestGoldenClearCardinality pins the Full()-style k=4 adjustment pass on
// each Quick() seed: the exact failing-set count before clearing, the count
// the rewiring converged to, the rounds it took, and whether it cleared.
// Seed 2007 used to stall at one stubborn k=4 failure; with worker-count-
// independent failure witnesses (lex-smallest prefix) and defect-screened
// replacement candidates the heuristic now lands a rewire that clears it.
func TestGoldenClearCardinality(t *testing.T) {
	golden := []struct {
		seed            uint64
		initialFailures int64
		finalFailures   int64
		rounds          int
		cleared         bool
	}{
		{2006, 3, 0, 2, true},
		{2007, 1, 0, 2, true},
		{2011, 4, 0, 4, true},
	}
	for _, want := range golden {
		g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(want.seed, 0)))
		if err != nil {
			t.Fatalf("seed %d: %v", want.seed, err)
		}
		_, reps, err := adjust.Improve(g, 4, adjust.Options{}, rand.New(rand.NewPCG(want.seed, 1)))
		if err != nil {
			t.Fatalf("seed %d: %v", want.seed, err)
		}
		if len(reps) != 1 {
			t.Fatalf("seed %d: %d clear reports, want 1 (k=4 only)", want.seed, len(reps))
		}
		rep := reps[0]
		if rep.K != 4 {
			t.Errorf("seed %d: cleared cardinality %d, want 4", want.seed, rep.K)
		}
		if rep.InitialFailures != want.initialFailures {
			t.Errorf("seed %d: initial failures = %d, want %d", want.seed, rep.InitialFailures, want.initialFailures)
		}
		if rep.FinalFailures != want.finalFailures {
			t.Errorf("seed %d: final failures = %d, want %d", want.seed, rep.FinalFailures, want.finalFailures)
		}
		if rep.Rounds != want.rounds {
			t.Errorf("seed %d: rounds = %d, want %d", want.seed, rep.Rounds, want.rounds)
		}
		if rep.Cleared != want.cleared {
			t.Errorf("seed %d: cleared = %v, want %v", want.seed, rep.Cleared, want.cleared)
		}
	}
}
