package exp

import (
	"strings"
	"testing"
)

// tinyConfig keeps unit tests fast: light sampling, adjustment to k=3,
// certification to k=3 (the paper-shape assertions live in the benchmark
// harness and cmd/experiments, which use Quick/Full).
func tinyConfig() Config {
	return Config{Trials: 400, AdjustK: 3, CertifyK: 4, Seeds: []uint64{2006, 2007, 2011}}
}

// prepared caches the three tornado graphs across tests in this package.
var prepared []*TornadoGraph

func prepare(t *testing.T) []*TornadoGraph {
	t.Helper()
	if prepared != nil {
		return prepared
	}
	cfg := tinyConfig()
	for i := range cfg.Seeds {
		tg, err := PrepareTornado(cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		prepared = append(prepared, tg)
	}
	return prepared
}

func TestPrepareTornado(t *testing.T) {
	tgs := prepare(t)
	for _, tg := range tgs {
		if tg.Graph.Total != 96 {
			t.Errorf("%s: total = %d", tg.Name, tg.Graph.Total)
		}
		// Adjustment cleared k<=3, so any first failure found at
		// certification must be above 3 — or none found at all.
		if tg.FirstFailure != 0 && tg.FirstFailure <= 3 {
			t.Errorf("%s: first failure %d after clearing 3", tg.Name, tg.FirstFailure)
		}
		if tg.Profile == nil {
			t.Errorf("%s: no profile", tg.Name)
		}
	}
}

func TestPrepareTornadoBadIndex(t *testing.T) {
	if _, err := PrepareTornado(tinyConfig(), 9); err == nil {
		t.Error("bad index accepted")
	}
}

func TestTable1(t *testing.T) {
	cfg := tinyConfig()
	text, systems := Table1(cfg, prepare(t))
	if !strings.Contains(text, "RAID5") || !strings.Contains(text, "Tornado Graph 1") {
		t.Errorf("table missing rows:\n%s", text)
	}
	if len(systems) != 7 {
		t.Fatalf("got %d systems", len(systems))
	}
	// Paper shape: mirroring first-fails at 2, RAID5 at 2, RAID6 at 3;
	// adjusted tornado graphs strictly later.
	byName := map[string]System{}
	for _, s := range systems {
		byName[s.Name] = s
	}
	if byName["Mirrored"].FirstFailure != 2 || byName["RAID5 (8x12)"].FirstFailure != 2 {
		t.Error("baseline first failures wrong")
	}
	if byName["RAID6 (8x12)"].FirstFailure != 3 {
		t.Error("RAID6 first failure wrong")
	}
	for _, tg := range prepare(t) {
		s := byName[tg.Name]
		if s.FirstFailure != 0 && s.FirstFailure <= 3 {
			t.Errorf("%s first failure %d not above RAID6", s.Name, s.FirstFailure)
		}
	}
}

func TestTable2ShowsImprovementPipeline(t *testing.T) {
	cfg := tinyConfig()
	text, systems, err := Table2(cfg, prepare(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Unscreened") || !strings.Contains(text, "adjusted") {
		t.Errorf("table missing pipeline stages:\n%s", text)
	}
	// The pipeline must be monotone: unscreened <= screened <= adjusted
	// first failure (0 meaning "none found" sorts last).
	ff := func(s System) int {
		if s.FirstFailure == 0 {
			return 1 << 30
		}
		return s.FirstFailure
	}
	if ff(systems[0]) > ff(systems[1]) {
		t.Errorf("screening lowered first failure: %d -> %d", systems[0].FirstFailure, systems[1].FirstFailure)
	}
	if ff(systems[1]) > ff(systems[2]) {
		t.Errorf("adjustment lowered first failure: %d -> %d", systems[1].FirstFailure, systems[2].FirstFailure)
	}
}

func TestTable3(t *testing.T) {
	cfg := tinyConfig()
	text, systems, err := Table3(cfg, prepare(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Regular - Degree = 4", "Regular - Degree = 11", "doubled", "shifted", "(best)"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if len(systems) != 5 {
		t.Errorf("got %d systems", len(systems))
	}
}

func TestTable4(t *testing.T) {
	cfg := tinyConfig()
	text, systems, err := Table4(cfg, prepare(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cascaded - Degree = 6", "Cascaded - Degree = 3", "(best)"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if len(systems) != 4 {
		t.Errorf("got %d systems", len(systems))
	}
}

func TestTable5PaperShape(t *testing.T) {
	cfg := tinyConfig()
	text, pfails := Table5(cfg, prepare(t), 0.01)
	if !strings.Contains(text, "Individual Disk") {
		t.Errorf("table:\n%s", text)
	}
	// Published analytic values.
	approx := func(got, want, tol float64) bool { d := got - want; return d < tol && d > -tol }
	if !approx(pfails["Striping"], 0.61895, 1e-3) {
		t.Errorf("striping P(fail) = %v", pfails["Striping"])
	}
	if !approx(pfails["RAID5 (8x12)"], 0.04834, 1e-3) {
		t.Errorf("raid5 P(fail) = %v", pfails["RAID5 (8x12)"])
	}
	if !approx(pfails["RAID6 (8x12)"], 0.00164, 1e-4) {
		t.Errorf("raid6 P(fail) = %v", pfails["RAID6 (8x12)"])
	}
	if !approx(pfails["Mirrored"], 0.00479, 1e-4) {
		t.Errorf("mirrored P(fail) = %v", pfails["Mirrored"])
	}
	// Tornado graphs must beat every baseline by orders of magnitude.
	for _, tg := range prepare(t) {
		if pfails[tg.Name] >= pfails["RAID6 (8x12)"]/10 {
			t.Errorf("%s P(fail) = %.3g, not well under RAID6 %.3g", tg.Name, pfails[tg.Name], pfails["RAID6 (8x12)"])
		}
	}
}

func TestTable6PaperShape(t *testing.T) {
	text, nodes := Table6(prepare(t))
	if !strings.Contains(text, "Overhead") {
		t.Errorf("table:\n%s", text)
	}
	// Paper: 61-62 nodes (overhead 1.27-1.29). Allow slack for sampling
	// and graph draws, but the 50% point must sit between the data count
	// and everything.
	for i, n := range nodes {
		if n < 48 || n > 80 {
			t.Errorf("graph %d: 50%% point = %d nodes, outside plausible range", i+1, n)
		}
	}
}

func TestTable7PaperShape(t *testing.T) {
	cfg := tinyConfig()
	tgs := prepare(t)
	for _, tg := range tgs {
		if len(tg.CriticalSets) == 0 {
			t.Skip("a prepared graph has no critical sets at the certification bound; Table 7 needs them")
		}
	}
	text, detected, err := Table7(cfg, tgs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Mirrored (4 copies)") {
		t.Errorf("table:\n%s", text)
	}
	if got := detected["Mirrored (4 copies)"]; got != 4 {
		t.Errorf("mirrored federation = %d, want 4", got)
	}
	same := detected["Tornado 1 + Tornado 1"]
	ff := tgs[0].FirstFailure
	if same != 2*ff {
		t.Errorf("same-graph federation = %d, want %d", same, 2*ff)
	}
	// Complementary pairs must not be worse than the same-graph pairing.
	for _, name := range []string{"Tornado 1 + Tornado 2", "Tornado 1 + Tornado 3", "Tornado 2 + Tornado 3"} {
		if d, ok := detected[name]; ok && d < same {
			t.Errorf("%s detected %d < same-graph %d", name, d, same)
		}
	}
}

func TestEq1Validation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 20000
	text, maxAbs, err := Eq1Validation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Equation (1)") {
		t.Errorf("report:\n%s", text)
	}
	// 20k samples: deviations stay within ~4σ ≈ 0.015.
	if maxAbs > 0.02 {
		t.Errorf("max abs deviation %v too large", maxAbs)
	}
}

func TestCurvesCSV(t *testing.T) {
	_, systems := Table1(tinyConfig(), prepare(t))
	csv := CurvesCSV(systems)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 98 { // header + k=0..96
		t.Errorf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "offline,") {
		t.Errorf("header = %q", lines[0])
	}
	if CurvesCSV(nil) != "" {
		t.Error("empty input should give empty CSV")
	}
	if s := CurveSummary(systems); !strings.Contains(s, "offline") {
		t.Error("summary missing header")
	}
}

func TestBestTornado(t *testing.T) {
	tgs := prepare(t)
	best := BestTornado(tgs)
	for _, tg := range tgs {
		bf, tf := best.FirstFailure, tg.FirstFailure
		if bf == 0 {
			bf = 1 << 30
		}
		if tf == 0 {
			tf = 1 << 30
		}
		if tf > bf {
			t.Errorf("BestTornado missed %s (ff %d > %d)", tg.Name, tg.FirstFailure, best.FirstFailure)
		}
	}
}
