// Package exp regenerates every table and figure of the paper's evaluation
// (§4–§5). It is shared by cmd/experiments and the repository's benchmark
// harness: each experiment function returns a rendered table (and, for the
// figures, the underlying curves) computed from freshly generated graphs.
//
// The paper spent 6 CPU-years; Config scales the same estimators down to
// laptop budgets. Quick() preserves every qualitative conclusion — who
// wins, by roughly what factor, where the crossovers fall — while Full()
// runs the paper-scale exhaustive searches (hours, not weeks, on a modern
// machine).
package exp

import (
	"fmt"
	"math/rand/v2"

	"tornado/internal/adjust"
	"tornado/internal/core"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// Config scales the experiment suite.
type Config struct {
	// Trials is the Monte Carlo sample count per profile point (the paper
	// used 10–34 million).
	Trials int64
	// AdjustK is the cardinality the adjustment procedure clears (the
	// paper cleared 4, yielding first failure 5).
	AdjustK int
	// CertifyK bounds the exhaustive worst-case searches.
	CertifyK int
	// Seeds are the generation seeds for "Tornado Graph 1..n"; three
	// graphs, as in the paper.
	Seeds []uint64
	// Workers bounds simulation goroutines (0 = GOMAXPROCS).
	Workers int
}

// Quick returns a configuration that reproduces every qualitative result
// in minutes on one core: adjustment clears k=3 (first failure 4) and the
// exhaustive certification stops at 4.
func Quick() Config {
	return Config{Trials: 4000, AdjustK: 3, CertifyK: 4, Seeds: []uint64{2006, 2007, 2011}}
}

// Full returns the paper-faithful configuration: adjustment clears k=4
// (first failure 5), certification searches through k=5, and profiles use
// heavier sampling. Expect tens of minutes per graph on one core.
func Full() Config {
	return Config{Trials: 200000, AdjustK: 4, CertifyK: 5, Seeds: []uint64{2006, 2007, 2011}}
}

// TornadoGraph is one prepared "Tornado Graph n": generated, screened,
// adjusted, certified, and profiled.
type TornadoGraph struct {
	Name         string
	Graph        *graph.Graph
	FirstFailure int // 0 = none found up to CertifyK
	FailuresAtFF int64
	TestedAtFF   int64
	CriticalSets [][]int // failing sets at the first failing cardinality
	Profile      *sim.Profile
}

// PrepareTornado generates, screens, adjusts and certifies one Tornado
// graph, then measures its failure profile.
func PrepareTornado(cfg Config, idx int) (*TornadoGraph, error) {
	if idx < 0 || idx >= len(cfg.Seeds) {
		return nil, fmt.Errorf("exp: graph index %d out of range", idx)
	}
	seed := cfg.Seeds[idx]
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(seed, 0)))
	if err != nil {
		return nil, err
	}
	g, _, err = adjust.Improve(g, cfg.AdjustK, adjust.Options{Workers: cfg.Workers}, rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		return nil, err
	}
	g.Name = fmt.Sprintf("Tornado Graph %d", idx+1)
	return finishGraph(cfg, g)
}

// finishGraph certifies and profiles an already-built graph.
func finishGraph(cfg Config, g *graph.Graph) (*TornadoGraph, error) {
	tg := &TornadoGraph{Name: g.Name, Graph: g}
	wc, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: cfg.CertifyK, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	if wc.Found {
		tg.FirstFailure = wc.FirstFailure
		last := wc.PerK[len(wc.PerK)-1]
		tg.FailuresAtFF = last.FailureCount
		tg.TestedAtFF = last.Tested
		tg.CriticalSets = last.Failures
	}
	tg.Profile, err = sim.FailureProfile(g, sim.ProfileOptions{
		Trials: cfg.Trials, Workers: cfg.Workers, Seed: 0xF00D,
	})
	if err != nil {
		return nil, err
	}
	return tg, nil
}

// ProfileGraph certifies and profiles an arbitrary comparison graph (used
// by the alternate-family experiments).
func ProfileGraph(cfg Config, g *graph.Graph) (*TornadoGraph, error) {
	return finishGraph(cfg, g)
}
