package exp

import (
	"fmt"
	"math"
	"math/rand/v2"

	"tornado/internal/lec"
	"tornado/internal/reliability"
	"tornado/internal/sim"
)

// TableOverhead measures the reconstruction-overhead distribution of each
// prepared graph (the §5.2/§6 future-work experiment): the minimum number
// of randomly ordered blocks needed to reconstruct, as mean / median / 99th
// percentile, with the resulting overhead factors.
func TableOverhead(cfg Config, tornadoes []*TornadoGraph) (string, []float64, error) {
	var rows [][]string
	var means []float64
	trials := cfg.Trials / 10
	if trials < 1000 {
		trials = 1000
	}
	for _, tg := range tornadoes {
		res, err := sim.Overhead(tg.Graph, sim.OverheadOptions{
			Trials: trials, Workers: cfg.Workers, Seed: 0xBEEF,
		})
		if err != nil {
			return "", nil, err
		}
		means = append(means, res.Mean())
		rows = append(rows, []string{
			tg.Name,
			fmt.Sprintf("%.2f", res.Mean()),
			fmt.Sprintf("%d", res.Quantile(0.5)),
			fmt.Sprintf("%d", res.Quantile(0.99)),
			fmt.Sprintf("%.3f", res.MeanOverhead()),
		})
	}
	return renderTable(
		"Extension — reconstruction overhead (minimum random-order retrievals)",
		[]string{"System", "Mean", "Median", "p99", "Overhead"},
		rows,
	), means, nil
}

// TableMTTDL extends Table 5 with repair: mean time to data loss (years)
// for each system under no repair, a slow rebuild (1 repairman, 1 month)
// and a fast rebuild (4 repairmen, 1 week), at AFR p = 0.01.
func TableMTTDL(cfg Config, tornadoes []*TornadoGraph, afr float64) (string, map[string]float64, error) {
	lambda := -math.Log(1 - afr) // per-year device failure rate

	type policy struct {
		name      string
		mu        float64
		repairmen int
	}
	policies := []policy{
		{"no repair", 0, 0},
		{"1 rebuild/mo", 12, 1},
		{"4 rebuilds/wk", 52, 4},
	}

	systems := Baselines96()
	for _, tg := range tornadoes {
		systems = append(systems, graphSystem(tg))
	}

	out := map[string]float64{}
	var rows [][]string
	for _, s := range systems {
		row := []string{s.Name}
		for _, pol := range policies {
			m, err := reliability.MTTDL(s.Devices, lambda, pol.mu, pol.repairmen, s.FailGivenK)
			if err != nil {
				return "", nil, err
			}
			row = append(row, formatYears(m))
			if pol.repairmen == 0 {
				out[s.Name] = m
			}
		}
		rows = append(rows, row)
	}
	header := []string{"System"}
	for _, pol := range policies {
		header = append(header, pol.name)
	}
	return renderTable(
		fmt.Sprintf("Extension — MTTDL in years under repair (AFR p=%.2g)", afr),
		header, rows,
	), out, nil
}

// TableLEC compares an automatically searched LEC-style graph (the §2.1
// future-work family) against the best prepared Tornado graph on the
// standard metrics.
func TableLEC(cfg Config, tornadoes []*TornadoGraph) (string, []System, error) {
	lecGraph, st, err := lec.Generate(48, 48, lec.Options{
		Candidates: 12, ScreenK: min(cfg.CertifyK, 3), Workers: cfg.Workers,
	}, rand.New(rand.NewPCG(cfg.Seeds[0], 8)))
	if err != nil {
		return "", nil, err
	}
	lecGraph.Name = fmt.Sprintf("LEC-style (best of %d)", st.Candidates)
	lecTG, err := ProfileGraph(cfg, lecGraph)
	if err != nil {
		return "", nil, err
	}
	best := BestTornado(tornadoes)
	bs := graphSystem(best)
	bs.Name = best.Name + " (best)"
	systems := []System{graphSystem(lecTG), bs}

	var rows [][]string
	for _, s := range systems {
		rows = append(rows, []string{s.Name, ffString(s.FirstFailure, cfg.CertifyK), avgString(s)})
	}
	return renderTable(
		"Extension — LEC-style family vs Tornado (documented approximation)",
		[]string{"System", "First Failure", "Avg to Reconstruct"},
		rows,
	), systems, nil
}

func formatYears(y float64) string {
	switch {
	case y >= 1e6:
		return fmt.Sprintf("%.3g My", y/1e6)
	case y >= 1e3:
		return fmt.Sprintf("%.3g ky", y/1e3)
	default:
		return fmt.Sprintf("%.3g y", y)
	}
}
