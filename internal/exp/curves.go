package exp

import (
	"fmt"
	"strings"
)

// CurvesCSV renders the failure-fraction curves of the given systems as
// CSV: one row per offline-node count, one column per system. This is the
// data behind Figures 3–6 (fraction of reconstruction failures by number
// of missing nodes).
func CurvesCSV(systems []System) string {
	if len(systems) == 0 {
		return ""
	}
	n := systems[0].Devices
	var b strings.Builder
	b.WriteString("offline")
	for _, s := range systems {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	for k := 0; k <= n; k++ {
		fmt.Fprintf(&b, "%d", k)
		for _, s := range systems {
			fmt.Fprintf(&b, ",%.6g", s.FailGivenK(k))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CurveSummary renders a coarse text preview of the curves (every 8th
// point) for terminal output.
func CurveSummary(systems []System) string {
	if len(systems) == 0 {
		return ""
	}
	header := []string{"offline"}
	for _, s := range systems {
		header = append(header, s.Name)
	}
	var rows [][]string
	for k := 0; k <= systems[0].Devices; k += 8 {
		row := []string{fmt.Sprintf("%d", k)}
		for _, s := range systems {
			row = append(row, fmt.Sprintf("%.4f", s.FailGivenK(k)))
		}
		rows = append(rows, row)
	}
	return renderTable("Failure fraction by offline nodes (every 8th point)", header, rows)
}
