package exp

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"tornado/internal/altgraph"
	"tornado/internal/core"
	"tornado/internal/defect"
	"tornado/internal/federation"
	"tornado/internal/raid"
	"tornado/internal/reliability"
	"tornado/internal/sim"
)

// System is one comparison row: a named storage scheme with its failure
// curve over a 96-device array.
type System struct {
	Name    string
	Devices int
	Data    int
	Parity  int
	// FailGivenK is P(data loss | k devices offline).
	FailGivenK func(k int) float64
	// FirstFailure is the smallest k with nonzero failure probability
	// (analytic for RAID, measured for graphs; 0 = none observed).
	FirstFailure int
}

// AvgToReconstruct is the expected minimum online-node count for
// reconstruction, Σ_m P(fail | m online).
func (s System) AvgToReconstruct() float64 {
	sum := 0.0
	for m := 0; m < s.Devices; m++ {
		sum += s.FailGivenK(s.Devices - m)
	}
	return sum
}

// analyticSystem wraps a closed-form baseline.
func analyticSystem(name string, devices, data int, f func(int) float64) System {
	ff := 0
	for k := 1; k <= devices; k++ {
		if f(k) > 0 {
			ff = k
			break
		}
	}
	return System{Name: name, Devices: devices, Data: data, Parity: devices - data,
		FailGivenK: f, FirstFailure: ff}
}

// graphSystem wraps a measured graph profile.
func graphSystem(tg *TornadoGraph) System {
	return System{
		Name:    tg.Name,
		Devices: tg.Graph.Total,
		Data:    tg.Graph.Data,
		Parity:  tg.Graph.Total - tg.Graph.Data,
		FailGivenK: func(k int) float64 {
			if k <= tg.FirstFailure-1 {
				// Certified by exhaustive search: no failure below the
				// first-failure point.
				return 0
			}
			if k == tg.FirstFailure && tg.TestedAtFF > 0 {
				// Exact fraction from the exhaustive certification; the
				// sampled profile cannot resolve ~1e-7 fractions and this
				// term dominates the reliability integral (§5.1).
				return float64(tg.FailuresAtFF) / float64(tg.TestedAtFF)
			}
			return tg.Profile.FailFraction(k)
		},
		FirstFailure: tg.FirstFailure,
	}
}

// Baselines96 returns the analytic comparison systems.
func Baselines96() []System {
	return []System{
		analyticSystem("Striping", 96, 96, func(k int) float64 { return raid.StripingFailGivenK(96, k) }),
		analyticSystem("RAID5 (8x12)", 96, 88, func(k int) float64 { return raid.RAID5FailGivenK(8, 12, k) }),
		analyticSystem("RAID6 (8x12)", 96, 80, func(k int) float64 { return raid.RAID6FailGivenK(8, 12, k) }),
		analyticSystem("Mirrored", 96, 48, func(k int) float64 { return raid.MirroredFailGivenK(48, k) }),
	}
}

func renderTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		_ = i
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func ffString(ff int, certifyK int) string {
	if ff == 0 {
		return fmt.Sprintf(">%d", certifyK)
	}
	return fmt.Sprintf("%d", ff)
}

func avgString(s System) string {
	avg := s.AvgToReconstruct()
	return fmt.Sprintf("%.2f (%.2f)", avg, avg/float64(s.Data))
}

// Table1 reproduces Figure 3 / Table 1: RAID and mirrored baselines
// against the prepared Tornado graphs (first failure and average number of
// nodes capable of reconstructing the data).
func Table1(cfg Config, tornadoes []*TornadoGraph) (string, []System) {
	systems := Baselines96()
	for _, tg := range tornadoes {
		systems = append(systems, graphSystem(tg))
	}
	var rows [][]string
	for _, s := range systems {
		rows = append(rows, []string{s.Name, ffString(s.FirstFailure, cfg.CertifyK), avgString(s)})
	}
	return renderTable(
		"Table 1 / Figure 3 — RAID vs Tornado (96 devices)",
		[]string{"System", "First Failure", "Avg to Reconstruct"},
		rows,
	), systems
}

// Table2 reproduces Figure 4 / Table 2: the effect of defect screening and
// feedback adjustment. It regenerates an unscreened and a screened-only
// graph from the first seed and compares them with the fully adjusted
// graphs.
func Table2(cfg Config, tornadoes []*TornadoGraph) (string, []System, error) {
	seed := cfg.Seeds[0]

	raw, err := core.GenerateUnscreened(core.DefaultParams(), rand.New(rand.NewPCG(seed, 0)))
	if err != nil {
		return "", nil, err
	}
	raw.Name = "Unscreened (no defect detection)"
	rawTG, err := ProfileGraph(cfg, raw)
	if err != nil {
		return "", nil, err
	}

	screened, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(seed, 0)))
	if err != nil {
		return "", nil, err
	}
	screened.Name = "Screened (defect detection)"
	scrTG, err := ProfileGraph(cfg, screened)
	if err != nil {
		return "", nil, err
	}

	systems := []System{graphSystem(rawTG), graphSystem(scrTG)}
	for _, tg := range tornadoes {
		s := graphSystem(tg)
		s.Name = tg.Name + " (adjusted)"
		systems = append(systems, s)
	}
	var rows [][]string
	for _, s := range systems {
		rows = append(rows, []string{s.Name, ffString(s.FirstFailure, cfg.CertifyK), avgString(s)})
	}
	note := fmt.Sprintf("unscreened defects up to size 3: %d", len(defect.ScanDataLevel(raw, 3)))
	return renderTable(
		"Table 2 / Figure 4 — defect detection and adjustment ("+note+")",
		[]string{"System", "First Failure", "Avg to Reconstruct"},
		rows,
	), systems, nil
}

// Table3 reproduces Figure 5 / Table 3: regular single-stage graphs and
// altered Tornado distributions against the best Tornado graph.
func Table3(cfg Config, tornadoes []*TornadoGraph) (string, []System, error) {
	var systems []System
	rng := rand.New(rand.NewPCG(cfg.Seeds[0], 3))

	for _, deg := range []int{4, 11} {
		g, err := altgraph.RegularSingleStage(48, deg, rng)
		if err != nil {
			return "", nil, err
		}
		g.Name = fmt.Sprintf("Regular - Degree = %d", deg)
		tg, err := ProfileGraph(cfg, g)
		if err != nil {
			return "", nil, err
		}
		systems = append(systems, graphSystem(tg))
	}

	doubled, _, err := altgraph.DoubledTornado(core.DefaultParams(), rng)
	if err != nil {
		return "", nil, err
	}
	doubled.Name = "Altered Tornado (dist. doubled)"
	dTG, err := ProfileGraph(cfg, doubled)
	if err != nil {
		return "", nil, err
	}
	systems = append(systems, graphSystem(dTG))

	shifted, _, err := altgraph.ShiftedTornado(core.DefaultParams(), rng)
	if err != nil {
		return "", nil, err
	}
	shifted.Name = "Altered Tornado (dist. shifted)"
	sTG, err := ProfileGraph(cfg, shifted)
	if err != nil {
		return "", nil, err
	}
	systems = append(systems, graphSystem(sTG))

	best := BestTornado(tornadoes)
	bs := graphSystem(best)
	bs.Name = best.Name + " (best)"
	systems = append(systems, bs)

	var rows [][]string
	for _, s := range systems {
		rows = append(rows, []string{s.Name, ffString(s.FirstFailure, cfg.CertifyK), avgString(s)})
	}
	return renderTable(
		"Table 3 / Figure 5 — Tornado vs alternate graph families",
		[]string{"System", "First Failure", "Avg to Reconstruct"},
		rows,
	), systems, nil
}

// Table4 reproduces Figure 6 / Table 4: fixed-degree cascaded random
// graphs against the best Tornado graph.
func Table4(cfg Config, tornadoes []*TornadoGraph) (string, []System, error) {
	var systems []System
	rng := rand.New(rand.NewPCG(cfg.Seeds[0], 4))
	for _, deg := range []int{6, 4, 3} {
		g, err := altgraph.FixedCascade(96, deg, rng)
		if err != nil {
			return "", nil, err
		}
		g.Name = fmt.Sprintf("Cascaded - Degree = %d", deg)
		tg, err := ProfileGraph(cfg, g)
		if err != nil {
			return "", nil, err
		}
		systems = append(systems, graphSystem(tg))
	}
	best := BestTornado(tornadoes)
	bs := graphSystem(best)
	bs.Name = best.Name + " (best)"
	systems = append(systems, bs)

	var rows [][]string
	for _, s := range systems {
		rows = append(rows, []string{s.Name, ffString(s.FirstFailure, cfg.CertifyK), avgString(s)})
	}
	return renderTable(
		"Table 4 / Figure 6 — fixed-degree cascades vs Tornado",
		[]string{"System", "First Failure", "Avg to Reconstruct"},
		rows,
	), systems, nil
}

// BestTornado picks the prepared graph with the latest first failure,
// breaking ties by lower average-to-reconstruct (the paper's "Tornado
// Graph 3 (best)").
func BestTornado(tornadoes []*TornadoGraph) *TornadoGraph {
	best := tornadoes[0]
	for _, tg := range tornadoes[1:] {
		bf, tf := best.FirstFailure, tg.FirstFailure
		if bf == 0 {
			bf = 1 << 30
		}
		if tf == 0 {
			tf = 1 << 30
		}
		switch {
		case tf > bf:
			best = tg
		case tf == bf && graphSystem(tg).AvgToReconstruct() < graphSystem(best).AvgToReconstruct():
			best = tg
		}
	}
	return best
}

// Table5 reproduces Table 5: the theoretical probability of data loss for
// 96-disk systems at AFR p = 0.01 with no repair, composing Equations
// (2)–(3) with each system's failure curve.
func Table5(cfg Config, tornadoes []*TornadoGraph, afr float64) (string, map[string]float64) {
	type row struct {
		name         string
		data, parity int
		pfail        float64
	}
	rows := []row{{"Individual Disk", 96, 0, afr}}
	pfails := map[string]float64{"Individual Disk": afr}
	for _, s := range Baselines96() {
		p := reliability.SystemFailure(s.Devices, afr, s.FailGivenK)
		rows = append(rows, row{s.Name, s.Data, s.Parity, p})
		pfails[s.Name] = p
	}
	for _, tg := range tornadoes {
		s := graphSystem(tg)
		p := reliability.SystemFailure(s.Devices, afr, s.FailGivenK)
		rows = append(rows, row{s.Name, s.Data, s.Parity, p})
		pfails[s.Name] = p
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.name, fmt.Sprintf("%d", r.data), fmt.Sprintf("%d", r.parity), fmt.Sprintf("%.4g", r.pfail)})
	}
	return renderTable(
		fmt.Sprintf("Table 5 — P(fail) for 96-disk systems, AFR p=%.2g, no repair", afr),
		[]string{"System", "Data", "Parity", "P(fail)"},
		cells,
	), pfails
}

// Table6 reproduces Table 6: the number of nodes required for 50%
// reconstruction success and the resulting overhead.
func Table6(tornadoes []*TornadoGraph) (string, []int) {
	var rows [][]string
	var nodes []int
	for _, tg := range tornadoes {
		n := tg.Profile.NodesForSuccessProbability(0.5)
		nodes = append(nodes, n)
		rows = append(rows, []string{tg.Name, fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", tg.Profile.Overhead())})
	}
	return renderTable(
		"Table 6 — nodes for 50% reconstruction success and overhead",
		[]string{"System", "Nodes", "Overhead"},
		rows,
	), nodes
}

// Table7 reproduces Table 7: first failure detected for two-site federated
// systems — quadruple mirroring, the same Tornado graph twice, and the
// complementary pairs.
func Table7(cfg Config, tornadoes []*TornadoGraph) (string, map[string]int, error) {
	detected := map[string]int{}
	var rows [][]string

	// Mirrored (4 copies): two mirrored-48 sites.
	m := raid.MirroredGraph(48)
	wc, err := sim.WorstCase(m, sim.WorstCaseOptions{MaxK: 2, Workers: cfg.Workers})
	if err != nil {
		return "", nil, err
	}
	mcs := federation.CriticalSets(m, wc.PerK[len(wc.PerK)-1].Failures)
	msys, err := federation.NewSystem(m, m.Clone())
	if err != nil {
		return "", nil, err
	}
	det, err := msys.DetectFirstFailure([][]federation.CriticalSet{mcs, mcs}, federation.SearchOptions{Seed: 70})
	if err != nil {
		return "", nil, err
	}
	detected["Mirrored (4 copies)"] = det.TotalErased
	rows = append(rows, []string{"Mirrored (4 copies)", fmt.Sprintf("%d", det.TotalErased)})

	pairs := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 2}}
	for _, pr := range pairs {
		a, b := tornadoes[pr[0]], tornadoes[pr[1]]
		name := fmt.Sprintf("Tornado %d + Tornado %d", pr[0]+1, pr[1]+1)
		gB := b.Graph
		if pr[0] == pr[1] {
			gB = a.Graph.Clone()
		}
		sys, err := federation.NewSystem(a.Graph, gB)
		if err != nil {
			return "", nil, err
		}
		csA := federation.CriticalSets(a.Graph, a.CriticalSets)
		csB := federation.CriticalSets(gB, b.CriticalSets)
		if len(csA) == 0 || len(csB) == 0 {
			rows = append(rows, []string{name, "n/a (no critical sets found)"})
			continue
		}
		det, err := sys.DetectFirstFailure([][]federation.CriticalSet{csA, csB}, federation.SearchOptions{Seed: 71})
		if err != nil {
			return "", nil, err
		}
		detected[name] = det.TotalErased
		rows = append(rows, []string{name, fmt.Sprintf("%d", det.TotalErased)})
	}
	return renderTable(
		"Table 7 — first failure detected, two-site federation",
		[]string{"System", "First Failure Detected"},
		rows,
	), detected, nil
}

// Eq1Validation reproduces the paper's simulator validation: the sampled
// mirrored-system profile against the Equation (1) theory, reporting the
// largest absolute deviation across all offline counts.
func Eq1Validation(cfg Config) (string, float64, error) {
	g := raid.MirroredGraph(48)
	p, err := sim.FailureProfile(g, sim.ProfileOptions{
		Trials: cfg.Trials, Workers: cfg.Workers, Seed: 0xE9,
	})
	if err != nil {
		return "", 0, err
	}
	maxAbs := 0.0
	var rows [][]string
	for k := 1; k <= 96; k++ {
		want := raid.MirroredFailGivenK(48, k)
		got := p.FailFraction(k)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > maxAbs {
			maxAbs = diff
		}
		if k <= 12 || k%12 == 0 {
			exact := ""
			if p.Exact[k] {
				exact = " (exact)"
			}
			rows = append(rows, []string{fmt.Sprintf("%d", k),
				fmt.Sprintf("%.9f", got), fmt.Sprintf("%.9f", want), fmt.Sprintf("%.2g%s", diff, exact)})
		}
	}
	return renderTable(
		"Equation (1) validation — simulated mirrored profile vs theory",
		[]string{"k offline", "Simulated", "Theory", "|diff|"},
		rows,
	), maxAbs, nil
}
