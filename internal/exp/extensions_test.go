package exp

import (
	"strings"
	"testing"
)

func TestTableOverhead(t *testing.T) {
	cfg := tinyConfig()
	text, means, err := TableOverhead(cfg, prepare(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Overhead") {
		t.Errorf("table:\n%s", text)
	}
	if len(means) != 3 {
		t.Fatalf("means: %v", means)
	}
	for i, m := range means {
		// Minimum retrieval count lies between the data count and the
		// total node count.
		if m < 48 || m > 96 {
			t.Errorf("graph %d mean retrievals = %v", i+1, m)
		}
	}
}

func TestTableMTTDL(t *testing.T) {
	cfg := tinyConfig()
	text, noRepair, err := TableMTTDL(cfg, prepare(t), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "no repair") || !strings.Contains(text, "rebuild") {
		t.Errorf("table:\n%s", text)
	}
	// Shape: tornado graphs dominate mirroring which dominates striping.
	if noRepair["Striping"] >= noRepair["Mirrored"] {
		t.Errorf("striping MTTDL %v >= mirrored %v", noRepair["Striping"], noRepair["Mirrored"])
	}
	for _, tg := range prepare(t) {
		if noRepair[tg.Name] <= noRepair["Mirrored"] {
			t.Errorf("%s MTTDL %v <= mirrored %v", tg.Name, noRepair[tg.Name], noRepair["Mirrored"])
		}
	}
}

func TestTableLEC(t *testing.T) {
	cfg := tinyConfig()
	text, systems, err := TableLEC(cfg, prepare(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "LEC-style") || !strings.Contains(text, "(best)") {
		t.Errorf("table:\n%s", text)
	}
	if len(systems) != 2 {
		t.Fatalf("systems: %v", systems)
	}
	// Both systems must produce sane averages.
	for _, s := range systems {
		if avg := s.AvgToReconstruct(); avg < 48 || avg > 96 {
			t.Errorf("%s avg = %v", s.Name, avg)
		}
	}
}

func TestFormatYears(t *testing.T) {
	for y, want := range map[float64]string{
		0.5:   "0.5 y",
		2000:  "2 ky",
		3.2e6: "3.2 My",
	} {
		if got := formatYears(y); got != want {
			t.Errorf("formatYears(%v) = %q, want %q", y, got, want)
		}
	}
}
