package federation

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"tornado/internal/graph"
	"tornado/internal/sim"
)

// TestJointDecodeThreeSites checks exchange semantics at N=3: a data block
// survives as long as ANY site can produce it, and dies only when every
// site has lost it.
func TestJointDecodeThreeSites(t *testing.T) {
	s, err := NewSystem(mirrorSite(4), mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	// All 6 copies of block 0 gone: unrecoverable.
	ok, lost := s.JointDecode([][]int{{0, 4}, {0, 4}, {0, 4}})
	if ok {
		t.Fatal("losing all 6 copies must fail")
	}
	if len(lost) != 1 || lost[0] != 0 {
		t.Errorf("lost = %v, want [0]", lost)
	}
	// Any site with a surviving copy rescues the other two.
	for _, e := range [][][]int{
		{{0, 4}, {0, 4}, {0}},
		{{0, 4}, {0, 4}, {4}},
		{{0, 4}, {0, 4}, {}},
		{{0, 4}, {}, {0, 4}},
	} {
		if !s.JointRecoverable(e) {
			t.Errorf("erasure %v should be recoverable", e)
		}
	}
}

// TestJointDecodeConcurrent is the -race regression for the shared-decoder
// bug: concurrent JointDecode calls on one System must neither race nor
// corrupt each other's results. Every goroutine decodes a different
// erasure with a known outcome and cross-checks against the sequential
// answer.
func TestJointDecodeConcurrent(t *testing.T) {
	s, err := NewSystem(mirrorSite(8), mirrorSite(8))
	if err != nil {
		t.Fatal(err)
	}
	// Pattern i kills all copies of block i — always exactly {i} lost —
	// interleaved with fully-recoverable patterns.
	type tc struct {
		erased [][]int
		ok     bool
		lost   []int
	}
	var cases []tc
	for i := 0; i < 8; i++ {
		cases = append(cases,
			tc{[][]int{{i, i + 8}, {i, i + 8}}, false, []int{i}},
			tc{[][]int{{i, i + 8}, {i}}, true, nil},
		)
	}
	// Sequential ground truth first.
	for _, c := range cases {
		ok, lost := s.JointDecode(c.erased)
		if ok != c.ok || !reflect.DeepEqual(lost, c.lost) {
			t.Fatalf("sequential JointDecode(%v) = (%v, %v), want (%v, %v)",
				c.erased, ok, lost, c.ok, c.lost)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(cases)*8)
	for round := 0; round < 8; round++ {
		for _, c := range cases {
			wg.Add(1)
			go func(c tc) {
				defer wg.Done()
				ok, lost := s.JointDecode(c.erased)
				if ok != c.ok || !reflect.DeepEqual(lost, c.lost) {
					errs <- "concurrent JointDecode diverged from sequential result"
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestDetectFirstFailureThreeSitesMirrored is what the pairwise search
// could not do: with three sites, blocking only one partner leaves the
// third site free to supply every lost block, so a joint witness must
// erase at all sites. Three mirrored-4 sites = 6 copies of each block;
// the true joint first failure is 6 and the generalized search must find
// exactly that.
func TestDetectFirstFailureThreeSitesMirrored(t *testing.T) {
	s, err := NewSystem(mirrorSite(4), mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.WorstCase(s.sites[0], sim.WorstCaseOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := CriticalSets(s.sites[0], wc.PerK[1].Failures)
	det, err := s.DetectFirstFailure([][]CriticalSet{cs, cs, cs}, SearchOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalErased != 6 {
		t.Errorf("detected joint first failure = %d, want 6 (all copies of one block)", det.TotalErased)
	}
	if len(det.SiteErasures) != 3 {
		t.Fatalf("witness has %d site erasures, want 3", len(det.SiteErasures))
	}
	for i, e := range det.SiteErasures {
		if len(e) == 0 {
			t.Errorf("site %d untouched in witness %v — exchange would resurrect the block", i, det.SiteErasures)
		}
	}
	if ok, _ := s.JointDecode(det.SiteErasures); ok {
		t.Error("detection witness does not actually fail")
	}
}

// TestSearchComplementarySets exercises the campaign search plumbing on a
// cheap candidate pool: identical mirrored graphs score identically, every
// 2-combination is present exactly once, and each reported detection is a
// real joint failure.
func TestSearchComplementarySets(t *testing.T) {
	g0, g1, g2 := mirrorSite(4), mirrorSite(4), mirrorSite(4)
	wc, err := sim.WorstCase(g0, sim.WorstCaseOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := CriticalSets(g0, wc.PerK[1].Failures)
	candidates := []*graph.Graph{g0, g1, g2}
	critical := [][]CriticalSet{cs, cs, cs}

	scores, err := SearchComplementarySets(context.Background(), candidates, critical, 2, SearchOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("got %d combinations of 3 choose 2, want 3", len(scores))
	}
	seen := map[string]bool{}
	for _, sc := range scores {
		if len(sc.Indices) != 2 {
			t.Fatalf("combination %v has wrong size", sc.Indices)
		}
		key := fmt.Sprintf("%v", sc.Indices)
		if seen[key] {
			t.Fatalf("combination %v reported twice", sc.Indices)
		}
		seen[key] = true
		// All candidates are the same mirrored graph: every pair detects
		// the all-copies-of-one-block failure at exactly 4.
		if sc.Detection.TotalErased != 4 {
			t.Errorf("combination %v detected %d, want 4", sc.Indices, sc.Detection.TotalErased)
		}
		sys, err := NewSystem(candidates[sc.Indices[0]], candidates[sc.Indices[1]])
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := sys.JointDecode(sc.Detection.SiteErasures); ok {
			t.Errorf("combination %v witness does not fail", sc.Indices)
		}
	}

	// Bad inputs.
	if _, err := SearchComplementarySets(context.Background(), candidates, critical[:2], 2, SearchOptions{}); err == nil {
		t.Error("mismatched critical length accepted")
	}
	if _, err := SearchComplementarySets(context.Background(), candidates, critical, 5, SearchOptions{}); err == nil {
		t.Error("oversized combination accepted")
	}
}
