package federation

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/adjust"
	"tornado/internal/core"
	"tornado/internal/graph"
	"tornado/internal/raid"
	"tornado/internal/sim"
)

func mirrorSite(pairs int) *graph.Graph { return raid.MirroredGraph(pairs) }

func tornadoSite(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(mirrorSite(4)); err == nil {
		t.Error("single site accepted")
	}
	if _, err := NewSystem(mirrorSite(4), mirrorSite(5)); err == nil {
		t.Error("mismatched data counts accepted")
	}
	s, err := NewSystem(mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Sites() != 2 || s.Data() != 4 || s.TotalDevices() != 16 {
		t.Errorf("accessors: sites=%d data=%d devices=%d", s.Sites(), s.Data(), s.TotalDevices())
	}
}

func TestJointDecodeMirrored4Copies(t *testing.T) {
	// Two mirrored sites = 4 copies of every block (Table 7 row 1):
	// first failure is 4 — all copies of one block.
	s, err := NewSystem(mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	// Kill data 0 and its mirror at both sites.
	ok, lost := s.JointDecode([][]int{{0, 4}, {0, 4}})
	if ok {
		t.Fatal("losing all 4 copies must fail")
	}
	if len(lost) != 1 || lost[0] != 0 {
		t.Errorf("lost = %v, want [0]", lost)
	}
	// Any 3 of the copies is survivable.
	for _, e := range [][][]int{
		{{0, 4}, {0}}, {{0, 4}, {4}}, {{0}, {0, 4}}, {{0, 4}, {}},
	} {
		if !s.JointRecoverable(e) {
			t.Errorf("erasure %v should be recoverable", e)
		}
	}
}

func TestJointDecodeExchangeUnlocksPartner(t *testing.T) {
	// Site A loses a dead pair; site B holds the block and supplies it.
	s, err := NewSystem(mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	if !s.JointRecoverable([][]int{{0, 4}, {}}) {
		t.Error("partner replica should rescue a dead pair")
	}
	// State must not leak across calls.
	if ok, _ := s.JointDecode([][]int{{0, 4}, {0, 4}}); ok {
		t.Error("state leaked: second decode should fail")
	}
	if !s.JointRecoverable([][]int{{0, 4}, {}}) {
		t.Error("state leaked after failing decode")
	}
}

func TestCriticalSets(t *testing.T) {
	g := mirrorSite(4)
	sets := CriticalSets(g, [][]int{{0, 4}, {1, 5}, {2}})
	if len(sets) != 2 {
		t.Fatalf("got %d critical sets, want 2 ({2} is recoverable)", len(sets))
	}
	if len(sets[0].Lost) != 1 || sets[0].Lost[0] != 0 {
		t.Errorf("set 0 lost = %v", sets[0].Lost)
	}
}

func TestDetectFirstFailureMirrored(t *testing.T) {
	s, err := NewSystem(mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	// Component critical sets: dead pairs (first failure 2 each site).
	wc, err := sim.WorstCase(s.sites[0], sim.WorstCaseOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := CriticalSets(s.sites[0], wc.PerK[1].Failures)
	det, err := s.DetectFirstFailure([][]CriticalSet{cs, cs}, SearchOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Mirrored+mirrored: the true first failure is 4 (all copies of one
	// block); the seeded search must find exactly that.
	if det.TotalErased != 4 {
		t.Errorf("detected first failure = %d, want 4", det.TotalErased)
	}
	if ok, _ := s.JointDecode(det.SiteErasures); ok {
		t.Error("detection witness does not actually fail")
	}
}

func TestDetectFirstFailureSameTornadoGraph(t *testing.T) {
	// Same graph at both sites: the paper expects first failure =
	// 2 × component first failure ("Tornado 1 + Tornado 1 ... loss of 10
	// devices as expected" for component first failure 5).
	g := tornadoSite(t, 3)
	s, err := NewSystem(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Found {
		t.Skip("graph tolerates 4 losses; component critical sets too expensive for this test")
	}
	k := wc.FirstFailure
	cs := CriticalSets(g, wc.PerK[len(wc.PerK)-1].Failures)
	if len(cs) == 0 {
		t.Fatal("no critical sets")
	}
	det, err := s.DetectFirstFailure([][]CriticalSet{cs, cs}, SearchOptions{Seed: 6, Restarts: 16})
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalErased < 2*k {
		t.Errorf("detected %d < theoretical minimum %d", det.TotalErased, 2*k)
	}
	// With identical graphs the same critical set works at both sites, so
	// the search should find exactly 2k.
	if det.TotalErased != 2*k {
		t.Errorf("detected %d, want %d for identical graphs", det.TotalErased, 2*k)
	}
	if ok, _ := s.JointDecode(det.SiteErasures); ok {
		t.Error("witness does not fail")
	}
}

func TestComplementaryGraphsBeatSameGraph(t *testing.T) {
	// Qualitative Table 7 shape: complementary graphs push the detected
	// first failure well above the same-graph 2k. Uses k=3-adjusted small
	// searches to stay fast; the full 96-node version lives in the bench
	// harness.
	gA := tornadoSite(t, 11)
	gB := tornadoSite(t, 12)
	rng := rand.New(rand.NewPCG(13, 13))
	gA, _, err := adjust.Improve(gA, 3, adjust.Options{MaxRounds: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	gB, _, err = adjust.Improve(gB, 3, adjust.Options{MaxRounds: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wcA, err := sim.WorstCase(gA, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	wcB, err := sim.WorstCase(gB, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !wcA.Found || !wcB.Found || wcA.FirstFailure != wcB.FirstFailure {
		t.Skipf("draws not comparable (A found=%v k=%d, B found=%v k=%d)",
			wcA.Found, wcA.FirstFailure, wcB.Found, wcB.FirstFailure)
	}
	k := wcA.FirstFailure
	csA := CriticalSets(gA, wcA.PerK[len(wcA.PerK)-1].Failures)
	csB := CriticalSets(gB, wcB.PerK[len(wcB.PerK)-1].Failures)

	same, err := NewSystem(gA, gA.Clone())
	if err != nil {
		t.Fatal(err)
	}
	detSame, err := same.DetectFirstFailure([][]CriticalSet{csA, csA}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	comp, err := NewSystem(gA, gB)
	if err != nil {
		t.Fatal(err)
	}
	detComp, err := comp.DetectFirstFailure([][]CriticalSet{csA, csB}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("component k=%d: same-graph detected %d, complementary detected %d",
		k, detSame.TotalErased, detComp.TotalErased)
	if detComp.TotalErased < detSame.TotalErased {
		t.Errorf("complementary graphs detected earlier failure (%d) than same graph (%d)",
			detComp.TotalErased, detSame.TotalErased)
	}
}

func TestDetectFirstFailureNoCriticalSets(t *testing.T) {
	s, err := NewSystem(mirrorSite(4), mirrorSite(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DetectFirstFailure([][]CriticalSet{{}, {}}, SearchOptions{}); err == nil {
		t.Error("empty critical sets should error")
	}
	if _, err := s.DetectFirstFailure([][]CriticalSet{{}}, SearchOptions{}); err == nil {
		t.Error("wrong site count should error")
	}
}

func BenchmarkJointDecode(b *testing.B) {
	gA, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		b.Fatal(err)
	}
	gB, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(gA, gB)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eA := rng.Perm(96)[:8]
		eB := rng.Perm(96)[:8]
		sys.JointDecode([][]int{eA, eB})
	}
}
