// Package federation models the paper's multi-graph distributed archival
// storage (§5.3, Table 7): every data block is replicated at two (or more)
// sites, each site protects its replica with its own Tornado Code graph,
// and sites exchange reconstructed blocks. Because each graph has different
// critical left-node sets, complementary graphs survive failure patterns
// that defeat either graph alone — "restoring just one critical data node
// allows the data graph to be reconstructed even when both graphs cannot
// independently perform the reconstruction".
package federation

import (
	"fmt"
	"sync"

	"tornado/internal/decode"
	"tornado/internal/graph"
)

// System is a federated store: Sites[i] is the erasure graph protecting the
// replica at site i. All graphs must agree on the data node count (they
// protect the same logical blocks); device numbering is per-site.
//
// Decoder state is per call (a sync.Pool of per-site decoder sets), so
// JointDecode and the searches built on it are safe for concurrent use.
type System struct {
	sites []*graph.Graph
	pool  sync.Pool // of []*decode.Decoder, one per site, Reset between uses
}

// NewSystem builds a federation over the given site graphs.
func NewSystem(sites ...*graph.Graph) (*System, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("federation: need at least 2 sites, got %d", len(sites))
	}
	data := sites[0].Data
	for i, g := range sites {
		if g.Data != data {
			return nil, fmt.Errorf("federation: site %d has %d data nodes, site 0 has %d", i, g.Data, data)
		}
	}
	s := &System{sites: sites}
	s.pool.New = func() any {
		ds := make([]*decode.Decoder, len(sites))
		for i, g := range sites {
			ds[i] = decode.New(g)
		}
		return ds
	}
	return s, nil
}

// acquire checks out a clean per-site decoder set; release Resets it and
// returns it to the pool. decode.Decoder is not safe for concurrent use,
// so every JointDecode call works on its own set.
func (s *System) acquire() []*decode.Decoder {
	return s.pool.Get().([]*decode.Decoder)
}

func (s *System) release(ds []*decode.Decoder) {
	for _, d := range ds {
		d.Reset()
	}
	s.pool.Put(ds)
}

// Sites returns the number of sites.
func (s *System) Sites() int { return len(s.sites) }

// Data returns the shared logical data block count.
func (s *System) Data() int { return s.sites[0].Data }

// TotalDevices returns the total device count across sites.
func (s *System) TotalDevices() int {
	n := 0
	for _, g := range s.sites {
		n += g.Total
	}
	return n
}

// JointDecode evaluates a federation-wide failure: erased[i] lists the
// offline devices at site i (graph-local node IDs). Sites peel
// independently, then exchange every data block any site holds, repeating
// to fixpoint. It returns whether all data survived and the lost blocks.
// Safe for concurrent use.
func (s *System) JointDecode(erased [][]int) (ok bool, lost []int) {
	if len(erased) != len(s.sites) {
		panic(fmt.Sprintf("federation: %d erasure sets for %d sites", len(erased), len(s.sites)))
	}
	decoders := s.acquire()
	defer s.release(decoders)
	for i, d := range decoders {
		d.Erase(erased[i]...)
		d.Peel()
	}

	data := s.Data()
	for changed := true; changed; {
		changed = false
		for v := 0; v < data; v++ {
			present := false
			missing := false
			for _, d := range decoders {
				if d.Present(v) {
					present = true
				} else {
					missing = true
				}
			}
			if present && missing {
				for _, d := range decoders {
					d.Supply(v) // no-op where already present
				}
				changed = true
			}
		}
		if changed {
			for _, d := range decoders {
				d.Peel()
			}
		}
	}
	for v := 0; v < data; v++ {
		if !decoders[0].Present(v) {
			// After exchange, a block missing at one site is missing at
			// all sites.
			lost = append(lost, v)
		}
	}
	return len(lost) == 0, lost
}

// JointRecoverable reports whether the federation survives the given
// per-site erasures.
func (s *System) JointRecoverable(erased [][]int) bool {
	ok, _ := s.JointDecode(erased)
	return ok
}

// CriticalSet is a component-graph failure: erasing Erased at the owning
// site loses the data blocks Lost.
type CriticalSet struct {
	Erased []int
	Lost   []int
}

// CriticalSets expands failing erasure sets (as found by the exhaustive
// worst-case search) into CriticalSets by decoding each one against g.
func CriticalSets(g *graph.Graph, failures [][]int) []CriticalSet {
	d := decode.New(g)
	out := make([]CriticalSet, 0, len(failures))
	for _, f := range failures {
		res := d.Decode(f)
		if res.OK {
			continue // not actually a failure for this graph
		}
		out = append(out, CriticalSet{Erased: f, Lost: res.UnrecoveredData})
	}
	return out
}
