package federation

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// SearchOptions tunes the detected-first-failure search.
type SearchOptions struct {
	// Restarts is the number of randomized greedy attempts per critical
	// set. Default 12.
	Restarts int
	// MaxCuts bounds the greedy blocking-set growth per attempt (cuts are
	// spread across all partner sites). Default 40 per partner.
	MaxCuts int
	// Seed drives the randomized choices.
	Seed uint64
}

func (o *SearchOptions) setDefaults(partners int) {
	if o.Restarts <= 0 {
		o.Restarts = 12
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 40 * partners
	}
}

// Detection is a witnessed federation failure: erasing SiteErasures[i] at
// site i loses data despite block exchange.
type Detection struct {
	TotalErased  int
	SiteErasures [][]int
}

// DetectFirstFailure searches for the smallest federation-wide failure it
// can construct — the paper's "first failure detected" (Table 7),
// generalized from the paper's two sites to any N. Because the joint
// device space is far too large for brute force, the search is seeded
// with the component graphs' known critical sets (critical[i] lists site
// i's sets, typically from the exhaustive worst-case search): for each
// critical set at an anchor site (losing data D), it grows a joint
// blocking erasure across ALL partner sites that pins every jointly-lost
// block — with N sites, every partner must independently be unable to
// recover D, or exchange resurrects it everywhere — then minimizes the
// whole witness greedily. The result is an upper bound witness, exactly
// as in the paper.
func (s *System) DetectFirstFailure(critical [][]CriticalSet, opts SearchOptions) (Detection, error) {
	return s.DetectFirstFailureCtx(context.Background(), critical, opts)
}

// DetectFirstFailureCtx is DetectFirstFailure with cancellation, checked
// between critical-set searches so a canceled federation search returns
// within one critical-set attempt.
func (s *System) DetectFirstFailureCtx(ctx context.Context, critical [][]CriticalSet, opts SearchOptions) (Detection, error) {
	if len(critical) != len(s.sites) {
		return Detection{}, fmt.Errorf("federation: critical sets for %d sites, system has %d", len(critical), len(s.sites))
	}
	opts.setDefaults(len(s.sites) - 1)
	rng := rand.New(rand.NewPCG(opts.Seed, 0x7E4))

	best := Detection{TotalErased: -1}
	for a := range s.sites {
		for _, cs := range critical[a] {
			if err := ctx.Err(); err != nil {
				return Detection{}, err
			}
			det, ok := s.blockAtPartners(a, cs, opts, rng)
			if !ok {
				continue
			}
			if best.TotalErased < 0 || det.TotalErased < best.TotalErased {
				best = det
			}
		}
	}
	if best.TotalErased < 0 {
		return Detection{}, fmt.Errorf("federation: no joint failure detected from %d critical sets", totalSets(critical))
	}
	return best, nil
}

func totalSets(critical [][]CriticalSet) int {
	n := 0
	for _, cs := range critical {
		n += len(cs)
	}
	return n
}

// blockAtPartners fixes the anchor site's erasure to the critical set and
// searches for small erasures at every other site that jointly keep the
// federation from recovering. A third site left untouched would supply
// every lost block through exchange, so all partners must be blocked at
// once — this is what the pairwise (a,b) search missed for N >= 3.
func (s *System) blockAtPartners(a int, cs CriticalSet, opts SearchOptions, rng *rand.Rand) (Detection, bool) {
	n := len(s.sites)
	var partners []int
	for p := range s.sites {
		if p != a {
			partners = append(partners, p)
		}
	}

	var bestX [][]int
	bestSize := -1
	for restart := 0; restart < opts.Restarts; restart++ {
		// Start every partner from the lost blocks themselves: any
		// surviving replica of a lost block anywhere is exchanged
		// directly, so they must be gone at every site.
		x := make([][]int, n)
		for _, p := range partners {
			x[p] = slices.Clone(cs.Lost)
		}
		x[a] = cs.Erased
		ok := false
		for cut := 0; cut < opts.MaxCuts; cut++ {
			jointOK, _ := s.JointDecode(x)
			if !jointOK {
				ok = true
				break
			}
			// The federation recovered: cut a recovery path at a random
			// partner by erasing an uncut ancestor check of a random
			// still-critical block. Walking the full ancestor cone
			// matters — a cut level-1 check is recomputed from level 2,
			// which is recomputed from level 3, so blocking must
			// eventually reach the cascade's top.
			p := partners[rng.IntN(len(partners))]
			d := cs.Lost[rng.IntN(len(cs.Lost))]
			r := uncutAncestor(s.sites[p], d, x[p], rng)
			if r < 0 {
				continue // this block's cone is saturated; try another
			}
			x[p] = append(x[p], r)
		}
		if !ok {
			continue
		}
		x = s.minimizeBlocking(a, cs, x)
		size := 0
		for _, p := range partners {
			size += len(x[p])
		}
		if bestSize < 0 || size < bestSize {
			bestX = x
			bestSize = size
		}
	}
	if bestSize < 0 {
		return Detection{}, false
	}

	erasures := make([][]int, n)
	total := len(cs.Erased)
	erasures[a] = slices.Clone(cs.Erased)
	for _, p := range partners {
		erasures[p] = bestX[p]
		total += len(bestX[p])
	}
	return Detection{
		TotalErased:  total,
		SiteErasures: erasures,
	}, true
}

// uncutAncestor walks a random upward path from node v through the
// cascade's parent relation and returns the first check not already in x,
// or -1 when the sampled path is fully cut.
func uncutAncestor(g *graph.Graph, v int, x []int, rng *rand.Rand) int {
	cur := v
	for depth := 0; depth < 16; depth++ {
		parents := g.Parents(cur)
		if len(parents) == 0 {
			return -1
		}
		p := int(parents[rng.IntN(len(parents))])
		if !slices.Contains(x, p) {
			return p
		}
		cur = p
	}
	return -1
}

// minimizeBlocking greedily drops elements of every partner-site erasure
// while the joint failure persists. The anchor's erasure (x[a] ==
// cs.Erased) is left intact — it is the witness being blocked.
func (s *System) minimizeBlocking(a int, cs CriticalSet, x [][]int) [][]int {
	erased := make([][]int, len(x))
	copy(erased, x)
	erased[a] = cs.Erased
	for p := range x {
		if p == a {
			continue
		}
		for i := 0; i < len(erased[p]); {
			full := erased[p]
			trial := append(slices.Clone(full[:i]), full[i+1:]...)
			erased[p] = trial
			if ok, _ := s.JointDecode(erased); !ok {
				continue // still fails without element i; keep the drop
			}
			erased[p] = full
			i++
		}
	}
	return erased
}

// SetScore ranks one candidate graph combination from
// SearchComplementarySets: the chosen graph indices and the smallest joint
// failure the detection search could construct against them. Higher
// Detection.TotalErased means a more complementary set.
type SetScore struct {
	// Indices into the candidate graph slice, ascending.
	Indices []int
	// Detection is the smallest witnessed joint failure for this set.
	Detection Detection
}

// SearchComplementarySets runs the detected-first-failure search over
// every n-combination of the candidate graphs and ranks the combinations
// by joint first-failure, best (largest) first — the campaign that finds
// complementary graph sets worth federating. critical[i] carries the
// known critical sets of graphs[i]; combinations whose detection search
// finds no joint failure rank last with TotalErased 0 (no witness is
// evidence of complementarity, not failure). ctx is checked between
// combinations.
func SearchComplementarySets(ctx context.Context, graphs []*graph.Graph, critical [][]CriticalSet, n int, opts SearchOptions) ([]SetScore, error) {
	if len(critical) != len(graphs) {
		return nil, fmt.Errorf("federation: critical sets for %d graphs, got %d graphs", len(critical), len(graphs))
	}
	if n < 2 || n > len(graphs) {
		return nil, fmt.Errorf("federation: set size %d out of range [2,%d]", n, len(graphs))
	}
	idx := make([]int, n)
	combin.First(idx, len(graphs))
	var out []SetScore
	for ok := true; ok; ok = combin.Next(idx, len(graphs)) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sites := make([]*graph.Graph, n)
		crit := make([][]CriticalSet, n)
		for i, gi := range idx {
			sites[i] = graphs[gi]
			crit[i] = critical[gi]
		}
		sys, err := NewSystem(sites...)
		if err != nil {
			return nil, fmt.Errorf("federation: combination %v: %w", idx, err)
		}
		score := SetScore{Indices: slices.Clone(idx)}
		if det, err := sys.DetectFirstFailureCtx(ctx, crit, opts); err == nil {
			score.Detection = det
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out = append(out, score)
	}
	slices.SortStableFunc(out, func(x, y SetScore) int {
		// Undetected (TotalErased 0) means the search found no failure at
		// all — rank those above any witnessed failure.
		xt, yt := x.Detection.TotalErased, y.Detection.TotalErased
		switch {
		case xt == yt:
			return 0
		case xt == 0:
			return -1
		case yt == 0:
			return 1
		default:
			return yt - xt
		}
	})
	return out, nil
}
