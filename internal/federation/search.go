package federation

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"

	"tornado/internal/graph"
)

// SearchOptions tunes the detected-first-failure search.
type SearchOptions struct {
	// Restarts is the number of randomized greedy attempts per (critical
	// set, partner site) pair. Default 12.
	Restarts int
	// MaxCuts bounds the greedy blocking-set growth per attempt. Default 40.
	MaxCuts int
	// Seed drives the randomized choices.
	Seed uint64
}

func (o *SearchOptions) setDefaults() {
	if o.Restarts <= 0 {
		o.Restarts = 12
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 40
	}
}

// Detection is a witnessed federation failure: erasing SiteErasures[i] at
// site i loses data despite block exchange.
type Detection struct {
	TotalErased  int
	SiteErasures [][]int
}

// DetectFirstFailure searches for the smallest federation-wide failure it
// can construct — the paper's "first failure detected" (Table 7). Because
// the joint device space is far too large for brute force, the search is
// seeded with the component graphs' known critical sets (critical[i] lists
// site i's sets, typically from the exhaustive worst-case search): for each
// critical set at site A (losing data D), it grows a blocking erasure at
// the partner site B that pins every jointly-lost block, then minimizes it
// greedily. The result is an upper bound witness, exactly as in the paper.
func (s *System) DetectFirstFailure(critical [][]CriticalSet, opts SearchOptions) (Detection, error) {
	return s.DetectFirstFailureCtx(context.Background(), critical, opts)
}

// DetectFirstFailureCtx is DetectFirstFailure with cancellation, checked
// between critical-set searches so a canceled federation search returns
// within one (critical set, partner) attempt.
func (s *System) DetectFirstFailureCtx(ctx context.Context, critical [][]CriticalSet, opts SearchOptions) (Detection, error) {
	if len(critical) != len(s.sites) {
		return Detection{}, fmt.Errorf("federation: critical sets for %d sites, system has %d", len(critical), len(s.sites))
	}
	opts.setDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, 0x7E4))

	best := Detection{TotalErased: -1}
	for a := range s.sites {
		for b := range s.sites {
			if a == b {
				continue
			}
			for _, cs := range critical[a] {
				if err := ctx.Err(); err != nil {
					return Detection{}, err
				}
				det, ok := s.blockAtPartner(a, b, cs, opts, rng)
				if !ok {
					continue
				}
				if best.TotalErased < 0 || det.TotalErased < best.TotalErased {
					best = det
				}
			}
		}
	}
	if best.TotalErased < 0 {
		return Detection{}, fmt.Errorf("federation: no joint failure detected from %d critical sets", totalSets(critical))
	}
	return best, nil
}

func totalSets(critical [][]CriticalSet) int {
	n := 0
	for _, cs := range critical {
		n += len(cs)
	}
	return n
}

// blockAtPartner fixes site a's erasure to the critical set and searches
// for a small erasure at site b that keeps the federation from recovering.
func (s *System) blockAtPartner(a, b int, cs CriticalSet, opts SearchOptions, rng *rand.Rand) (Detection, bool) {
	gB := s.sites[b]
	baseErased := make([][]int, len(s.sites))
	baseErased[a] = cs.Erased

	var bestX []int
	found := false
	for restart := 0; restart < opts.Restarts; restart++ {
		// Start from the lost blocks themselves: any surviving replica of
		// a lost block at B is exchanged directly, so they must be gone.
		x := slices.Clone(cs.Lost)
		ok := false
		for cut := 0; cut < opts.MaxCuts; cut++ {
			baseErased[b] = x
			jointOK, _ := s.JointDecode(baseErased)
			if !jointOK {
				ok = true
				break
			}
			// The federation recovered: cut a recovery path at B by
			// erasing an uncut ancestor check of a random still-critical
			// block. Walking the full ancestor cone matters — a cut
			// level-1 check is recomputed from level 2, which is
			// recomputed from level 3, so blocking must eventually reach
			// the cascade's top.
			d := cs.Lost[rng.IntN(len(cs.Lost))]
			r := uncutAncestor(gB, d, x, rng)
			if r < 0 {
				continue // this block's cone is saturated; try another
			}
			x = append(x, r)
		}
		if !ok {
			continue
		}
		x = s.minimizeBlocking(a, b, cs, x)
		if !found || len(x) < len(bestX) {
			bestX = x
			found = true
		}
	}
	if !found {
		return Detection{}, false
	}

	erasures := make([][]int, len(s.sites))
	erasures[a] = slices.Clone(cs.Erased)
	erasures[b] = bestX
	return Detection{
		TotalErased:  len(cs.Erased) + len(bestX),
		SiteErasures: erasures,
	}, true
}

// uncutAncestor walks a random upward path from node v through the
// cascade's parent relation and returns the first check not already in x,
// or -1 when the sampled path is fully cut.
func uncutAncestor(g *graph.Graph, v int, x []int, rng *rand.Rand) int {
	cur := v
	for depth := 0; depth < 16; depth++ {
		parents := g.Parents(cur)
		if len(parents) == 0 {
			return -1
		}
		p := int(parents[rng.IntN(len(parents))])
		if !slices.Contains(x, p) {
			return p
		}
		cur = p
	}
	return -1
}

// minimizeBlocking greedily drops elements of the site-b erasure while the
// joint failure persists.
func (s *System) minimizeBlocking(a, b int, cs CriticalSet, x []int) []int {
	erased := make([][]int, len(s.sites))
	erased[a] = cs.Erased
	for i := 0; i < len(x); {
		trial := append(slices.Clone(x[:i]), x[i+1:]...)
		erased[b] = trial
		if ok, _ := s.JointDecode(erased); !ok {
			x = trial // still fails without x[i]; drop it
		} else {
			i++
		}
	}
	return x
}
