package defect

import (
	"slices"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// ReferenceScan is the deliberately simple pre-kernel data-level scanner —
// lexicographic enumeration, one count map per subset — kept as the
// differential-testing oracle for the bitmask kernel (the role
// decode.ReferenceRecoverable plays for the peeling kernel). ScanDataLevel
// returns bit-identical findings in the same order.
func ReferenceScan(g *graph.Graph, maxSize int) []Finding {
	return referenceScanRange(g, 0, 0, g.Data, maxSize)
}

// ReferenceScanLevel is ReferenceScan over level li's left range; it is the
// oracle for ScanLevelCtx.
func ReferenceScanLevel(g *graph.Graph, li, maxSize int) []Finding {
	if li < 0 || li >= len(g.Levels) {
		return nil
	}
	lv := g.Levels[li]
	return referenceScanRange(g, li, lv.LeftFirst, lv.LeftCount, maxSize)
}

func referenceScanRange(g *graph.Graph, level, leftFirst, leftCount, maxSize int) []Finding {
	var findings []Finding
	if maxSize > leftCount {
		maxSize = leftCount
	}
	S := make([]int, 0, maxSize)
	for size := 2; size <= maxSize; size++ {
		combin.ForEach(leftCount, size, func(idx []int) bool {
			S = S[:0]
			for _, i := range idx {
				S = append(S, leftFirst+i)
			}
			if containsFound(findings, S) {
				return true
			}
			if rights, ok := IsClosedSet(g, S); ok {
				findings = append(findings, Finding{
					Level:  level,
					Lefts:  slices.Clone(S),
					Rights: rights,
				})
			}
			return true
		})
	}
	return findings
}
