package defect

import (
	"context"
	"math/rand/v2"
	"reflect"
	"slices"
	"strings"
	"testing"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// kernelSet collects the current member set of a kernel driven by the test
// (global node IDs), for cross-checking against IsClosedSet.
func closedByOracle(g *graph.Graph, t *Table, local []int) bool {
	S := make([]int, len(local))
	for i, l := range local {
		S[i] = t.LeftFirst + l
	}
	_, ok := IsClosedSet(g, S)
	return ok
}

func TestKernelMatchesIsClosedSet(t *testing.T) {
	for name, build := range map[string]func(*testing.T) *graph.Graph{
		"pair":   pairDefect,
		"triple": tripleDefect,
		"clean":  clean,
	} {
		g := build(t)
		tab := NewDataTable(g)
		kn := NewKernel(tab)
		// Every subset of sizes 1..4 in lexicographic order, rebuilt from
		// scratch via Add, then torn down via Remove.
		for size := 1; size <= min(4, tab.LeftCount); size++ {
			combin.ForEach(tab.LeftCount, size, func(idx []int) bool {
				for _, l := range idx {
					kn.Add(l)
				}
				if got, want := kn.Closed(), closedByOracle(g, tab, idx); got != want {
					t.Errorf("%s: kernel Closed(%v) = %v, oracle = %v", name, idx, got, want)
				}
				for _, l := range idx {
					kn.Remove(l)
				}
				if kn.Closed() {
					t.Fatalf("%s: empty set reported closed after removing %v", name, idx)
				}
				return true
			})
		}
	}
}

func TestKernelSwapMatchesRebuild(t *testing.T) {
	// Drive one kernel through the full revolving-door order and compare
	// against a fresh Add-built kernel at every step.
	g := tripleDefect(t)
	tab := NewDataTable(g)
	for size := 2; size <= 4; size++ {
		idx := make([]int, size)
		combin.First(idx, tab.LeftCount)
		walker := NewKernel(tab)
		for _, l := range idx {
			walker.Add(l)
		}
		for {
			fresh := NewKernel(tab)
			for _, l := range idx {
				fresh.Add(l)
			}
			if walker.Closed() != fresh.Closed() {
				t.Fatalf("size %d: swap-driven kernel diverged at %v", size, idx)
			}
			out, in, ok := combin.GrayNext(idx, tab.LeftCount)
			if !ok {
				break
			}
			walker.Swap(out, in)
		}
	}
}

func TestKernelReset(t *testing.T) {
	g := pairDefect(t)
	kn := NewKernel(NewDataTable(g))
	kn.Add(0)
	kn.Add(1)
	if !kn.Closed() {
		t.Fatal("pair not closed")
	}
	kn.Reset()
	if kn.Closed() {
		t.Error("closed after Reset")
	}
	kn.Add(0)
	kn.Add(1)
	if !kn.Closed() {
		t.Error("kernel unusable after Reset")
	}
}

func TestSealingRights(t *testing.T) {
	g := pairDefect(t)
	tab := NewDataTable(g)
	kn := NewKernel(tab)
	kn.Add(0)
	kn.Add(1)
	if got := kn.sealingRights(nil); !slices.Equal(got, []int{6, 7}) {
		t.Errorf("sealingRights = %v, want [6 7]", got)
	}
}

// TestScanMatchesReference is the fixed-fixture arm of the differential
// battery: the kernel scan must return bit-identical findings to the
// map-based oracle, at every worker count.
func TestScanMatchesReference(t *testing.T) {
	for name, build := range map[string]func(*testing.T) *graph.Graph{
		"pair":   pairDefect,
		"triple": tripleDefect,
		"clean":  clean,
	} {
		g := build(t)
		for maxSize := 2; maxSize <= 4; maxSize++ {
			want := ReferenceScan(g, maxSize)
			if got := ScanDataLevel(g, maxSize); !reflect.DeepEqual(got, want) {
				t.Errorf("%s maxSize=%d: kernel = %v, reference = %v", name, maxSize, got, want)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := scanTableCtx(context.Background(), NewDataTable(g), maxSize, workers)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s maxSize=%d workers=%d: kernel = %v, reference = %v", name, maxSize, workers, got, want)
				}
			}
		}
	}
}

func TestScanLevelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	for trial := 0; trial < 20; trial++ {
		g := randomCascade(rng)
		for li := range g.Levels {
			want := ReferenceScanLevel(g, li, 4)
			got, err := ScanLevel(g, li, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d level %d: kernel = %v, reference = %v", trial, li, got, want)
			}
		}
	}
}

func TestScanLevelRejectsBadLevel(t *testing.T) {
	g := clean(t)
	if _, err := ScanLevel(g, -1, 3); err == nil {
		t.Error("no error for level -1")
	}
	if _, err := ScanLevel(g, len(g.Levels), 3); err == nil {
		t.Error("no error for out-of-range level")
	}
}

func TestScanGraphTagsLevels(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 3))
	for trial := 0; trial < 20; trial++ {
		g := randomCascade(rng)
		all, err := ScanGraph(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		var want []Finding
		scanned := map[[2]int]bool{}
		for li, lv := range g.Levels {
			key := [2]int{lv.LeftFirst, lv.LeftCount}
			if scanned[key] {
				continue
			}
			scanned[key] = true
			want = append(want, ReferenceScanLevel(g, li, 3)...)
		}
		if !reflect.DeepEqual(all, want) {
			t.Fatalf("trial %d: ScanGraph = %v, per-level reference = %v", trial, all, want)
		}
	}
}

// TestPlantedMinimality plants a closed 2-set inside a larger level and
// checks the two minimality guarantees: the planted set is always found,
// and its supersets are suppressed.
func TestPlantedMinimality(t *testing.T) {
	b := graph.NewBuilder(8)
	r := b.AddLevel(0, 8, 8)
	g := b.Graph()
	g.SetNeighbors(r, []int{3, 5})
	g.SetNeighbors(r+1, []int{3, 5}) // planted: {3,5} sealed by {r, r+1}
	ri := r + 2
	for i := 0; i < 8; i++ {
		if i == 3 || i == 5 {
			continue // no mirror: the planted pair must stay sealed
		}
		g.SetNeighbors(ri, []int{i}) // degree-1 mirrors keep other sets open
		ri++
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for maxSize := 2; maxSize <= 4; maxSize++ {
		fs := ScanDataLevel(g, maxSize)
		if len(fs) != 1 {
			t.Fatalf("maxSize=%d: findings = %v, want only the planted pair", maxSize, fs)
		}
		if !slices.Equal(fs[0].Lefts, []int{3, 5}) {
			t.Errorf("maxSize=%d: found %v, want [3 5]", maxSize, fs[0].Lefts)
		}
	}
}

func TestScreenSingleFindingMessage(t *testing.T) {
	// Regression: a single finding used to print "(and 0 more)".
	g := pairDefect(t)
	err := Screen(g, 3)
	if err == nil {
		t.Fatal("Screen missed the pair defect")
	}
	if strings.Contains(err.Error(), "0 more") {
		t.Errorf("single-finding message still has the empty suffix: %q", err)
	}
	if !strings.Contains(err.Error(), "closed set") {
		t.Errorf("message lost the finding: %q", err)
	}
}

func TestScreenMultiFindingMessage(t *testing.T) {
	// Two mirrored pairs: both are minimal findings.
	b := graph.NewBuilder(4)
	r := b.AddLevel(0, 4, 4)
	g := b.Graph()
	g.SetNeighbors(r, []int{0, 1})
	g.SetNeighbors(r+1, []int{0, 1})
	g.SetNeighbors(r+2, []int{2, 3})
	g.SetNeighbors(r+3, []int{2, 3})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	err := Screen(g, 2)
	if err == nil {
		t.Fatal("Screen missed the defects")
	}
	if !strings.Contains(err.Error(), "and 1 more") {
		t.Errorf("multi-finding message = %q, want \"... (and 1 more)\"", err)
	}
}

func TestScreenCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := pairDefect(t)
	if err := ScreenCtx(ctx, g, 3); err != context.Canceled {
		t.Errorf("ScreenCtx(canceled) = %v, want context.Canceled", err)
	}
}

func TestFindingStringLevel(t *testing.T) {
	data := Finding{Lefts: []int{17, 22}, Rights: []int{48, 57}}
	if s := data.String(); strings.Contains(s, "level") {
		t.Errorf("data-level String mentions a level: %q", s)
	}
	up := Finding{Level: 2, Lefts: []int{70}, Rights: []int{90}}
	if s := up.String(); !strings.Contains(s, "level 2") {
		t.Errorf("upper-level String lost the level: %q", s)
	}
}

func TestScanMetrics(t *testing.T) {
	g := tripleDefect(t)
	before := Metrics().Snapshot().Counters[MetricSubsetsTested]
	ScanDataLevel(g, 3)
	after := Metrics().Snapshot().Counters[MetricSubsetsTested]
	want := int64(combin.Binomial(6, 2) + combin.Binomial(6, 3))
	if after-before != want {
		t.Errorf("subsets tested delta = %d, want %d", after-before, want)
	}
}

// BenchmarkKernelGrayLoop is the steady-state path the CI alloc gate
// guards: a prebuilt kernel driven through revolving-door swaps.
func BenchmarkKernelGrayLoop(b *testing.B) {
	g := bench96Graph()
	tab := NewDataTable(g)
	kn := NewKernel(tab)
	idx := make([]int, 3)
	combin.First(idx, tab.LeftCount)
	for _, l := range idx {
		kn.Add(l)
	}
	closed := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if kn.Closed() {
			closed++
		}
		out, in, ok := combin.GrayNext(idx, tab.LeftCount)
		if !ok {
			for _, l := range idx {
				kn.Remove(l)
			}
			combin.First(idx, tab.LeftCount)
			for _, l := range idx {
				kn.Add(l)
			}
			continue
		}
		kn.Swap(out, in)
	}
	_ = closed
}

// bench96Graph hand-rolls a 96-node-scale level (defect cannot import
// core: cycle), seeded so benchmark runs compare like with like.
func bench96Graph() *graph.Graph {
	rng := rand.New(rand.NewPCG(1, 1))
	bld := graph.NewBuilder(48)
	r := bld.AddLevel(0, 48, 24)
	g := bld.Graph()
	for i := 0; i < 24; i++ {
		perm := rng.Perm(48)
		g.SetNeighbors(r+i, perm[:3+rng.IntN(5)])
	}
	return g
}

func BenchmarkReferenceScan96(b *testing.B) {
	g := bench96Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceScan(g, 3)
	}
}
