package defect

import (
	"sync/atomic"

	"tornado/internal/obs"
)

// Metric names published by the defect scan workers. Counters are flushed
// at subset-chunk boundaries (every chunkInterval subsets), so a deep
// all-level screen is observable while it runs — scrape
// Metrics().Snapshot() or mount Metrics().Handler().
const (
	// MetricSubsetsTested counts candidate left subsets evaluated by the
	// closed-set kernels.
	MetricSubsetsTested = "defect_subsets_tested"
	// MetricClosedSetsFound counts closed subsets found (before minimality
	// filtering).
	MetricClosedSetsFound = "defect_closed_sets_found"
)

// chunkInterval is the subset-chunk size between context checks and metric
// flushes in scan workers — the same cadence the sim scan loops use, so a
// canceled screen returns within one chunk of kernel work.
const chunkInterval = 8192

// metricsReg holds the registry the scan workers publish to; package-level
// (rather than an option threaded through every call) for the same reason
// as sim.Metrics.
var metricsReg atomic.Pointer[obs.Registry]

func init() { metricsReg.Store(obs.NewRegistry()) }

// Metrics returns the registry the defect scan workers publish progress
// counters to.
func Metrics() *obs.Registry { return metricsReg.Load() }

// SetMetrics redirects the defect progress counters to reg (e.g. a registry
// already exported over HTTP). A nil reg is ignored.
func SetMetrics(reg *obs.Registry) {
	if reg != nil {
		metricsReg.Store(reg)
	}
}
