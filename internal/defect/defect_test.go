package defect

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/decode"
	"tornado/internal/graph"
)

// pairDefect reproduces the paper's first §3.2 example: two left nodes with
// identical right sets.
func pairDefect(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	r := b.AddLevel(0, 6, 7)
	g := b.Graph()
	g.SetNeighbors(r, []int{0, 1})
	g.SetNeighbors(r+1, []int{0, 1}) // defect: {0,1} sealed by {r, r+1}
	g.SetNeighbors(r+2, []int{2, 3, 4, 5})
	// Individual mirrors keep pairs of 2..5 from being closed sets too.
	g.SetNeighbors(r+3, []int{2})
	g.SetNeighbors(r+4, []int{3})
	g.SetNeighbors(r+5, []int{4})
	g.SetNeighbors(r+6, []int{5})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// tripleDefect reproduces the paper's second §3.2 example: three left nodes
// relying on a closed set of right nodes, pairwise overlapping:
//
//	6  [48, 51, 57]
//	28 [57, 66, 68]
//	42 [48, 51, 66, 68]
//
// scaled down to left nodes 0,1,2 and rights rA..rE.
func tripleDefect(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	r := b.AddLevel(0, 6, 9)
	g := b.Graph()
	rA, rB, rC, rD, rE, rF := r, r+1, r+2, r+3, r+4, r+5
	// node 0 ~ paper 6; node 1 ~ paper 28; node 2 ~ paper 42
	g.SetNeighbors(rA, []int{0, 2})    // 48
	g.SetNeighbors(rB, []int{0, 2})    // 51
	g.SetNeighbors(rC, []int{0, 1})    // 57
	g.SetNeighbors(rD, []int{1, 2})    // 66
	g.SetNeighbors(rE, []int{1, 2})    // 68
	g.SetNeighbors(rF, []int{3, 4, 5}) // unrelated coverage
	// Individual mirrors keep pairs of 3..5 from being closed sets too.
	g.SetNeighbors(r+6, []int{3})
	g.SetNeighbors(r+7, []int{4})
	g.SetNeighbors(r+8, []int{5})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// clean returns a graph whose data level has no closed set up to size 3:
// a mirrored pair structure with an extra global check.
func clean(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	r := b.AddLevel(0, 4, 5)
	g := b.Graph()
	g.SetNeighbors(r, []int{0})
	g.SetNeighbors(r+1, []int{1})
	g.SetNeighbors(r+2, []int{2})
	g.SetNeighbors(r+3, []int{3})
	g.SetNeighbors(r+4, []int{0, 1, 2, 3})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsClosedSetPair(t *testing.T) {
	g := pairDefect(t)
	rights, ok := IsClosedSet(g, []int{0, 1})
	if !ok {
		t.Fatal("pair defect not detected")
	}
	if len(rights) != 2 || rights[0] != 6 || rights[1] != 7 {
		t.Errorf("sealing rights = %v, want [6 7]", rights)
	}
	if _, ok := IsClosedSet(g, []int{0, 2}); ok {
		t.Error("non-closed pair flagged")
	}
}

func TestIsClosedSetTriple(t *testing.T) {
	g := tripleDefect(t)
	if _, ok := IsClosedSet(g, []int{0, 1, 2}); !ok {
		t.Fatal("paper triple defect not detected")
	}
	// No pair within the triple is closed on its own: e.g. {0,1} share
	// only right rC, and rA/rB/rD/rE each see one of them once.
	for _, pair := range [][]int{{0, 1}, {0, 2}, {1, 2}} {
		if _, ok := IsClosedSet(g, pair); ok {
			t.Errorf("pair %v should not be closed", pair)
		}
	}
}

func TestClosedSetIsActuallyUnrecoverable(t *testing.T) {
	// The whole point of the defect scan: a closed set is a real data-loss
	// pattern for the decoder.
	for name, build := range map[string]func(*testing.T) *graph.Graph{
		"pair":   pairDefect,
		"triple": tripleDefect,
	} {
		g := build(t)
		d := decode.New(g)
		findings := ScanDataLevel(g, 3)
		if len(findings) == 0 {
			t.Fatalf("%s: no findings", name)
		}
		for _, f := range findings {
			if d.Recoverable(f.Lefts) {
				t.Errorf("%s: finding %v is recoverable — not a real defect", name, f)
			}
		}
	}
}

func TestScanFindsMinimalOnly(t *testing.T) {
	g := pairDefect(t)
	findings := ScanDataLevel(g, 3)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the {0,1} pair", findings)
	}
	f := findings[0]
	if len(f.Lefts) != 2 || f.Lefts[0] != 0 || f.Lefts[1] != 1 {
		t.Errorf("finding = %v", f)
	}
	// Supersets of {0,1} must have been suppressed.
	for _, g2 := range findings {
		if len(g2.Lefts) == 3 {
			t.Errorf("non-minimal finding %v", g2)
		}
	}
}

func TestScanClean(t *testing.T) {
	g := clean(t)
	if fs := ScanDataLevel(g, 3); len(fs) != 0 {
		t.Errorf("clean graph produced findings: %v", fs)
	}
	if err := Screen(g, 3); err != nil {
		t.Errorf("Screen(clean) = %v", err)
	}
}

func TestScreenReportsDefect(t *testing.T) {
	g := tripleDefect(t)
	err := Screen(g, 3)
	if err == nil {
		t.Fatal("Screen missed the triple defect")
	}
}

func TestScanMaxSizeClamped(t *testing.T) {
	g := clean(t)
	// maxSize larger than the data level must not panic.
	if fs := ScanDataLevel(g, 100); len(fs) != 0 {
		t.Errorf("findings = %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Lefts: []int{17, 22}, Rights: []int{48, 57}}
	if s := f.String(); s == "" {
		t.Error("empty String")
	}
}

func TestSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 2, 3}, true},
		{[]int{1, 4}, []int{1, 2, 3}, false},
		{nil, []int{1}, true},
		{[]int{1}, nil, false},
	}
	for _, c := range cases {
		if got := subset(c.a, c.b); got != c.want {
			t.Errorf("subset(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func BenchmarkScanDataLevel96(b *testing.B) {
	// Hand-rolled 96-node-scale level (defect cannot import core: cycle).
	rng := rand.New(rand.NewPCG(1, 1))
	bld := graph.NewBuilder(48)
	r := bld.AddLevel(0, 48, 24)
	g := bld.Graph()
	for i := 0; i < 24; i++ {
		perm := rng.Perm(48)
		g.SetNeighbors(r+i, perm[:3+rng.IntN(5)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanDataLevel(g, 3)
	}
}
