package defect

import (
	"math/bits"

	"tornado/internal/bitset"
	"tornado/internal/graph"
)

// Table is the precomputed bitmask view of one left-node range that the
// closed-set kernel evaluates: for every left node in the range, a bitmask
// of its parent checks over a dense right-index space (only the checks
// actually adjacent to the range get an index, so the masks stay one or two
// words long on the paper's graphs). A Table is built once per scan and
// then shared read-only by any number of Kernels (one per worker
// goroutine), exactly like decode.CSR under the peeling kernels.
//
// A Table does not observe later mutations of the source graph (AddEdge,
// RewireEdge, …); build a fresh Table after rewiring.
type Table struct {
	Level     int // index of the level this range belongs to (0 = data)
	LeftFirst int // first left node ID of the range
	LeftCount int // number of left nodes in the range

	rights []int32       // dense right index -> graph node ID, ascending
	masks  []*bitset.Set // masks[l]: dense parent set of left node LeftFirst+l
}

// NewDataTable builds the Table of the data-node range [0, g.Data) — the
// range ScanDataLevel and the generation-time Screen gate evaluate.
func NewDataTable(g *graph.Graph) *Table {
	return newTable(g, 0, 0, g.Data)
}

// NewLevelTable builds the Table of level li's left range.
func NewLevelTable(g *graph.Graph, li int) *Table {
	lv := g.Levels[li]
	return newTable(g, li, lv.LeftFirst, lv.LeftCount)
}

func newTable(g *graph.Graph, level, leftFirst, leftCount int) *Table {
	t := &Table{Level: level, LeftFirst: leftFirst, LeftCount: leftCount}

	// Collect the distinct parents of the range, ascending. A bitset over
	// the node space gives the sorted ID list for free via NextSet.
	seen := bitset.New(g.Total)
	for l := leftFirst; l < leftFirst+leftCount; l++ {
		for _, p := range g.Parents(l) {
			seen.Set(int(p))
		}
	}
	dense := make([]int32, g.Total)
	for r := seen.NextSet(0); r >= 0; r = seen.NextSet(r + 1) {
		dense[r] = int32(len(t.rights))
		t.rights = append(t.rights, int32(r))
	}
	t.masks = make([]*bitset.Set, leftCount)
	for i := range t.masks {
		m := bitset.New(len(t.rights))
		for _, p := range g.Parents(leftFirst + i) {
			m.Set(int(dense[p]))
		}
		t.masks[i] = m
	}
	return t
}

// Rights returns the number of distinct checks adjacent to the range.
func (t *Table) Rights() int { return len(t.rights) }

// Kernel evaluates the closed-set condition of paper §3.2 incrementally: it
// maintains, for every check adjacent to the table's left range, the count
// of current member nodes that check references, plus two derived tallies —
// covered (checks with at least one member neighbor) and ones (checks with
// exactly one). A member set S is closed exactly when ones == 0 and
// covered > 0: every adjacent check sees two or more members, so losing S
// leaves each of them permanently short (IsClosedSet's condition), which
// makes Closed an O(1) read after an O(degree) Add/Remove delta.
//
// Driven in revolving-door order (combin.GrayNext) the kernel evaluates one
// subset per two mask walks instead of rebuilding a count map per subset —
// the same delta-evaluation shape as decode.Kernel under the certification
// scans. Nothing allocates after NewKernel. A Kernel is not safe for
// concurrent use; create one per goroutine. Many kernels may share one
// read-only Table.
type Kernel struct {
	t       *Table
	count   []int32 // count[dense right] = members adjacent to that check
	ones    int     // checks with exactly one member neighbor
	covered int     // checks with at least one member neighbor
}

// NewKernel returns a Kernel over t with an empty member set.
func NewKernel(t *Table) *Kernel {
	return &Kernel{t: t, count: make([]int32, len(t.rights))}
}

// Table returns the mask table this kernel evaluates.
func (k *Kernel) Table() *Table { return k.t }

// Add inserts left node LeftFirst+l (l is the range-local index) into the
// member set, updating the per-check counts by one mask walk.
func (k *Kernel) Add(l int) {
	for i, w := range k.t.masks[l].Words() {
		for ; w != 0; w &= w - 1 {
			r := i<<6 + bits.TrailingZeros64(w)
			c := k.count[r]
			k.count[r] = c + 1
			switch c {
			case 0:
				k.covered++
				k.ones++
			case 1:
				k.ones--
			}
		}
	}
}

// Remove deletes left node LeftFirst+l from the member set. The node must
// be a member.
func (k *Kernel) Remove(l int) {
	for i, w := range k.t.masks[l].Words() {
		for ; w != 0; w &= w - 1 {
			r := i<<6 + bits.TrailingZeros64(w)
			c := k.count[r] - 1
			k.count[r] = c
			switch c {
			case 0:
				k.covered--
				k.ones--
			case 1:
				k.ones++
			}
		}
	}
}

// Swap applies a revolving-door step: local index out leaves the member
// set, local index in enters it.
func (k *Kernel) Swap(out, in int) {
	k.Remove(out)
	k.Add(in)
}

// Closed reports whether the current member set is a closed set: it touches
// at least one check and every touched check has two or more member
// neighbors.
func (k *Kernel) Closed() bool { return k.ones == 0 && k.covered > 0 }

// Reset empties the member set.
func (k *Kernel) Reset() {
	clear(k.count)
	k.ones, k.covered = 0, 0
}

// sealingRights appends the graph IDs of every check adjacent to the
// current member set (ascending — the dense index order is ID order).
func (k *Kernel) sealingRights(dst []int) []int {
	for i, c := range k.count {
		if c > 0 {
			dst = append(dst, int(k.t.rights[i]))
		}
	}
	return dst
}
