package defect

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"tornado/internal/graph"
)

// randomCascade builds a random multi-level graph for differential
// testing, the same shape the decode fuzzer uses: enough structure for
// closed sets to occur at data and check levels alike.
func randomCascade(rng *rand.Rand) *graph.Graph {
	data := 4 + rng.IntN(12)
	b := graph.NewBuilder(data)
	leftFirst, leftCount := 0, data
	levels := 1 + rng.IntN(3)
	for li := 0; li < levels; li++ {
		rightCount := max(1, leftCount/2)
		rf := b.AddLevel(leftFirst, leftCount, rightCount)
		leftFirst, leftCount = rf, rightCount
		if leftCount < 2 {
			break
		}
	}
	g := b.Graph()
	for _, lv := range g.Levels {
		for r := lv.RightFirst; r < lv.RightFirst+lv.RightCount; r++ {
			deg := 1 + rng.IntN(min(3, lv.LeftCount))
			perm := rng.Perm(lv.LeftCount)
			lefts := make([]int, 0, deg)
			for _, p := range perm[:deg] {
				lefts = append(lefts, lv.LeftFirst+p)
			}
			g.SetNeighbors(r, lefts)
		}
	}
	return g
}

// FuzzDefectKernelMatchesReference is the randomized arm of the kernel's
// differential battery: a seeded random cascade, scanned by the bitmask
// kernel at several worker counts and by the map-based reference oracle,
// on every distinct left range. Any difference in findings — content or
// order — is a finding.
func FuzzDefectKernelMatchesReference(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(2006), uint64(0))
	f.Add(uint64(0xDEAD), uint64(0xBEEF))
	f.Fuzz(func(t *testing.T, seed, stream uint64) {
		rng := rand.New(rand.NewPCG(seed, stream))
		g := randomCascade(rng)
		maxSize := 2 + rng.IntN(3)

		if got, want := ScanDataLevel(g, maxSize), ReferenceScan(g, maxSize); !reflect.DeepEqual(got, want) {
			t.Fatalf("data level: kernel = %v, reference = %v (graph %v)", got, want, g)
		}
		for li := range g.Levels {
			want := ReferenceScanLevel(g, li, maxSize)
			for _, workers := range []int{1, 3} {
				got, err := scanTableCtx(t.Context(), NewLevelTable(g, li), maxSize, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("level %d workers %d: kernel = %v, reference = %v (graph %v)", li, workers, got, want, g)
				}
			}
		}
	})
}
