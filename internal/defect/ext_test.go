// Exhaustive kernel-vs-reference cross-checks on real Tornado graphs. The
// external test package breaks the import cycle: core and the tornado
// facade both import defect.
package defect_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	tornado "tornado"
	"tornado/internal/core"
	"tornado/internal/defect"
)

// TestPrecompiledGraphsKernelMatchesReference exhaustively cross-checks
// the bitmask kernel against the map-based oracle on the three shipped
// certified 96-node graphs, on every cascade level.
func TestPrecompiledGraphsKernelMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 96-node scan")
	}
	for _, name := range tornado.PrecompiledNames() {
		g, err := tornado.LoadPrecompiled(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		maxSize := 4
		if got, want := defect.ScanDataLevel(g, maxSize), defect.ReferenceScan(g, maxSize); !reflect.DeepEqual(got, want) {
			t.Errorf("%s data level: kernel = %v, reference = %v", name, got, want)
		}
		for li := range g.Levels {
			want := defect.ReferenceScanLevel(g, li, 3)
			got, err := defect.ScanLevel(g, li, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s level %d: kernel = %v, reference = %v", name, li, got, want)
			}
		}
	}
}

// TestSmallGeneratedGraphsClosedFourSets scans unscreened 32-node
// generated graphs — small enough for exhaustive size-4 search, raw
// enough that closed sets actually occur — and cross-checks kernel vs
// reference plus worker-count independence.
func TestSmallGeneratedGraphsClosedFourSets(t *testing.T) {
	p := core.DefaultParams()
	p.TotalNodes = 32
	p.MinFinalLeft = 4
	foundAny := false
	for seed := uint64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewPCG(seed, 42))
		g, err := core.GenerateUnscreened(p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := defect.ReferenceScan(g, 4)
		if len(want) > 0 {
			foundAny = true
		}
		if got := defect.ScanDataLevel(g, 4); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: kernel = %v, reference = %v", seed, got, want)
		}
		for li := range g.Levels {
			want := defect.ReferenceScanLevel(g, li, 4)
			got, err := defect.ScanLevel(g, li, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d level %d: kernel = %v, reference = %v", seed, li, got, want)
			}
		}
	}
	if !foundAny {
		t.Log("no unscreened 32-node graph had a data-level closed 4-set; cross-check still exhaustive")
	}
}

// TestFacadeScanAllDefects covers the new facade surface on a certified
// graph: data-level scan is clean by certification, and the all-level
// scan agrees with the per-level reference.
func TestFacadeScanAllDefects(t *testing.T) {
	g, err := tornado.LoadPrecompiled("tornado96-1")
	if err != nil {
		t.Fatal(err)
	}
	if fs := tornado.ScanDefects(g, 3); len(fs) != 0 {
		t.Errorf("certified graph has data-level defects: %v", fs)
	}
	all, err := tornado.ScanAllDefects(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want []tornado.Defect
	scanned := map[[2]int]bool{}
	for li, lv := range g.Levels {
		key := [2]int{lv.LeftFirst, lv.LeftCount}
		if scanned[key] {
			continue
		}
		scanned[key] = true
		want = append(want, defect.ReferenceScanLevel(g, li, 2)...)
	}
	if !reflect.DeepEqual(all, want) {
		t.Errorf("ScanAllDefects = %v, reference = %v", all, want)
	}
}
