// Package defect implements the structural defect detection of paper §3.2
// and §3.3: randomly generated Tornado graphs occasionally contain small
// "closed sets" — sets of left nodes whose right (check) neighbors all have
// at least two neighbors inside the set. Losing such a left set is
// unrecoverable even when every other node in the graph is present, because
// each covering check is permanently short two or more inputs (e.g. the
// paper's "17 [48, 57] / 22 [48, 57]" example, a worst case of two).
//
// The scan enumerates candidate left subsets of the data level up to a
// configurable size and reports each minimal closed set found. Graph
// generation discards graphs with findings; the adjustment procedure uses
// the same condition when choosing replacement edges.
package defect

import (
	"fmt"
	"slices"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// Finding describes one closed left-node set and the right nodes that seal
// it.
type Finding struct {
	Lefts  []int // the closed left set, ascending
	Rights []int // every check adjacent to the set (each has >=2 neighbors in it), ascending
}

func (f Finding) String() string {
	return fmt.Sprintf("closed set: lefts %v sealed by rights %v", f.Lefts, f.Rights)
}

// IsClosedSet reports whether the left-node set S (node IDs) is closed in
// g: every right node adjacent to a member of S has at least two neighbors
// in S. It returns the sealing right nodes when true.
func IsClosedSet(g *graph.Graph, S []int) ([]int, bool) {
	counts := map[int32]int{}
	for _, l := range S {
		for _, r := range g.Parents(l) {
			counts[r]++
		}
	}
	rights := make([]int, 0, len(counts))
	for r, c := range counts {
		if c < 2 {
			return nil, false
		}
		rights = append(rights, int(r))
	}
	if len(rights) == 0 {
		return nil, false // isolated nodes are a coverage error, not a closed set
	}
	slices.Sort(rights)
	return rights, true
}

// ScanDataLevel enumerates subsets of the data nodes of size 2..maxSize and
// returns every minimal closed set (subsets containing an already-reported
// set are skipped). maxSize is clamped to the data node count.
func ScanDataLevel(g *graph.Graph, maxSize int) []Finding {
	var findings []Finding
	if maxSize > g.Data {
		maxSize = g.Data
	}
	containsFound := func(S []int) bool {
		for _, f := range findings {
			if subset(f.Lefts, S) {
				return true
			}
		}
		return false
	}
	for size := 2; size <= maxSize; size++ {
		combin.ForEach(g.Data, size, func(idx []int) bool {
			if containsFound(idx) {
				return true
			}
			if rights, ok := IsClosedSet(g, idx); ok {
				findings = append(findings, Finding{
					Lefts:  slices.Clone(idx),
					Rights: rights,
				})
			}
			return true
		})
	}
	return findings
}

// subset reports whether every element of a (sorted) appears in b (sorted).
func subset(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// Screen returns an error describing the first structural defect found in
// the data level, or nil when the graph passes. It is the generation-time
// gate of paper §3.3 ("graphs that fail are discarded").
func Screen(g *graph.Graph, maxSize int) error {
	if fs := ScanDataLevel(g, maxSize); len(fs) > 0 {
		return fmt.Errorf("defect: %v (and %d more)", fs[0], len(fs)-1)
	}
	return nil
}
