// Package defect implements the structural defect detection of paper §3.2
// and §3.3: randomly generated Tornado graphs occasionally contain small
// "closed sets" — sets of left nodes whose right (check) neighbors all have
// at least two neighbors inside the set. Losing such a left set is
// unrecoverable even when every other node in the graph is present, because
// each covering check is permanently short two or more inputs (e.g. the
// paper's "17 [48, 57] / 22 [48, 57]" example, a worst case of two).
//
// The scan enumerates candidate left subsets up to a configurable size and
// reports each minimal closed set found. Graph generation discards graphs
// with data-level findings; the adjustment procedure uses the same
// condition when choosing replacement edges.
//
// Two implementations coexist (see DESIGN.md "Defect kernels"):
//
//   - The kernel path (Table/Kernel + ScanDataLevel, ScanLevelCtx,
//     ScanGraphCtx, ScreenCtx) precomputes per-left-node parent bitmasks
//     and maintains per-check member counts incrementally across
//     revolving-door subset order, sharding each size's combination rank
//     space across a worker pool. It is the production path: the
//     generation discard gate, the adjustment replacement check, and
//     cmd/graphcheck all run it.
//   - ReferenceScan/ReferenceScanLevel keep the original single-threaded
//     map-per-subset scanner as the differential-testing oracle, exactly
//     as decode.ReferenceRecoverable anchors the peeling kernel.
package defect

import (
	"context"
	"fmt"
	"slices"

	"tornado/internal/graph"
)

// Finding describes one closed left-node set and the right nodes that seal
// it.
type Finding struct {
	Level  int   // cascade level of the left range the set lives in (0 = data)
	Lefts  []int // the closed left set, ascending
	Rights []int // every check adjacent to the set (each has >=2 neighbors in it), ascending
}

func (f Finding) String() string {
	if f.Level > 0 {
		return fmt.Sprintf("closed set (level %d): lefts %v sealed by rights %v", f.Level, f.Lefts, f.Rights)
	}
	return fmt.Sprintf("closed set: lefts %v sealed by rights %v", f.Lefts, f.Rights)
}

// IsClosedSet reports whether the left-node set S (node IDs) is closed in
// g: every right node adjacent to a member of S has at least two neighbors
// in S. It returns the sealing right nodes when true.
func IsClosedSet(g *graph.Graph, S []int) ([]int, bool) {
	counts := map[int32]int{}
	for _, l := range S {
		for _, r := range g.Parents(l) {
			counts[r]++
		}
	}
	rights := make([]int, 0, len(counts))
	for r, c := range counts {
		if c < 2 {
			return nil, false
		}
		rights = append(rights, int(r))
	}
	if len(rights) == 0 {
		return nil, false // isolated nodes are a coverage error, not a closed set
	}
	slices.Sort(rights)
	return rights, true
}

// subset reports whether every element of a (sorted) appears in b (sorted).
func subset(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// Screen returns an error describing the first structural defect found in
// the data level, or nil when the graph passes. It is the generation-time
// gate of paper §3.3 ("graphs that fail are discarded").
func Screen(g *graph.Graph, maxSize int) error {
	return ScreenCtx(context.Background(), g, maxSize)
}

// ScreenCtx is Screen with cancellation: the scan workers observe ctx at
// subset-chunk boundaries, so a canceled screen returns ctx.Err() within
// one chunk of kernel work.
func ScreenCtx(ctx context.Context, g *graph.Graph, maxSize int) error {
	fs, err := scanTableCtx(ctx, NewDataTable(g), maxSize, 0)
	if err != nil {
		return err
	}
	switch len(fs) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("defect: %v", fs[0])
	default:
		return fmt.Errorf("defect: %v (and %d more)", fs[0], len(fs)-1)
	}
}
