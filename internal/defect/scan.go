package defect

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// minShardSize keeps parallel shards from dropping below a useful grain:
// small scans (the generation gate's C(48,2) pass) run inline instead of
// paying goroutine fan-out for microseconds of kernel work.
const minShardSize = 4096

// scanWorkers resolves a worker-count option against the scan size. An
// explicit request is honored as-is (SplitRanges clamps to one rank per
// range); the GOMAXPROCS default is additionally capped so small scans run
// inline instead of paying fan-out for microseconds of kernel work.
func scanWorkers(workers int, total int64) int {
	if workers > 0 {
		return workers
	}
	workers = runtime.GOMAXPROCS(0)
	if maxParts := int(total/minShardSize) + 1; workers > maxParts {
		workers = maxParts
	}
	return workers
}

// ScanDataLevel enumerates subsets of the data nodes of size 2..maxSize and
// returns every minimal closed set (subsets containing an already-reported
// set are skipped). maxSize is clamped to the data node count. It is the
// kernel-backed replacement for ReferenceScan and returns bit-identical
// findings in the same order.
func ScanDataLevel(g *graph.Graph, maxSize int) []Finding {
	fs, _ := scanTableCtx(context.Background(), NewDataTable(g), maxSize, 0)
	return fs
}

// ScanDataLevelCtx is ScanDataLevel with cancellation and an explicit
// worker count (0 = GOMAXPROCS); see ScanLevelCtx for the sharding and
// cancellation contract.
func ScanDataLevelCtx(ctx context.Context, g *graph.Graph, maxSize, workers int) ([]Finding, error) {
	return scanTableCtx(ctx, NewDataTable(g), maxSize, workers)
}

// ScanLevelCtx scans level li's left range for minimal closed sets up to
// maxSize members, sharding the combination rank space of each subset size
// across workers goroutines (0 = GOMAXPROCS). Workers observe ctx at
// subset-chunk boundaries, and progress counters are flushed to Metrics()
// at the same cadence. The findings are independent of the worker count:
// per-shard results merge in rank order and sort lexicographically before
// the minimality filter runs.
//
// For li > 0 the left nodes are themselves check nodes; a closed set there
// cannot be recovered through its parent checks (peeling rule 1), though
// its members remain recomputable bottom-up (rule 2) while their own left
// neighbors survive. Upper-level findings therefore mark cascade weak
// points that erode multi-loss tolerance rather than standalone data loss;
// the hard generation gate (Screen) stays on the data level.
func ScanLevelCtx(ctx context.Context, g *graph.Graph, li, maxSize, workers int) ([]Finding, error) {
	if li < 0 || li >= len(g.Levels) {
		return nil, fmt.Errorf("defect: level %d out of range (graph has %d levels)", li, len(g.Levels))
	}
	return scanTableCtx(ctx, NewLevelTable(g, li), maxSize, workers)
}

// ScanLevel is ScanLevelCtx with context.Background and default workers.
func ScanLevel(g *graph.Graph, li, maxSize int) ([]Finding, error) {
	return ScanLevelCtx(context.Background(), g, li, maxSize, 0)
}

// ScanGraphCtx scans every distinct left range of the cascade — the data
// level plus each check level that feeds a higher one — and returns the
// concatenated findings in level order, each tagged with its Level. Levels
// sharing a left range (the final Typhoon stages) are scanned once.
func ScanGraphCtx(ctx context.Context, g *graph.Graph, maxSize, workers int) ([]Finding, error) {
	var all []Finding
	for li, lv := range g.Levels {
		seen := false
		for j := 0; j < li; j++ {
			if g.Levels[j].LeftFirst == lv.LeftFirst && g.Levels[j].LeftCount == lv.LeftCount {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		fs, err := ScanLevelCtx(ctx, g, li, maxSize, workers)
		if err != nil {
			return all, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// ScanGraph is ScanGraphCtx with context.Background and default workers.
func ScanGraph(g *graph.Graph, maxSize int) ([]Finding, error) {
	return ScanGraphCtx(context.Background(), g, maxSize, 0)
}

// scanTableCtx runs the sized scans over one table, ascending, filtering
// each size's closed sets down to the minimal ones (no reported subset)
// exactly as ReferenceScan does.
func scanTableCtx(ctx context.Context, t *Table, maxSize, workers int) ([]Finding, error) {
	if maxSize > t.LeftCount {
		maxSize = t.LeftCount
	}
	var findings []Finding
	var fin *Kernel // lazily built: findings are the exception, not the rule
	for size := 2; size <= maxSize; size++ {
		sets, err := closedSets(ctx, t, size, workers)
		if err != nil {
			return nil, err
		}
		for _, s := range sets {
			// s holds range-local indices; globalize in place (the slice is
			// a fresh clone owned by this scan).
			for i := range s {
				s[i] += t.LeftFirst
			}
			if containsFound(findings, s) {
				continue
			}
			if fin == nil {
				fin = NewKernel(t)
			}
			fin.Reset()
			for _, l := range s {
				fin.Add(l - t.LeftFirst)
			}
			findings = append(findings, Finding{
				Level:  t.Level,
				Lefts:  s,
				Rights: fin.sealingRights(nil),
			})
		}
	}
	return findings, nil
}

// containsFound reports whether S is a superset of an already-reported
// closed set (S is then non-minimal and suppressed).
func containsFound(findings []Finding, S []int) bool {
	for _, f := range findings {
		if subset(f.Lefts, S) {
			return true
		}
	}
	return false
}

// closedSets enumerates every size-member subset of t's left range (local
// indices) and returns the closed ones sorted lexicographically. The rank
// space [0, C(LeftCount, size)) is split across workers; each shard walks
// its range in revolving-door order driving a private kernel one swap per
// subset.
func closedSets(ctx context.Context, t *Table, size, workers int) ([][]int, error) {
	total, ok := combin.BinomialInt64(t.LeftCount, size)
	if !ok {
		return nil, fmt.Errorf("defect: C(%d,%d) exceeds the exhaustive rank space (%w); lower maxSize", t.LeftCount, size, combin.ErrRankOverflow)
	}
	if total == 0 {
		return nil, nil
	}
	ranges := combin.SplitRanges(total, scanWorkers(workers, total))

	results := make([][][]int, len(ranges))
	errs := make([]error, len(ranges))
	if len(ranges) == 1 {
		results[0], errs[0] = scanShard(ctx, t, size, ranges[0][0], ranges[0][1])
	} else {
		var wg sync.WaitGroup
		for i, rg := range ranges {
			wg.Add(1)
			go func(i int, lo, hi int64) {
				defer wg.Done()
				results[i], errs[i] = scanShard(ctx, t, size, lo, hi)
			}(i, rg[0], rg[1])
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var sets [][]int
	for _, r := range results {
		sets = append(sets, r...)
	}
	// Shards enumerate in revolving-door order; canonicalize so the
	// minimality filter (and the caller-visible finding order) matches the
	// lexicographic ReferenceScan bit for bit, at any worker count.
	slices.SortFunc(sets, slices.Compare)
	return sets, nil
}

// scanShard evaluates the subsets whose revolving-door rank lies in
// [lo, hi), single-threaded and allocation-free except for recording the
// closed sets it finds. Cancellation and metric flushes happen at
// subset-chunk boundaries.
func scanShard(ctx context.Context, t *Table, size int, lo, hi int64) ([][]int, error) {
	reg := Metrics()
	tested := reg.Counter(MetricSubsetsTested)
	found := reg.Counter(MetricClosedSetsFound)

	kn := NewKernel(t)
	idx := make([]int, size)
	combin.GrayUnrank(idx, t.LeftCount, lo)
	for _, l := range idx {
		kn.Add(l)
	}

	var out [][]int
	var nTested, nFound, lastT, lastF int64
	untilCheck := int64(0) // countdown, not modulo: this loop runs per subset
	for r := lo; r < hi; r++ {
		if untilCheck == 0 {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			tested.Add(nTested - lastT)
			found.Add(nFound - lastF)
			lastT, lastF = nTested, nFound
			untilCheck = chunkInterval
		}
		untilCheck--
		nTested++
		if kn.Closed() {
			nFound++
			out = append(out, slices.Clone(idx))
		}
		if r+1 < hi {
			o, in, _ := combin.GrayNext(idx, t.LeftCount)
			kn.Swap(o, in)
		}
	}
	tested.Add(nTested - lastT)
	found.Add(nFound - lastF)
	return out, nil
}
