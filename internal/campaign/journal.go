package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// On-disk layout of a campaign directory:
//
//	manifest.json  — immutable campaign identity (spec, graph fingerprint,
//	                 shard totals), written once via atomic rename
//	graph.graphml  — the graph under test, so Resume needs no other input
//	journal.jsonl  — one JSON record appended per completed shard
//	result.json    — final merged result, written via atomic rename when
//	                 the campaign completes
const (
	manifestFile = "manifest.json"
	graphFile    = "graph.graphml"
	journalFile  = "journal.jsonl"
	resultFile   = "result.json"
)

// manifestVersion guards the on-disk format; Resume rejects manifests from
// a different version rather than misreading them. Version 2 switched
// exhaustive shards from lexicographic to revolving-door rank ranges
// (sim.ScanRangeCtx), which changes each shard's recorded failure sets —
// resuming a v1 journal against the v2 scanner would silently mix the two
// orderings, so the bump forces a fresh campaign. Version 3 changed what a
// shard records again: the lexicographically smallest failures of its range
// rather than the first encountered in scan order, so merged results no
// longer depend on the shard layout.
const manifestVersion = 3

// Manifest is the immutable identity of a campaign directory.
type Manifest struct {
	Version     int    `json:"version"`
	CreatedUnix int64  `json:"created_unix"`
	GraphName   string `json:"graph_name"`
	Fingerprint string `json:"fingerprint"` // graph.Fingerprint() of graph.graphml
	Spec        Spec   `json:"spec"`        // normalized; replanning it reproduces the shard list
	TotalShards int    `json:"total_shards"`
	TotalWork   int64  `json:"total_work"` // combinations + trials across all shards
}

// Record is one journal line: the complete, deterministic result of one
// shard. Exhaustive shards carry Tested/FailCount/Failures; Monte Carlo
// shards carry Trials/Hits. Sampled shards additionally carry the
// per-stratum tallies and the screening count, and reuse Failures for the
// failing witness patterns.
type Record struct {
	Shard     int     `json:"shard"`
	K         int     `json:"k"`
	Tested    int64   `json:"tested,omitempty"`
	FailCount int64   `json:"fail_count,omitempty"`
	Failures  [][]int `json:"failures,omitempty"`
	Trials    int64   `json:"trials,omitempty"`
	Hits      int64   `json:"hits,omitempty"`

	// Sampled-shard stratification (KindSampled): index s tallies the
	// trials whose max same-check collision count is s (capped at K).
	StrataHits   []int64 `json:"strata_hits,omitempty"`
	StrataTrials []int64 `json:"strata_trials,omitempty"`
	// Screened counts the shard's trials resolved by structural proof
	// alone, never decoded.
	Screened int64 `json:"screened,omitempty"`
}

// writeFileAtomic writes data to path via a temp file, fsync, and rename,
// so readers never observe a partial manifest or result.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

func readManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return m, fmt.Errorf("campaign: no manifest in %s: %w", dir, err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("campaign: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("campaign: manifest version %d in %s, this build reads %d", m.Version, dir, manifestVersion)
	}
	return m, nil
}

// journalWriter appends shard records to journal.jsonl. Each record is one
// marshaled line written in a single Write and fsynced — at shard
// granularity the sync cost is noise, and it makes every acknowledged
// record crash-durable.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(dir string) (*journalWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f}, nil
}

func (w *journalWriter) append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *journalWriter) Close() error { return w.f.Close() }

// readJournal loads every decodable record from journal.jsonl, keyed by
// shard ID. A missing file is an empty journal. Undecodable lines — the
// partially written tail a crash can leave — are skipped: the affected
// shard simply reruns, which is always safe because shards are
// deterministic.
func readJournal(dir string) (map[int]Record, error) {
	f, err := os.Open(filepath.Join(dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return map[int]Record{}, nil
		}
		return nil, err
	}
	defer f.Close()

	done := map[int]Record{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // truncated tail from a crash; shard will rerun
		}
		done[rec.Shard] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: reading journal: %w", err)
	}
	return done, nil
}
