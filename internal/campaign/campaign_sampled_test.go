package campaign

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"tornado/internal/combin"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// TestSampledCampaignMatchesSim: a sampled campaign is the journaled,
// resumable form of sim.SampleStratified — over the same seed and block
// layout the two must produce deeply equal results, at any worker count.
func TestSampledCampaignMatchesSim(t *testing.T) {
	g := testGraph(t)
	spec := Spec{
		Kind: KindSampled, MinK: 4, MaxK: 4,
		Trials: 40000, ShardSize: 4096, Seed: 9, Epsilon: -1,
	}
	want, err := sim.SampleStratified(g, 4, sim.SampledOptions{
		Seed: 9, MaxTrials: 40000, BlockSize: 4096, Epsilon: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := Run(t.TempDir(), g, spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Sampled) != 1 {
			t.Fatalf("workers=%d: %d sampled results, want 1", workers, len(res.Sampled))
		}
		if !reflect.DeepEqual(res.Sampled[0], want) {
			t.Errorf("workers=%d: campaign diverges from sim.SampleStratified:\n got %+v\nwant %+v",
				workers, res.Sampled[0], want)
		}
		if res.WorkDone != want.Tally.Trials {
			t.Errorf("workers=%d: work done = %d, want %d", workers, res.WorkDone, want.Tally.Trials)
		}
	}
}

// TestSampledCampaignCrashResumeBitIdentical cancels a sampled campaign
// mid-run and resumes it under a different worker count; the final result
// must match an uninterrupted run byte for byte.
func TestSampledCampaignCrashResumeBitIdentical(t *testing.T) {
	g := testGraph(t)
	spec := Spec{
		Kind: KindSampled, MinK: 3, MaxK: 4,
		Trials: 40000, ShardSize: 2048, Seed: 17, Epsilon: -1,
	}

	uninterrupted, err := Run(t.TempDir(), g, spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunCtx(ctx, dir, g, spec, Options{
		Workers: 2,
		Progress: func(st Status) {
			if st.DoneShards >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.DoneShards == 0 || st.Completed {
		t.Fatalf("expected a partial journal, got %+v", st)
	}

	resumed, err := Resume(dir, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshal(t, resumed), marshal(t, uninterrupted); string(got) != string(want) {
		t.Errorf("resumed sampled result not bit-identical:\n got %s\nwant %s", got, want)
	}
}

// TestSampledCampaignStoppingRule: a cardinality that screens every trial
// reaches the epsilon target at the first round boundary, leaving the rest
// of its budget unrun — and the early-stopped result round-trips through
// the content-addressed cache.
func TestSampledCampaignStoppingRule(t *testing.T) {
	g := testGraph(t)
	cache := t.TempDir()
	// k=1 is always recoverable (collision count 1 everywhere), so the
	// zero-hit Wilson math governs: one 4096-trial round gives half-width
	// ~4.7e-4 <= 1e-3 and the remaining rounds must be skipped.
	spec := Spec{
		Kind: KindSampled, MinK: 1, MaxK: 1,
		Trials: 1 << 20, ShardSize: 4096, Seed: 5, Epsilon: 1e-3,
	}
	dir := t.TempDir()
	res, err := Run(dir, g, spec, Options{Workers: 2, CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Sampled[0]
	if len(sr.Rounds) != 1 || sr.Tally.Trials != 4096 {
		t.Fatalf("stopping rule fired after %d rounds / %d trials, want 1 round / 4096 trials",
			len(sr.Rounds), sr.Tally.Trials)
	}
	if sr.ScreenRate() != 1 {
		t.Errorf("k=1 screen rate = %v, want 1", sr.ScreenRate())
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Completed || st.DoneShards >= st.TotalShards {
		t.Errorf("early stop should leave shards unrun: %+v", st)
	}

	hit, err := Run(t.TempDir(), g, spec, Options{Workers: 2, CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("identical sampled spec missed the cache")
	}
	if got, want := marshal(t, hit), marshal(t, res); string(got) != string(want) {
		t.Error("cached sampled result diverges")
	}
}

// archivalGraph builds an edgeless n=100,000 fixture: planShards consults
// only node counts, so no wiring is needed to exercise the overflow path.
func archivalGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(50000)
	b.AddLevel(0, 50000, 50000)
	g := b.Graph()
	g.Name = "archival-100k"
	return g
}

// TestExhaustiveOverflowFastFail is the acceptance bit for the overflow
// bugfix: an exhaustive spec at n=100k must fail fast — before any
// directory or shard work — with ErrRankOverflow and a message pointing at
// the sampled kind. C(100000, 5) ≈ 8.3e22 overflows int64 outright, and
// the cardinalities below it exceed the shard-planning budget, which
// reports through the same sentinel.
func TestExhaustiveOverflowFastFail(t *testing.T) {
	g := archivalGraph(t)
	dir := t.TempDir()
	_, err := Run(dir+"/c", g, Spec{Kind: KindWorstCase, MaxK: 5}, Options{})
	if !errors.Is(err, combin.ErrRankOverflow) {
		t.Fatalf("exhaustive n=100k spec returned %v, want ErrRankOverflow", err)
	}
	if !strings.Contains(err.Error(), "sampled") {
		t.Errorf("overflow error does not point at the sampled kind: %v", err)
	}

	// The sampled kind accepts the same graph: planning succeeds without
	// touching the (astronomically large) rank space.
	spec := Spec{Kind: KindSampled, MinK: 5, MaxK: 5}.normalize(g.Total)
	groups, err := planShards(g, spec)
	if err != nil {
		t.Fatalf("sampled plan at n=100k failed: %v", err)
	}
	if len(groups) == 0 {
		t.Fatal("sampled plan is empty")
	}
}

// TestSampledSpecNormalizeAndCacheKey pins the sampled spec's defaults and
// its cache-key separation from the other kinds.
func TestSampledSpecNormalizeAndCacheKey(t *testing.T) {
	g := testGraph(t)
	spec := Spec{Kind: KindSampled}.normalize(g.Total)
	if spec.Trials != sim.DefaultSampledMaxTrials || spec.Epsilon != sim.DefaultSampledEpsilon {
		t.Errorf("sampled defaults: %+v", spec)
	}
	if spec.MinK != 1 || spec.MaxK != sim.DefaultMaxK || spec.MaxFailures != sim.DefaultMaxFailures {
		t.Errorf("sampled range defaults: %+v", spec)
	}
	if spec.Kernel != "" || spec.ExhaustiveLimit != 0 || spec.KeepGoing {
		t.Errorf("sampled spec kept foreign fields: %+v", spec)
	}
	if orderVersion(spec) != scanOrderVersionSampled {
		t.Errorf("sampled order version = %q", orderVersion(spec))
	}
	// Epsilon participates in cache identity: a different precision target
	// is a different result.
	tight := Spec{Kind: KindSampled, Epsilon: 1e-5}
	if CacheKey(g, Spec{Kind: KindSampled}) == CacheKey(g, tight) {
		t.Error("epsilon change did not change the cache key")
	}
	prof := Spec{Kind: KindProfile, Trials: sim.DefaultSampledMaxTrials}
	if CacheKey(g, Spec{Kind: KindSampled}) == CacheKey(g, prof) {
		t.Error("sampled and profile specs share a cache key")
	}
}
