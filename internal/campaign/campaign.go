// Package campaign turns the paper's hours-to-days testing workloads — the
// exhaustive combinatorial worst-case searches and Monte Carlo
// reconstruction-failure profiles of §3 — into durable, resumable units of
// work. A campaign spec (graph + options) is deterministically sharded:
// exhaustive cardinalities are cut into contiguous combination-rank ranges
// via combin.SplitRanges (scanned in revolving-door order by the incremental
// peeling kernel; see sim.ScanRangeCtx), and Monte Carlo points into
// fixed-size trial blocks each owning a seeded RNG stream. A
// worker pool executes shards and journals each completed shard to a
// crash-safe JSONL file, so Resume skips finished shards and — because
// every shard is a pure function of its plan entry — produces results
// bit-identical to an uninterrupted run.
//
// A content-addressed result cache keyed by graph.Fingerprint plus the
// normalized spec makes re-running an unchanged graph free: only rewired
// graphs (different fingerprint) pay for a new search, which is exactly the
// access pattern of adjust.Improve-style feedback loops.
//
// Progress is exported through internal/obs (shards done/total,
// combinations/sec, ETA) and, per completed shard, an optional callback.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"time"

	"tornado/internal/combin"
	"tornado/internal/decode"
	"tornado/internal/graph"
	"tornado/internal/graphml"
	"tornado/internal/obs"
	"tornado/internal/sim"
	"tornado/internal/stats"
)

// Kind selects the workload a campaign runs.
type Kind string

const (
	// KindWorstCase is the exhaustive first-failure search (sim.WorstCase).
	KindWorstCase Kind = "worstcase"
	// KindProfile is the Monte Carlo reconstruction-failure profile
	// (sim.FailureProfile).
	KindProfile Kind = "profile"
	// KindSampled is the archival-scale sampled certification
	// (sim.SampleStratifiedCtx): stratified Monte Carlo with a Wilson-CI
	// planned-precision stopping rule, for graphs whose erasure spaces
	// overflow the exhaustive rank arithmetic entirely.
	KindSampled Kind = "sampled"
)

// DefaultShardSize is the target number of combinations (or Monte Carlo
// trials) per shard. Shards are the unit of checkpointing: small enough
// that a crash loses little work, large enough that journal writes are
// noise against decoding cost.
const DefaultShardSize = 65536

// Spec is the canonical description of a campaign's workload. Zero fields
// are filled with the internal/sim defaults; the normalized form is what is
// stored in the manifest and hashed (with the graph fingerprint) into the
// result cache key, so field order and zeroing discipline here define cache
// identity.
type Spec struct {
	Kind Kind `json:"kind"`

	// MaxK bounds the examined erasure cardinality (both kinds).
	MaxK int `json:"max_k,omitempty"`

	// Worst-case search fields (KindWorstCase).
	MaxFailures int  `json:"max_failures,omitempty"`
	KeepGoing   bool `json:"keep_going,omitempty"`

	// Kernel selects the scan evaluation kernel (KindWorstCase):
	// "" or "scalar" for the revolving-door scalar kernel, "sliced" for
	// the bit-sliced 64-lane kernel. Both produce bit-identical results;
	// the kernel still participates in the cache key through the scan
	// order version so shards computed under one kernel are never
	// replayed into the other's campaigns.
	Kernel string `json:"kernel,omitempty"`

	// Monte Carlo fields (KindProfile and KindSampled). For KindSampled,
	// Trials is the per-cardinality trial budget the stopping rule may cut
	// short, and MaxFailures doubles as the witness cap.
	Trials          int64  `json:"trials,omitempty"`
	ExhaustiveLimit int64  `json:"exhaustive_limit,omitempty"`
	MinK            int    `json:"min_k,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`

	// Epsilon is the sampled certification's planned-precision target
	// (KindSampled): sampling of a cardinality stops at the first round
	// boundary where the pooled 95% Wilson CI half-width is <= Epsilon.
	// Negative disables the rule (the full Trials budget runs).
	Epsilon float64 `json:"epsilon,omitempty"`

	// ShardSize overrides DefaultShardSize. For KindSampled it is the
	// sampled block size: shard boundaries define the RNG streams, so it
	// participates in the computed result, not just the checkpoint layout.
	ShardSize int64 `json:"shard_size,omitempty"`
}

// normalize fills defaults and zeroes the fields the kind does not use, so
// that equivalent specs are byte-identical after marshaling.
func (s Spec) normalize(total int) Spec {
	if s.ShardSize <= 0 {
		s.ShardSize = DefaultShardSize
	}
	switch s.Kind {
	case KindWorstCase:
		if s.MaxK <= 0 {
			s.MaxK = sim.DefaultMaxK
		}
		if s.MaxK > total {
			s.MaxK = total
		}
		if s.MaxFailures <= 0 {
			s.MaxFailures = sim.DefaultMaxFailures
		}
		if s.Kernel == string(sim.KernelScalar) || s.Kernel == "scalar" {
			s.Kernel = ""
		}
		s.Trials, s.ExhaustiveLimit, s.MinK, s.Seed = 0, 0, 0, 0
		s.Epsilon = 0
	case KindProfile:
		if s.Trials <= 0 {
			s.Trials = sim.DefaultProfileTrials
		}
		if s.ExhaustiveLimit <= 0 {
			s.ExhaustiveLimit = sim.DefaultExhaustiveLimit
		}
		if s.MinK <= 0 {
			s.MinK = 1
		}
		if s.MaxK <= 0 || s.MaxK > total {
			s.MaxK = total
		}
		s.MaxFailures, s.KeepGoing = 0, false
		s.Kernel = ""
		s.Epsilon = 0
	case KindSampled:
		if s.Trials <= 0 {
			s.Trials = sim.DefaultSampledMaxTrials
		}
		if s.Epsilon == 0 {
			s.Epsilon = sim.DefaultSampledEpsilon
		}
		if s.MinK <= 0 {
			s.MinK = 1
		}
		if s.MaxK <= 0 {
			s.MaxK = sim.DefaultMaxK
		}
		if s.MaxK > total {
			s.MaxK = total
		}
		if s.MaxFailures <= 0 {
			s.MaxFailures = sim.DefaultMaxFailures
		}
		s.ExhaustiveLimit, s.KeepGoing = 0, false
		s.Kernel = ""
	}
	return s
}

func (s Spec) validate() error {
	switch s.Kind {
	case KindWorstCase, KindProfile, KindSampled:
	default:
		return fmt.Errorf("campaign: unknown kind %q (want %q, %q, or %q)", s.Kind, KindWorstCase, KindProfile, KindSampled)
	}
	if err := sim.ScanKernel(s.Kernel).Validate(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// Options tunes campaign execution. Unlike Spec, nothing here affects the
// computed result — workers, metrics, and cache location can change between
// a run and its resume.
type Options struct {
	// Workers is the worker pool size; default GOMAXPROCS.
	Workers int
	// CacheDir enables the content-addressed result cache. Empty disables
	// caching.
	CacheDir string
	// Metrics receives the campaign progress gauges; default sim.Metrics(),
	// so one registry carries both the sim counters and the campaign
	// gauges.
	Metrics *obs.Registry
	// Progress, when set, is called after every completed shard with a
	// status snapshot. Called from worker goroutines, serialized.
	Progress func(Status)
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Metrics == nil {
		o.Metrics = sim.Metrics()
	}
	return o
}

// Campaign progress gauges, published to Options.Metrics.
const (
	MetricShardsTotal = "campaign_shards_total"
	MetricShardsDone  = "campaign_shards_done"
	MetricWorkPerSec  = "campaign_combinations_per_sec"
	MetricETASeconds  = "campaign_eta_seconds"
)

// Result is the outcome of a campaign: exactly one of WorstCase, Profile,
// or Sampled is set, matching Kind.
type Result struct {
	Kind        Kind                 `json:"kind"`
	Fingerprint string               `json:"fingerprint"`
	Spec        Spec                 `json:"spec"`
	WorstCase   *sim.WorstCaseResult `json:"worst_case,omitempty"`
	Profile     *sim.Profile         `json:"profile,omitempty"`
	// Sampled holds one sampled certification per cardinality in
	// MinK..MaxK, in ascending K order (KindSampled).
	Sampled []*sim.SampledResult `json:"sampled,omitempty"`
	// WorkDone counts combinations plus trials evaluated across all shards
	// that contributed to the result (journaled ones included).
	WorkDone int64 `json:"work_done"`
	// Cached reports that the result was served from the result cache (or
	// a completed campaign directory) without executing any shard. Not
	// stored.
	Cached bool `json:"-"`
}

// Status is a progress snapshot of a campaign directory.
type Status struct {
	Dir         string
	Kind        Kind
	Fingerprint string
	TotalShards int
	DoneShards  int
	WorkTotal   int64 // combinations + trials across all planned shards
	WorkDone    int64
	Completed   bool // result.json present
}

// shard is one deterministic unit of work. Exhaustive shards scan the
// combination-rank range [Lo, Hi) of cardinality K; Monte Carlo shards
// (Trials > 0) draw Trials samples from RNG stream (spec.Seed, K, Stream).
type shard struct {
	ID          int
	K           int
	Lo, Hi      int64
	MaxFailures int
	Trials      int64
	Stream      uint64
	Exact       bool // profile point computed by enumeration, not sampling
}

func (s shard) work() int64 {
	if s.Trials > 0 {
		return s.Trials
	}
	return s.Hi - s.Lo
}

// maxPlannedShards bounds the shard list an exhaustive plan may expand to.
// An archival-scale cardinality whose rank space still fits int64 (e.g.
// C(100000, 4) ≈ 4.2e18) would otherwise ask for trillions of shard
// structs; like a true rank overflow, that means exhaustive enumeration is
// infeasible and the spec should be sampled instead.
const maxPlannedShards = 1 << 20

// planShards deterministically expands a normalized spec into shard groups.
// Worst-case campaigns get one group per cardinality (executed in order so
// the first-failure early stop matches sim.WorstCase); profile campaigns
// get a single group because every point is independent; sampled campaigns
// get one group per (cardinality, stopping-rule round) so the runner can
// evaluate the precision target exactly where sim.SampleStratifiedCtx
// would.
func planShards(g *graph.Graph, spec Spec) ([][]shard, error) {
	nextID := 0
	rankShards := func(k int, maxFailures int, exact bool) ([]shard, error) {
		total, ok := combin.BinomialInt64(g.Total, k)
		if !ok {
			return nil, fmt.Errorf("campaign: C(%d,%d) exceeds the exhaustive rank space (%w); lower MaxK or switch to Kind \"sampled\"", g.Total, k, combin.ErrRankOverflow)
		}
		parts := (total + spec.ShardSize - 1) / spec.ShardSize
		if parts > maxPlannedShards {
			return nil, fmt.Errorf("campaign: C(%d,%d) = %d needs %d shards of %d, beyond the exhaustive planning budget (%w); lower MaxK or switch to Kind \"sampled\"",
				g.Total, k, total, parts, spec.ShardSize, combin.ErrRankOverflow)
		}
		var out []shard
		for _, rg := range combin.SplitRanges(total, int(parts)) {
			out = append(out, shard{ID: nextID, K: k, Lo: rg[0], Hi: rg[1], MaxFailures: maxFailures, Exact: exact})
			nextID++
		}
		return out, nil
	}

	switch spec.Kind {
	case KindWorstCase:
		var groups [][]shard
		for k := 1; k <= spec.MaxK; k++ {
			grp, err := rankShards(k, spec.MaxFailures, true)
			if err != nil {
				return nil, err
			}
			groups = append(groups, grp)
		}
		return groups, nil

	case KindProfile:
		var grp []shard
		for k := spec.MinK; k <= spec.MaxK; k++ {
			if c, ok := combin.BinomialInt64(g.Total, k); ok && c <= spec.ExhaustiveLimit {
				// Exact enumeration; only the count matters, record one
				// witness at most (mirrors sim.FailureProfileCtx).
				ss, err := rankShards(k, 1, true)
				if err != nil {
					return nil, err
				}
				grp = append(grp, ss...)
				continue
			}
			parts := (spec.Trials + spec.ShardSize - 1) / spec.ShardSize
			for i, rg := range combin.SplitRanges(spec.Trials, int(parts)) {
				grp = append(grp, shard{ID: nextID, K: k, Trials: rg[1] - rg[0], Stream: uint64(i)})
				nextID++
			}
		}
		return [][]shard{grp}, nil

	case KindSampled:
		// One block per shard, blocks grouped into the doubling rounds of
		// sim.SampledPlan. The stream is the block index within the
		// cardinality's schedule, so every shard is the exact block a
		// sim-level SampleStratifiedCtx run would draw.
		var groups [][]shard
		for k := spec.MinK; k <= spec.MaxK; k++ {
			_, rounds := sim.SampledPlan(spec.Trials, spec.ShardSize)
			for _, rd := range rounds {
				var grp []shard
				for b := rd[0]; b < rd[1]; b++ {
					grp = append(grp, shard{
						ID:          nextID,
						K:           k,
						Trials:      sim.SampledBlockTrials(spec.Trials, spec.ShardSize, b),
						Stream:      uint64(b),
						MaxFailures: spec.MaxFailures,
					})
					nextID++
				}
				groups = append(groups, grp)
			}
		}
		return groups, nil
	}
	return nil, spec.validate()
}

// matches reports whether a journaled record is the complete result of
// shard s; anything else (stale plan, truncated write that still parsed) is
// discarded and the shard reruns.
func (s shard) matches(rec Record) bool {
	if rec.K != s.K {
		return false
	}
	if s.Trials > 0 {
		return rec.Trials == s.Trials
	}
	return rec.Tested == s.Hi-s.Lo
}

// Run executes a campaign to completion in dir. See RunCtx.
func Run(dir string, g *graph.Graph, spec Spec, opts Options) (*Result, error) {
	return RunCtx(context.Background(), dir, g, spec, opts)
}

// RunCtx starts a fresh campaign in dir and executes it to completion. The
// directory must not already hold a campaign (use ResumeCtx for that). If
// opts.CacheDir holds a result for the same graph fingerprint and
// normalized spec, it is returned immediately with Cached set and the
// directory is left untouched. On cancellation the journal retains every
// completed shard and RunCtx returns ctx's error; ResumeCtx picks up from
// there.
func RunCtx(ctx context.Context, dir string, g *graph.Graph, spec Spec, opts Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("campaign: nil graph")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	spec = spec.normalize(g.Total)
	opts = opts.normalize()
	fp := g.Fingerprint()

	if opts.CacheDir != "" {
		if res, ok := loadCache(opts.CacheDir, cacheKey(fp, spec)); ok {
			res.Cached = true
			return res, nil
		}
	}

	if dir == "" {
		return nil, errors.New("campaign: empty campaign directory")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
		return nil, fmt.Errorf("campaign: %s already holds a campaign; use Resume", dir)
	}
	groups, err := planShards(g, spec)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := graphml.WriteFile(filepath.Join(dir, graphFile), g); err != nil {
		return nil, err
	}
	man := Manifest{
		Version:     manifestVersion,
		CreatedUnix: time.Now().Unix(),
		GraphName:   g.Name,
		Fingerprint: fp,
		Spec:        spec,
	}
	for _, grp := range groups {
		man.TotalShards += len(grp)
		for _, s := range grp {
			man.TotalWork += s.work()
		}
	}
	if err := writeJSONAtomic(filepath.Join(dir, manifestFile), man); err != nil {
		return nil, err
	}
	return execute(ctx, dir, g, man, groups, map[int]Record{}, opts)
}

// Resume continues the campaign in dir to completion. See ResumeCtx.
func Resume(dir string, opts Options) (*Result, error) {
	return ResumeCtx(context.Background(), dir, opts)
}

// ResumeCtx loads the campaign in dir, skips every journaled shard, runs
// the rest, and merges both into the final result — bit-identical to an
// uninterrupted run, because shards are deterministic and merged in plan
// order. Resuming a completed campaign returns the stored result with
// Cached set.
func ResumeCtx(ctx context.Context, dir string, opts Options) (*Result, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if res, err := loadResult(dir); err == nil {
		res.Cached = true
		return res, nil
	}
	opts = opts.normalize()
	g, err := graphml.ReadFile(filepath.Join(dir, graphFile))
	if err != nil {
		return nil, fmt.Errorf("campaign: loading campaign graph: %w", err)
	}
	if fp := g.Fingerprint(); fp != man.Fingerprint {
		return nil, fmt.Errorf("campaign: graph in %s fingerprints %s, manifest says %s", dir, fp, man.Fingerprint)
	}
	groups, err := planShards(g, man.Spec)
	if err != nil {
		return nil, err
	}
	journaled, err := readJournal(dir)
	if err != nil {
		return nil, err
	}
	// Keep only records that exactly match their planned shard.
	done := make(map[int]Record, len(journaled))
	for _, grp := range groups {
		for _, s := range grp {
			if rec, ok := journaled[s.ID]; ok && s.matches(rec) {
				done[s.ID] = rec
			}
		}
	}
	return execute(ctx, dir, g, man, groups, done, opts)
}

// loadResult reads a stored final result from a campaign directory.
func loadResult(dir string) (*Result, error) {
	return decodeResultFile(filepath.Join(dir, resultFile))
}

// runner carries the execution state shared by the worker pool.
type runner struct {
	g     *graph.Graph
	spec  Spec
	opts  Options
	jw    *journalWriter
	done  map[int]Record
	start time.Time

	// samplers pools sim.StratifiedSampler instances over one shared CSR
	// (KindSampled): the kernel masks and collision counters are the
	// expensive part of a sampled shard, and pooling keeps them warm across
	// the shards a worker executes.
	samplers sync.Pool

	mu          sync.Mutex
	status      Status
	workThisRun int64
}

// execute runs all pending shards group by group, merges, persists, and
// caches the final result.
func execute(ctx context.Context, dir string, g *graph.Graph, man Manifest, groups [][]shard, done map[int]Record, opts Options) (*Result, error) {
	jw, err := openJournal(dir)
	if err != nil {
		return nil, err
	}
	defer jw.Close()

	r := &runner{
		g: g, spec: man.Spec, opts: opts, jw: jw, done: done, start: time.Now(),
		status: Status{
			Dir:         dir,
			Kind:        man.Spec.Kind,
			Fingerprint: man.Fingerprint,
			TotalShards: man.TotalShards,
			WorkTotal:   man.TotalWork,
		},
	}
	for _, rec := range done {
		r.status.DoneShards++
		r.status.WorkDone += recWork(rec)
	}
	opts.Metrics.Gauge(MetricShardsTotal).Set(int64(man.TotalShards))
	opts.Metrics.Gauge(MetricShardsDone).Set(int64(r.status.DoneShards))

	res := &Result{Kind: man.Spec.Kind, Fingerprint: man.Fingerprint, Spec: man.Spec}
	switch man.Spec.Kind {
	case KindWorstCase:
		res.WorstCase, err = r.runWorstCase(ctx, groups)
	case KindProfile:
		res.Profile, err = r.runProfile(ctx, groups[0])
	case KindSampled:
		csr := decode.NewCSR(g)
		r.samplers.New = func() any { return sim.NewStratifiedSampler(csr) }
		res.Sampled, err = r.runSampled(ctx, groups)
	default:
		err = man.Spec.validate()
	}
	if err != nil {
		return nil, err
	}
	res.WorkDone = r.status.WorkDone

	if err := writeJSONAtomic(filepath.Join(dir, resultFile), res); err != nil {
		return nil, err
	}
	if opts.CacheDir != "" {
		if err := storeCache(opts.CacheDir, cacheKey(man.Fingerprint, man.Spec), res); err != nil {
			return nil, fmt.Errorf("campaign: storing result cache: %w", err)
		}
	}
	r.mu.Lock()
	r.status.Completed = true
	st := r.status
	r.mu.Unlock()
	if opts.Progress != nil {
		opts.Progress(st)
	}
	return res, nil
}

func recWork(rec Record) int64 { return rec.Tested + rec.Trials }

// executeGroup fans the group's pending shards over the worker pool. It
// returns once every shard in the group is journaled, or with the first
// error (cancellation included; completed shards stay journaled).
func (r *runner) executeGroup(ctx context.Context, shards []shard) error {
	var pending []shard
	for _, s := range shards {
		if _, ok := r.done[s.ID]; !ok {
			pending = append(pending, s)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	ch := make(chan shard, len(pending))
	for _, s := range pending {
		ch <- s
	}
	close(ch)

	workers := min(r.opts.Workers, len(pending))
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				if ctx.Err() != nil {
					errs <- ctx.Err()
					return
				}
				rec, err := r.runShard(ctx, s)
				if err != nil {
					errs <- err
					return
				}
				if err := r.jw.append(rec); err != nil {
					errs <- err
					return
				}
				r.noteDone(s, rec)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func (r *runner) runShard(ctx context.Context, s shard) (Record, error) {
	if r.spec.Kind == KindSampled {
		sp := r.samplers.Get().(*sim.StratifiedSampler)
		blk, err := sp.SampleBlock(ctx, s.K, s.Trials, r.spec.Seed, s.Stream, s.MaxFailures)
		r.samplers.Put(sp)
		if err != nil {
			return Record{}, err
		}
		tally := blk.Tally()
		rec := Record{
			Shard: s.ID, K: s.K, Trials: tally.Trials, Hits: tally.Hits,
			Screened:     blk.Screened,
			Failures:     blk.Witnesses,
			StrataHits:   make([]int64, len(blk.Strata)),
			StrataTrials: make([]int64, len(blk.Strata)),
		}
		for i, p := range blk.Strata {
			rec.StrataHits[i], rec.StrataTrials[i] = p.Hits, p.Trials
		}
		return rec, nil
	}
	if s.Trials > 0 {
		prop, err := sim.SampleStreamCtx(ctx, r.g, s.K, s.Trials, r.spec.Seed, s.Stream)
		if err != nil {
			return Record{}, err
		}
		return Record{Shard: s.ID, K: s.K, Trials: prop.Trials, Hits: prop.Hits}, nil
	}
	rr, err := sim.ScanRangeKernelCtx(ctx, r.g, s.K, s.Lo, s.Hi, s.MaxFailures, sim.ScanKernel(r.spec.Kernel))
	if err != nil {
		return Record{}, err
	}
	return Record{Shard: s.ID, K: s.K, Tested: rr.Tested, FailCount: rr.FailureCount, Failures: rr.Failures}, nil
}

// noteDone records a completed shard and refreshes the progress gauges:
// shards done, evaluation rate over this process's lifetime, and the ETA
// implied by that rate and the remaining work.
func (r *runner) noteDone(s shard, rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done[s.ID] = rec
	r.status.DoneShards++
	r.status.WorkDone += recWork(rec)
	r.workThisRun += recWork(rec)
	st := r.status

	m := r.opts.Metrics
	m.Gauge(MetricShardsDone).Set(int64(st.DoneShards))
	rate := float64(r.workThisRun) / time.Since(r.start).Seconds()
	if rate > 0 {
		if rate > 1e15 {
			rate = 1e15 // keep the int64 conversions defined for degenerate elapsed times
		}
		m.Gauge(MetricWorkPerSec).Set(int64(rate))
		m.Gauge(MetricETASeconds).Set(int64(float64(st.WorkTotal-st.WorkDone) / rate))
	}
	if r.opts.Progress != nil {
		r.opts.Progress(st) // under mu: callbacks observe monotone snapshots
	}
}

// runWorstCase executes cardinality groups in ascending order, merging each
// completed group and honoring the first-failure early stop exactly like
// sim.WorstCaseCtx.
func (r *runner) runWorstCase(ctx context.Context, groups [][]shard) (*sim.WorstCaseResult, error) {
	var res sim.WorstCaseResult
	for _, grp := range groups {
		if err := r.executeGroup(ctx, grp); err != nil {
			return nil, err
		}
		kr := r.mergeK(grp)
		res.PerK = append(res.PerK, kr)
		res.Tested += kr.Tested
		if kr.FailureCount > 0 && !res.Found {
			res.Found = true
			res.FirstFailure = kr.K
			if !r.spec.KeepGoing {
				break
			}
		}
	}
	return &res, nil
}

// mergeK folds a completed cardinality group into a KResult. Each shard
// records the lexicographically smallest MaxFailures failing sets of its
// rank range, so the concatenation of all shard lists contains the global
// lex-smallest MaxFailures; sorting then truncating reproduces exactly the
// prefix sim.ExhaustiveKCtx computes over its worker ranges, independent of
// shard layout, worker scheduling, and where a run was interrupted.
func (r *runner) mergeK(grp []shard) sim.KResult {
	kr := sim.KResult{K: grp[0].K}
	for _, s := range grp {
		rec := r.done[s.ID]
		kr.Tested += rec.Tested
		kr.FailureCount += rec.FailCount
		kr.Failures = append(kr.Failures, rec.Failures...)
	}
	slices.SortFunc(kr.Failures, slices.Compare)
	if max := grp[0].MaxFailures; len(kr.Failures) > max {
		kr.Failures = kr.Failures[:max:max]
	}
	return kr
}

// runProfile executes the (single) profile group and folds shard tallies
// into a sim.Profile.
func (r *runner) runProfile(ctx context.Context, grp []shard) (*sim.Profile, error) {
	if err := r.executeGroup(ctx, grp); err != nil {
		return nil, err
	}
	p := &sim.Profile{
		GraphName: r.g.Name,
		Total:     r.g.Total,
		Data:      r.g.Data,
		Fail:      make([]stats.Proportion, r.g.Total+1),
		Exact:     make([]bool, r.g.Total+1),
	}
	// k=0 is trivially exact: nothing missing.
	p.Fail[0] = stats.Proportion{Hits: 0, Trials: 1}
	p.Exact[0] = true
	for _, s := range grp {
		rec := r.done[s.ID]
		if s.Trials > 0 {
			p.Fail[s.K].Add(rec.Hits, rec.Trials)
		} else {
			p.Fail[s.K].Add(rec.FailCount, rec.Tested)
			p.Exact[s.K] = true
		}
	}
	return p, nil
}

// runSampled executes the sampled certification groups — one per
// (cardinality, round) in plan order — evaluating the planned-precision
// stopping rule at exactly the round boundaries sim.SampleStratifiedCtx
// uses. Once a cardinality reaches the epsilon target its remaining rounds
// are skipped (their shards stay unrun, like a worst-case early stop), so
// a resumed campaign replays the same merge sequence and stops at the same
// boundary as an uninterrupted one.
func (r *runner) runSampled(ctx context.Context, groups [][]shard) ([]*sim.SampledResult, error) {
	var out []*sim.SampledResult
	var cur *sim.SampledResult
	stopped := false
	for _, grp := range groups {
		k := grp[0].K
		if cur == nil || cur.K != k {
			cur = &sim.SampledResult{K: k, Strata: make([]stats.Proportion, k+1)}
			out = append(out, cur)
			stopped = false
		}
		if stopped {
			continue
		}
		if err := r.executeGroup(ctx, grp); err != nil {
			return nil, err
		}
		// Merge in shard (= block) order: tallies are integer sums and
		// witnesses carry block order, matching sim.mergeSampledBlock.
		for _, s := range grp {
			mergeSampledRecord(cur, r.done[s.ID], r.spec.MaxFailures)
		}
		cur.Rounds = append(cur.Rounds, sim.SampledRound{Trials: cur.Tally.Trials, HalfWidth: cur.HalfWidth()})
		if r.spec.Epsilon > 0 && cur.HalfWidth() <= r.spec.Epsilon {
			stopped = true
		}
	}
	return out, nil
}

// mergeSampledRecord folds one journaled sampled shard into the running
// per-cardinality result, reconstructing exactly what the sim driver's
// block merge computes.
func mergeSampledRecord(res *sim.SampledResult, rec Record, maxWitnesses int) {
	for s := range rec.StrataTrials {
		res.Strata[s].Add(rec.StrataHits[s], rec.StrataTrials[s])
	}
	res.Screened += rec.Screened
	for _, w := range rec.Failures {
		if len(res.Witnesses) >= maxWitnesses {
			break
		}
		res.Witnesses = append(res.Witnesses, w)
	}
	res.Tally = stats.Pool(res.Strata...)
}

// ReadStatus reports the progress of the campaign in dir without running
// anything.
func ReadStatus(dir string) (Status, error) {
	man, err := readManifest(dir)
	if err != nil {
		return Status{}, err
	}
	st := Status{
		Dir:         dir,
		Kind:        man.Spec.Kind,
		Fingerprint: man.Fingerprint,
		TotalShards: man.TotalShards,
		WorkTotal:   man.TotalWork,
	}
	done, err := readJournal(dir)
	if err != nil {
		return st, err
	}
	for _, rec := range done {
		st.DoneShards++
		st.WorkDone += recWork(rec)
	}
	if _, err := os.Stat(filepath.Join(dir, resultFile)); err == nil {
		st.Completed = true
	}
	return st, nil
}
