package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tornado/internal/graph"
)

// The result cache is content-addressed: one file per (graph, spec) pair,
// named <sha256(fingerprint + "\n" + canonical spec JSON)>.json and holding
// the marshaled Result. Writes go through atomic rename, so concurrent
// campaigns over the same cache directory at worst redo work — they never
// corrupt an entry.

// CacheKey returns the cache key a campaign over (g, spec) is stored
// under: a hex sha256 of the graph fingerprint and the normalized spec.
// Anything that changes the computed result — a rewired edge, a different
// trial budget or seed — changes the key; Workers and other Options do
// not participate.
func CacheKey(g *graph.Graph, spec Spec) string {
	return cacheKey(g.Fingerprint(), spec.normalize(g.Total))
}

// scanOrderVersion participates in the cache key so entries computed under
// a different shard scan order (and thus with different recorded failure
// sets) miss instead of being served stale. "rd1" = revolving-door order,
// introduced with manifestVersion 2; v1's lexicographic entries hashed
// without any order tag. "rd2" = shards record their lexicographically
// smallest failures instead of the first in scan order (manifestVersion 3),
// making merged Failures independent of shard layout.
const scanOrderVersion = "rd2"

// scanOrderVersionSliced tags entries computed by the bit-sliced kernel
// (Spec.Kernel "sliced"). The sliced scan walks the same revolving-door
// rank order and records identical results, but versioning it separately
// keeps the kernels' cache populations disjoint: a bug in either kernel
// can be flushed by bumping one tag without invalidating the other's
// entries, and a shard computed under one implementation is never
// attributed to the other.
const scanOrderVersionSliced = "sl1"

// scanOrderVersionSampled tags sampled-certification entries (KindSampled).
// Sampled campaigns draw from their own RNG seed domain and record
// stratified tallies rather than scan results, so their cache population
// is versioned independently of both exhaustive scan orders.
const scanOrderVersionSampled = "st1"

// orderVersion returns the scan-order tag a normalized spec's cache
// entries are hashed under.
func orderVersion(normSpec Spec) string {
	if normSpec.Kind == KindSampled {
		return scanOrderVersionSampled
	}
	if normSpec.Kernel == "sliced" {
		return scanOrderVersionSliced
	}
	return scanOrderVersion
}

func cacheKey(fingerprint string, normSpec Spec) string {
	data, err := json.Marshal(normSpec)
	if err != nil {
		// Spec is a plain struct of marshalable fields; this cannot fail.
		panic(fmt.Sprintf("campaign: marshaling spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{'\n'})
	h.Write([]byte(orderVersion(normSpec)))
	h.Write([]byte{'\n'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

func cachePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key+".json")
}

// loadCache returns the cached result for key, if present and readable. A
// corrupt entry is treated as a miss — the campaign reruns and overwrites
// it.
func loadCache(cacheDir, key string) (*Result, bool) {
	res, err := decodeResultFile(cachePath(cacheDir, key))
	if err != nil {
		return nil, false
	}
	return res, true
}

func storeCache(cacheDir, key string, res *Result) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	return writeJSONAtomic(cachePath(cacheDir, key), res)
}

func decodeResultFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("campaign: corrupt result %s: %w", path, err)
	}
	if res.Kind != KindWorstCase && res.Kind != KindProfile && res.Kind != KindSampled {
		return nil, fmt.Errorf("campaign: result %s has unknown kind %q", path, res.Kind)
	}
	return &res, nil
}
