package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tornado/internal/graph"
	"tornado/internal/obs"
	"tornado/internal/sim"
)

// testGraph builds a small cascaded graph with a known weakness: every data
// node is covered by exactly one level-1 check, so losing a data node
// together with its check is unrecoverable — the worst case is 2 lost
// nodes. 16 data + 8 + 4 checks = 28 nodes keeps exhaustive scans fast
// while still yielding multi-shard plans at small shard sizes.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(16)
	r1 := b.AddLevel(0, 16, 8)
	r2 := b.AddLevel(r1, 8, 4)
	g := b.Graph()
	for i := 0; i < 8; i++ {
		g.SetNeighbors(r1+i, []int{2 * i, 2*i + 1})
	}
	for i := 0; i < 4; i++ {
		g.SetNeighbors(r2+i, []int{r1 + 2*i, r1 + 2*i + 1})
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Name = "campaign-test"
	return g
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWorstCaseCampaignMatchesSim(t *testing.T) {
	g := testGraph(t)
	// MaxFailures large enough to record every failing set, so both the
	// campaign and sim lists are the complete sorted enumeration and can be
	// compared exactly.
	spec := Spec{Kind: KindWorstCase, MaxK: 3, MaxFailures: 100000, KeepGoing: true, ShardSize: 128}

	res, err := Run(t.TempDir(), g, spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 3, MaxFailures: 100000, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstCase == nil {
		t.Fatal("no worst-case result")
	}
	if !reflect.DeepEqual(*res.WorstCase, want) {
		t.Errorf("campaign result diverges from sim.WorstCase:\n got %+v\nwant %+v", *res.WorstCase, want)
	}
	if res.WorstCase.FirstFailure != 2 {
		t.Errorf("first failure = %d, want 2", res.WorstCase.FirstFailure)
	}
	if res.WorkDone != want.Tested {
		t.Errorf("work done = %d, want %d", res.WorkDone, want.Tested)
	}
}

func TestEarlyStopSkipsHigherCardinalities(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	spec := Spec{Kind: KindWorstCase, MaxK: 4, MaxFailures: 8, ShardSize: 128}
	res, err := Run(dir, g, spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstCase.FirstFailure != 2 || len(res.WorstCase.PerK) != 2 {
		t.Errorf("early stop: %+v", res.WorstCase)
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Completed {
		t.Error("status not completed")
	}
	if st.DoneShards >= st.TotalShards {
		t.Errorf("early stop should leave shards unrun: %d/%d", st.DoneShards, st.TotalShards)
	}
}

// TestCrashResumeBitIdentical is the crash/resume integration test: cancel
// a campaign mid-run, resume it, and require the final result to be
// bit-identical (JSON bytes) to an uninterrupted run of the same spec.
func TestCrashResumeBitIdentical(t *testing.T) {
	g := testGraph(t)
	spec := Spec{Kind: KindWorstCase, MaxK: 3, MaxFailures: 64, KeepGoing: true, ShardSize: 128}

	uninterrupted, err := Run(t.TempDir(), g, spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunCtx(ctx, dir, g, spec, Options{
		Workers: 2,
		Progress: func(st Status) {
			if st.DoneShards >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.DoneShards == 0 || st.Completed {
		t.Fatalf("expected a partial journal, got %+v", st)
	}

	var resumedShards int
	resumed, err := Resume(dir, Options{
		Workers: 4,
		Progress: func(s Status) {
			if !s.Completed {
				resumedShards = s.DoneShards
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cached {
		t.Error("resume of a partial campaign reported cached")
	}
	if got, want := marshal(t, resumed), marshal(t, uninterrupted); string(got) != string(want) {
		t.Errorf("resumed result not bit-identical:\n got %s\nwant %s", got, want)
	}
	if resumed.WorstCase.FailureCountAt(2) != uninterrupted.WorstCase.FailureCountAt(2) {
		t.Error("failure counts diverge") // redundant with the byte compare; kept for a readable failure
	}
	if resumedShards <= st.DoneShards {
		t.Errorf("resume reran journaled shards: went from %d to %d", st.DoneShards, resumedShards)
	}

	// Resuming a completed campaign is served from result.json.
	again, err := Resume(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("resume of a completed campaign did not report cached")
	}
	if got := marshal(t, again); string(got) != string(marshal(t, uninterrupted)) {
		t.Error("stored result diverges")
	}
}

func TestProfileCampaignResumeDeterministic(t *testing.T) {
	g := testGraph(t)
	spec := Spec{
		Kind: KindProfile, MinK: 1, MaxK: 5, Trials: 2000,
		ExhaustiveLimit: 500, Seed: 2006, ShardSize: 512,
	}

	uninterrupted, err := Run(t.TempDir(), g, spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := uninterrupted.Profile
	if p == nil {
		t.Fatal("no profile result")
	}
	// C(28,1)=28 and C(28,2)=378 are under the exhaustive limit.
	if !p.Exact[1] || !p.Exact[2] || p.Exact[3] {
		t.Errorf("exactness flags wrong: %v", p.Exact[:6])
	}
	if p.Fail[3].Trials != spec.Trials {
		t.Errorf("k=3 trials = %d, want %d", p.Fail[3].Trials, spec.Trials)
	}
	// The known weakness: exactly 8 of the C(28,2) pairs lose data.
	if p.Fail[2].Hits != 8 {
		t.Errorf("k=2 exact failures = %d, want 8", p.Fail[2].Hits)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunCtx(ctx, dir, g, spec, Options{
		Workers: 2,
		Progress: func(st Status) {
			if st.DoneShards >= 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	resumed, err := Resume(dir, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshal(t, resumed), marshal(t, uninterrupted); string(got) != string(want) {
		t.Errorf("resumed profile not bit-identical:\n got %s\nwant %s", got, want)
	}
}

func TestResultCache(t *testing.T) {
	g := testGraph(t)
	cache := t.TempDir()
	spec := Spec{Kind: KindWorstCase, MaxK: 2, MaxFailures: 16, ShardSize: 128}
	opts := Options{Workers: 2, CacheDir: cache}

	first, err := Run(t.TempDir(), g, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first run reported cached")
	}

	// Second run: same graph + spec, even the same directory — the cache
	// answers before the directory is touched.
	var progressed bool
	opts2 := opts
	opts2.Progress = func(Status) { progressed = true }
	second, err := Run(t.TempDir(), g, spec, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second run not served from cache")
	}
	if progressed {
		t.Error("cached run executed shards")
	}
	if got, want := marshal(t, second), marshal(t, first); string(got) != string(want) {
		t.Error("cached result diverges")
	}

	// A rewired graph must miss the cache and search again.
	rewired := g.Clone()
	rewired.RewireEdge(1, 16, 17) // move data node 1 between level-1 checks
	if CacheKey(rewired, spec) == CacheKey(g, spec) {
		t.Fatal("rewire did not change the cache key")
	}
	third, err := Run(t.TempDir(), rewired, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("rewired graph served from cache")
	}
	if third.Fingerprint == first.Fingerprint {
		t.Error("fingerprint unchanged by rewire")
	}
}

func TestRunRefusesOccupiedDir(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	spec := Spec{Kind: KindWorstCase, MaxK: 1, ShardSize: 128}
	if _, err := Run(dir, g, spec, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(dir, g, spec, Options{}); err == nil {
		t.Error("second Run into the same directory succeeded")
	}
}

func TestSpecValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Run(t.TempDir(), g, Spec{Kind: "bogus"}, Options{}); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := Run(t.TempDir(), nil, Spec{Kind: KindWorstCase}, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run("", g, Spec{Kind: KindWorstCase}, Options{}); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := Resume(t.TempDir(), Options{}); err == nil {
		t.Error("resume of an empty dir succeeded")
	}
}

func TestJournalSurvivesTruncatedTail(t *testing.T) {
	g := testGraph(t)
	spec := Spec{Kind: KindWorstCase, MaxK: 3, MaxFailures: 64, KeepGoing: true, ShardSize: 128}

	uninterrupted, err := Run(t.TempDir(), g, spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunCtx(ctx, dir, g, spec, Options{
		Workers: 2,
		Progress: func(st Status) {
			if st.DoneShards >= 4 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the journal mid-line.
	jp := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Resume(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshal(t, resumed), marshal(t, uninterrupted); string(got) != string(want) {
		t.Error("resume after truncated journal diverges")
	}
}

func TestProgressMetrics(t *testing.T) {
	g := testGraph(t)
	reg := obs.NewRegistry()
	spec := Spec{Kind: KindWorstCase, MaxK: 3, MaxFailures: 8, KeepGoing: true, ShardSize: 128}
	if _, err := Run(t.TempDir(), g, spec, Options{Workers: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	total := reg.Gauge(MetricShardsTotal).Value()
	done := reg.Gauge(MetricShardsDone).Value()
	if total == 0 || done != total {
		t.Errorf("shard gauges: done=%d total=%d", done, total)
	}
	if reg.Gauge(MetricWorkPerSec).Value() <= 0 {
		t.Errorf("work rate gauge not set")
	}
	if reg.Gauge(MetricETASeconds).Value() != 0 {
		t.Errorf("ETA nonzero after completion: %d", reg.Gauge(MetricETASeconds).Value())
	}
}

// TestSlicedCampaignMatchesScalar runs the same worst-case spec under both
// kernels and requires identical WorstCase payloads: the sliced scan is a
// drop-in evaluation strategy, not a different experiment.
func TestSlicedCampaignMatchesScalar(t *testing.T) {
	g := testGraph(t)
	base := Spec{Kind: KindWorstCase, MaxK: 3, MaxFailures: 64, KeepGoing: true, ShardSize: 128}
	scalar, err := Run(t.TempDir(), g, base, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sliced := base
	sliced.Kernel = "sliced"
	got, err := Run(t.TempDir(), g, sliced, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.WorstCase, scalar.WorstCase) {
		t.Errorf("sliced campaign diverges from scalar:\n got %+v\nwant %+v", got.WorstCase, scalar.WorstCase)
	}
}

// TestSlicedCrashResumeBitIdentical kills a sliced-kernel campaign mid-run
// and resumes it; the result must match an uninterrupted sliced run byte
// for byte, proving shard journaling and the content-addressed cache work
// unchanged under the sliced scan order version.
func TestSlicedCrashResumeBitIdentical(t *testing.T) {
	g := testGraph(t)
	spec := Spec{Kind: KindWorstCase, MaxK: 3, MaxFailures: 64, KeepGoing: true, ShardSize: 128, Kernel: "sliced"}

	uninterrupted, err := Run(t.TempDir(), g, spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunCtx(ctx, dir, g, spec, Options{
		Workers: 2,
		Progress: func(st Status) {
			if st.DoneShards >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	resumed, err := Resume(dir, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshal(t, resumed), marshal(t, uninterrupted); string(got) != string(want) {
		t.Errorf("resumed sliced result not bit-identical:\n got %s\nwant %s", got, want)
	}
}

// TestKernelCacheKeySeparation pins the cache-identity rules around
// Spec.Kernel: "scalar" normalizes into the zero kernel (same key, same
// cache population as every pre-kernel-field campaign), while "sliced"
// hashes under its own scan order version and can never collide with
// scalar entries.
func TestKernelCacheKeySeparation(t *testing.T) {
	g := testGraph(t)
	base := Spec{Kind: KindWorstCase, MaxK: 3}

	alias := base
	alias.Kernel = "scalar"
	if CacheKey(g, base) != CacheKey(g, alias) {
		t.Error(`Kernel "scalar" must share the default kernel's cache key`)
	}

	sliced := base
	sliced.Kernel = "sliced"
	if CacheKey(g, base) == CacheKey(g, sliced) {
		t.Error("sliced campaigns must not share scalar cache entries")
	}
	if orderVersion(base.normalize(g.Total)) != scanOrderVersion {
		t.Errorf("scalar order version = %q", orderVersion(base.normalize(g.Total)))
	}
	if orderVersion(sliced.normalize(g.Total)) != scanOrderVersionSliced {
		t.Errorf("sliced order version = %q", orderVersion(sliced.normalize(g.Total)))
	}

	// A cached scalar result must be served back to the scalar spec and
	// missed by the sliced spec even with an otherwise identical workload.
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	first, err := Run(filepath.Join(dir, "a"), g, base, Options{Workers: 2, CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first run reported cached")
	}
	hit, err := Run(filepath.Join(dir, "b"), g, alias, Options{Workers: 2, CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error(`"scalar" alias missed the cache`)
	}
	miss, err := Run(filepath.Join(dir, "c"), g, sliced, Options{Workers: 2, CacheDir: cache})
	if err != nil {
		t.Fatal(err)
	}
	if miss.Cached {
		t.Error("sliced run was served a scalar cache entry")
	}
}

// TestSpecKernelValidation rejects unknown kernels before any work runs.
func TestSpecKernelValidation(t *testing.T) {
	g := testGraph(t)
	spec := Spec{Kind: KindWorstCase, MaxK: 2, Kernel: "simd"}
	if _, err := Run(t.TempDir(), g, spec, Options{}); err == nil {
		t.Fatal(`Kernel "simd" accepted`)
	}
	// Profile campaigns zero the kernel field: it selects a scan kernel
	// and scans only happen under KindWorstCase.
	prof := Spec{Kind: KindProfile, MaxK: 3, Trials: 100, Kernel: "sliced"}
	if prof.normalize(g.Total).Kernel != "" {
		t.Error("profile spec kept a scan kernel")
	}
}
