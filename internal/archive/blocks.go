package archive

import (
	"context"
	"fmt"

	"tornado/internal/repairbw"
)

// Stat returns an object's metadata.
func (s *Store) Stat(name string) (Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[name]
	if !ok {
		return Object{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return *obj, nil
}

// StripeLayout describes how objects are striped for block-level access.
type StripeLayout struct {
	BlockSize      int
	StripeCapacity int // payload bytes per stripe
	NodesPerStripe int // blocks per stripe (one per graph node)
	DataNodes      int
}

// Layout returns the store's striping parameters.
func (s *Store) Layout() StripeLayout {
	return StripeLayout{
		BlockSize:      s.cfg.BlockSize,
		StripeCapacity: s.codec.Capacity(),
		NodesPerStripe: s.g.Total,
		DataNodes:      s.g.Data,
	}
}

// ReadBlock returns one checksum-verified block of an object's stripe —
// the block-level interface the federated stewarding system uses to
// exchange blocks between sites (§5.3). Corrupt blocks report ErrNotFound
// (to a remote peer, a rotted block and a missing block are the same).
func (s *Store) ReadBlock(name string, stripe, node int) ([]byte, error) {
	return s.ReadBlockCtx(context.Background(), name, stripe, node)
}

// ReadBlockCtx is ReadBlock with cancellation plumbed through to the
// backend read and its retry backoff.
func (s *Store) ReadBlockCtx(ctx context.Context, name string, stripe, node int) ([]byte, error) {
	obj, err := s.Stat(name)
	if err != nil {
		return nil, err
	}
	if stripe < 0 || stripe >= obj.Stripes || node < 0 || node >= s.g.Total {
		return nil, fmt.Errorf("%w: %q stripe %d node %d", ErrNotFound, name, stripe, node)
	}
	key := blockKey(name, stripe, node)
	if !s.backend.Available(s.dev(node), key) {
		return nil, fmt.Errorf("%w: %q stripe %d node %d", ErrNotFound, name, stripe, node)
	}
	framed, err := s.readFramed(ctx, node, key, nil)
	if err != nil {
		if errIsCtx(err) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %q stripe %d node %d", ErrNotFound, name, stripe, node)
	}
	// Block-level reads exist only for the federated exchange, so the whole
	// frame is federation repair traffic.
	s.meter.Record(repairbw.Federation, repairbw.CostReport{BlocksRead: 1, BytesRead: int64(len(framed))})
	// The payload crosses an ownership boundary (HTTP response body, peer
	// exchange buffers), so take an independent copy rather than the alias
	// unframeBlock returns.
	b, ok := unframeBlockCopy(framed)
	if !ok {
		s.noteCorrupt(node)
		return nil, fmt.Errorf("%w: %q stripe %d node %d (checksum)", ErrNotFound, name, stripe, node)
	}
	return b, nil
}

// WriteBlock stores one block of an object's stripe, framed with its
// checksum. It is the restore path of the federated exchange: a recovered
// block is written back to its home device.
func (s *Store) WriteBlock(name string, stripe, node int, payload []byte) error {
	return s.WriteBlockCtx(context.Background(), name, stripe, node, payload)
}

// WriteBlockCtx is WriteBlock with cancellation plumbed through to the
// backend write and its retry backoff.
func (s *Store) WriteBlockCtx(ctx context.Context, name string, stripe, node int, payload []byte) error {
	obj, err := s.Stat(name)
	if err != nil {
		return err
	}
	if stripe < 0 || stripe >= obj.Stripes || node < 0 || node >= s.g.Total {
		return fmt.Errorf("archive: block out of range: %q stripe %d node %d", name, stripe, node)
	}
	if len(payload) != s.cfg.BlockSize {
		return fmt.Errorf("archive: block size %d, want %d", len(payload), s.cfg.BlockSize)
	}
	if err := s.writeFramed(ctx, node, blockKey(name, stripe, node), payload); err != nil {
		return err
	}
	s.meter.Record(repairbw.Federation, repairbw.CostReport{BlocksWritten: 1, BytesWritten: s.frameSize()})
	return nil
}

// PutShell registers an object's metadata without writing any blocks —
// used when a replica site receives blocks out of band (federated
// replication streams blocks, not whole objects).
func (s *Store) PutShell(name string, size, stripes int) error {
	if size < 0 || stripes < 1 {
		return fmt.Errorf("archive: invalid shell %q (size %d, stripes %d)", name, size, stripes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	s.objects[name] = &Object{Name: name, Size: size, Stripes: stripes}
	return nil
}
