// Package archive is the prototype archival storage system the paper works
// toward (§2.2, §6): a transactional object store ("complete files or
// objects are uploaded or downloaded") that stripes every object across one
// simulated device per graph node, protects it with a profiled Tornado Code
// graph, reconstructs around failed devices on read, and proactively scrubs
// stripes — "a stripe reliability assurance and user introspection
// mechanism to proactively monitor the status of distributed encoded
// stripes and reconstruct missing blocks before a stripe approaches the
// initial failure point".
//
// The data path is self-healing: transient backend errors are retried with
// bounded backoff, blocks reconstructed during a Get are written back to
// their home nodes (read-repair), and nodes that repeatedly serve corrupt
// frames are quarantined — excluded from retrieval planning and surfaced in
// scrub reports until an operator replaces the device and clears them.
package archive

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"tornado/internal/codec"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/obs"
	"tornado/internal/retrieval"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("archive: object not found")
	ErrExists   = errors.New("archive: object already exists")
	// ErrDataLoss wraps codec.ErrUnrecoverable with object context.
	ErrDataLoss = errors.New("archive: object unrecoverable")
	// ErrDegraded is returned by Put when more block writes failed than
	// Config.MaxPutFailures tolerates: the object would be born below its
	// durability floor, so the write is refused and rolled back instead of
	// silently storing a stripe that is already near its failure point.
	ErrDegraded = errors.New("archive: store too degraded to write")
	// ErrTransient marks a backend fault that may succeed on retry (an
	// injected chaos fault, a flapping network path). Backends wrap
	// transient errors with it; the store's bounded retry only re-attempts
	// errors matching it — a permanently failed device is treated as a
	// missing block immediately.
	ErrTransient = errors.New("archive: transient backend error")
)

// Object describes a stored object.
type Object struct {
	Name    string
	Size    int
	Stripes int
}

// GetStats reports the retrieval work of one Get.
type GetStats struct {
	DevicesAccessed int // distinct devices read
	BlocksRead      int
	BlocksRepaired  int // blocks reconstructed rather than read
	CorruptBlocks   int // blocks failing their checksum (treated as erased)
	ReadRepairs     int // reconstructed blocks written back to their home node
	Retries         int // transient backend errors retried
}

// Config tunes a Store.
type Config struct {
	// BlockSize is the stripe block size in bytes. Default 4096.
	BlockSize int
	// FirstFailure is the graph's measured worst-case failure point (from
	// the exhaustive search); Scrub uses it to report each stripe's margin
	// to the initial failure point. Zero disables margin reporting.
	FirstFailure int
	// NaiveRetrieval disables the guided minimal-block retrieval plan
	// (§5.2/§6 optimization) and reads every reachable block on Get.
	NaiveRetrieval bool
	// Retries is how many extra attempts a transient backend error
	// (ErrTransient) earns before the block is treated as missing.
	// 0 means the default (2); negative disables retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling on each
	// further attempt. Zero means no sleep (in-memory backends, tests).
	RetryBackoff time.Duration
	// QuarantineThreshold is how many corrupt frames one node may serve
	// before the store quarantines it: Get planning and read-repair stop
	// relying on it. Scrub still reads and repairs it, and readmits it
	// after a pass in which it served only verified frames (ClearQuarantine
	// readmits immediately). 0 means the default (3); negative disables
	// quarantine.
	QuarantineThreshold int
	// DisableReadRepair turns off the write-back of blocks reconstructed
	// during Get; repair then happens only in Scrub.
	DisableReadRepair bool
	// MaxPutFailures is how many failed block writes Put tolerates per
	// stripe before refusing the object with ErrDegraded and rolling back
	// what it wrote. 0 means unlimited (parity and scrub absorb every
	// failure — the seed behaviour); negative refuses on any failure.
	MaxPutFailures int
	// Metrics receives the store's self-healing and scrub counters. Nil
	// gets a private registry (still readable via Store.Metrics).
	Metrics *obs.Registry
}

// Store is the archival object store. It is safe for concurrent use.
type Store struct {
	g       *graph.Graph
	codec   *codec.Codec
	backend Backend
	devices device.Array // non-nil only for array-backed stores
	cfg     Config

	mu      sync.Mutex
	objects map[string]*Object

	// Quarantine bookkeeping: per-node corrupt-frame counts and the
	// quarantined flag, guarded separately from the object map so scrub
	// detection never contends with metadata lookups.
	healMu       sync.Mutex
	corruptCount []int
	quarantined  []bool

	metrics *obs.Registry
	// Cached metric handles (get-or-create takes the registry mutex; the
	// read path should not).
	mCorruptDetected *obs.Counter
	mReadRetries     *obs.Counter
	mWriteRetries    *obs.Counter
	mReadRepairs     *obs.Counter
	mQuarEvents      *obs.Counter
	mQuarReadmits    *obs.Counter
	gQuarNodes       *obs.Gauge
	mScrubPasses     *obs.Counter
	mScrubRepaired   *obs.Counter
	mScrubCorrupt    *obs.Counter
	mScrubUnrecov    *obs.Counter
}

// New builds a store over one always-on device per graph node.
func New(g *graph.Graph, devices device.Array, cfg Config) (*Store, error) {
	if len(devices) != g.Total {
		return nil, fmt.Errorf("archive: %d devices for a %d-node graph", len(devices), g.Total)
	}
	s, err := NewWithBackend(g, NewArrayBackend(devices), cfg)
	if err != nil {
		return nil, err
	}
	s.devices = devices
	return s, nil
}

// NewWithBackend builds a store over an arbitrary Backend (e.g. a MAID
// shelf, or a chaos-injecting wrapper around either).
func NewWithBackend(g *graph.Graph, backend Backend, cfg Config) (*Store, error) {
	if backend.Nodes() != g.Total {
		return nil, fmt.Errorf("archive: %d devices for a %d-node graph", backend.Nodes(), g.Total)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	c, err := codec.New(g, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		g:            g,
		codec:        c,
		backend:      backend,
		cfg:          cfg,
		objects:      map[string]*Object{},
		corruptCount: make([]int, g.Total),
		quarantined:  make([]bool, g.Total),
		metrics:      reg,
	}
	s.mCorruptDetected = reg.Counter("archive.detected.corrupt_frames")
	s.mReadRetries = reg.Counter("archive.read.retries")
	s.mWriteRetries = reg.Counter("archive.write.retries")
	s.mReadRepairs = reg.Counter("archive.read_repair.blocks")
	s.mQuarEvents = reg.Counter("archive.quarantine.events")
	s.mQuarReadmits = reg.Counter("archive.quarantine.readmitted")
	s.gQuarNodes = reg.Gauge("archive.quarantine.nodes")
	s.mScrubPasses = reg.Counter("archive.scrub.passes")
	s.mScrubRepaired = reg.Counter("archive.scrub.blocks_repaired")
	s.mScrubCorrupt = reg.Counter("archive.scrub.corrupt_frames")
	s.mScrubUnrecov = reg.Counter("archive.scrub.unrecoverable_stripes")
	return s, nil
}

// Graph returns the store's erasure graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// Devices returns the store's device array when it was built with New, or
// nil for custom backends.
func (s *Store) Devices() device.Array { return s.devices }

// Metrics returns the store's metric registry: self-healing counters
// (archive.detected.corrupt_frames, archive.read_repair.blocks,
// archive.read.retries, archive.quarantine.*) and scrub outcomes
// (archive.scrub.*).
func (s *Store) Metrics() *obs.Registry { return s.metrics }

// retries resolves the transient-retry budget: Config.Retries, defaulting
// to 2 extra attempts, with negative meaning none.
func (s *Store) retries() int {
	switch {
	case s.cfg.Retries < 0:
		return 0
	case s.cfg.Retries == 0:
		return 2
	default:
		return s.cfg.Retries
	}
}

// putFailureLimit resolves Config.MaxPutFailures: -1 means unlimited
// (the zero-value default), otherwise the per-stripe tolerance.
func (s *Store) putFailureLimit() int {
	switch {
	case s.cfg.MaxPutFailures < 0:
		return 0
	case s.cfg.MaxPutFailures == 0:
		return -1 // unlimited
	default:
		return s.cfg.MaxPutFailures
	}
}

// discardBlocks best-effort deletes the first `stripes` stripes of an
// object — the rollback half of a refused Put. Going through the backend
// (not just the metadata map) matters: a torn write may have silently
// persisted a corrupt prefix that no scrub would ever visit again.
func (s *Store) discardBlocks(name string, stripes int) {
	for st := 0; st < stripes; st++ {
		for node := 0; node < s.g.Total; node++ {
			_ = s.backend.Delete(node, blockKey(name, st, node))
		}
	}
}

// quarantineThreshold resolves Config.QuarantineThreshold: default 3,
// negative disables.
func (s *Store) quarantineThreshold() int {
	switch {
	case s.cfg.QuarantineThreshold < 0:
		return 0 // disabled
	case s.cfg.QuarantineThreshold == 0:
		return 3
	default:
		return s.cfg.QuarantineThreshold
	}
}

// isQuarantined reports whether node is excluded from the data path.
func (s *Store) isQuarantined(node int) bool {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	return s.quarantined[node]
}

// Quarantined returns the currently quarantined nodes in ascending order.
func (s *Store) Quarantined() []int {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	var out []int
	for node, q := range s.quarantined {
		if q {
			out = append(out, node)
		}
	}
	return out
}

// ClearQuarantine readmits a node to the data path and resets its corruption
// count — the operator action after replacing or vetting the device. The
// next repair scrub repopulates its blocks.
func (s *Store) ClearQuarantine(node int) {
	if node < 0 || node >= s.g.Total {
		return
	}
	s.healMu.Lock()
	s.corruptCount[node] = 0
	if s.quarantined[node] {
		s.quarantined[node] = false
	}
	n := 0
	for _, q := range s.quarantined {
		if q {
			n++
		}
	}
	s.healMu.Unlock()
	s.gQuarNodes.Set(int64(n))
}

// noteCorrupt records one detected corrupt frame from node: it feeds the
// detection counter (the chaos soak asserts detected == injected against
// it) and the per-node quarantine bookkeeping.
func (s *Store) noteCorrupt(node int) {
	s.mCorruptDetected.Inc()
	thr := s.quarantineThreshold()
	if thr == 0 {
		return
	}
	s.healMu.Lock()
	s.corruptCount[node]++
	newlyQuarantined := !s.quarantined[node] && s.corruptCount[node] >= thr
	if newlyQuarantined {
		s.quarantined[node] = true
	}
	n := 0
	for _, q := range s.quarantined {
		if q {
			n++
		}
	}
	s.healMu.Unlock()
	if newlyQuarantined {
		s.mQuarEvents.Inc()
		s.gQuarNodes.Set(int64(n))
	}
}

// scrubPass accumulates one scrub pass's per-node evidence: how many frames
// the node served that verified, and how many failed their checksum.
type scrubPass struct {
	clean   []int
	corrupt []int
}

// noteScrubPass applies a completed scrub pass's verdict to the quarantine
// bookkeeping. A node that served at least one verified frame and zero
// corrupt ones over the whole pass has proven itself healthy: its corruption
// count resets and, if it was quarantined, it is readmitted to the data
// path. Nodes that served corrupt frames — or nothing at all (failed or
// unreachable devices earn no credit) — keep their record.
func (s *Store) noteScrubPass(pass scrubPass) {
	readmitted := 0
	s.healMu.Lock()
	for node := range s.corruptCount {
		if pass.corrupt[node] > 0 || pass.clean[node] == 0 {
			continue
		}
		s.corruptCount[node] = 0
		if s.quarantined[node] {
			s.quarantined[node] = false
			readmitted++
		}
	}
	n := 0
	for _, q := range s.quarantined {
		if q {
			n++
		}
	}
	s.healMu.Unlock()
	if readmitted > 0 {
		s.mQuarReadmits.Add(int64(readmitted))
	}
	s.gQuarNodes.Set(int64(n))
}

// readFramed reads a framed block, retrying transient backend errors with
// bounded exponential backoff. Any other error (failed device, missing
// block) returns immediately — the caller treats the block as an erasure.
func (s *Store) readFramed(node int, key string, stats *GetStats) ([]byte, error) {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		framed, err := s.backend.Read(node, key)
		if err == nil || !errors.Is(err, ErrTransient) {
			return framed, err
		}
		if attempt >= s.retries() {
			return nil, err
		}
		s.mReadRetries.Inc()
		if stats != nil {
			stats.Retries++
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// writeFramed frames and writes a payload, retrying transient errors with
// the same bounded backoff as reads. frameBlock copies the payload, so
// callers may pass buffers that alias read frames (see unframeBlock).
func (s *Store) writeFramed(node int, key string, payload []byte) error {
	framed := frameBlock(payload)
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := s.backend.Write(node, key, framed)
		if err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
		if attempt >= s.retries() {
			return err
		}
		s.mWriteRetries.Inc()
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// planCost prices node reads for retrieval planning, forbidding quarantined
// nodes (their data cannot be trusted even when the device answers).
func (s *Store) planCost(node int) float64 {
	if s.isQuarantined(node) {
		return math.Inf(1)
	}
	return s.backend.Cost(node)
}

func blockKey(name string, stripe, node int) string {
	return fmt.Sprintf("%s/%d/%d", name, stripe, node)
}

// Put encodes and stores an object. The transactional archival interface
// takes whole objects; there are no partial updates (paper §2.2). Devices
// that are unavailable at write time simply miss their block — exactly the
// redundancy the code is there to absorb.
func (s *Store) Put(name string, data []byte) error {
	s.mu.Lock()
	if _, ok := s.objects[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	// Reserve the name while encoding.
	obj := &Object{Name: name, Size: len(data)}
	s.objects[name] = obj
	s.mu.Unlock()

	cap := s.codec.Capacity()
	stripes := (len(data) + cap - 1) / cap
	if stripes == 0 {
		stripes = 1
	}
	for st := 0; st < stripes; st++ {
		lo := st * cap
		hi := min(lo+cap, len(data))
		blocks, err := s.codec.Encode(data[lo:hi])
		if err != nil {
			s.deleteObject(name)
			return err
		}
		failed := 0
		for node, b := range blocks {
			// Unavailable devices lose their block; the stripe's parity
			// absorbs it. Blocks are stored framed with a CRC-32C so bit
			// rot is detected on read; transient write faults are retried.
			if err := s.writeFramed(node, blockKey(name, st, node), b); err != nil {
				failed++
			}
		}
		if lim := s.putFailureLimit(); lim >= 0 && failed > lim {
			s.discardBlocks(name, st+1)
			s.deleteObject(name)
			return fmt.Errorf("%w: %q stripe %d lost %d of %d block writes",
				ErrDegraded, name, st, failed, len(blocks))
		}
	}
	s.mu.Lock()
	obj.Stripes = stripes
	s.mu.Unlock()
	return nil
}

// Get retrieves an object, reconstructing around unavailable devices.
func (s *Store) Get(name string) ([]byte, GetStats, error) {
	s.mu.Lock()
	obj, ok := s.objects[name]
	var size, stripes int
	if ok {
		size, stripes = obj.Size, obj.Stripes
	}
	s.mu.Unlock()
	var stats GetStats
	if !ok || (stripes == 0 && size > 0) {
		// Unknown, or a Put still in flight (stripes not finalized).
		return nil, stats, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	out := make([]byte, 0, size)
	cap := s.codec.Capacity()
	touched := map[int]bool{}
	for st := 0; st < stripes; st++ {
		want := size - st*cap
		if want > cap {
			want = cap
		}
		payload, err := s.getStripe(name, st, want, touched, &stats)
		if err != nil {
			return nil, stats, err
		}
		out = append(out, payload...)
	}
	stats.DevicesAccessed = len(touched)
	return out, stats, nil
}

func (s *Store) getStripe(name string, st, payloadLen int, touched map[int]bool, stats *GetStats) ([]byte, error) {
	avail := make([]bool, s.g.Total)
	for node := range avail {
		avail[node] = !s.isQuarantined(node) && s.backend.Available(node, blockKey(name, st, node))
	}

	var toRead []int
	if !s.cfg.NaiveRetrieval {
		plan, _, err := retrieval.Plan(s.g, avail, s.planCost)
		if err != nil {
			return nil, fmt.Errorf("%w: %q stripe %d: %v", ErrDataLoss, name, st, err)
		}
		toRead = plan
	} else {
		for node, ok := range avail {
			if ok {
				toRead = append(toRead, node)
			}
		}
	}

	blocks := make([][]byte, s.g.Total)
	// corrupt marks frames that failed their checksum during this read, so
	// the fallback pass never re-reads (and never double-counts) them.
	corrupt := make([]bool, s.g.Total)
	readInto := func(node int) {
		framed, err := s.readFramed(node, blockKey(name, st, node), stats)
		if err != nil {
			return // raced with a failure; the decoder will cope or report
		}
		touched[node] = true
		stats.BlocksRead++
		// unframeBlock's payload aliases framed; the alias lives only in
		// blocks[node], which is read (never mutated) by the codec and
		// copied by frameBlock before any write-back.
		b, ok := unframeBlock(framed)
		if !ok {
			stats.CorruptBlocks++ // bit rot: treat as an erasure
			corrupt[node] = true
			s.noteCorrupt(node)
			return
		}
		blocks[node] = b
	}
	for _, node := range toRead {
		readInto(node)
	}
	payload, err := s.codec.Decode(blocks, payloadLen)
	if errors.Is(err, codec.ErrUnrecoverable) && !s.cfg.NaiveRetrieval {
		// The plan raced with failures; fall back to everything reachable
		// that has not already been read or detected corrupt.
		for node, ok := range avail {
			if ok && blocks[node] == nil && !corrupt[node] {
				readInto(node)
			}
		}
		payload, err = s.codec.Decode(blocks, payloadLen)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %q stripe %d: %v", ErrDataLoss, name, st, err)
	}
	for node := 0; node < s.g.Data; node++ {
		if !avail[node] {
			stats.BlocksRepaired++
		}
	}
	if !s.cfg.DisableReadRepair {
		s.readRepairStripe(name, st, blocks, avail, corrupt, stats)
	}
	return payload, nil
}

// readRepairStripe writes blocks reconstructed during a read back to their
// home nodes, so a Get heals the damage it discovers instead of deferring
// to the next scrub: a corrupt frame is overwritten in place, and a node
// that lost its block (e.g. a replaced blank drive) is repopulated.
// Codec.Decode repaired blocks in place, so every recoverable block is
// present. Unreachable and quarantined nodes are skipped; write errors are
// ignored (the next scrub retries).
func (s *Store) readRepairStripe(name string, st int, blocks [][]byte, avail, corrupt []bool, stats *GetStats) {
	for node := range blocks {
		if blocks[node] == nil || (avail[node] && !corrupt[node]) {
			continue // nothing reconstructed, or the stored frame is fine
		}
		if s.isQuarantined(node) || math.IsInf(s.backend.Cost(node), 1) {
			continue
		}
		// writeFramed copies blocks[node] (which may alias a read frame)
		// into a fresh framed buffer before the backend sees it.
		if err := s.writeFramed(node, blockKey(name, st, node), blocks[node]); err == nil {
			s.mReadRepairs.Inc()
			if stats != nil {
				stats.ReadRepairs++
			}
		}
	}
}

// Delete removes an object and its blocks from all reachable devices.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	obj, ok := s.objects[name]
	var stripes int
	if ok {
		stripes = obj.Stripes
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for st := 0; st < stripes; st++ {
		for node := 0; node < s.g.Total; node++ {
			_ = s.backend.Delete(node, blockKey(name, st, node))
		}
	}
	s.deleteObject(name)
	return nil
}

func (s *Store) deleteObject(name string) {
	s.mu.Lock()
	delete(s.objects, name)
	s.mu.Unlock()
}

// List returns the stored objects sorted by name.
func (s *Store) List() []Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
