// Package archive is the prototype archival storage system the paper works
// toward (§2.2, §6): a transactional object store ("complete files or
// objects are uploaded or downloaded") that stripes every object across one
// simulated device per graph node, protects it with a profiled Tornado Code
// graph, reconstructs around failed devices on read, and proactively scrubs
// stripes — "a stripe reliability assurance and user introspection
// mechanism to proactively monitor the status of distributed encoded
// stripes and reconstruct missing blocks before a stripe approaches the
// initial failure point".
package archive

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tornado/internal/codec"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/retrieval"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("archive: object not found")
	ErrExists   = errors.New("archive: object already exists")
	// ErrDataLoss wraps codec.ErrUnrecoverable with object context.
	ErrDataLoss = errors.New("archive: object unrecoverable")
)

// Object describes a stored object.
type Object struct {
	Name    string
	Size    int
	Stripes int
}

// GetStats reports the retrieval work of one Get.
type GetStats struct {
	DevicesAccessed int // distinct devices read
	BlocksRead      int
	BlocksRepaired  int // blocks reconstructed rather than read
	CorruptBlocks   int // blocks failing their checksum (treated as erased)
}

// Config tunes a Store.
type Config struct {
	// BlockSize is the stripe block size in bytes. Default 4096.
	BlockSize int
	// FirstFailure is the graph's measured worst-case failure point (from
	// the exhaustive search); Scrub uses it to report each stripe's margin
	// to the initial failure point. Zero disables margin reporting.
	FirstFailure int
	// NaiveRetrieval disables the guided minimal-block retrieval plan
	// (§5.2/§6 optimization) and reads every reachable block on Get.
	NaiveRetrieval bool
}

// Store is the archival object store. It is safe for concurrent use.
type Store struct {
	g       *graph.Graph
	codec   *codec.Codec
	backend Backend
	devices device.Array // non-nil only for array-backed stores
	cfg     Config

	mu      sync.Mutex
	objects map[string]*Object
}

// New builds a store over one always-on device per graph node.
func New(g *graph.Graph, devices device.Array, cfg Config) (*Store, error) {
	if len(devices) != g.Total {
		return nil, fmt.Errorf("archive: %d devices for a %d-node graph", len(devices), g.Total)
	}
	s, err := NewWithBackend(g, NewArrayBackend(devices), cfg)
	if err != nil {
		return nil, err
	}
	s.devices = devices
	return s, nil
}

// NewWithBackend builds a store over an arbitrary Backend (e.g. a MAID
// shelf).
func NewWithBackend(g *graph.Graph, backend Backend, cfg Config) (*Store, error) {
	if backend.Nodes() != g.Total {
		return nil, fmt.Errorf("archive: %d devices for a %d-node graph", backend.Nodes(), g.Total)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	c, err := codec.New(g, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	return &Store{
		g:       g,
		codec:   c,
		backend: backend,
		cfg:     cfg,
		objects: map[string]*Object{},
	}, nil
}

// Graph returns the store's erasure graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// Devices returns the store's device array when it was built with New, or
// nil for custom backends.
func (s *Store) Devices() device.Array { return s.devices }

func blockKey(name string, stripe, node int) string {
	return fmt.Sprintf("%s/%d/%d", name, stripe, node)
}

// Put encodes and stores an object. The transactional archival interface
// takes whole objects; there are no partial updates (paper §2.2). Devices
// that are unavailable at write time simply miss their block — exactly the
// redundancy the code is there to absorb.
func (s *Store) Put(name string, data []byte) error {
	s.mu.Lock()
	if _, ok := s.objects[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	// Reserve the name while encoding.
	obj := &Object{Name: name, Size: len(data)}
	s.objects[name] = obj
	s.mu.Unlock()

	cap := s.codec.Capacity()
	stripes := (len(data) + cap - 1) / cap
	if stripes == 0 {
		stripes = 1
	}
	for st := 0; st < stripes; st++ {
		lo := st * cap
		hi := min(lo+cap, len(data))
		blocks, err := s.codec.Encode(data[lo:hi])
		if err != nil {
			s.deleteObject(name)
			return err
		}
		for node, b := range blocks {
			// Unavailable devices lose their block; the stripe's parity
			// absorbs it. Blocks are stored framed with a CRC-32C so bit
			// rot is detected on read.
			_ = s.backend.Write(node, blockKey(name, st, node), frameBlock(b))
		}
	}
	s.mu.Lock()
	obj.Stripes = stripes
	s.mu.Unlock()
	return nil
}

// Get retrieves an object, reconstructing around unavailable devices.
func (s *Store) Get(name string) ([]byte, GetStats, error) {
	s.mu.Lock()
	obj, ok := s.objects[name]
	var size, stripes int
	if ok {
		size, stripes = obj.Size, obj.Stripes
	}
	s.mu.Unlock()
	var stats GetStats
	if !ok || (stripes == 0 && size > 0) {
		// Unknown, or a Put still in flight (stripes not finalized).
		return nil, stats, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	out := make([]byte, 0, size)
	cap := s.codec.Capacity()
	touched := map[int]bool{}
	for st := 0; st < stripes; st++ {
		want := size - st*cap
		if want > cap {
			want = cap
		}
		payload, err := s.getStripe(name, st, want, touched, &stats)
		if err != nil {
			return nil, stats, err
		}
		out = append(out, payload...)
	}
	stats.DevicesAccessed = len(touched)
	return out, stats, nil
}

func (s *Store) getStripe(name string, st, payloadLen int, touched map[int]bool, stats *GetStats) ([]byte, error) {
	avail := make([]bool, s.g.Total)
	for node := range avail {
		avail[node] = s.backend.Available(node, blockKey(name, st, node))
	}

	var toRead []int
	if !s.cfg.NaiveRetrieval {
		plan, _, err := retrieval.Plan(s.g, avail, s.backend.Cost)
		if err != nil {
			return nil, fmt.Errorf("%w: %q stripe %d: %v", ErrDataLoss, name, st, err)
		}
		toRead = plan
	} else {
		for node, ok := range avail {
			if ok {
				toRead = append(toRead, node)
			}
		}
	}

	blocks := make([][]byte, s.g.Total)
	for _, node := range toRead {
		framed, err := s.backend.Read(node, blockKey(name, st, node))
		if err != nil {
			continue // raced with a failure; the decoder will cope or report
		}
		touched[node] = true
		stats.BlocksRead++
		b, ok := unframeBlock(framed)
		if !ok {
			stats.CorruptBlocks++ // bit rot: treat as an erasure
			continue
		}
		blocks[node] = b
	}
	payload, err := s.codec.Decode(blocks, payloadLen)
	if errors.Is(err, codec.ErrUnrecoverable) && !s.cfg.NaiveRetrieval {
		// The plan raced with failures; fall back to everything reachable.
		for node, ok := range avail {
			if ok && blocks[node] == nil {
				framed, rerr := s.backend.Read(node, blockKey(name, st, node))
				if rerr != nil {
					continue
				}
				touched[node] = true
				stats.BlocksRead++
				if b, fok := unframeBlock(framed); fok {
					blocks[node] = b
				} else {
					stats.CorruptBlocks++
				}
			}
		}
		payload, err = s.codec.Decode(blocks, payloadLen)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %q stripe %d: %v", ErrDataLoss, name, st, err)
	}
	for node := 0; node < s.g.Data; node++ {
		if !avail[node] {
			stats.BlocksRepaired++
		}
	}
	return payload, nil
}

// Delete removes an object and its blocks from all reachable devices.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	obj, ok := s.objects[name]
	var stripes int
	if ok {
		stripes = obj.Stripes
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for st := 0; st < stripes; st++ {
		for node := 0; node < s.g.Total; node++ {
			_ = s.backend.Delete(node, blockKey(name, st, node))
		}
	}
	s.deleteObject(name)
	return nil
}

func (s *Store) deleteObject(name string) {
	s.mu.Lock()
	delete(s.objects, name)
	s.mu.Unlock()
}

// List returns the stored objects sorted by name.
func (s *Store) List() []Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
