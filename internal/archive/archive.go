// Package archive is the prototype archival storage system the paper works
// toward (§2.2, §6): a transactional object store ("complete files or
// objects are uploaded or downloaded") that stripes every object across one
// simulated device per graph node, protects it with a profiled Tornado Code
// graph, reconstructs around failed devices on read, and proactively scrubs
// stripes — "a stripe reliability assurance and user introspection
// mechanism to proactively monitor the status of distributed encoded
// stripes and reconstruct missing blocks before a stripe approaches the
// initial failure point".
//
// The data path is self-healing: transient backend errors are retried with
// bounded backoff, blocks reconstructed during a Get are written back to
// their home nodes (read-repair), and nodes that repeatedly serve corrupt
// frames are quarantined — excluded from retrieval planning and surfaced in
// scrub reports until an operator replaces the device and clears them.
package archive

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"tornado/internal/codec"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/obs"
	"tornado/internal/placement"
	"tornado/internal/repairbw"
	"tornado/internal/retrieval"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("archive: object not found")
	ErrExists   = errors.New("archive: object already exists")
	// ErrDataLoss wraps codec.ErrUnrecoverable with object context.
	ErrDataLoss = errors.New("archive: object unrecoverable")
	// ErrDegraded is returned by Put when more block writes failed than
	// Config.MaxPutFailures tolerates: the object would be born below its
	// durability floor, so the write is refused and rolled back instead of
	// silently storing a stripe that is already near its failure point.
	ErrDegraded = errors.New("archive: store too degraded to write")
	// ErrTransient marks a backend fault that may succeed on retry (an
	// injected chaos fault, a flapping network path). Backends wrap
	// transient errors with it; the store's bounded retry only re-attempts
	// errors matching it — a permanently failed device is treated as a
	// missing block immediately.
	ErrTransient = errors.New("archive: transient backend error")
)

// Object describes a stored object.
type Object struct {
	Name    string
	Size    int
	Stripes int
}

// GetStats reports the retrieval work of one Get.
type GetStats struct {
	DevicesAccessed int // distinct devices read
	BlocksRead      int
	BlocksRepaired  int // blocks reconstructed rather than read
	CorruptBlocks   int // blocks failing their checksum (treated as erased)
	ReadRepairs     int // reconstructed blocks written back to their home node
	Retries         int // transient backend errors retried
	// Repair is the byte-level repair bill of this Get: read amplification
	// beyond the healthy-stripe baseline (degraded-get) plus read-repair
	// write-backs, as attributed to the store's repairbw.Meter.
	Repair repairbw.CostReport
}

// Config tunes a Store.
type Config struct {
	// BlockSize is the stripe block size in bytes. Default 4096.
	BlockSize int
	// FirstFailure is the graph's measured worst-case failure point (from
	// the exhaustive search); Scrub uses it to report each stripe's margin
	// to the initial failure point. Zero disables margin reporting.
	FirstFailure int
	// NaiveRetrieval disables the guided minimal-block retrieval plan
	// (§5.2/§6 optimization) and reads every reachable block on Get.
	NaiveRetrieval bool
	// Retries is how many extra attempts a transient backend error
	// (ErrTransient) earns before the block is treated as missing.
	// 0 means the default (2); negative disables retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling on each
	// further attempt. Zero means no sleep (in-memory backends, tests).
	RetryBackoff time.Duration
	// QuarantineThreshold is how many corrupt frames one node may serve
	// before the store quarantines it: Get planning and read-repair stop
	// relying on it. Scrub still reads and repairs it, and readmits it
	// after a pass in which it served only verified frames (ClearQuarantine
	// readmits immediately). 0 means the default (3); negative disables
	// quarantine.
	QuarantineThreshold int
	// DisableReadRepair turns off the write-back of blocks reconstructed
	// during Get; repair then happens only in Scrub.
	DisableReadRepair bool
	// MaxPutFailures is how many failed block writes Put tolerates per
	// stripe before refusing the object with ErrDegraded and rolling back
	// what it wrote. 0 means unlimited (parity and scrub absorb every
	// failure — the seed behaviour); negative refuses on any failure.
	MaxPutFailures int
	// Metrics receives the store's self-healing and scrub counters. Nil
	// gets a private registry (still readable via Store.Metrics).
	Metrics *obs.Registry
	// Placement maps graph nodes onto backend device slots. Nil means the
	// identity layout (node v on device v) — the seed behaviour. A
	// degree-aware layout (internal/placement.DegreeAware) co-locates each
	// check family so single-loss repairs stay group-local. Block keys keep
	// the logical node ID; placement only chooses which device serves it.
	Placement placement.Placement
	// RepairMeter receives the store's byte-level repair-traffic attribution
	// (scrub, read-repair, degraded gets, federation block exchange). Nil
	// creates one on the Metrics registry; share one Meter across stores to
	// aggregate a fleet.
	RepairMeter *repairbw.Meter
}

// Store is the archival object store. It is safe for concurrent use.
type Store struct {
	g       *graph.Graph
	codec   *codec.Codec
	backend Backend
	devices device.Array // non-nil only for array-backed stores
	cfg     Config
	place   placement.Placement
	nodeDev []int // node -> backend device slot (place, flattened)
	meter   *repairbw.Meter

	mu      sync.Mutex
	objects map[string]*Object

	// Quarantine bookkeeping: per-node corrupt-frame counts and the
	// quarantined flag, guarded separately from the object map so scrub
	// detection never contends with metadata lookups.
	healMu       sync.Mutex
	corruptCount []int
	quarantined  []bool

	metrics *obs.Registry
	// Cached metric handles (get-or-create takes the registry mutex; the
	// read path should not).
	mCorruptDetected *obs.Counter
	mReadRetries     *obs.Counter
	mWriteRetries    *obs.Counter
	mReadRepairs     *obs.Counter
	mQuarEvents      *obs.Counter
	mQuarReadmits    *obs.Counter
	gQuarNodes       *obs.Gauge
	mScrubPasses     *obs.Counter
	mScrubRepaired   *obs.Counter
	mScrubCorrupt    *obs.Counter
	mScrubUnrecov    *obs.Counter
}

// New builds a store over one always-on device per graph node.
func New(g *graph.Graph, devices device.Array, cfg Config) (*Store, error) {
	if len(devices) != g.Total {
		return nil, fmt.Errorf("archive: %d devices for a %d-node graph", len(devices), g.Total)
	}
	s, err := NewWithBackend(g, NewArrayBackend(devices), cfg)
	if err != nil {
		return nil, err
	}
	s.devices = devices
	return s, nil
}

// NewWithBackend builds a store over an arbitrary Backend (e.g. a MAID
// shelf, or a chaos-injecting wrapper around either).
func NewWithBackend(g *graph.Graph, backend Backend, cfg Config) (*Store, error) {
	if backend.Nodes() != g.Total {
		return nil, fmt.Errorf("archive: %d devices for a %d-node graph", backend.Nodes(), g.Total)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	c, err := codec.New(g, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	place := cfg.Placement
	if place == nil {
		place = placement.NewIdentity(g.Total)
	}
	if place.Nodes() != g.Total {
		return nil, fmt.Errorf("archive: placement %q covers %d nodes for a %d-node graph",
			place.Name(), place.Nodes(), g.Total)
	}
	nodeDev := make([]int, g.Total)
	for v := range nodeDev {
		nodeDev[v] = place.Device(v)
	}
	meter := cfg.RepairMeter
	if meter == nil {
		meter = repairbw.NewMeter(reg)
	}
	s := &Store{
		g:            g,
		codec:        c,
		backend:      backend,
		cfg:          cfg,
		place:        place,
		nodeDev:      nodeDev,
		meter:        meter,
		objects:      map[string]*Object{},
		corruptCount: make([]int, g.Total),
		quarantined:  make([]bool, g.Total),
		metrics:      reg,
	}
	s.mCorruptDetected = reg.Counter("archive.detected.corrupt_frames")
	s.mReadRetries = reg.Counter("archive.read.retries")
	s.mWriteRetries = reg.Counter("archive.write.retries")
	s.mReadRepairs = reg.Counter("archive.read_repair.blocks")
	s.mQuarEvents = reg.Counter("archive.quarantine.events")
	s.mQuarReadmits = reg.Counter("archive.quarantine.readmitted")
	s.gQuarNodes = reg.Gauge("archive.quarantine.nodes")
	s.mScrubPasses = reg.Counter("archive.scrub.passes")
	s.mScrubRepaired = reg.Counter("archive.scrub.blocks_repaired")
	s.mScrubCorrupt = reg.Counter("archive.scrub.corrupt_frames")
	s.mScrubUnrecov = reg.Counter("archive.scrub.unrecoverable_stripes")
	return s, nil
}

// Graph returns the store's erasure graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// Devices returns the store's device array when it was built with New, or
// nil for custom backends.
func (s *Store) Devices() device.Array { return s.devices }

// Placement returns the node-to-device layout the store was built with.
func (s *Store) Placement() placement.Placement { return s.place }

// RepairMeter returns the store's repair-traffic ledger (also exported as
// repairbw.* counters on the metric registry).
func (s *Store) RepairMeter() *repairbw.Meter { return s.meter }

// RepairPressure is a cheap replica-selection signal: the total repair
// bytes the read path has moved (degraded-get amplification plus
// read-repair write-backs). A replica with higher pressure is paying for
// damage on its reads, so hedged readers prefer a lower-pressure peer. The
// value is cumulative and monotonic; callers compare replicas, not epochs.
func (s *Store) RepairPressure() int64 {
	return s.meter.Totals(repairbw.DegradedGet).Bytes() + s.meter.Totals(repairbw.ReadRepair).Bytes()
}

// dev maps a logical graph node to the backend device slot serving it.
func (s *Store) dev(node int) int { return s.nodeDev[node] }

// frameSize is the on-device size of one framed block.
func (s *Store) frameSize() int64 { return int64(s.cfg.BlockSize + frameOverhead) }

// FrameSize returns the on-device size of one framed block (block size plus
// checksum framing) — the unit behind every byte figure the repair meter
// reports, so accounting tests and benchmarks can compute exact expectations.
func (s *Store) FrameSize() int { return s.cfg.BlockSize + frameOverhead }

// Metrics returns the store's metric registry: self-healing counters
// (archive.detected.corrupt_frames, archive.read_repair.blocks,
// archive.read.retries, archive.quarantine.*) and scrub outcomes
// (archive.scrub.*).
func (s *Store) Metrics() *obs.Registry { return s.metrics }

// retries resolves the transient-retry budget: Config.Retries, defaulting
// to 2 extra attempts, with negative meaning none.
func (s *Store) retries() int {
	switch {
	case s.cfg.Retries < 0:
		return 0
	case s.cfg.Retries == 0:
		return 2
	default:
		return s.cfg.Retries
	}
}

// putFailureLimit resolves Config.MaxPutFailures: -1 means unlimited
// (the zero-value default), otherwise the per-stripe tolerance.
func (s *Store) putFailureLimit() int {
	switch {
	case s.cfg.MaxPutFailures < 0:
		return 0
	case s.cfg.MaxPutFailures == 0:
		return -1 // unlimited
	default:
		return s.cfg.MaxPutFailures
	}
}

// discardBlocks best-effort deletes the first `stripes` stripes of an
// object — the rollback half of a refused Put. Going through the backend
// (not just the metadata map) matters: a torn write may have silently
// persisted a corrupt prefix that no scrub would ever visit again. The
// rollback runs detached from the caller's context: a cancelled Put must
// still clean up after itself.
func (s *Store) discardBlocks(ctx context.Context, name string, stripes int) {
	ctx = context.WithoutCancel(ctx)
	var keys keyBuf
	for st := 0; st < stripes; st++ {
		keys.stripe(name, st)
		for node := 0; node < s.g.Total; node++ {
			_ = s.backend.Delete(ctx, s.dev(node), keys.key(node))
		}
	}
}

// quarantineThreshold resolves Config.QuarantineThreshold: default 3,
// negative disables.
func (s *Store) quarantineThreshold() int {
	switch {
	case s.cfg.QuarantineThreshold < 0:
		return 0 // disabled
	case s.cfg.QuarantineThreshold == 0:
		return 3
	default:
		return s.cfg.QuarantineThreshold
	}
}

// isQuarantined reports whether node is excluded from the data path.
func (s *Store) isQuarantined(node int) bool {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	return s.quarantined[node]
}

// Quarantined returns the currently quarantined nodes in ascending order.
func (s *Store) Quarantined() []int {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	var out []int
	for node, q := range s.quarantined {
		if q {
			out = append(out, node)
		}
	}
	return out
}

// ClearQuarantine readmits a node to the data path and resets its corruption
// count — the operator action after replacing or vetting the device. The
// next repair scrub repopulates its blocks.
func (s *Store) ClearQuarantine(node int) {
	if node < 0 || node >= s.g.Total {
		return
	}
	s.healMu.Lock()
	s.corruptCount[node] = 0
	if s.quarantined[node] {
		s.quarantined[node] = false
	}
	n := 0
	for _, q := range s.quarantined {
		if q {
			n++
		}
	}
	s.healMu.Unlock()
	s.gQuarNodes.Set(int64(n))
}

// noteCorrupt records one detected corrupt frame from node: it feeds the
// detection counter (the chaos soak asserts detected == injected against
// it) and the per-node quarantine bookkeeping.
func (s *Store) noteCorrupt(node int) {
	s.mCorruptDetected.Inc()
	thr := s.quarantineThreshold()
	if thr == 0 {
		return
	}
	s.healMu.Lock()
	s.corruptCount[node]++
	newlyQuarantined := !s.quarantined[node] && s.corruptCount[node] >= thr
	if newlyQuarantined {
		s.quarantined[node] = true
	}
	n := 0
	for _, q := range s.quarantined {
		if q {
			n++
		}
	}
	s.healMu.Unlock()
	if newlyQuarantined {
		s.mQuarEvents.Inc()
		s.gQuarNodes.Set(int64(n))
	}
}

// scrubPass accumulates one scrub pass's per-node evidence: how many frames
// the node served that verified, and how many failed their checksum.
type scrubPass struct {
	clean   []int
	corrupt []int
}

// noteScrubPass applies a completed scrub pass's verdict to the quarantine
// bookkeeping. A node that served at least one verified frame and zero
// corrupt ones over the whole pass has proven itself healthy: its corruption
// count resets and, if it was quarantined, it is readmitted to the data
// path. Nodes that served corrupt frames — or nothing at all (failed or
// unreachable devices earn no credit) — keep their record.
func (s *Store) noteScrubPass(pass scrubPass) {
	readmitted := 0
	s.healMu.Lock()
	for node := range s.corruptCount {
		if pass.corrupt[node] > 0 || pass.clean[node] == 0 {
			continue
		}
		s.corruptCount[node] = 0
		if s.quarantined[node] {
			s.quarantined[node] = false
			readmitted++
		}
	}
	n := 0
	for _, q := range s.quarantined {
		if q {
			n++
		}
	}
	s.healMu.Unlock()
	if readmitted > 0 {
		s.mQuarReadmits.Add(int64(readmitted))
	}
	s.gQuarNodes.Set(int64(n))
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// readFramed reads a framed block, retrying transient backend errors with
// bounded exponential backoff. Cancellation is honored between attempts and
// during backoff sleeps. Any other error (failed device, missing block)
// returns immediately — the caller treats the block as an erasure.
func (s *Store) readFramed(ctx context.Context, node int, key []byte, stats *GetStats) ([]byte, error) {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		framed, err := s.backend.Read(ctx, s.dev(node), key)
		if err == nil || !errors.Is(err, ErrTransient) {
			return framed, err
		}
		if attempt >= s.retries() {
			return nil, err
		}
		s.mReadRetries.Inc()
		if stats != nil {
			stats.Retries++
		}
		if err := sleepCtx(ctx, backoff); err != nil {
			return nil, err
		}
		backoff *= 2
	}
}

// writeFramed frames and writes a payload, retrying transient errors with
// the same bounded backoff as reads. frameBlock copies the payload, so
// callers may pass buffers that alias read frames (see unframeBlock).
func (s *Store) writeFramed(ctx context.Context, node int, key []byte, payload []byte) error {
	return s.writeFrame(ctx, node, key, frameBlock(payload))
}

// writeFramedBuf is writeFramed through a caller-owned frame buffer — the
// streaming put path's allocation-free variant (the Backend contract lets
// the buffer be reused once Write returns). The possibly-grown buffer is
// returned for reuse.
func (s *Store) writeFramedBuf(ctx context.Context, node int, key []byte, payload, buf []byte) ([]byte, error) {
	buf = frameAppend(buf, payload)
	return buf, s.writeFrame(ctx, node, key, buf)
}

func (s *Store) writeFrame(ctx context.Context, node int, key []byte, framed []byte) error {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := s.backend.Write(ctx, s.dev(node), key, framed)
		if err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
		if attempt >= s.retries() {
			return err
		}
		s.mWriteRetries.Inc()
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
		backoff *= 2
	}
}

// planCost prices node reads for retrieval planning, forbidding quarantined
// nodes (their data cannot be trusted even when the device answers).
func (s *Store) planCost(node int) float64 {
	if s.isQuarantined(node) {
		return math.Inf(1)
	}
	return s.backend.Cost(s.dev(node))
}

// blockKey builds one block key ("name/stripe/node") in a fresh buffer —
// the convenience form for cold paths and tests; hot loops reuse a keyBuf.
func blockKey(name string, stripe, node int) []byte {
	var k keyBuf
	k.stripe(name, stripe)
	return k.key(node)
}

// keyBuf builds block keys ("name/stripe/node") through one reusable byte
// buffer: the stripe prefix is laid down once per stripe and node suffixes
// appended per block. Since the Backend contract borrows keys only for the
// duration of a call, a key costs no allocation at all — the same buffer is
// rewritten for every block. One keyBuf serves one goroutine.
type keyBuf struct {
	buf    []byte
	prefix int // length of the "name/stripe/" prefix
}

// stripe sets the buffer's prefix for one object stripe.
func (k *keyBuf) stripe(name string, st int) {
	k.buf = append(k.buf[:0], name...)
	k.buf = append(k.buf, '/')
	k.buf = strconv.AppendInt(k.buf, int64(st), 10)
	k.buf = append(k.buf, '/')
	k.prefix = len(k.buf)
}

// key returns the key for node under the current stripe prefix. The slice
// aliases the buffer: it is valid only until the next key/stripe call, which
// matches the Backend contract (backends copy keys they retain).
func (k *keyBuf) key(node int) []byte {
	k.buf = strconv.AppendInt(k.buf[:k.prefix], int64(node), 10)
	return k.buf
}

// stripeScratch is the reusable per-goroutine workspace of the stripe data
// path: block pointers, availability masks, the codec repair workspace, and
// the frame/key buffers. One scratch serves one goroutine; the streaming
// paths keep one per worker so a many-stripe Put/Get allocates its working
// set once.
type stripeScratch struct {
	blocks   [][]byte
	avail    []bool
	corrupt  []bool
	fromRead []bool // blocks[i] came from a backend read (not reconstruction)
	toRead   []int
	ws       *codec.Workspace
	enc      *codec.Encoder
	planner  *retrieval.Planner // reused: planning a stripe allocates nothing
	planCost retrieval.CostFunc // bound once; a per-call method value allocates
	payload  []byte             // decode output buffer (grown to stripe capacity)
	frameBuf []byte
	keys     keyBuf
	touched  map[int]bool
}

// newScratch returns a stripe workspace sized for the store's graph. The
// encoder and planner are created lazily (get-only scratches never pay for
// an encoder; put-only scratches never pay for a planner kernel).
func (s *Store) newScratch() *stripeScratch {
	return &stripeScratch{
		blocks:   make([][]byte, s.g.Total),
		avail:    make([]bool, s.g.Total),
		corrupt:  make([]bool, s.g.Total),
		fromRead: make([]bool, s.g.Total),
		ws:       s.codec.NewWorkspace(),
		touched:  map[int]bool{},
	}
}

// plan returns the scratch's reusable stripe planner.
func (sc *stripeScratch) plan(s *Store) (*retrieval.Planner, retrieval.CostFunc) {
	if sc.planner == nil {
		sc.planner = retrieval.NewPlanner(s.g)
		sc.planCost = s.planCost
	}
	return sc.planner, sc.planCost
}

func (sc *stripeScratch) encoder(s *Store) *codec.Encoder {
	if sc.enc == nil {
		sc.enc = s.codec.NewEncoder()
	}
	return sc.enc
}

// reserve claims name in the object map, returning the metadata record the
// caller finalizes (or rolls back) later.
func (s *Store) reserve(name string, size int) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	obj := &Object{Name: name, Size: size}
	s.objects[name] = obj
	return obj, nil
}

// putStripe encodes one stripe payload and writes its blocks, returning
// the number of failed block writes. Devices that are unavailable at write
// time simply miss their block — exactly the redundancy the code is there
// to absorb. Blocks are stored framed with a CRC-32C so bit rot is
// detected on read; transient write faults are retried with bounded
// backoff. A ctx error aborts immediately.
func (s *Store) putStripe(ctx context.Context, name string, st int, payload []byte, sc *stripeScratch) (int, error) {
	blocks, err := sc.encoder(s).Encode(payload)
	if err != nil {
		return 0, err
	}
	sc.keys.stripe(name, st)
	failed := 0
	for node, b := range blocks {
		if err := ctx.Err(); err != nil {
			return failed, err
		}
		var werr error
		sc.frameBuf, werr = s.writeFramedBuf(ctx, node, sc.keys.key(node), b, sc.frameBuf)
		if werr != nil {
			if errIsCtx(werr) {
				return failed, werr
			}
			failed++
		}
	}
	if lim := s.putFailureLimit(); lim >= 0 && failed > lim {
		return failed, fmt.Errorf("%w: %q stripe %d lost %d of %d block writes",
			ErrDegraded, name, st, failed, len(blocks))
	}
	return failed, nil
}

// Put encodes and stores an object. The transactional archival interface
// takes whole objects; there are no partial updates (paper §2.2).
func (s *Store) Put(name string, data []byte) error {
	return s.PutCtx(context.Background(), name, data)
}

// PutCtx is Put with cancellation: the write checks ctx between blocks and
// during retry backoff, and a cancelled Put rolls its partial object back
// (the rollback itself is not cancellable).
func (s *Store) PutCtx(ctx context.Context, name string, data []byte) error {
	obj, err := s.reserve(name, len(data))
	if err != nil {
		return err
	}
	cap := s.codec.Capacity()
	stripes := (len(data) + cap - 1) / cap
	if stripes == 0 {
		stripes = 1
	}
	sc := s.newScratch()
	for st := 0; st < stripes; st++ {
		lo := st * cap
		hi := min(lo+cap, len(data))
		if _, err := s.putStripe(ctx, name, st, data[lo:hi], sc); err != nil {
			s.discardBlocks(ctx, name, st+1)
			s.deleteObject(name)
			return err
		}
	}
	s.mu.Lock()
	obj.Stripes = stripes
	s.mu.Unlock()
	return nil
}

// Get retrieves an object, reconstructing around unavailable devices.
func (s *Store) Get(name string) ([]byte, GetStats, error) {
	return s.GetCtx(context.Background(), name)
}

// GetCtx is Get with cancellation: ctx is checked between stripes, between
// blocks, and during retry backoff, so a cancelled Get returns promptly
// mid-object instead of finishing the remaining stripes.
func (s *Store) GetCtx(ctx context.Context, name string) ([]byte, GetStats, error) {
	size, stripes, err := s.lookup(name)
	var stats GetStats
	if err != nil {
		return nil, stats, err
	}
	out := make([]byte, 0, size)
	cap := s.codec.Capacity()
	sc := s.newScratch()
	for st := 0; st < stripes; st++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		want := min(size-st*cap, cap)
		payload, err := s.getStripe(ctx, name, st, want, sc, &stats)
		if err != nil {
			return nil, stats, err
		}
		out = append(out, payload...)
	}
	stats.DevicesAccessed = len(sc.touched)
	return out, stats, nil
}

// lookup resolves an object's size and stripe count, reporting ErrNotFound
// for unknown names and Puts still in flight (stripes not finalized).
func (s *Store) lookup(name string) (size, stripes int, err error) {
	s.mu.Lock()
	obj, ok := s.objects[name]
	if ok {
		size, stripes = obj.Size, obj.Stripes
	}
	s.mu.Unlock()
	if !ok || (stripes == 0 && size > 0) {
		return 0, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return size, stripes, nil
}

// ReadStripe retrieves one stripe's decoded payload — the serve layer's
// cache-fill granularity. The returned slice is freshly allocated and owned
// by the caller.
func (s *Store) ReadStripe(ctx context.Context, name string, st int) ([]byte, GetStats, error) {
	size, stripes, err := s.lookup(name)
	var stats GetStats
	if err != nil {
		return nil, stats, err
	}
	if st < 0 || st >= stripes {
		return nil, stats, fmt.Errorf("%w: %q stripe %d", ErrNotFound, name, st)
	}
	cap := s.codec.Capacity()
	want := min(size-st*cap, cap)
	sc := s.newScratch()
	payload, err := s.getStripe(ctx, name, st, want, sc, &stats)
	if err != nil {
		return nil, stats, err
	}
	stats.DevicesAccessed = len(sc.touched)
	return append([]byte(nil), payload...), stats, nil
}

// getStripe reconstructs one stripe into sc.payload and returns it; the
// slice is valid only until the scratch's next use, so callers copy or
// write it out before reusing sc.
func (s *Store) getStripe(ctx context.Context, name string, st, payloadLen int, sc *stripeScratch, stats *GetStats) ([]byte, error) {
	sc.keys.stripe(name, st)
	for node := range sc.avail {
		sc.avail[node] = !s.isQuarantined(node) && s.backend.Available(s.dev(node), sc.keys.key(node))
		sc.blocks[node] = nil
		sc.corrupt[node] = false
		sc.fromRead[node] = false
	}

	// Repair-traffic accounting: a healthy stripe read moves exactly Data
	// full frames, so on success everything beyond that baseline — extra
	// plan blocks, corrupt frames, the fallback sweep — is degraded-get
	// traffic; a failed stripe attributes every byte it read. A successful
	// decode necessarily consumed at least Data verified full-size frames
	// (codec.Repair rebuilds every data block), so the surplus is never
	// negative.
	var gotBlocks int
	var gotBytes int64
	record := func(success bool) {
		bill := repairbw.CostReport{BlocksRead: gotBlocks, BytesRead: gotBytes}
		if success {
			bill.BlocksRead -= s.g.Data
			bill.BytesRead -= int64(s.g.Data) * s.frameSize()
		}
		stats.Repair.Add(bill)
		s.meter.Record(repairbw.DegradedGet, bill)
	}

	toRead := sc.toRead[:0]
	if !s.cfg.NaiveRetrieval {
		// PlanEconomic prefers the recovery plan with the fewest projected
		// repair bytes (blocks beyond the data floor), falling back to plan
		// price on ties; a healthy stripe short-circuits after one ordering.
		planner, planCost := sc.plan(s)
		plan, _, err := planner.PlanEconomic(sc.avail, planCost)
		if err != nil {
			return nil, fmt.Errorf("%w: %q stripe %d: %v", ErrDataLoss, name, st, err)
		}
		toRead = plan
	} else {
		for node, ok := range sc.avail {
			if ok {
				toRead = append(toRead, node)
			}
		}
		sc.toRead = toRead
	}

	// corrupt marks frames that failed their checksum during this read, so
	// the fallback pass never re-reads (and never double-counts) them.
	var ctxErr error
	readInto := func(node int) {
		if ctxErr != nil {
			return
		}
		framed, err := s.readFramed(ctx, node, sc.keys.key(node), stats)
		if err != nil {
			if errIsCtx(err) {
				ctxErr = err
			}
			return // raced with a failure; the decoder will cope or report
		}
		sc.touched[node] = true
		stats.BlocksRead++
		gotBlocks++
		gotBytes += int64(len(framed))
		// unframeBlock's payload aliases framed; the alias lives only in
		// sc.blocks[node], which is read (never mutated) by the codec and
		// copied by the frame layer before any write-back.
		b, ok := unframeBlock(framed)
		if !ok {
			stats.CorruptBlocks++ // bit rot: treat as an erasure
			sc.corrupt[node] = true
			s.noteCorrupt(node)
			return
		}
		sc.blocks[node] = b
		sc.fromRead[node] = true
	}
	for _, node := range toRead {
		readInto(node)
	}
	if ctxErr != nil {
		record(false)
		return nil, ctxErr
	}
	if cap(sc.payload) < s.codec.Capacity() {
		sc.payload = make([]byte, 0, s.codec.Capacity())
	}
	payload, err := s.codec.DecodeInto(sc.ws, sc.payload[:0], sc.blocks, payloadLen)
	if errors.Is(err, codec.ErrUnrecoverable) && !s.cfg.NaiveRetrieval {
		// The plan raced with failures; fall back to everything reachable
		// that has not already been read or detected corrupt. Blocks the
		// failed peel reconstructed alias the workspace arena, which the
		// retry's RepairWith recycles — drop them so the retry peels only
		// from blocks whose memory it does not own.
		for node := range sc.blocks {
			if !sc.fromRead[node] {
				sc.blocks[node] = nil
			}
		}
		for node, ok := range sc.avail {
			if ok && sc.blocks[node] == nil && !sc.corrupt[node] {
				readInto(node)
			}
		}
		if ctxErr != nil {
			record(false)
			return nil, ctxErr
		}
		payload, err = s.codec.DecodeInto(sc.ws, sc.payload[:0], sc.blocks, payloadLen)
	}
	if err != nil {
		record(false)
		return nil, fmt.Errorf("%w: %q stripe %d: %v", ErrDataLoss, name, st, err)
	}
	record(true)
	for node := 0; node < s.g.Data; node++ {
		if !sc.avail[node] {
			stats.BlocksRepaired++
		}
	}
	if !s.cfg.DisableReadRepair {
		s.readRepairStripe(ctx, sc, stats)
	}
	return payload, nil
}

// readRepairStripe writes blocks reconstructed during a read back to their
// home nodes, so a Get heals the damage it discovers instead of deferring
// to the next scrub: a corrupt frame is overwritten in place, and a node
// that lost its block (e.g. a replaced blank drive) is repopulated.
// Codec.Decode repaired blocks in place, so every recoverable block is
// present. Unreachable and quarantined nodes are skipped; write errors are
// ignored (the next scrub retries).
// The scratch's keyBuf still carries the stripe prefix getStripe set.
func (s *Store) readRepairStripe(ctx context.Context, sc *stripeScratch, stats *GetStats) {
	var bill repairbw.CostReport
	for node := range sc.blocks {
		if sc.blocks[node] == nil || (sc.avail[node] && !sc.corrupt[node]) {
			continue // nothing reconstructed, or the stored frame is fine
		}
		if s.isQuarantined(node) || math.IsInf(s.backend.Cost(s.dev(node)), 1) {
			continue
		}
		// writeFramed copies sc.blocks[node] (which may alias a read frame)
		// into a fresh framed buffer before the backend sees it.
		if err := s.writeFramed(ctx, node, sc.keys.key(node), sc.blocks[node]); err == nil {
			s.mReadRepairs.Inc()
			bill.BlocksWritten++
			bill.BytesWritten += s.frameSize()
			if stats != nil {
				stats.ReadRepairs++
			}
		}
	}
	if stats != nil {
		stats.Repair.Add(bill)
	}
	s.meter.Record(repairbw.ReadRepair, bill)
}

// Delete removes an object and its blocks from all reachable devices.
func (s *Store) Delete(name string) error {
	return s.DeleteCtx(context.Background(), name)
}

// DeleteCtx is Delete with cancellation between block deletions.
func (s *Store) DeleteCtx(ctx context.Context, name string) error {
	s.mu.Lock()
	obj, ok := s.objects[name]
	var stripes int
	if ok {
		stripes = obj.Stripes
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var keys keyBuf
	for st := 0; st < stripes; st++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		keys.stripe(name, st)
		for node := 0; node < s.g.Total; node++ {
			_ = s.backend.Delete(ctx, s.dev(node), keys.key(node))
		}
	}
	s.deleteObject(name)
	return nil
}

func (s *Store) deleteObject(name string) {
	s.mu.Lock()
	delete(s.objects, name)
	s.mu.Unlock()
}

// List returns the stored objects sorted by name.
func (s *Store) List() []Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
