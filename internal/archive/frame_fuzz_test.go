package archive

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip fuzzes the frame layer from both directions. Treating
// the input as a payload, frame→unframe must round-trip bit-exactly, and a
// single-bit flip anywhere in the frame must be rejected. Treating the
// input as a raw frame off a device, unframeBlock must never panic and must
// only accept frames whose checksum genuinely matches — the property the
// whole silent-corruption defense rests on.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(bytes.Repeat([]byte{0xa5}, 64))
	f.Add([]byte{0, 0, 0, 0}) // frame-shaped: zero CRC, empty payload
	f.Add([]byte{0, 0, 0})    // shorter than the checksum prefix
	f.Add(make([]byte, 4096+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data is a payload.
		framed := frameBlock(data)
		if len(framed) != frameOverhead+len(data) {
			t.Fatalf("frame overhead: got %d bytes for %d-byte payload", len(framed), len(data))
		}
		payload, ok := unframeBlock(framed)
		if !ok {
			t.Fatalf("fresh frame rejected (payload %d bytes)", len(data))
		}
		if !bytes.Equal(payload, data) {
			t.Fatalf("round trip mangled payload: %x != %x", payload, data)
		}
		// The alias contract: payload must share framed's backing array.
		if len(data) > 0 && &payload[0] != &framed[frameOverhead] {
			t.Fatal("unframeBlock copied; documented contract says it aliases")
		}
		if cp, ok := unframeBlockCopy(framed); !ok || !bytes.Equal(cp, data) {
			t.Fatal("unframeBlockCopy diverged from unframeBlock")
		} else if len(data) > 0 && &cp[0] == &framed[frameOverhead] {
			t.Fatal("unframeBlockCopy aliased; documented contract says it copies")
		}

		// Any single-bit flip must be detected (CRC-32C catches all 1-bit
		// errors), as must truncation to any shorter length.
		if len(framed) > 0 {
			bit := int(framed[0]^framed[len(framed)-1]) % (len(framed) * 8)
			framed[bit/8] ^= 1 << (bit % 8)
			if _, ok := unframeBlock(framed); ok {
				t.Fatalf("accepted frame with bit %d flipped", bit)
			}
			framed[bit/8] ^= 1 << (bit % 8)
		}
		if len(framed) > frameOverhead {
			if _, ok := unframeBlock(framed[:len(framed)-1]); ok {
				t.Fatal("accepted truncated frame")
			}
		}

		// Direction 2: data is a raw (possibly hostile) frame. Must not
		// panic; acceptance implies re-framing the payload reproduces it.
		if payload, ok := unframeBlock(data); ok {
			if !bytes.Equal(frameBlock(payload), data) {
				t.Fatalf("accepted frame %x that frameBlock cannot reproduce", data)
			}
		} else if len(data) >= frameOverhead {
			// Rejected with a full-length prefix: the checksum must truly
			// mismatch, or the rejection is a false positive.
			if frameOk(data) {
				t.Fatalf("rejected frame %x with a valid checksum", data)
			}
		}
	})
}

// frameOk re-derives the accept decision independently of unframeBlock.
func frameOk(framed []byte) bool {
	if len(framed) < frameOverhead {
		return false
	}
	good := frameBlock(framed[frameOverhead:])
	return bytes.Equal(good, framed)
}
