package archive

import (
	"context"
	"math"

	"tornado/internal/device"
)

// Backend abstracts the block storage under the archive: a plain device
// array, a power-managed MAID shelf that spins drives up on demand, or a
// fault-injecting wrapper over either (tornado/internal/chaos).
//
// The data-plane methods (Read, Write, Delete) are context-first: the
// store plumbs the caller's context from Put/Get/Scrub all the way down,
// so a backend backed by a network or a spin-up queue can honor deadlines
// and cancellation. In-memory backends may ignore ctx entirely — the store
// itself checks it between blocks and during retry backoff, so cancellation
// is honored promptly either way.
//
// Error semantics: a backend that can fail transiently (network blip,
// injected fault) wraps those errors with ErrTransient; the store retries
// them with bounded backoff. A ctx error must be returned as (or wrapped
// around) ctx.Err() so the store can distinguish cancellation from damage.
// Any other error is treated as a missing block, to be reconstructed from
// parity.
//
// Key ownership: keys are []byte and are valid only for the duration of
// the call — the store builds them in a per-stripe buffer it reuses.
// Backends that retain a key (e.g. as a map key) must copy it; the
// m[string(k)] lookup/delete forms compile without allocating, so map-based
// backends stay allocation-free on the read path and pay one string copy
// only on writes, which are rare.
type Backend interface {
	// Nodes returns the device count (one per graph node).
	Nodes() int
	// Available reports whether node's copy of key can be retrieved at
	// all, possibly after a spin-up. Failed or unreachable devices are
	// unavailable.
	Available(node int, key []byte) bool
	// Read fetches a block, performing any power management needed. The
	// returned slice is owned by the caller: the backend must not reuse
	// or mutate its backing array after returning (unframeBlock hands out
	// payloads that alias it).
	Read(ctx context.Context, node int, key []byte) ([]byte, error)
	// Write stores a block, performing any power management needed. The
	// backend must not retain data (or the key) after returning (callers
	// reuse their frame and key buffers).
	Write(ctx context.Context, node int, key []byte, data []byte) error
	// Delete removes a block; deleting a missing block is a no-op.
	Delete(ctx context.Context, node int, key []byte) error
	// Cost prices reading node for retrieval planning (e.g. spun-down
	// drives cost a spin-up). Unreachable nodes return +Inf.
	Cost(node int) float64
}

// arrayBackend serves an always-on device array.
type arrayBackend struct {
	devs device.Array
}

// NewArrayBackend wraps a plain device array as a Backend.
func NewArrayBackend(devs device.Array) Backend { return arrayBackend{devs: devs} }

func (a arrayBackend) Nodes() int { return len(a.devs) }

func (a arrayBackend) Available(node int, key []byte) bool {
	return a.devs[node].State() == device.Online && a.devs[node].Has(key)
}

func (a arrayBackend) Read(_ context.Context, node int, key []byte) ([]byte, error) {
	return a.devs[node].Read(key)
}

func (a arrayBackend) Write(_ context.Context, node int, key []byte, data []byte) error {
	return a.devs[node].Write(key, data)
}

func (a arrayBackend) Delete(_ context.Context, node int, key []byte) error {
	return a.devs[node].Delete(key)
}

func (a arrayBackend) Cost(node int) float64 {
	if a.devs[node].State() != device.Online {
		return math.Inf(1)
	}
	return 1
}
