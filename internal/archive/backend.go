package archive

import (
	"math"

	"tornado/internal/device"
)

// Backend abstracts the block storage under the archive: a plain device
// array, a power-managed MAID shelf that spins drives up on demand, or a
// fault-injecting wrapper over either (tornado/internal/chaos).
//
// Error semantics: a backend that can fail transiently (network blip,
// injected fault) wraps those errors with ErrTransient; the store retries
// them with bounded backoff. Any other error is treated as a missing
// block, to be reconstructed from parity.
type Backend interface {
	// Nodes returns the device count (one per graph node).
	Nodes() int
	// Available reports whether node's copy of key can be retrieved at
	// all, possibly after a spin-up. Failed or unreachable devices are
	// unavailable.
	Available(node int, key string) bool
	// Read fetches a block, performing any power management needed. The
	// returned slice is owned by the caller: the backend must not reuse
	// or mutate its backing array after returning (unframeBlock hands out
	// payloads that alias it).
	Read(node int, key string) ([]byte, error)
	// Write stores a block, performing any power management needed. The
	// backend must not retain data after returning.
	Write(node int, key string, data []byte) error
	// Delete removes a block; deleting a missing block is a no-op.
	Delete(node int, key string) error
	// Cost prices reading node for retrieval planning (e.g. spun-down
	// drives cost a spin-up). Unreachable nodes return +Inf.
	Cost(node int) float64
}

// arrayBackend serves an always-on device array.
type arrayBackend struct {
	devs device.Array
}

// NewArrayBackend wraps a plain device array as a Backend.
func NewArrayBackend(devs device.Array) Backend { return arrayBackend{devs: devs} }

func (a arrayBackend) Nodes() int { return len(a.devs) }

func (a arrayBackend) Available(node int, key string) bool {
	return a.devs[node].State() == device.Online && a.devs[node].Has(key)
}

func (a arrayBackend) Read(node int, key string) ([]byte, error) {
	return a.devs[node].Read(key)
}

func (a arrayBackend) Write(node int, key string, data []byte) error {
	return a.devs[node].Write(key, data)
}

func (a arrayBackend) Delete(node int, key string) error {
	return a.devs[node].Delete(key)
}

func (a arrayBackend) Cost(node int) float64 {
	if a.devs[node].State() != device.Online {
		return math.Inf(1)
	}
	return 1
}
