package archive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestStreamRoundTrip pushes multi-stripe objects through PutStream and
// GetStream at several pipeline widths, including payloads that end exactly
// on a stripe boundary and mid-block.
func TestStreamRoundTrip(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	cap := s.codec.Capacity()
	sizes := []int{0, 1, cap - 1, cap, cap + 1, 3*cap + 17, 5 * cap}
	for _, par := range []int{1, 2, 4} {
		for i, n := range sizes {
			name := fmt.Sprintf("obj-%d-%d", par, i)
			data := payload(n, uint64(n)+uint64(par))
			wrote, err := s.PutStream(context.Background(), name, bytes.NewReader(data), WithParallelism(par))
			if err != nil {
				t.Fatalf("PutStream(par=%d, n=%d): %v", par, n, err)
			}
			if wrote != n {
				t.Fatalf("PutStream wrote %d, want %d", wrote, n)
			}
			var buf bytes.Buffer
			read, _, err := s.GetStream(context.Background(), name, &buf, WithParallelism(par))
			if err != nil {
				t.Fatalf("GetStream(par=%d, n=%d): %v", par, n, err)
			}
			if read != n || !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("round trip mismatch par=%d n=%d (read %d)", par, n, read)
			}
			// Cross-API: the streamed object must read back through Get too.
			got, _, err := s.Get(name)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("Get after PutStream: %v", err)
			}
		}
	}
}

// TestPutStreamCancellation: cancelling mid-ingest aborts promptly and
// rolls the partial object back.
func TestPutStreamCancellation(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	cap := s.codec.Capacity()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	data := payload(6*cap, 3)
	// Cancel once the reader has handed out a couple of stripes; the
	// pipeline must notice the context, not the reader, which keeps
	// serving bytes.
	r := &cancelAfterReader{r: bytes.NewReader(data), after: 2 * cap, cancel: cancel}
	_, err := s.PutStream(ctx, "cancelled", r, WithParallelism(2))
	if !errIsCtx(err) {
		t.Fatalf("PutStream under cancellation: %v", err)
	}
	if _, err := s.Stat("cancelled"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancelled PutStream left metadata: %v", err)
	}
}

type cancelAfterReader struct {
	r      io.Reader
	after  int
	read   int
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	if c.read >= c.after {
		c.once.Do(c.cancel)
	}
	return n, err
}

// TestGetMidObjectCancellation: a retrieval cancelled between stripes
// returns ctx.Err() promptly instead of finishing the remaining stripes —
// on the sequential path, the parallel path, and the buffered GetCtx.
func TestGetMidObjectCancellation(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	cap := s.codec.Capacity()
	data := payload(8*cap, 4)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{after: 2 * cap, cancel: cancel}
	n, _, err := s.GetStream(ctx, "obj", w, WithParallelism(1))
	if !errIsCtx(err) {
		t.Fatalf("GetStream under mid-object cancellation: %v", err)
	}
	if n >= len(data) {
		t.Errorf("cancelled Get still delivered all %d bytes", n)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w2 := &cancelAfterWriter{after: 2 * cap, cancel: cancel2}
	if _, _, err := s.GetStream(ctx2, "obj", w2, WithParallelism(3)); !errIsCtx(err) {
		t.Fatalf("parallel GetStream under cancellation: %v", err)
	}

	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if _, _, err := s.GetCtx(ctx3, "obj"); !errIsCtx(err) {
		t.Fatalf("GetCtx with cancelled context: %v", err)
	}
}

type cancelAfterWriter struct {
	after   int
	written int
	cancel  context.CancelFunc
	once    sync.Once
}

func (c *cancelAfterWriter) Write(p []byte) (int, error) {
	c.written += len(p)
	if c.written >= c.after {
		c.once.Do(c.cancel)
	}
	return len(p), nil
}

// TestStreamBoundedWindow: with parallelism P, the ingest pipeline never
// reads more than its buffer pool ahead of a stalled backend write — the
// O(parallelism × stripe) memory bound, observed from the reader side.
func TestStreamBoundedWindow(t *testing.T) {
	base := testStore(t, Config{BlockSize: 64})
	cap := base.codec.Capacity()
	const par = 2
	gate := make(chan struct{})
	slow := &gateBackend{Backend: base.backend, gate: gate}
	s, err := NewWithBackend(base.g, slow, Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	src := &countReader{data: payload(20*cap, 5)}
	done := make(chan error, 1)
	go func() {
		_, err := s.PutStream(context.Background(), "obj", src, WithParallelism(par))
		done <- err
	}()
	slow.waitStalled()
	// par buffers in flight plus the one the reader may be filling.
	if consumed := src.consumed(); consumed > (par+1)*cap {
		t.Errorf("pipeline read %d bytes ahead with parallelism %d (bound %d)", consumed, par, (par+1)*cap)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, _, err := s.GetStream(context.Background(), "obj", &buf); err != nil || !bytes.Equal(buf.Bytes(), src.data) {
		t.Fatalf("round trip after gated ingest: %v", err)
	}
}

// gateBackend blocks every Write until its gate closes.
type gateBackend struct {
	Backend
	gate    chan struct{}
	mu      sync.Mutex
	stalled int
}

func (b *gateBackend) Write(ctx context.Context, node int, key []byte, data []byte) error {
	b.mu.Lock()
	b.stalled++
	b.mu.Unlock()
	<-b.gate
	return b.Backend.Write(ctx, node, key, data)
}

func (b *gateBackend) waitStalled() {
	for {
		b.mu.Lock()
		n := b.stalled
		b.mu.Unlock()
		if n > 0 {
			return
		}
	}
}

// countReader serves data while counting bytes handed out.
type countReader struct {
	data []byte
	mu   sync.Mutex
	off  int
}

func (c *countReader) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.off >= len(c.data) {
		return 0, io.EOF
	}
	n := copy(p, c.data[c.off:])
	c.off += n
	return n, nil
}

func (c *countReader) consumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.off
}

// TestParallelWrappersStillWork pins the compatibility contract: the
// deprecated entry points remain correct as thin wrappers over the streams.
func TestParallelWrappersStillWork(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	data := payload(3*s.codec.Capacity()+100, 6)
	if err := s.PutParallel("p", data, 3); err != nil {
		t.Fatal(err)
	}
	got, stats, err := s.GetParallel("p", 3)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("PutParallel/GetParallel round trip: %v", err)
	}
	if stats.DevicesAccessed == 0 || stats.BlocksRead == 0 {
		t.Errorf("GetParallel stats not aggregated: %+v", stats)
	}
	if err := s.PutParallel("p", data, 3); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate PutParallel: %v", err)
	}
}

// TestReadStripe covers the serve layer's cache-fill primitive: each stripe
// reads back exactly its slice of the object, out-of-range stripes report
// ErrNotFound, and the returned buffer is caller-owned (mutating it must
// not corrupt a later read).
func TestReadStripe(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	cap := s.codec.Capacity()
	data := payload(3*cap+11, 7)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 4; st++ {
		got, _, err := s.ReadStripe(context.Background(), "obj", st)
		if err != nil {
			t.Fatalf("ReadStripe(%d): %v", st, err)
		}
		lo := st * cap
		hi := min(lo+cap, len(data))
		if !bytes.Equal(got, data[lo:hi]) {
			t.Fatalf("ReadStripe(%d) mismatch", st)
		}
		for i := range got {
			got[i] = 0xFF // caller-owned: scribbling must be harmless
		}
	}
	if _, _, err := s.ReadStripe(context.Background(), "obj", 4); !errors.Is(err, ErrNotFound) {
		t.Errorf("out-of-range stripe: %v", err)
	}
	if _, _, err := s.ReadStripe(context.Background(), "obj", -1); !errors.Is(err, ErrNotFound) {
		t.Errorf("negative stripe: %v", err)
	}
	got, _, err := s.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("Get after ReadStripe scribbles: %v", err)
	}
}
