package archive

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

// TestConcurrentPutGetScrub exercises the store's concurrency contract:
// parallel writers, readers, a scrubber, and a failure injector. Run with
// -race in CI.
func TestConcurrentPutGetScrub(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64, FirstFailure: 4})
	// Seed some objects.
	base := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("seed-%d", i)
		data := payload(700+i*13, uint64(i))
		if err := s.Put(name, data); err != nil {
			t.Fatal(err)
		}
		base[name] = data
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writers add fresh objects.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(name, payload(300, uint64(w*100+i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers hammer the seeded objects.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				for name, want := range base {
					got, _, err := s.Get(name)
					if err != nil {
						// Data loss is impossible here (no failures while
						// reading in this goroutine — the injector only
						// fails 2 devices, under the margin).
						errs <- err
						return
					}
					if !bytes.Equal(got, want) {
						errs <- errors.New("corrupt read")
						return
					}
				}
			}
		}(r)
	}
	// A scrubber loops.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := s.Scrub(true); err != nil {
				errs <- err
				return
			}
		}
	}()
	// A failure injector takes out two drives (within margin), then
	// replaces them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(9, 9))
		ids := s.Devices().FailRandom(2, rng)
		for _, id := range ids {
			s.Devices()[id].Replace()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
