package archive

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

func TestPutReaderGetWriterRoundTrip(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32}) // capacity 1536/stripe
	data := payload(5000, 31)                // 4 stripes
	n, err := s.PutReader("obj", bytes.NewReader(data))
	if err != nil || n != 5000 {
		t.Fatalf("PutReader = %d, %v", n, err)
	}
	obj, err := s.Stat("obj")
	if err != nil || obj.Size != 5000 || obj.Stripes != 4 {
		t.Fatalf("Stat = %+v, %v", obj, err)
	}
	var out bytes.Buffer
	wn, stats, err := s.GetWriter("obj", &out)
	if err != nil || wn != 5000 {
		t.Fatalf("GetWriter = %d, %v", wn, err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("stream round trip mismatch")
	}
	if stats.DevicesAccessed == 0 {
		t.Error("no stats")
	}
	// Streaming and buffered paths interoperate.
	got, _, err := s.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("buffered Get of streamed object: %v", err)
	}
}

func TestPutReaderEmptyObject(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	n, err := s.PutReader("empty", strings.NewReader(""))
	if err != nil || n != 0 {
		t.Fatalf("PutReader = %d, %v", n, err)
	}
	var out bytes.Buffer
	wn, _, err := s.GetWriter("empty", &out)
	if err != nil || wn != 0 {
		t.Fatalf("GetWriter = %d, %v", wn, err)
	}
}

func TestPutReaderExactStripeBoundary(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	cap := s.Layout().StripeCapacity
	data := payload(2*cap, 32) // exactly two stripes
	if _, err := s.PutReader("obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Stat("obj")
	if obj.Stripes != 2 {
		t.Errorf("stripes = %d, want 2", obj.Stripes)
	}
	got, _, err := s.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("boundary round trip: %v", err)
	}
}

func TestPutReaderErrAbortsCleanly(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	r := io.MultiReader(bytes.NewReader(payload(2000, 33)), iotest.ErrReader(errors.New("link dropped")))
	if _, err := s.PutReader("obj", r); err == nil {
		t.Fatal("stream error swallowed")
	}
	// The partial object must be gone.
	if _, err := s.Stat("obj"); !errors.Is(err, ErrNotFound) {
		t.Errorf("partial object survives: %v", err)
	}
	// And the name is reusable.
	if _, err := s.PutReader("obj", strings.NewReader("retry")); err != nil {
		t.Fatal(err)
	}
}

func TestPutReaderDuplicate(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if _, err := s.PutReader("obj", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutReader("obj", strings.NewReader("y")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate = %v", err)
	}
}

func TestGetWriterSurvivesFailures(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	data := payload(4000, 34)
	if _, err := s.PutReader("obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	s.Devices()[3].Fail()
	s.Devices()[60].Fail()
	var out bytes.Buffer
	if _, _, err := s.GetWriter("obj", &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("streamed reconstruction mismatch")
	}
}

func TestGetWriterPropagatesSinkError(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if _, err := s.PutReader("obj", bytes.NewReader(payload(100, 35))); err != nil {
		t.Fatal(err)
	}
	w := &failingWriter{}
	if _, _, err := s.GetWriter("obj", w); err == nil {
		t.Error("sink error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestGetWriterMissing(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	var out bytes.Buffer
	if _, _, err := s.GetWriter("nope", &out); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}
