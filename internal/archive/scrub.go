package archive

import "context"

// StripeHealth is the introspection record for one stripe (§6: "stripe
// reliability assurance and user introspection mechanism").
type StripeHealth struct {
	Object      string
	Stripe      int
	Missing     []int // nodes whose block is unreachable, absent, or corrupt
	Corrupt     []int // subset of Missing that failed its checksum (bit rot)
	Recoverable bool  // the surviving blocks still reconstruct the data
	// Margin is FirstFailure − len(Missing): how many further losses the
	// stripe is guaranteed to absorb. Negative or zero means the stripe is
	// at or past the initial failure point. Only meaningful when the store
	// was configured with the graph's measured FirstFailure.
	Margin int
	// Repaired lists the blocks the scrub rewrote onto healthy devices.
	Repaired []int
}

// ScrubReport aggregates a scrub pass.
type ScrubReport struct {
	Stripes        []StripeHealth
	BlocksRepaired int
	AtRisk         int // stripes with Margin <= 0 (when margin is enabled)
	Unrecoverable  int
}

// Scrub inspects every stripe of every object, reports each stripe's
// health, and — when repair is true — reconstructs missing blocks and
// rewrites them to their home devices (replaced drives are repopulated this
// way). Unrecoverable stripes are reported, never touched.
func (s *Store) Scrub(repair bool) (ScrubReport, error) {
	return s.ScrubCtx(context.Background(), repair)
}

// ScrubCtx is Scrub with cancellation: the pass checks ctx at every stripe
// boundary and returns ctx.Err() with the partial report, so a steward can
// bound scrub latency on a large store.
func (s *Store) ScrubCtx(ctx context.Context, repair bool) (ScrubReport, error) {
	var rep ScrubReport
	for _, obj := range s.List() {
		for st := 0; st < obj.Stripes; st++ {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			h, err := s.scrubStripe(obj.Name, st, repair)
			if err != nil {
				return rep, err
			}
			rep.Stripes = append(rep.Stripes, h)
			rep.BlocksRepaired += len(h.Repaired)
			if !h.Recoverable {
				rep.Unrecoverable++
			} else if s.cfg.FirstFailure > 0 && h.Margin <= 0 {
				rep.AtRisk++
			}
		}
	}
	return rep, nil
}

func (s *Store) scrubStripe(name string, st int, repair bool) (StripeHealth, error) {
	h := StripeHealth{Object: name, Stripe: st}
	blocks := make([][]byte, s.g.Total)
	for node := 0; node < s.g.Total; node++ {
		key := blockKey(name, st, node)
		if s.backend.Available(node, key) {
			framed, err := s.backend.Read(node, key)
			if err == nil {
				if b, ok := unframeBlock(framed); ok {
					blocks[node] = b
					continue
				}
				h.Corrupt = append(h.Corrupt, node)
			}
		}
		h.Missing = append(h.Missing, node)
	}
	if len(h.Missing) == 0 {
		h.Recoverable = true
		h.Margin = s.cfg.FirstFailure
		return h, nil
	}

	err := s.codec.Repair(blocks)
	h.Recoverable = err == nil
	if s.cfg.FirstFailure > 0 {
		h.Margin = s.cfg.FirstFailure - len(h.Missing)
	}
	if !h.Recoverable || !repair {
		return h, nil
	}
	for _, node := range h.Missing {
		if blocks[node] == nil {
			continue // a check block peeling never needed; leave it
		}
		if werr := s.backend.Write(node, blockKey(name, st, node), frameBlock(blocks[node])); werr != nil {
			continue // home device still dead; the next scrub retries
		}
		h.Repaired = append(h.Repaired, node)
	}
	return h, nil
}
