package archive

import (
	"context"
	"slices"

	"tornado/internal/repairbw"
)

// StripeHealth is the introspection record for one stripe (§6: "stripe
// reliability assurance and user introspection mechanism").
type StripeHealth struct {
	Object      string
	Stripe      int
	Missing     []int // nodes whose block is unreachable, absent, or corrupt
	Corrupt     []int // subset of Missing that failed its checksum (bit rot)
	Quarantined []int // nodes quarantined (excluded from Get planning) at scrub time
	Recoverable bool  // the surviving blocks still reconstruct the data
	// Margin is FirstFailure − len(Missing): how many further losses the
	// stripe is guaranteed to absorb. Negative or zero means the stripe is
	// at or past the initial failure point. Only meaningful when the store
	// was configured with the graph's measured FirstFailure.
	Margin int
	// Repaired lists the blocks the scrub rewrote onto healthy devices.
	Repaired []int
}

// ScrubReport aggregates a scrub pass.
type ScrubReport struct {
	Stripes          []StripeHealth
	BlocksRepaired   int
	CorruptFrames    int // frames that failed their checksum during the pass
	AtRisk           int // stripes with Margin <= 0 (when margin is enabled)
	Unrecoverable    int
	QuarantinedNodes []int // nodes quarantined at the end of the pass
	// Cost is the pass's repair-traffic bill: every byte the scrub read to
	// verify stripes and wrote to repair them (also recorded on the store's
	// repairbw.Meter under the Scrub cause).
	Cost repairbw.CostReport
}

// Scrub inspects every stripe of every object, reports each stripe's
// health, and — when repair is true — reconstructs missing blocks and
// rewrites them to their home devices (replaced drives are repopulated this
// way). Unrecoverable stripes are reported, never touched.
//
// Scrub is also the quarantine arbiter. Unlike Get, it reads quarantined
// nodes — the frame checksum makes the read safe, and the pass is how a
// node earns its way back: a node that serves at least one verified frame
// and zero corrupt ones over a full pass has its corruption count reset and,
// if quarantined, is readmitted to the data path. A node that keeps serving
// corrupt frames keeps its record and stays out. Outcomes are exported as
// obs metrics (archive.scrub.*) on the store's registry.
func (s *Store) Scrub(repair bool) (ScrubReport, error) {
	return s.ScrubCtx(context.Background(), repair)
}

// ScrubCtx is Scrub with cancellation: the pass checks ctx at every stripe
// boundary and returns ctx.Err() with the partial report, so a steward can
// bound scrub latency on a large store. A cancelled pass gathers no
// quarantine evidence (partial passes must not readmit nodes).
func (s *Store) ScrubCtx(ctx context.Context, repair bool) (ScrubReport, error) {
	s.mScrubPasses.Inc()
	var rep ScrubReport
	// Per-node evidence for the quarantine verdict: frames that verified
	// and frames that failed their checksum during this pass.
	pass := scrubPass{
		clean:   make([]int, s.g.Total),
		corrupt: make([]int, s.g.Total),
	}
	for _, obj := range s.List() {
		for st := 0; st < obj.Stripes; st++ {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			h, cost, err := s.scrubStripe(ctx, obj.Name, st, repair, &pass)
			rep.Cost.Add(cost)
			s.meter.Record(repairbw.Scrub, cost)
			if err != nil {
				return rep, err
			}
			rep.Stripes = append(rep.Stripes, h)
		}
	}
	// Second look at stripes the first sweep could not reconstruct: their
	// failure is often transient unavailability (a flapping node, a device
	// mid-replacement) that has passed by the end of the sweep. The partial
	// repair above already banked whatever peeling reached.
	if repair {
		var keys keyBuf
		for i, h := range rep.Stripes {
			if h.Recoverable {
				continue
			}
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			// Only re-scrub when the stripe has genuinely new information: a
			// node it was missing — beyond those the partial repair already
			// rewrote — now answers Available. Without that, the second look
			// would re-read the whole stripe (including stripes this same
			// pass just repaired onto a replaced device) only to fail or
			// no-op the same way, doubling the pass's repair traffic.
			if !s.secondLookWorthwhile(h, &keys) {
				continue
			}
			h2, cost, err := s.scrubStripe(ctx, h.Object, h.Stripe, repair, &pass)
			rep.Cost.Add(cost)
			s.meter.Record(repairbw.Scrub, cost)
			if err != nil {
				return rep, err
			}
			h2.Repaired = append(append([]int(nil), h.Repaired...), h2.Repaired...)
			rep.Stripes[i] = h2
		}
	}
	for _, h := range rep.Stripes {
		rep.BlocksRepaired += len(h.Repaired)
		rep.CorruptFrames += len(h.Corrupt)
		if !h.Recoverable {
			rep.Unrecoverable++
		} else if s.cfg.FirstFailure > 0 && h.Margin <= 0 {
			rep.AtRisk++
		}
	}
	s.noteScrubPass(pass)
	rep.QuarantinedNodes = s.Quarantined()
	s.mScrubRepaired.Add(int64(rep.BlocksRepaired))
	s.mScrubCorrupt.Add(int64(rep.CorruptFrames))
	s.mScrubUnrecov.Add(int64(rep.Unrecoverable))
	return rep, nil
}

// secondLookWorthwhile reports whether an unrecoverable stripe deserves the
// second-look re-scrub: some node it is missing — and that the first sweep
// did not itself repair — answers Available now, meaning the transient
// unavailability that defeated the sweep has passed.
func (s *Store) secondLookWorthwhile(h StripeHealth, keys *keyBuf) bool {
	keys.stripe(h.Object, h.Stripe)
	for _, node := range h.Missing {
		if slices.Contains(h.Repaired, node) {
			continue
		}
		if s.backend.Available(s.dev(node), keys.key(node)) {
			return true
		}
	}
	return false
}

// scrubStripe verifies one stripe, optionally repairing it, and returns its
// health along with the stripe's repair-traffic bill (every byte read to
// verify plus every byte written to repair).
func (s *Store) scrubStripe(ctx context.Context, name string, st int, repair bool, pass *scrubPass) (StripeHealth, repairbw.CostReport, error) {
	h := StripeHealth{Object: name, Stripe: st, Quarantined: s.Quarantined()}
	var cost repairbw.CostReport
	blocks := make([][]byte, s.g.Total)
	var keys keyBuf
	keys.stripe(name, st)
	for node := 0; node < s.g.Total; node++ {
		key := keys.key(node)
		if s.backend.Available(s.dev(node), key) {
			framed, err := s.readFramed(ctx, node, key, nil)
			if errIsCtx(err) {
				// A cancelled read is not evidence of a missing block; abort
				// the stripe so the pass reports ctx.Err(), not phantom damage.
				return h, cost, err
			}
			if err == nil {
				cost.BlocksRead++
				cost.BytesRead += int64(len(framed))
				// The payload aliases framed; it is only read by the codec
				// and copied by frameBlock before any repair write.
				if b, ok := unframeBlock(framed); ok {
					blocks[node] = b
					pass.clean[node]++
					continue
				}
				h.Corrupt = append(h.Corrupt, node)
				pass.corrupt[node]++
				s.noteCorrupt(node)
			}
		}
		h.Missing = append(h.Missing, node)
	}
	if len(h.Missing) == 0 {
		h.Recoverable = true
		h.Margin = s.cfg.FirstFailure
		return h, cost, nil
	}

	err := s.codec.Repair(blocks)
	h.Recoverable = err == nil
	if s.cfg.FirstFailure > 0 {
		h.Margin = s.cfg.FirstFailure - len(h.Missing)
	}
	if !repair {
		return h, cost, nil
	}
	// Even an unrecoverable stripe gets partial repair: every block the
	// peeling did reach is correct, and writing it back monotonically
	// shrinks the missing set — so when the transient unavailability that
	// defeated this pass clears, the stripe needs less to come back.
	for _, node := range h.Missing {
		if blocks[node] == nil {
			continue // peeling never reached it (or never needed to)
		}
		// Quarantined nodes are repaired too: the rewrite is what heals
		// at-rest damage, and the next pass's evidence decides readmission.
		if werr := s.writeFramed(ctx, node, keys.key(node), blocks[node]); werr != nil {
			continue // home device still dead; the next scrub retries
		}
		cost.BlocksWritten++
		cost.BytesWritten += s.frameSize()
		h.Repaired = append(h.Repaired, node)
	}
	return h, cost, nil
}
