package archive

import (
	"bytes"
	"errors"
	"testing"
)

func TestParallelPutGetRoundTrip(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	data := payload(12000, 41) // many stripes
	if err := s.PutParallel("obj", data, 4); err != nil {
		t.Fatal(err)
	}
	got, stats, err := s.GetParallel("obj", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("parallel round trip mismatch")
	}
	if stats.DevicesAccessed == 0 || stats.BlocksRead == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Interoperates with the serial path.
	serial, _, err := s.Get("obj")
	if err != nil || !bytes.Equal(serial, data) {
		t.Errorf("serial get of parallel put: %v", err)
	}
}

func TestParallelMatchesSerialStats(t *testing.T) {
	a := testStore(t, Config{BlockSize: 32})
	b := testStore(t, Config{BlockSize: 32})
	data := payload(6000, 42)
	if err := a.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	if err := b.PutParallel("obj", data, 4); err != nil {
		t.Fatal(err)
	}
	_, sa, err := a.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	_, sb, err := b.GetParallel("obj", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sa.BlocksRead != sb.BlocksRead || sa.DevicesAccessed != sb.DevicesAccessed {
		t.Errorf("stats diverge: serial %+v vs parallel %+v", sa, sb)
	}
}

func TestParallelWorkersOneFallsBack(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	data := payload(500, 43)
	if err := s.PutParallel("obj", data, 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.GetParallel("obj", 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("workers<=1 fallback: %v", err)
	}
}

func TestParallelDuplicateAndMissing(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if err := s.PutParallel("obj", payload(100, 44), 4); err != nil {
		t.Fatal(err)
	}
	if err := s.PutParallel("obj", payload(100, 44), 4); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, _, err := s.GetParallel("nope", 4); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
}

func TestParallelSurvivesFailures(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	data := payload(9000, 45)
	if err := s.PutParallel("obj", data, 4); err != nil {
		t.Fatal(err)
	}
	s.Devices()[1].Fail()
	s.Devices()[70].Fail()
	got, _, err := s.GetParallel("obj", 4)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("parallel reconstruction: %v", err)
	}
}
