package archive

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/device"
)

// midReadFailBackend fails a chosen device the moment the store first tries
// to read from it — after Available already said yes. This is the TOCTOU
// window every retrieval plan lives with: a drive that answered the
// availability probe can be dead by the time its block is fetched.
type midReadFailBackend struct {
	Backend
	devs    device.Array
	victim  int
	armed   bool
	tripped bool
}

func (b *midReadFailBackend) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	if b.armed && node == b.victim {
		b.armed = false
		b.tripped = true
		b.devs[b.victim].Fail()
	}
	return b.Backend.Read(ctx, node, key)
}

// TestGetMidReadDeviceFailure plants a device failure between the
// availability check and the read: the planned block set comes up short, and
// Get must degrade to peeling — falling back to the remaining reachable
// blocks and reconstructing the lost one — and still return bit-exact data.
func TestGetMidReadDeviceFailure(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	devs := device.NewArray(g.Total)
	mrf := &midReadFailBackend{Backend: NewArrayBackend(devs), devs: devs, victim: 0}
	s, err := NewWithBackend(g, mrf, Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	data := payload(1500, 3)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	mrf.armed = true
	got, stats, err := s.Get("obj")
	if err != nil {
		t.Fatalf("Get under mid-read failure: %v (stats %+v)", err, stats)
	}
	if !mrf.tripped {
		t.Fatal("trap never fired; node 0 was not in the retrieval plan")
	}
	if !bytes.Equal(got, data) {
		t.Error("mid-read failure corrupted the returned data")
	}
	if devs[0].State() != device.Failed {
		t.Fatal("victim device should be failed")
	}
	// The victim's block was never read; decoding needed the fallback pass
	// and reconstruction from parity — degradation, not denial.
	if stats.BlocksRead <= g.Data-1 {
		t.Errorf("BlocksRead = %d; the fallback pass should read beyond the minimal plan", stats.BlocksRead)
	}

	// The stripe now reports the dead node missing but recoverable, and a
	// repair scrub cannot repopulate it until the drive is replaced.
	rep, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rep.Stripes {
		if !h.Recoverable {
			t.Errorf("stripe %d unrecoverable after one device loss", h.Stripe)
		}
		if len(h.Missing) == 0 {
			t.Errorf("stripe %d reports nothing missing with a failed device", h.Stripe)
		}
	}
}

// flakyBackend fails every read of one node with ErrTransient a fixed
// number of times before letting it through — the shape of a network blip
// or an injector's transient read error.
type flakyBackend struct {
	Backend
	node     int
	failures int
	seen     int
}

func (b *flakyBackend) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	if node == b.node && b.seen < b.failures {
		b.seen++
		return nil, fmt.Errorf("flaky read of node %d: %w", node, ErrTransient)
	}
	return b.Backend.Read(ctx, node, key)
}

// TestGetRetriesTransientErrors: a read that fails transiently within the
// retry budget is retried and succeeds without touching parity; one that
// exhausts the budget degrades to reconstruction. Either way the bytes are
// exact.
func TestGetRetriesTransientErrors(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		failures int
		retries  int
	}{
		{"within budget", 2, 2},
		{"past budget", 10, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			devs := device.NewArray(g.Total)
			fb := &flakyBackend{Backend: NewArrayBackend(devs), node: 1}
			s, err := NewWithBackend(g, fb, Config{BlockSize: 64, Retries: tc.retries})
			if err != nil {
				t.Fatal(err)
			}
			data := payload(900, 4)
			if err := s.Put("obj", data); err != nil {
				t.Fatal(err)
			}
			fb.failures = tc.failures

			got, stats, err := s.Get("obj")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Error("transient faults corrupted the returned data")
			}
			if stats.Retries == 0 {
				t.Error("no retries recorded against a flaky backend")
			}
			if v := s.Metrics().Counter("archive.read.retries").Value(); v == 0 {
				t.Error("archive.read.retries metric not fed")
			}
		})
	}
}
