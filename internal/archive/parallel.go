package archive

import (
	"fmt"
	"runtime"
	"sync"
)

// PutParallel ingests an object with stripes encoded and written
// concurrently — the throughput path for multi-core hosts (each stripe is
// independent, so encoding parallelizes perfectly). Semantics match Put.
func (s *Store) PutParallel(name string, data []byte, workers int) error {
	if workers <= 1 {
		return s.Put(name, data)
	}
	s.mu.Lock()
	if _, ok := s.objects[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	obj := &Object{Name: name, Size: len(data)}
	s.objects[name] = obj
	s.mu.Unlock()

	cap := s.codec.Capacity()
	stripes := (len(data) + cap - 1) / cap
	if stripes == 0 {
		stripes = 1
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	errs := make(chan error, stripes)
	var wg sync.WaitGroup
	for st := 0; st < stripes; st++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(st int) {
			defer wg.Done()
			defer func() { <-sem }()
			lo := st * cap
			hi := min(lo+cap, len(data))
			blocks, err := s.codec.Encode(data[lo:hi])
			if err != nil {
				errs <- err
				return
			}
			for node, b := range blocks {
				_ = s.writeFramed(node, blockKey(name, st, node), b)
			}
		}(st)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		s.deleteObject(name)
		return err
	}
	s.mu.Lock()
	obj.Stripes = stripes
	s.mu.Unlock()
	return nil
}

// GetParallel retrieves an object with stripes reconstructed concurrently.
// Semantics match Get; stats are aggregated across stripes.
func (s *Store) GetParallel(name string, workers int) ([]byte, GetStats, error) {
	if workers <= 1 {
		return s.Get(name)
	}
	s.mu.Lock()
	obj, ok := s.objects[name]
	var size, stripes int
	if ok {
		size, stripes = obj.Size, obj.Stripes
	}
	s.mu.Unlock()
	var agg GetStats
	if !ok || (stripes == 0 && size > 0) {
		return nil, agg, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	cap := s.codec.Capacity()
	type result struct {
		payload []byte
		stats   GetStats
		touched map[int]bool
		err     error
	}
	results := make([]result, stripes)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for st := 0; st < stripes; st++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(st int) {
			defer wg.Done()
			defer func() { <-sem }()
			want := size - st*cap
			if want > cap {
				want = cap
			}
			touched := map[int]bool{}
			var stats GetStats
			payload, err := s.getStripe(name, st, want, touched, &stats)
			results[st] = result{payload: payload, stats: stats, touched: touched, err: err}
		}(st)
	}
	wg.Wait()

	out := make([]byte, 0, size)
	touched := map[int]bool{}
	for _, r := range results {
		if r.err != nil {
			return nil, agg, r.err
		}
		out = append(out, r.payload...)
		agg.BlocksRead += r.stats.BlocksRead
		agg.BlocksRepaired += r.stats.BlocksRepaired
		agg.CorruptBlocks += r.stats.CorruptBlocks
		agg.ReadRepairs += r.stats.ReadRepairs
		agg.Retries += r.stats.Retries
		for v := range r.touched {
			touched[v] = true
		}
	}
	agg.DevicesAccessed = len(touched)
	return out, agg, nil
}
