package archive

import (
	"bytes"
	"context"
)

// PutParallel ingests an object with stripes encoded and written
// concurrently.
//
// Deprecated: use PutStream with WithParallelism, which bounds memory to
// O(workers × stripe) and honors cancellation. PutParallel is a thin
// wrapper over it.
func (s *Store) PutParallel(name string, data []byte, workers int) error {
	if workers < 1 {
		workers = 1 // historical semantics: non-positive meant sequential
	}
	_, err := s.PutStream(context.Background(), name, bytes.NewReader(data), WithParallelism(workers))
	return err
}

// GetParallel retrieves an object with stripes reconstructed concurrently.
//
// Deprecated: use GetStream with WithParallelism, which streams stripes in
// order with bounded memory and honors cancellation. GetParallel is a thin
// wrapper over it.
func (s *Store) GetParallel(name string, workers int) ([]byte, GetStats, error) {
	if workers < 1 {
		workers = 1 // historical semantics: non-positive meant sequential
	}
	var buf bytes.Buffer
	_, stats, err := s.GetStream(context.Background(), name, &buf, WithParallelism(workers))
	if err != nil {
		return nil, stats, err
	}
	return buf.Bytes(), stats, nil
}
