package archive

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAA}, 4096)} {
		framed := frameBlock(payload)
		got, ok := unframeBlock(framed)
		if !ok {
			t.Fatalf("unframe rejected valid frame of %d bytes", len(payload))
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch")
		}
	}
}

func TestUnframeDetectsCorruption(t *testing.T) {
	framed := frameBlock([]byte("archival payload"))
	for bit := 0; bit < len(framed)*8; bit += 7 {
		tampered := append([]byte(nil), framed...)
		tampered[bit/8] ^= 1 << (bit % 8)
		if _, ok := unframeBlock(tampered); ok {
			t.Fatalf("single-bit flip at bit %d undetected", bit)
		}
	}
	if _, ok := unframeBlock([]byte{1, 2}); ok {
		t.Error("truncated frame accepted")
	}
	if _, ok := unframeBlock(nil); ok {
		t.Error("nil frame accepted")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		got, ok := unframeBlock(frameBlock(payload))
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGetSurvivesBitRot: corrupt stored blocks in place; the store must
// detect the rot, treat the blocks as erasures, and reconstruct.
func TestGetSurvivesBitRot(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	data := payload(900, 21)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Flip bits in three stored blocks directly on the devices.
	for _, node := range []int{2, 40, 90} {
		key := blockKey("obj", 0, node)
		framed, err := s.Devices()[node].Read(key)
		if err != nil {
			t.Fatal(err)
		}
		framed[10] ^= 0xFF
		if err := s.Devices()[node].Write(key, framed); err != nil {
			t.Fatal(err)
		}
	}
	got, stats, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("payload corrupted despite checksums")
	}
	if stats.CorruptBlocks == 0 {
		t.Error("corruption not counted")
	}
	t.Logf("get stats with bit rot: %+v", stats)
}

func TestScrubReportsCorruption(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64, FirstFailure: 4})
	if err := s.Put("obj", payload(300, 22)); err != nil {
		t.Fatal(err)
	}
	key := blockKey("obj", 0, 5)
	framed, _ := s.Devices()[5].Read(key)
	framed[0] ^= 1
	s.Devices()[5].Write(key, framed)

	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Stripes[0]
	if len(h.Corrupt) != 1 || h.Corrupt[0] != 5 {
		t.Errorf("Corrupt = %v", h.Corrupt)
	}
	if len(h.Repaired) == 0 {
		t.Error("scrub did not rewrite the rotted block")
	}
	// After repair the block must verify again.
	rep2, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Stripes[0].Corrupt) != 0 || len(rep2.Stripes[0].Missing) != 0 {
		t.Errorf("rot persists after repair: %+v", rep2.Stripes[0])
	}
}

func TestReadWriteBlock(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	data := payload(500, 23)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	b, err := s.ReadBlock("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 64 || !bytes.Equal(b, data[:64]) {
		t.Error("block content wrong")
	}
	// Out of range and missing cases.
	if _, err := s.ReadBlock("obj", 5, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("stripe oob: %v", err)
	}
	if _, err := s.ReadBlock("obj", 0, 200); !errors.Is(err, ErrNotFound) {
		t.Errorf("node oob: %v", err)
	}
	if _, err := s.ReadBlock("nope", 0, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown object: %v", err)
	}
	// A failed device's block is gone.
	s.Devices()[0].Fail()
	if _, err := s.ReadBlock("obj", 0, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("failed device: %v", err)
	}
	// WriteBlock restores it after replacement.
	s.Devices()[0].Replace()
	if err := s.WriteBlock("obj", 0, 0, b); err != nil {
		t.Fatal(err)
	}
	back, err := s.ReadBlock("obj", 0, 0)
	if err != nil || !bytes.Equal(back, b) {
		t.Errorf("restored block wrong: %v", err)
	}
	// Size validation.
	if err := s.WriteBlock("obj", 0, 0, []byte("short")); err == nil {
		t.Error("short block accepted")
	}
}

func TestStatAndLayout(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if _, err := s.Stat("nope"); !errors.Is(err, ErrNotFound) {
		t.Error("unknown Stat")
	}
	if err := s.Put("obj", payload(5000, 24)); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Stat("obj")
	if err != nil || obj.Size != 5000 || obj.Stripes != 4 {
		t.Errorf("Stat = %+v, %v", obj, err)
	}
	lay := s.Layout()
	if lay.BlockSize != 32 || lay.StripeCapacity != 48*32 || lay.NodesPerStripe != 96 || lay.DataNodes != 48 {
		t.Errorf("Layout = %+v", lay)
	}
}

func TestPutShell(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if err := s.PutShell("x", 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutShell("x", 100, 1); !errors.Is(err, ErrExists) {
		t.Error("duplicate shell accepted")
	}
	if err := s.PutShell("y", -1, 1); err == nil {
		t.Error("negative size accepted")
	}
	if err := s.PutShell("z", 1, 0); err == nil {
		t.Error("zero stripes accepted")
	}
	// A shell with all blocks written becomes retrievable.
	data := payload(100, 25)
	blocks, err := encodeFor(s, data)
	if err != nil {
		t.Fatal(err)
	}
	for node, b := range blocks {
		if err := s.WriteBlock("x", 0, node, b); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := s.Get("x")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("shell get: %v", err)
	}
}

// encodeFor encodes a payload with the store's codec parameters (test
// helper mirroring what a replica sender does).
func encodeFor(s *Store, data []byte) ([][]byte, error) {
	return s.codec.Encode(data)
}
