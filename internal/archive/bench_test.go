package archive

import (
	"bytes"
	"context"
	"io"
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/device"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(g, device.NewArray(g.Total), Config{BlockSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGetStreamSequential is the streaming read stripe loop: one
// 64-stripe object per op through the sequential path. Allocations must be
// per-call setup, not per-stripe — benchreport gates allocs/stripe on this
// same path.
func BenchmarkGetStreamSequential(b *testing.B) {
	s := benchStore(b)
	const stripes = 64
	data := payload(stripes*s.Layout().StripeCapacity, 1)
	if err := s.Put("obj", data); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.GetStream(ctx, "obj", io.Discard, WithParallelism(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutStreamSequential is the ingest stripe loop (object deleted
// each op so the store stays empty).
func BenchmarkPutStreamSequential(b *testing.B) {
	s := benchStore(b)
	const stripes = 16
	data := payload(stripes*s.Layout().StripeCapacity, 2)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	r := bytes.NewReader(data)
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		if _, err := s.PutStream(ctx, "obj", r, WithParallelism(1)); err != nil {
			b.Fatal(err)
		}
		if err := s.Delete("obj"); err != nil {
			b.Fatal(err)
		}
	}
}
