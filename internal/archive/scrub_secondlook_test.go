package archive

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/graph"
)

// pickPartialRepairCase finds a first-layer check node c (all left
// neighbors are data nodes) plus a data node d1 it covers and a data node
// d2 it does not: deleting d1, d2, and every other check block leaves a
// stripe where peeling recovers d1 through c but can never reach d2.
func pickPartialRepairCase(t *testing.T, g *graph.Graph) (c, d1, d2 int) {
	t.Helper()
	for r := g.Data; r < g.Total; r++ {
		nb := g.LeftNeighbors(r)
		if len(nb) < 2 {
			continue
		}
		allData := true
		covered := make([]bool, g.Data)
		for _, v := range nb {
			if !g.IsData(int(v)) {
				allData = false
				break
			}
			covered[v] = true
		}
		if !allData {
			continue
		}
		for d := 0; d < g.Data; d++ {
			if !covered[d] {
				return r, int(nb[0]), d
			}
		}
	}
	t.Fatal("no first-layer check with a non-covered data node in test graph")
	return 0, 0, 0
}

// TestScrubSecondLookSkipsSameForPassRepairs: when an unrecoverable stripe's
// only newly-available blocks are the ones this same pass just partially
// repaired, the second look must skip it — re-reading the whole stripe
// would double the pass's repair traffic only to fail identically.
func TestScrubSecondLookSkipsSamePassRepairs(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	devs := device.NewArray(g.Total)
	s, err := New(g, devs, Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("obj", payload(g.Data*64, 5)); err != nil {
		t.Fatal(err)
	}
	if s.List()[0].Stripes != 1 {
		t.Fatal("want a single-stripe object")
	}

	c, d1, d2 := pickPartialRepairCase(t, g)
	deleted := 0
	for node := 0; node < g.Total; node++ {
		if node == d1 || node == d2 || (!g.IsData(node) && node != c) {
			key := []byte(fmt.Sprintf("obj/0/%d", node))
			if err := devs[node].Delete(key); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	available := g.Total - deleted

	readsBefore := int64(0)
	for _, d := range devs {
		readsBefore += d.Stats().Reads
	}
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	readsAfter := int64(0)
	for _, d := range devs {
		readsAfter += d.Stats().Reads
	}

	h := rep.Stripes[0]
	if h.Recoverable {
		t.Fatalf("stripe recovered despite uncovered data loss: %+v", h)
	}
	if !slices.Contains(h.Repaired, d1) {
		t.Fatalf("partial repair did not bank d1=%d (repaired %v)", d1, h.Repaired)
	}
	// d1 is now Available again, so without the same-pass-repair filter the
	// second look would have re-read every surviving frame. One sweep reads
	// each available frame exactly once.
	if got := readsAfter - readsBefore; got != int64(available) {
		t.Errorf("scrub pass read %d frames, want exactly %d (one sweep; second look must skip)",
			got, available)
	}
	if rep.Cost.BlocksRead != available {
		t.Errorf("scrub cost counted %d reads, want %d", rep.Cost.BlocksRead, available)
	}
}

// flakyAvailBackend hides a set of nodes (unavailable, unreadable) until the
// first full sweep has passed — Available has been asked about every node
// once — then reveals them, modeling transient unavailability that clears
// mid-pass.
type flakyAvailBackend struct {
	Backend
	total  int
	hidden map[int]bool
	calls  int
}

func (f *flakyAvailBackend) Available(node int, key []byte) bool {
	f.calls++
	if f.calls <= f.total && f.hidden[node] {
		return false
	}
	return f.Backend.Available(node, key)
}

func (f *flakyAvailBackend) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	if f.calls <= f.total && f.hidden[node] {
		return nil, fmt.Errorf("flaky: node %d hidden", node)
	}
	return f.Backend.Read(ctx, node, key)
}

// TestScrubSecondLookRetriesNewAvailability: the converse — when a missing
// node the pass did NOT repair answers Available by the end of the sweep,
// the second look re-scrubs and recovers the stripe.
func TestScrubSecondLookRetriesNewAvailability(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	devs := device.NewArray(g.Total)
	fb := &flakyAvailBackend{Backend: NewArrayBackend(devs), total: g.Total, hidden: map[int]bool{}}
	s, err := NewWithBackend(g, fb, Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("obj", payload(g.Data*64, 6)); err != nil {
		t.Fatal(err)
	}

	// Hide two data nodes and every check node: with no checks visible the
	// first sweep cannot peel anything, so the stripe is unrecoverable —
	// until the flap clears at the end of the sweep.
	fb.hidden[0] = true
	fb.hidden[1] = true
	for r := g.Data; r < g.Total; r++ {
		fb.hidden[r] = true
	}
	fb.calls = 0

	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecoverable != 0 {
		t.Fatalf("second look did not rescue the stripe: %+v", rep.Stripes[0])
	}
	if h := rep.Stripes[0]; !h.Recoverable || len(h.Missing) != 0 {
		t.Errorf("post-second-look health = %+v, want fully recovered", h)
	}
}
