package archive

import (
	"encoding/binary"
	"hash/crc32"
)

// Archival storage must assume silent corruption (bit rot) as well as
// whole-device loss. Every block is therefore stored framed with a
// CRC-32C: a corrupted block is detected on read and treated as an
// erasure, which the graph's parity then repairs — detected corruption
// costs no more than a missing block.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameOverhead = 4

// frameBlock prepends the payload's checksum (see frameSum). The returned
// frame is a fresh buffer — the payload is copied, never aliased — so
// callers may frame a payload that itself aliases another frame (the
// read-repair write-back path does exactly that).
func frameBlock(payload []byte) []byte {
	out := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(out, frameSum(payload))
	copy(out[frameOverhead:], payload)
	return out
}

// frameAppend frames payload into buf (reusing its capacity, truncating
// its length) and returns the frame. It is frameBlock for hot loops: the
// streaming put path frames every block of every stripe through one
// per-worker buffer, relying on the Backend contract that Write does not
// retain the slice after returning.
func frameAppend(buf []byte, payload []byte) []byte {
	buf = append(buf[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf, frameSum(payload))
	return append(buf, payload...)
}

// frameSum is CRC-32C over the payload's length followed by its bytes. The
// length prefix closes a truncation blind spot of the bare CRC: a CRC does
// not encode length, and in the degenerate register state (checksum
// 0xFFFFFFFF) trailing zero bytes leave it unchanged, so a frame whose
// payload ended in zeros could be truncated without the checksum noticing
// (e.g. payload ff ff ff ff 00 and its 1-byte truncation share checksum
// ffffffff). With the length folded in, any truncation is a mismatch.
// The length prefix is folded in with a table-driven loop rather than
// crc32.Update over a stack buffer: Update leaks its slice parameter, so
// the buffer would escape and the read hot loop would allocate per frame.
// The loop computes the identical CRC over the same 8 big-endian bytes.
func frameSum(payload []byte) uint32 {
	reg := ^uint32(0)
	n := uint64(len(payload))
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(n >> uint(shift))
		reg = castagnoli[byte(reg)^b] ^ (reg >> 8)
	}
	return crc32.Update(^reg, castagnoli, payload)
}

// unframeBlock verifies and strips the checksum, reporting ok=false for
// truncated or corrupted frames.
//
// Aliasing contract: the returned payload ALIASES framed's backing array
// (framed[4:]); no copy is made. Callers that retain the payload must not
// mutate it — and must not let anything else mutate framed — for the
// payload's lifetime. Within this package the alias is safe because the
// codec only reads block contents (reconstruction allocates fresh buffers)
// and every write path re-frames through frameBlock, which copies. Callers
// that need an independent copy use unframeBlockCopy.
func unframeBlock(framed []byte) ([]byte, bool) {
	if len(framed) < frameOverhead {
		return nil, false
	}
	want := binary.BigEndian.Uint32(framed)
	payload := framed[frameOverhead:]
	if frameSum(payload) != want {
		return nil, false
	}
	return payload, true
}

// unframeBlockCopy is unframeBlock for payloads that outlive the framed
// buffer or cross an ownership boundary: the payload is copied, so later
// mutation of framed (e.g. a backend reusing its read buffer) cannot
// corrupt it.
func unframeBlockCopy(framed []byte) ([]byte, bool) {
	payload, ok := unframeBlock(framed)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), payload...), true
}
