package archive

import (
	"encoding/binary"
	"hash/crc32"
)

// Archival storage must assume silent corruption (bit rot) as well as
// whole-device loss. Every block is therefore stored framed with a
// CRC-32C: a corrupted block is detected on read and treated as an
// erasure, which the graph's parity then repairs — detected corruption
// costs no more than a missing block.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameOverhead = 4

// frameBlock prepends the payload's CRC-32C.
func frameBlock(payload []byte) []byte {
	out := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(out, crc32.Checksum(payload, castagnoli))
	copy(out[frameOverhead:], payload)
	return out
}

// unframeBlock verifies and strips the checksum, reporting ok=false for
// truncated or corrupted frames.
func unframeBlock(framed []byte) ([]byte, bool) {
	if len(framed) < frameOverhead {
		return nil, false
	}
	want := binary.BigEndian.Uint32(framed)
	payload := framed[frameOverhead:]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, false
	}
	return payload, true
}
