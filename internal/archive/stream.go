package archive

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// DefaultStreamParallelism is the stripe pipeline width PutStream and
// GetStream use when no WithParallelism option is given: enough overlap to
// hide per-stripe backend latency without ballooning the bounded buffer
// pool.
const DefaultStreamParallelism = 4

// streamOptions tunes the streaming data path.
type streamOptions struct {
	parallelism int
}

// normalize replaces zero fields with the exported Default* values and
// clamps the pipeline width to the host (the internal/sim option idiom).
func (o streamOptions) normalize() streamOptions {
	if o.parallelism <= 0 {
		o.parallelism = DefaultStreamParallelism
	}
	if max := runtime.GOMAXPROCS(0); o.parallelism > max {
		o.parallelism = max
	}
	return o
}

// StreamOption configures PutStream/GetStream.
type StreamOption func(*streamOptions)

// WithParallelism sets how many stripes may be in flight concurrently.
// Peak memory is O(parallelism × stripe); 1 selects the sequential path
// (no pipeline goroutines at all). Zero or negative means
// DefaultStreamParallelism; values above GOMAXPROCS are clamped.
func WithParallelism(n int) StreamOption {
	return func(o *streamOptions) { o.parallelism = n }
}

func applyStreamOptions(opts []StreamOption) streamOptions {
	var o streamOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o.normalize()
}

// PutStream ingests an object of unknown size from r, striping it as it
// streams: stripe payloads are read sequentially and encoded + written
// through a bounded worker pipeline, so peak memory is O(parallelism ×
// stripe) regardless of object size. The transactional property is
// preserved — on error (including cancellation) the partial object is
// rolled back. It returns the number of payload bytes stored.
//
// This is the data path's write API of record; Put/PutParallel/PutReader
// are wrappers over it.
func (s *Store) PutStream(ctx context.Context, name string, r io.Reader, opts ...StreamOption) (int, error) {
	o := applyStreamOptions(opts)
	obj, err := s.reserve(name, 0)
	if err != nil {
		return 0, err
	}
	total, stripes, err := s.putStream(ctx, name, r, o)
	if err != nil {
		s.discardBlocks(ctx, name, stripes)
		s.deleteObject(name)
		return 0, err
	}
	s.mu.Lock()
	obj.Size = total
	obj.Stripes = stripes
	s.mu.Unlock()
	return total, nil
}

// putStream runs the bounded ingest pipeline, returning the bytes read and
// the number of stripes that may have blocks written (for rollback).
func (s *Store) putStream(ctx context.Context, name string, r io.Reader, o streamOptions) (total, stripes int, err error) {
	cap := s.codec.Capacity()
	if o.parallelism == 1 {
		// Sequential fast path: one scratch, one stripe buffer, no
		// goroutines — the steady-state stripe loop the bench gate
		// measures.
		sc := s.newScratch()
		buf := make([]byte, cap)
		for {
			if err := ctx.Err(); err != nil {
				return total, stripes + 1, err
			}
			n, rerr := io.ReadFull(r, buf)
			eof := rerr == io.EOF || rerr == io.ErrUnexpectedEOF
			if rerr != nil && !eof {
				return total, stripes + 1, fmt.Errorf("archive: stream %q: %w", name, rerr)
			}
			if n > 0 || stripes == 0 {
				if _, perr := s.putStripe(ctx, name, stripes, buf[:n], sc); perr != nil {
					return total, stripes + 1, perr
				}
				stripes++
				total += n
			}
			if eof {
				return total, stripes, nil
			}
		}
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		st  int
		buf []byte // payload slice (length = stripe payload)
	}
	jobs := make(chan job)
	// The buffer pool bounds in-flight payload memory: parallelism buffers
	// total, recycled from worker back to reader.
	pool := make(chan []byte, o.parallelism)
	for i := 0; i < o.parallelism; i++ {
		pool <- make([]byte, cap)
	}
	errc := make(chan error, o.parallelism)
	var wg sync.WaitGroup
	for i := 0; i < o.parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := s.newScratch()
			for j := range jobs {
				if pctx.Err() != nil {
					// Drain cheaply after a failure; buffers still recycle
					// so the reader never blocks on a dead pipeline.
					pool <- j.buf[:cap]
					continue
				}
				_, perr := s.putStripe(pctx, name, j.st, j.buf, sc)
				pool <- j.buf[:cap]
				if perr != nil {
					errc <- perr
					cancel()
				}
			}
		}()
	}

	readErr := func() error {
		for {
			if err := pctx.Err(); err != nil {
				return err
			}
			var buf []byte
			select {
			case buf = <-pool:
			case <-pctx.Done():
				return pctx.Err()
			}
			n, rerr := io.ReadFull(r, buf)
			eof := rerr == io.EOF || rerr == io.ErrUnexpectedEOF
			if rerr != nil && !eof {
				pool <- buf[:cap]
				return fmt.Errorf("archive: stream %q: %w", name, rerr)
			}
			if n > 0 || stripes == 0 {
				jobs <- job{st: stripes, buf: buf[:n]}
				stripes++
				total += n
			} else {
				pool <- buf[:cap]
			}
			if eof {
				return nil
			}
		}
	}()
	close(jobs)
	wg.Wait()
	close(errc)
	for werr := range errc {
		return total, stripes, werr
	}
	if readErr != nil {
		// Prefer a worker error (the root cause) over the secondary ctx
		// error the reader saw after cancel; none arrived, so report this.
		return total, stripes, readErr
	}
	return total, stripes, nil
}

// GetStream streams an object to w stripe by stripe, reconstructing
// stripes through a bounded worker pipeline and delivering them in order;
// peak memory is O(parallelism × stripe). It returns the bytes written and
// the aggregated retrieval stats.
//
// This is the data path's read API of record; Get/GetParallel/GetWriter
// are wrappers over it.
func (s *Store) GetStream(ctx context.Context, name string, w io.Writer, opts ...StreamOption) (int, GetStats, error) {
	o := applyStreamOptions(opts)
	size, stripes, err := s.lookup(name)
	var stats GetStats
	if err != nil {
		return 0, stats, err
	}
	cap := s.codec.Capacity()
	if o.parallelism == 1 || stripes <= 1 {
		sc := s.newScratch()
		written := 0
		for st := 0; st < stripes; st++ {
			if err := ctx.Err(); err != nil {
				return written, stats, err
			}
			want := min(size-st*cap, cap)
			payload, err := s.getStripe(ctx, name, st, want, sc, &stats)
			if err != nil {
				return written, stats, err
			}
			n, werr := w.Write(payload)
			written += n
			if werr != nil {
				return written, stats, fmt.Errorf("archive: stream %q: %w", name, werr)
			}
		}
		stats.DevicesAccessed = len(sc.touched)
		return written, stats, nil
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		payload []byte // recycled via pool after the in-order write
		stats   GetStats
		touched map[int]bool
		err     error
	}
	results := make(chan struct {
		st int
		result
	}, o.parallelism)
	// Buffer pool: parallelism payload buffers bound in-flight memory. The
	// stripe the writer is waiting on always holds (or is about to
	// acquire) a buffer, so the pipeline cannot deadlock.
	pool := make(chan []byte, o.parallelism)
	for i := 0; i < o.parallelism; i++ {
		pool <- make([]byte, 0, cap)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < o.parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := s.newScratch()
			for st := range jobs {
				var buf []byte
				select {
				case buf = <-pool:
				case <-pctx.Done():
					results <- struct {
						st int
						result
					}{st, result{err: pctx.Err()}}
					continue
				}
				want := min(size-st*cap, cap)
				var rstats GetStats
				payload, gerr := s.getStripe(pctx, name, st, want, sc, &rstats)
				if gerr != nil {
					pool <- buf[:0]
					results <- struct {
						st int
						result
					}{st, result{stats: rstats, err: gerr}}
					continue
				}
				buf = append(buf[:0], payload...)
				results <- struct {
					st int
					result
				}{st, result{payload: buf, stats: rstats, touched: sc.touched}}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for st := 0; st < stripes; st++ {
			select {
			case jobs <- st:
			case <-pctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	written := 0
	next := 0
	pending := map[int]result{}
	touched := map[int]bool{}
	var firstErr error
	flushStats := func(r result) {
		stats.BlocksRead += r.stats.BlocksRead
		stats.BlocksRepaired += r.stats.BlocksRepaired
		stats.CorruptBlocks += r.stats.CorruptBlocks
		stats.ReadRepairs += r.stats.ReadRepairs
		stats.Retries += r.stats.Retries
		stats.Repair.Add(r.stats.Repair)
		for v := range r.touched {
			touched[v] = true
		}
	}
	for r := range results {
		pending[r.st] = r.result
		for {
			pr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			flushStats(pr)
			if pr.err != nil {
				if firstErr == nil {
					firstErr = pr.err
					cancel()
				}
			} else if firstErr == nil {
				n, werr := w.Write(pr.payload)
				written += n
				if werr != nil {
					firstErr = fmt.Errorf("archive: stream %q: %w", name, werr)
					cancel()
				}
			}
			if pr.payload != nil {
				pool <- pr.payload[:0]
			}
			next++
		}
	}
	// Stripes that never reached `next` (pipeline cancelled): account their
	// stats and recycle nothing further.
	for _, pr := range pending {
		flushStats(pr)
		if firstErr == nil && pr.err != nil {
			firstErr = pr.err
		}
	}
	stats.DevicesAccessed = len(touched)
	if firstErr != nil {
		return written, stats, firstErr
	}
	return written, stats, nil
}

// PutReader ingests an object of unknown size from r.
//
// Deprecated: use PutStream, which adds cancellation and a bounded
// parallel pipeline. PutReader is PutStream with context.Background() and
// sequential processing.
func (s *Store) PutReader(name string, r io.Reader) (int, error) {
	return s.PutStream(context.Background(), name, r, WithParallelism(1))
}

// GetWriter streams an object to w stripe by stripe.
//
// Deprecated: use GetStream, which adds cancellation and a bounded
// parallel pipeline. GetWriter is GetStream with context.Background() and
// sequential processing.
func (s *Store) GetWriter(name string, w io.Writer) (int, GetStats, error) {
	return s.GetStream(context.Background(), name, w, WithParallelism(1))
}

// errIsCtx reports whether err is a context cancellation/deadline error.
func errIsCtx(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
