package archive

import (
	"fmt"
	"io"
)

// PutReader ingests an object of unknown size from r, striping it as it
// streams: each stripe's payload is read, encoded, and written before the
// next is touched, so memory stays bounded by one stripe regardless of
// object size. The transactional property is preserved — on error the
// partial object is deleted.
func (s *Store) PutReader(name string, r io.Reader) (int, error) {
	s.mu.Lock()
	if _, ok := s.objects[name]; ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrExists, name)
	}
	obj := &Object{Name: name}
	s.objects[name] = obj
	s.mu.Unlock()

	cap := s.codec.Capacity()
	buf := make([]byte, cap)
	total, stripes := 0, 0
	for {
		n, err := io.ReadFull(r, buf)
		eof := err == io.EOF || err == io.ErrUnexpectedEOF
		if err != nil && !eof {
			s.deleteObject(name)
			return total, fmt.Errorf("archive: stream %q: %w", name, err)
		}
		if n > 0 || stripes == 0 {
			blocks, encErr := s.codec.Encode(buf[:n])
			if encErr != nil {
				s.deleteObject(name)
				return total, encErr
			}
			for node, b := range blocks {
				_ = s.writeFramed(node, blockKey(name, stripes, node), b)
			}
			stripes++
			total += n
		}
		if eof {
			break
		}
	}
	s.mu.Lock()
	obj.Size = total
	obj.Stripes = stripes
	s.mu.Unlock()
	return total, nil
}

// GetWriter streams an object to w stripe by stripe, reconstructing each
// stripe independently; memory stays bounded by one stripe. It returns the
// bytes written and the aggregated retrieval stats.
func (s *Store) GetWriter(name string, w io.Writer) (int, GetStats, error) {
	s.mu.Lock()
	obj, ok := s.objects[name]
	var size, stripes int
	if ok {
		size, stripes = obj.Size, obj.Stripes
	}
	s.mu.Unlock()
	var stats GetStats
	if !ok || (stripes == 0 && size > 0) {
		return 0, stats, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	cap := s.codec.Capacity()
	touched := map[int]bool{}
	written := 0
	for st := 0; st < stripes; st++ {
		want := size - st*cap
		if want > cap {
			want = cap
		}
		payload, err := s.getStripe(name, st, want, touched, &stats)
		if err != nil {
			return written, stats, err
		}
		n, err := w.Write(payload)
		written += n
		if err != nil {
			return written, stats, fmt.Errorf("archive: stream %q: %w", name, err)
		}
	}
	stats.DevicesAccessed = len(touched)
	return written, stats, nil
}
