package archive

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/graph"
)

func testStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, device.NewArray(g.Total), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func payload(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 0))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestNewValidation(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, device.NewArray(5), Config{}); err == nil {
		t.Error("device count mismatch accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t, Config{BlockSize: 64})
	data := payload(1000, 1)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, stats, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	if stats.DevicesAccessed == 0 || stats.BlocksRead == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Guided retrieval with everything healthy reads only data blocks.
	if stats.DevicesAccessed > s.Graph().Data {
		t.Errorf("accessed %d devices, guided retrieval should need <= %d", stats.DevicesAccessed, s.Graph().Data)
	}
}

func TestPutMultiStripe(t *testing.T) {
	s := testStore(t, Config{BlockSize: 16}) // capacity 768/stripe
	data := payload(3000, 2)                 // 4 stripes
	if err := s.Put("big", data); err != nil {
		t.Fatal(err)
	}
	objs := s.List()
	if len(objs) != 1 || objs[0].Stripes != 4 || objs[0].Size != 3000 {
		t.Fatalf("List = %+v", objs)
	}
	got, _, err := s.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("multi-stripe round trip mismatch")
	}
}

func TestPutEmptyObject(t *testing.T) {
	s := testStore(t, Config{BlockSize: 16})
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes", len(got))
	}
}

func TestPutDuplicate(t *testing.T) {
	s := testStore(t, Config{})
	if err := s.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("y")); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := testStore(t, Config{})
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestGetSurvivesDeviceFailures(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	data := payload(900, 3)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Fail 4 random devices — a screened tornado graph tolerates small
	// losses overwhelmingly often; retry seeds if the draw is unlucky.
	s.Devices().FailRandom(4, rand.New(rand.NewPCG(4, 4)))
	got, stats, err := s.Get("obj")
	if err != nil {
		t.Fatalf("Get after failures: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data corrupted by reconstruction")
	}
	t.Logf("get stats after 4 failures: %+v", stats)
}

func TestGetReportsDataLoss(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if err := s.Put("obj", payload(100, 5)); err != nil {
		t.Fatal(err)
	}
	// Fail everything: clearly unrecoverable.
	for _, d := range s.Devices() {
		d.Fail()
	}
	if _, _, err := s.Get("obj"); !errors.Is(err, ErrDataLoss) {
		t.Errorf("err = %v, want ErrDataLoss", err)
	}
}

func TestDelete(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if err := s.Put("obj", payload(100, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if len(s.List()) != 0 {
		t.Error("object still listed")
	}
	if _, _, err := s.Get("obj"); !errors.Is(err, ErrNotFound) {
		t.Error("object still retrievable")
	}
	if err := s.Delete("obj"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	// Devices must no longer hold blocks.
	for _, d := range s.Devices() {
		if d.Len() != 0 {
			t.Fatalf("device %d still holds %d blocks", d.ID(), d.Len())
		}
	}
}

func TestUnguidedRetrievalReadsEverything(t *testing.T) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, device.NewArray(g.Total), Config{BlockSize: 32, NaiveRetrieval: true})
	if err != nil {
		t.Fatal(err)
	}
	data := payload(500, 7)
	if err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if stats.DevicesAccessed != g.Total {
		t.Errorf("unguided accessed %d devices, want %d", stats.DevicesAccessed, g.Total)
	}
}

func TestScrubHealthy(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32, FirstFailure: 5})
	if err := s.Put("a", payload(100, 8)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stripes) != 1 || rep.Unrecoverable != 0 || rep.AtRisk != 0 {
		t.Fatalf("report = %+v", rep)
	}
	h := rep.Stripes[0]
	if !h.Recoverable || len(h.Missing) != 0 || h.Margin != 5 {
		t.Errorf("health = %+v", h)
	}
}

func TestScrubRepairsAfterReplacement(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32, FirstFailure: 5})
	data := payload(600, 9)
	if err := s.Put("a", data); err != nil {
		t.Fatal(err)
	}
	// A drive dies and is replaced with a blank one.
	s.Devices()[10].Fail()
	s.Devices()[10].Replace()

	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRepaired == 0 {
		t.Fatal("scrub repaired nothing")
	}
	// After repair the stripe is whole again: a fresh scrub sees nothing
	// missing.
	rep2, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rep2.Stripes {
		if len(h.Missing) != 0 {
			t.Errorf("stripe %+v still missing blocks after repair", h)
		}
	}
	got, _, err := s.Get("a")
	if err != nil || !bytes.Equal(got, data) {
		t.Error("object damaged by scrub")
	}
}

func TestScrubMarginCountsRisk(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32, FirstFailure: 5})
	if err := s.Put("a", payload(100, 10)); err != nil {
		t.Fatal(err)
	}
	// Take 5 devices down (offline, not failed): margin hits 0 → at risk,
	// assuming the stripe is still recoverable.
	for i := 0; i < 5; i++ {
		s.Devices()[i].SetOffline()
	}
	rep, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecoverable == 0 && rep.AtRisk == 0 {
		t.Errorf("5 missing with first-failure 5: report = %+v", rep)
	}
}

func TestScrubReportsUnrecoverable(t *testing.T) {
	s := testStore(t, Config{BlockSize: 32})
	if err := s.Put("a", payload(100, 11)); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Devices() {
		d.Fail()
	}
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecoverable != 1 {
		t.Errorf("report = %+v", rep)
	}
}

// Sanity: a store built over a mirrored graph loses data exactly when a
// pair dies — the archive semantics mirror the analysis.
func TestArchiveOnMirroredGraph(t *testing.T) {
	b := graph.NewBuilder(4)
	r := b.AddLevel(0, 4, 4)
	g := b.Graph()
	for i := 0; i < 4; i++ {
		g.SetNeighbors(r+i, []int{i})
	}
	s, err := New(g, device.NewArray(8), Config{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	data := payload(32, 12)
	if err := s.Put("m", data); err != nil {
		t.Fatal(err)
	}
	s.Devices()[1].Fail() // one of a pair: fine
	if got, _, err := s.Get("m"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("single failure: %v", err)
	}
	s.Devices()[5].Fail() // its mirror: data loss
	if _, _, err := s.Get("m"); !errors.Is(err, ErrDataLoss) {
		t.Errorf("dead pair: err = %v, want ErrDataLoss", err)
	}
}
