package serve

import (
	"context"
	"errors"
	"time"

	"tornado/internal/archive"
)

// pickPrimary selects the replica with the least repair pressure — the one
// whose reads are currently paying the least amplification for damage —
// rotating by stripe index among replicas tied at the minimum so healthy
// replicas still share steady-state load.
func (s *Service) pickPrimary(st int) int {
	minP := s.stores[0].RepairPressure()
	ties := 1
	for _, store := range s.stores[1:] {
		switch p := store.RepairPressure(); {
		case p < minP:
			minP, ties = p, 1
		case p == minP:
			ties++
		}
	}
	pick := st % ties
	for i, store := range s.stores {
		if store.RepairPressure() == minP {
			if pick == 0 {
				return i
			}
			pick--
		}
	}
	return st % len(s.stores) // pressure moved underneath us; any replica works
}

// readStripeHedged reads one stripe, racing replicas when the first is
// slow: the primary (the lowest-repair-pressure replica, rotated by stripe
// index among equals) gets HedgeDelay to answer; then the next replica is
// launched, and so on. The first success wins and every other in-flight read is
// cancelled. Errors only surface once all replicas have failed, so a
// degraded or unrecoverable replica is masked by any healthy one.
func (s *Service) readStripeHedged(ctx context.Context, k string, st int) ([]byte, archive.GetStats, error) {
	if len(s.stores) == 1 || s.cfg.HedgeDelay < 0 {
		return s.stores[0].ReadStripe(ctx, k, st)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // losers are cancelled the moment a winner returns

	type result struct {
		payload []byte
		stats   archive.GetStats
		err     error
		replica int
	}
	// Buffered to the replica count: a losing goroutine can always deliver
	// its (cancelled) result and exit — no goroutine outlives the call by
	// more than its own cancelled read.
	results := make(chan result, len(s.stores))
	launch := func(i int) {
		go func() {
			p, stats, err := s.stores[i].ReadStripe(hctx, k, st)
			results <- result{p, stats, err, i}
		}()
	}

	primary := s.pickPrimary(st)
	launched := 1
	launch(primary)
	timer := time.NewTimer(s.cfg.HedgeDelay)
	defer timer.Stop()

	var firstErr error
	failed := 0
	for {
		select {
		case r := <-results:
			if r.err == nil {
				if r.replica != primary {
					s.mHedgeWins.Inc()
				}
				return r.payload, r.stats, nil
			}
			if firstErr == nil && !errIsCtx(r.err) {
				firstErr = r.err
			}
			failed++
			if failed == len(s.stores) {
				if firstErr == nil {
					firstErr = r.err
				}
				return nil, archive.GetStats{}, firstErr
			}
			if launched < len(s.stores) {
				// A failure is a stronger signal than a timeout: hedge now.
				s.mHedges.Inc()
				launch((primary + launched) % len(s.stores))
				launched++
			}
		case <-timer.C:
			if launched < len(s.stores) {
				s.mHedges.Inc()
				launch((primary + launched) % len(s.stores))
				launched++
				timer.Reset(s.cfg.HedgeDelay)
			}
		case <-ctx.Done():
			return nil, archive.GetStats{}, ctx.Err()
		}
	}
}

func errIsCtx(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
