package serve

import (
	"context"
	"errors"
	"time"

	"tornado/internal/archive"
)

// readStripeHedged reads one stripe, racing replicas when the first is
// slow: the primary (rotated by stripe index so replicas share steady-state
// load) gets HedgeDelay to answer; then the next replica is launched, and
// so on. The first success wins and every other in-flight read is
// cancelled. Errors only surface once all replicas have failed, so a
// degraded or unrecoverable replica is masked by any healthy one.
func (s *Service) readStripeHedged(ctx context.Context, k string, st int) ([]byte, archive.GetStats, error) {
	if len(s.stores) == 1 || s.cfg.HedgeDelay < 0 {
		return s.stores[0].ReadStripe(ctx, k, st)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // losers are cancelled the moment a winner returns

	type result struct {
		payload []byte
		stats   archive.GetStats
		err     error
		replica int
	}
	// Buffered to the replica count: a losing goroutine can always deliver
	// its (cancelled) result and exit — no goroutine outlives the call by
	// more than its own cancelled read.
	results := make(chan result, len(s.stores))
	launch := func(i int) {
		go func() {
			p, stats, err := s.stores[i].ReadStripe(hctx, k, st)
			results <- result{p, stats, err, i}
		}()
	}

	primary := st % len(s.stores)
	launched := 1
	launch(primary)
	timer := time.NewTimer(s.cfg.HedgeDelay)
	defer timer.Stop()

	var firstErr error
	failed := 0
	for {
		select {
		case r := <-results:
			if r.err == nil {
				if r.replica != primary {
					s.mHedgeWins.Inc()
				}
				return r.payload, r.stats, nil
			}
			if firstErr == nil && !errIsCtx(r.err) {
				firstErr = r.err
			}
			failed++
			if failed == len(s.stores) {
				if firstErr == nil {
					firstErr = r.err
				}
				return nil, archive.GetStats{}, firstErr
			}
			if launched < len(s.stores) {
				// A failure is a stronger signal than a timeout: hedge now.
				s.mHedges.Inc()
				launch((primary + launched) % len(s.stores))
				launched++
			}
		case <-timer.C:
			if launched < len(s.stores) {
				s.mHedges.Inc()
				launch((primary + launched) % len(s.stores))
				launched++
				timer.Reset(s.cfg.HedgeDelay)
			}
		case <-ctx.Done():
			return nil, archive.GetStats{}, ctx.Err()
		}
	}
}

func errIsCtx(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
