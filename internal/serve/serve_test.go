package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/obs"
)

// testGraph builds one graph; replicas share it so layouts match.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testService builds a service over n array-backed replicas.
func testService(t *testing.T, n int, cfg Config) (*Service, []*archive.Store) {
	t.Helper()
	g := testGraph(t)
	stores := make([]*archive.Store, n)
	for i := range stores {
		s, err := archive.New(g, device.NewArray(g.Total), archive.Config{BlockSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	svc, err := New(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, stores
}

func testPayload(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 0))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

// TestTenantIsolation: two tenants use the same object name with different
// bytes; each sees only its own data and namespace, and deleting one
// tenant's object leaves the other's untouched.
func TestTenantIsolation(t *testing.T) {
	svc, _ := testService(t, 1, Config{})
	ctx := context.Background()
	a := testPayload(5000, 1)
	b := testPayload(5000, 2)
	if _, err := svc.Put(ctx, "alice", "report", bytes.NewReader(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Put(ctx, "bob", "report", bytes.NewReader(b)); err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if _, err := svc.Get(ctx, "alice", "report", &bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Get(ctx, "bob", "report", &bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), a) || !bytes.Equal(bufB.Bytes(), b) {
		t.Fatal("tenants see each other's bytes")
	}
	objsA, err := svc.List("alice")
	if err != nil || len(objsA) != 1 || objsA[0].Name != "report" {
		t.Fatalf("List(alice) = %+v, %v", objsA, err)
	}
	if err := svc.Delete(ctx, "alice", "report"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Stat(ctx, "alice", "report"); !errors.Is(err, archive.ErrNotFound) {
		t.Errorf("alice's object survives delete: %v", err)
	}
	var again bytes.Buffer
	if _, err := svc.Get(ctx, "bob", "report", &again); err != nil || !bytes.Equal(again.Bytes(), b) {
		t.Errorf("bob's object damaged by alice's delete: %v", err)
	}
}

// TestFixedTenantSet: with Tenants configured, others are refused.
func TestFixedTenantSet(t *testing.T) {
	svc, _ := testService(t, 1, Config{Tenants: []string{"alice"}})
	ctx := context.Background()
	if _, err := svc.Put(ctx, "alice", "x", strings.NewReader("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Put(ctx, "mallory", "x", strings.NewReader("hi")); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant admitted: %v", err)
	}
	if _, err := svc.Put(ctx, "a/b", "x", strings.NewReader("hi")); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("tenant with '/' admitted: %v", err)
	}
}

// gateWriter blocks the first Write until its gate closes, pinning a Get
// inflight.
type gateWriter struct {
	gate    <-chan struct{}
	entered chan<- struct{}
	once    sync.Once
	buf     bytes.Buffer
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.gate
	})
	return g.buf.Write(p)
}

// TestAdmissionBackpressure: MaxInflight=1/MaxQueue=1 admits one request,
// queues one, and sheds the third with ErrOverloaded; the queued request
// proceeds once the slot frees.
func TestAdmissionBackpressure(t *testing.T) {
	svc, _ := testService(t, 1, Config{MaxInflight: 1, MaxQueue: 1})
	ctx := context.Background()
	data := testPayload(2000, 3)
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	entered := make(chan struct{})
	gw := &gateWriter{gate: gate, entered: entered}
	firstDone := make(chan error, 1)
	go func() {
		_, err := svc.Get(ctx, "t", "obj", gw)
		firstDone <- err
	}()
	<-entered // request 1 holds the only slot

	secondDone := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		_, err := svc.Get(ctx, "t", "obj", &buf)
		secondDone <- err
	}()
	// Wait until request 2 is actually queued, then request 3 must shed.
	tn, err := svc.tenantFor("t")
	if err != nil {
		t.Fatal(err)
	}
	for tn.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var buf bytes.Buffer
	if _, err := svc.Get(ctx, "t", "obj", &buf); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third request not shed: %v", err)
	}
	if svc.metrics.Counter("serve.overloaded").Value() == 0 {
		t.Error("overload not counted")
	}

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if err := <-secondDone; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gw.buf.Bytes(), data) {
		t.Error("gated read returned wrong bytes")
	}
	// Admission also applies per tenant: another tenant is unaffected
	// while this one is saturated.
	if _, err := svc.Put(ctx, "other", "obj", bytes.NewReader(data)); err != nil {
		t.Errorf("second tenant throttled by first: %v", err)
	}
}

// blockingBackend parks every Read until the request context dies,
// modeling a wedged replica; Writes pass through so Puts replicate.
type blockingBackend struct {
	archive.Backend
	mu      sync.Mutex
	blocked int
}

func (b *blockingBackend) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	b.mu.Lock()
	b.blocked++
	b.mu.Unlock()
	<-ctx.Done()
	return nil, ctx.Err()
}

func (b *blockingBackend) blockedReads() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.blocked
}

// TestHedgingMasksSlowReplica: replica 0 wedges on read; the hedge races
// replica 1 and the Get succeeds bit-exact. The loser's read is cancelled
// — no goroutine may outlive the request.
func TestHedgingMasksSlowReplica(t *testing.T) {
	g := testGraph(t)
	slow := &blockingBackend{Backend: archive.NewArrayBackend(device.NewArray(g.Total))}
	s0, err := archive.NewWithBackend(g, slow, archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := archive.New(g, device.NewArray(g.Total), archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New([]*archive.Store{s0, s1}, Config{HedgeDelay: time.Millisecond, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := testPayload(4*s0.Layout().StripeCapacity, 4)
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	var buf bytes.Buffer
	if _, err := svc.Get(ctx, "t", "obj", &buf); err != nil {
		t.Fatalf("hedged Get: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("hedged Get returned wrong bytes")
	}
	if slow.blockedReads() == 0 {
		t.Error("slow replica never consulted; hedge test proves nothing")
	}
	if svc.metrics.Counter("serve.hedge.launched").Value() == 0 {
		t.Error("no hedges launched")
	}
	if svc.metrics.Counter("serve.hedge.wins").Value() == 0 {
		t.Error("no hedge wins recorded against a wedged primary")
	}
	// Losers must drain: the wedged reads were cancelled when the winners
	// returned, so the goroutine count returns to (about) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak after hedged Get: %d > %d", n, before)
	}
}

// TestHedgingMasksDegradedReplica: replica 0 has lost too many devices to
// reconstruct; the error hedges immediately to replica 1.
func TestHedgingMasksDegradedReplica(t *testing.T) {
	svc, stores := testService(t, 2, Config{HedgeDelay: time.Hour, CacheBytes: -1})
	ctx := context.Background()
	data := testPayload(3000, 5)
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	for _, d := range stores[0].Devices() {
		d.Fail() // replica 0 is a total loss
	}
	var buf bytes.Buffer
	if _, err := svc.Get(ctx, "t", "obj", &buf); err != nil {
		t.Fatalf("Get with dead primary: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("failover returned wrong bytes")
	}
	// With every replica dead, the real error surfaces.
	for _, d := range stores[1].Devices() {
		d.Fail()
	}
	svc2, err := New(stores, Config{HedgeDelay: time.Millisecond, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := svc2.Get(ctx, "t", "obj", &buf2); !errors.Is(err, archive.ErrDataLoss) {
		t.Errorf("all-replicas-dead Get: %v", err)
	}
}

// TestHedgingMasksChaosSlowNode: replica 0 is slow rather than wedged —
// every node stalls via the chaos injector's latency fault — and the hedge
// still wins within the fast replica's latency, not the slow one's.
func TestHedgingMasksChaosSlowNode(t *testing.T) {
	g := testGraph(t)
	inj := chaos.Wrap(archive.NewArrayBackend(device.NewArray(g.Total)), chaos.Config{Seed: 3})
	s0, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := archive.New(g, device.NewArray(g.Total), archive.Config{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New([]*archive.Store{s0, s1}, Config{HedgeDelay: time.Millisecond, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := testPayload(2*s0.Layout().StripeCapacity, 6)
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	// Slow every node after the Put so only reads stall. A non-hedged read
	// of the slow replica would pay the stall once per block — seconds —
	// while the hedge should answer within the healthy replica's time.
	for node := 0; node < g.Total; node++ {
		inj.SlowNode(node, 2*time.Second)
	}
	start := time.Now()
	var buf bytes.Buffer
	if _, err := svc.Get(ctx, "t", "obj", &buf); err != nil {
		t.Fatalf("hedged Get over slow replica: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("hedged Get returned wrong bytes")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("hedged Get took %v — the slow replica's stall leaked into the request", d)
	}
	if svc.metrics.Counter("serve.hedge.launched").Value() == 0 {
		t.Error("no hedges launched against the slow replica")
	}
}

// TestCacheCoherence: a stripe cached before damage is healed by
// read-repair stays bit-exact, and a delete + re-put under the same name
// invalidates — the cache never serves the old object's bytes.
func TestCacheCoherence(t *testing.T) {
	g := testGraph(t)
	reg := obs.NewRegistry()
	inj := chaos.Wrap(archive.NewArrayBackend(device.NewArray(g.Total)), chaos.Config{Seed: 9, Metrics: reg})
	st, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New([]*archive.Store{st}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := testPayload(2*st.Layout().StripeCapacity, 6)
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	// Damage a stored frame, then read through the service: read-repair
	// heals it mid-Get and the cache fills with the (correct) payload.
	if err := inj.CorruptStored(3, "t\x00obj/0/3"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := svc.Get(ctx, "t", "obj", &buf); err != nil || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("Get through damage: %v", err)
	}
	// Second read is a cache hit and still bit-exact.
	hits := svc.metrics.Counter("serve.cache.hits").Value()
	buf.Reset()
	if _, err := svc.Get(ctx, "t", "obj", &buf); err != nil || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("cached Get: %v", err)
	}
	if svc.metrics.Counter("serve.cache.hits").Value() <= hits {
		t.Error("second read did not hit the cache")
	}

	// Replace the object: the cache must not serve the old bytes.
	if err := svc.Delete(ctx, "t", "obj"); err != nil {
		t.Fatal(err)
	}
	fresh := testPayload(2*st.Layout().StripeCapacity, 7)
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(fresh)); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := svc.Get(ctx, "t", "obj", &buf); err != nil || !bytes.Equal(buf.Bytes(), fresh) {
		t.Fatalf("Get after re-put served stale bytes: %v", err)
	}
}

// TestCacheBudget: the cache evicts rather than exceed its byte budget.
func TestCacheBudget(t *testing.T) {
	svc, stores := testService(t, 1, Config{CacheBytes: 7000})
	ctx := context.Background()
	cap := stores[0].Layout().StripeCapacity // one stripe per object
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("obj%d", i)
		if _, err := svc.Put(ctx, "t", name, bytes.NewReader(testPayload(cap, uint64(i)))); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := svc.Get(ctx, "t", name, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.metrics.Gauge("serve.cache.bytes").Value(); got > 7000 {
		t.Errorf("cache holds %d bytes, budget 7000", got)
	}
	if svc.metrics.Counter("serve.cache.evictions").Value() == 0 {
		t.Error("no evictions despite exceeding the budget")
	}
}

// TestHTTPEndToEnd drives the full handler over httptest: round trip,
// status mapping, tenant scoping, metrics.
func TestHTTPEndToEnd(t *testing.T) {
	svc, _ := testService(t, 2, Config{HedgeDelay: time.Millisecond})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()
	data := testPayload(5000, 8)

	put := func(tenant, name string, body []byte) *http.Response {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/t/"+tenant+"/objects/"+name, bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := put("alice", "report", data); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	if resp := put("alice", "report", data); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate PUT = %d", resp.StatusCode)
	}

	resp, err := client.Get(srv.URL + "/t/alice/objects/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, data) {
		t.Fatalf("GET = %d, %d bytes", resp.StatusCode, len(got))
	}

	// Tenant scoping at the HTTP layer.
	resp, err = client.Get(srv.URL + "/t/bob/objects/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant GET = %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/t/alice/objects/report", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	resp, err = client.Get(srv.URL + "/t/alice/objects/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d", resp.StatusCode)
	}

	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestHTTPBackpressure: a saturated tenant gets 503 + Retry-After.
func TestHTTPBackpressure(t *testing.T) {
	svc, _ := testService(t, 1, Config{MaxInflight: 1, MaxQueue: -1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	data := testPayload(2000, 9)
	if _, err := svc.Put(context.Background(), "t", "obj", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	// Pin the only slot with a direct service call.
	gate := make(chan struct{})
	entered := make(chan struct{})
	gw := &gateWriter{gate: gate, entered: entered}
	done := make(chan error, 1)
	go func() {
		_, err := svc.Get(context.Background(), "t", "obj", gw)
		done <- err
	}()
	<-entered
	resp, err := srv.Client().Get(srv.URL + "/t/t/objects/obj")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated GET = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServeChaosSoak: the service under a deterministic fault schedule with
// a concurrent repair scrub — every Get must return bit-exact data or an
// explicit error, never silently wrong bytes.
func TestServeChaosSoak(t *testing.T) {
	g := testGraph(t)
	reg := obs.NewRegistry()
	inj := chaos.Wrap(archive.NewArrayBackend(device.NewArray(g.Total)), chaos.Config{
		Seed:            11,
		BitFlipRate:     0.002,
		ReadCorruptRate: 0.002,
		TruncateRate:    0.001,
		ReadErrRate:     0.01,
		WriteErrRate:    0.005,
		TornWriteRate:   0.001,
		Metrics:         reg,
	})
	st, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New([]*archive.Store{st}, Config{CacheBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cap := st.Layout().StripeCapacity

	const objects = 12
	want := make([][]byte, objects)
	for i := range want {
		want[i] = testPayload((i%3+1)*cap+i*7, uint64(100+i))
		name := fmt.Sprintf("obj%d", i)
		if _, err := svc.Put(ctx, "t", name, bytes.NewReader(want[i])); err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
	}

	// Concurrent repair scrubs while the read load runs.
	scrubCtx, stopScrub := context.WithCancel(ctx)
	scrubDone := make(chan struct{})
	go func() {
		defer close(scrubDone)
		for scrubCtx.Err() == nil {
			_, _ = st.ScrubCtx(scrubCtx, true)
		}
	}()

	rng := rand.New(rand.NewPCG(12, 13))
	silent := 0
	errored := 0
	for op := 0; op < 300; op++ {
		i := rng.IntN(objects)
		var buf bytes.Buffer
		_, err := svc.Get(ctx, "t", fmt.Sprintf("obj%d", i), &buf)
		if err != nil {
			errored++ // explicit failure is allowed; silence is not
			continue
		}
		if !bytes.Equal(buf.Bytes(), want[i]) {
			silent++
		}
	}
	stopScrub()
	<-scrubDone
	if silent > 0 {
		t.Fatalf("%d silent corruptions under chaos + concurrent scrub (%d explicit errors)", silent, errored)
	}

	// After the faults stop, a repair scrub converges and every object
	// verifies.
	inj.Quiesce()
	if _, err := st.Scrub(true); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		var buf bytes.Buffer
		if _, err := svc.Get(ctx, "t", fmt.Sprintf("obj%d", i), &buf); err != nil {
			t.Errorf("obj%d after quiesce: %v", i, err)
		} else if !bytes.Equal(buf.Bytes(), want[i]) {
			t.Errorf("obj%d bytes differ after quiesce", i)
		}
	}
}

// TestReplicatedPutAllOrNothing: when one replica cannot take the object,
// no replica keeps it.
func TestReplicatedPutAllOrNothing(t *testing.T) {
	svc, stores := testService(t, 2, Config{})
	ctx := context.Background()
	// Poison replica 1 with a colliding raw key so its PutStream fails
	// with ErrExists while replica 0 succeeds.
	if err := stores[1].Put("t\x00obj", []byte("squatter")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Put(ctx, "t", "obj", bytes.NewReader(testPayload(3000, 10))); err == nil {
		t.Fatal("replicated put succeeded with a failing replica")
	}
	if _, err := stores[0].Stat("t\x00obj"); !errors.Is(err, archive.ErrNotFound) {
		t.Errorf("replica 0 kept a partial object: %v", err)
	}
}
