// Package serve is the multi-tenant archive service: a high-throughput
// front door over one or more archive.Store replicas. It adds the four
// things the raw store does not have — per-tenant namespaces with
// admission control (so one tenant's burst cannot starve another),
// backpressure (bounded queues that shed load with ErrOverloaded instead
// of collapsing), a bounded hot-stripe read cache that stays coherent with
// the self-healing data path, and request hedging across replicas (a read
// stalled on a slow or degraded replica is raced against another copy,
// and the loser is cancelled).
//
// The data path is streaming and context-first end to end: Put consumes an
// io.Reader and Get produces into an io.Writer stripe by stripe, so peak
// memory per request is O(parallelism × stripe) no matter the object size,
// and cancelling the request context aborts the pipeline promptly at every
// layer down to the backend.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/archive"
	"tornado/internal/obs"
)

// Exported defaults, replaced into zero Config fields by normalize (the
// internal/sim option idiom: zero means default, negative disables).
const (
	// DefaultMaxInflight is the per-tenant concurrent request limit.
	DefaultMaxInflight = 8
	// DefaultMaxQueue is how many further requests per tenant may wait for
	// a slot before new arrivals are shed with ErrOverloaded.
	DefaultMaxQueue = 32
	// DefaultCacheBytes is the hot-stripe read cache budget.
	DefaultCacheBytes = 8 << 20
	// DefaultHedgeDelay is how long a stripe read waits on one replica
	// before hedging to another.
	DefaultHedgeDelay = 20 * time.Millisecond
)

var (
	// ErrOverloaded is backpressure: the tenant's inflight and queue
	// budgets are both full, so the request is shed immediately. Clients
	// should retry with delay (HTTP maps this to 503 + Retry-After).
	ErrOverloaded = errors.New("serve: tenant overloaded")
	// ErrUnknownTenant reports a tenant outside the configured set.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
)

// Config tunes a Service.
type Config struct {
	// Tenants fixes the namespace set; requests for other tenants fail
	// with ErrUnknownTenant. Empty means open admission: tenants are
	// created on first use.
	Tenants []string
	// MaxInflight caps concurrent requests per tenant. 0 means
	// DefaultMaxInflight.
	MaxInflight int
	// MaxQueue caps requests per tenant waiting for an inflight slot;
	// arrivals beyond it are shed with ErrOverloaded. 0 means
	// DefaultMaxQueue, negative means no queueing (shed when saturated).
	MaxQueue int
	// CacheBytes is the hot-stripe cache budget. 0 means
	// DefaultCacheBytes, negative disables the cache.
	CacheBytes int
	// HedgeDelay is how long a stripe read waits before racing another
	// replica. 0 means DefaultHedgeDelay, negative disables hedging.
	// Hedging also requires at least two replicas.
	HedgeDelay time.Duration
	// Parallelism is the stripe pipeline width of Put ingest. 0 means
	// archive.DefaultStreamParallelism.
	Parallelism int
	// Metrics receives the service counters (serve.*). Nil gets a private
	// registry, still readable via Service.Metrics.
	Metrics *obs.Registry
}

func (c Config) normalize() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = DefaultHedgeDelay
	}
	if c.Parallelism <= 0 {
		c.Parallelism = archive.DefaultStreamParallelism
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// tenant is one namespace's admission state.
type tenant struct {
	sem    chan struct{} // inflight slots
	queued atomic.Int64  // requests waiting for a slot
}

// Service fronts archive replicas with tenancy, admission, caching, and
// hedging. It is safe for concurrent use.
type Service struct {
	stores    []*archive.Store
	cfg       Config
	blockSize int

	mu      sync.Mutex
	tenants map[string]*tenant

	cache *stripeCache

	metrics      *obs.Registry
	mPuts        *obs.Counter
	mGets        *obs.Counter
	mDeletes     *obs.Counter
	mOverloaded  *obs.Counter
	mShedCtx     *obs.Counter
	mHedges      *obs.Counter
	mHedgeWins   *obs.Counter
	mRepairBytes *obs.Counter
	hPutLatency  *obs.Histogram
	hGetLatency  *obs.Histogram
}

// New builds a service over stores (replicas of one another: same graph
// shape and block size, stewarded so each holds every object).
func New(stores []*archive.Store, cfg Config) (*Service, error) {
	if len(stores) == 0 {
		return nil, errors.New("serve: need at least one store")
	}
	lay := stores[0].Layout()
	for i, st := range stores[1:] {
		if st.Layout() != lay {
			return nil, fmt.Errorf("serve: replica %d layout %+v differs from replica 0 %+v", i+1, st.Layout(), lay)
		}
	}
	cfg = cfg.normalize()
	for _, tn := range cfg.Tenants {
		if err := checkTenantName(tn); err != nil {
			return nil, err
		}
	}
	s := &Service{
		stores:       stores,
		cfg:          cfg,
		blockSize:    lay.BlockSize,
		tenants:      make(map[string]*tenant),
		metrics:      cfg.Metrics,
		mPuts:        cfg.Metrics.Counter("serve.puts"),
		mGets:        cfg.Metrics.Counter("serve.gets"),
		mDeletes:     cfg.Metrics.Counter("serve.deletes"),
		mOverloaded:  cfg.Metrics.Counter("serve.overloaded"),
		mShedCtx:     cfg.Metrics.Counter("serve.cancelled_waiting"),
		mHedges:      cfg.Metrics.Counter("serve.hedge.launched"),
		mHedgeWins:   cfg.Metrics.Counter("serve.hedge.wins"),
		mRepairBytes: cfg.Metrics.Counter("serve.repair.bytes"),
		hPutLatency:  cfg.Metrics.Histogram("serve.put.latency"),
		hGetLatency:  cfg.Metrics.Histogram("serve.get.latency"),
	}
	if cfg.CacheBytes > 0 {
		s.cache = newStripeCache(cfg.CacheBytes, cfg.Metrics)
	}
	for _, tn := range cfg.Tenants {
		s.tenants[tn] = &tenant{sem: make(chan struct{}, cfg.MaxInflight)}
	}
	return s, nil
}

// Metrics returns the service registry (serve.* counters and histograms).
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// Stores returns the replica set (for scrub drivers and tests).
func (s *Service) Stores() []*archive.Store { return s.stores }

func checkTenantName(tn string) error {
	if tn == "" || strings.ContainsAny(tn, "\x00/") {
		return fmt.Errorf("%w: %q (must be non-empty, no '/' or NUL)", ErrUnknownTenant, tn)
	}
	return nil
}

// key maps (tenant, object) into the flat store namespace. The NUL
// separator cannot appear in a tenant name, so the mapping is injective —
// tenant "a" with object "b/c" can never collide with tenant "a/b".
func key(tn, name string) string { return tn + "\x00" + name }

// tenantFor resolves (or, under open admission, creates) a tenant.
func (s *Service) tenantFor(tn string) (*tenant, error) {
	if err := checkTenantName(tn); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tn]
	if !ok {
		if len(s.cfg.Tenants) > 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tn)
		}
		t = &tenant{sem: make(chan struct{}, s.cfg.MaxInflight)}
		s.tenants[tn] = t
	}
	return t, nil
}

// admit takes one of the tenant's inflight slots, queueing up to MaxQueue
// waiters and shedding everything beyond with ErrOverloaded. The returned
// release must be called when the request finishes.
func (s *Service) admit(ctx context.Context, tn string) (release func(), err error) {
	t, err := s.tenantFor(tn)
	if err != nil {
		return nil, err
	}
	release = func() { <-t.sem }
	select {
	case t.sem <- struct{}{}: // free slot, no queueing
		return release, nil
	default:
	}
	if t.queued.Add(1) > int64(s.cfg.MaxQueue) {
		t.queued.Add(-1)
		s.mOverloaded.Inc()
		return nil, fmt.Errorf("%w: %q", ErrOverloaded, tn)
	}
	defer t.queued.Add(-1)
	select {
	case t.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		s.mShedCtx.Inc()
		return nil, ctx.Err()
	}
}

// Put ingests an object for a tenant, streaming it to every replica
// concurrently through bounded pipes. All replicas succeed or the object
// exists on none (partial replicas are rolled back).
func (s *Service) Put(ctx context.Context, tn, name string, r io.Reader) (int, error) {
	release, err := s.admit(ctx, tn)
	if err != nil {
		return 0, err
	}
	defer release()
	start := time.Now()
	defer func() { s.hPutLatency.Observe(time.Since(start)) }()
	s.mPuts.Inc()
	k := key(tn, name)
	if s.cache != nil {
		defer s.cache.invalidate(k)
	}
	if len(s.stores) == 1 {
		return s.stores[0].PutStream(ctx, k, r, archive.WithParallelism(s.cfg.Parallelism))
	}

	// Fan the byte stream out to every replica: one pipe per store, all fed
	// by a single pass over r, so replication costs no extra object-sized
	// buffering.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	prs := make([]*io.PipeReader, len(s.stores))
	pws := make([]io.Writer, len(s.stores))
	for i := range s.stores {
		pr, pw := io.Pipe()
		prs[i], pws[i] = pr, pw
	}
	errs := make([]error, len(s.stores))
	var wg sync.WaitGroup
	for i, st := range s.stores {
		wg.Add(1)
		go func(i int, st *archive.Store) {
			defer wg.Done()
			_, errs[i] = st.PutStream(pctx, k, prs[i], archive.WithParallelism(s.cfg.Parallelism))
			// Unblock the fan-out writer if this replica bailed early.
			prs[i].CloseWithError(errs[i])
		}(i, st)
	}
	n, copyErr := io.Copy(io.MultiWriter(pws...), r)
	for i := range pws {
		pws[i].(*io.PipeWriter).CloseWithError(copyErr)
	}
	wg.Wait()
	var firstErr error
	if copyErr != nil {
		firstErr = fmt.Errorf("serve: put %q: %w", name, copyErr)
	}
	for _, e := range errs {
		if e != nil && firstErr == nil {
			firstErr = e
		}
	}
	if firstErr != nil {
		// All-or-nothing across replicas: PutStream rolled back its own
		// failures; remove the copies that succeeded. The cleanup must
		// survive the (possibly cancelled) request context.
		dctx := context.WithoutCancel(ctx)
		for i, e := range errs {
			if e == nil {
				_ = s.stores[i].DeleteCtx(dctx, k)
			}
		}
		return 0, firstErr
	}
	return int(n), nil
}

// Get streams an object to w stripe by stripe, serving hot stripes from
// the cache and hedging cold reads across replicas.
func (s *Service) Get(ctx context.Context, tn, name string, w io.Writer) (int, error) {
	release, err := s.admit(ctx, tn)
	if err != nil {
		return 0, err
	}
	defer release()
	start := time.Now()
	defer func() { s.hGetLatency.Observe(time.Since(start)) }()
	s.mGets.Inc()
	k := key(tn, name)
	obj, err := s.stores[0].Stat(k)
	if err != nil {
		return 0, err
	}
	lay := s.stores[0].Layout()
	written := 0
	for st := 0; st < obj.Stripes; st++ {
		if err := ctx.Err(); err != nil {
			return written, err
		}
		payload, err := s.stripe(ctx, k, st)
		if err != nil {
			return written, err
		}
		want := min(obj.Size-st*lay.StripeCapacity, lay.StripeCapacity)
		if len(payload) != want {
			return written, fmt.Errorf("serve: %q stripe %d: got %d bytes, want %d", name, st, len(payload), want)
		}
		n, werr := w.Write(payload)
		written += n
		if werr != nil {
			return written, fmt.Errorf("serve: get %q: %w", name, werr)
		}
	}
	return written, nil
}

// stripe returns one decoded stripe payload, via the cache when possible.
// The returned slice is shared (cache-resident) and must not be mutated.
func (s *Service) stripe(ctx context.Context, k string, st int) ([]byte, error) {
	if s.cache != nil {
		if p, ok := s.cache.get(k, st); ok {
			return p, nil
		}
	}
	payload, stats, err := s.readStripeHedged(ctx, k, st)
	if err != nil {
		return nil, err
	}
	// Repair traffic accounting: the store's repairbw meter attributed this
	// read's bill byte-exactly (degraded-get amplification plus read-repair
	// write-backs); surface the total on the service counter.
	if b := stats.Repair.Bytes(); b > 0 {
		s.mRepairBytes.Add(b)
	}
	if s.cache != nil {
		s.cache.add(k, st, payload)
	}
	return payload, nil
}

// Delete removes a tenant's object from every replica.
func (s *Service) Delete(ctx context.Context, tn, name string) error {
	release, err := s.admit(ctx, tn)
	if err != nil {
		return err
	}
	defer release()
	s.mDeletes.Inc()
	k := key(tn, name)
	if s.cache != nil {
		s.cache.invalidate(k)
	}
	var firstErr error
	for _, st := range s.stores {
		if err := st.DeleteCtx(ctx, k); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stat returns a tenant's object metadata (Name is the tenant-relative
// object name).
func (s *Service) Stat(ctx context.Context, tn, name string) (archive.Object, error) {
	if _, err := s.tenantFor(tn); err != nil {
		return archive.Object{}, err
	}
	obj, err := s.stores[0].Stat(key(tn, name))
	if err != nil {
		return archive.Object{}, err
	}
	obj.Name = name
	return obj, nil
}

// List returns a tenant's objects (tenant-relative names).
func (s *Service) List(tn string) ([]archive.Object, error) {
	if _, err := s.tenantFor(tn); err != nil {
		return nil, err
	}
	prefix := tn + "\x00"
	var out []archive.Object
	for _, obj := range s.stores[0].List() {
		if strings.HasPrefix(obj.Name, prefix) {
			obj.Name = obj.Name[len(prefix):]
			out = append(out, obj)
		}
	}
	return out, nil
}
