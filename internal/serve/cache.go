package serve

import (
	"container/list"
	"sync"

	"tornado/internal/obs"
)

// stripeCache is a byte-budgeted LRU over decoded stripe payloads — the
// serve layer's hot-block cache. Entries are whole stripes (the store's
// cache-fill granularity), keyed by flat object key and stripe index.
//
// Coherence: cached payloads are decoded plaintext, so backend-level
// healing (read-repair, scrub rewrites) never changes them — repair is
// bit-exact by construction. The only mutations that change payload bytes
// are object-level (Delete, re-Put), and the service invalidates the
// object's entries on both. Cached slices are shared between callers and
// must be treated as read-only.
type stripeCache struct {
	mu     sync.Mutex
	budget int
	bytes  int
	ll     *list.List // front = most recently used
	items  map[cacheKey]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	gBytes    *obs.Gauge
}

type cacheKey struct {
	key    string
	stripe int
}

type cacheEntry struct {
	k       cacheKey
	payload []byte
}

func newStripeCache(budget int, reg *obs.Registry) *stripeCache {
	return &stripeCache{
		budget:    budget,
		ll:        list.New(),
		items:     make(map[cacheKey]*list.Element),
		hits:      reg.Counter("serve.cache.hits"),
		misses:    reg.Counter("serve.cache.misses"),
		evictions: reg.Counter("serve.cache.evictions"),
		gBytes:    reg.Gauge("serve.cache.bytes"),
	}
}

// get returns the cached payload (shared, read-only) and refreshes its
// recency.
func (c *stripeCache) get(key string, stripe int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{key, stripe}]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).payload, true
}

// add inserts a payload, taking ownership of the slice, and evicts from
// the cold end until the budget holds. Payloads larger than the whole
// budget are not cached.
func (c *stripeCache) add(key string, stripe int, payload []byte) {
	if len(payload) > c.budget {
		return
	}
	k := cacheKey{key, stripe}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// Replace in place (a re-read after invalidation raced another).
		c.bytes += len(payload) - len(el.Value.(*cacheEntry).payload)
		el.Value.(*cacheEntry).payload = payload
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&cacheEntry{k: k, payload: payload})
		c.bytes += len(payload)
	}
	for c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		c.removeLocked(el)
		c.evictions.Inc()
	}
	c.gBytes.Set(int64(c.bytes))
}

// invalidate drops every cached stripe of one object (Delete / re-Put).
func (c *stripeCache) invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).k.key == key {
			c.removeLocked(el)
		}
		el = next
	}
	c.gBytes.Set(int64(c.bytes))
}

func (c *stripeCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.k)
	c.bytes -= len(ent.payload)
}
