package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tornado/internal/archive"
	"tornado/internal/obs"
)

// Handler returns the service's HTTP front door:
//
//	PUT    /t/{tenant}/objects/{name...}  ingest (201; 409 if it exists)
//	GET    /t/{tenant}/objects/{name...}  stream back (200; 404; 410 on data loss)
//	DELETE /t/{tenant}/objects/{name...}  remove (204)
//	GET    /t/{tenant}/stat/{name...}     metadata (JSON)
//	GET    /t/{tenant}/list               tenant's objects (JSON)
//	GET    /metrics                       serve.* plus every replica's archive.* (JSON)
//	GET    /healthz                       liveness
//
// Backpressure surfaces as 503 with a Retry-After header; an unknown
// tenant is 404. Request bodies and responses stream — an object is never
// buffered whole in the server.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /t/{tenant}/objects/{name...}", s.httpPut)
	mux.HandleFunc("GET /t/{tenant}/objects/{name...}", s.httpGet)
	mux.HandleFunc("DELETE /t/{tenant}/objects/{name...}", s.httpDelete)
	mux.HandleFunc("GET /t/{tenant}/stat/{name...}", s.httpStat)
	mux.HandleFunc("GET /t/{tenant}/list", s.httpList)
	regs := []*obs.Registry{s.metrics}
	for _, st := range s.stores {
		regs = append(regs, st.Metrics())
	}
	mux.Handle("GET /metrics", obs.MergedHandler(regs...))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","replicas":%d}`+"\n", len(s.stores))
	})
	return mux
}

func (s *Service) httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, archive.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, archive.ErrExists):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, archive.ErrDataLoss):
		http.Error(w, err.Error(), http.StatusGone)
	case errIsCtx(err):
		// The client went away (or its deadline passed); 499-style close.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) httpPut(w http.ResponseWriter, r *http.Request) {
	n, err := s.Put(r.Context(), r.PathValue("tenant"), r.PathValue("name"), r.Body)
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.Header().Set("X-Bytes-Stored", strconv.Itoa(n))
	w.WriteHeader(http.StatusCreated)
}

func (s *Service) httpGet(w http.ResponseWriter, r *http.Request) {
	tn, name := r.PathValue("tenant"), r.PathValue("name")
	obj, err := s.Stat(r.Context(), tn, name)
	if err != nil {
		s.httpError(w, err)
		return
	}
	hw := &headerOnFirstByte{w: w, length: obj.Size}
	if _, err := s.Get(r.Context(), tn, name, hw); err != nil {
		if !hw.wrote {
			// Nothing sent yet — the error (overload, data loss, ...) can
			// still get a proper status.
			s.httpError(w, err)
			return
		}
		// Headers are out; the short body plus the connection error is all
		// we can signal. Log-equivalent: count it.
		s.metrics.Counter("serve.get.aborted").Inc()
	}
}

// headerOnFirstByte delays Content-Length until the stream actually
// produces bytes, so a Get that fails before its first stripe (admission
// shed, dead replicas) still maps to an error status instead of an empty
// 200.
type headerOnFirstByte struct {
	w      http.ResponseWriter
	length int
	wrote  bool
}

func (h *headerOnFirstByte) Write(p []byte) (int, error) {
	if !h.wrote {
		h.wrote = true
		h.w.Header().Set("Content-Length", strconv.Itoa(h.length))
	}
	return h.w.Write(p)
}

func (s *Service) httpDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.Context(), r.PathValue("tenant"), r.PathValue("name")); err != nil {
		s.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) httpStat(w http.ResponseWriter, r *http.Request) {
	obj, err := s.Stat(r.Context(), r.PathValue("tenant"), r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, obj)
}

func (s *Service) httpList(w http.ResponseWriter, r *http.Request) {
	objs, err := s.List(r.PathValue("tenant"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, objs)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
