package fedstore

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/raid"
)

// site is one test site: its store, raw devices, and transparent injector
// (zero rates — used only for explicit LoseNode/VoidNode manipulation).
type site struct {
	store *archive.Store
	devs  device.Array
	inj   *chaos.Injector
}

func newSiteWithGraph(t *testing.T, g *graph.Graph, blockSize int) site {
	t.Helper()
	devs := device.NewArray(g.Total)
	inj := chaos.Wrap(archive.NewArrayBackend(devs), chaos.Config{})
	store, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	return site{store: store, devs: devs, inj: inj}
}

func tornadoGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	p := core.DefaultParams()
	p.TotalNodes = 32
	g, _, err := core.Generate(p, rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fedOver(t *testing.T, cfg Config, sites ...site) (*Store, []site) {
	t.Helper()
	stores := make([]*archive.Store, len(sites))
	for i, s := range sites {
		stores[i] = s.store
	}
	f, err := New(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, sites
}

func testPayload(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 0))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

// wipeSite destroys every device at a site (blank replacements), keeping
// the store's object metadata — the disaster model where the steward
// database survives but the media does not.
func wipeSite(s site) {
	for i := range s.devs {
		s.devs[i].Fail()
		s.inj.VoidNode(i)
		s.devs[i].Replace()
	}
}

func TestNewValidation(t *testing.T) {
	a := newSiteWithGraph(t, tornadoGraph(t, 1), 32)
	if _, err := New([]*archive.Store{a.store}, Config{}); err == nil {
		t.Error("single site accepted")
	}
	b := newSiteWithGraph(t, tornadoGraph(t, 2), 64) // block size differs
	if _, err := New([]*archive.Store{a.store, b.store}, Config{}); err == nil {
		t.Error("mismatched block sizes accepted")
	}
	w := chaos.NewWAN(chaos.WANConfig{Sites: 3})
	c := newSiteWithGraph(t, tornadoGraph(t, 3), 32)
	if _, err := New([]*archive.Store{a.store, c.store}, Config{WAN: w}); err == nil {
		t.Error("WAN site-count mismatch accepted")
	}
}

func TestPutGetSiteFailover(t *testing.T) {
	w := chaos.NewWAN(chaos.WANConfig{Sites: 2})
	f, _ := fedOver(t, Config{WAN: w, WriteQuorum: 2},
		newSiteWithGraph(t, tornadoGraph(t, 1), 32),
		newSiteWithGraph(t, tornadoGraph(t, 2), 32))
	data := testPayload(900, 5)
	if err := f.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Healthy read.
	got, err := f.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("healthy get: err=%v exact=%v", err, bytes.Equal(got, data))
	}
	// Site 0 gone: reads fail over to site 1.
	w.LoseSite(0)
	got, err = f.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("failover get: err=%v exact=%v", err, bytes.Equal(got, data))
	}
	// Both gone: definitive error, not silence.
	w.LoseSite(1)
	if _, err := f.Get("obj"); !errors.Is(err, ErrNoSite) {
		t.Errorf("all-down get err = %v, want ErrNoSite", err)
	}
	w.RestoreSite(0)
	w.RestoreSite(1)
	if _, err := f.Get("missing"); !errors.Is(err, archive.ErrNotFound) {
		t.Errorf("missing object err = %v, want ErrNotFound", err)
	}
}

func TestPutQuorumRefusalAndRollback(t *testing.T) {
	w := chaos.NewWAN(chaos.WANConfig{Sites: 3})
	f, sites := fedOver(t, Config{WAN: w}, // quorum defaults to all 3
		newSiteWithGraph(t, tornadoGraph(t, 1), 32),
		newSiteWithGraph(t, tornadoGraph(t, 2), 32),
		newSiteWithGraph(t, tornadoGraph(t, 3), 32))
	w.LoseSite(2)
	err := f.Put("obj", testPayload(500, 1))
	if !errors.Is(err, ErrSiteQuorum) {
		t.Fatalf("put below quorum err = %v, want ErrSiteQuorum", err)
	}
	// Nothing may remain anywhere.
	for i, s := range sites {
		if _, err := s.store.Stat("obj"); !errors.Is(err, archive.ErrNotFound) {
			t.Errorf("site %d kept the refused object (err=%v)", i, err)
		}
	}
	if f.Metrics().Counter("fedstore.put.quorum_refused").Value() == 0 {
		t.Error("quorum refusal not counted")
	}

	// Quorum 2 allows degraded writes to the two surviving sites.
	f2, sites2 := fedOver(t, Config{WAN: w, WriteQuorum: 2},
		newSiteWithGraph(t, tornadoGraph(t, 4), 32),
		newSiteWithGraph(t, tornadoGraph(t, 5), 32),
		newSiteWithGraph(t, tornadoGraph(t, 6), 32))
	data := testPayload(500, 2)
	if err := f2.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	if _, err := sites2[2].store.Stat("obj"); !errors.Is(err, archive.ErrNotFound) {
		t.Error("down site somehow received the object")
	}
	got, err := f2.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded get: err=%v", err)
	}
}

// TestExchangeRecoversWhatNoSiteCanAlone is the live version of the
// paper's block exchange: each site's losses defeat that site alone, but
// the federation recovers by shipping data blocks between sites.
func TestExchangeRecoversWhatNoSiteCanAlone(t *testing.T) {
	g := raid.MirroredGraph(4) // data 0..3 mirrored at 4..7
	a := newSiteWithGraph(t, g, 32)
	b := newSiteWithGraph(t, g.Clone(), 32)
	f, _ := fedOver(t, Config{}, a, b)
	data := testPayload(4*32, 7) // one full stripe
	if err := f.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Site A loses both copies of block 0; site B both copies of block 1.
	a.inj.LoseNode(0)
	a.inj.LoseNode(4)
	b.inj.LoseNode(1)
	b.inj.LoseNode(5)
	if _, _, err := a.store.Get("obj"); !errors.Is(err, archive.ErrDataLoss) {
		t.Fatalf("site A alone should report data loss, got %v", err)
	}
	if _, _, err := b.store.Get("obj"); !errors.Is(err, archive.ErrDataLoss) {
		t.Fatalf("site B alone should report data loss, got %v", err)
	}
	got, err := f.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("federated get: err=%v exact=%v", err, bytes.Equal(got, data))
	}
	if f.Metrics().Counter("fedstore.exchange.stripes").Value() == 0 {
		t.Error("exchange not counted")
	}
	// The exchange traffic must appear in the sites' federation meters.
	if f.SiteFederationTotals().Zero() {
		t.Error("no federation-cause bytes billed at the sites")
	}
}

func TestPartitionBlocksExchange(t *testing.T) {
	g := raid.MirroredGraph(4)
	w := chaos.NewWAN(chaos.WANConfig{Sites: 2})
	a := newSiteWithGraph(t, g, 32)
	b := newSiteWithGraph(t, g.Clone(), 32)
	f, _ := fedOver(t, Config{WAN: w}, a, b)
	data := testPayload(4*32, 8)
	if err := f.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	a.inj.LoseNode(0)
	a.inj.LoseNode(4)
	b.inj.LoseNode(1)
	b.inj.LoseNode(5)
	// With the inter-site link cut, neither site can be rescued.
	w.Partition(0, 1)
	if _, err := f.Get("obj"); !errors.Is(err, archive.ErrDataLoss) {
		t.Fatalf("partitioned get err = %v, want ErrDataLoss", err)
	}
	// Healing the link heals the read.
	w.HealLink(0, 1)
	got, err := f.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-heal get: err=%v", err)
	}
}

func TestRepairSiteAfterFullWipe(t *testing.T) {
	f, sites := fedOver(t, Config{},
		newSiteWithGraph(t, tornadoGraph(t, 21), 32),
		newSiteWithGraph(t, tornadoGraph(t, 22), 32),
		newSiteWithGraph(t, tornadoGraph(t, 23), 32))
	var names []string
	var datas [][]byte
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		data := testPayload(200+137*i, uint64(i))
		if err := f.Put(name, data); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		datas = append(datas, data)
	}
	wipeSite(sites[0])
	// The wiped site alone is useless.
	if _, _, err := sites[0].store.Get(names[0]); !errors.Is(err, archive.ErrDataLoss) {
		t.Fatalf("wiped site get err = %v, want ErrDataLoss", err)
	}
	rep, err := f.RepairSite(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissingAfter != 0 || rep.Unrecoverable != 0 {
		t.Fatalf("repair residue: missing=%d unrecoverable=%d", rep.MissingAfter, rep.Unrecoverable)
	}
	if rep.DirectImports == 0 {
		t.Error("full wipe repaired with zero imports")
	}
	// Conservation: the facade's tally must equal the sites' federation
	// meters exactly — every byte attributed, none invented.
	if got, want := f.ExchangeTotals(), f.SiteFederationTotals(); got != want {
		t.Errorf("conservation: facade %+v != sites %+v", got, want)
	}
	// The repaired site must now serve everything alone.
	for i, name := range names {
		got, _, err := sites[0].store.Get(name)
		if err != nil || !bytes.Equal(got, datas[i]) {
			t.Errorf("repaired site get %q: err=%v exact=%v", name, err, bytes.Equal(got, datas[i]))
		}
	}
}

func TestRepairSiteSyncsShells(t *testing.T) {
	w := chaos.NewWAN(chaos.WANConfig{Sites: 2})
	f, sites := fedOver(t, Config{WAN: w, WriteQuorum: 1},
		newSiteWithGraph(t, tornadoGraph(t, 31), 32),
		newSiteWithGraph(t, tornadoGraph(t, 32), 32))
	// Site 1 down during the Put: it never hears about the object.
	w.LoseSite(1)
	data := testPayload(700, 9)
	if err := f.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	w.RestoreSite(1)
	if _, err := sites[1].store.Stat("obj"); !errors.Is(err, archive.ErrNotFound) {
		t.Fatal("site 1 should not know the object yet")
	}
	rep, err := f.RepairSite(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShellsSynced != 1 {
		t.Errorf("shells synced = %d, want 1", rep.ShellsSynced)
	}
	if rep.MissingAfter != 0 {
		t.Errorf("missing after = %d", rep.MissingAfter)
	}
	got, _, err := sites[1].store.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("restored site get: err=%v exact=%v", err, bytes.Equal(got, data))
	}
}

func TestScrubSkipsDownSites(t *testing.T) {
	w := chaos.NewWAN(chaos.WANConfig{Sites: 2})
	f, _ := fedOver(t, Config{WAN: w, WriteQuorum: 1},
		newSiteWithGraph(t, tornadoGraph(t, 41), 32),
		newSiteWithGraph(t, tornadoGraph(t, 42), 32))
	if err := f.Put("obj", testPayload(300, 3)); err != nil {
		t.Fatal(err)
	}
	w.LoseSite(1)
	reps, err := f.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Skipped || !reps[1].Skipped {
		t.Errorf("scrub skip flags: %v %v, want false true", reps[0].Skipped, reps[1].Skipped)
	}
	if _, err := f.RepairSite(1); !errors.Is(err, ErrSiteDown) {
		t.Errorf("repair of down site err = %v, want ErrSiteDown", err)
	}
}

func TestDeleteAcrossSites(t *testing.T) {
	f, sites := fedOver(t, Config{},
		newSiteWithGraph(t, tornadoGraph(t, 51), 32),
		newSiteWithGraph(t, tornadoGraph(t, 52), 32))
	if err := f.Put("obj", testPayload(100, 4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	for i, s := range sites {
		if _, err := s.store.Stat("obj"); !errors.Is(err, archive.ErrNotFound) {
			t.Errorf("site %d still has deleted object", i)
		}
	}
	if err := f.Delete("obj"); !errors.Is(err, archive.ErrNotFound) {
		t.Errorf("double delete err = %v, want ErrNotFound", err)
	}
}
