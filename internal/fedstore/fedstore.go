// Package fedstore is the live federated store runtime: N archive.Store
// sites — each with its own Tornado graph, placement, and (in tests) its
// own chaos injector — composed behind a single Get/Put/Scrub facade.
// Where internal/federation answers the analytical question ("would these
// joint erasures lose data?"), fedstore moves real bytes: reads fail over
// across sites, writes require a configurable site quorum and roll back
// below it, and when every site individually reports data loss the facade
// runs the paper's §5.3 block exchange for real — partial peeling at each
// site, reconstructed data blocks shipped between sites over the WAN
// topology, repeated to fixpoint — then re-exports recovered blocks to the
// broken sites through the archive's block interface, so every exchanged
// byte lands in the sites' repairbw meters under the federation cause.
//
// Site-scale failures come from an optional chaos.WAN: whole-site loss,
// inter-site partitions, per-link brownout latency, and site flapping, all
// seeded and deterministic. The facade is modeled as an external client
// with its own connectivity to every site — WAN links gate only
// site-to-site exchange; a lost or flapping site is unreachable to
// everyone.
package fedstore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/codec"
	"tornado/internal/obs"
	"tornado/internal/repairbw"
)

var (
	// ErrSiteQuorum is returned by Put when fewer sites than WriteQuorum
	// could durably accept the object; nothing remains written.
	ErrSiteQuorum = errors.New("fedstore: too few sites up for write quorum")
	// ErrNoSite means no site is currently reachable.
	ErrNoSite = errors.New("fedstore: no reachable site")
	// ErrSiteDown is returned by site-targeted operations (RepairSite)
	// when the target is unreachable.
	ErrSiteDown = errors.New("fedstore: site unreachable")
)

// Config tunes the facade.
type Config struct {
	// WriteQuorum is the minimum number of sites that must durably accept
	// a Put before it reports success; below it the Put is rolled back and
	// refused with ErrSiteQuorum. 0 means all sites (strictest).
	WriteQuorum int
	// WAN is the site-scale fault topology; nil means every site and link
	// is always healthy.
	WAN *chaos.WAN
	// Metrics receives the fedstore.* counters; nil gets a private registry.
	Metrics *obs.Registry
}

// Store is the federated facade over N per-site archive stores. It is safe
// for concurrent use (each archive.Store is; the facade adds no shared
// mutable state beyond counters).
type Store struct {
	sites  []*archive.Store
	codecs []*codec.Codec
	cfg    Config
	layout archive.StripeLayout

	metrics    *obs.Registry
	cFailover  *obs.Counter // reads served only after at least one site failed
	cQuorumRef *obs.Counter // puts refused below the site quorum
	cExStripes *obs.Counter // stripes recovered by joint block exchange
	cExBlkRead *obs.Counter // blocks fetched from sites during exchange/repair
	cExBlkWrit *obs.Counter // blocks re-exported to sites
	cExByRead  *obs.Counter // framed bytes of the above
	cExByWrit  *obs.Counter
	cRepairs   *obs.Counter // RepairSite runs
}

// New builds the facade. All sites must agree on block size and data-node
// count (they hold replicas of the same logical blocks); their graphs may
// — and for complementary fault tolerance should — differ.
func New(sites []*archive.Store, cfg Config) (*Store, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("fedstore: need at least 2 sites, got %d", len(sites))
	}
	if cfg.WriteQuorum <= 0 || cfg.WriteQuorum > len(sites) {
		cfg.WriteQuorum = len(sites)
	}
	if cfg.WAN != nil && cfg.WAN.Sites() != len(sites) {
		return nil, fmt.Errorf("fedstore: WAN has %d sites, store has %d", cfg.WAN.Sites(), len(sites))
	}
	layout := sites[0].Layout()
	f := &Store{sites: sites, cfg: cfg, layout: layout}
	for i, s := range sites {
		l := s.Layout()
		if l.BlockSize != layout.BlockSize || l.DataNodes != layout.DataNodes {
			return nil, fmt.Errorf("fedstore: site %d striping (%d×%d) differs from site 0 (%d×%d)",
				i, l.DataNodes, l.BlockSize, layout.DataNodes, layout.BlockSize)
		}
		c, err := codec.New(s.Graph(), l.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("fedstore: site %d codec: %w", i, err)
		}
		f.codecs = append(f.codecs, c)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f.metrics = reg
	f.cFailover = reg.Counter("fedstore.read_failover")
	f.cQuorumRef = reg.Counter("fedstore.put.quorum_refused")
	f.cExStripes = reg.Counter("fedstore.exchange.stripes")
	f.cExBlkRead = reg.Counter("fedstore.exchange.blocks_read")
	f.cExBlkWrit = reg.Counter("fedstore.exchange.blocks_written")
	f.cExByRead = reg.Counter("fedstore.exchange.bytes_read")
	f.cExByWrit = reg.Counter("fedstore.exchange.bytes_written")
	f.cRepairs = reg.Counter("fedstore.repair.site_repairs")
	return f, nil
}

// Sites returns the site count.
func (f *Store) Sites() int { return len(f.sites) }

// Site returns site i's archive store (tests and repair tooling reach
// through for site-local scrubs and meters).
func (f *Store) Site(i int) *archive.Store { return f.sites[i] }

// Layout returns the shared striping parameters.
func (f *Store) Layout() archive.StripeLayout { return f.layout }

// Metrics returns the registry carrying the fedstore.* counters.
func (f *Store) Metrics() *obs.Registry { return f.metrics }

// SiteUp reports whether site i is reachable under the WAN topology.
func (f *Store) SiteUp(i int) bool {
	return f.cfg.WAN == nil || f.cfg.WAN.SiteUp(i)
}

// linkUp reports whether sites a and b can exchange blocks.
func (f *Store) linkUp(a, b int) bool {
	return f.cfg.WAN == nil || f.cfg.WAN.LinkUp(a, b)
}

// linkStall sleeps out any brownout latency on the a-b link.
func (f *Store) linkStall(ctx context.Context, a, b int) error {
	if f.cfg.WAN == nil {
		return nil
	}
	d := f.cfg.WAN.LinkLatency(a, b)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// step advances the WAN schedule by one logical facade operation.
func (f *Store) step() {
	if f.cfg.WAN != nil {
		f.cfg.WAN.Step()
	}
}

// upSites returns the reachable site indices in ascending order.
func (f *Store) upSites() []int {
	var up []int
	for i := range f.sites {
		if f.SiteUp(i) {
			up = append(up, i)
		}
	}
	return up
}

// ExchangeTotals is the facade's own tally of cross-site exchange traffic
// (framed bytes, counted per successful block transfer). On a clean run it
// must equal SiteFederationTotals byte for byte — the conservation
// invariant the disaster soak and benchreport enforce.
func (f *Store) ExchangeTotals() repairbw.CostReport {
	return repairbw.CostReport{
		BlocksRead:    int(f.cExBlkRead.Value()),
		BlocksWritten: int(f.cExBlkWrit.Value()),
		BytesRead:     f.cExByRead.Value(),
		BytesWritten:  f.cExByWrit.Value(),
	}
}

// SiteFederationTotals aggregates every site's repairbw federation-cause
// meter — the store-side view of the same exchange traffic.
func (f *Store) SiteFederationTotals() repairbw.CostReport {
	var total repairbw.CostReport
	for _, s := range f.sites {
		total.Add(s.RepairMeter().Totals(repairbw.Federation))
	}
	return total
}

// Put stores the object at every reachable site. At least WriteQuorum
// sites must durably accept it; otherwise every successful site write is
// rolled back and the Put fails with ErrSiteQuorum — graceful degradation
// refuses new writes rather than silently under-replicating them.
func (f *Store) Put(name string, data []byte) error {
	return f.PutCtx(context.Background(), name, data)
}

// PutCtx is Put with cancellation.
func (f *Store) PutCtx(ctx context.Context, name string, data []byte) error {
	f.step()
	up := f.upSites()
	if len(up) < f.cfg.WriteQuorum {
		f.cQuorumRef.Inc()
		return fmt.Errorf("%w: %d sites up, quorum %d", ErrSiteQuorum, len(up), f.cfg.WriteQuorum)
	}
	var stored []int
	var firstErr error
	rollback := func() {
		for _, i := range stored {
			_ = f.sites[i].DeleteCtx(ctx, name) // best effort; quorum error wins
		}
	}
	for _, i := range up {
		err := f.sites[i].PutCtx(ctx, name, data)
		switch {
		case err == nil:
			stored = append(stored, i)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			rollback()
			return err
		default:
			// A degraded or failing site counts against the quorum but does
			// not abort the put outright — the healthy sites may still
			// carry it.
			if firstErr == nil {
				firstErr = fmt.Errorf("site %d: %w", i, err)
			}
		}
	}
	if len(stored) < f.cfg.WriteQuorum {
		rollback()
		f.cQuorumRef.Inc()
		if firstErr != nil {
			return fmt.Errorf("%w: %d of %d site writes succeeded (quorum %d): %s",
				ErrSiteQuorum, len(stored), len(up), f.cfg.WriteQuorum, firstErr)
		}
		return fmt.Errorf("%w: %d of %d site writes succeeded (quorum %d)",
			ErrSiteQuorum, len(stored), len(up), f.cfg.WriteQuorum)
	}
	return nil
}

// Get reads the object from the first reachable site that can serve it,
// failing over across sites; when every reachable site individually
// reports data loss it falls back to joint cross-site exchange recovery.
// The result is always bit-exact or a definitive error.
func (f *Store) Get(name string) ([]byte, error) {
	return f.GetCtx(context.Background(), name)
}

// GetCtx is Get with cancellation.
func (f *Store) GetCtx(ctx context.Context, name string) ([]byte, error) {
	f.step()
	up := f.upSites()
	if len(up) == 0 {
		return nil, fmt.Errorf("%w: all %d sites down", ErrNoSite, len(f.sites))
	}
	exists := false
	failedOver := false
	var lastErr error
	for _, i := range up {
		if _, err := f.sites[i].Stat(name); err != nil {
			continue // site never saw the object (down during Put, or rolled back)
		}
		exists = true
		data, _, err := f.sites[i].GetCtx(ctx, name)
		if err == nil {
			if failedOver {
				f.cFailover.Inc()
			}
			return data, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		failedOver = true
		lastErr = err
	}
	if !exists {
		return nil, fmt.Errorf("%w: %q", archive.ErrNotFound, name)
	}
	// Every site that knows the object failed to serve it alone. The
	// federation's last line: joint block exchange across sites.
	data, err := f.exchangeGet(ctx, name)
	if err == nil {
		f.cFailover.Inc()
		return data, nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil, err
	}
	return nil, fmt.Errorf("fedstore: %q lost at all reachable sites (last site error: %v): %w", name, lastErr, err)
}

// Delete removes the object from every reachable site.
func (f *Store) Delete(name string) error {
	return f.DeleteCtx(context.Background(), name)
}

// DeleteCtx is Delete with cancellation.
func (f *Store) DeleteCtx(ctx context.Context, name string) error {
	f.step()
	var firstErr error
	deleted := false
	for _, i := range f.upSites() {
		err := f.sites[i].DeleteCtx(ctx, name)
		switch {
		case err == nil:
			deleted = true
		case errors.Is(err, archive.ErrNotFound):
		case firstErr == nil:
			firstErr = fmt.Errorf("site %d: %w", i, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if !deleted {
		return fmt.Errorf("%w: %q", archive.ErrNotFound, name)
	}
	return nil
}

// SiteScrub is one site's scrub outcome from a federation-wide Scrub.
type SiteScrub struct {
	Site    int
	Skipped bool // site unreachable; no scrub ran
	Report  archive.ScrubReport
}

// Scrub runs a site-local scrub at every reachable site (repair=true
// rebuilds what each site can recover alone). Unreachable sites are
// reported skipped, not failed — they are scrubbed when they return.
func (f *Store) Scrub(repair bool) ([]SiteScrub, error) {
	return f.ScrubCtx(context.Background(), repair)
}

// ScrubCtx is Scrub with cancellation.
func (f *Store) ScrubCtx(ctx context.Context, repair bool) ([]SiteScrub, error) {
	f.step()
	out := make([]SiteScrub, len(f.sites))
	for i := range f.sites {
		out[i].Site = i
		if !f.SiteUp(i) {
			out[i].Skipped = true
			continue
		}
		rep, err := f.sites[i].ScrubCtx(ctx, repair)
		if err != nil {
			return out, fmt.Errorf("fedstore: scrub site %d: %w", i, err)
		}
		out[i].Report = rep
	}
	return out, nil
}
