package fedstore

import (
	"context"
	"errors"
	"fmt"

	"tornado/internal/archive"
	"tornado/internal/repairbw"
)

// exchangeGet recovers a whole object by joint cross-site block exchange —
// the read path of last resort, entered only after every reachable site
// individually failed to serve the object.
func (f *Store) exchangeGet(ctx context.Context, name string) ([]byte, error) {
	var obj archive.Object
	found := false
	for _, i := range f.upSites() {
		if o, err := f.sites[i].Stat(name); err == nil {
			obj = o
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", archive.ErrNotFound, name)
	}
	capacity := f.layout.DataNodes * f.layout.BlockSize
	out := make([]byte, 0, obj.Size)
	for st := 0; st < obj.Stripes; st++ {
		payloadLen := obj.Size - st*capacity
		if payloadLen > capacity {
			payloadLen = capacity
		}
		if payloadLen < 0 {
			payloadLen = 0
		}
		winner, blocks, err := f.recoverStripe(ctx, name, st)
		if err != nil {
			return nil, err
		}
		chunk, err := f.codecs[winner].Decode(blocks, payloadLen)
		if err != nil {
			return nil, fmt.Errorf("fedstore: decode %q stripe %d: %w", name, st, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// recoverStripe is the live version of federation.JointDecode: fetch what
// every reachable site still holds of one stripe, let each site's codec
// peel as far as it can, ship recovered data blocks between link-connected
// sites, and repeat to fixpoint. On success the reconstructed data blocks
// are re-exported to every participating site that was missing them (the
// cross-site repair write-back), and it returns the index of the site
// whose codec completed plus that site's block array (all data blocks
// filled). Every byte moved goes through ReadBlockCtx/WriteBlockCtx, so
// the sites bill it to the federation cause; the facade keeps its own
// tally in the fedstore.exchange.* counters for the conservation check.
func (f *Store) recoverStripe(ctx context.Context, name string, stripe int) (int, [][]byte, error) {
	// Participants: reachable sites that know the object.
	var live []int
	for _, i := range f.upSites() {
		if _, err := f.sites[i].Stat(name); err == nil {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return 0, nil, fmt.Errorf("%w: %q", ErrNoSite, name)
	}

	frameBytes := int64(f.sites[live[0]].FrameSize())
	perSite := make(map[int][][]byte, len(live))
	fetched := make(map[int][]bool, len(live))
	for _, i := range live {
		total := f.sites[i].Graph().Total
		blocks := make([][]byte, total)
		have := make([]bool, total)
		for node := 0; node < total; node++ {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			b, err := f.sites[i].ReadBlockCtx(ctx, name, stripe, node)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return 0, nil, err
				}
				continue // missing or corrupt: a hole for the peel to fill
			}
			blocks[node] = b
			have[node] = true
			f.cExBlkRead.Inc()
			f.cExByRead.Add(frameBytes)
		}
		perSite[i] = blocks
		fetched[i] = have
	}

	data := f.layout.DataNodes
	winner := -1
	for winner < 0 {
		// Let every site peel as far as it can (Repair reconstructs blocks
		// in place even when it ultimately fails).
		for _, i := range live {
			if err := f.codecs[i].Repair(perSite[i]); err == nil {
				winner = i
				break
			}
		}
		if winner >= 0 {
			break
		}
		// Exchange: ship any data block one site holds to every
		// link-connected site missing it.
		progress := false
		for v := 0; v < data; v++ {
			for _, b := range live {
				if perSite[b][v] != nil {
					continue
				}
				for _, a := range live {
					if a == b || perSite[a][v] == nil {
						continue
					}
					if !f.linkUp(a, b) {
						continue
					}
					if err := f.linkStall(ctx, a, b); err != nil {
						return 0, nil, err
					}
					perSite[b][v] = perSite[a][v]
					progress = true
					break
				}
			}
		}
		if !progress {
			return 0, nil, fmt.Errorf("%w: %q stripe %d lost at all %d reachable sites even with block exchange",
				archive.ErrDataLoss, name, stripe, len(live))
		}
	}
	f.cExStripes.Inc()

	// Cross-site repair write-back: re-export reconstructed data blocks to
	// every participating site that was missing them on disk. Check blocks
	// are site-specific and are rebuilt by each site's own repair scrub
	// once its data is whole.
	for _, j := range live {
		if j != winner && !f.linkUp(winner, j) {
			continue
		}
		for v := 0; v < data; v++ {
			if fetched[j][v] || perSite[winner][v] == nil {
				continue
			}
			if err := f.linkStall(ctx, winner, j); err != nil {
				return 0, nil, err
			}
			if err := f.sites[j].WriteBlockCtx(ctx, name, stripe, v, perSite[winner][v]); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return 0, nil, err
				}
				continue // site degraded mid-repair; a later RepairSite retries
			}
			f.cExBlkWrit.Inc()
			f.cExByWrit.Add(frameBytes)
		}
	}
	return winner, perSite[winner], nil
}

// RepairReport is the outcome of one RepairSite run.
type RepairReport struct {
	Site int
	// ShellsSynced counts object shells copied from donor metadata — the
	// objects the site missed entirely (down during Put, or device-wiped
	// with the steward database surviving).
	ShellsSynced int
	// LocalRepairs counts blocks the site's own repair scrub rebuilt from
	// its surviving blocks, before any cross-site traffic.
	LocalRepairs int
	// DirectImports counts data blocks copied straight from a donor
	// site's intact replica.
	DirectImports int
	// ExchangedStripes counts stripes that needed full joint exchange
	// because no single donor held the missing blocks.
	ExchangedStripes int
	// Exchange is the facade-tallied cross-site traffic of this repair.
	Exchange repairbw.CostReport
	// MissingAfter and Unrecoverable are the site's post-repair scrub
	// residue; both must be zero after a successful disaster recovery.
	MissingAfter  int
	Unrecoverable int
}

// RepairSite restores a site after a disaster: sync object shells from
// donor sites, let the site repair what it can locally, import still-
// missing data blocks from donor replicas (falling back to joint exchange
// when no single donor has them), and rebuild site-local check blocks with
// a final repair scrub. Every imported byte flows through the archive
// block interface and is billed to the federation repair cause.
func (f *Store) RepairSite(target int) (RepairReport, error) {
	return f.RepairSiteCtx(context.Background(), target)
}

// RepairSiteCtx is RepairSite with cancellation.
func (f *Store) RepairSiteCtx(ctx context.Context, target int) (RepairReport, error) {
	rep := RepairReport{Site: target}
	if target < 0 || target >= len(f.sites) {
		return rep, fmt.Errorf("fedstore: site %d out of range [0,%d)", target, len(f.sites))
	}
	if !f.SiteUp(target) {
		return rep, fmt.Errorf("%w: site %d", ErrSiteDown, target)
	}
	f.cRepairs.Inc()
	before := f.ExchangeTotals()
	ts := f.sites[target]

	// Donors: reachable sites with a working link to the target.
	var donors []int
	for _, i := range f.upSites() {
		if i != target && f.linkUp(i, target) {
			donors = append(donors, i)
		}
	}

	// Phase 1 — shell sync: recover metadata for objects the target never
	// saw. List is name-sorted at every site, so this is deterministic.
	for _, d := range donors {
		for _, obj := range f.sites[d].List() {
			if _, err := ts.Stat(obj.Name); err == nil {
				continue
			}
			if err := ts.PutShell(obj.Name, obj.Size, obj.Stripes); err != nil {
				return rep, fmt.Errorf("fedstore: shell %q at site %d: %w", obj.Name, target, err)
			}
			rep.ShellsSynced++
		}
	}

	// Phase 2 — local repair: everything the site can rebuild from its own
	// surviving blocks costs no WAN traffic.
	local, err := ts.ScrubCtx(ctx, true)
	if err != nil {
		return rep, fmt.Errorf("fedstore: local repair scrub at site %d: %w", target, err)
	}
	rep.LocalRepairs = local.BlocksRepaired

	// Phase 3 — import: probe what is still missing and pull data blocks
	// from donors; stripes no single donor can serve go through the full
	// joint exchange (whose write-back heals the target as a participant).
	probe, err := ts.ScrubCtx(ctx, false)
	if err != nil {
		return rep, fmt.Errorf("fedstore: probe scrub at site %d: %w", target, err)
	}
	data := f.layout.DataNodes
	for _, h := range probe.Stripes {
		needExchange := false
		for _, v := range h.Missing {
			if v >= data {
				continue // site-local check block; phase 4 rebuilds it
			}
			imported := false
			for _, d := range donors {
				if err := ctx.Err(); err != nil {
					return rep, err
				}
				b, err := f.sites[d].ReadBlockCtx(ctx, h.Object, h.Stripe, v)
				if err != nil {
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						return rep, err
					}
					continue
				}
				f.cExBlkRead.Inc()
				f.cExByRead.Add(int64(f.sites[d].FrameSize()))
				if err := f.linkStall(ctx, d, target); err != nil {
					return rep, err
				}
				if err := ts.WriteBlockCtx(ctx, h.Object, h.Stripe, v, b); err != nil {
					return rep, fmt.Errorf("fedstore: import %q stripe %d block %d to site %d: %w",
						h.Object, h.Stripe, v, target, err)
				}
				f.cExBlkWrit.Inc()
				f.cExByWrit.Add(int64(ts.FrameSize()))
				rep.DirectImports++
				imported = true
				break
			}
			if !imported {
				needExchange = true
			}
		}
		if needExchange {
			if _, _, err := f.recoverStripe(ctx, h.Object, h.Stripe); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return rep, err
				}
				continue // truly lost; the final scrub counts it
			}
			rep.ExchangedStripes++
		}
	}

	// Phase 4 — rebuild site-local check blocks from the now-complete data,
	// then measure the residue.
	if _, err := ts.ScrubCtx(ctx, true); err != nil {
		return rep, fmt.Errorf("fedstore: rebuild scrub at site %d: %w", target, err)
	}
	final, err := ts.ScrubCtx(ctx, false)
	if err != nil {
		return rep, fmt.Errorf("fedstore: final scrub at site %d: %w", target, err)
	}
	for _, h := range final.Stripes {
		rep.MissingAfter += len(h.Missing)
		if !h.Recoverable {
			rep.Unrecoverable++
		}
	}
	after := f.ExchangeTotals()
	rep.Exchange = repairbw.CostReport{
		BlocksRead:    after.BlocksRead - before.BlocksRead,
		BlocksWritten: after.BlocksWritten - before.BlocksWritten,
		BytesRead:     after.BytesRead - before.BytesRead,
		BytesWritten:  after.BytesWritten - before.BytesWritten,
	}
	return rep, nil
}
