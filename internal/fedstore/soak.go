// soak.go is the disaster campaign for the federated store: a seeded,
// deterministic end-to-end drill that builds an N-site federation (each
// site its own Tornado graph, device array, and chaos injector), loads it,
// then destroys one whole site — media wiped, WAN-unreachable — while the
// survivors take concurrent node-level chaos and a mid-storm WAN brownout.
// Throughout the storm every read must be bit-exact or a definitive error.
// After the storm the run quiesces node chaos, verifies the survivors
// converge to zero missing blocks on their own, restores the lost site
// through RepairSite, and enforces the federation invariants: zero residue
// at every site, every object bit-exact from every site individually, and
// exact conservation of repair bytes — the facade's own exchange tally must
// equal the sites' federation-cause meters byte for byte.
//
// Campaigns are fully deterministic: the same SoakConfig (including Seed)
// produces the identical fault schedule, operation mix, and SoakReport,
// fingerprint included.
package fedstore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"time"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/core"
	"tornado/internal/device"
	"tornado/internal/obs"
	"tornado/internal/repairbw"
)

// SoakConfig tunes one disaster campaign. The zero value is usable:
// defaults give a 3-site federation of 48-node graphs under moderate
// survivor-side fault rates.
type SoakConfig struct {
	// Seed drives the graph draws, the operation mix, the payloads, the
	// victim choice, and (via chaos.Config and WANConfig) every fault.
	Seed uint64
	// Sites is the federation size (>= 2). Default 3.
	Sites int
	// Ops is the storm length in facade operations. Default 240.
	Ops int
	// TotalNodes sizes each site's tornado graph. Default 48.
	TotalNodes int
	// BlockSize is the stripe block size. Default 64.
	BlockSize int
	// MaxObjectSize bounds Put payloads. Default 2048.
	MaxObjectSize int
	// Objects is how many objects the load phase stores before the
	// disaster. Default 6.
	Objects int
	// Faults is the per-site node-level schedule (Seed and Metrics are
	// overridden per site). The zero value gets DefaultSurvivorFaults.
	Faults chaos.Config
	// SiteFlapRate feeds the WAN's rate-based site flapping (negative
	// disables; zero gets the 0.004 default). FlapWindow defaults to 6.
	SiteFlapRate float64
	FlapWindow   int
	// ScrubEvery forces a federation scrub every N storm ops. Default 48.
	ScrubEvery int
	// Log, when non-nil, receives verbose per-phase commentary.
	Log io.Writer
}

// DefaultSurvivorFaults is the node-level schedule each site runs when
// SoakConfig.Faults is zero: every fault class active — including the
// latency class, so brownouts compose with slow nodes — at rates low
// enough that a surviving site stays individually recoverable between
// scrubs.
func DefaultSurvivorFaults() chaos.Config {
	return chaos.Config{
		BitFlipRate:     0.006,
		ReadCorruptRate: 0.006,
		TruncateRate:    0.003,
		TornWriteRate:   0.003,
		ReadErrRate:     0.015,
		WriteErrRate:    0.008,
		NodeLossRate:    0.001,
		MaxLostNodes:    1,
		FlapRate:        0.003,
		FlapWindow:      16,
		ReadLatencyRate: 0.002,
		LatencyMin:      20 * time.Microsecond,
		LatencyMax:      100 * time.Microsecond,
	}
}

// SoakReport is one campaign's outcome and the evidence for its invariants.
type SoakReport struct {
	Seed   uint64
	Sites  int
	Victim int // the site the disaster destroyed

	// Storm operation mix. RejectedPuts are writes refused with
	// ErrSiteQuorum — graceful degradation refusing to under-replicate,
	// never silent acceptance.
	Ops, Puts, RejectedPuts, Gets, Scrubs int
	// Acceptable storm read outcomes: definitive data-loss errors and
	// no-reachable-site errors. SilentCorruptions are Gets that returned
	// wrong bytes without an error — Check requires zero.
	DataLossGets      int
	NoSiteGets        int
	SilentCorruptions int

	// Fault accounting: node-level injections summed across sites, and the
	// WAN's site-scale injections.
	Injected    map[string]int64
	WANInjected map[string]int64

	// Post-storm convergence at the survivors (victim still dark): after
	// quiesce and repair scrubs both must be zero — the survivors owe the
	// victim a clean donor set before cross-site repair begins.
	SurvivorMissingAfterQuiesce int
	OutstandingAfterQuiesce     int

	// Repair is the victim's RepairSite outcome. SurvivorShellsSynced and
	// SurvivorImports capture the follow-up repairs that backfill objects
	// a survivor missed while flapping.
	Repair               RepairReport
	SurvivorShellsSynced int
	SurvivorImports      int

	// Conservation over the whole restore phase: the facade's own exchange
	// tally against the sites' federation-cause repair meters. Check
	// requires exact equality — every cross-site byte attributed, none
	// invented.
	RestoreExchange   repairbw.CostReport
	RestoreFederation repairbw.CostReport

	// Federation-wide residue after restore; both must be zero.
	FinalMissing       int
	FinalUnrecoverable int

	// Final verification: every object read back from every site
	// individually (VerifiedReads counts site×object successes), then the
	// whole namespace re-read through the facade concurrently.
	VerifiedReads            int
	FinalVerifyFailures      int
	ConcurrentVerifyFailures int

	// Fingerprint hashes the full operation/outcome log: two runs of the
	// same SoakConfig are identical iff their fingerprints match.
	Fingerprint string
}

// Check enforces the disaster-recovery invariants, returning nil when the
// campaign upheld all of them.
func (r SoakReport) Check() error {
	switch {
	case r.SilentCorruptions != 0:
		return fmt.Errorf("fedstore soak: %d silent corruptions during the storm (seed %d)",
			r.SilentCorruptions, r.Seed)
	case r.OutstandingAfterQuiesce != 0:
		return fmt.Errorf("fedstore soak: %d corruptions outstanding at survivors after quiesce (seed %d)",
			r.OutstandingAfterQuiesce, r.Seed)
	case r.SurvivorMissingAfterQuiesce != 0:
		return fmt.Errorf("fedstore soak: %d blocks missing at survivors after quiesce (seed %d)",
			r.SurvivorMissingAfterQuiesce, r.Seed)
	case r.Repair.MissingAfter != 0 || r.Repair.Unrecoverable != 0:
		return fmt.Errorf("fedstore soak: victim residue missing=%d unrecoverable=%d (seed %d)",
			r.Repair.MissingAfter, r.Repair.Unrecoverable, r.Seed)
	case r.Repair.Exchange.Zero():
		return fmt.Errorf("fedstore soak: full site wipe repaired with zero cross-site traffic (seed %d)", r.Seed)
	case r.RestoreExchange != r.RestoreFederation:
		return fmt.Errorf("fedstore soak: conservation violated: facade %+v != site meters %+v (seed %d)",
			r.RestoreExchange, r.RestoreFederation, r.Seed)
	case r.FinalMissing != 0:
		return fmt.Errorf("fedstore soak: %d blocks missing across the federation after restore (seed %d)",
			r.FinalMissing, r.Seed)
	case r.FinalUnrecoverable != 0:
		return fmt.Errorf("fedstore soak: %d stripes unrecoverable after restore (seed %d)",
			r.FinalUnrecoverable, r.Seed)
	case r.FinalVerifyFailures != 0:
		return fmt.Errorf("fedstore soak: %d site×object reads failed post-restore verification (seed %d)",
			r.FinalVerifyFailures, r.Seed)
	case r.ConcurrentVerifyFailures != 0:
		return fmt.Errorf("fedstore soak: %d concurrent facade reads failed post-restore (seed %d)",
			r.ConcurrentVerifyFailures, r.Seed)
	}
	return nil
}

// soakSite is one site's full stack inside a campaign.
type soakSite struct {
	store *archive.Store
	devs  device.Array
	inj   *chaos.Injector
}

// Soak executes one seeded disaster campaign and returns its report. An
// error means the harness itself failed — invariant violations are
// reported via SoakReport.Check, not the error.
func Soak(cfg SoakConfig) (SoakReport, error) {
	return SoakCtx(context.Background(), cfg)
}

// SoakCtx is Soak with cancellation: the campaign checks ctx between
// operations and aborts with the context's error. A run that completes
// produces the same report whether or not a context was attached.
func SoakCtx(ctx context.Context, cfg SoakConfig) (SoakReport, error) {
	if cfg.Sites < 2 {
		cfg.Sites = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 240
	}
	if cfg.TotalNodes <= 0 {
		cfg.TotalNodes = 48
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 64
	}
	if cfg.MaxObjectSize <= 0 {
		cfg.MaxObjectSize = 2048
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 6
	}
	if cfg.SiteFlapRate == 0 {
		cfg.SiteFlapRate = 0.004
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 6
	}
	if cfg.ScrubEvery <= 0 {
		cfg.ScrubEvery = 48
	}
	zero := chaos.Config{}
	if cfg.Faults == zero {
		cfg.Faults = DefaultSurvivorFaults()
	}

	rep := SoakReport{Seed: cfg.Seed, Sites: cfg.Sites, Ops: cfg.Ops}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	fp := sha256.New()
	note := func(format string, args ...any) {
		fmt.Fprintf(fp, format+"\n", args...)
	}

	// Build: one stack per site — own graph (different seed per site, the
	// complementary-graph deployment of §5.3), own devices, own injector.
	sites := make([]soakSite, cfg.Sites)
	stores := make([]*archive.Store, cfg.Sites)
	params := core.DefaultParams()
	params.TotalNodes = cfg.TotalNodes
	for i := range sites {
		g, _, err := core.Generate(params, rand.New(rand.NewPCG(cfg.Seed, 17+uint64(i))))
		if err != nil {
			return rep, fmt.Errorf("fedstore soak: site %d graph: %w", i, err)
		}
		reg := obs.NewRegistry()
		devs := device.NewArray(g.Total)
		faults := cfg.Faults
		faults.Seed = cfg.Seed + 0x9E3779B9*uint64(i+1)
		faults.Metrics = reg
		inj := chaos.Wrap(archive.NewArrayBackend(devs), faults)
		store, err := archive.NewWithBackend(g, inj, archive.Config{
			BlockSize:           cfg.BlockSize,
			Metrics:             reg,
			QuarantineThreshold: 5,
			MaxPutFailures:      3,
		})
		if err != nil {
			return rep, fmt.Errorf("fedstore soak: site %d store: %w", i, err)
		}
		sites[i] = soakSite{store: store, devs: devs, inj: inj}
		stores[i] = store
	}
	wanRate := cfg.SiteFlapRate
	if wanRate < 0 {
		wanRate = 0
	}
	wan := chaos.NewWAN(chaos.WANConfig{
		Sites:        cfg.Sites,
		Seed:         cfg.Seed ^ 0x57AD,
		SiteFlapRate: wanRate,
		FlapWindow:   cfg.FlapWindow,
	})
	f, err := New(stores, Config{WriteQuorum: cfg.Sites - 1, WAN: wan})
	if err != nil {
		return rep, fmt.Errorf("fedstore soak: facade: %w", err)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 13))
	golden := map[string][]byte{}
	var names []string

	put := func(i int) error {
		name := fmt.Sprintf("obj-%04d", len(names))
		size := 1 + rng.IntN(cfg.MaxObjectSize)
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(rng.IntN(256))
		}
		if err := f.PutCtx(ctx, name, data); err != nil {
			if errors.Is(err, ErrSiteQuorum) {
				rep.RejectedPuts++
				note("op %d put %s quorum-refused", i, name)
				return nil
			}
			return fmt.Errorf("fedstore soak: put %s: %w", name, err)
		}
		golden[name] = data
		names = append(names, name)
		rep.Puts++
		note("op %d put %s %d", i, name, size)
		return nil
	}
	get := func(i int) error {
		name := names[rng.IntN(len(names))]
		got, err := f.GetCtx(ctx, name)
		rep.Gets++
		switch {
		case err == nil && bytes.Equal(got, golden[name]):
			note("op %d get %s ok", i, name)
		case err == nil:
			rep.SilentCorruptions++
			note("op %d get %s SILENT", i, name)
			logf("op %d: SILENT CORRUPTION on %s", i, name)
		case errors.Is(err, archive.ErrDataLoss):
			rep.DataLossGets++
			note("op %d get %s dataloss", i, name)
		case errors.Is(err, ErrNoSite):
			rep.NoSiteGets++
			note("op %d get %s nosite", i, name)
		default:
			return fmt.Errorf("fedstore soak: get %s: %w", name, err)
		}
		return nil
	}
	scrub := func(i int) error {
		reps, err := f.ScrubCtx(ctx, true)
		if err != nil {
			return fmt.Errorf("fedstore soak: scrub: %w", err)
		}
		rep.Scrubs++
		for _, sr := range reps {
			if sr.Skipped {
				note("op %d scrub site %d skipped", i, sr.Site)
				continue
			}
			note("op %d scrub site %d repaired=%d corrupt=%d unrecov=%d", i, sr.Site,
				sr.Report.BlocksRepaired, sr.Report.CorruptFrames, sr.Report.Unrecoverable)
		}
		return nil
	}

	// Load: store the pre-disaster namespace. A flapping site can refuse a
	// put at quorum; retry until the target count is in, bounded so a
	// misconfigured quorum fails the harness instead of spinning.
	for attempt := 1; len(names) < cfg.Objects; attempt++ {
		if attempt > cfg.Objects*40 {
			return rep, fmt.Errorf("fedstore soak: load phase stored %d/%d objects after %d attempts",
				len(names), cfg.Objects, attempt-1)
		}
		if err := put(-attempt); err != nil {
			return rep, err
		}
	}

	// Disaster: one site drawn from the schedule is destroyed — WAN-dark
	// and every device wiped to a blank replacement. The object metadata
	// survives (the steward-database disaster model); the media does not.
	victim := rng.IntN(cfg.Sites)
	rep.Victim = victim
	note("storm victim %d", victim)
	logf("storm: destroying site %d", victim)
	wan.LoseSite(victim)
	for id := range sites[victim].devs {
		sites[victim].devs[id].Fail()
		sites[victim].inj.VoidNode(id)
		sites[victim].devs[id].Replace()
	}
	var survivors []int
	for i := 0; i < cfg.Sites; i++ {
		if i != victim {
			survivors = append(survivors, i)
		}
	}

	// Storm: mixed traffic against the degraded federation, survivors under
	// node-level chaos, plus a mid-storm brownout on a survivor-survivor
	// WAN link so exchange reads cross a slow path.
	for i := 0; i < cfg.Ops; i++ {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("fedstore soak: cancelled at op %d: %w", i, err)
		}
		if i == cfg.Ops/2 && len(survivors) >= 2 {
			wan.BrownoutLink(survivors[0], survivors[1], 200*time.Microsecond)
			note("op %d brownout %d-%d", i, survivors[0], survivors[1])
		}
		if i > 0 && i%cfg.ScrubEvery == 0 {
			if err := scrub(i); err != nil {
				return rep, err
			}
		}
		switch roll := rng.Float64(); {
		case roll < 0.20:
			if err := put(i); err != nil {
				return rep, err
			}
		case roll < 0.92:
			if err := get(i); err != nil {
				return rep, err
			}
		default:
			if err := scrub(i); err != nil {
				return rep, err
			}
		}
	}

	// Quiesce: stop node-level injection everywhere, restore injected
	// availability loss, readmit quarantined nodes, stop WAN flapping. The
	// victim stays dark — first the survivors must converge alone, because
	// they are about to be the victim's donors.
	for i := range sites {
		sites[i].inj.Quiesce()
		sites[i].inj.RestoreAll()
		for _, node := range sites[i].store.Quarantined() {
			sites[i].store.ClearQuarantine(node)
		}
	}
	wan.Quiesce()
	for _, s := range survivors {
		for pass := 0; pass < 2; pass++ {
			if _, err := sites[s].store.ScrubCtx(ctx, true); err != nil {
				return rep, fmt.Errorf("fedstore soak: survivor %d convergence scrub: %w", s, err)
			}
		}
		probe, err := sites[s].store.ScrubCtx(ctx, false)
		if err != nil {
			return rep, fmt.Errorf("fedstore soak: survivor %d probe scrub: %w", s, err)
		}
		for _, h := range probe.Stripes {
			rep.SurvivorMissingAfterQuiesce += len(h.Missing)
		}
		rep.OutstandingAfterQuiesce += sites[s].inj.Outstanding()
	}
	note("quiesce survivors missing=%d outstanding=%d",
		rep.SurvivorMissingAfterQuiesce, rep.OutstandingAfterQuiesce)

	// Restore: the victim comes back online (blank media, surviving
	// metadata) and RepairSite rebuilds it over the WAN; survivors then get
	// their own repair pass to backfill anything they missed while
	// flapping. The conservation delta brackets the whole phase: with
	// chaos quiesced, the facade's exchange tally and the sites'
	// federation-cause meters must move in lockstep.
	wan.RestoreSite(victim)
	wan.HealAll()
	exBefore, sfBefore := f.ExchangeTotals(), f.SiteFederationTotals()
	repV, err := f.RepairSiteCtx(ctx, victim)
	if err != nil {
		return rep, fmt.Errorf("fedstore soak: repair victim %d: %w", victim, err)
	}
	rep.Repair = repV
	note("repair victim shells=%d local=%d imports=%d exchanged=%d missing=%d unrecov=%d",
		repV.ShellsSynced, repV.LocalRepairs, repV.DirectImports, repV.ExchangedStripes,
		repV.MissingAfter, repV.Unrecoverable)
	for _, s := range survivors {
		r, err := f.RepairSiteCtx(ctx, s)
		if err != nil {
			return rep, fmt.Errorf("fedstore soak: repair survivor %d: %w", s, err)
		}
		rep.SurvivorShellsSynced += r.ShellsSynced
		rep.SurvivorImports += r.DirectImports
		note("repair survivor %d shells=%d imports=%d missing=%d", s,
			r.ShellsSynced, r.DirectImports, r.MissingAfter)
	}
	exAfter, sfAfter := f.ExchangeTotals(), f.SiteFederationTotals()
	rep.RestoreExchange = costDelta(exAfter, exBefore)
	rep.RestoreFederation = costDelta(sfAfter, sfBefore)
	note("restore exchange %+v federation %+v", rep.RestoreExchange, rep.RestoreFederation)

	// Final residue and verification: zero missing federation-wide, every
	// object bit-exact from every site individually, then the namespace
	// re-read concurrently through the facade (the -race workout; chaos is
	// quiesced, so outcomes stay deterministic).
	for i := range sites {
		probe, err := sites[i].store.ScrubCtx(ctx, false)
		if err != nil {
			return rep, fmt.Errorf("fedstore soak: final scrub site %d: %w", i, err)
		}
		for _, h := range probe.Stripes {
			rep.FinalMissing += len(h.Missing)
			if !h.Recoverable {
				rep.FinalUnrecoverable++
			}
		}
	}
	for _, name := range names {
		for i := range sites {
			got, _, err := sites[i].store.Get(name)
			if err != nil || !bytes.Equal(got, golden[name]) {
				rep.FinalVerifyFailures++
				note("final get %s site %d BAD", name, i)
				continue
			}
			rep.VerifiedReads++
		}
	}
	const workers = 4
	fails := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := w; idx < len(names); idx += workers {
				got, err := f.GetCtx(ctx, names[idx])
				if err != nil || !bytes.Equal(got, golden[names[idx]]) {
					fails[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	for _, n := range fails {
		rep.ConcurrentVerifyFailures += n
	}

	rep.Injected = map[string]int64{}
	for i := range sites {
		for class, n := range sites[i].inj.InjectedTotals() {
			rep.Injected[class] += n
		}
	}
	rep.WANInjected = wan.InjectedWANTotals()
	for _, class := range chaos.Classes {
		note("injected %s %d", class, rep.Injected[class])
	}
	for _, class := range chaos.WANClasses {
		note("wan %s %d", class, rep.WANInjected[class])
	}
	note("final missing=%d unrecov=%d verified=%d badverify=%d concbad=%d",
		rep.FinalMissing, rep.FinalUnrecoverable, rep.VerifiedReads,
		rep.FinalVerifyFailures, rep.ConcurrentVerifyFailures)
	rep.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	logf("campaign seed %d: victim %d, %d puts (%d refused), %d gets (%d dataloss, %d nosite), restore moved %d bytes, fingerprint %.12s",
		cfg.Seed, victim, rep.Puts, rep.RejectedPuts, rep.Gets, rep.DataLossGets, rep.NoSiteGets,
		rep.RestoreExchange.BytesRead+rep.RestoreExchange.BytesWritten, rep.Fingerprint)
	return rep, nil
}

// costDelta subtracts two CostReport snapshots.
func costDelta(after, before repairbw.CostReport) repairbw.CostReport {
	return repairbw.CostReport{
		BlocksRead:    after.BlocksRead - before.BlocksRead,
		BlocksWritten: after.BlocksWritten - before.BlocksWritten,
		BytesRead:     after.BytesRead - before.BytesRead,
		BytesWritten:  after.BytesWritten - before.BytesWritten,
	}
}
