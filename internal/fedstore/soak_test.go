package fedstore

import (
	"reflect"
	"testing"
)

func TestDisasterSoakConverges(t *testing.T) {
	rep, err := Soak(SoakConfig{Seed: 1})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Puts == 0 || rep.Gets == 0 {
		t.Errorf("degenerate storm: %d puts, %d gets", rep.Puts, rep.Gets)
	}
	// A full site wipe must have moved real bytes to the victim.
	if rep.Repair.Exchange.BytesWritten == 0 {
		t.Error("victim repair wrote zero bytes")
	}
	if rep.WANInjected["site_loss"] == 0 {
		t.Error("no site loss recorded — the disaster never happened")
	}
	if rep.VerifiedReads == 0 {
		t.Error("nothing verified post-restore")
	}
}

func TestDisasterSoakDeterministic(t *testing.T) {
	a, err := Soak(SoakConfig{Seed: 42, Ops: 120, Objects: 4})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	b, err := Soak(SoakConfig{Seed: 42, Ops: 120, Objects: 4})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same seed, different fingerprints: %.12s vs %.12s", a.Fingerprint, b.Fingerprint)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	c, err := Soak(SoakConfig{Seed: 43, Ops: 120, Objects: 4})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Error("different seeds produced identical fingerprints")
	}
}

func TestDisasterSoakSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in short mode")
	}
	for seed := uint64(2); seed <= 4; seed++ {
		rep, err := Soak(SoakConfig{Seed: seed, Ops: 160, Objects: 4})
		if err != nil {
			t.Fatalf("seed %d harness: %v", seed, err)
		}
		if err := rep.Check(); err != nil {
			t.Error(err)
		}
	}
}
