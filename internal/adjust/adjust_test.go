package adjust

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// defectivePair builds a 12-node graph whose only worst-case-2 failure is
// the closed pair {0,1} (the paper's "17 [48,57] / 22 [48,57]" situation),
// with enough uninvolved checks for the adjustment to use as replacements.
func defectivePair(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	r := b.AddLevel(0, 6, 6)
	g := b.Graph()
	g.SetNeighbors(r+0, []int{0, 1}) // sealed pair...
	g.SetNeighbors(r+1, []int{0, 1}) // ...defect
	g.SetNeighbors(r+2, []int{2, 3})
	g.SetNeighbors(r+3, []int{4, 5})
	g.SetNeighbors(r+4, []int{2, 4})
	g.SetNeighbors(r+5, []int{3, 5})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func firstFailure(t *testing.T, g *graph.Graph, maxK int) int {
	t.Helper()
	res, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: maxK})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		return maxK + 1
	}
	return res.FirstFailure
}

func TestClearKRemovesClosedPair(t *testing.T) {
	g := defectivePair(t)
	if ff := firstFailure(t, g, 3); ff != 2 {
		t.Fatalf("fixture first failure = %d, want 2", ff)
	}
	improved, rep, err := ClearK(g, 2, Options{}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cleared {
		t.Fatalf("not cleared: %+v", rep)
	}
	if rep.InitialFailures != 1 || rep.FinalFailures != 0 {
		t.Errorf("failure counts: %+v", rep)
	}
	if len(rep.Rewires) == 0 {
		t.Error("no rewires recorded")
	}
	if err := improved.Validate(); err != nil {
		t.Fatalf("improved graph invalid: %v", err)
	}
	if ff := firstFailure(t, improved, 2); ff != 3 {
		t.Errorf("improved first failure should exceed 2")
	}
	// Input graph must be untouched.
	if ff := firstFailure(t, g, 2); ff != 2 {
		t.Error("ClearK mutated its input")
	}
}

func TestClearKAlreadyClean(t *testing.T) {
	g := defectivePair(t)
	improved, rep, err := ClearK(g, 1, Options{}, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cleared || rep.InitialFailures != 0 || len(rep.Rewires) != 0 {
		t.Errorf("clean cardinality: %+v", rep)
	}
	if improved.EdgeCount() != g.EdgeCount() {
		t.Error("graph changed despite clean cardinality")
	}
}

func TestImproveRaisesFirstFailure(t *testing.T) {
	g := defectivePair(t)
	improved, reports, err := Improve(g, 3, Options{}, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no adjustment reports")
	}
	before := firstFailure(t, g, 3)
	after := firstFailure(t, improved, 3)
	if after <= before {
		t.Errorf("Improve: first failure %d → %d", before, after)
	}
	t.Logf("first failure %d → %d in %d cleared cardinalities", before, after, len(reports))
}

func TestImproveOnScreenedTornado(t *testing.T) {
	// A screened 96-node tornado tolerates 2 losses; Improve at maxK=3
	// should clear any 3-loss failures (cheap: C(96,3) per round).
	gph, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(8, 8)))
	if err != nil {
		t.Fatal(err)
	}
	improved, reports, err := Improve(gph, 3, Options{MaxRounds: 12}, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	after := firstFailure(t, improved, 3)
	if after < 4 {
		// Improve returns best effort; only fail the test when it claimed
		// success.
		cleared := true
		for _, r := range reports {
			cleared = cleared && r.Cleared
		}
		if cleared {
			t.Errorf("all cardinalities cleared but first failure is %d", after)
		} else {
			t.Logf("adjustment stalled (allowed): first failure %d", after)
		}
	}
}

func TestPickRewireNoFailures(t *testing.T) {
	g := defectivePair(t)
	if _, ok := pickRewire(g, nil, rand.New(rand.NewPCG(1, 2))); ok {
		t.Error("pickRewire with no failures should report false")
	}
}

func TestPickRewireTargetsMostFrequentDataNode(t *testing.T) {
	g := defectivePair(t)
	// Two failure sets both containing node 0; node 0 must be the target.
	failures := [][]int{{0, 1}, {0, 2, 6}}
	rw, ok := pickRewire(g, failures, rand.New(rand.NewPCG(4, 4)))
	if !ok {
		t.Fatal("pickRewire failed")
	}
	if rw.Left != 0 {
		t.Errorf("target = %d, want 0 (appears in both failure sets)", rw.Left)
	}
	if !g.HasEdge(rw.From, rw.Left) {
		t.Errorf("From %d is not a parent of the target", rw.From)
	}
	if g.HasEdge(rw.To, rw.Left) {
		t.Errorf("To %d already references the target", rw.To)
	}
}
