package adjust

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"tornado/internal/core"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// tornado32 generates a small screened Tornado graph whose adjustment run
// exercises several rounds (unlike the one-rewire defectivePair fixture).
func tornado32(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	p := core.DefaultParams()
	p.TotalNodes = 32
	p.MinFinalLeft = 4
	g, _, err := core.Generate(p, rand.New(rand.NewPCG(seed, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestClearKSeededReproducible is the regression test for adjustment drift:
// the same seed must yield an identical Report and graph fingerprint at any
// worker count, which holds only if the failure witnesses feeding
// pickRewire are themselves worker-count independent.
func TestClearKSeededReproducible(t *testing.T) {
	g := tornado32(t, 11)
	res, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("fixture tolerates 4 losses; nothing to clear")
	}
	k := res.FirstFailure

	type run struct {
		rep Report
		fp  string
	}
	var runs []run
	for _, workers := range []int{1, 8, 1} {
		out, rep, err := ClearKCtx(t.Context(), g, k, Options{MaxRounds: 6, Workers: workers}, rand.New(rand.NewPCG(7, 7)))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{rep, out.Fingerprint()})
	}
	for i := 1; i < len(runs); i++ {
		if !reflect.DeepEqual(runs[i].rep, runs[0].rep) {
			t.Errorf("run %d report differs:\n got %+v\nwant %+v", i, runs[i].rep, runs[0].rep)
		}
		if runs[i].fp != runs[0].fp {
			t.Errorf("run %d graph fingerprint differs", i)
		}
	}
}

// TestClearKLineageMatchesGraph: replaying the reported rewires on the
// input reproduces the returned graph — the lineage never includes a
// reverted (degrading) step.
func TestClearKLineageMatchesGraph(t *testing.T) {
	g := tornado32(t, 11)
	res, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("fixture tolerates 4 losses; nothing to clear")
	}
	out, rep, err := ClearK(g, res.FirstFailure, Options{MaxRounds: 6}, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	replay := g.Clone()
	for _, rw := range rep.Rewires {
		replay.RewireEdge(rw.Left, rw.From, rw.To)
	}
	if replay.Fingerprint() != out.Fingerprint() {
		t.Errorf("replaying %d rewires does not reproduce the returned graph", len(rep.Rewires))
	}
}

// TestClearKNeverDegrades: the returned graph's failure count can only be
// at or below the input's — a rewire that made things worse must have been
// reverted rather than kept.
func TestClearKNeverDegrades(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := tornado32(t, seed)
		res, err := sim.WorstCase(g, sim.WorstCaseOptions{MaxK: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		k := res.FirstFailure
		out, rep, err := ClearK(g, k, Options{MaxRounds: 4}, rand.New(rand.NewPCG(seed, 99)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.FinalFailures > rep.InitialFailures {
			t.Errorf("seed %d: failures rose %d → %d", seed, rep.InitialFailures, rep.FinalFailures)
		}
		kr, err := sim.ExhaustiveK(out, k, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if kr.FailureCount != rep.FinalFailures {
			t.Errorf("seed %d: returned graph has %d failures at k=%d, report says %d",
				seed, kr.FailureCount, k, rep.FinalFailures)
		}
	}
}
