// Package adjust implements the paper's feedback-based graph adjustment
// procedure (§3.3): run the exhaustive worst-case test at the first failing
// cardinality, identify the critical left node involved in the most failure
// sets, move one of its edges from the most-implicated check to a check not
// involved in any failure, and re-test. In the paper this reliably raised
// the first failure of screened Tornado graphs from 4 lost nodes to 5.
package adjust

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"

	"tornado/internal/defect"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

// Options tunes the adjustment loop.
type Options struct {
	// MaxRounds bounds the number of rewires attempted while clearing one
	// cardinality. Default 16.
	MaxRounds int
	// MaxFailures caps the failure sets collected per test round. Default 256.
	MaxFailures int
	// Workers is passed to the exhaustive search; default GOMAXPROCS.
	Workers int
}

func (o *Options) setDefaults() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 16
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 256
	}
}

// Rewire records one adjustment step.
type Rewire struct {
	Left int // the critical left node adjusted
	From int // the implicated check the edge was removed from
	To   int // the uninvolved replacement check
}

// Report describes an adjustment run.
type Report struct {
	K               int      // cardinality being cleared
	InitialFailures int64    // failing sets before adjustment
	FinalFailures   int64    // failing sets in the returned graph
	Rounds          int      // test rounds executed
	Rewires         []Rewire // applied steps (of the returned best graph's lineage)
	Cleared         bool     // no failures remain at cardinality K
}

// ClearK attempts to eliminate every failing erasure set of cardinality k
// by iterative rewiring. It returns the best graph found (fewest failures
// at k; the input graph is not modified) together with a report. Cleared
// is false when the loop runs out of rounds or candidates — the paper notes
// success "is ultimately related to the degree of the graph".
func ClearK(g *graph.Graph, k int, opts Options, rng *rand.Rand) (*graph.Graph, Report, error) {
	return ClearKCtx(context.Background(), g, k, opts, rng)
}

// ClearKCtx is ClearK with cancellation: the exhaustive re-tests honor ctx
// and the rewire loop checks it between rounds, so a canceled adjustment
// returns within one test round.
func ClearKCtx(ctx context.Context, g *graph.Graph, k int, opts Options, rng *rand.Rand) (*graph.Graph, Report, error) {
	opts.setDefaults()
	rep := Report{K: k}

	work := g.Clone()
	kr, err := sim.ExhaustiveKCtx(ctx, work, k, opts.MaxFailures, opts.Workers)
	if err != nil {
		return nil, rep, err
	}
	rep.InitialFailures = kr.FailureCount
	rep.FinalFailures = kr.FailureCount
	rep.Rounds = 1

	best := work.Clone()
	bestCount := kr.FailureCount
	var bestRewires []Rewire
	var lineage []Rewire

	for round := 0; kr.FailureCount > 0 && round < opts.MaxRounds; round++ {
		rw, ok := pickRewire(work, kr.Failures, rng)
		if !ok {
			break // insufficient replacement candidates (paper §3.3)
		}
		work.RewireEdge(rw.Left, rw.From, rw.To)

		krNew, err := sim.ExhaustiveKCtx(ctx, work, k, opts.MaxFailures, opts.Workers)
		if err != nil {
			return nil, rep, err
		}
		rep.Rounds++
		if krNew.FailureCount > kr.FailureCount {
			// The rewire made things worse: undo it so work never drifts
			// from its recorded lineage, and pick again from the previous
			// failure sets (the rng has advanced, so the next pick can
			// land elsewhere).
			work.RewireEdge(rw.Left, rw.To, rw.From)
			continue
		}
		lineage = append(lineage, rw)
		kr = krNew
		if kr.FailureCount < bestCount {
			bestCount = kr.FailureCount
			best = work.Clone()
			bestRewires = append([]Rewire(nil), lineage...)
		}
	}

	rep.FinalFailures = bestCount
	rep.Rewires = bestRewires
	rep.Cleared = bestCount == 0
	return best, rep, nil
}

// Improve finds the graph's first failing cardinality (searching up to
// maxK) and repeatedly clears it, raising the first failure point until
// either maxK is tolerated or adjustment stalls. It returns the improved
// graph and the reports of each cleared cardinality.
func Improve(g *graph.Graph, maxK int, opts Options, rng *rand.Rand) (*graph.Graph, []Report, error) {
	return ImproveCtx(context.Background(), g, maxK, opts, rng)
}

// ImproveCtx is Improve with cancellation threaded through every worst-case
// search and adjustment round.
func ImproveCtx(ctx context.Context, g *graph.Graph, maxK int, opts Options, rng *rand.Rand) (*graph.Graph, []Report, error) {
	var reports []Report
	cur := g
	for {
		wc, err := sim.WorstCaseCtx(ctx, cur, sim.WorstCaseOptions{MaxK: maxK, MaxFailures: opts.MaxFailures, Workers: opts.Workers})
		if err != nil {
			return nil, reports, err
		}
		if !wc.Found {
			return cur, reports, nil // tolerates everything up to maxK
		}
		next, rep, err := ClearKCtx(ctx, cur, wc.FirstFailure, opts, rng)
		if err != nil {
			return nil, reports, err
		}
		reports = append(reports, rep)
		cur = next
		if !rep.Cleared {
			return cur, reports, nil // stalled; return best effort
		}
	}
}

// pickRewire chooses the adjustment step from the current failure sets:
// the data node appearing in the most failure sets is the target; among the
// target's checks, the one most implicated in failures is dropped; the
// replacement is a check in the same level that is involved in no failure
// set and not already a neighbor, preferring low degree.
func pickRewire(g *graph.Graph, failures [][]int, rng *rand.Rand) (Rewire, bool) {
	if len(failures) == 0 {
		return Rewire{}, false
	}
	// Frequency of data nodes across failure sets, and the set of involved
	// checks (erased checks plus checks of erased data nodes).
	dataFreq := map[int]int{}
	involved := map[int]bool{}
	for _, f := range failures {
		for _, v := range f {
			if g.IsData(v) {
				dataFreq[v]++
				for _, p := range g.Parents(v) {
					involved[int(p)] = true
				}
			} else {
				involved[v] = true
			}
		}
	}
	if len(dataFreq) == 0 {
		return Rewire{}, false
	}
	target, bestFreq := -1, 0
	for v, c := range dataFreq {
		if c > bestFreq || (c == bestFreq && (target < 0 || v < target)) {
			target, bestFreq = v, c
		}
	}

	// Most implicated parent of the target: count appearances of each
	// parent inside the failure sets containing the target.
	parentFreq := map[int]int{}
	for _, f := range failures {
		if !contains(f, target) {
			continue
		}
		for _, p := range g.Parents(target) {
			// A parent is implicated when it is erased in the set or
			// seals another erased data node in the set.
			for _, v := range f {
				if v == int(p) || (g.IsData(v) && v != target && g.HasEdge(int(p), v)) {
					parentFreq[int(p)]++
					break
				}
			}
		}
	}
	from := -1
	for _, p := range g.Parents(target) {
		if from < 0 || parentFreq[int(p)] > parentFreq[from] {
			from = int(p)
		}
	}
	if from < 0 {
		return Rewire{}, false
	}

	// Replacement candidates: same level, uninvolved, not already adjacent.
	li := g.LevelOfRight(from)
	lv := g.Levels[li]
	var cands []int
	for r := lv.RightFirst; r < lv.RightFirst+lv.RightCount; r++ {
		if involved[r] || g.HasEdge(r, target) {
			continue
		}
		cands = append(cands, r)
	}
	if len(cands) == 0 || g.RightDegree(from) <= 1 {
		return Rewire{}, false
	}
	to := cands[rng.IntN(len(cands))]
	for _, r := range cands {
		if g.RightDegree(r) < g.RightDegree(to) {
			to = r
		}
	}

	// Screen the candidates so adjustment cannot trade exhaustive-search
	// failures for a structural defect: tentatively apply each rewire and
	// reject any that plants a new closed data set (the same condition the
	// generation gate enforces, evaluated by the bitmask kernel). The
	// preferred candidate goes first, the rest in ascending degree; when
	// every candidate introduces a defect, fall back to the preferred one —
	// the graph may already carry the defect this rewire is meant to fix.
	before := defect.ScanDataLevel(g, rewireScreenSize)
	rest := make([]int, 0, len(cands)-1)
	for _, r := range cands {
		if r != to {
			rest = append(rest, r)
		}
	}
	slices.SortStableFunc(rest, func(a, b int) int { return g.RightDegree(a) - g.RightDegree(b) })
	for _, cand := range append([]int{to}, rest...) {
		g.RewireEdge(target, from, cand)
		bad := introducesNewDefect(g, before)
		g.RewireEdge(target, cand, from)
		if !bad {
			return Rewire{Left: target, From: from, To: cand}, true
		}
	}
	return Rewire{Left: target, From: from, To: to}, true
}

// rewireScreenSize bounds the closed-set screen applied to replacement
// candidates — the generation gate's default scan depth.
const rewireScreenSize = 3

// introducesNewDefect reports whether g (with a rewire tentatively applied)
// has a data-level closed set that was not present before the rewire.
func introducesNewDefect(g *graph.Graph, before []defect.Finding) bool {
	for _, f := range defect.ScanDataLevel(g, rewireScreenSize) {
		known := false
		for _, b := range before {
			if slices.Equal(f.Lefts, b.Lefts) {
				known = true
				break
			}
		}
		if !known {
			return true
		}
	}
	return false
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (r Rewire) String() string {
	return fmt.Sprintf("left %d: %d → %d", r.Left, r.From, r.To)
}
