package reliability

import (
	"fmt"
	"math"
)

// MTTDL computes the mean time to data loss of an n-device system under a
// continuous-time birth–death repair model — the extension the paper's
// Table 5 sets aside ("no repair"). Devices fail independently at rate
// lambda; up to repairmen failed devices are rebuilt concurrently at rate
// mu each. The erasure code's measured profile failGivenK supplies the
// probability that a configuration of k failed devices has already lost
// data; conditioned on surviving k failures, the next failure is fatal
// with probability
//
//	q_k = (F(k+1) − F(k)) / (1 − F(k)).
//
// The chain's states are the non-fatal failure counts 0..kmax (kmax is the
// last k with F(k) < 1); absorption is data loss. The expected absorption
// time from the all-healthy state solves a tridiagonal first-step system.
//
// Units: lambda and mu are rates per the same time unit; the result is in
// that unit. For an annual failure rate a, lambda ≈ −ln(1−a) per year.
func MTTDL(n int, lambda, mu float64, repairmen int, failGivenK func(k int) float64) (float64, error) {
	if n < 1 || lambda <= 0 {
		return 0, fmt.Errorf("reliability: need n >= 1 and lambda > 0")
	}
	if mu < 0 || repairmen < 0 {
		return 0, fmt.Errorf("reliability: negative repair parameters")
	}
	if f0 := failGivenK(0); f0 > 0 {
		return 0, fmt.Errorf("reliability: profile reports failure with zero losses (%v)", f0)
	}

	// Last survivable state.
	kmax := 0
	for k := 0; k < n; k++ {
		if failGivenK(k) < 1 {
			kmax = k
		} else {
			break
		}
	}

	// First-step analysis: for k in 0..kmax,
	//   (a_k + d_k) T_k = 1 + u_k T_{k+1} + d_k T_{k-1}
	// with a_k the total failure rate, u_k = a_k (1 − q_k) the non-fatal
	// part, d_k the repair rate; T_{kmax+1} plays no role because from
	// kmax every further failure is fatal (u_kmax may still be nonzero if
	// F(kmax+1) < 1 — guard by clamping q to [0,1]).
	size := kmax + 1
	// Tridiagonal coefficients: sub[k] T_{k-1} + diag[k] T_k + sup[k] T_{k+1} = 1.
	sub := make([]float64, size)
	diag := make([]float64, size)
	sup := make([]float64, size)
	for k := 0; k <= kmax; k++ {
		ak := float64(n-k) * lambda
		dk := float64(min(k, repairmen)) * mu
		Fk := failGivenK(k)
		Fk1 := failGivenK(k + 1)
		qk := 0.0
		if Fk < 1 {
			qk = (Fk1 - Fk) / (1 - Fk)
		}
		if qk < 0 {
			qk = 0
		}
		if qk > 1 {
			qk = 1
		}
		uk := ak * (1 - qk)
		diag[k] = ak + dk
		if k > 0 {
			sub[k] = -dk
		}
		if k < kmax {
			sup[k] = -uk
		}
		// Transitions above kmax are fatal regardless; uk beyond kmax is
		// dropped, which is exactly "next failure kills".
		if diag[k] <= 0 {
			return 0, fmt.Errorf("reliability: absorbing non-fatal state %d (no failure or repair flow)", k)
		}
	}

	// Thomas algorithm.
	rhs := make([]float64, size)
	for i := range rhs {
		rhs[i] = 1
	}
	for k := 1; k < size; k++ {
		m := sub[k] / diag[k-1]
		diag[k] -= m * sup[k-1]
		rhs[k] -= m * rhs[k-1]
		if diag[k] == 0 {
			return 0, fmt.Errorf("reliability: singular chain at state %d", k)
		}
	}
	T := make([]float64, size)
	T[size-1] = rhs[size-1] / diag[size-1]
	for k := size - 2; k >= 0; k-- {
		T[k] = (rhs[k] - sup[k]*T[k+1]) / diag[k]
	}
	return T[0], nil
}

// AnnualLossProbability converts an MTTDL into the probability of data
// loss within one year under the standard exponential approximation.
func AnnualLossProbability(mttdlYears float64) float64 {
	if mttdlYears <= 0 {
		return 1
	}
	return 1 - math.Exp(-1/mttdlYears)
}
