package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"tornado/internal/raid"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBinomialPMFBasics(t *testing.T) {
	// n=2, p=0.5: 0.25, 0.5, 0.25.
	for k, want := range []float64{0.25, 0.5, 0.25} {
		if got := BinomialPMF(2, k, 0.5); !approx(got, want, 1e-12) {
			t.Errorf("PMF(2,%d,0.5) = %v, want %v", k, got, want)
		}
	}
	if BinomialPMF(5, -1, 0.3) != 0 || BinomialPMF(5, 6, 0.3) != 0 {
		t.Error("out-of-range k should be 0")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 3, 0) != 0 {
		t.Error("p=0 edge case")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 3, 1) != 0 {
		t.Error("p=1 edge case")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0.01, 0.3, 0.9} {
		sum := 0.0
		for k := 0; k <= 96; k++ {
			sum += BinomialPMF(96, k, p)
		}
		if !approx(sum, 1, 1e-9) {
			t.Errorf("PMF(96,·,%v) sums to %v", p, sum)
		}
	}
}

func TestPaperExactProbabilities(t *testing.T) {
	// §5.1 quotes P(exactly 3 disks fail) = 0.056 and
	// P(exactly 5 disks fail) = 0.0024 for 96 disks at p = 0.01.
	if got := BinomialPMF(96, 3, 0.01); !approx(got, 0.056, 0.001) {
		t.Errorf("P(exactly 3) = %v, paper says ≈0.056", got)
	}
	if got := BinomialPMF(96, 5, 0.01); !approx(got, 0.0024, 0.0002) {
		t.Errorf("P(exactly 5) = %v, paper says ≈0.0024", got)
	}
}

// TestTable5Baselines reproduces the analytic rows of Table 5: 96 disks,
// AFR p = 0.01, no repair.
func TestTable5Baselines(t *testing.T) {
	cases := []struct {
		name string
		f    func(k int) float64
		want float64
	}{
		{"Striping", func(k int) float64 { return raid.StripingFailGivenK(96, k) }, 0.61895},
		{"RAID5", func(k int) float64 { return raid.RAID5FailGivenK(8, 12, k) }, 0.04834},
		{"RAID6", func(k int) float64 { return raid.RAID6FailGivenK(8, 12, k) }, 0.00164},
		{"Mirrored", func(k int) float64 { return raid.MirroredFailGivenK(48, k) }, 0.00479},
	}
	for _, c := range cases {
		got := SystemFailure(96, 0.01, c.f)
		if !approx(got, c.want, 5e-5) {
			t.Errorf("Table 5 %s: P(fail) = %.6f, paper %.5f", c.name, got, c.want)
		}
	}
}

func TestTornadoLikeReliabilityScale(t *testing.T) {
	// A profile with first failure at 5 and the paper's measured F(5) =
	// 14/61,124,064 should land near Table 5's ≈6e-10 (the k=5 term
	// dominates; later terms depend on the full profile, so only the
	// magnitude is checked).
	f := func(k int) float64 {
		switch {
		case k < 5:
			return 0
		case k == 5:
			return 14.0 / 61124064
		default:
			return 1e-5 * math.Pow(4, float64(k-6)) // schematic tail
		}
	}
	got := SystemFailure(96, 0.01, f)
	if got < 1e-10 || got > 1e-8 {
		t.Errorf("tornado-like P(fail) = %.3g, expected ~1e-9 like Table 5", got)
	}
}

func TestDominantTerm(t *testing.T) {
	// For mirroring the k=2 term dominates at p=0.01 (first failure).
	k, c := DominantTerm(96, 0.01, func(k int) float64 { return raid.MirroredFailGivenK(48, k) })
	if k != 2 {
		t.Errorf("dominant k = %d, want 2", k)
	}
	if c <= 0 {
		t.Errorf("contribution = %v", c)
	}
	total := SystemFailure(96, 0.01, func(k int) float64 { return raid.MirroredFailGivenK(48, k) })
	if c > total {
		t.Errorf("contribution %v exceeds total %v", c, total)
	}
}

// Property: SystemFailure is within [0,1] and increasing in the AFR for a
// monotone profile.
func TestQuickSystemFailureSane(t *testing.T) {
	profile := func(k int) float64 { return raid.RAID5FailGivenK(8, 12, k) }
	f := func(a, b uint16) bool {
		p1 := float64(a%1000) / 2000 // [0, 0.5)
		p2 := float64(b%1000) / 2000
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		f1 := SystemFailure(96, p1, profile)
		f2 := SystemFailure(96, p2, profile)
		return f1 >= 0 && f2 <= 1+1e-9 && f1 <= f2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
