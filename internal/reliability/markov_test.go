package reliability

import (
	"math"
	"testing"

	"tornado/internal/raid"
)

// stripingProfile: any failure is fatal.
func stripingProfile(n int) func(int) float64 {
	return func(k int) float64 {
		if k >= 1 {
			return 1
		}
		return 0
	}
}

// singleParityProfile: one loss fine, two fatal (a single RAID5 LUN).
func singleParityProfile(k int) float64 {
	if k >= 2 {
		return 1
	}
	return 0
}

func TestMTTDLStripingNoRepair(t *testing.T) {
	// With every failure fatal, MTTDL is exactly the first-failure time
	// 1/(n·λ), repair irrelevant.
	n, lambda := 96, 0.01
	got, err := MTTDL(n, lambda, 100, 4, stripingProfile(n))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (float64(n) * lambda)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("MTTDL = %v, want %v", got, want)
	}
}

func TestMTTDLSingleParityClosedForm(t *testing.T) {
	// Classic 2-state chain for an m-disk single-parity array:
	//   T0 = 1/(mλ) + T1
	//   T1 = 1/((m−1)λ+μ) + μ/((m−1)λ+μ)·T0
	// Solve exactly and compare.
	m, lambda, mu := 12, 0.01, 52.0
	a0 := float64(m) * lambda
	a1 := float64(m-1) * lambda
	// T0 = 1/a0 + T1 ; T1 = (1 + mu·T0)/(a1+mu)
	// ⇒ T0·(1 − mu/(a1+mu)) = 1/a0 + 1/(a1+mu)
	// ⇒ T0 = (a1+mu)/(a0·a1) + 1/a1
	t0 := (a1+mu)/(a0*a1) + 1/a1
	got, err := MTTDL(m, lambda, mu, 1, singleParityProfile)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-t0) > 1e-9*t0 {
		t.Errorf("MTTDL = %v, closed form %v", got, t0)
	}
	// And the folklore approximation μ/(m(m−1)λ²) should be in the right
	// ballpark when μ >> λ.
	approx := mu / (float64(m*(m-1)) * lambda * lambda)
	if got < approx/2 || got > approx*2 {
		t.Errorf("MTTDL %v vs approximation %v", got, approx)
	}
}

func TestMTTDLRepairHelps(t *testing.T) {
	prof := func(k int) float64 { return raid.MirroredFailGivenK(48, k) }
	noRepair, err := MTTDL(96, 0.01, 0, 0, prof)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MTTDL(96, 0.01, 12, 1, prof)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MTTDL(96, 0.01, 52, 4, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !(noRepair < slow && slow < fast) {
		t.Errorf("MTTDL ordering wrong: %v, %v, %v", noRepair, slow, fast)
	}
}

func TestMTTDLTornadoBeatsMirroringWithRepair(t *testing.T) {
	// A first-failure-5 profile (tornado-like) must yield a vastly larger
	// MTTDL than mirroring at the same repair rate.
	tornadoLike := func(k int) float64 {
		switch {
		case k < 5:
			return 0
		case k == 5:
			return 14.0 / 61124064
		default:
			f := 1e-5 * math.Pow(4, float64(k-6))
			if f > 1 {
				f = 1
			}
			return f
		}
	}
	mirror := func(k int) float64 { return raid.MirroredFailGivenK(48, k) }
	tm, err := MTTDL(96, 0.01, 12, 1, tornadoLike)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := MTTDL(96, 0.01, 12, 1, mirror)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 100*mm {
		t.Errorf("tornado MTTDL %v not >> mirrored %v", tm, mm)
	}
}

func TestMTTDLValidation(t *testing.T) {
	prof := stripingProfile(4)
	if _, err := MTTDL(0, 0.01, 1, 1, prof); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MTTDL(4, 0, 1, 1, prof); err == nil {
		t.Error("lambda=0 accepted")
	}
	if _, err := MTTDL(4, 0.01, -1, 1, prof); err == nil {
		t.Error("negative mu accepted")
	}
	if _, err := MTTDL(4, 0.01, 1, 1, func(int) float64 { return 0.5 }); err == nil {
		t.Error("F(0)>0 accepted")
	}
}

func TestMTTDLNoRepairMatchesSimulatedExpectation(t *testing.T) {
	// Without repair, MTTDL = E[time of the fatal failure]. For the
	// mirrored profile this equals Σ over k of (expected holding times
	// weighted by survival) — cross-check against a direct chain
	// evaluation with a different method: numerically integrate survival
	// using the embedded discrete chain.
	n, lambda := 8, 0.05
	prof := func(k int) float64 { return raid.MirroredFailGivenK(4, k) }
	got, err := MTTDL(n, lambda, 0, 0, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Direct: T_k = 1/((n−k)λ) + (1−q_k)·T_{k+1}, computed backwards.
	T := 0.0
	for k := n - 1; k >= 0; k-- {
		Fk, Fk1 := prof(k), prof(k+1)
		if Fk >= 1 {
			T = 0
			continue
		}
		q := (Fk1 - Fk) / (1 - Fk)
		if k+1 > n-1 && Fk1 < 1 {
			q = 1 // beyond the chain everything is fatal
		}
		T = 1/(float64(n-k)*lambda) + (1-q)*T
	}
	if math.Abs(got-T) > 1e-9*T {
		t.Errorf("MTTDL = %v, backward recursion %v", got, T)
	}
}

func TestAnnualLossProbability(t *testing.T) {
	if got := AnnualLossProbability(0); got != 1 {
		t.Errorf("MTTDL 0 → %v", got)
	}
	if got := AnnualLossProbability(100); math.Abs(got-(1-math.Exp(-0.01))) > 1e-12 {
		t.Errorf("MTTDL 100y → %v", got)
	}
	if AnnualLossProbability(1e9) > 1e-8 {
		t.Error("huge MTTDL should give tiny probability")
	}
}
