// Package reliability implements the paper's reliability analysis (§5.1,
// Equations (2) and (3), Table 5): device failures are independent with an
// annual failure rate p, so the number of offline drives is binomial, and
// the system failure probability composes the binomial weights with the
// measured (or analytic) conditional failure fractions:
//
//	P(fail) = Σ_k P(fail | k drives lost) · C(n,k) p^k (1−p)^(n−k)
package reliability

import (
	"math"

	"tornado/internal/combin"
)

// BinomialPMF returns Equation (2): the probability that exactly k of n
// independent drives with failure probability p are offline. It is
// evaluated in log space so large n and tiny p stay accurate.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := combin.LogBinomial(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// SystemFailure returns Equation (3): the probability of data loss for an
// n-drive system whose conditional failure profile is failGivenK, under
// independent per-drive failure probability afr with no repair.
func SystemFailure(n int, afr float64, failGivenK func(k int) float64) float64 {
	total := 0.0
	for k := 0; k <= n; k++ {
		f := failGivenK(k)
		if f == 0 {
			continue
		}
		total += f * BinomialPMF(n, k, afr)
	}
	return total
}

// DominantTerm returns the k whose contribution to SystemFailure is
// largest, with that contribution — the paper's observation that "the
// first failure provides the greatest contribution to the system failure
// rate" (§5.1).
func DominantTerm(n int, afr float64, failGivenK func(k int) float64) (k int, contribution float64) {
	for i := 0; i <= n; i++ {
		c := failGivenK(i) * BinomialPMF(n, i, afr)
		if c > contribution {
			k, contribution = i, c
		}
	}
	return k, contribution
}

// Entry is one row of a Table 5 style reliability report.
type Entry struct {
	Name   string
	Data   int
	Parity int
	PFail  float64
}
