// Package retrieval implements the guided block-selection the paper plans
// as future work (§5.2, §6): given which devices are reachable and a cost
// for touching each one (e.g. spun-down MAID drives cost a spin-up), choose
// a small, cheap set of blocks that still reconstructs the stripe, instead
// of naively reading everything.
//
// Plan uses reverse-delete: start from every available node and greedily
// drop the most expensive ones while the stripe stays decodable. The result
// is minimal (no single element can be removed), though not always
// globally minimum — matching the paper's framing of guided search as a
// heuristic optimization.
//
// The hot entry point is Planner: it keeps an incremental decode kernel
// and every buffer across calls, so planning a stripe in the archive read
// path costs one EraseOne+Eval delta per candidate and allocates nothing
// in the steady state. The package-level Plan is the one-shot convenience
// wrapper.
package retrieval

import (
	"errors"
	"math"
	"slices"

	"tornado/internal/decode"
	"tornado/internal/graph"
)

// ErrInsufficient is returned when even the full available set cannot
// reconstruct the data.
var ErrInsufficient = errors.New("retrieval: available blocks cannot reconstruct the stripe")

// CostFunc prices reading the block on node ID v. Return +Inf to forbid a
// node entirely.
type CostFunc func(v int) float64

// UnitCost charges 1 per block — minimizing the number of devices accessed.
func UnitCost(int) float64 { return 1 }

// Planner plans retrievals over one graph, reusing an incremental decode
// kernel and all working buffers between calls. Not safe for concurrent
// use; create one per goroutine (they may not share kernels).
type Planner struct {
	g      *graph.Graph
	k      *decode.Kernel
	cands  []int
	costs  []float64 // costs[v] for the current call
	inPlan []bool    // candidate survives reverse-delete
	erased []int     // every node this call erased, for unwinding
	plan   []int
	alt    []int // PlanEconomic's best-so-far snapshot
}

// NewPlanner returns a Planner for g.
func NewPlanner(g *graph.Graph) *Planner {
	return &Planner{
		g:      g,
		k:      decode.NewKernel(decode.NewCSR(g)),
		cands:  make([]int, 0, g.Total),
		costs:  make([]float64, g.Total),
		inPlan: make([]bool, g.Total),
		erased: make([]int, 0, g.Total),
		plan:   make([]int, 0, g.Total),
		alt:    make([]int, 0, g.Total),
	}
}

// ordering selects the reverse-delete drop order. Every ordering yields a
// minimal (irreducible) plan; they differ in which minimal plan they land
// on when costs are non-uniform.
type ordering int

const (
	// orderCostDeep drops most-expensive first, deep check nodes first
	// among equals — the cost-greedy default.
	orderCostDeep ordering = iota
	// orderCostShallow drops most-expensive first, shallow nodes first
	// among equals.
	orderCostShallow
	// orderDeep ignores cost entirely and drops the deepest nodes first,
	// chasing the smallest block count (fewest repair bytes).
	orderDeep
)

// Plan selects a subset of the available nodes whose blocks reconstruct
// all data, minimizing total cost greedily. available[v] reports whether
// node v's block is retrievable at all. The returned slice is reused by
// the next Plan call — callers that keep it must copy.
func (p *Planner) Plan(available []bool, cost CostFunc) ([]int, float64, error) {
	return p.planOrdered(available, cost, orderCostDeep)
}

func (p *Planner) planOrdered(available []bool, cost CostFunc, ord ordering) ([]int, float64, error) {
	if len(available) != p.g.Total {
		return nil, 0, errors.New("retrieval: availability vector size mismatch")
	}
	if cost == nil {
		cost = UnitCost
	}

	// Candidate set: available nodes with finite cost. Everything else is
	// erased up front; candidates start present.
	k := p.k
	cands := p.cands[:0]
	erasedList := p.erased[:0]
	for v := 0; v < p.g.Total; v++ {
		if available[v] {
			p.costs[v] = cost(v)
		} else {
			p.costs[v] = math.Inf(1)
		}
		if !math.IsInf(p.costs[v], 1) {
			p.inPlan[v] = true
			cands = append(cands, v)
		} else {
			p.inPlan[v] = false
			k.EraseOne(v)
			erasedList = append(erasedList, v)
		}
	}
	p.cands, p.erased = cands, erasedList
	restore := func() {
		for _, v := range p.erased {
			k.RestoreOne(v)
		}
	}
	if !k.Eval() {
		restore()
		return nil, 0, ErrInsufficient
	}

	// Reverse-delete: drop candidates most-expensive-first while the
	// stripe remains decodable. Each probe is a one-node kernel delta,
	// not a fresh peel.
	switch ord {
	case orderDeep:
		slices.SortStableFunc(p.cands, func(a, b int) int { return b - a })
	case orderCostShallow:
		slices.SortStableFunc(p.cands, func(a, b int) int {
			ca, cb := p.costs[a], p.costs[b]
			switch {
			case ca > cb:
				return -1
			case ca < cb:
				return 1
			default:
				return a - b // among equals, drop shallow nodes first
			}
		})
	default:
		slices.SortStableFunc(p.cands, func(a, b int) int {
			ca, cb := p.costs[a], p.costs[b]
			switch {
			case ca > cb:
				return -1
			case ca < cb:
				return 1
			default:
				return b - a // among equals, drop deep check nodes first
			}
		})
	}
	for _, v := range p.cands {
		k.EraseOne(v)
		if k.Eval() {
			p.inPlan[v] = false // dropped for good
			p.erased = append(p.erased, v)
		} else {
			k.RestoreOne(v)
		}
	}

	plan := p.plan[:0]
	total := 0.0
	for v := 0; v < p.g.Total; v++ {
		if p.inPlan[v] {
			plan = append(plan, v)
			total += p.costs[v]
		}
	}
	p.plan = plan
	restore()
	p.erased = p.erased[:0]
	return plan, total, nil
}

// PlanCost is the projected repair economics of a recovery plan.
type PlanCost struct {
	// Blocks is how many blocks the plan reads.
	Blocks int
	// Surplus is Blocks minus the data-block floor: the read amplification
	// the degraded stripe forces, i.e. the projected repair reads. Zero for
	// a healthy stripe.
	Surplus int
	// Cost is the plan's total CostFunc price (spin-ups, remote reads).
	Cost float64
}

// Bytes converts the surplus into projected repair bytes given the
// on-device frame size.
func (c PlanCost) Bytes(frameSize int64) int64 { return int64(c.Surplus) * frameSize }

// PlanEconomic selects the recovery plan with the fewest projected repair
// bytes: it runs reverse-delete under several drop orderings and keeps the
// plan reading the fewest blocks, breaking ties by CostFunc price. A plan
// already at the data-block floor (Surplus 0 — every healthy stripe) wins
// outright, so the healthy read path pays for exactly one ordering. The
// returned slice is reused by the next call — callers that keep it must
// copy.
func (p *Planner) PlanEconomic(available []bool, cost CostFunc) ([]int, PlanCost, error) {
	plan, total, err := p.planOrdered(available, cost, orderCostDeep)
	if err != nil {
		return nil, PlanCost{}, err
	}
	best := PlanCost{Blocks: len(plan), Surplus: len(plan) - p.g.Data, Cost: total}
	if best.Surplus <= 0 {
		return plan, best, nil // at the information floor; unbeatable
	}
	p.alt = append(p.alt[:0], plan...)
	for _, ord := range [...]ordering{orderDeep, orderCostShallow} {
		altPlan, altTotal, err := p.planOrdered(available, cost, ord)
		if err != nil {
			continue // cannot happen: feasibility is ordering-independent
		}
		c := PlanCost{Blocks: len(altPlan), Surplus: len(altPlan) - p.g.Data, Cost: altTotal}
		if c.Blocks < best.Blocks || (c.Blocks == best.Blocks && c.Cost < best.Cost) {
			best = c
			p.alt = append(p.alt[:0], altPlan...)
		}
		if best.Surplus <= 0 {
			break
		}
	}
	return p.alt, best, nil
}

// Plan is the one-shot wrapper: build a throwaway Planner and run it.
// Steady-state callers (the archive stripe path) should hold a Planner.
func Plan(g *graph.Graph, available []bool, cost CostFunc) ([]int, float64, error) {
	plan, total, err := NewPlanner(g).Plan(available, cost)
	if err != nil {
		return nil, total, err
	}
	return slices.Clone(plan), total, nil
}
