// Package retrieval implements the guided block-selection the paper plans
// as future work (§5.2, §6): given which devices are reachable and a cost
// for touching each one (e.g. spun-down MAID drives cost a spin-up), choose
// a small, cheap set of blocks that still reconstructs the stripe, instead
// of naively reading everything.
//
// Plan uses reverse-delete: start from every available node and greedily
// drop the most expensive ones while the stripe stays decodable. The result
// is minimal (no single element can be removed), though not always
// globally minimum — matching the paper's framing of guided search as a
// heuristic optimization.
package retrieval

import (
	"errors"
	"math"
	"slices"

	"tornado/internal/decode"
	"tornado/internal/graph"
)

// ErrInsufficient is returned when even the full available set cannot
// reconstruct the data.
var ErrInsufficient = errors.New("retrieval: available blocks cannot reconstruct the stripe")

// CostFunc prices reading the block on node ID v. Return +Inf to forbid a
// node entirely.
type CostFunc func(v int) float64

// UnitCost charges 1 per block — minimizing the number of devices accessed.
func UnitCost(int) float64 { return 1 }

// Plan selects a subset of the available nodes whose blocks reconstruct all
// data, minimizing total cost greedily. available[v] reports whether node
// v's block is retrievable at all.
func Plan(g *graph.Graph, available []bool, cost CostFunc) ([]int, float64, error) {
	if len(available) != g.Total {
		return nil, 0, errors.New("retrieval: availability vector size mismatch")
	}
	if cost == nil {
		cost = UnitCost
	}
	d := decode.New(g)

	// Candidate set: available nodes with finite cost.
	selected := make([]bool, g.Total)
	var cands []int
	for v := 0; v < g.Total; v++ {
		if available[v] && !math.IsInf(cost(v), 1) {
			selected[v] = true
			cands = append(cands, v)
		}
	}
	if !recoverableWith(d, g, selected) {
		return nil, 0, ErrInsufficient
	}

	// Reverse-delete: drop candidates most-expensive-first while the
	// stripe remains decodable.
	slices.SortStableFunc(cands, func(a, b int) int {
		ca, cb := cost(a), cost(b)
		switch {
		case ca > cb:
			return -1
		case ca < cb:
			return 1
		default:
			return b - a // among equals, drop deep check nodes first
		}
	})
	for _, v := range cands {
		selected[v] = false
		if !recoverableWith(d, g, selected) {
			selected[v] = true
		}
	}

	var plan []int
	total := 0.0
	for v := 0; v < g.Total; v++ {
		if selected[v] {
			plan = append(plan, v)
			total += cost(v)
		}
	}
	return plan, total, nil
}

// recoverableWith reports whether treating exactly the selected nodes as
// present reconstructs all data.
func recoverableWith(d *decode.Decoder, g *graph.Graph, selected []bool) bool {
	var erased []int
	for v := 0; v < g.Total; v++ {
		if !selected[v] {
			erased = append(erased, v)
		}
	}
	return d.Recoverable(erased)
}
