package retrieval

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"tornado/internal/decode"
	"tornado/internal/graph"
)

// feasible reports whether reading exactly plan suffices to decode: erase
// everything else and ask the full decoder.
func feasible(g *graph.Graph, plan []int) bool {
	inPlan := make([]bool, g.Total)
	for _, v := range plan {
		inPlan[v] = true
	}
	var erased []int
	for v := 0; v < g.Total; v++ {
		if !inPlan[v] {
			erased = append(erased, v)
		}
	}
	return decode.New(g).Recoverable(erased)
}

func TestPlanEconomicHealthyIsFloor(t *testing.T) {
	g := tornado96(t)
	p := NewPlanner(g)
	plan, pc, err := p.PlanEconomic(allAvailable(g.Total), UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Blocks != g.Data || pc.Surplus != 0 {
		t.Errorf("healthy plan cost = %+v, want Blocks=%d Surplus=0", pc, g.Data)
	}
	if len(plan) != g.Data {
		t.Errorf("healthy plan reads %d blocks, want %d", len(plan), g.Data)
	}
	if pc.Bytes(68) != 0 {
		t.Errorf("healthy plan projects %d repair bytes, want 0", pc.Bytes(68))
	}
	for _, v := range plan {
		if !g.IsData(v) {
			t.Errorf("healthy plan includes check node %d", v)
		}
	}
}

// TestPlanEconomicDifferential drives PlanEconomic across random damage
// and cost surfaces and checks it against the full-decoder oracle and the
// single-ordering Plan:
//
//   - the plan is feasible (decoding from exactly those blocks works);
//   - the plan is minimal (dropping any one element breaks decodability);
//   - the reported PlanCost is self-consistent with the plan;
//   - it never reads more blocks than Plan — choosing among orderings can
//     only shrink the projected repair traffic.
func TestPlanEconomicDifferential(t *testing.T) {
	g := tornado96(t)
	p := NewPlanner(g)
	rng := rand.New(rand.NewPCG(500, 1))
	improved := 0
	for trial := 0; trial < 60; trial++ {
		avail := make([]bool, g.Total)
		for v := range avail {
			avail[v] = rng.Float64() > 0.3
		}
		costs := make([]float64, g.Total)
		for v := range costs {
			switch rng.IntN(4) {
			case 0:
				costs[v] = 1
			case 1:
				costs[v] = float64(1 + rng.IntN(10))
			case 2:
				costs[v] = rng.Float64() * 5
			default:
				costs[v] = math.Inf(1)
			}
		}
		cost := func(v int) float64 { return costs[v] }

		base, _, baseErr := p.Plan(avail, cost)
		baseLen := len(base)
		plan, pc, err := p.PlanEconomic(avail, cost)
		if (err == nil) != (baseErr == nil) {
			t.Fatalf("trial %d: PlanEconomic err %v but Plan err %v", trial, err, baseErr)
		}
		if err != nil {
			if !errors.Is(err, ErrInsufficient) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			continue
		}

		if !feasible(g, plan) {
			t.Fatalf("trial %d: economic plan %v cannot decode", trial, plan)
		}
		for i := range plan {
			reduced := make([]int, 0, len(plan)-1)
			reduced = append(reduced, plan[:i]...)
			reduced = append(reduced, plan[i+1:]...)
			if feasible(g, reduced) {
				t.Fatalf("trial %d: plan not minimal — dropping %d still decodes", trial, plan[i])
			}
		}

		if pc.Blocks != len(plan) {
			t.Errorf("trial %d: PlanCost.Blocks=%d but plan has %d", trial, pc.Blocks, len(plan))
		}
		if pc.Surplus != len(plan)-g.Data {
			t.Errorf("trial %d: Surplus=%d, want %d", trial, pc.Surplus, len(plan)-g.Data)
		}
		total := 0.0
		for _, v := range plan {
			if !avail[v] {
				t.Errorf("trial %d: plan includes unavailable node %d", trial, v)
			}
			total += cost(v)
		}
		if math.Abs(total-pc.Cost) > 1e-9 {
			t.Errorf("trial %d: PlanCost.Cost=%v but plan sums to %v", trial, pc.Cost, total)
		}
		if want := int64(pc.Surplus) * 68; pc.Bytes(68) != want {
			t.Errorf("trial %d: Bytes(68)=%d, want %d", trial, pc.Bytes(68), want)
		}

		if pc.Blocks > baseLen {
			t.Errorf("trial %d: economic plan reads %d blocks, single-ordering Plan reads %d",
				trial, pc.Blocks, baseLen)
		}
		if pc.Blocks < baseLen {
			improved++
		}
		if baseLen == g.Data && pc.Surplus != 0 {
			t.Errorf("trial %d: base plan hit the floor but economic surplus is %d", trial, pc.Surplus)
		}
	}
	t.Logf("economic plan beat the single ordering in %d/60 trials", improved)
}

func TestPlanEconomicInsufficient(t *testing.T) {
	g := tornado96(t)
	p := NewPlanner(g)
	avail := make([]bool, g.Total) // nothing available
	if _, _, err := p.PlanEconomic(avail, UnitCost); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
}
