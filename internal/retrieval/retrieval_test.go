package retrieval

import (
	"errors"
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"tornado/internal/codec"
	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

func tornado96(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(31, 7)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allAvailable(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestPlanAllAvailableSelectsOnlyDataNodes(t *testing.T) {
	g := tornado96(t)
	plan, total, err := Plan(g, allAvailable(g.Total), UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// With every block available the cheapest plan is exactly the data
	// blocks: nothing needs reconstruction.
	if len(plan) != g.Data {
		t.Errorf("plan size = %d, want %d", len(plan), g.Data)
	}
	if total != float64(g.Data) {
		t.Errorf("total = %v", total)
	}
	for _, v := range plan {
		if !g.IsData(v) {
			t.Errorf("plan contains check node %d despite full availability", v)
		}
	}
}

func TestPlanRoutesAroundMissingData(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	avail[0] = false
	avail[1] = false
	plan, _, err := Plan(g, avail, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must reconstruct: treating exactly the plan as present must
	// be decodable, and missing data nodes cannot appear.
	sel := make([]bool, g.Total)
	for _, v := range plan {
		if !avail[v] {
			t.Errorf("plan uses unavailable node %d", v)
		}
		sel[v] = true
	}
	d := decode.New(g)
	var erased []int
	for v := 0; v < g.Total; v++ {
		if !sel[v] {
			erased = append(erased, v)
		}
	}
	if !d.Recoverable(erased) {
		t.Error("plan does not reconstruct the stripe")
	}
	// It should not read everything: 96 available minus a handful.
	if len(plan) >= g.Total-2 {
		t.Errorf("plan reads %d blocks — no guidance at all", len(plan))
	}
}

func TestPlanMinimality(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	avail[5] = false
	plan, _, err := Plan(g, avail, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse-delete guarantees 1-minimality: removing any single element
	// must break reconstruction.
	d := decode.New(g)
	sel := make([]bool, g.Total)
	for _, v := range plan {
		sel[v] = true
	}
	for _, v := range plan {
		sel[v] = false
		var erased []int
		for u := 0; u < g.Total; u++ {
			if !sel[u] {
				erased = append(erased, u)
			}
		}
		if d.Recoverable(erased) {
			t.Errorf("plan element %d is redundant", v)
		}
		sel[v] = true
	}
}

func TestPlanRespectsCosts(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	avail[0] = false // force reconstruction through checks
	// Make one specific check prohibitively expensive; the plan should
	// avoid it if any alternative exists.
	expensive := int(g.Parents(0)[0])
	cost := func(v int) float64 {
		if v == expensive {
			return 1000
		}
		return 1
	}
	plan, total, err := Plan(g, avail, cost)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plan {
		if v == expensive && total >= 1000 {
			// Only acceptable if unavoidable; with degree >= 2 there is an
			// alternative check, so this should not happen.
			t.Errorf("plan used the expensive check %d", expensive)
		}
	}
}

func TestPlanForbiddenNodes(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	cost := func(v int) float64 {
		if g.IsData(v) && v < 6 {
			return math.Inf(1) // forbid a handful of data nodes
		}
		return 1
	}
	plan, _, err := Plan(g, avail, cost)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plan {
		if g.IsData(v) && v < 6 {
			t.Errorf("plan used forbidden node %d", v)
		}
	}
}

func TestPlanInsufficient(t *testing.T) {
	g := tornado96(t)
	avail := make([]bool, g.Total) // nothing available
	if _, _, err := Plan(g, avail, UnitCost); !errors.Is(err, ErrInsufficient) {
		t.Errorf("err = %v, want ErrInsufficient", err)
	}
	if _, _, err := Plan(g, make([]bool, 5), UnitCost); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPlanNilCostDefaultsToUnit(t *testing.T) {
	g := tornado96(t)
	plan, total, err := Plan(g, allAvailable(g.Total), nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != float64(len(plan)) {
		t.Errorf("unit-cost total = %v for %d blocks", total, len(plan))
	}
}

// End-to-end: execute a plan against a real codec stripe and verify the
// payload comes back.
func TestPlanDrivesCodecDecode(t *testing.T) {
	g := tornado96(t)
	c, err := codec.New(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, c.Capacity())
	rng := rand.New(rand.NewPCG(8, 8))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	avail := allAvailable(g.Total)
	for _, v := range []int{0, 1, 2, 60} {
		avail[v] = false
	}
	plan, _, err := Plan(g, avail, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch only the planned blocks.
	fetched := make([][]byte, g.Total)
	for _, v := range plan {
		fetched[v] = blocks[v]
	}
	got, err := c.Decode(fetched, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatal("payload mismatch after planned retrieval")
		}
	}
}

// referencePlan is the pre-Planner implementation — full Decoder peel per
// reverse-delete probe — kept here as the differential oracle.
func referencePlan(g *graph.Graph, available []bool, cost CostFunc) ([]int, float64, error) {
	if cost == nil {
		cost = UnitCost
	}
	d := decode.New(g)
	recoverableWith := func(selected []bool) bool {
		var erased []int
		for v := 0; v < g.Total; v++ {
			if !selected[v] {
				erased = append(erased, v)
			}
		}
		return d.Recoverable(erased)
	}
	selected := make([]bool, g.Total)
	var cands []int
	for v := 0; v < g.Total; v++ {
		if available[v] && !math.IsInf(cost(v), 1) {
			selected[v] = true
			cands = append(cands, v)
		}
	}
	if !recoverableWith(selected) {
		return nil, 0, ErrInsufficient
	}
	slices.SortStableFunc(cands, func(a, b int) int {
		ca, cb := cost(a), cost(b)
		switch {
		case ca > cb:
			return -1
		case ca < cb:
			return 1
		default:
			return b - a
		}
	})
	for _, v := range cands {
		selected[v] = false
		if !recoverableWith(selected) {
			selected[v] = true
		}
	}
	var plan []int
	total := 0.0
	for v := 0; v < g.Total; v++ {
		if selected[v] {
			plan = append(plan, v)
			total += cost(v)
		}
	}
	return plan, total, nil
}

// TestPlannerMatchesReference drives one reused Planner and the
// decoder-based reference across random availability vectors and cost
// surfaces; plans must be identical element for element.
func TestPlannerMatchesReference(t *testing.T) {
	g := tornado96(t)
	p := NewPlanner(g)
	rng := rand.New(rand.NewPCG(400, 1))
	for trial := 0; trial < 60; trial++ {
		avail := make([]bool, g.Total)
		for v := range avail {
			avail[v] = rng.Float64() > 0.25
		}
		costs := make([]float64, g.Total)
		for v := range costs {
			switch rng.IntN(4) {
			case 0:
				costs[v] = 1
			case 1:
				costs[v] = float64(1 + rng.IntN(10))
			case 2:
				costs[v] = rng.Float64() * 5
			default:
				costs[v] = math.Inf(1)
			}
		}
		cost := func(v int) float64 { return costs[v] }
		got, gotTotal, gotErr := p.Plan(avail, cost)
		want, wantTotal, wantErr := referencePlan(g, avail, cost)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: err %v vs reference %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !slices.Equal(got, want) || gotTotal != wantTotal {
			t.Fatalf("trial %d: plan %v (%v) vs reference %v (%v)", trial, got, gotTotal, want, wantTotal)
		}
	}
}

// TestPlannerReuseMatchesFresh: a Planner's Nth call equals a fresh
// Planner's — the kernel unwinds completely between calls.
func TestPlannerReuseMatchesFresh(t *testing.T) {
	g := tornado96(t)
	p := NewPlanner(g)
	rng := rand.New(rand.NewPCG(401, 1))
	for trial := 0; trial < 30; trial++ {
		avail := make([]bool, g.Total)
		for v := range avail {
			avail[v] = rng.Float64() > 0.3
		}
		got, gotTotal, gotErr := p.Plan(avail, nil)
		want, wantTotal, wantErr := NewPlanner(g).Plan(avail, nil)
		if (gotErr == nil) != (wantErr == nil) || gotTotal != wantTotal || !slices.Equal(got, want) {
			t.Fatalf("trial %d: reused planner diverged: %v (%v, %v) vs %v (%v, %v)",
				trial, got, gotTotal, gotErr, want, wantTotal, wantErr)
		}
	}
}

// BenchmarkPlannerSteadyState is the archive stripe path's planning cost:
// one reused Planner, all nodes available. Must not allocate.
func BenchmarkPlannerSteadyState(b *testing.B) {
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(77, 1)))
	if err != nil {
		b.Fatal(err)
	}
	p := NewPlanner(g)
	avail := make([]bool, g.Total)
	for v := range avail {
		avail[v] = true
	}
	if _, _, err := p.Plan(avail, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Plan(avail, nil); err != nil {
			b.Fatal(err)
		}
	}
}
