package retrieval

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"tornado/internal/codec"
	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

func tornado96(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(31, 7)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allAvailable(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestPlanAllAvailableSelectsOnlyDataNodes(t *testing.T) {
	g := tornado96(t)
	plan, total, err := Plan(g, allAvailable(g.Total), UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// With every block available the cheapest plan is exactly the data
	// blocks: nothing needs reconstruction.
	if len(plan) != g.Data {
		t.Errorf("plan size = %d, want %d", len(plan), g.Data)
	}
	if total != float64(g.Data) {
		t.Errorf("total = %v", total)
	}
	for _, v := range plan {
		if !g.IsData(v) {
			t.Errorf("plan contains check node %d despite full availability", v)
		}
	}
}

func TestPlanRoutesAroundMissingData(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	avail[0] = false
	avail[1] = false
	plan, _, err := Plan(g, avail, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must reconstruct: treating exactly the plan as present must
	// be decodable, and missing data nodes cannot appear.
	sel := make([]bool, g.Total)
	for _, v := range plan {
		if !avail[v] {
			t.Errorf("plan uses unavailable node %d", v)
		}
		sel[v] = true
	}
	d := decode.New(g)
	var erased []int
	for v := 0; v < g.Total; v++ {
		if !sel[v] {
			erased = append(erased, v)
		}
	}
	if !d.Recoverable(erased) {
		t.Error("plan does not reconstruct the stripe")
	}
	// It should not read everything: 96 available minus a handful.
	if len(plan) >= g.Total-2 {
		t.Errorf("plan reads %d blocks — no guidance at all", len(plan))
	}
}

func TestPlanMinimality(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	avail[5] = false
	plan, _, err := Plan(g, avail, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse-delete guarantees 1-minimality: removing any single element
	// must break reconstruction.
	d := decode.New(g)
	sel := make([]bool, g.Total)
	for _, v := range plan {
		sel[v] = true
	}
	for _, v := range plan {
		sel[v] = false
		var erased []int
		for u := 0; u < g.Total; u++ {
			if !sel[u] {
				erased = append(erased, u)
			}
		}
		if d.Recoverable(erased) {
			t.Errorf("plan element %d is redundant", v)
		}
		sel[v] = true
	}
}

func TestPlanRespectsCosts(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	avail[0] = false // force reconstruction through checks
	// Make one specific check prohibitively expensive; the plan should
	// avoid it if any alternative exists.
	expensive := int(g.Parents(0)[0])
	cost := func(v int) float64 {
		if v == expensive {
			return 1000
		}
		return 1
	}
	plan, total, err := Plan(g, avail, cost)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plan {
		if v == expensive && total >= 1000 {
			// Only acceptable if unavoidable; with degree >= 2 there is an
			// alternative check, so this should not happen.
			t.Errorf("plan used the expensive check %d", expensive)
		}
	}
}

func TestPlanForbiddenNodes(t *testing.T) {
	g := tornado96(t)
	avail := allAvailable(g.Total)
	cost := func(v int) float64 {
		if g.IsData(v) && v < 6 {
			return math.Inf(1) // forbid a handful of data nodes
		}
		return 1
	}
	plan, _, err := Plan(g, avail, cost)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plan {
		if g.IsData(v) && v < 6 {
			t.Errorf("plan used forbidden node %d", v)
		}
	}
}

func TestPlanInsufficient(t *testing.T) {
	g := tornado96(t)
	avail := make([]bool, g.Total) // nothing available
	if _, _, err := Plan(g, avail, UnitCost); !errors.Is(err, ErrInsufficient) {
		t.Errorf("err = %v, want ErrInsufficient", err)
	}
	if _, _, err := Plan(g, make([]bool, 5), UnitCost); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPlanNilCostDefaultsToUnit(t *testing.T) {
	g := tornado96(t)
	plan, total, err := Plan(g, allAvailable(g.Total), nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != float64(len(plan)) {
		t.Errorf("unit-cost total = %v for %d blocks", total, len(plan))
	}
}

// End-to-end: execute a plan against a real codec stripe and verify the
// payload comes back.
func TestPlanDrivesCodecDecode(t *testing.T) {
	g := tornado96(t)
	c, err := codec.New(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, c.Capacity())
	rng := rand.New(rand.NewPCG(8, 8))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	avail := allAvailable(g.Total)
	for _, v := range []int{0, 1, 2, 60} {
		avail[v] = false
	}
	plan, _, err := Plan(g, avail, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch only the planned blocks.
	fetched := make([][]byte, g.Total)
	for _, v := range plan {
		fetched[v] = blocks[v]
	}
	got, err := c.Decode(fetched, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatal("payload mismatch after planned retrieval")
		}
	}
}
